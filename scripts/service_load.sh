#!/bin/sh
# service_load.sh — the committed saturation experiment behind
# results/service_load_*.txt.
#
# Runs one adaptive collserve instance and one per fixed variant through an
# identical collload phase schedule (write-heavy -> scan-heavy -> mixed), so
# the per-phase p50/p99 lines are directly comparable. The "mixed" phase is
# the heterogeneous clincher: write-hot sets/kv plus scan-hot sorted ranges
# at the same time, which no single global variant serves well.
#
# Usage: scripts/service_load.sh [outdir] [mode ...]
#   outdir defaults to results/, modes default to "adaptive hash openhash
#   array sortedarray avltree skiplist".
set -eu

OUTDIR=${1:-results}
shift 2>/dev/null || true
MODES=${*:-"adaptive hash openhash array sortedarray avltree skiplist"}

ADDR=127.0.0.1:8377
PHASES="write:8s,scan:8s,mixed:10s"
SERVE_FLAGS="-addr $ADDR -window 8 -rate 250ms -cooldown 0 -maxkeys 1 -drain 10s"
# Heterogeneous sizing is deliberate: the few set keys grow large (where
# quadratic sorted inserts and linear array lookups hurt), while range
# series stay moderate (-rseries/-rspan/-raddburst), the regime where the
# cost model favours sorted variants and scans answer via Range instead of
# full iteration. -maxkeys 1 keeps FIFO eviction brisk so monitoring windows
# keep closing (finished-ratio gate) and the engine can re-select live.
LOAD_FLAGS="-addr $ADDR -phases $PHASES -conc 8 -series 4 -rseries 12 \
  -span 1000000 -rspan 40000 -scanwidth 1000 -kvspan 65536 -rotate 3s \
  -addburst 64 -raddburst 16 -scanburst 16 -seed 1"

mkdir -p "$OUTDIR"
go build -o /tmp/collserve ./cmd/collserve
go build -o /tmp/collload ./cmd/collload

for MODE in $MODES; do
  OUT="$OUTDIR/service_load_$MODE.txt"
  FIXED=""
  [ "$MODE" != adaptive ] && FIXED="-fixed $MODE"
  {
    echo "# collserve saturation run — mode=$MODE"
    echo "# date: $(date -u +%Y-%m-%dT%H:%M:%SZ)  go: $(go version | cut -d' ' -f3)  cpus: $(nproc)"
    echo "# server: collserve $SERVE_FLAGS $FIXED"
    echo "# load:   collload $(echo $LOAD_FLAGS)"
    echo
  } >"$OUT"

  /tmp/collserve $SERVE_FLAGS $FIXED >"$OUT.server" 2>&1 &
  SRV=$!
  /tmp/collload $LOAD_FLAGS >>"$OUT" 2>&1 || {
    echo "collload failed for $MODE" >&2
    kill "$SRV" 2>/dev/null || true
    exit 1
  }
  kill -TERM "$SRV"
  wait "$SRV" || { echo "collserve exited non-zero for $MODE" >&2; exit 1; }
  {
    echo
    echo "# --- server log ---"
    cat "$OUT.server"
  } >>"$OUT"
  rm -f "$OUT.server"
  echo "done: $OUT"
done
