package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/promtext"
)

// driveEngine creates a manual engine wired to the given registry and
// recorder, churns a lookup-heavy list site through it (which switches
// variants) plus a slash-named site, and runs one analysis pass.
func driveEngine(t *testing.T, reg *obs.Registry, rec *obs.FlightRecorder) *core.Engine {
	t.Helper()
	var sink obs.Sink
	if rec != nil {
		sink = rec
	}
	e := core.NewEngineManual(core.Config{
		Name:            "diag-test",
		WindowSize:      10,
		FinishedRatio:   0.6,
		Rule:            core.Rtime(),
		CooldownWindows: -1,
		Metrics:         reg,
		Sink:            sink,
	})
	t.Cleanup(e.Close)
	churn := func(ctx *core.ListContext[int], size, lookups int) {
		for i := 0; i < 10; i++ {
			l := ctx.NewList()
			for j := 0; j < size; j++ {
				l.Add(j)
			}
			for j := 0; j < lookups; j++ {
				l.Contains(j % (size + 1))
			}
		}
		runtime.GC()
	}
	churn(core.NewListContext[int](e, core.WithName("diag/switchy")), 500, 500)
	churn(core.NewListContext[int](e, core.WithName("diag/nested/site")), 10, 10)
	e.AnalyzeNow()
	return e
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(64)
	s := New(reg, rec)
	s.Attach(driveEngine(t, reg, rec))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	code, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d:\n%s", url, code, body)
	}
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("GET %s returned unparseable JSON: %v\n%s", url, err, body)
	}
}

func TestMetricsEndpointServesValidExposition(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text format", ct)
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("served /metrics does not parse: %v", err)
	}
	if err := promtext.Validate(fams); err != nil {
		t.Fatalf("served /metrics does not validate: %v", err)
	}
	byName := make(map[string]promtext.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["collectionswitch_transitions_total"]; len(f.Samples) == 0 {
		t.Error("/metrics has no transition samples after a switching workload")
	}
	if _, ok := byName["collectionswitch_self_overhead_ns_total"]; !ok {
		t.Error("/metrics missing the self-overhead counter")
	}
}

func TestSitesEndpointListsAllContexts(t *testing.T) {
	_, ts := newTestServer(t)
	var got struct {
		Engines int `json:"engines"`
		Count   int `json:"count"`
		Sites   []struct {
			Engine      string `json:"engine"`
			Name        string `json:"name"`
			Variant     string `json:"variant"`
			LastOutcome string `json:"last_outcome"`
		} `json:"sites"`
	}
	getJSON(t, ts.URL+"/sites", &got)
	if got.Engines != 1 || got.Count != 2 || len(got.Sites) != 2 {
		t.Fatalf("sites payload = %+v", got)
	}
	byName := map[string]string{}
	for _, s := range got.Sites {
		if s.Engine != "diag-test" {
			t.Errorf("site %q engine = %q", s.Name, s.Engine)
		}
		if s.LastOutcome == "" {
			t.Errorf("site %q has no last outcome", s.Name)
		}
		byName[s.Name] = s.Variant
	}
	if byName["diag/switchy"] == "" || byName["diag/nested/site"] == "" {
		t.Errorf("sites missing expected names: %v", byName)
	}
}

func TestExplainEndpointHandlesSlashNames(t *testing.T) {
	_, ts := newTestServer(t)
	for _, site := range []string{"diag/switchy", "diag/nested/site"} {
		var got struct {
			Site    string            `json:"site"`
			Engine  string            `json:"engine"`
			Records []json.RawMessage `json:"records"`
		}
		getJSON(t, ts.URL+"/sites/"+site+"/explain", &got)
		if got.Site != site || got.Engine != "diag-test" {
			t.Errorf("explain(%s) = site %q engine %q", site, got.Site, got.Engine)
		}
		if len(got.Records) == 0 {
			t.Errorf("explain(%s) returned no decision records", site)
		}
	}
}

func TestExplainEndpointUnknownSiteIs404(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{
		"/sites/nope/explain",
		"/sites//explain",
		"/sites/diag/switchy", // missing /explain suffix
	} {
		if code, _ := get(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
}

func TestEventsEndpointServesFlightRecorder(t *testing.T) {
	_, ts := newTestServer(t)
	var got struct {
		Total  int64 `json:"total"`
		Count  int   `json:"count"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	getJSON(t, ts.URL+"/events", &got)
	if got.Count == 0 || got.Total < int64(got.Count) {
		t.Fatalf("events payload: count=%d total=%d", got.Count, got.Total)
	}
	kinds := map[string]bool{}
	for _, e := range got.Events {
		kinds[e.Kind] = true
	}
	if !kinds[string(obs.KindTransition)] {
		t.Errorf("flight recorder events missing a transition; kinds = %v", kinds)
	}
}

func TestEventsEndpointWithoutRecorder(t *testing.T) {
	s := New(obs.NewRegistry(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var got struct {
		Total  int64 `json:"total"`
		Count  int   `json:"count"`
		Events []any `json:"events"`
	}
	getJSON(t, ts.URL+"/events", &got)
	if got.Total != 0 || got.Count != 0 || len(got.Events) != 0 {
		t.Errorf("nil-recorder events payload = %+v", got)
	}
}

func TestIndexAndDebugVars(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "/sites/{name}/explain") {
		t.Errorf("index = %d:\n%s", code, body)
	}
	code, body = get(t, ts.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
}

func TestAttachIsSafeMidServe(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var before struct {
		Engines int `json:"engines"`
	}
	getJSON(t, ts.URL+"/sites", &before)
	if before.Engines != 0 {
		t.Fatalf("engines before attach = %d", before.Engines)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Attach(driveEngine(t, reg, nil))
	}()
	// Hammer /sites while the engine is being driven and attached; the
	// race detector guards the locking discipline.
	for i := 0; i < 50; i++ {
		var got struct {
			Engines int `json:"engines"`
		}
		getJSON(t, ts.URL+"/sites", &got)
	}
	<-done
	var after struct {
		Count int `json:"count"`
	}
	getJSON(t, ts.URL+"/sites", &after)
	if after.Count != 2 {
		t.Errorf("sites after attach = %d, want 2", after.Count)
	}
}

func TestListenAndServe(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, obs.NewFlightRecorder(8))
	srv, addr, serveErr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	code, body := get(t, fmt.Sprintf("http://%s/metrics", addr))
	if code != http.StatusOK || !strings.Contains(body, "collectionswitch_") {
		t.Errorf("served /metrics = %d:\n%.200s", code, body)
	}
	// The constructed server must carry the configured timeouts — this is
	// the regression fence for the zero-timeout http.Server bug.
	want := DefaultTimeouts()
	if srv.ReadHeaderTimeout != want.ReadHeader || srv.ReadTimeout != want.Read ||
		srv.WriteTimeout != want.Write || srv.IdleTimeout != want.Idle {
		t.Errorf("server timeouts = %v/%v/%v/%v, want %+v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.WriteTimeout, srv.IdleTimeout, want)
	}
	srv.Close()
	if err := <-serveErr; err != nil {
		t.Errorf("serve error after clean Close = %v, want nil", err)
	}
}

// TestListenAndServePropagatesServeErrors pins the third bugfix of ISSUE 9:
// an accept-loop failure must reach the caller instead of being dropped in
// the serving goroutine.
func TestListenAndServePropagatesServeErrors(t *testing.T) {
	s := New(obs.NewRegistry(), nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln.Close() // doom the listener before Serve touches it
	_, serveErr := s.ServeListener(ln)
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("Serve on a closed listener reported nil, want an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve failure never propagated to the caller")
	}
}

// TestSlowClientCannotPinConnection proves a stalled request header no
// longer holds a connection open indefinitely: with ReadHeaderTimeout set,
// the server must hang up on a client that sends half a header and stops.
func TestSlowClientCannotPinConnection(t *testing.T) {
	s := New(obs.NewRegistry(), nil)
	s.SetTimeouts(Timeouts{
		ReadHeader: 150 * time.Millisecond,
		Read:       time.Second,
		Write:      time.Second,
		Idle:       time.Second,
	})
	srv, addr, _, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenAndServe: %v", err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Half a request: header never terminated, then silence.
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: stall\r\n"); err != nil {
		t.Fatalf("write partial header: %v", err)
	}
	start := time.Now()
	// Before the fix the server read forever and this Read blocked until
	// the deadline; now the server must close the connection itself.
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("set deadline: %v", err)
	}
	buf := make([]byte, 256)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue // e.g. a 408 response body before the close
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("connection still open %s after a stalled header; server never hung up", time.Since(start))
		}
		break // EOF / reset: the server dropped the stalled client
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("server took %s to drop a stalled header; ReadHeaderTimeout was 150ms", elapsed)
	}
}

// TestScrapeDuringEngineClose races every introspection endpoint against
// engines shutting down concurrently; under -race this pins the second
// ISSUE 9 bugfix — snapshot reads must never touch torn engine state, and
// rows from a closed engine surface last-snapshot semantics.
func TestScrapeDuringEngineClose(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(64)
	s := New(reg, rec)
	engines := make([]*core.Engine, 4)
	for i := range engines {
		engines[i] = driveEngine(t, reg, rec)
		s.Attach(engines[i])
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/sites", "/sites/diag/switchy/explain", "/events", "/metrics"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Errorf("GET %s during close: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
						t.Errorf("GET %s during close = %d", path, resp.StatusCode)
					}
				}
			}
		}()
	}
	for _, e := range engines {
		e.Close()
	}
	close(stop)
	wg.Wait()

	// After every engine closed, the surface still serves the final state,
	// flagged as such.
	var got struct {
		Count int `json:"count"`
		Sites []struct {
			Closed bool `json:"closed"`
		} `json:"sites"`
	}
	getJSON(t, ts.URL+"/sites", &got)
	if got.Count == 0 {
		t.Fatal("closed engines lost their site snapshots")
	}
	for _, site := range got.Sites {
		if !site.Closed {
			t.Error("site row from a closed engine not marked closed")
		}
	}
}

func TestNotifySIGQUITStopIsIdempotentEnough(t *testing.T) {
	// Sending an actual SIGQUIT would take the test binary down with it
	// (the handler re-raises by design), so only the install/stop paths
	// are exercised here; CI covers the live path via the smoke step.
	stop := NotifySIGQUIT(obs.NewFlightRecorder(4))
	stop()
	stopNil := NotifySIGQUIT(nil)
	stopNil()
}
