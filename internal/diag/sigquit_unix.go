//go:build unix

package diag

import (
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs"
)

// NotifySIGQUIT arranges for the flight recorder's ring to be dumped to
// stderr when the process receives SIGQUIT, ahead of the Go runtime's own
// goroutine dump: the handler writes the recorder, restores the default
// disposition and re-raises the signal, so the usual ^\ stack traces still
// appear — now preceded by the last framework events that led up to them.
// Returns a stop function detaching the handler. No-op on nil recorders and
// on platforms without SIGQUIT.
func NotifySIGQUIT(rec *obs.FlightRecorder) (stop func()) {
	if rec == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			rec.WriteTo(os.Stderr)
			signal.Reset(syscall.SIGQUIT)
			syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
