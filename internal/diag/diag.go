// Package diag is the live introspection server of the framework (ISSUE 6):
// a small opt-in HTTP surface answering, against a running process, the
// questions the paper's evaluation answers only after the fact — what is
// every allocation context doing, why did (or didn't) it switch, what is the
// framework costing the runtime right now.
//
// Endpoints:
//
//	/            plain-text index of the endpoints below
//	/metrics     Prometheus text exposition of the shared obs.Registry
//	/debug/vars  standard expvar JSON (includes registries published there)
//	/sites       JSON snapshot of every allocation context of every attached
//	             engine: variant, rounds, window fill, cooldown, last outcome
//	/sites/{name}/explain  last K decision records of one context
//	/events      flight-recorder ring: the most recent framework events
//
// The server holds no locks while serving beyond the brief per-engine
// snapshot locks, and nothing here runs unless a server is constructed —
// the framework's default paths are unaffected.
package diag

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Server exposes the introspection endpoints over a set of attached engines.
// Construct with New, register engines with Attach (safe at any time, also
// mid-serve), and mount Handler on any http server — or use ListenAndServe.
type Server struct {
	reg *obs.Registry
	rec *obs.FlightRecorder

	mu      sync.Mutex
	engines []*core.Engine
}

// New returns a server rendering the given registry on /metrics and the
// given flight recorder on /events. Either may be nil: a nil registry
// serves an empty (but well-formed) exposition, a nil recorder serves an
// empty event list.
func New(reg *obs.Registry, rec *obs.FlightRecorder) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{reg: reg, rec: rec}
}

// Registry returns the registry the server renders on /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Recorder returns the flight recorder behind /events (nil if none).
func (s *Server) Recorder() *obs.FlightRecorder { return s.rec }

// Attach registers an engine with the introspection surface: its sites
// appear under /sites and its decision records under /sites/{name}/explain.
// Engines are never detached — a closed engine's last state remains
// inspectable, which is exactly what a post-mortem wants.
func (s *Server) Attach(e *core.Engine) {
	if e == nil {
		return
	}
	s.mu.Lock()
	s.engines = append(s.engines, e)
	s.mu.Unlock()
}

// snapshot returns the attached engines.
func (s *Server) snapshot() []*core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.Engine, len(s.engines))
	copy(out, s.engines)
	return out
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	// Site names routinely contain '/' (e.g. "telemetry/AlertSet"), so
	// /sites/{name}/explain is parsed manually rather than with a ServeMux
	// wildcard, which would split on the slashes.
	mux.HandleFunc("/sites", s.handleSites)
	mux.HandleFunc("/sites/", s.handleExplain)
	mux.HandleFunc("/events", s.handleEvents)
	return mux
}

// ListenAndServe binds addr (":0" picks a free port), serves the handler on
// a background goroutine and returns the bound address. The returned
// http.Server can be Closed/Shutdown by the caller.
func (s *Server) ListenAndServe(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			// Serving diagnostics must never take the process down; the
			// error surfaces when the caller Closes the server.
			_ = err
		}
	}()
	return srv, ln.Addr().String(), nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "collectionswitch introspection\n\n")
	fmt.Fprintf(w, "  /metrics                  Prometheus text exposition\n")
	fmt.Fprintf(w, "  /debug/vars               expvar JSON\n")
	fmt.Fprintf(w, "  /sites                    all allocation contexts (JSON)\n")
	fmt.Fprintf(w, "  /sites/{name}/explain     decision records of one context\n")
	fmt.Fprintf(w, "  /events                   flight-recorder event ring\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.reg.WriteTo(w); err != nil {
		// Too late for an error status; the client sees a truncated body.
		return
	}
}

// siteEntry is one /sites row: the engine label plus the context status.
// Confidence echoes the engine's ConfidenceLevel, so a dashboard can tell a
// held site under confidence gating apart from one on a point-estimate
// engine (omitted when gating is off).
type siteEntry struct {
	Engine     string  `json:"engine"`
	Confidence float64 `json:"confidence,omitempty"`
	core.SiteStatus
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	engines := s.snapshot()
	entries := make([]siteEntry, 0, 16)
	for _, e := range engines {
		cfg := e.Config()
		for _, st := range e.SiteStatuses() {
			entries = append(entries, siteEntry{Engine: cfg.Name, Confidence: cfg.ConfidenceLevel, SiteStatus: st})
		}
	}
	writeJSON(w, map[string]any{
		"engines": len(engines),
		"count":   len(entries),
		"sites":   entries,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	name, ok := explainSite(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	// First engine knowing the site wins; engines are searched in attach
	// order. A site that exists but has recording disabled returns an empty
	// record list rather than 404.
	for _, e := range s.snapshot() {
		for _, st := range e.SiteStatuses() {
			if st.Name != name {
				continue
			}
			recs := e.Explain(name)
			if recs == nil {
				recs = []core.DecisionRecord{}
			}
			writeJSON(w, map[string]any{
				"site":    name,
				"engine":  e.Config().Name,
				"variant": st.Variant,
				"records": recs,
			})
			return
		}
	}
	http.Error(w, fmt.Sprintf("unknown site %q", name), http.StatusNotFound)
}

// explainSite extracts the site name from /sites/{name}/explain, where
// {name} may itself contain slashes.
func explainSite(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, "/sites/")
	if !ok {
		return "", false
	}
	name, ok := strings.CutSuffix(rest, "/explain")
	if !ok || name == "" {
		return "", false
	}
	return name, true
}

// eventEntry is one /events row.
type eventEntry struct {
	When  time.Time `json:"when"`
	Kind  obs.Kind  `json:"kind"`
	Event obs.Event `json:"event"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	entries := []eventEntry{}
	var total int64
	if s.rec != nil {
		snap := s.rec.Snapshot()
		total = s.rec.Total()
		entries = make([]eventEntry, len(snap))
		for i, te := range snap {
			entries[i] = eventEntry{When: te.When, Kind: te.Event.EventKind(), Event: te.Event}
		}
	}
	writeJSON(w, map[string]any{
		"total":  total,
		"count":  len(entries),
		"events": entries,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		_ = err
	}
}
