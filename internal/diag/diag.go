// Package diag is the live introspection server of the framework (ISSUE 6):
// a small opt-in HTTP surface answering, against a running process, the
// questions the paper's evaluation answers only after the fact — what is
// every allocation context doing, why did (or didn't) it switch, what is the
// framework costing the runtime right now.
//
// Endpoints:
//
//	/            plain-text index of the endpoints below
//	/metrics     Prometheus text exposition of the shared obs.Registry
//	/debug/vars  standard expvar JSON (includes registries published there)
//	/sites       JSON snapshot of every allocation context of every attached
//	             engine: variant, rounds, window fill, cooldown, last outcome
//	/sites/{name}/explain  last K decision records of one context
//	/events      flight-recorder ring: the most recent framework events
//
// The server holds no locks while serving beyond the brief per-engine
// snapshot locks, and nothing here runs unless a server is constructed —
// the framework's default paths are unaffected.
package diag

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Timeouts bounds the per-connection I/O of the HTTP server ListenAndServe
// constructs. The zero value of a field disables that timeout — pass the
// result of DefaultTimeouts (possibly modified) rather than a zero struct
// unless an unbounded server is genuinely wanted.
type Timeouts struct {
	// ReadHeader bounds how long a client may take to send the request
	// header; it is the defence against stalled-header connection pinning.
	ReadHeader time.Duration
	// Read bounds the whole request read, Write the whole response write,
	// Idle how long a keep-alive connection may sit between requests.
	Read  time.Duration
	Write time.Duration
	Idle  time.Duration
}

// DefaultTimeouts returns the timeouts new servers start with: generous for
// any real scrape, but strict enough that a stalled or byte-dribbling client
// cannot hold a connection (and its file descriptor) open indefinitely.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		ReadHeader: 5 * time.Second,
		Read:       30 * time.Second,
		Write:      30 * time.Second,
		Idle:       2 * time.Minute,
	}
}

// Server exposes the introspection endpoints over a set of attached engines.
// Construct with New, register engines with Attach (safe at any time, also
// mid-serve), and mount Handler on any http server — or use ListenAndServe.
type Server struct {
	reg *obs.Registry
	rec *obs.FlightRecorder

	mu       sync.Mutex
	engines  []*core.Engine
	timeouts Timeouts
}

// New returns a server rendering the given registry on /metrics and the
// given flight recorder on /events. Either may be nil: a nil registry
// serves an empty (but well-formed) exposition, a nil recorder serves an
// empty event list.
func New(reg *obs.Registry, rec *obs.FlightRecorder) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{reg: reg, rec: rec, timeouts: DefaultTimeouts()}
}

// SetTimeouts overrides the connection timeouts applied by ListenAndServe
// and ServeListener. It replaces the whole set: zero fields disable that
// timeout. Takes effect for servers started after the call.
func (s *Server) SetTimeouts(t Timeouts) {
	s.mu.Lock()
	s.timeouts = t
	s.mu.Unlock()
}

// Timeouts returns the currently configured connection timeouts.
func (s *Server) Timeouts() Timeouts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timeouts
}

// Registry returns the registry the server renders on /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Recorder returns the flight recorder behind /events (nil if none).
func (s *Server) Recorder() *obs.FlightRecorder { return s.rec }

// Attach registers an engine with the introspection surface: its sites
// appear under /sites and its decision records under /sites/{name}/explain.
// Engines are never detached — a closed engine's last state remains
// inspectable, which is exactly what a post-mortem wants.
func (s *Server) Attach(e *core.Engine) {
	if e == nil {
		return
	}
	s.mu.Lock()
	s.engines = append(s.engines, e)
	s.mu.Unlock()
}

// snapshot returns the attached engines.
func (s *Server) snapshot() []*core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*core.Engine, len(s.engines))
	copy(out, s.engines)
	return out
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", s.handleIndex)
	mux.HandleFunc("/metrics", guard(s.handleMetrics))
	mux.Handle("/debug/vars", expvar.Handler())
	// Site names routinely contain '/' (e.g. "telemetry/AlertSet"), so
	// /sites/{name}/explain is parsed manually rather than with a ServeMux
	// wildcard, which would split on the slashes.
	mux.HandleFunc("/sites", guard(s.handleSites))
	mux.HandleFunc("/sites/", guard(s.handleExplain))
	mux.HandleFunc("/events", guard(s.handleEvents))
	return mux
}

// guard recovers handler panics into a 503. The introspection handlers read
// engines that may be concurrently Close()d; every snapshot method they call
// is mutex-guarded and remains valid after close, but diagnostics must
// degrade to an error response — never take the process down — if that
// invariant ever regresses mid-scrape.
func guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// If the handler already wrote, this extra status is a
				// no-op on the wire; the client sees a truncated body.
				http.Error(w, fmt.Sprintf("introspection snapshot failed: %v", rec),
					http.StatusServiceUnavailable)
			}
		}()
		h(w, r)
	}
}

// ListenAndServe binds addr (":0" picks a free port), serves the handler on
// a background goroutine and returns the server, the bound address, and a
// 1-buffered channel that carries the terminal serve error. The channel
// receives exactly one value when the accept loop stops: nil after a clean
// Shutdown/Close, the underlying error otherwise — so an embedding process
// (cmd/collserve) fails fast on accept errors instead of silently serving
// nothing. The returned http.Server can be Closed/Shutdown by the caller.
func (s *Server) ListenAndServe(addr string) (*http.Server, string, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", nil, err
	}
	srv, errc := s.ServeListener(ln)
	return srv, ln.Addr().String(), errc, nil
}

// ServeListener serves the handler on ln from a background goroutine with
// the configured Timeouts applied, returning the http.Server and the
// terminal-error channel (see ListenAndServe). Split out so callers and
// tests can bring their own listener.
func (s *Server) ServeListener(ln net.Listener) (*http.Server, <-chan error) {
	t := s.Timeouts()
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
	errc := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		errc <- err
	}()
	return srv, errc
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "collectionswitch introspection\n\n")
	fmt.Fprintf(w, "  /metrics                  Prometheus text exposition\n")
	fmt.Fprintf(w, "  /debug/vars               expvar JSON\n")
	fmt.Fprintf(w, "  /sites                    all allocation contexts (JSON)\n")
	fmt.Fprintf(w, "  /sites/{name}/explain     decision records of one context\n")
	fmt.Fprintf(w, "  /events                   flight-recorder event ring\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.reg.WriteTo(w); err != nil {
		// Too late for an error status; the client sees a truncated body.
		return
	}
}

// siteEntry is one /sites row: the engine label plus the context status.
// Confidence echoes the engine's ConfidenceLevel, so a dashboard can tell a
// held site under confidence gating apart from one on a point-estimate
// engine (omitted when gating is off).
type siteEntry struct {
	Engine     string  `json:"engine"`
	Confidence float64 `json:"confidence,omitempty"`
	// Closed marks rows from an engine whose Close has begun: the row is
	// the engine's final state, not a live reading. Scrapes racing a
	// shutdown get last-snapshot semantics instead of an error.
	Closed bool `json:"closed,omitempty"`
	core.SiteStatus
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	engines := s.snapshot()
	entries := make([]siteEntry, 0, 16)
	for _, e := range engines {
		cfg := e.Config()
		closed := e.Closed()
		for _, st := range e.SiteStatuses() {
			entries = append(entries, siteEntry{Engine: cfg.Name, Confidence: cfg.ConfidenceLevel, Closed: closed, SiteStatus: st})
		}
	}
	writeJSON(w, map[string]any{
		"engines": len(engines),
		"count":   len(entries),
		"sites":   entries,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	name, ok := explainSite(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	// First engine knowing the site wins; engines are searched in attach
	// order. A site that exists but has recording disabled returns an empty
	// record list rather than 404.
	for _, e := range s.snapshot() {
		for _, st := range e.SiteStatuses() {
			if st.Name != name {
				continue
			}
			recs := e.Explain(name)
			if recs == nil {
				recs = []core.DecisionRecord{}
			}
			writeJSON(w, map[string]any{
				"site":    name,
				"engine":  e.Config().Name,
				"closed":  e.Closed(),
				"variant": st.Variant,
				"records": recs,
			})
			return
		}
	}
	http.Error(w, fmt.Sprintf("unknown site %q", name), http.StatusNotFound)
}

// explainSite extracts the site name from /sites/{name}/explain, where
// {name} may itself contain slashes.
func explainSite(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, "/sites/")
	if !ok {
		return "", false
	}
	name, ok := strings.CutSuffix(rest, "/explain")
	if !ok || name == "" {
		return "", false
	}
	return name, true
}

// eventEntry is one /events row.
type eventEntry struct {
	When  time.Time `json:"when"`
	Kind  obs.Kind  `json:"kind"`
	Event obs.Event `json:"event"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	entries := []eventEntry{}
	var total int64
	if s.rec != nil {
		snap := s.rec.Snapshot()
		total = s.rec.Total()
		entries = make([]eventEntry, len(snap))
		for i, te := range snap {
			entries[i] = eventEntry{When: te.When, Kind: te.Event.EventKind(), Event: te.Event}
		}
	}
	writeJSON(w, map[string]any{
		"total":  total,
		"count":  len(entries),
		"events": entries,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing more to do.
		_ = err
	}
}
