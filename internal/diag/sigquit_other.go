//go:build !unix

package diag

import "repro/internal/obs"

// NotifySIGQUIT is a no-op where SIGQUIT does not exist; see the unix build
// for the real behavior.
func NotifySIGQUIT(rec *obs.FlightRecorder) (stop func()) {
	return func() {}
}
