package obs

import "sync"

// RingSink keeps the most recent events in a fixed-capacity ring buffer —
// the in-memory sink for tests and for "last N events" debugging views.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	start int
	n     int
	total int64
}

// NewRingSink returns a ring buffer holding at most capacity events
// (minimum 1). Older events are evicted as newer ones arrive.
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Emit appends the event, evicting the oldest when full.
func (s *RingSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if s.n < len(s.buf) {
		s.buf[(s.start+s.n)%len(s.buf)] = e
		s.n++
		return
	}
	s.buf[s.start] = e
	s.start = (s.start + 1) % len(s.buf)
}

// EmitBatch appends the events in slice order under one lock acquisition,
// evicting oldest entries as needed.
func (s *RingSink) EmitBatch(events []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		s.total++
		if s.n < len(s.buf) {
			s.buf[(s.start+s.n)%len(s.buf)] = e
			s.n++
			continue
		}
		s.buf[s.start] = e
		s.start = (s.start + 1) % len(s.buf)
	}
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// Len returns the number of retained events.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Total returns the number of events ever emitted, including evicted ones.
func (s *RingSink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Collector retains every emitted event — the unbounded sibling of RingSink,
// used where the full stream must be replayed (e.g. rebuilding the Table 6
// aggregation from Transition events).
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty unbounded collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends the event.
func (s *Collector) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// EmitBatch appends the events in slice order under one lock acquisition.
func (s *Collector) EmitBatch(events []Event) {
	s.mu.Lock()
	s.events = append(s.events, events...)
	s.mu.Unlock()
}

// Events returns a copy of every event in emission order.
func (s *Collector) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// multiSink fans every event out to several sinks in fixed order.
type multiSink struct {
	sinks []Sink
}

func (m multiSink) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// EmitBatch forwards the whole batch to each child in order, so children
// that support batched delivery keep their one-lock-per-pass property.
func (m multiSink) EmitBatch(events []Event) {
	for _, s := range m.sinks {
		EmitAll(s, events)
	}
}

// Flush drains every child that buffers, returning the first error.
func (m multiSink) Flush() error {
	var first error
	for _, s := range m.sinks {
		if err := FlushSink(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Multi returns a sink delivering every event to each non-nil sink in
// argument order. Nil sinks are dropped; with zero or one survivor the
// multiplexer collapses to nil or the sink itself.
func Multi(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return multiSink{sinks: kept}
	}
}

// countingSink bumps the registry's per-kind event counter for every event
// it sees; see CountingSink.
type countingSink struct{ reg *Registry }

func (s countingSink) Emit(e Event) { s.reg.IncEvent(e.EventKind()) }

// EmitBatch counts each event of the batch.
func (s countingSink) EmitBatch(events []Event) {
	for _, e := range events {
		s.reg.IncEvent(e.EventKind())
	}
}

// CountingSink returns a sink that counts events by kind into the
// registry's events_total counters — the /metrics view of event traffic.
// Fan it out next to the real sinks with Multi. Nil registries yield a nil
// sink (which Multi drops).
func CountingSink(r *Registry) Sink {
	if r == nil {
		return nil
	}
	return countingSink{reg: r}
}

// LogfSink adapts a printf-style callback to the event stream: every event
// is rendered through its Logline formatting. The events that existed in the
// legacy Config.Logf hook produce byte-identical lines, so pre-existing log
// scrapers keep working.
type LogfSink struct {
	fn func(format string, args ...any)
}

// NewLogfSink wraps fn; a nil fn yields a sink that drops everything.
func NewLogfSink(fn func(format string, args ...any)) *LogfSink {
	return &LogfSink{fn: fn}
}

// Emit formats the event through the callback.
func (s *LogfSink) Emit(e Event) {
	if s.fn == nil {
		return
	}
	format, args := e.Logline()
	s.fn(format, args...)
}

// EmitBatch formats each event of the batch in order.
func (s *LogfSink) EmitBatch(events []Event) {
	if s.fn == nil {
		return
	}
	for _, e := range events {
		format, args := e.Logline()
		s.fn(format, args...)
	}
}
