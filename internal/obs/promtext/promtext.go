// Package promtext is a minimal parser for the Prometheus text exposition
// format — just enough to round-trip and validate what obs.Registry.WriteTo
// renders. It exists for tests (the /metrics output of internal/obs and
// internal/diag is parsed back and checked for well-formedness on every
// run) and deliberately implements only the classic text format: HELP/TYPE
// comment lines, samples with optionally labeled names, and the three
// escape sequences the format defines for label values (\\, \" and \n).
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one metric sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family groups the samples sharing one base metric name with its HELP and
// TYPE metadata. Histogram families own their _bucket/_sum/_count samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse reads a complete text exposition. Every sample must be preceded by
// HELP and TYPE lines for its family (the stricter-than-spec discipline the
// obs renderer follows), sample lines must be well-formed, and families must
// not repeat. Histogram samples (name_bucket/_sum/_count) attach to the
// family of their base name.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var fams []Family
	index := make(map[string]int) // family name -> fams index
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseMeta(line, lineNo, &fams, index); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		base := familyName(s.Name)
		i, ok := index[base]
		if !ok {
			return nil, fmt.Errorf("promtext: line %d: sample %q has no preceding HELP/TYPE for family %q", lineNo, s.Name, base)
		}
		if fams[i].Help == "" || fams[i].Type == "" {
			return nil, fmt.Errorf("promtext: line %d: family %q is missing %s", lineNo, base, missingMeta(fams[i]))
		}
		fams[i].Samples = append(fams[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func missingMeta(f Family) string {
	switch {
	case f.Help == "" && f.Type == "":
		return "HELP and TYPE"
	case f.Help == "":
		return "HELP"
	default:
		return "TYPE"
	}
}

// parseMeta handles "# HELP name text" and "# TYPE name type" lines; other
// comment lines are ignored.
func parseMeta(line string, lineNo int, fams *[]Family, index map[string]int) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // plain comment
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("promtext: line %d: invalid metric name %q in %s line", lineNo, name, fields[1])
	}
	i, ok := index[name]
	if !ok {
		index[name] = len(*fams)
		*fams = append(*fams, Family{Name: name})
		i = index[name]
	}
	f := &(*fams)[i]
	rest := ""
	if len(fields) == 4 {
		rest = fields[3]
	}
	switch fields[1] {
	case "HELP":
		if f.Help != "" {
			return fmt.Errorf("promtext: line %d: duplicate HELP for %q", lineNo, name)
		}
		if rest == "" {
			return fmt.Errorf("promtext: line %d: empty HELP text for %q", lineNo, name)
		}
		f.Help = rest
	case "TYPE":
		if f.Type != "" {
			return fmt.Errorf("promtext: line %d: duplicate TYPE for %q", lineNo, name)
		}
		switch rest {
		case "counter", "gauge", "histogram", "summary", "untyped":
			f.Type = rest
		default:
			return fmt.Errorf("promtext: line %d: unknown TYPE %q for %q", lineNo, rest, name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("promtext: line %d: TYPE for %q after its samples", lineNo, name)
		}
	}
	return nil
}

// parseSample parses one "name{labels} value" line.
func parseSample(line string, lineNo int) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("promtext: line %d: invalid sample name %q", lineNo, s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest, lineNo)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("promtext: line %d: malformed sample %q", lineNo, line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("promtext: line %d: bad value %q: %v", lineNo, fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {name="value",...} block starting at rest[0] == '{'
// and returns the index one past the closing brace.
func parseLabels(rest string, lineNo int) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return 0, nil, fmt.Errorf("promtext: line %d: unterminated label block", lineNo)
		}
		if rest[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(rest) && isLabelChar(rest[i], i == start) {
			i++
		}
		name := rest[start:i]
		if name == "" || i >= len(rest) || rest[i] != '=' {
			return 0, nil, fmt.Errorf("promtext: line %d: malformed label name near %q", lineNo, rest[start:])
		}
		i++ // '='
		if i >= len(rest) || rest[i] != '"' {
			return 0, nil, fmt.Errorf("promtext: line %d: label %q value is not quoted", lineNo, name)
		}
		value, n, err := parseQuoted(rest[i:], lineNo)
		if err != nil {
			return 0, nil, err
		}
		i += n
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("promtext: line %d: duplicate label %q", lineNo, name)
		}
		labels[name] = value
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

// parseQuoted decodes a double-quoted label value honoring exactly the
// three escapes the text format defines (\\, \" and \n); any other escape
// sequence is an error. It returns the decoded value and the number of
// input bytes consumed including both quotes.
func parseQuoted(q string, lineNo int) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(q); i++ {
		switch q[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(q) {
				break
			}
			switch q[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("promtext: line %d: invalid escape \\%c in label value", lineNo, q[i])
			}
		case '\n':
			return "", 0, fmt.Errorf("promtext: line %d: raw newline in label value", lineNo)
		default:
			b.WriteByte(q[i])
		}
	}
	return "", 0, fmt.Errorf("promtext: line %d: unterminated label value", lineNo)
}

// parseValue parses a sample value, accepting +Inf/-Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyName maps a sample name to its family: histogram/summary series
// (_bucket, _sum, _count) belong to the base name.
func familyName(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// ValidateHistogram checks one histogram family: every series is a
// _bucket/_sum/_count of the family name, buckets carry an le label, the
// cumulative counts are non-decreasing in le order, the last bucket is
// +Inf, and its count equals the _count sample.
func ValidateHistogram(f Family) error {
	if f.Type != "histogram" {
		return fmt.Errorf("promtext: family %q is %q, not histogram", f.Name, f.Type)
	}
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	var sum, count *float64
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("promtext: %s_bucket sample without le label", f.Name)
			}
			v, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("promtext: %s_bucket has bad le %q", f.Name, le)
			}
			buckets = append(buckets, bucket{le: v, count: s.Value})
		case f.Name + "_sum":
			v := s.Value
			sum = &v
		case f.Name + "_count":
			v := s.Value
			count = &v
		default:
			return fmt.Errorf("promtext: unexpected series %q in histogram %q", s.Name, f.Name)
		}
	}
	if len(buckets) == 0 {
		return fmt.Errorf("promtext: histogram %q has no buckets", f.Name)
	}
	if sum == nil || count == nil {
		return fmt.Errorf("promtext: histogram %q is missing _sum or _count", f.Name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			return fmt.Errorf("promtext: histogram %q buckets not cumulative at le=%g (%g < %g)",
				f.Name, buckets[i].le, buckets[i].count, buckets[i-1].count)
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("promtext: histogram %q does not end in a +Inf bucket", f.Name)
	}
	if last.count != *count {
		return fmt.Errorf("promtext: histogram %q +Inf bucket %g != count %g", f.Name, last.count, *count)
	}
	return nil
}

// Validate checks the whole exposition: every family has HELP and TYPE, and
// every histogram family passes ValidateHistogram. Families with zero
// samples are legal (a label-indexed counter before its first increment
// renders as bare metadata). Parse already guarantees sample-line
// well-formedness.
func Validate(fams []Family) error {
	for _, f := range fams {
		if f.Help == "" || f.Type == "" {
			return fmt.Errorf("promtext: family %q is missing %s", f.Name, missingMeta(f))
		}
		if f.Type == "histogram" && len(f.Samples) > 0 {
			if err := ValidateHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
