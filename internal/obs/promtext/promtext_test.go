package promtext

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRegistryExpositionRoundTrips is the satellite acceptance test: a fully
// populated obs.Registry must render a /metrics exposition this parser
// accepts and validates — HELP/TYPE on every family, well-formed samples,
// histograms cumulative and +Inf-terminated — including hostile label
// values and the new runtime/GC gauges.
func TestRegistryExpositionRoundTrips(t *testing.T) {
	r := obs.NewRegistry()
	r.InstancesCreated.Add(1000)
	r.InstancesMonitored.Add(100)
	r.AnalysisRounds.Add(3)
	r.AnalysisLatency.Observe(0.0004)
	r.AnalysisLatency.Observe(0.012)
	r.SelfOverheadNs.Add(12_000_000)
	r.IncTransition("plain:site", "list/array", "list/hasharray")
	r.IncTransition("hostile\"site\\with\nnewline", "a", "b")
	sink := obs.CountingSink(r)
	sink.Emit(obs.Transition{})
	sink.Emit(obs.RoundStarted{})
	// Publish the runtime gauges and the GC pause histogram.
	obs.NewRuntimeSampler(r).SampleOnce()

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	fams, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse rejected the registry exposition: %v\n%s", err, buf.String())
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	byName := make(map[string]Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"collectionswitch_instances_created_total",
		"collectionswitch_self_overhead_ns_total",
		"collectionswitch_self_overhead_fraction",
		"collectionswitch_runtime_samples_total",
		"collectionswitch_live_heap_bytes",
		"collectionswitch_gc_cpu_fraction",
		"collectionswitch_transitions_total",
		"collectionswitch_events_total",
		"collectionswitch_analysis_round_seconds",
		"collectionswitch_gc_pause_seconds",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("exposition missing family %s", want)
		}
	}

	// The hostile label round-trips back to the original value.
	var hostileSeen bool
	for _, s := range byName["collectionswitch_transitions_total"].Samples {
		if s.Labels["context"] == "hostile\"site\\with\nnewline" {
			hostileSeen = true
		}
	}
	if !hostileSeen {
		t.Error("hostile context label did not round-trip through the exposition")
	}

	// Histograms carry real data, not just shape.
	if f := byName["collectionswitch_analysis_round_seconds"]; len(f.Samples) > 0 {
		var count float64
		for _, s := range f.Samples {
			if s.Name == f.Name+"_count" {
				count = s.Value
			}
		}
		if count != 2 {
			t.Errorf("analysis histogram count = %g, want 2", count)
		}
	}
	if f := byName["collectionswitch_gc_pause_seconds"]; f.Type != "histogram" {
		t.Errorf("gc_pause_seconds type = %q, want histogram", f.Type)
	}
}

// TestEmptyRegistryStillValid pins the no-activity shape: even before any
// engine work or sampler tick, the exposition must parse and validate (the
// GC pause histogram renders a single empty +Inf bucket).
func TestEmptyRegistryStillValid(t *testing.T) {
	var buf bytes.Buffer
	if _, err := obs.NewRegistry().WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	fams, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseSampleForms(t *testing.T) {
	const text = `# HELP m one metric
# TYPE m gauge
m 1
m{a="x",b="y y"} 2.5
m{esc="q\"u\\o\nte"} +Inf
m{neg="v"} -17 1700000000
`
	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 4 {
		t.Fatalf("got %+v", fams)
	}
	s := fams[0].Samples
	if s[0].Value != 1 || s[0].Labels != nil {
		t.Errorf("bare sample = %+v", s[0])
	}
	if s[1].Labels["b"] != "y y" {
		t.Errorf("labels = %+v", s[1].Labels)
	}
	if got := s[2].Labels["esc"]; got != "q\"u\\o\nte" {
		t.Errorf("escaped label decoded to %q", got)
	}
	if !math.IsInf(s[2].Value, 1) {
		t.Errorf("value = %g, want +Inf", s[2].Value)
	}
	if s[3].Value != -17 {
		t.Errorf("timestamped sample value = %g", s[3].Value)
	}
}

func TestParseRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"sample without meta":  "m 1\n",
		"missing TYPE":         "# HELP m x\nm 1\n",
		"missing HELP":         "# TYPE m gauge\nm 1\n",
		"duplicate HELP":       "# HELP m x\n# HELP m y\n# TYPE m gauge\nm 1\n",
		"duplicate TYPE":       "# HELP m x\n# TYPE m gauge\n# TYPE m counter\nm 1\n",
		"unknown TYPE":         "# HELP m x\n# TYPE m banana\nm 1\n",
		"TYPE after samples":   "# HELP m x\n# TYPE m gauge\nm 1\n# TYPE m gauge\n",
		"bad escape":           "# HELP m x\n# TYPE m gauge\nm{l=\"a\\tb\"} 1\n",
		"unterminated quote":   "# HELP m x\n# TYPE m gauge\nm{l=\"a} 1\n",
		"unquoted label value": "# HELP m x\n# TYPE m gauge\nm{l=a} 1\n",
		"bad value":            "# HELP m x\n# TYPE m gauge\nm wat\n",
		"duplicate label":      "# HELP m x\n# TYPE m gauge\nm{a=\"1\",a=\"2\"} 1\n",
		"bad metric name":      "# HELP m x\n# TYPE m gauge\n9m 1\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

func TestValidateHistogram(t *testing.T) {
	good := `# HELP h x
# TYPE h histogram
h_bucket{le="0.1"} 1
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 4
h_sum 2.2
h_count 4
`
	fams, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Errorf("valid histogram rejected: %v", err)
	}

	bad := map[string]string{
		"no +Inf bucket": `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 3
h_sum 1
h_count 3
`,
		"non-cumulative": `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`,
		"Inf != count": `# HELP h x
# TYPE h histogram
h_bucket{le="+Inf"} 2
h_sum 1
h_count 3
`,
		"bucket without le": `# HELP h x
# TYPE h histogram
h_bucket{wat="1"} 2
h_sum 1
h_count 2
`,
		"missing sum": `# HELP h x
# TYPE h histogram
h_bucket{le="+Inf"} 2
h_count 2
`,
	}
	for name, text := range bad {
		fams, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		if err := Validate(fams); err == nil {
			t.Errorf("%s: Validate accepted a broken histogram", name)
		}
	}
}

// Guard against accidental time-dependence: two immediate renders of the
// same registry parse to the same family set (values like the self-overhead
// fraction may differ, the structure must not).
func TestExpositionStructureStable(t *testing.T) {
	r := obs.NewRegistry()
	r.IncTransition("s", "a", "b")
	parseNames := func() []string {
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		fams, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		names := make([]string, len(fams))
		for i, f := range fams {
			names[i] = f.Name
		}
		return names
	}
	a := parseNames()
	time.Sleep(2 * time.Millisecond)
	b := parseNames()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("family set changed between renders:\n%v\n%v", a, b)
	}
}
