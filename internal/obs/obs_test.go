package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// allEvents returns one populated instance of every event type; the test
// table covers the full taxonomy so a new event cannot ship without
// round-trip coverage (the compile-time kinds list below enforces it).
func allEvents() []Event {
	return []Event{
		ContextRegistered{Engine: "e1", Context: "site:a"},
		ContextRegistered{Engine: "e1", Context: "site:late", Dropped: true},
		DuplicateContextName{Engine: "e1", Name: "site:a", Renamed: "site:a#2"},
		RoundStarted{Engine: "e1", Round: 3, Contexts: 2},
		ContextAnalyzed{Engine: "e1", Round: 3, Context: "site:a", DurationNs: 1800},
		RoundCompleted{Engine: "e1", Round: 3, DurationNs: 41500, Contexts: []ContextWindowStat{
			{Context: "site:a", Variant: "list/array", Round: 1, WindowFill: 37, Folded: 12, Cooldown: 0},
			{Context: "site:b", Variant: "map/hash", Round: 0, WindowFill: 100, Folded: 61, Cooldown: 300},
		}},
		WindowClosed{Engine: "e1", Context: "site:a", Round: 2, Variant: "list/hasharray",
			WindowSize: 100, Finished: 73, FinishedRatio: 0.73, SizeSpread: 12.5},
		Transition{Engine: "e1", Context: "site:a", From: "list/array", To: "list/hasharray",
			Round: 1, Ratios: map[string]float64{"time-ns": 0.41, "alloc-b": 1.02}},
		CooldownEntered{Engine: "e1", Context: "site:a", Round: 2, SkipNext: 300},
		ConfigClamped{Engine: "e1", Field: "FinishedRatio", From: 1.5, To: 1},
		EngineClosed{Engine: "e1", Contexts: 2, Rounds: 4, Transitions: 1},
		CheckCompleted{Variant: "set/hash", Abstraction: "set", Seed: 42, Ops: 400},
		CheckCompleted{Variant: "list/linked", Abstraction: "list", Seed: 7, Ops: 400, Diverged: true},
		CheckDivergence{Variant: "list/linked", Abstraction: "list", Seed: 7,
			OpIndex: 3, Ops: 4, Detail: "Get(2) = 5, oracle 9"},
		WarmStart{Engine: "e1", Context: "site:a", Variant: "list/hasharray"},
		CalibrationStarted{Engine: "e1", Sites: 2, Cells: 48},
		CalibrationCompleted{Engine: "e1", Measured: 31, Planned: 48, ShadowNs: 812_000, Swapped: true},
		CalibrationDrift{Engine: "e1", Context: "site:a", Drift: 0.82, Threshold: 0.5},
		StoreSaved{Path: "/tmp/store/store.json", Sites: 2, Curves: 96},
		StoreLoaded{Path: "/tmp/store/store.json", Sites: 2, Curves: 96},
		StoreRejected{Path: "/tmp/store/store.json", Reason: "fingerprint mismatch"},
	}
}

func TestEventTaxonomyCovered(t *testing.T) {
	kinds := []Kind{
		KindContextRegistered, KindDuplicateContextName,
		KindRoundStarted, KindRoundCompleted, KindContextAnalyzed,
		KindWindowClosed, KindTransition, KindCooldownEntered,
		KindConfigClamped, KindEngineClosed,
		KindCheckCompleted, KindCheckDivergence,
		KindWarmStart, KindCalibrationStarted, KindCalibrationCompleted,
		KindCalibrationDrift, KindStoreSaved, KindStoreLoaded, KindStoreRejected,
	}
	seen := make(map[Kind]bool)
	for _, e := range allEvents() {
		seen[e.EventKind()] = true
	}
	for _, k := range kinds {
		if !seen[k] {
			t.Errorf("allEvents has no instance of kind %s", k)
		}
	}
	if len(seen) != len(kinds) {
		t.Errorf("taxonomy drift: %d kinds seen, %d listed", len(seen), len(kinds))
	}
}

func TestJSONLRoundTripsEveryEventType(t *testing.T) {
	for _, want := range allEvents() {
		t.Run(string(want.EventKind()), func(t *testing.T) {
			var buf bytes.Buffer
			s := NewJSONLSink(&buf)
			s.Emit(want)
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			got, stamp, err := Decode(bytes.TrimSpace(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if stamp.IsZero() {
				t.Error("decoded timestamp is zero")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, want)
			}
		})
	}
}

func TestReadAllPreservesOrder(t *testing.T) {
	events := allEvents()
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("stream mismatch:\n got %v\nwant %v", got, events)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, _, err := Decode([]byte(`{"kind":"nonsense","time_unix_ns":1,"event":{}}`)); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("expected error for malformed line")
	}
}

func TestRingSinkEviction(t *testing.T) {
	r := NewRingSink(3)
	for i := 0; i < 5; i++ {
		r.Emit(RoundStarted{Round: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	got := r.Events()
	for i, e := range got {
		want := i + 2 // rounds 2, 3, 4 survive
		if e.(RoundStarted).Round != want {
			t.Errorf("events[%d].Round = %d, want %d", i, e.(RoundStarted).Round, want)
		}
	}
}

func TestCollectorKeepsEverything(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 100; i++ {
		c.Emit(RoundStarted{Round: i})
	}
	events := c.Events()
	if len(events) != 100 {
		t.Fatalf("len = %d, want 100", len(events))
	}
	if events[99].(RoundStarted).Round != 99 {
		t.Error("order not preserved")
	}
}

func TestMultiFanoutOrdering(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	m := Multi(a, nil, b)
	events := allEvents()
	for _, e := range events {
		m.Emit(e)
	}
	if !reflect.DeepEqual(a.Events(), events) || !reflect.DeepEqual(b.Events(), events) {
		t.Error("fan-out did not deliver identical ordered streams to both sinks")
	}
}

func TestMultiCollapses(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("empty Multi should collapse to nil")
	}
	c := NewCollector()
	if got := Multi(nil, c); got != Sink(c) {
		t.Error("single-sink Multi should collapse to the sink itself")
	}
}

// TestLogfAdapterLegacyFormats pins the adapter output to the exact lines
// the legacy Config.Logf hook produced (see core's historical trace tests).
func TestLogfAdapterLegacyFormats(t *testing.T) {
	var lines []string
	sink := NewLogfSink(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	for _, e := range []Event{
		ContextRegistered{Context: "trace:list"},
		Transition{Context: "trace:list", Round: 0, From: "list/array", To: "list/hasharray"},
		WindowClosed{Context: "trace:list", Round: 1, Variant: "list/hasharray"},
	} {
		sink.Emit(e)
	}
	want := []string{
		"context registered: trace:list",
		"transition at trace:list (round 0): list/array -> list/hasharray",
		"round 1 complete at trace:list (variant list/hasharray)",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("legacy format drift:\n got %q\nwant %q", lines, want)
	}
}

func TestLineRendersEveryEvent(t *testing.T) {
	for _, e := range allEvents() {
		if s := Line(e); s == "" || strings.Contains(s, "%!") {
			t.Errorf("%s: bad rendering %q", e.EventKind(), s)
		}
	}
}

func TestNilLogfSinkDropsEvents(t *testing.T) {
	s := NewLogfSink(nil)
	s.Emit(RoundStarted{}) // must not panic
}
