package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// TimedEvent is one flight-recorder entry: the event plus the wall-clock
// instant it was emitted.
type TimedEvent struct {
	When  time.Time
	Event Event
}

// FlightRecorder is the always-on crash/debug sink of the introspection
// layer: a fixed-capacity ring of the most recent events, each stamped with
// its emission time. Unlike RingSink (events only, test-oriented) the
// recorder's snapshot carries timestamps, so the /events endpoint and the
// SIGQUIT stderr dump can reconstruct a timeline of the engine's last
// moments. Emit is cheap (one lock, no allocation beyond the entry slot) and
// safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []TimedEvent
	start int
	n     int
	total int64
}

// NewFlightRecorder returns a recorder retaining at most capacity events
// (minimum 1). Older events are evicted as newer ones arrive.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{buf: make([]TimedEvent, capacity)}
}

// Emit appends the event with the current time, evicting the oldest entry
// when full.
func (r *FlightRecorder) Emit(e Event) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = TimedEvent{When: now, Event: e}
		r.n++
		return
	}
	r.buf[r.start] = TimedEvent{When: now, Event: e}
	r.start = (r.start + 1) % len(r.buf)
}

// EmitBatch appends the events in slice order under one lock acquisition,
// all stamped with the delivery time (a batch is delivered at the end of
// the analysis pass that produced it).
func (r *FlightRecorder) EmitBatch(events []Event) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range events {
		r.total++
		if r.n < len(r.buf) {
			r.buf[(r.start+r.n)%len(r.buf)] = TimedEvent{When: now, Event: e}
			r.n++
			continue
		}
		r.buf[r.start] = TimedEvent{When: now, Event: e}
		r.start = (r.start + 1) % len(r.buf)
	}
}

// Snapshot returns the retained events, oldest first.
func (r *FlightRecorder) Snapshot() []TimedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TimedEvent, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Total returns the number of events ever emitted, including evicted ones.
func (r *FlightRecorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteTo dumps the retained events as human-readable lines (timestamp,
// kind, Logline rendering), oldest first — the SIGQUIT stderr format.
func (r *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	snap := r.Snapshot()
	var written int64
	n, err := fmt.Fprintf(w, "collectionswitch flight recorder: last %d of %d events\n", len(snap), r.Total())
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, te := range snap {
		n, err := fmt.Fprintf(w, "%s [%s] %s\n",
			te.When.Format(time.RFC3339Nano), te.Event.EventKind(), Line(te.Event))
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
