package obs

import "sync"

// Batched event emission. An analysis pass can produce a burst of events
// (round markers, per-context window closes, transitions, spans); emitting
// each one straight into a sink chain costs one lock acquisition and one
// writer call per event, on the analysis goroutine. A Batch accumulates the
// pass's events and delivers them in a single EmitAll call at the end of the
// pass — sinks that implement BatchSink take their lock once per pass
// instead of once per event. Delivery preserves emission order exactly
// (pinned by TestBatchPreservesOrder): a batched trace is line-identical to
// an unbatched one modulo timestamps.

// BatchSink is the optional sink extension for batched delivery. EmitBatch
// must behave exactly like calling Emit for each event in slice order; the
// callee must not retain the slice.
type BatchSink interface {
	Sink
	EmitBatch(events []Event)
}

// EmitAll delivers events to the sink in slice order, through one EmitBatch
// call when the sink supports it and per-event Emit otherwise. Nil sinks and
// empty batches are no-ops.
func EmitAll(s Sink, events []Event) {
	if s == nil || len(events) == 0 {
		return
	}
	if bs, ok := s.(BatchSink); ok {
		bs.EmitBatch(events)
		return
	}
	for _, e := range events {
		s.Emit(e)
	}
}

// Flusher is the optional sink extension for explicit draining: sinks that
// buffer (JSONLSink) or fan out to buffering children (Multi) expose it so
// an engine Close can force the tail of the event stream out.
type Flusher interface {
	Flush() error
}

// FlushSink flushes the sink if it (or, for a multiplexer, any of its
// children) supports Flusher; unknown sinks are a no-op.
func FlushSink(s Sink) error {
	if f, ok := s.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Batch is an order-preserving event accumulator, itself a Sink: events
// emitted into it are buffered until Flush hands them to the destination in
// one EmitAll call. It is safe for concurrent emitters (parallel analysis
// workers share the pass's batch); order within one goroutine is preserved,
// and at one emitter the global order is exact.
type Batch struct {
	mu     sync.Mutex
	dest   Sink
	events []Event
}

// NewBatch returns an empty batch draining into dest on Flush.
func NewBatch(dest Sink) *Batch {
	return &Batch{dest: dest}
}

// Emit buffers the event.
func (b *Batch) Emit(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// EmitBatch buffers the events in order.
func (b *Batch) EmitBatch(events []Event) {
	b.mu.Lock()
	b.events = append(b.events, events...)
	b.mu.Unlock()
}

// Len returns the number of buffered events.
func (b *Batch) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Flush delivers the buffered events to the destination in emission order
// and empties the batch. The buffer is handed off, not reused, so the
// destination's no-retain obligation cannot be violated by a later Emit.
func (b *Batch) Flush() error {
	b.mu.Lock()
	events := b.events
	b.events = nil
	b.mu.Unlock()
	EmitAll(b.dest, events)
	return nil
}
