package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Buckets store per-bucket (non-cumulative) counts; rendering produces the
// cumulative Prometheus form.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; an implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// DefaultLatencyBounds covers analysis-round latencies from 1µs to 1s —
// the Figure 7 claim lives at the very bottom of this range.
func DefaultLatencyBounds() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Cumulative returns the bucket upper bounds and the cumulative counts per
// bucket; the final entry corresponds to +Inf and equals Count.
func (h *Histogram) Cumulative() (bounds []float64, counts []int64) {
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.Inf(1))
	counts = make([]int64, len(h.buckets))
	var acc int64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		counts[i] = acc
	}
	return bounds, counts
}

// TransitionKey labels one (context, from, to) transition counter.
type TransitionKey struct {
	Context, From, To string
}

// Registry aggregates the engine's metrics. A zero Registry is not usable;
// construct with NewRegistry. One registry may be shared by several engines
// (e.g. every engine of a Table 5 sweep) — all fields are concurrency-safe.
type Registry struct {
	// InstancesCreated counts every collection drawn from any context;
	// InstancesMonitored counts the subset wrapped in monitors. Their
	// quotient is the monitored fraction the paper's overhead argument
	// depends on (Section 4.3).
	InstancesCreated   Counter
	InstancesMonitored Counter
	// ContextsRegistered counts successful registrations;
	// RegistrationsDropped counts registrations refused by closed engines.
	ContextsRegistered   Counter
	RegistrationsDropped Counter
	// AnalysisRounds counts completed engine analysis passes;
	// AnalysisLatency histograms their duration in seconds (Figure 7).
	AnalysisRounds  Counter
	AnalysisLatency *Histogram
	// WindowsClosed counts completed monitoring rounds across contexts;
	// RuleEvaluations counts selection-rule applications (one per closed
	// window); WeakReclaims counts monitored instances whose weak pointer
	// was observed cleared (the WeakReference technique at work);
	// CooldownsEntered counts post-round cooldown activations;
	// ConfigClamps counts configuration fields rewritten by validation.
	WindowsClosed    Counter
	RuleEvaluations  Counter
	WeakReclaims     Counter
	CooldownsEntered Counter
	ConfigClamps     Counter
	// ModelSwaps counts runtime cost-model hot-swaps (Engine.SetModels);
	// ModelGaps counts candidates skipped from a context's ranking because
	// the active models lack a curve the rule needs.
	ModelSwaps Counter
	ModelGaps  Counter
	// SwitchesSuppressedCI counts variant switches the selection rule's point
	// estimates called for but confidence gating withheld because the
	// candidate's cost interval overlapped the switch threshold
	// (Config.ConfidenceLevel > 0).
	SwitchesSuppressedCI Counter
	// WarmStarts counts contexts restored from a persisted site decision;
	// DriftReopens counts warm contexts whose observed profile drifted past
	// the threshold, re-enabling rule evaluation.
	WarmStarts   Counter
	DriftReopens Counter
	// CalibrationRuns counts completed online-calibration cycles
	// (internal/tuner); CalibrationCells counts the shadow-benchmark cells
	// those cycles measured.
	CalibrationRuns  Counter
	CalibrationCells Counter
	// StoreSaves/StoreLoads count successful warm-start store writes and
	// reads; StoreRejects counts store files discarded by validation
	// (corruption, schema or fingerprint mismatch).
	StoreSaves   Counter
	StoreLoads   Counter
	StoreRejects Counter
	// SinkFlushErrors counts failed event-sink flushes (a buffering sink —
	// e.g. a JSONL trace writer — reported an error when an engine Close
	// drained it).
	SinkFlushErrors Counter
	// SelfOverheadNs accumulates the wall-clock nanoseconds the framework
	// spends working for itself — engine analysis passes plus tuner shadow
	// benchmarks — as opposed to application time. Divided by the
	// registry's age it yields SelfOverheadFraction, the continuously
	// observable form of the paper's Figure 7 overhead claim.
	SelfOverheadNs Counter
	// RuntimeSamples counts runtime/metrics sampler ticks (see
	// RuntimeSampler); LiveHeapBytes and GCCPUFraction hold the latest
	// sampled values: bytes of live heap objects and the cumulative
	// fraction of available CPU spent in the garbage collector. Both stay
	// zero until a sampler runs.
	RuntimeSamples Counter
	LiveHeapBytes  Gauge
	GCCPUFraction  Gauge

	// created anchors SelfOverheadFraction: self-overhead is expressed as
	// a fraction of one core's wall-clock since the registry was built.
	created time.Time

	mu          sync.Mutex
	transitions map[TransitionKey]int64
	// externals holds application-registered scalar metrics
	// (RegisterExternal): an embedding service renders its domain counters
	// through the same exposition endpoint as the framework's.
	externals []externalMetric
	// events counts emitted framework events by kind (fed by CountingSink).
	events map[Kind]int64
	// gcPauseBounds/gcPauseCounts are the latest runtime/metrics GC pause
	// histogram snapshot: per-bucket upper bounds (seconds) and cumulative
	// counts, already in Prometheus form (last bound +Inf).
	gcPauseBounds []float64
	gcPauseCounts []uint64
}

// NewRegistry returns an empty registry with the default latency buckets.
func NewRegistry() *Registry {
	return &Registry{
		AnalysisLatency: NewHistogram(DefaultLatencyBounds()),
		created:         time.Now(),
		transitions:     make(map[TransitionKey]int64),
		events:          make(map[Kind]int64),
	}
}

// SelfOverheadFraction returns the framework's accumulated self-overhead
// (analysis passes + shadow benchmarks) as a fraction of one core's
// wall-clock since the registry was created — 0.01 means the framework cost
// one percent of a core so far.
func (r *Registry) SelfOverheadFraction() float64 {
	elapsed := time.Since(r.created).Nanoseconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(r.SelfOverheadNs.Load()) / float64(elapsed)
}

// IncEvent bumps the per-kind event counter (see CountingSink).
func (r *Registry) IncEvent(k Kind) {
	r.mu.Lock()
	r.events[k]++
	r.mu.Unlock()
}

// EventCounts returns a copy of the per-kind event counters.
func (r *Registry) EventCounts() map[Kind]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]int64, len(r.events))
	for k, v := range r.events {
		out[k] = v
	}
	return out
}

// SetGCPauses stores a runtime/metrics GC pause histogram snapshot: bounds
// are per-bucket upper bounds in seconds ending in +Inf, counts the matching
// cumulative bucket counts. The RuntimeSampler calls this on every tick.
func (r *Registry) SetGCPauses(bounds []float64, counts []uint64) {
	if len(bounds) != len(counts) {
		return
	}
	r.mu.Lock()
	r.gcPauseBounds = append(r.gcPauseBounds[:0], bounds...)
	r.gcPauseCounts = append(r.gcPauseCounts[:0], counts...)
	r.mu.Unlock()
}

// gcPauses returns a copy of the latest GC pause snapshot (nil before the
// first sample).
func (r *Registry) gcPauses() ([]float64, []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.gcPauseBounds) == 0 {
		return nil, nil
	}
	bounds := append([]float64(nil), r.gcPauseBounds...)
	counts := append([]uint64(nil), r.gcPauseCounts...)
	return bounds, counts
}

// MonitoredFraction returns monitored/created instances (0 when nothing was
// created yet).
func (r *Registry) MonitoredFraction() float64 {
	created := r.InstancesCreated.Load()
	if created == 0 {
		return 0
	}
	return float64(r.InstancesMonitored.Load()) / float64(created)
}

// IncTransition bumps the (context, from, to) transition counter.
func (r *Registry) IncTransition(context, from, to string) {
	k := TransitionKey{Context: context, From: from, To: to}
	r.mu.Lock()
	r.transitions[k]++
	r.mu.Unlock()
}

// TransitionCounts returns a copy of the per-(context, from, to) counters.
func (r *Registry) TransitionCounts() map[TransitionKey]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[TransitionKey]int64, len(r.transitions))
	for k, v := range r.transitions {
		out[k] = v
	}
	return out
}

// TransitionsTotal returns the sum over all transition counters.
func (r *Registry) TransitionsTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, v := range r.transitions {
		total += v
	}
	return total
}

// externalMetric is one application-registered scalar: name and help are
// fixed at registration, value is sampled at render time.
type externalMetric struct {
	name, help string
	counter    bool
	value      func() float64
}

// RegisterExternal adds an application-owned scalar metric to the registry's
// exposition: value is sampled on every WriteTo (and expvar snapshot) and
// rendered as a counter (counter=true) or gauge. Names must be unique and
// non-empty with a non-nil value function; violations return false and leave
// the registry unchanged. This lets a service built on the framework (e.g.
// cmd/collserve) publish request counters beside the selection metrics
// without running a second metrics endpoint.
func (r *Registry) RegisterExternal(name, help string, counter bool, value func() float64) bool {
	if name == "" || value == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.externals {
		if m.name == name {
			return false
		}
	}
	r.externals = append(r.externals, externalMetric{name: name, help: help, counter: counter, value: value})
	sort.Slice(r.externals, func(i, j int) bool { return r.externals[i].name < r.externals[j].name })
	return true
}

// externalRows samples every registered external metric (already sorted by
// name, so the exposition stays deterministic).
func (r *Registry) externalRows() []struct {
	name, help string
	counter    bool
	value      float64
} {
	r.mu.Lock()
	metrics := append([]externalMetric(nil), r.externals...)
	r.mu.Unlock()
	rows := make([]struct {
		name, help string
		counter    bool
		value      float64
	}, len(metrics))
	// Sampled outside the lock: value functions may take application locks
	// of their own, and must never deadlock against IncTransition et al.
	for i, m := range metrics {
		rows[i] = struct {
			name, help string
			counter    bool
			value      float64
		}{m.name, m.help, m.counter, m.value()}
	}
	return rows
}

// counterRows lists the scalar metrics in render order.
func (r *Registry) counterRows() []struct {
	name, help string
	value      int64
} {
	return []struct {
		name, help string
		value      int64
	}{
		{"collectionswitch_instances_created_total", "collections drawn from allocation contexts", r.InstancesCreated.Load()},
		{"collectionswitch_instances_monitored_total", "instances wrapped in monitors", r.InstancesMonitored.Load()},
		{"collectionswitch_contexts_registered_total", "allocation contexts registered", r.ContextsRegistered.Load()},
		{"collectionswitch_registrations_dropped_total", "registrations refused by closed engines", r.RegistrationsDropped.Load()},
		{"collectionswitch_analysis_rounds_total", "completed engine analysis passes", r.AnalysisRounds.Load()},
		{"collectionswitch_windows_closed_total", "completed monitoring rounds", r.WindowsClosed.Load()},
		{"collectionswitch_rule_evaluations_total", "selection-rule applications", r.RuleEvaluations.Load()},
		{"collectionswitch_weak_reclaims_total", "monitored instances observed reclaimed", r.WeakReclaims.Load()},
		{"collectionswitch_cooldowns_entered_total", "post-round cooldown activations", r.CooldownsEntered.Load()},
		{"collectionswitch_config_clamps_total", "configuration fields rewritten by validation", r.ConfigClamps.Load()},
		{"collectionswitch_model_swaps_total", "runtime cost-model hot-swaps", r.ModelSwaps.Load()},
		{"collectionswitch_model_gaps_total", "candidates skipped for missing model curves", r.ModelGaps.Load()},
		{"collectionswitch_switches_suppressed_ci_total", "variant switches withheld by confidence-interval overlap", r.SwitchesSuppressedCI.Load()},
		{"collectionswitch_warm_starts_total", "contexts restored from persisted site decisions", r.WarmStarts.Load()},
		{"collectionswitch_drift_reopens_total", "warm contexts re-opened after workload drift", r.DriftReopens.Load()},
		{"collectionswitch_calibration_runs_total", "completed online-calibration cycles", r.CalibrationRuns.Load()},
		{"collectionswitch_calibration_cells_total", "shadow-benchmark cells measured", r.CalibrationCells.Load()},
		{"collectionswitch_store_saves_total", "warm-start store writes", r.StoreSaves.Load()},
		{"collectionswitch_store_loads_total", "warm-start store reads accepted", r.StoreLoads.Load()},
		{"collectionswitch_store_rejects_total", "warm-start store files discarded by validation", r.StoreRejects.Load()},
		{"collectionswitch_sink_flush_errors_total", "event-sink flush failures at engine close", r.SinkFlushErrors.Load()},
		{"collectionswitch_self_overhead_ns_total", "nanoseconds spent in analysis passes and shadow benchmarks", r.SelfOverheadNs.Load()},
		{"collectionswitch_runtime_samples_total", "runtime/metrics sampler ticks", r.RuntimeSamples.Load()},
	}
}

// gaugeRows lists the float-valued metrics in render order.
func (r *Registry) gaugeRows() []struct {
	name, help string
	value      float64
} {
	return []struct {
		name, help string
		value      float64
	}{
		{"collectionswitch_monitored_fraction", "monitored/created instances", r.MonitoredFraction()},
		{"collectionswitch_self_overhead_fraction", "framework self-time as a fraction of one core's wall-clock", r.SelfOverheadFraction()},
		{"collectionswitch_live_heap_bytes", "bytes of live heap objects (runtime/metrics, last sample)", r.LiveHeapBytes.Load()},
		{"collectionswitch_gc_cpu_fraction", "cumulative fraction of available CPU spent in the GC (last sample)", r.GCCPUFraction.Load()},
	}
}

// EscapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double-quote and newline become \\, \" and \n; every
// other byte passes through verbatim. (fmt's %q is NOT equivalent — it also
// escapes tabs and non-printable runes with sequences the Prometheus format
// does not define.)
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// WriteTo renders the registry in the Prometheus text exposition format, so
// an HTTP metrics endpoint is `registry.WriteTo(w)` away.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, row := range r.counterRows() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			row.name, row.help, row.name, row.name, row.value)
	}
	for _, row := range r.gaugeRows() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			row.name, row.help, row.name, row.name, row.value)
	}

	for _, row := range r.externalRows() {
		typ := "gauge"
		if row.counter {
			typ = "counter"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			row.name, row.help, row.name, typ, row.name, row.value)
	}

	fmt.Fprintf(&b, "# HELP collectionswitch_transitions_total variant switches by context\n")
	fmt.Fprintf(&b, "# TYPE collectionswitch_transitions_total counter\n")
	counts := r.TransitionCounts()
	keys := make([]TransitionKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Context != keys[j].Context {
			return keys[i].Context < keys[j].Context
		}
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "collectionswitch_transitions_total{context=\"%s\",from=\"%s\",to=\"%s\"} %d\n",
			EscapeLabel(k.Context), EscapeLabel(k.From), EscapeLabel(k.To), counts[k])
	}

	fmt.Fprintf(&b, "# HELP collectionswitch_events_total framework events emitted by kind\n")
	fmt.Fprintf(&b, "# TYPE collectionswitch_events_total counter\n")
	events := r.EventCounts()
	kinds := make([]string, 0, len(events))
	for k := range events {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "collectionswitch_events_total{kind=\"%s\"} %d\n",
			EscapeLabel(k), events[Kind(k)])
	}

	const hname = "collectionswitch_analysis_round_seconds"
	fmt.Fprintf(&b, "# HELP %s engine analysis pass latency\n# TYPE %s histogram\n", hname, hname)
	bounds, cum := r.AnalysisLatency.Cumulative()
	for i, bound := range bounds {
		fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", hname, promBound(bound), cum[i])
	}
	fmt.Fprintf(&b, "%s_sum %g\n", hname, r.AnalysisLatency.Sum())
	fmt.Fprintf(&b, "%s_count %d\n", hname, r.AnalysisLatency.Count())

	// GC pause histogram: the latest runtime/metrics snapshot, already
	// cumulative. Before the first sampler tick the histogram renders
	// with a single empty +Inf bucket, keeping the exposition shape stable.
	const gname = "collectionswitch_gc_pause_seconds"
	fmt.Fprintf(&b, "# HELP %s stop-the-world GC pause latency (runtime/metrics /gc/pauses:seconds)\n# TYPE %s histogram\n", gname, gname)
	gb, gc := r.gcPauses()
	var gcount uint64
	if len(gb) == 0 {
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} 0\n", gname)
	} else {
		for i, bound := range gb {
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", gname, promBound(bound), gc[i])
		}
		gcount = gc[len(gc)-1]
	}
	// runtime/metrics does not expose a pause-time sum; report 0 (the
	// count still carries the sampled total).
	fmt.Fprintf(&b, "%s_sum 0\n%s_count %d\n", gname, gname, gcount)

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// promBound renders a histogram upper bound as a Prometheus le label value.
func promBound(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", bound)
}

// expvarMu serializes expvar publication: expvar.Publish panics on duplicate
// names, so PublishExpvar checks-then-publishes under this lock.
var expvarMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name as a JSON
// snapshot (counters, monitored fraction, transition counters, latency
// summary). It returns false when the name is already taken — typically by
// an earlier registry — and leaves the existing binding untouched.
func (r *Registry) PublishExpvar(name string) bool {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.snapshot() }))
	return true
}

// snapshot builds the expvar JSON view.
func (r *Registry) snapshot() map[string]any {
	out := make(map[string]any)
	for _, row := range r.counterRows() {
		out[strings.TrimPrefix(row.name, "collectionswitch_")] = row.value
	}
	for _, row := range r.gaugeRows() {
		out[strings.TrimPrefix(row.name, "collectionswitch_")] = row.value
	}
	for _, row := range r.externalRows() {
		out[row.name] = row.value
	}
	transitions := make(map[string]int64)
	for k, v := range r.TransitionCounts() {
		transitions[fmt.Sprintf("%s: %s -> %s", k.Context, k.From, k.To)] = v
	}
	out["transitions"] = transitions
	events := make(map[string]int64)
	for k, v := range r.EventCounts() {
		events[string(k)] = v
	}
	out["events"] = events
	out["analysis_round_seconds_sum"] = r.AnalysisLatency.Sum()
	out["analysis_round_seconds_count"] = r.AnalysisLatency.Count()
	return out
}
