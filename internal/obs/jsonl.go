package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// envelope is the JSONL wire form: a kind discriminator, a wall-clock stamp
// applied at write time, and the event payload.
type envelope struct {
	Kind Kind            `json:"kind"`
	Time int64           `json:"time_unix_ns"`
	Ev   json.RawMessage `json:"event"`
}

// JSONLSink writes one JSON object per event to an io.Writer. It is safe
// for concurrent use. Output is buffered; call Flush (or Close) before
// reading the destination.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLSink wraps w in a buffered JSONL event writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Emit serializes the event as one JSONL line. The first write error is
// retained and reported by Flush/Close; later emits become no-ops.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	payload, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	line, err := json.Marshal(envelope{Kind: e.EventKind(), Time: time.Now().UnixNano(), Ev: payload})
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Flush drains the buffer and returns the first error seen so far.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Close flushes; the sink does not own the underlying writer.
func (s *JSONLSink) Close() error { return s.Flush() }

// Decode parses one JSONL line back into its typed event and timestamp.
func Decode(line []byte) (Event, time.Time, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, time.Time{}, fmt.Errorf("obs: bad envelope: %w", err)
	}
	ev, err := decodeKind(env.Kind, env.Ev)
	if err != nil {
		return nil, time.Time{}, err
	}
	return ev, time.Unix(0, env.Time), nil
}

func decodeKind(kind Kind, raw json.RawMessage) (Event, error) {
	unmarshal := func(v any) error {
		if err := json.Unmarshal(raw, v); err != nil {
			return fmt.Errorf("obs: bad %s payload: %w", kind, err)
		}
		return nil
	}
	switch kind {
	case KindContextRegistered:
		var e ContextRegistered
		return e, unmarshal(&e)
	case KindDuplicateContextName:
		var e DuplicateContextName
		return e, unmarshal(&e)
	case KindRoundStarted:
		var e RoundStarted
		return e, unmarshal(&e)
	case KindContextAnalyzed:
		var e ContextAnalyzed
		return e, unmarshal(&e)
	case KindRoundCompleted:
		var e RoundCompleted
		return e, unmarshal(&e)
	case KindWindowClosed:
		var e WindowClosed
		return e, unmarshal(&e)
	case KindTransition:
		var e Transition
		return e, unmarshal(&e)
	case KindCooldownEntered:
		var e CooldownEntered
		return e, unmarshal(&e)
	case KindConfigClamped:
		var e ConfigClamped
		return e, unmarshal(&e)
	case KindEngineClosed:
		var e EngineClosed
		return e, unmarshal(&e)
	case KindModelsSwapped:
		var e ModelsSwapped
		return e, unmarshal(&e)
	case KindModelMissing:
		var e ModelMissing
		return e, unmarshal(&e)
	case KindBenchmarkProgress:
		var e BenchmarkProgress
		return e, unmarshal(&e)
	case KindCheckCompleted:
		var e CheckCompleted
		return e, unmarshal(&e)
	case KindCheckDivergence:
		var e CheckDivergence
		return e, unmarshal(&e)
	case KindWarmStart:
		var e WarmStart
		return e, unmarshal(&e)
	case KindCalibrationStarted:
		var e CalibrationStarted
		return e, unmarshal(&e)
	case KindCalibrationCompleted:
		var e CalibrationCompleted
		return e, unmarshal(&e)
	case KindCalibrationDrift:
		var e CalibrationDrift
		return e, unmarshal(&e)
	case KindStoreSaved:
		var e StoreSaved
		return e, unmarshal(&e)
	case KindStoreLoaded:
		var e StoreLoaded
		return e, unmarshal(&e)
	case KindStoreRejected:
		var e StoreRejected
		return e, unmarshal(&e)
	default:
		return nil, fmt.Errorf("obs: unknown event kind %q", kind)
	}
}

// ReadAll decodes every event of a JSONL stream in order.
func ReadAll(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var out []Event
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		ev, _, err := Decode(sc.Bytes())
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
