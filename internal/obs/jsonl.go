package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// envelope is the JSONL wire form: a kind discriminator, a wall-clock stamp
// applied at write time, and the event payload.
type envelope struct {
	Kind Kind            `json:"kind"`
	Time int64           `json:"time_unix_ns"`
	Ev   json.RawMessage `json:"event"`
}

// JSONLSink writes one JSON object per event to an io.Writer. It is safe
// for concurrent use. Output is buffered; call Flush (or Close) before
// reading the destination.
type JSONLSink struct {
	mu   sync.Mutex
	w    *bufio.Writer
	dest io.Writer // unbuffered destination, for Close's durability sync
	err  error
}

// NewJSONLSink wraps w in a buffered JSONL event writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w), dest: w}
}

// Emit serializes the event as one JSONL line. The first write error is
// retained and reported by Flush/Close; later emits become no-ops.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	payload, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	line, err := json.Marshal(envelope{Kind: e.EventKind(), Time: time.Now().UnixNano(), Ev: payload})
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// EmitBatch serializes the events as consecutive JSONL lines under a single
// lock acquisition, in slice order — a batched trace differs from a per-event
// one only in timestamps. Each line still carries its own write-time stamp,
// preserving the envelope schema exactly.
func (s *JSONLSink) EmitBatch(events []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		if s.err != nil {
			return
		}
		payload, err := json.Marshal(e)
		if err != nil {
			s.err = err
			return
		}
		line, err := json.Marshal(envelope{Kind: e.EventKind(), Time: time.Now().UnixNano(), Ev: payload})
		if err != nil {
			s.err = err
			return
		}
		if _, err := s.w.Write(line); err != nil {
			s.err = err
			return
		}
		s.err = s.w.WriteByte('\n')
	}
}

// Flush drains the buffer and returns the first error seen so far.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Close flushes the buffer and, when the destination supports it (an
// os.File does), syncs it to stable storage: a trace file is fully on disk
// once Close returns, so an abrupt exit right after cannot lose buffered
// tail events. The sink does not own the underlying writer — Close never
// closes it.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if syncer, ok := s.dest.(interface{ Sync() error }); ok {
		if serr := syncer.Sync(); err == nil {
			err = serr
		}
	}
	return err
}

// Decode parses one JSONL line back into its typed event and timestamp.
func Decode(line []byte) (Event, time.Time, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, time.Time{}, fmt.Errorf("obs: bad envelope: %w", err)
	}
	ev, err := decodeKind(env.Kind, env.Ev)
	if err != nil {
		return nil, time.Time{}, err
	}
	return ev, time.Unix(0, env.Time), nil
}

// dec is the generic payload decoder one kindDecoders entry instantiates
// per concrete event type.
func dec[E Event](raw json.RawMessage) (Event, error) {
	var e E
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, err
	}
	return e, nil
}

// kindDecoders is the single registry tying every Kind to its concrete
// event type. Decode, Kinds and Prototype all derive from it, and the
// exhaustiveness test (TestEventKindsExhaustive) fails when a Kind constant
// is declared without an entry here — adding an event kind therefore cannot
// silently produce undecodable traces.
var kindDecoders = map[Kind]func(json.RawMessage) (Event, error){
	KindContextRegistered:    dec[ContextRegistered],
	KindDuplicateContextName: dec[DuplicateContextName],
	KindRoundStarted:         dec[RoundStarted],
	KindRoundCompleted:       dec[RoundCompleted],
	KindContextAnalyzed:      dec[ContextAnalyzed],
	KindWindowClosed:         dec[WindowClosed],
	KindTransition:           dec[Transition],
	KindCooldownEntered:      dec[CooldownEntered],
	KindConfigClamped:        dec[ConfigClamped],
	KindEngineClosed:         dec[EngineClosed],
	KindModelsSwapped:        dec[ModelsSwapped],
	KindModelMissing:         dec[ModelMissing],
	KindBenchmarkProgress:    dec[BenchmarkProgress],
	KindCheckCompleted:       dec[CheckCompleted],
	KindCheckDivergence:      dec[CheckDivergence],
	KindWarmStart:            dec[WarmStart],
	KindCalibrationStarted:   dec[CalibrationStarted],
	KindCalibrationCompleted: dec[CalibrationCompleted],
	KindCalibrationDrift:     dec[CalibrationDrift],
	KindStoreSaved:           dec[StoreSaved],
	KindStoreLoaded:          dec[StoreLoaded],
	KindStoreRejected:        dec[StoreRejected],
	KindSwitchSuppressed:     dec[SwitchSuppressed],
	KindSearchStarted:        dec[SearchStarted],
	KindSearchFront:          dec[SearchFront],
	KindPatchEmitted:         dec[PatchEmitted],
}

// Kinds returns every registered event kind, sorted.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kindDecoders))
	for k := range kindDecoders {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Prototype returns the zero event value registered for kind (ok=false for
// unknown kinds) — the hook exhaustiveness tests use to exercise every
// event type without naming each one.
func Prototype(kind Kind) (Event, bool) {
	decode, ok := kindDecoders[kind]
	if !ok {
		return nil, false
	}
	ev, err := decode(json.RawMessage("{}"))
	if err != nil {
		return nil, false
	}
	return ev, true
}

func decodeKind(kind Kind, raw json.RawMessage) (Event, error) {
	decode, ok := kindDecoders[kind]
	if !ok {
		return nil, fmt.Errorf("obs: unknown event kind %q", kind)
	}
	ev, err := decode(raw)
	if err != nil {
		return nil, fmt.Errorf("obs: bad %s payload: %w", kind, err)
	}
	return ev, nil
}

// ReadAll decodes every event of a JSONL stream in order.
func ReadAll(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var out []Event
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		ev, _, err := Decode(sc.Bytes())
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
