package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// numberedEvents builds a batch of distinguishable events whose order can be
// asserted after any round trip.
func numberedEvents(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = ContextRegistered{Engine: "batch", Context: fmt.Sprintf("ctx-%03d", i)}
	}
	return out
}

func eventOrder(t *testing.T, events []Event) []string {
	t.Helper()
	out := make([]string, len(events))
	for i, e := range events {
		cr, ok := e.(ContextRegistered)
		if !ok {
			t.Fatalf("event %d: %T, want ContextRegistered", i, e)
		}
		out[i] = cr.Context
	}
	return out
}

// TestBatchPreservesOrder pins the batching contract end to end: events
// buffered in a Batch and flushed through EmitAll reach a JSONL sink as
// consecutive lines in emission order, and decode back in that exact order.
func TestBatchPreservesOrder(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	b := NewBatch(sink)
	want := numberedEvents(50)
	for _, e := range want[:20] {
		b.Emit(e)
	}
	b.EmitBatch(want[20:])
	if b.Len() != len(want) {
		t.Fatalf("Batch.Len = %d, want %d", b.Len(), len(want))
	}
	if buf.Len() != 0 {
		t.Fatal("batch leaked events to the sink before Flush")
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("Batch.Len after Flush = %d, want 0", b.Len())
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("sink Flush: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	wantOrder, gotOrder := eventOrder(t, want), eventOrder(t, got)
	if strings.Join(gotOrder, ",") != strings.Join(wantOrder, ",") {
		t.Errorf("JSONL order after batched emission:\n got %v\nwant %v", gotOrder, wantOrder)
	}
}

// TestEmitAllFallback delivers through a Sink that lacks EmitBatch and must
// fall back to per-event Emit, in order.
func TestEmitAllFallback(t *testing.T) {
	var seen []Event
	plain := sinkFunc(func(e Event) { seen = append(seen, e) })
	want := numberedEvents(10)
	EmitAll(plain, want)
	if strings.Join(eventOrder(t, seen), ",") != strings.Join(eventOrder(t, want), ",") {
		t.Errorf("fallback order = %v, want %v", eventOrder(t, seen), eventOrder(t, want))
	}
	// Nil sink and empty batch are no-ops.
	EmitAll(nil, want)
	EmitAll(plain, nil)
	if len(seen) != len(want) {
		t.Errorf("no-op EmitAll delivered events: %d, want %d", len(seen), len(want))
	}
}

// sinkFunc adapts a function to Sink without implementing BatchSink.
type sinkFunc func(Event)

func (f sinkFunc) Emit(e Event) { f(e) }

// TestRingAndCollectorBatch pins batched delivery on the in-memory sinks:
// order preserved, eviction identical to per-event emission.
func TestRingAndCollectorBatch(t *testing.T) {
	events := numberedEvents(10)

	perEvent := NewRingSink(4)
	batched := NewRingSink(4)
	for _, e := range events {
		perEvent.Emit(e)
	}
	batched.EmitBatch(events)
	if got, want := eventOrder(t, batched.Events()), eventOrder(t, perEvent.Events()); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ring batched = %v, per-event = %v", got, want)
	}
	if batched.Total() != perEvent.Total() {
		t.Errorf("ring totals differ: batched %d, per-event %d", batched.Total(), perEvent.Total())
	}

	col := NewCollector()
	col.EmitBatch(events[:5])
	col.Emit(events[5])
	col.EmitBatch(events[6:])
	if got := eventOrder(t, col.Events()); strings.Join(got, ",") != strings.Join(eventOrder(t, events), ",") {
		t.Errorf("collector order = %v, want %v", got, eventOrder(t, events))
	}
}

// TestFlightRecorderBatch pins order and eviction for batched delivery into
// the flight recorder.
func TestFlightRecorderBatch(t *testing.T) {
	events := numberedEvents(10)
	r := NewFlightRecorder(4)
	r.EmitBatch(events)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(snap))
	}
	for i, te := range snap {
		want := fmt.Sprintf("ctx-%03d", len(events)-4+i)
		if got := te.Event.(ContextRegistered).Context; got != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, got, want)
		}
		if te.When.IsZero() {
			t.Errorf("snapshot[%d] not timestamped", i)
		}
	}
	if r.Total() != int64(len(events)) {
		t.Errorf("Total = %d, want %d", r.Total(), len(events))
	}
}

// TestMultiSinkBatchAndFlush pins that a multiplexer forwards whole batches
// to every child in order and that FlushSink drains buffering children.
func TestMultiSinkBatchAndFlush(t *testing.T) {
	var buf bytes.Buffer
	jsonl := NewJSONLSink(&buf)
	ring := NewRingSink(100)
	m := Multi(jsonl, ring)
	events := numberedEvents(8)
	EmitAll(m, events)
	if got := eventOrder(t, ring.Events()); strings.Join(got, ",") != strings.Join(eventOrder(t, events), ",") {
		t.Errorf("ring via multi = %v, want %v", got, eventOrder(t, events))
	}
	if buf.Len() != 0 {
		t.Fatal("JSONL buffer drained before flush — expected buffering")
	}
	if err := FlushSink(m); err != nil {
		t.Fatalf("FlushSink(multi): %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if gotOrder := eventOrder(t, got); strings.Join(gotOrder, ",") != strings.Join(eventOrder(t, events), ",") {
		t.Errorf("JSONL via multi = %v, want %v", gotOrder, eventOrder(t, events))
	}
	// FlushSink on a non-buffering sink is a no-op, not an error.
	if err := FlushSink(ring); err != nil {
		t.Errorf("FlushSink(ring) = %v, want nil", err)
	}
}

// TestCountingSinkBatch pins that batched delivery feeds the per-kind event
// counters exactly like per-event delivery.
func TestCountingSinkBatch(t *testing.T) {
	reg := NewRegistry()
	s := CountingSink(reg)
	EmitAll(s, numberedEvents(7))
	if got := reg.EventCounts()[KindContextRegistered]; got != 7 {
		t.Errorf("events_total[%s] = %d, want 7", KindContextRegistered, got)
	}
}
