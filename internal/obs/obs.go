// Package obs is the observability layer of the CollectionSwitch engine:
// typed framework events delivered to pluggable sinks, plus a metrics
// registry of atomic counters, gauges and histograms.
//
// The paper describes "a detailed log system for tracing framework events"
// as its debuggability mitigation (Section 4.4). This package upgrades that
// story from an unstructured printf hook to structured telemetry: every
// framework action — context registration, analysis rounds, window
// completion, variant transitions, cooldowns, configuration clamping,
// engine shutdown — is a typed event that can be exported as JSONL,
// buffered in memory, fanned out to several sinks at once, or rendered
// through a legacy Logf adapter. The quantities the paper's evaluation
// argues about (monitored fraction, finished ratio, analysis-round latency,
// per-site transition churn) are first-class metrics.
//
// The package is dependency-free: it imports only the standard library and
// is imported by internal/core, internal/apps and the command harnesses.
//
// # Round numbering
//
// Two independent sequences are both called "round"; every event documents
// which one it carries, and TestRoundNumberingConventions (internal/core)
// pins the relationships:
//
//   - Engine analysis passes are 0-based: the first AnalyzeNow pass emits
//     RoundStarted/RoundCompleted/ContextAnalyzed with Round 0.
//   - Context monitoring rounds are 1-based completed-round ordinals:
//     when a context's Nth window closes, WindowClosed, CooldownEntered and
//     the ContextWindowStat snapshots attached to later RoundCompleted
//     events all report Round == N. ContextWindowStat.Round is therefore
//     simultaneously "rounds completed so far" and "the 1-based number of
//     the last completed round" — the same integer.
//   - Transition.Round is the single, deliberate exception: it reports the
//     0-based index of the monitoring round that was still in progress when
//     the switch decision fired (== WindowClosed.Round-1 for the window
//     that closed). It is kept 0-based because the legacy trace line
//     "transition at %s (round %d)" is byte-compatibility-pinned, and
//     existing JSONL consumers rely on the serialized value.
package obs

import "fmt"

// Kind discriminates event types in serialized form.
type Kind string

// The event taxonomy. One Kind per concrete event struct; every constant
// carries a one-line meaning (enforced by TestEventKindsExhaustive).
const (
	KindContextRegistered    Kind = "context_registered"     // allocation context joined (or was refused by) an engine
	KindDuplicateContextName Kind = "duplicate_context_name" // site label collision resolved with a "#N" rename
	KindRoundStarted         Kind = "round_started"          // engine analysis pass began
	KindRoundCompleted       Kind = "round_completed"        // engine analysis pass finished, with per-context window stats
	KindContextAnalyzed      Kind = "context_analyzed"       // per-context analysis span (opt-in, Config.AnalysisSpans)
	KindWindowClosed         Kind = "window_closed"          // one monitoring round completed at a context
	KindTransition           Kind = "transition"             // a context switched collection variants
	KindCooldownEntered      Kind = "cooldown_entered"       // context began skipping creations after a round
	KindConfigClamped        Kind = "config_clamped"         // configuration field rewritten by validation
	KindEngineClosed         Kind = "engine_closed"          // engine shut down, with lifetime totals
	KindModelsSwapped        Kind = "models_swapped"         // cost models hot-swapped at runtime
	KindModelMissing         Kind = "model_missing"          // candidate excluded from ranking for a missing model curve
	KindBenchmarkProgress    Kind = "benchmark_progress"     // microbenchmark sweep progress (cmd/perfmodel)
	KindCheckCompleted       Kind = "check_completed"        // differential oracle check of one variant finished
	KindCheckDivergence      Kind = "check_divergence"       // differential oracle check found a mismatch
	KindWarmStart            Kind = "warm_start"             // context restored a persisted variant decision
	KindCalibrationStarted   Kind = "calibration_started"    // online-calibration cycle began
	KindCalibrationCompleted Kind = "calibration_completed"  // online-calibration cycle finished
	KindCalibrationDrift     Kind = "calibration_drift"      // warm context's workload drifted past the threshold
	KindStoreSaved           Kind = "store_saved"            // warm-start store written to disk
	KindStoreLoaded          Kind = "store_loaded"           // warm-start store read and accepted
	KindStoreRejected        Kind = "store_rejected"         // warm-start store discarded by validation
	KindSwitchSuppressed     Kind = "switch_suppressed"      // variant switch withheld: confidence intervals overlap
	KindSearchStarted        Kind = "search_started"         // offline multi-objective search began (cmd/collopt)
	KindSearchFront          Kind = "search_front"           // offline search produced a Pareto front
	KindPatchEmitted         Kind = "patch_emitted"          // collopt wrote a variant-pinning source patch
)

// Event is one structured framework event. Concrete types are plain value
// structs with JSON tags so every event round-trips through the JSONL sink.
type Event interface {
	// EventKind returns the serialization discriminator.
	EventKind() Kind
	// EngineName returns the label of the engine that emitted the event
	// ("" for unlabeled engines).
	EngineName() string
	// Logline renders the event as a printf pair. The formats of the
	// events that existed in the legacy Logf hook (context registration,
	// transitions, completed windows) are byte-identical to the legacy
	// output, so a Logf adapter reproduces the historical trace log.
	Logline() (format string, args []any)
}

// Sink receives events. Emit may be called from the analysis goroutine and
// must be safe for concurrent use; implementations should return quickly.
type Sink interface {
	Emit(Event)
}

// Line renders an event through its Logline formatting.
func Line(e Event) string {
	format, args := e.Logline()
	return fmt.Sprintf(format, args...)
}

// ContextRegistered reports an allocation context joining (or, when Dropped,
// being refused by) an engine.
type ContextRegistered struct {
	Engine  string `json:"engine,omitempty"`
	Context string `json:"context"`
	// Dropped marks a registration that arrived after Close: the context
	// stays usable for collection creation but is never analyzed.
	Dropped bool `json:"dropped,omitempty"`
}

func (ContextRegistered) EventKind() Kind      { return KindContextRegistered }
func (e ContextRegistered) EngineName() string { return e.Engine }
func (e ContextRegistered) Logline() (string, []any) {
	if e.Dropped {
		return "context registration ignored (engine closed): %s", []any{e.Context}
	}
	return "context registered: %s", []any{e.Context}
}

// DuplicateContextName warns that a context registered under a site label an
// earlier context already claimed; the engine disambiguated the newcomer
// with a "#N" suffix so its Table 6 rows and trace lines never silently
// merge with the first registrant's.
type DuplicateContextName struct {
	Engine string `json:"engine,omitempty"`
	// Name is the clashing label; Renamed is the label actually assigned.
	Name    string `json:"name"`
	Renamed string `json:"renamed"`
}

func (DuplicateContextName) EventKind() Kind      { return KindDuplicateContextName }
func (e DuplicateContextName) EngineName() string { return e.Engine }
func (e DuplicateContextName) Logline() (string, []any) {
	return "duplicate context name %q renamed to %q", []any{e.Name, e.Renamed}
}

// ContextWindowStat is the per-context monitoring state snapshot attached to
// RoundCompleted events. Round follows the 1-based completed-round
// convention (see "Round numbering" in the package docs): it equals
// WindowClosed.Round of the context's most recently closed window, or 0
// while the first window is still open.
type ContextWindowStat struct {
	Context    string `json:"context"`
	Variant    string `json:"variant"`
	Round      int    `json:"round"`       // completed rounds == 1-based last closed round
	WindowFill int    `json:"window_fill"` // monitored instances in the open window
	Folded     int    `json:"folded"`      // instances folded into the aggregate
	Cooldown   int    `json:"cooldown"`    // unmonitored creations remaining
}

// RoundStarted reports the beginning of one engine analysis pass. Round is
// the 0-based pass index (a different sequence from the per-context
// monitoring rounds — see "Round numbering" in the package docs).
type RoundStarted struct {
	Engine   string `json:"engine,omitempty"`
	Round    int    `json:"round"`
	Contexts int    `json:"contexts"`
}

func (RoundStarted) EventKind() Kind      { return KindRoundStarted }
func (e RoundStarted) EngineName() string { return e.Engine }
func (e RoundStarted) Logline() (string, []any) {
	return "analysis round %d started (%d contexts)", []any{e.Round, e.Contexts}
}

// RoundCompleted reports the end of one engine analysis pass with its
// duration — the quantity behind the Figure 7 overhead claim — and the
// window state of every analyzed context.
type RoundCompleted struct {
	Engine     string              `json:"engine,omitempty"`
	Round      int                 `json:"round"`
	DurationNs int64               `json:"duration_ns"`
	Contexts   []ContextWindowStat `json:"contexts,omitempty"`
}

func (RoundCompleted) EventKind() Kind      { return KindRoundCompleted }
func (e RoundCompleted) EngineName() string { return e.Engine }
func (e RoundCompleted) Logline() (string, []any) {
	return "analysis round %d completed in %dns (%d contexts)",
		[]any{e.Round, e.DurationNs, len(e.Contexts)}
}

// ContextAnalyzed is a per-context analysis span: the duration one context's
// analyze step took inside engine pass Round (0-based, matching
// RoundStarted/RoundCompleted). Emitted only for engines configured with
// AnalysisSpans — it adds one event per context per pass, so it is opt-in
// debugging telemetry rather than part of the default trace. With
// AnalysisParallelism > 1, spans from one pass arrive in completion order,
// not registration order.
type ContextAnalyzed struct {
	Engine     string `json:"engine,omitempty"`
	Round      int    `json:"round"`
	Context    string `json:"context"`
	DurationNs int64  `json:"duration_ns"`
}

func (ContextAnalyzed) EventKind() Kind      { return KindContextAnalyzed }
func (e ContextAnalyzed) EngineName() string { return e.Engine }
func (e ContextAnalyzed) Logline() (string, []any) {
	return "context %s analyzed in %dns (pass %d)", []any{e.Context, e.DurationNs, e.Round}
}

// WindowClosed reports one allocation context completing a monitoring round:
// the window filled, the finished ratio was reached, and the selection rule
// was evaluated. Round is 1-based (the round that just completed) to match
// the legacy trace wording.
type WindowClosed struct {
	Engine     string `json:"engine,omitempty"`
	Context    string `json:"context"`
	Round      int    `json:"round"`
	Variant    string `json:"variant"` // variant after any switch
	WindowSize int    `json:"window_size"`
	// Finished is the number of instances that became unreachable before
	// decision time; FinishedRatio = Finished/WindowSize (the paper's
	// gating quantity, Section 4.3).
	Finished      int     `json:"finished"`
	FinishedRatio float64 `json:"finished_ratio"`
	// SizeSpread is maxSize/minSize over the folded workloads — the
	// adaptive-variant gate of Section 3.2.
	SizeSpread float64 `json:"size_spread"`
}

func (WindowClosed) EventKind() Kind      { return KindWindowClosed }
func (e WindowClosed) EngineName() string { return e.Engine }
func (e WindowClosed) Logline() (string, []any) {
	return "round %d complete at %s (variant %s)", []any{e.Round, e.Context, e.Variant}
}

// Transition reports one variant switch with the full TC_D ratio map the
// rule evaluated — everything Table 6 needs travels on this event.
type Transition struct {
	Engine  string `json:"engine,omitempty"`
	Context string `json:"context"`
	From    string `json:"from"`
	To      string `json:"to"`
	Round   int    `json:"round"` // 0-based monitoring round that triggered it
	// Ratios holds TC_D(new)/TC_D(current) per rule dimension.
	Ratios map[string]float64 `json:"ratios,omitempty"`
}

func (Transition) EventKind() Kind      { return KindTransition }
func (e Transition) EngineName() string { return e.Engine }
func (e Transition) Logline() (string, []any) {
	return "transition at %s (round %d): %s -> %s", []any{e.Context, e.Round, e.From, e.To}
}

// CooldownEntered reports a context beginning its post-round cooldown: the
// next SkipNext instance creations are handed out unmonitored.
type CooldownEntered struct {
	Engine   string `json:"engine,omitempty"`
	Context  string `json:"context"`
	Round    int    `json:"round"` // 1-based round that triggered the cooldown
	SkipNext int    `json:"skip_next"`
}

func (CooldownEntered) EventKind() Kind      { return KindCooldownEntered }
func (e CooldownEntered) EngineName() string { return e.Engine }
func (e CooldownEntered) Logline() (string, []any) {
	return "cooldown at %s after round %d: next %d instances unmonitored",
		[]any{e.Context, e.Round, e.SkipNext}
}

// ConfigClamped reports a configuration field that was silently rewritten by
// validation — misconfiguration made visible (e.g. FinishedRatio > 1).
type ConfigClamped struct {
	Engine string  `json:"engine,omitempty"`
	Field  string  `json:"field"`
	From   float64 `json:"from"`
	To     float64 `json:"to"`
}

func (ConfigClamped) EventKind() Kind      { return KindConfigClamped }
func (e ConfigClamped) EngineName() string { return e.Engine }
func (e ConfigClamped) Logline() (string, []any) {
	return "config clamped: %s %g -> %g", []any{e.Field, e.From, e.To}
}

// EngineClosed reports engine shutdown after any in-flight analysis pass has
// drained.
type EngineClosed struct {
	Engine      string `json:"engine,omitempty"`
	Contexts    int    `json:"contexts"`
	Rounds      int    `json:"rounds"` // engine analysis passes run
	Transitions int    `json:"transitions"`
}

func (EngineClosed) EventKind() Kind      { return KindEngineClosed }
func (e EngineClosed) EngineName() string { return e.Engine }
func (e EngineClosed) Logline() (string, []any) {
	return "engine closed: %d contexts, %d rounds, %d transitions",
		[]any{e.Contexts, e.Rounds, e.Transitions}
}

// ModelsSwapped reports a runtime cost-model hot-swap (Engine.SetModels):
// from the next window close on, every context ranks its candidates against
// the new curves. Curves is the size of the new model set.
type ModelsSwapped struct {
	Engine string `json:"engine,omitempty"`
	Curves int    `json:"curves"`
	// Defaulted marks a swap to the shared analytic defaults (SetModels(nil)).
	Defaulted bool `json:"defaulted,omitempty"`
}

func (ModelsSwapped) EventKind() Kind      { return KindModelsSwapped }
func (e ModelsSwapped) EngineName() string { return e.Engine }
func (e ModelsSwapped) Logline() (string, []any) {
	if e.Defaulted {
		return "models swapped to analytic defaults (%d curves)", []any{e.Curves}
	}
	return "models swapped (%d curves)", []any{e.Curves}
}

// ModelMissing warns that a candidate variant lacks a cost curve the active
// rule needs (the named op × dimension is the first gap found). The engine
// skips the candidate for the context's ranking instead of mis-ranking it
// against fully modeled candidates; it is emitted once per (context,
// variant) per model set.
type ModelMissing struct {
	Engine    string `json:"engine,omitempty"`
	Context   string `json:"context"`
	Variant   string `json:"variant"`
	Op        string `json:"op"`
	Dimension string `json:"dimension"`
}

func (ModelMissing) EventKind() Kind      { return KindModelMissing }
func (e ModelMissing) EngineName() string { return e.Engine }
func (e ModelMissing) Logline() (string, []any) {
	return "candidate %s skipped at %s: no model curve for %s/%s",
		[]any{e.Variant, e.Context, e.Op, e.Dimension}
}

// BenchmarkProgress reports one completed (variant, op) cell of a model
// building run (perfmodel.Builder) — Done of Total cells fitted.
type BenchmarkProgress struct {
	Variant string `json:"variant"`
	Op      string `json:"op"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
}

func (BenchmarkProgress) EventKind() Kind    { return KindBenchmarkProgress }
func (BenchmarkProgress) EngineName() string { return "" }
func (e BenchmarkProgress) Logline() (string, []any) {
	return "benchmarked %s %s (%d/%d)", []any{e.Variant, e.Op, e.Done, e.Total}
}

// CheckCompleted reports one differential-checker run (internal/check): Ops
// operations replayed against variant and oracle from a deterministic Seed.
type CheckCompleted struct {
	Variant     string `json:"variant"`
	Abstraction string `json:"abstraction"`
	Seed        int64  `json:"seed"`
	Ops         int    `json:"ops"`
	Diverged    bool   `json:"diverged,omitempty"`
}

func (CheckCompleted) EventKind() Kind    { return KindCheckCompleted }
func (CheckCompleted) EngineName() string { return "" }
func (e CheckCompleted) Logline() (string, []any) {
	if e.Diverged {
		return "checked %s: DIVERGED (seed %d, %d ops)", []any{e.Variant, e.Seed, e.Ops}
	}
	return "checked %s: ok (seed %d, %d ops)", []any{e.Variant, e.Seed, e.Ops}
}

// WarmStart reports an allocation context restored from a persisted site
// decision at registration time: the context begins on Variant (the variant
// the previous process converged to) instead of the abstraction default, and
// its selection rule stays dormant until the observed workload profile
// drifts past the engine's drift threshold.
type WarmStart struct {
	Engine  string `json:"engine,omitempty"`
	Context string `json:"context"`
	Variant string `json:"variant"`
}

func (WarmStart) EventKind() Kind      { return KindWarmStart }
func (e WarmStart) EngineName() string { return e.Engine }
func (e WarmStart) Logline() (string, []any) {
	return "warm start at %s: variant %s restored from store", []any{e.Context, e.Variant}
}

// CalibrationStarted reports the beginning of one online calibration cycle
// (internal/tuner): Sites is the number of allocation contexts with observed
// workload data, Cells the number of (variant, op, size) shadow-benchmark
// cells planned for the cycle (the duty-cycle budget may cut it short).
type CalibrationStarted struct {
	Engine string `json:"engine,omitempty"`
	Sites  int    `json:"sites"`
	Cells  int    `json:"cells"`
}

func (CalibrationStarted) EventKind() Kind      { return KindCalibrationStarted }
func (e CalibrationStarted) EngineName() string { return e.Engine }
func (e CalibrationStarted) Logline() (string, []any) {
	return "calibration started: %d sites, %d cells planned", []any{e.Sites, e.Cells}
}

// CalibrationCompleted reports the end of one calibration cycle: Measured of
// the planned cells were shadow-benchmarked before the duty-cycle budget ran
// out, taking ShadowNs of wall-clock; Swapped marks cycles that folded the
// measurements into the engine's models via SetModels.
type CalibrationCompleted struct {
	Engine   string `json:"engine,omitempty"`
	Measured int    `json:"measured"`
	Planned  int    `json:"planned"`
	ShadowNs int64  `json:"shadow_ns"`
	Swapped  bool   `json:"swapped,omitempty"`
}

func (CalibrationCompleted) EventKind() Kind      { return KindCalibrationCompleted }
func (e CalibrationCompleted) EngineName() string { return e.Engine }
func (e CalibrationCompleted) Logline() (string, []any) {
	return "calibration completed: %d/%d cells in %dns", []any{e.Measured, e.Planned, e.ShadowNs}
}

// CalibrationDrift reports a warm-started context leaving its dormant state:
// the workload profile observed over the latest monitoring window diverged
// from the persisted profile by Drift (≥ Threshold), so the context resumes
// normal rule evaluation — the monitoring window "re-opens".
type CalibrationDrift struct {
	Engine    string  `json:"engine,omitempty"`
	Context   string  `json:"context"`
	Drift     float64 `json:"drift"`
	Threshold float64 `json:"threshold"`
}

func (CalibrationDrift) EventKind() Kind      { return KindCalibrationDrift }
func (e CalibrationDrift) EngineName() string { return e.Engine }
func (e CalibrationDrift) Logline() (string, []any) {
	return "drift at %s: %.3f exceeds threshold %.3f, rule evaluation resumed",
		[]any{e.Context, e.Drift, e.Threshold}
}

// StoreSaved reports one atomic write of the warm-start store: Sites site
// decisions and Curves model curves persisted to Path.
type StoreSaved struct {
	Path   string `json:"path"`
	Sites  int    `json:"sites"`
	Curves int    `json:"curves"`
}

func (StoreSaved) EventKind() Kind    { return KindStoreSaved }
func (StoreSaved) EngineName() string { return "" }
func (e StoreSaved) Logline() (string, []any) {
	return "store saved to %s (%d sites, %d curves)", []any{e.Path, e.Sites, e.Curves}
}

// StoreLoaded reports a warm-start store accepted at startup: the machine
// fingerprint matched and Sites site decisions plus Curves refined model
// curves are available for warm starts.
type StoreLoaded struct {
	Path   string `json:"path"`
	Sites  int    `json:"sites"`
	Curves int    `json:"curves"`
}

func (StoreLoaded) EventKind() Kind    { return KindStoreLoaded }
func (StoreLoaded) EngineName() string { return "" }
func (e StoreLoaded) Logline() (string, []any) {
	return "store loaded from %s (%d sites, %d curves)", []any{e.Path, e.Sites, e.Curves}
}

// StoreRejected reports a warm-start store that failed validation — torn
// JSON, an unknown schema version, or a machine-fingerprint mismatch — and
// was discarded wholesale: the engine falls back to the analytic defaults
// with no partial state. Exactly one StoreRejected is emitted per failed
// load attempt.
type StoreRejected struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

func (StoreRejected) EventKind() Kind    { return KindStoreRejected }
func (StoreRejected) EngineName() string { return "" }
func (e StoreRejected) Logline() (string, []any) {
	return "store rejected at %s: %s", []any{e.Path, e.Reason}
}

// SwitchSuppressed reports a variant switch the rule's point estimates
// called for but confidence gating withheld: candidate To beat the incumbent
// From on every criterion's point ratio, yet at the engine's configured
// confidence level the candidate's upper cost bound did not stay under the
// threshold on every criterion, so the costs are statistically
// indistinguishable and the context holds — the anti-flapping half of
// confidence-aware switching.
type SwitchSuppressed struct {
	Engine  string `json:"engine,omitempty"`
	Context string `json:"context"`
	From    string `json:"from"`
	To      string `json:"to"`
	Round   int    `json:"round"` // 0-based monitoring round, like Transition.Round
	// Ratio is the candidate's point-estimate ratio on the rule's first
	// criterion; Level is the confidence level that suppressed the switch.
	Ratio float64 `json:"ratio"`
	Level float64 `json:"level"`
}

func (SwitchSuppressed) EventKind() Kind      { return KindSwitchSuppressed }
func (e SwitchSuppressed) EngineName() string { return e.Engine }
func (e SwitchSuppressed) Logline() (string, []any) {
	return "switch suppressed at %s (round %d): %s -> %s overlaps at confidence %g",
		[]any{e.Context, e.Round, e.From, e.To, e.Level}
}

// CheckDivergence reports a semantic divergence between a variant and the
// reference oracle, after shrinking: OpIndex is the failing position within
// the Ops-long minimal sequence, Detail the got-vs-want description.
type CheckDivergence struct {
	Variant     string `json:"variant"`
	Abstraction string `json:"abstraction"`
	Seed        int64  `json:"seed"`
	OpIndex     int    `json:"op_index"`
	Ops         int    `json:"ops"` // length of the shrunk sequence
	Detail      string `json:"detail"`
}

func (CheckDivergence) EventKind() Kind    { return KindCheckDivergence }
func (CheckDivergence) EngineName() string { return "" }
func (e CheckDivergence) Logline() (string, []any) {
	return "divergence in %s at op %d/%d (seed %d): %s",
		[]any{e.Variant, e.OpIndex, e.Ops, e.Seed, e.Detail}
}

// SearchStarted reports the start of one offline multi-objective search
// (cmd/collopt): the store the workload profiles came from, the allocation
// sites under search, the objectives, and the search seed.
type SearchStarted struct {
	Store      string   `json:"store"`
	Sites      int      `json:"sites"`
	Objectives []string `json:"objectives"`
	Seed       int64    `json:"seed"`
}

func (SearchStarted) EventKind() Kind    { return KindSearchStarted }
func (SearchStarted) EngineName() string { return "" }
func (e SearchStarted) Logline() (string, []any) {
	return "search started over %d sites on %v (store %s, seed %d)",
		[]any{e.Sites, e.Objectives, e.Store, e.Seed}
}

// SearchFront reports the outcome of one offline search: the Pareto front
// size, the number of cost evaluations spent, and how many front members
// dominate the all-baseline assignment on at least two objectives.
type SearchFront struct {
	Sites       int `json:"sites"`
	FrontSize   int `json:"front_size"`
	Evaluations int `json:"evaluations"`
	// DominatingBaseline counts front members no worse than the baseline
	// everywhere and strictly better on >= 2 objectives.
	DominatingBaseline int `json:"dominating_baseline"`
}

func (SearchFront) EventKind() Kind    { return KindSearchFront }
func (SearchFront) EngineName() string { return "" }
func (e SearchFront) Logline() (string, []any) {
	return "search front: %d assignments over %d sites (%d evaluations, %d dominate baseline)",
		[]any{e.FrontSize, e.Sites, e.Evaluations, e.DominatingBaseline}
}

// PatchEmitted reports one variant-pinning source patch written by collopt:
// the file rewritten, how many sites were pinned in it, and where the patch
// went (a unified diff, an -o output tree, or the file itself under -w).
type PatchEmitted struct {
	File   string `json:"file"`
	Pinned int    `json:"pinned"`
	Output string `json:"output"`
}

func (PatchEmitted) EventKind() Kind    { return KindPatchEmitted }
func (PatchEmitted) EngineName() string { return "" }
func (e PatchEmitted) Logline() (string, []any) {
	return "patch emitted for %s: %d sites pinned -> %s", []any{e.File, e.Pinned, e.Output}
}
