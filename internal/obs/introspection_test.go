package obs

import (
	"bytes"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

// --- Prometheus label escaping (hostile site names) ---

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"tab\tstays", "tab\tstays"},           // the format does not escape tabs
		{"unicode — stays", "unicode — stays"}, // nor non-ASCII
		{`all"three\at
once`, `all\"three\\at\nonce`},
	}
	for _, c := range cases {
		if got := EscapeLabel(c.in); got != c.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestHostileContextNameRendersValidMetrics is the regression test for the
// label-escaping bug: a site name containing quotes, backslashes and
// newlines must produce a /metrics exposition whose sample lines stay
// well-formed (one sample per line, parseable quoting).
func TestHostileContextNameRendersValidMetrics(t *testing.T) {
	hostile := "site\"with\\hostile\nname"
	r := NewRegistry()
	r.IncTransition(hostile, `from"v`, "to\nv")
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "hostile\nname") {
		t.Error("raw newline from label value leaked into the exposition")
	}
	want := `collectionswitch_transitions_total{context="site\"with\\hostile\nname",from="from\"v",to="to\nv"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing escaped sample line %q; got:\n%s", want, out)
	}
}

// --- JSONL sink Close: flush + sync ---

// syncRecorder is an io.Writer with an os.File-style Sync method.
type syncRecorder struct {
	bytes.Buffer
	syncs   int
	syncErr error
}

func (s *syncRecorder) Sync() error {
	s.syncs++
	return s.syncErr
}

func TestJSONLCloseFlushesAndSyncs(t *testing.T) {
	var dest syncRecorder
	s := NewJSONLSink(&dest)
	s.Emit(RoundStarted{Engine: "e", Round: 1})
	if dest.Len() != 0 {
		t.Fatal("sink wrote through before Flush/Close (expected buffering)")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if dest.syncs != 1 {
		t.Errorf("Sync called %d times, want 1", dest.syncs)
	}
	events, err := ReadAll(&dest.Buffer)
	if err != nil {
		t.Fatalf("trace left unparseable after Close: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("decoded %d events, want 1", len(events))
	}
}

func TestJSONLCloseReportsSyncError(t *testing.T) {
	boom := errors.New("disk full")
	dest := syncRecorder{syncErr: boom}
	s := NewJSONLSink(&dest)
	s.Emit(RoundStarted{Engine: "e"})
	if err := s.Close(); !errors.Is(err, boom) {
		t.Errorf("Close error = %v, want the Sync error", err)
	}
}

func TestJSONLCloseOnPlainWriterJustFlushes(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(EngineClosed{Engine: "e"})
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("Close did not flush the buffered event")
	}
}

// --- Flight recorder ---

func TestFlightRecorderEvictsOldest(t *testing.T) {
	r := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		r.Emit(RoundStarted{Engine: "e", Round: i})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(snap))
	}
	for i, te := range snap {
		if te.When.IsZero() {
			t.Error("entry missing timestamp")
		}
		if got := te.Event.(RoundStarted).Round; got != i+2 {
			t.Errorf("snapshot[%d].Round = %d, want %d (oldest first)", i, got, i+2)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestFlightRecorderWriteTo(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Emit(RoundStarted{Engine: "e", Round: 0, Contexts: 2})
	r.Emit(Transition{Engine: "e", Context: "s", From: "a", To: "b"})
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "last 2 of 2 events") {
		t.Errorf("dump header missing counts:\n%s", out)
	}
	if !strings.Contains(out, "[round_started]") || !strings.Contains(out, "[transition]") {
		t.Errorf("dump missing event kinds:\n%s", out)
	}
}

// --- Counting sink ---

func TestCountingSinkCountsByKind(t *testing.T) {
	r := NewRegistry()
	s := CountingSink(r)
	s.Emit(RoundStarted{})
	s.Emit(RoundStarted{})
	s.Emit(Transition{})
	counts := r.EventCounts()
	if counts[KindRoundStarted] != 2 || counts[KindTransition] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if CountingSink(nil) != nil {
		t.Error("CountingSink(nil) should be nil so Multi drops it")
	}
}

// --- Runtime sampler ---

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	r := NewRegistry()
	// Generate some GC activity so the pause histogram is non-degenerate.
	garbage := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		garbage = append(garbage, make([]byte, 1<<16))
	}
	runtime.GC()
	runtime.KeepAlive(garbage)

	s := NewRuntimeSampler(r)
	s.SampleOnce()
	if got := r.LiveHeapBytes.Load(); got <= 0 {
		t.Errorf("live heap gauge = %g, want > 0", got)
	}
	if got := r.GCCPUFraction.Load(); got < 0 || got > 1 {
		t.Errorf("GC CPU fraction = %g, want within [0, 1]", got)
	}
	if got := r.RuntimeSamples.Load(); got != 1 {
		t.Errorf("RuntimeSamples = %d, want 1", got)
	}
	bounds, counts := r.gcPauses()
	if len(bounds) == 0 || len(bounds) != len(counts) {
		t.Fatalf("GC pause snapshot: %d bounds, %d counts", len(bounds), len(counts))
	}
	if last := bounds[len(bounds)-1]; !math.IsInf(last, 1) {
		t.Errorf("final pause bound = %g, want +Inf", last)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("pause counts not cumulative at %d", i)
		}
	}
}

func TestRuntimeSamplerBackgroundLoop(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for r.RuntimeSamples.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if got := r.RuntimeSamples.Load(); got < 3 {
		t.Errorf("sampler ticked %d times in 2s at 1ms interval", got)
	}
}

// --- Kind registry exhaustiveness ---

// TestEventKindsExhaustive cross-checks the three places an event kind must
// be registered: the Kind constant (with a doc comment, enforced via the
// AST), the kindDecoders registry (via Kinds/Prototype), and the per-kind
// events_total counter rendering on /metrics.
func TestEventKindsExhaustive(t *testing.T) {
	declared := declaredKinds(t)
	if len(declared) == 0 {
		t.Fatal("no Kind constants found in obs.go")
	}
	registered := make(map[Kind]bool)
	for _, k := range Kinds() {
		registered[k] = true
	}
	for name, k := range declared {
		if !registered[k] {
			t.Errorf("Kind constant %s (%q) has no kindDecoders entry", name, k)
		}
	}
	if len(registered) != len(declared) {
		t.Errorf("%d kinds registered, %d declared — registry entry without a constant?",
			len(registered), len(declared))
	}

	// Every kind decodes a prototype whose EventKind round-trips.
	r := NewRegistry()
	sink := CountingSink(r)
	for _, k := range Kinds() {
		proto, ok := Prototype(k)
		if !ok {
			t.Errorf("Prototype(%s) failed", k)
			continue
		}
		if proto.EventKind() != k {
			t.Errorf("Prototype(%s).EventKind() = %s", k, proto.EventKind())
		}
		sink.Emit(proto)
	}

	// And every kind renders an events_total sample.
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := buf.String()
	for _, k := range Kinds() {
		want := fmt.Sprintf("collectionswitch_events_total{kind=%q} 1", k)
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// declaredKinds parses obs.go and returns every Kind constant (name ->
// value), failing the test for any constant missing a doc or line comment —
// the taxonomy is user-facing documentation.
func declaredKinds(t *testing.T) map[string]Kind {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "obs.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse obs.go: %v", err)
	}
	kinds := make(map[string]Kind)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			ident, ok := vs.Type.(*ast.Ident)
			if !ok || ident.Name != "Kind" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Errorf("Kind constant %s has a non-literal value", name.Name)
					continue
				}
				kinds[name.Name] = Kind(strings.Trim(lit.Value, `"`))
				if vs.Doc == nil && vs.Comment == nil {
					t.Errorf("Kind constant %s has no doc comment", name.Name)
				}
			}
		}
	}
	return kinds
}
