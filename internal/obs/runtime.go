package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime attribution (ISSUE 6, after "Distilling the Real Cost of
// Production Garbage Collectors"): GC cost must be measured per workload,
// not assumed, so the sampler below wires runtime/metrics into the
// framework's own registry. Every tick publishes the live-heap size, the
// cumulative GC CPU fraction and the stop-the-world pause histogram as
// gauges next to the engine's counters — one /metrics scrape then answers
// both "what did the framework decide" and "what did that cost the runtime".

// runtimeSamples is the fixed runtime/metrics read set of one tick.
const (
	metricLiveHeap   = "/memory/classes/heap/objects:bytes"
	metricGCCPU      = "/cpu/classes/gc/total:cpu-seconds"
	metricTotalCPU   = "/cpu/classes/total:cpu-seconds"
	metricGCPauses   = "/gc/pauses:seconds"
	defaultRuntimeHz = time.Second
)

// RuntimeSampler periodically reads runtime/metrics and publishes the
// values into a Registry: LiveHeapBytes, GCCPUFraction and the GC pause
// histogram. Construct with StartRuntimeSampler; call Close to stop the
// ticker goroutine. SampleOnce may also be called manually (tests, manual
// engines) — a Sampler is not required for the registry to render, only for
// the gauges to be non-zero.
type RuntimeSampler struct {
	reg     *Registry
	samples []metrics.Sample
	stop    chan struct{}
	done    chan struct{}
}

// NewRuntimeSampler returns a sampler without a background goroutine;
// values update only on explicit SampleOnce calls.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		reg: reg,
		samples: []metrics.Sample{
			{Name: metricLiveHeap},
			{Name: metricGCCPU},
			{Name: metricTotalCPU},
			{Name: metricGCPauses},
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// StartRuntimeSampler returns a sampler updating reg every interval on a
// background goroutine (0 uses the 1s default). One immediate sample runs
// before the first tick so the gauges are live as soon as the sampler is.
// Call Close to stop it.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = defaultRuntimeHz
	}
	s := NewRuntimeSampler(reg)
	s.SampleOnce()
	go s.loop(interval)
	return s
}

func (s *RuntimeSampler) loop(interval time.Duration) {
	defer close(s.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.SampleOnce()
		}
	}
}

// Close stops the background goroutine (if Start was used). Idempotent is
// not required; call once.
func (s *RuntimeSampler) Close() {
	close(s.stop)
	<-s.done
}

// SampleOnce reads the runtime metrics and publishes them into the
// registry. It is safe to call from any goroutine; the per-sampler sample
// buffer is reused, so concurrent SampleOnce calls on ONE sampler are not
// supported (the background loop is the only caller in normal use).
func (s *RuntimeSampler) SampleOnce() {
	metrics.Read(s.samples)
	var gcCPU, totalCPU float64
	for i := range s.samples {
		sample := &s.samples[i]
		switch sample.Name {
		case metricLiveHeap:
			if sample.Value.Kind() == metrics.KindUint64 {
				s.reg.LiveHeapBytes.Set(float64(sample.Value.Uint64()))
			}
		case metricGCCPU:
			if sample.Value.Kind() == metrics.KindFloat64 {
				gcCPU = sample.Value.Float64()
			}
		case metricTotalCPU:
			if sample.Value.Kind() == metrics.KindFloat64 {
				totalCPU = sample.Value.Float64()
			}
		case metricGCPauses:
			if sample.Value.Kind() == metrics.KindFloat64Histogram {
				bounds, counts := promHistogram(sample.Value.Float64Histogram())
				s.reg.SetGCPauses(bounds, counts)
			}
		}
	}
	if totalCPU > 0 {
		s.reg.GCCPUFraction.Set(gcCPU / totalCPU)
	}
	s.reg.RuntimeSamples.Add(1)
}

// promHistogram converts a runtime/metrics histogram (per-bucket counts,
// n+1 boundaries, bucket i spanning [Buckets[i], Buckets[i+1])) into the
// Prometheus cumulative form: per-bucket upper bounds ending in +Inf and
// cumulative counts.
func promHistogram(h *metrics.Float64Histogram) (bounds []float64, counts []uint64) {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return nil, nil
	}
	bounds = make([]float64, len(h.Counts))
	counts = make([]uint64, len(h.Counts))
	var acc uint64
	for i, c := range h.Counts {
		acc += c
		bounds[i] = h.Buckets[i+1]
		counts[i] = acc
	}
	// Prometheus requires the final bucket to be +Inf; the runtime's last
	// boundary usually is already, but guarantee it.
	bounds[len(bounds)-1] = math.Inf(1)
	return bounds, counts
}
