// Package polyfit implements least-squares polynomial fitting, the math the
// paper uses to turn benchmark samples into performance models:
//
//	cost_op(s) = Σ_{k=0..d} a_k · s^k
//
// Coefficients are found by solving the normal equations of the Vandermonde
// system with Gaussian elimination (partial pivoting). The paper uses degree
// three; Fit accepts any degree smaller than the sample count.
package polyfit

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Poly is a polynomial with coefficients in ascending-power order:
// Coeffs[k] multiplies x^k.
type Poly struct {
	Coeffs []float64
}

// Eval returns the polynomial's value at x (Horner's method).
func (p Poly) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Degree returns the polynomial's degree (len(Coeffs)-1), or -1 if empty.
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// String renders the polynomial in human-readable form, e.g.
// "3.2 + 1.5·x + 0.01·x^2".
func (p Poly) String() string {
	if len(p.Coeffs) == 0 {
		return "0"
	}
	var b strings.Builder
	for k, c := range p.Coeffs {
		if k > 0 {
			b.WriteString(" + ")
		}
		switch k {
		case 0:
			fmt.Fprintf(&b, "%.6g", c)
		case 1:
			fmt.Fprintf(&b, "%.6g*x", c)
		default:
			fmt.Fprintf(&b, "%.6g*x^%d", c, k)
		}
	}
	return b.String()
}

// ErrBadFit is returned when the sample set cannot determine the requested
// polynomial (too few points, mismatched slices, or a singular system).
var ErrBadFit = errors.New("polyfit: insufficient or degenerate samples")

// Fit computes the least-squares polynomial of the given degree through the
// samples (xs[i], ys[i]). It requires len(xs) == len(ys) > degree.
func Fit(xs, ys []float64, degree int) (Poly, error) {
	if degree < 0 || len(xs) != len(ys) || len(xs) <= degree {
		return Poly{}, ErrBadFit
	}
	n := degree + 1
	// Normal equations: (VᵀV) a = Vᵀy with V the Vandermonde matrix.
	// VᵀV[i][j] = Σ x^(i+j); Vᵀy[i] = Σ y·x^i.
	pow := make([]float64, 2*degree+1)
	for _, x := range xs {
		xp := 1.0
		for k := 0; k <= 2*degree; k++ {
			pow[k] += xp
			xp *= x
		}
	}
	rhs := make([]float64, n)
	for i, x := range xs {
		xp := 1.0
		for k := 0; k < n; k++ {
			rhs[k] += ys[i] * xp
			xp *= x
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			a[i][j] = pow[i+j]
		}
		a[i][n] = rhs[i]
	}
	coeffs, err := solve(a)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Coeffs: coeffs}, nil
}

// pivotRelTol is the relative pivot threshold of solve: a pivot smaller than
// pivotRelTol times its column's original norm is treated as zero. The
// historical threshold was the absolute constant 1e-12, which is meaningless
// once the matrix entries are power sums of large sizes — a degree-3 normal
// matrix over sizes ≥ 1e5 holds entries up to ~1e36, so a numerically dead
// pivot (pure cancellation noise at ~1e20) still sailed past the absolute
// check and the elimination "succeeded" with garbage coefficients.
const pivotRelTol = 1e-12

// solve performs Gaussian elimination with partial pivoting on the n×(n+1)
// augmented matrix a, returning the solution vector. Pivot degeneracy is
// judged relative to each column's norm in the original matrix, so detection
// is invariant under uniform scaling of the system.
func solve(a [][]float64) ([]float64, error) {
	n := len(a)
	// Column norms of the matrix as handed in (the coefficient part only),
	// before elimination rewrites it.
	colNorm := make([]float64, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			if v := math.Abs(a[r][c]); v > colNorm[c] {
				colNorm[c] = v
			}
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot: the row with the largest magnitude in col.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < pivotRelTol*colNorm[col] {
			return nil, ErrBadFit
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := a[i][n]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// Residuals returns ys[i] - p.Eval(xs[i]) for each sample.
func Residuals(p Poly, xs, ys []float64) []float64 {
	res := make([]float64, len(xs))
	for i := range xs {
		res[i] = ys[i] - p.Eval(xs[i])
	}
	return res
}

// RMSE returns the root-mean-square error of the fit over the samples.
func RMSE(p Poly, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range Residuals(p, xs, ys) {
		sum += r * r
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Scale returns the polynomial f·p.
func Scale(p Poly, f float64) Poly {
	out := Poly{Coeffs: make([]float64, len(p.Coeffs))}
	for i, c := range p.Coeffs {
		out.Coeffs[i] = f * c
	}
	return out
}

// Add returns the polynomial p + q.
func Add(p, q Poly) Poly {
	n := len(p.Coeffs)
	if len(q.Coeffs) > n {
		n = len(q.Coeffs)
	}
	out := Poly{Coeffs: make([]float64, n)}
	for i := range out.Coeffs {
		if i < len(p.Coeffs) {
			out.Coeffs[i] += p.Coeffs[i]
		}
		if i < len(q.Coeffs) {
			out.Coeffs[i] += q.Coeffs[i]
		}
	}
	return out
}
