package polyfit

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*x
	}
	p, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(p.Coeffs[0], 2, 1e-9) || !approxEqual(p.Coeffs[1], 3, 1e-9) {
		t.Fatalf("coeffs = %v, want [2 3]", p.Coeffs)
	}
}

func TestFitExactCubic(t *testing.T) {
	want := []float64{1, -2, 0.5, 0.25}
	xs := []float64{1, 2, 5, 10, 20, 50, 100}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = want[0] + want[1]*x + want[2]*x*x + want[3]*x*x*x
	}
	p, err := Fit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if !approxEqual(p.Coeffs[k], want[k], 1e-6*math.Max(1, math.Abs(want[k]))) {
			t.Fatalf("coeff[%d] = %g, want %g (all %v)", k, p.Coeffs[k], want[k], p.Coeffs)
		}
	}
	if rmse := RMSE(p, xs, ys); rmse > 1e-6 {
		t.Fatalf("RMSE of exact fit = %g", rmse)
	}
}

func TestFitNoisyQuadraticCloseEnough(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		x := float64(i + 1)
		xs[i] = x
		ys[i] = 5 + 0.1*x + 0.02*x*x + r.NormFloat64()*0.5
	}
	p, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(p.Coeffs[2], 0.02, 0.002) {
		t.Fatalf("quadratic coefficient = %g, want ~0.02", p.Coeffs[2])
	}
	if rmse := RMSE(p, xs, ys); rmse > 1.0 {
		t.Fatalf("RMSE = %g, want < 1", rmse)
	}
}

func TestFitDegreeZero(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 12, 8, 10}
	p, err := Fit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(p.Coeffs[0], 10, 1e-9) {
		t.Fatalf("constant fit = %g, want mean 10", p.Coeffs[0])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 2}, 3); err == nil {
		t.Error("degree >= sample count accepted")
	}
	if _, err := Fit(nil, nil, 1); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := Fit([]float64{1, 2, 3}, []float64{1, 2, 3}, -1); err == nil {
		t.Error("negative degree accepted")
	}
	// Singular: all x identical.
	if _, err := Fit([]float64{5, 5, 5}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("degenerate x values accepted")
	}
}

func TestEvalHorner(t *testing.T) {
	p := Poly{Coeffs: []float64{1, 2, 3}} // 1 + 2x + 3x²
	cases := map[float64]float64{0: 1, 1: 6, 2: 17, -1: 2}
	for x, want := range cases {
		if got := p.Eval(x); !approxEqual(got, want, 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", x, got, want)
		}
	}
	if got := (Poly{}).Eval(3); got != 0 {
		t.Errorf("empty poly Eval = %g, want 0", got)
	}
}

func TestDegree(t *testing.T) {
	if d := (Poly{}).Degree(); d != -1 {
		t.Errorf("empty Degree = %d, want -1", d)
	}
	if d := (Poly{Coeffs: []float64{1, 2, 3, 4}}).Degree(); d != 3 {
		t.Errorf("Degree = %d, want 3", d)
	}
}

func TestString(t *testing.T) {
	p := Poly{Coeffs: []float64{1.5, 2, 0.25}}
	s := p.String()
	for _, want := range []string{"1.5", "2*x", "0.25*x^2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if (Poly{}).String() != "0" {
		t.Errorf("empty String() = %q, want \"0\"", (Poly{}).String())
	}
}

func TestResiduals(t *testing.T) {
	p := Poly{Coeffs: []float64{0, 1}} // y = x
	res := Residuals(p, []float64{1, 2, 3}, []float64{1, 3, 2})
	want := []float64{0, 1, -1}
	for i := range want {
		if !approxEqual(res[i], want[i], 1e-12) {
			t.Fatalf("Residuals = %v, want %v", res, want)
		}
	}
}

// Property: fitting a polynomial to points generated from that polynomial
// recovers a curve that reproduces the points, for random polynomials.
func TestFitRoundTripProperty(t *testing.T) {
	type coeffSeed struct {
		A, B, C float64
	}
	f := func(seed coeffSeed) bool {
		// Clamp coefficient magnitudes to keep the system well-conditioned.
		a := math.Mod(seed.A, 100)
		b := math.Mod(seed.B, 10)
		c := math.Mod(seed.C, 1)
		truth := Poly{Coeffs: []float64{a, b, c}}
		xs := []float64{1, 3, 7, 15, 40, 90, 200}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = truth.Eval(x)
		}
		p, err := Fit(xs, ys, 2)
		if err != nil {
			return false
		}
		for _, x := range []float64{2, 10, 100, 150} {
			want := truth.Eval(x)
			tol := 1e-6 * math.Max(1, math.Abs(want))
			if !approxEqual(p.Eval(x), want, tol) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(coeffSeed{
				A: r.Float64()*200 - 100,
				B: r.Float64()*20 - 10,
				C: r.Float64()*2 - 1,
			})
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the least-squares fit never has a larger RMSE than the same-
// degree fit through any perturbed coefficient vector (local optimality
// check against a few perturbations).
func TestFitIsLeastSquares(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 3 + 0.5*xs[i] + r.NormFloat64()*2
	}
	p, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := RMSE(p, xs, ys)
	for trial := 0; trial < 100; trial++ {
		q := Poly{Coeffs: []float64{
			p.Coeffs[0] + r.NormFloat64()*0.1,
			p.Coeffs[1] + r.NormFloat64()*0.01,
		}}
		if RMSE(q, xs, ys) < base-1e-9 {
			t.Fatalf("perturbed poly %v beats least-squares fit %v", q.Coeffs, p.Coeffs)
		}
	}
}

func TestScaleAdd(t *testing.T) {
	p := Poly{Coeffs: []float64{1, 2}}
	q := Poly{Coeffs: []float64{10, 0, 3}}
	s := Scale(p, 2)
	if s.Eval(5) != 2*p.Eval(5) {
		t.Fatalf("Scale wrong: %v", s.Coeffs)
	}
	a := Add(p, q)
	for _, x := range []float64{0, 1, 7} {
		if got, want := a.Eval(x), p.Eval(x)+q.Eval(x); !approxEqual(got, want, 1e-12) {
			t.Fatalf("Add(%g) = %g, want %g", x, got, want)
		}
	}
	// Add must not mutate inputs.
	if len(p.Coeffs) != 2 || p.Coeffs[1] != 2 {
		t.Fatal("Add mutated its input")
	}
}
