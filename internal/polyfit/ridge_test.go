package polyfit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// corpusCase mirrors the sample sets of the legacy Fit tests so the ridge
// path can be compared against them coefficient by coefficient.
type corpusCase struct {
	name   string
	degree int
	xs, ys []float64
}

func legacyCorpus() []corpusCase {
	line := corpusCase{name: "exact-line", degree: 1, xs: []float64{0, 1, 2, 3, 4}}
	for _, x := range line.xs {
		line.ys = append(line.ys, 2+3*x)
	}
	cubic := corpusCase{name: "exact-cubic", degree: 3, xs: []float64{1, 2, 5, 10, 20, 50, 100}}
	for _, x := range cubic.xs {
		cubic.ys = append(cubic.ys, 1-2*x+0.5*x*x+0.25*x*x*x)
	}
	r := rand.New(rand.NewSource(7))
	noisy := corpusCase{name: "noisy-quadratic", degree: 2}
	for i := 0; i < 200; i++ {
		x := float64(i + 1)
		noisy.xs = append(noisy.xs, x)
		noisy.ys = append(noisy.ys, 5+0.1*x+0.02*x*x+r.NormFloat64()*0.5)
	}
	mean := corpusCase{name: "degree-zero", degree: 0, xs: []float64{1, 2, 3, 4}, ys: []float64{10, 12, 8, 10}}
	return []corpusCase{line, cubic, noisy, mean}
}

// Ridge at λ=0 must reproduce the legacy coefficients on the existing,
// well-conditioned corpus — bit-for-bit for degrees ≥ 1, where FitRidge
// delegates to Fit outright.
func TestFitRidgeZeroMatchesLegacyCorpus(t *testing.T) {
	for _, c := range legacyCorpus() {
		legacy, err := Fit(c.xs, c.ys, c.degree)
		if err != nil {
			t.Fatalf("%s: legacy fit: %v", c.name, err)
		}
		r, err := FitRidge(SamplesFromSlices(c.xs, c.ys), c.degree, 0)
		if err != nil {
			t.Fatalf("%s: ridge fit: %v", c.name, err)
		}
		if len(r.Poly.Coeffs) != len(legacy.Coeffs) {
			t.Fatalf("%s: coeff count %d vs legacy %d", c.name, len(r.Poly.Coeffs), len(legacy.Coeffs))
		}
		for k := range legacy.Coeffs {
			diff := math.Abs(r.Poly.Coeffs[k] - legacy.Coeffs[k])
			if diff > 1e-9 {
				t.Errorf("%s: coeff[%d] ridge %g vs legacy %g (|diff| %g > 1e-9)",
					c.name, k, r.Poly.Coeffs[k], legacy.Coeffs[k], diff)
			}
			if c.degree >= 1 && diff != 0 {
				t.Errorf("%s: coeff[%d] not bit-identical to legacy (diff %g)", c.name, k, diff)
			}
		}
		if want := float64(c.degree + 1); math.Abs(r.EffDF-want) > 1e-6 {
			t.Errorf("%s: EffDF at λ=0 = %g, want %g", c.name, r.EffDF, want)
		}
	}
}

// conditioningCase is the degree-3 system over sizes in [1e4, 1e6] whose raw
// normal equations span ~36 orders of magnitude.
func conditioningCase() (truth Poly, xs, ys []float64) {
	truth = Poly{Coeffs: []float64{50, 2e-2, 3e-8, 4e-14}}
	for i := 0; i < 16; i++ {
		x := 1e4 * math.Pow(1e2, float64(i)/15.0)
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	return truth, xs, ys
}

// Regression for the scale-dependent pivot: degree 3 over sizes in
// [1e4, 1e6]. The raw-basis solver must either refuse (the relative pivot
// test catches the cancelled column) or miss by more than 1% RMSE — under
// the old absolute 1e-12 threshold it silently returned garbage. The
// standardized GCV fit must recover the curve to near machine precision.
func TestFitDegree3LargeSizesConditioning(t *testing.T) {
	truth, xs, ys := conditioningCase()
	var ymean float64
	for _, y := range ys {
		ymean += y
	}
	ymean /= float64(len(ys))

	if legacy, err := Fit(xs, ys, 3); err == nil {
		if rel := RMSE(legacy, xs, ys) / ymean; rel <= 0.01 {
			t.Errorf("raw-basis fit unexpectedly healthy on ill-conditioned system (rel RMSE %g)", rel)
		}
	}

	r, err := FitGCV(SamplesFromSlices(xs, ys), 3)
	if err != nil {
		t.Fatalf("FitGCV: %v", err)
	}
	if rel := RMSE(r.Poly, xs, ys) / ymean; rel > 1e-9 {
		t.Errorf("standardized fit rel RMSE = %g, want ~0", rel)
	}
	for k, want := range truth.Coeffs {
		if got := r.Poly.Coeffs[k]; math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("coeff[%d] = %g, want %g", k, got, want)
		}
	}
}

// The pivot threshold is relative to the column norm, so rank deficiency is
// detected at any scale — duplicate sizes near 1e6 used to slip past the
// absolute 1e-12 check as cancellation noise.
func TestSolvePivotRelativeToScale(t *testing.T) {
	if _, err := Fit([]float64{1e6, 1e6, 2e6}, []float64{1, 2, 3}, 2); !errors.Is(err, ErrBadFit) {
		t.Errorf("duplicate x at scale 1e6: err = %v, want ErrBadFit", err)
	}
	if _, err := Fit([]float64{5, 5, 5}, []float64{1, 2, 3}, 1); !errors.Is(err, ErrBadFit) {
		t.Errorf("duplicate x at small scale: err = %v, want ErrBadFit", err)
	}
	// Healthy systems at the same scale still fit.
	xs := []float64{1e4, 3e4, 1e5, 3e5, 1e6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 2e-5*x
	}
	p, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatalf("well-conditioned large-scale fit: %v", err)
	}
	if math.Abs(p.Coeffs[1]-2e-5) > 1e-12 {
		t.Errorf("slope = %g, want 2e-5", p.Coeffs[1])
	}
}

func TestFitGCVSmoke(t *testing.T) {
	// Exact data: RSS ≈ 0 at λ=0, so GCV must keep the unpenalized fit.
	_, xs, ys := conditioningCase()
	r, err := FitGCV(SamplesFromSlices(xs, ys), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lambda != 0 {
		t.Errorf("exact data chose λ=%g, want 0", r.Lambda)
	}

	// Noisy data: some grid λ is chosen, variance is positive, and the
	// effective degrees of freedom stay within (0, degree+1].
	rng := rand.New(rand.NewSource(11))
	s := NewSamples(60)
	for i := 0; i < 60; i++ {
		x := float64(i + 1)
		s.Add(x, 3+0.4*x+rng.NormFloat64()*2)
	}
	r, err = FitGCV(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	onGrid := false
	for _, lam := range gcvGrid {
		if r.Lambda == lam {
			onGrid = true
		}
	}
	if !onGrid {
		t.Errorf("λ=%g not on the GCV grid", r.Lambda)
	}
	if r.Sigma2 <= 0 {
		t.Errorf("Sigma2 = %g, want > 0 on noisy data", r.Sigma2)
	}
	if r.EffDF <= 0 || r.EffDF > 3+1e-9 {
		t.Errorf("EffDF = %g, want in (0, 3]", r.EffDF)
	}
}

func TestStdErrAndCI(t *testing.T) {
	fit := func(n int, seed int64) FitResult {
		rng := rand.New(rand.NewSource(seed))
		s := NewSamples(n)
		for i := 0; i < n; i++ {
			x := float64(i%100 + 1)
			s.Add(x, 2+3*x+rng.NormFloat64()*4)
		}
		r, err := FitRidge(s, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	small := fit(100, 3)
	big := fit(400, 3)
	if small.StdErr(50) <= 0 {
		t.Fatalf("StdErr = %g, want > 0 on noisy data", small.StdErr(50))
	}
	if big.StdErr(50) >= small.StdErr(50) {
		t.Errorf("more data did not shrink the standard error: n=400 %g vs n=100 %g",
			big.StdErr(50), small.StdErr(50))
	}
	lo, hi := small.EvalCI(50, 1.96)
	if y := small.Poly.Eval(50); !(lo < y && y < hi) {
		t.Errorf("CI [%g, %g] does not bracket the fit %g", lo, hi, y)
	}
	// The 95% band should cover the true mean at most probe points.
	truth := func(x float64) float64 { return 2 + 3*x }
	covered := 0
	for x := 1.0; x <= 100; x++ {
		lo, hi := small.EvalCI(x, 1.96)
		if lo <= truth(x) && truth(x) <= hi {
			covered++
		}
	}
	if covered < 80 {
		t.Errorf("95%% CI covers truth at only %d/100 points", covered)
	}
}

// The closed-form variance polynomial must agree with StdErr² everywhere.
func TestVarPolyMatchesStdErr(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := NewSamples(80)
	for i := 0; i < 80; i++ {
		x := float64(i + 1)
		s.Add(x, 1+0.2*x+0.03*x*x+rng.NormFloat64())
	}
	for _, lam := range []float64{0, 1e-4, 1e-1} {
		r, err := FitRidge(s, 2, lam)
		if err != nil {
			t.Fatal(err)
		}
		vp := r.VarPoly()
		if got, want := vp.Degree(), 4; got != want {
			t.Fatalf("λ=%g: VarPoly degree = %d, want %d", lam, got, want)
		}
		for _, x := range []float64{0.5, 1, 7, 40, 80, 120} {
			se2 := r.StdErr(x) * r.StdErr(x)
			got := vp.Eval(x)
			if math.Abs(got-se2) > 1e-9*math.Max(se2, 1e-30) {
				t.Errorf("λ=%g: VarPoly(%g) = %g, StdErr² = %g", lam, x, got, se2)
			}
		}
	}
}

func TestFitRidgeErrors(t *testing.T) {
	s := SamplesFromSlices([]float64{1, 2, 3}, []float64{1, 2, 3})
	if _, err := FitRidge(s, 1, -0.5); !errors.Is(err, ErrBadFit) {
		t.Error("negative λ accepted")
	}
	if _, err := FitRidge(s, 3, 0); !errors.Is(err, ErrBadFit) {
		t.Error("degree ≥ sample count accepted")
	}
	if _, err := FitRidge(s, -1, 0); !errors.Is(err, ErrBadFit) {
		t.Error("negative degree accepted")
	}
	if _, err := FitRidge(NewSamples(0), 0, 0); !errors.Is(err, ErrBadFit) {
		t.Error("empty samples accepted")
	}
	con := SamplesFromSlices([]float64{4, 4, 4}, []float64{1, 2, 3})
	if _, err := FitRidge(con, 1, 1e-3); !errors.Is(err, ErrBadFit) {
		t.Error("constant x column accepted for degree 1")
	}
	// Degree 0 on constant x is fine — it only needs the mean.
	r, err := FitRidge(con, 0, 0)
	if err != nil {
		t.Fatalf("degree-0 fit: %v", err)
	}
	if math.Abs(r.Poly.Coeffs[0]-2) > 1e-12 {
		t.Errorf("degree-0 mean = %g, want 2", r.Poly.Coeffs[0])
	}
}

func TestSamplesBasics(t *testing.T) {
	s := NewSamples(4)
	if s.Len() != 0 {
		t.Fatalf("new samples Len = %d", s.Len())
	}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched SamplesFromSlices did not panic")
		}
	}()
	SamplesFromSlices([]float64{1}, []float64{1, 2})
}
