package polyfit

import "math"

// This file adds the statistically rigorous side of the fitting layer: ridge
// regression on a standardized design matrix, generalized cross-validation
// for the regularization strength, and per-prediction standard errors derived
// from the residual variance and the covariance of the fitted coefficients.
//
// Fit solves the raw-basis normal equations, which are numerically fragile:
// the Vandermonde moment matrix over sizes ≥ 1e5 at degree 3 spans ~36 orders
// of magnitude. FitRidge instead centers and scales each power column to unit
// variance, so the Gram matrix has a unit diagonal regardless of the size
// range, and adds an optional ridge penalty λ that shrinks the standardized
// slopes toward zero. At λ = 0 on well-conditioned inputs the result is
// delegated to Fit so existing coefficients are reproduced bit-for-bit.

// Samples accumulates (x, y) observations in column-wise float64 storage.
// Columns keep the fitting pipeline allocation-friendly: callers append
// incrementally and the fitter reads each coordinate as a contiguous slice.
type Samples struct {
	xs, ys []float64
}

// NewSamples returns an empty sample set with room for n observations.
func NewSamples(n int) *Samples {
	return &Samples{xs: make([]float64, 0, n), ys: make([]float64, 0, n)}
}

// SamplesFromSlices copies the paired slices into a new sample set.
// It panics if the lengths differ.
func SamplesFromSlices(xs, ys []float64) *Samples {
	if len(xs) != len(ys) {
		panic("polyfit: mismatched sample slices")
	}
	s := NewSamples(len(xs))
	s.xs = append(s.xs, xs...)
	s.ys = append(s.ys, ys...)
	return s
}

// Add appends one observation.
func (s *Samples) Add(x, y float64) {
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Len returns the number of observations.
func (s *Samples) Len() int { return len(s.xs) }

// FitResult carries a fitted polynomial together with the statistics needed
// to turn any prediction into a confidence interval.
type FitResult struct {
	// Poly is the fitted polynomial in the raw basis (same as Fit's output).
	Poly Poly
	// Lambda is the ridge strength used (0 means plain least squares).
	Lambda float64
	// Sigma2 is the residual variance estimate RSS/(n − EffDF), or 0 when
	// the fit leaves no degrees of freedom for error.
	Sigma2 float64
	// EffDF is the effective number of parameters: intercept plus the trace
	// of the ridge hat matrix. It equals degree+1 at λ = 0 and shrinks as
	// λ grows.
	EffDF float64
	// RSS is the residual sum of squares of Poly over the samples.
	RSS float64

	n     int
	mean  []float64   // mean of x^j, j = 1..degree
	scale []float64   // population std of x^j, j = 1..degree
	cov   [][]float64 // covariance of the standardized slope estimates
}

// StdErr returns the standard error of the mean prediction Poly.Eval(x):
// sqrt(σ²/n + zᵀ Cov z) where z is the standardized power vector at x.
func (r FitResult) StdErr(x float64) float64 {
	if r.n == 0 {
		return 0
	}
	v := r.Sigma2 / float64(r.n)
	d := len(r.mean)
	if d > 0 && len(r.cov) == d {
		z := make([]float64, d)
		xp := 1.0
		for j := 0; j < d; j++ {
			xp *= x
			z[j] = (xp - r.mean[j]) / r.scale[j]
		}
		for j := 0; j < d; j++ {
			for k := 0; k < d; k++ {
				v += z[j] * r.cov[j][k] * z[k]
			}
		}
	}
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// EvalCI returns the confidence interval Poly.Eval(x) ± z·StdErr(x) for a
// normal-quantile multiplier z (e.g. 1.96 for 95%).
func (r FitResult) EvalCI(x, z float64) (lo, hi float64) {
	y := r.Poly.Eval(x)
	m := z * r.StdErr(x)
	return y - m, y + m
}

// VarPoly returns the prediction variance StdErr(x)² as an exact polynomial
// of degree 2·degree in x. The quadratic form zᵀ Cov z expands term by term:
// each Cov[j][k]/(s_j·s_k) contributes to x^(j+k), x^j, x^k and the constant.
// Storing the variance this way lets downstream model curves evaluate
// uncertainty with the same Horner machinery they use for the cost itself.
func (r FitResult) VarPoly() Poly {
	d := len(r.mean)
	coeffs := make([]float64, 2*d+1)
	if r.n > 0 {
		coeffs[0] = r.Sigma2 / float64(r.n)
	}
	for j := 0; j < d; j++ {
		for k := 0; k < d; k++ {
			c := r.cov[j][k] / (r.scale[j] * r.scale[k])
			coeffs[(j+1)+(k+1)] += c
			coeffs[k+1] -= c * r.mean[j]
			coeffs[j+1] -= c * r.mean[k]
			coeffs[0] += c * r.mean[j] * r.mean[k]
		}
	}
	return Poly{Coeffs: coeffs}
}

// FitRidge fits a degree-d polynomial with ridge strength lambda ≥ 0 on the
// standardized design. Each power column x^j is centered and scaled to unit
// population variance, the intercept is recovered from the means, and the
// penalty λ·n·I is added to the standardized Gram matrix (whose diagonal is
// exactly n), so λ is a dimensionless fraction of each column's own energy.
//
// At lambda == 0 the raw-basis Fit is computed as well and its coefficients
// are kept whenever they explain the data at least as well as the
// standardized solution — on well-conditioned inputs the two agree and the
// legacy coefficients are returned bit-for-bit; on ill-conditioned inputs
// (where Fit's elimination loses all precision) the standardized solution
// wins on RMSE and is used instead.
func FitRidge(s *Samples, degree int, lambda float64) (FitResult, error) {
	xs, ys := s.xs, s.ys
	n := len(xs)
	if degree < 0 || lambda < 0 || math.IsNaN(lambda) || n <= degree || len(ys) != n {
		return FitResult{}, ErrBadFit
	}
	nf := float64(n)
	var ymean float64
	for _, y := range ys {
		ymean += y
	}
	ymean /= nf

	if degree == 0 {
		var rss float64
		for _, y := range ys {
			r := y - ymean
			rss += r * r
		}
		var sigma2 float64
		if n > 1 {
			sigma2 = rss / (nf - 1)
		}
		return FitResult{
			Poly: Poly{Coeffs: []float64{ymean}}, Lambda: lambda,
			Sigma2: sigma2, EffDF: 1, RSS: rss, n: n,
		}, nil
	}

	d := degree
	// Power columns cols[j][i] = xs[i]^(j+1), their means and population
	// standard deviations.
	cols := make([][]float64, d)
	mean := make([]float64, d)
	scale := make([]float64, d)
	for j := 0; j < d; j++ {
		cols[j] = make([]float64, n)
	}
	for i, x := range xs {
		xp := 1.0
		for j := 0; j < d; j++ {
			xp *= x
			cols[j][i] = xp
			mean[j] += xp
		}
	}
	for j := 0; j < d; j++ {
		mean[j] /= nf
		var ss float64
		for i := 0; i < n; i++ {
			dev := cols[j][i] - mean[j]
			ss += dev * dev
		}
		scale[j] = math.Sqrt(ss / nf)
		if scale[j] == 0 || math.IsNaN(scale[j]) || math.IsInf(scale[j], 0) {
			return FitResult{}, ErrBadFit
		}
	}
	// Standardized Gram matrix M = ZᵀZ (diagonal exactly n) and RHS Zᵀ(y−ȳ).
	m := make([][]float64, d)
	rhs := make([]float64, d)
	for j := 0; j < d; j++ {
		m[j] = make([]float64, d)
	}
	for i := 0; i < n; i++ {
		yc := ys[i] - ymean
		for j := 0; j < d; j++ {
			zj := (cols[j][i] - mean[j]) / scale[j]
			rhs[j] += zj * yc
			for k := j; k < d; k++ {
				m[j][k] += zj * (cols[k][i] - mean[k]) / scale[k]
			}
		}
	}
	for j := 0; j < d; j++ {
		for k := 0; k < j; k++ {
			m[j][k] = m[k][j]
		}
	}
	// A = M + λ·n·I, solved for the standardized slopes.
	aug := make([][]float64, d)
	a := make([][]float64, d)
	for j := 0; j < d; j++ {
		a[j] = make([]float64, d)
		copy(a[j], m[j])
		a[j][j] += lambda * nf
		aug[j] = make([]float64, d+1)
		copy(aug[j], a[j])
		aug[j][d] = rhs[j]
	}
	b, err := solve(aug)
	if err != nil {
		return FitResult{}, err
	}
	// Back to the raw basis: coeff on x^j is b_j/s_j, intercept from means.
	stdPoly := Poly{Coeffs: make([]float64, d+1)}
	intercept := ymean
	for j := 0; j < d; j++ {
		stdPoly.Coeffs[j+1] = b[j] / scale[j]
		intercept -= b[j] * mean[j] / scale[j]
	}
	stdPoly.Coeffs[0] = intercept

	poly := stdPoly
	if lambda == 0 {
		if legacy, lerr := Fit(xs, ys, degree); lerr == nil {
			var yabs float64
			for _, y := range ys {
				if v := math.Abs(y); v > yabs {
					yabs = v
				}
			}
			// Tolerance relative to the data scale: the two solvers agree to
			// roundoff when the raw-basis elimination is healthy, and the
			// raw-basis answer only loses by a margin far above this when its
			// elimination has cancelled away the signal.
			tol := 1e-9 * (yabs + 1)
			if RMSE(legacy, xs, ys) <= RMSE(stdPoly, xs, ys)*(1+1e-6)+tol {
				poly = legacy
			}
		}
	}

	var rss float64
	for i, x := range xs {
		r := ys[i] - poly.Eval(x)
		rss += r * r
	}
	ainv, err := inverse(a)
	if err != nil {
		return FitResult{}, err
	}
	// Effective degrees of freedom: 1 (intercept) + tr(A⁻¹M).
	edf := 1.0
	am := make([][]float64, d) // A⁻¹M
	for j := 0; j < d; j++ {
		am[j] = make([]float64, d)
		for k := 0; k < d; k++ {
			var sum float64
			for l := 0; l < d; l++ {
				sum += ainv[j][l] * m[l][k]
			}
			am[j][k] = sum
		}
		edf += am[j][j]
	}
	var sigma2 float64
	if nf-edf > 0 {
		sigma2 = rss / (nf - edf)
	}
	// Sandwich covariance of the standardized slopes: σ²·A⁻¹MA⁻¹.
	cov := make([][]float64, d)
	for j := 0; j < d; j++ {
		cov[j] = make([]float64, d)
		for k := 0; k < d; k++ {
			var sum float64
			for l := 0; l < d; l++ {
				sum += am[j][l] * ainv[l][k]
			}
			cov[j][k] = sigma2 * sum
		}
	}
	return FitResult{
		Poly: poly, Lambda: lambda, Sigma2: sigma2, EffDF: edf, RSS: rss,
		n: n, mean: mean, scale: scale, cov: cov,
	}, nil
}

// gcvGrid is the λ grid searched by FitGCV. Zero comes first so exact or
// near-exact data keeps the unpenalized fit; ties break toward smaller λ.
var gcvGrid = []float64{0, 1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// FitGCV fits at each grid λ and keeps the one minimizing the generalized
// cross-validation score GCV(λ) = n·RSS(λ)/(n − edf(λ))², a rotation-
// invariant approximation of leave-one-out error that needs no refitting.
func FitGCV(s *Samples, degree int) (FitResult, error) {
	var best FitResult
	bestScore := math.Inf(1)
	found := false
	for _, lam := range gcvGrid {
		r, err := FitRidge(s, degree, lam)
		if err != nil {
			continue
		}
		nf := float64(r.n)
		den := nf - r.EffDF
		score := math.Inf(1)
		if den > 0 {
			score = nf * r.RSS / (den * den)
		}
		if !found || score < bestScore {
			best, bestScore, found = r, score, true
		}
	}
	if !found {
		return FitResult{}, ErrBadFit
	}
	return best, nil
}

// inverse returns the inverse of the square matrix m via Gauss–Jordan
// elimination with partial pivoting and the same column-relative degeneracy
// test as solve.
func inverse(m [][]float64) ([][]float64, error) {
	d := len(m)
	a := make([][]float64, d)
	colNorm := make([]float64, d)
	for i := 0; i < d; i++ {
		a[i] = make([]float64, 2*d)
		copy(a[i], m[i])
		a[i][d+i] = 1
		for j := 0; j < d; j++ {
			if v := math.Abs(m[i][j]); v > colNorm[j] {
				colNorm[j] = v
			}
		}
	}
	for col := 0; col < d; col++ {
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < pivotRelTol*colNorm[col] {
			return nil, ErrBadFit
		}
		a[col], a[pivot] = a[pivot], a[col]
		p := a[col][col]
		for c := 0; c < 2*d; c++ {
			a[col][c] /= p
		}
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < 2*d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	out := make([][]float64, d)
	for i := 0; i < d; i++ {
		out[i] = a[i][d:]
	}
	return out, nil
}
