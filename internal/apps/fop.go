package apps

import "repro/internal/collections"

// Fop substitutes the DaCapo fop benchmark (the Apache FOP XSL-FO to PDF
// formatter): a formatting-object tree whose nodes hold child lists of
// widely ranging sizes, exposed to lookup traffic during layout resolution.
// The paper reports AL → AdaptiveList under both rules, with improvements
// that are mostly not statistically significant (Table 5) — fop is the
// "little to gain, nothing to lose" case.
type Fop struct {
	pages          int
	blocksPerPage  int
	minRun, maxRun int
}

// NewFop returns the fop substitute at the given workload scale.
func NewFop(scale float64) *Fop {
	return &Fop{
		pages:         scaled(120, scale),
		blocksPerPage: 25,
		minRun:        2,
		maxRun:        280,
	}
}

// Name returns the DaCapo benchmark name.
func (f *Fop) Name() string { return "fop" }

// Run formats the synthetic document.
func (f *Fop) Run(env *Env) {
	r := env.Rand()
	newChildren := env.ListSite("fop/FONode.children", collections.ArrayListID)
	newInlineRuns := env.ListSite("fop/LineArea.inlines", collections.ArrayListID)

	// The formatter retains the area tree of the last few pages while
	// rendering (FOP keeps page sequences alive until flushed).
	const retainedPages = 20
	var tree [][]collections.List[int]

	checkpointEvery := f.pages/20 + 1
	for page := 0; page < f.pages; page++ {
		var pageLists []collections.List[int]
		for block := 0; block < f.blocksPerPage; block++ {
			// Child lists range from tiny spans to large paragraphs —
			// the size spread that admits the adaptive list.
			n := f.minRun + r.Intn(f.maxRun-f.minRun+1)
			children := newChildren()
			for i := 0; i < n; i++ {
				children.Add(i * 7)
			}
			// Layout resolution probes children for reference targets —
			// roughly one probe per child.
			probes := 5 + n
			for q := 0; q < probes; q++ {
				if children.Contains(r.Intn(n*7 + 1)) {
					env.Sink++
				}
			}
			children.ForEach(func(v int) bool { env.Sink += v & 1; return true })
			pageLists = append(pageLists, children)

			// Inline runs: short-lived small lists per line.
			lines := 1 + n/20
			for l := 0; l < lines; l++ {
				runs := newInlineRuns()
				k := 2 + r.Intn(10)
				for i := 0; i < k; i++ {
					runs.Add(i)
				}
				if runs.Contains(r.Intn(12)) {
					env.Sink++
				}
			}
		}
		tree = append(tree, pageLists)
		if len(tree) > retainedPages {
			tree[0] = nil
			tree = tree[1:]
		}
		if page%checkpointEvery == 0 {
			env.Checkpoint()
		}
	}
}
