package apps

import "repro/internal/collections"

// Avrora substitutes the DaCapo avrora benchmark: a discrete-event AVR
// microcontroller network simulator. Its reported collection pathology is a
// profusion of small HashSets — per-node neighbor sets and per-step pending
// event sets of a few dozen elements at most — interrogated with frequent
// membership tests. Under Rtime the paper reports HS → OpenHashSet; under
// Ralloc HS → AdaptiveSet (Table 6).
type Avrora struct {
	nodes, steps int
	// degree bounds the neighbor-set sizes (small, ranging — the spread
	// that makes adaptive variants eligible).
	minDegree, maxDegree int
}

// NewAvrora returns the avrora substitute at the given workload scale.
func NewAvrora(scale float64) *Avrora {
	return &Avrora{
		nodes:     scaled(768, scale),
		steps:     scaled(400, scale),
		minDegree: 3,
		maxDegree: 28,
	}
}

// Name returns the DaCapo benchmark name.
func (a *Avrora) Name() string { return "avrora" }

// Run simulates the sensor network.
func (a *Avrora) Run(env *Env) {
	r := env.Rand()
	newNeighborSet := env.SetSite("avrora/Node.neighbors", collections.HashSetID)
	newEventSet := env.SetSite("avrora/EventQueue.pending", collections.HashSetID)

	// Topology: each node gets a neighbor set of varying size. The
	// topology is rebuilt periodically (nodes move), so the retained
	// generation both contributes to peak memory and lets the
	// allocation-site adaptation observe finished instances.
	// Nodes join the network over the run (20% at boot, all by the end),
	// so the final — adapted — topology generation sets the heap peak.
	neighbors := make([]collections.Set[int], a.nodes)
	rebuild := func(step int) {
		active := a.nodes * (step + 4*a.steps/5) / (a.steps + a.steps*4/5)
		if active < a.nodes/5 {
			active = a.nodes / 5
		}
		if active > a.nodes {
			active = a.nodes
		}
		for i := range neighbors {
			if i >= active {
				neighbors[i] = nil
				continue
			}
			s := newNeighborSet()
			degree := a.minDegree + r.Intn(a.maxDegree-a.minDegree+1)
			for d := 0; d < degree; d++ {
				s.Add(r.Intn(a.nodes))
			}
			neighbors[i] = s
		}
	}
	rebuild(0)

	rebuildEvery := a.steps/5 + 1
	checkpointEvery := a.steps/20 + 1
	for step := 0; step < a.steps; step++ {
		if step > 0 && step%rebuildEvery == 0 {
			rebuild(step)
		}
		// Each step a transient pending-event set is built and probed —
		// the short-lived small-set churn avrora is known for.
		pending := newEventSet()
		firing := 4 + r.Intn(24)
		for f := 0; f < firing; f++ {
			pending.Add(r.Intn(a.nodes))
		}
		for probe := 0; probe < 40; probe++ {
			node := r.Intn(a.nodes)
			if pending.Contains(node) {
				env.Sink++
				// Deliver: membership tests against the neighbor sets.
				if nb := neighbors[node]; nb != nil {
					for q := 0; q < 8; q++ {
						if nb.Contains(r.Intn(a.nodes)) {
							env.Sink++
						}
					}
				}
			}
		}
		if step%checkpointEvery == 0 {
			env.Checkpoint()
		}
	}
}
