package apps

import "repro/internal/collections"

// Bloat substitutes the DaCapo bloat benchmark (the 2006-era BLOAT bytecode
// optimizer), whose documented pathology is LinkedList misuse: control-flow
// graph node lists declared as LinkedList but accessed positionally and
// iterated heavily by the analysis passes. The paper reports LL → AL under
// Rtime and HS → AdaptiveSet under Ralloc for its small def-use sets
// (Table 6).
type Bloat struct {
	methods              int
	minBlocks, maxBlocks int
	passes               int
}

// NewBloat returns the bloat substitute at the given workload scale.
func NewBloat(scale float64) *Bloat {
	return &Bloat{
		// Enough methods that the per-method list sites fill the
		// 100-instance monitoring window even at reduced scales.
		methods:   scaled(600, scale),
		minBlocks: 20,
		maxBlocks: 180,
		passes:    3,
	}
}

// Name returns the DaCapo benchmark name.
func (b *Bloat) Name() string { return "bloat" }

// Run optimizes the synthetic method corpus.
func (b *Bloat) Run(env *Env) {
	r := env.Rand()
	newCFGNodes := env.ListSite("bloat/FlowGraph.nodes", collections.LinkedListID)
	newWorklist := env.ListSite("bloat/DataFlow.worklist", collections.LinkedListID)
	newDefUse := env.SetSite("bloat/Var.defUse", collections.HashSetID)

	// The optimizer keeps the def-use chains of recently processed
	// methods alive (its interprocedural summaries); the rolling window
	// is what shows up in the peak-memory column. It grows over the run
	// so the adapted steady state sets the heap peak.
	const retainedMethods = 300
	var retained []collections.Set[int]
	retainCap := func(m int) int { return 6 * retainedMethods * (m + 1) / b.methods }

	checkpointEvery := b.methods/20 + 1
	for m := 0; m < b.methods; m++ {
		nBlocks := b.minBlocks + r.Intn(b.maxBlocks-b.minBlocks+1)
		nodes := newCFGNodes()
		for i := 0; i < nBlocks; i++ {
			nodes.Add(i * 3)
		}
		// Dataflow passes: iterate the node list repeatedly and do
		// positional accesses — quadratic misery on a LinkedList.
		for p := 0; p < b.passes; p++ {
			nodes.ForEach(func(v int) bool { env.Sink += v & 1; return true })
			for q := 0; q < 25; q++ {
				env.Sink += nodes.Get(r.Intn(nodes.Len())) & 1
			}
			if nodes.Contains(r.Intn(nBlocks * 3)) {
				env.Sink++
			}
		}
		// Worklist algorithm: append and positional removal from front.
		wl := newWorklist()
		for i := 0; i < nBlocks/2; i++ {
			wl.Add(i)
		}
		for wl.Len() > 0 {
			env.Sink += wl.RemoveAt(0) & 1
		}
		// Def-use chains: several small sets per method with membership
		// probes — sizes range widely across variables.
		for v := 0; v < 6; v++ {
			du := newDefUse()
			uses := 2 + r.Intn(36)
			for u := 0; u < uses; u++ {
				du.Add(r.Intn(nBlocks))
			}
			for q := 0; q < 10; q++ {
				if du.Contains(r.Intn(nBlocks)) {
					env.Sink++
				}
			}
			retained = append(retained, du)
		}
		if limit := max(6, retainCap(m)); len(retained) > limit {
			drop := len(retained) - limit
			copy(retained, retained[drop:])
			for i := len(retained) - drop; i < len(retained); i++ {
				retained[i] = nil
			}
			retained = retained[:len(retained)-drop]
		}
		if m%checkpointEvery == 0 {
			env.Checkpoint()
		}
	}
}
