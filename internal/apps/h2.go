package apps

import "repro/internal/collections"

// H2 substitutes the DaCapo h2 benchmark (the H2 in-memory SQL database).
// The paper singles out its IndexCursor allocation site, which instantiates
// over a million short-lived row-id lists in seconds — the case that defeats
// naive instance-level adaptation (half the instances paid a transition for
// nothing, 12% slowdown). The reproduced pathology: an extreme rate of
// short-lived lists of widely ranging sizes under lookup load, plus small
// long-lived lock sets. The paper reports AL → AdaptiveList under Rtime and
// HS → ArraySet under Ralloc (Table 6).
type H2 struct {
	rows     int
	queries  int
	sessions int
}

// NewH2 returns the h2 substitute at the given workload scale.
func NewH2(scale float64) *H2 {
	return &H2{
		rows:     scaled(20000, scale),
		queries:  scaled(4000, scale),
		sessions: scaled(24, scale),
	}
}

// Name returns the DaCapo benchmark name.
func (h *H2) Name() string { return "h2" }

// Run executes the synthetic query load.
func (h *H2) Run(env *Env) {
	r := env.Rand()
	newCursorRows := env.ListSite("h2/IndexCursor.rows", collections.ArrayListID)
	newUndoLog := env.ListSite("h2/UndoLog.entries", collections.ArrayListID)
	newLockSet := env.SetSite("h2/Session.locks", collections.HashSetID)

	// Per-session lock sets: tiny, probed on every query. Sessions
	// reconnect periodically, so the sets churn (which is what lets the
	// allocation context observe finished instances and adapt the site).
	locks := make([]collections.Set[int], h.sessions)
	refreshLocks := func() {
		for i := range locks {
			s := newLockSet()
			n := 2 + r.Intn(8)
			for l := 0; l < n; l++ {
				s.Add(r.Intn(64))
			}
			locks[i] = s
		}
	}
	refreshLocks()
	reconnectEvery := h.queries/40 + 1

	// The database keeps a result cache of recent cursors — the retained
	// window behind the peak-memory measurements. The cache warms up over
	// the run (as a real cache fills), so the late, adapted phase is what
	// sets the heap peak.
	const cachedCursors = 2000
	cache := make([]collections.List[int], 0, cachedCursors)
	cacheCap := func(q int) int { return cachedCursors * (q + 1) / h.queries }

	checkpointEvery := h.queries/25 + 1
	for q := 0; q < h.queries; q++ {
		if q > 0 && q%reconnectEvery == 0 {
			refreshLocks()
		}
		session := q % h.sessions
		// Lock check.
		if locks[session].Contains(r.Intn(64)) {
			env.Sink++
		}
		// Index scan: a short-lived row-id list. Most scans match few
		// rows; some table scans match many — the wide size range.
		var matched int
		if r.Intn(10) == 0 {
			matched = 100 + r.Intn(200) // table scan
		} else {
			matched = 2 + r.Intn(30) // index hit
		}
		rows := newCursorRows()
		base := r.Intn(h.rows)
		for i := 0; i < matched; i++ {
			rows.Add((base + i*17) % h.rows)
		}
		// Join probing: the hot lookup loop over the cursor rows —
		// several probes per matched row, as a nested-loop join does.
		probes := 10 + matched*3
		for p := 0; p < probes; p++ {
			if rows.Contains((base + p*13) % h.rows) {
				env.Sink++
			}
		}
		// Write queries append an undo-log buffer: it grows past the
		// adaptive threshold and is flushed (iterated) once, with no
		// lookups ever — the short-lived-instance pattern of Section 2
		// that makes hardwired instance-level adaptation pay for
		// transitions that never amortize. The allocation-site analysis
		// correctly keeps this site on ArrayList.
		{
			undo := newUndoLog()
			entries := 90 + r.Intn(90)
			for e := 0; e < entries; e++ {
				undo.Add(q*31 + e)
			}
			flushed := 0
			undo.ForEach(func(v int) bool { flushed += v & 1; return true })
			env.Sink += flushed & 1
		}

		for len(cache) >= max(1, cacheCap(q)) {
			copy(cache, cache[1:])
			cache[len(cache)-1] = nil
			cache = cache[:len(cache)-1]
		}
		cache = append(cache, rows)
		if q%checkpointEvery == 0 {
			env.Checkpoint()
		}
	}
}
