// Package apps contains five synthetic applications reproducing the
// collection-usage pathologies of the DaCapo benchmarks the paper evaluates
// on (avrora, bloat, fop, h2, lusearch — Section 5.2). DaCapo itself is JVM
// bytecode and cannot run here; what the experiment actually exercises is
// each benchmark's collection workload shape, which is documented in the
// paper and its citations and regenerated deterministically by these
// programs (see DESIGN.md §4 for the per-app fidelity notes).
//
// Each application runs in three modes mirroring the paper's setups:
//
//   - Original: every allocation site instantiates the fixed default
//     variant the Java developer declared (ArrayList / LinkedList /
//     HashSet / HashMap).
//   - FullAdap: every target allocation site goes through a
//     CollectionSwitch allocation context (full framework).
//   - InstanceAdap: every target site is hardwired to the corresponding
//     adaptive variant, with no allocation-site selection.
package apps

import (
	"math/rand"
	"runtime"
	"time"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// Mode selects how allocation sites instantiate collections.
type Mode string

// The three evaluation modes of Table 5.
const (
	ModeOriginal     Mode = "original"
	ModeFullAdap     Mode = "fulladap"
	ModeInstanceAdap Mode = "instanceadap"
)

// Modes lists all modes in Table 5 order.
func Modes() []Mode { return []Mode{ModeOriginal, ModeFullAdap, ModeInstanceAdap} }

// App is one synthetic DaCapo application.
type App interface {
	// Name returns the DaCapo benchmark name this app substitutes.
	Name() string
	// Run executes the workload, acquiring collections through env.
	Run(env *Env)
}

// All returns the five applications at the given workload scale (1.0 is the
// full experiment scale; benches use smaller values).
func All(scale float64) []App {
	return []App{
		NewAvrora(scale),
		NewBloat(scale),
		NewFop(scale),
		NewH2(scale),
		NewLusearch(scale),
	}
}

// Result captures one application run.
type Result struct {
	// Elapsed is the wall-clock time of the run (T in Table 5).
	Elapsed time.Duration
	// PeakHeapBytes is the maximum live heap observed at the checkpoints
	// (M in Table 5).
	PeakHeapBytes uint64
	// Transitions holds the variant switches performed (FullAdap only).
	Transitions []core.Transition
	// Sink defeats dead-code elimination and doubles as a semantic
	// checksum: it must not depend on the mode.
	Sink int
}

// Env hands collections to an application according to the active mode and
// tracks peak heap. Applications obtain one factory per allocation site and
// call Checkpoint between work batches.
type Env struct {
	mode   Mode
	engine *core.Engine // non-nil only in FullAdap mode
	rng    *rand.Rand

	peakHeap uint64
	// Sink accumulates application-observable results.
	Sink int

	listSites map[string]func() collections.List[int]
	setSites  map[string]func() collections.Set[int]
	mapSites  map[string]func() collections.Map[int, int]
}

// NewEnv builds an environment for one run. engine must be non-nil exactly
// when mode is ModeFullAdap.
func NewEnv(mode Mode, engine *core.Engine, seed int64) *Env {
	if (engine != nil) != (mode == ModeFullAdap) {
		panic("apps: engine must be provided iff mode is FullAdap")
	}
	return &Env{
		mode:      mode,
		engine:    engine,
		rng:       rand.New(rand.NewSource(seed)),
		listSites: make(map[string]func() collections.List[int]),
		setSites:  make(map[string]func() collections.Set[int]),
		mapSites:  make(map[string]func() collections.Map[int, int]),
	}
}

// Rand returns the env's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Mode returns the active mode.
func (e *Env) Mode() Mode { return e.mode }

// ListSite returns the factory for a named list allocation site whose
// original declaration was the def variant.
func (e *Env) ListSite(name string, def collections.VariantID) func() collections.List[int] {
	if f, ok := e.listSites[name]; ok {
		return f
	}
	var f func() collections.List[int]
	switch e.mode {
	case ModeOriginal:
		f = func() collections.List[int] { return collections.NewListOf[int](def, 0) }
	case ModeInstanceAdap:
		f = func() collections.List[int] { return collections.NewAdaptiveList[int]() }
	case ModeFullAdap:
		ctx := core.NewListContext[int](e.engine, core.WithName(name), core.WithDefaultVariant(def))
		f = ctx.NewList
	}
	e.listSites[name] = f
	return f
}

// SetSite returns the factory for a named set allocation site.
func (e *Env) SetSite(name string, def collections.VariantID) func() collections.Set[int] {
	if f, ok := e.setSites[name]; ok {
		return f
	}
	var f func() collections.Set[int]
	switch e.mode {
	case ModeOriginal:
		f = func() collections.Set[int] { return collections.NewSetOf[int](def, 0) }
	case ModeInstanceAdap:
		f = func() collections.Set[int] { return collections.NewAdaptiveSet[int]() }
	case ModeFullAdap:
		ctx := core.NewSetContext[int](e.engine, core.WithName(name), core.WithDefaultVariant(def))
		f = ctx.NewSet
	}
	e.setSites[name] = f
	return f
}

// MapSite returns the factory for a named map allocation site.
func (e *Env) MapSite(name string, def collections.VariantID) func() collections.Map[int, int] {
	if f, ok := e.mapSites[name]; ok {
		return f
	}
	var f func() collections.Map[int, int]
	switch e.mode {
	case ModeOriginal:
		f = func() collections.Map[int, int] { return collections.NewMapOf[int, int](def, 0) }
	case ModeInstanceAdap:
		f = func() collections.Map[int, int] { return collections.NewAdaptiveMap[int, int]() }
	case ModeFullAdap:
		ctx := core.NewMapContext[int, int](e.engine, core.WithName(name), core.WithDefaultVariant(def))
		f = ctx.NewMap
	}
	e.mapSites[name] = f
	return f
}

// SiteCount returns the number of distinct allocation sites the app touched
// (the "# Target Alloc." column of Table 5).
func (e *Env) SiteCount() int {
	return len(e.listSites) + len(e.setSites) + len(e.mapSites)
}

// Checkpoint is called by applications between work batches: it forces a
// collection (so weak references clear, as a JVM's GC would naturally),
// samples the live heap for the peak-memory metric, and gives the analysis
// engine a deterministic chance to run.
func (e *Env) Checkpoint() {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > e.peakHeap {
		e.peakHeap = ms.HeapAlloc
	}
	if e.engine != nil {
		e.engine.AnalyzeNow()
	}
}

// Obs threads the observability layer through an application run: Label
// names the run's engine in emitted events (the experiments use
// "app/mode/rule"), Sink receives every engine event, and Metrics
// aggregates counters across runs. The zero value disables all three.
type Obs struct {
	Label   string
	Sink    obs.Sink
	Metrics *obs.Registry
	// Parallelism is handed to the engine as Config.AnalysisParallelism:
	// 0 uses the engine default (GOMAXPROCS); 1 analyzes contexts
	// sequentially in registration order, reproducing the historical
	// single-threaded event stream exactly.
	Parallelism int
	// Confidence is handed to the engine as Config.ConfidenceLevel: a
	// level in (0, 1) arms confidence-aware switching, 0 keeps the
	// historical point-estimate behavior.
	Confidence float64
	// Models overrides the engine's cost models (nil = analytic defaults).
	Models *perfmodel.Models
	// WarmStart is handed to the engine as Config.WarmStart: persisted
	// site decisions restore variants at context registration (nil = cold
	// start, the historical behavior).
	WarmStart core.WarmStarter
	// Snapshots, when non-nil, receives the engine's per-site state after
	// the run completes (before the engine closes) — the hook cmd tools
	// use to persist decisions into a warm-start store.
	Snapshots func([]core.SiteSnapshot)
	// EngineHook, when non-nil, observes the run's engine right after
	// construction (FullAdap mode only; the other modes create none) —
	// the diag introspection server attaches here.
	EngineHook func(*core.Engine)
}

// Run executes app once in the given mode and returns its measurements.
// rule is only consulted in FullAdap mode.
func Run(app App, mode Mode, rule core.Rule, seed int64) Result {
	return RunObs(app, mode, rule, seed, Obs{})
}

// RunObs is Run with observability wiring. In FullAdap mode the engine's
// structured event stream is always collected — Result.Transitions is
// rebuilt from the Transition events rather than read out of engine
// internals, so everything Table 6 aggregates demonstrably travels on the
// event layer.
func RunObs(app App, mode Mode, rule core.Rule, seed int64, o Obs) Result {
	var engine *core.Engine
	var col *obs.Collector
	if mode == ModeFullAdap {
		col = obs.NewCollector()
		engine = core.NewEngineManual(core.Config{
			WindowSize:          100,
			FinishedRatio:       0.6,
			Rule:                rule,
			Models:              o.Models,
			AnalysisParallelism: o.Parallelism,
			ConfidenceLevel:     o.Confidence,
			Name:                o.Label,
			Sink:                obs.Multi(col, o.Sink),
			Metrics:             o.Metrics,
			WarmStart:           o.WarmStart,
		})
		defer engine.Close()
		if o.EngineHook != nil {
			o.EngineHook(engine)
		}
	}
	env := NewEnv(mode, engine, seed)
	start := time.Now()
	app.Run(env)
	elapsed := time.Since(start)
	env.Checkpoint()
	if engine != nil && o.Snapshots != nil {
		o.Snapshots(engine.SiteSnapshots())
	}
	res := Result{
		Elapsed:       elapsed,
		PeakHeapBytes: env.peakHeap,
		Sink:          env.Sink,
	}
	if col != nil {
		res.Transitions = transitionsFromEvents(col.Events())
	}
	return res
}

// transitionsFromEvents rebuilds the core transition log from a structured
// event stream.
func transitionsFromEvents(events []obs.Event) []core.Transition {
	var out []core.Transition
	for _, ev := range events {
		t, ok := ev.(obs.Transition)
		if !ok {
			continue
		}
		tr := core.Transition{
			Context: t.Context,
			From:    collections.VariantID(t.From),
			To:      collections.VariantID(t.To),
			Round:   t.Round,
		}
		if len(t.Ratios) > 0 {
			tr.Ratios = make(map[perfmodel.Dimension]float64, len(t.Ratios))
			for d, v := range t.Ratios {
				tr.Ratios[perfmodel.Dimension(d)] = v
			}
		}
		out = append(out, tr)
	}
	return out
}

// scaled returns max(1, round(n*scale)).
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		return 1
	}
	return v
}
