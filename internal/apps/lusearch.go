package apps

import "repro/internal/collections"

// Lusearch substitutes the DaCapo lusearch benchmark (Lucene text search):
// keyword queries over an inverted index. Its reported pathology is that
// most HashMap instances hold fewer than 20 entries — per-query score maps
// and small term maps — created by the thousand. A minority of queries
// (broad terms) build large, lookup-hot score maps, which is what keeps the
// pure array map from being viable. The paper reports HM → OpenHashMap
// under Rtime and HM → AdaptiveMap under Ralloc, and the largest Rtime win
// of Table 5 (~15%).
type Lusearch struct {
	docs    int
	terms   int
	queries int
}

// NewLusearch returns the lusearch substitute at the given workload scale.
func NewLusearch(scale float64) *Lusearch {
	return &Lusearch{
		docs:    scaled(4000, scale),
		terms:   scaled(600, scale),
		queries: scaled(2500, scale),
	}
}

// Name returns the DaCapo benchmark name.
func (l *Lusearch) Name() string { return "lusearch" }

// Run indexes the corpus and executes the query load.
func (l *Lusearch) Run(env *Env) {
	r := env.Rand()
	newScoreMap := env.MapSite("lusearch/Scorer.scores", collections.HashMapID)
	newHitMap := env.MapSite("lusearch/Collector.hits", collections.HashMapID)

	// Inverted index: plain Go slices — the index itself is not a target
	// allocation site; the per-query maps are.
	postings := make([][]int, l.terms)
	for t := range postings {
		// Zipf-ish: a few broad terms match many documents.
		var df int
		if t%97 == 0 {
			df = 200 + r.Intn(150)
		} else {
			df = 1 + r.Intn(12)
		}
		p := make([]int, df)
		for i := range p {
			p[i] = r.Intn(l.docs)
		}
		postings[t] = p
	}

	// Recently computed score maps stay in a query cache — the retained
	// window behind the peak-memory measurements. It warms up over the
	// run so the adapted steady state sets the heap peak.
	const cachedQueries = 2000
	cache := make([]collections.Map[int, int], 0, cachedQueries)
	cacheCap := func(q int) int { return cachedQueries * (q + 1) / l.queries }

	checkpointEvery := l.queries/25 + 1
	for q := 0; q < l.queries; q++ {
		// A query of 2-4 terms; mostly narrow, occasionally broad.
		nTerms := 2 + r.Intn(3)
		scores := newScoreMap()
		for t := 0; t < nTerms; t++ {
			var term int
			if r.Intn(33) == 0 {
				broadCount := l.terms/97 + 1
				term = (r.Intn(broadCount) * 97) % l.terms // broad
			} else {
				term = r.Intn(l.terms)
			}
			for _, doc := range postings[term] {
				if old, ok := scores.Get(doc); ok {
					scores.Put(doc, old+1)
				} else {
					scores.Put(doc, 1)
				}
			}
		}
		// Ranking: lookup-heavy pass over candidate documents. Broad
		// queries make this loop hot on large maps.
		probes := 10 + scores.Len()
		for p := 0; p < probes; p++ {
			if v, ok := scores.Get(r.Intn(l.docs)); ok {
				env.Sink += v
			}
		}
		// Hit collection into a second small map. The traversal is
		// complete: iteration order differs between variants, so an
		// early-stopped scan would make results depend on the selected
		// variant — the collection swap must stay semantically invisible.
		hits := newHitMap()
		scores.ForEach(func(doc, score int) bool {
			if score > 1 {
				hits.Put(doc, score)
			}
			return true
		})
		env.Sink += hits.Len()
		for len(cache) >= max(1, cacheCap(q)) {
			copy(cache, cache[1:])
			cache[len(cache)-1] = nil
			cache = cache[:len(cache)-1]
		}
		cache = append(cache, scores)
		if q%checkpointEvery == 0 {
			env.Checkpoint()
		}
	}
}
