package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// This file is the Table 5 experiment machinery: repeated application runs
// per mode and rule, significance-tested against the original run with the
// Tukey HSD test, exactly as the paper's methodology prescribes (35 runs, 5
// discarded as warm-up; reduced run counts are supported for benches).

// Cell is one measured configuration of Table 5.
type Cell struct {
	TimesSec []float64 // elapsed seconds per measured run
	PeaksMB  []float64 // peak heap MB per measured run
	// TransitionCounts aggregates From->To switch counts over all runs
	// (FullAdap only) — the Table 6 input.
	TransitionCounts map[string]int
	// Sites is the number of target allocation sites touched.
	Sites int
}

// Delta is a significance-tested comparison against the original run.
// Following Table 5's convention, positive percentages are improvements.
type Delta struct {
	Significant bool
	// ImprovementPct is the relative gain versus the original run
	// (positive = better, i.e. less time / less memory).
	ImprovementPct float64
}

// Row is one application row of Table 5.
type Row struct {
	App      string
	Sites    int
	Original Cell
	// FullAdap measurements under Rtime and Ralloc, and InstanceAdap.
	FullTime  Cell
	FullAlloc Cell
	Instance  Cell

	// Deltas versus Original: T1/M1 (Rtime), T2/M2 (Ralloc), T3/M3
	// (InstanceAdap), matching the Table 5 column naming.
	T1, M1, T2, M2, T3, M3 Delta
}

// RunConfig parametrizes the Table 5 experiment.
type RunConfig struct {
	// Scale scales the synthetic workloads (1.0 = full experiment).
	Scale float64
	// Warmup runs are executed and discarded; Measured runs are kept.
	// The paper uses 5 and 30.
	Warmup, Measured int
	// Seed drives the deterministic workloads.
	Seed int64
	// Sink, when non-nil, receives the engine events of every measured
	// run (warm-up runs are not traced, so an exported trace reconstructs
	// exactly what the printed tables aggregated). Engines are labeled
	// "app/mode/rule".
	Sink obs.Sink
	// Metrics, when non-nil, aggregates engine counters across the
	// measured runs.
	Metrics *obs.Registry
	// Parallelism bounds each run engine's analysis worker pool
	// (Config.AnalysisParallelism). 0 uses the engine default (GOMAXPROCS);
	// 1 reproduces the historical sequential event ordering.
	Parallelism int
	// Confidence arms confidence-aware switching on every run engine
	// (Config.ConfidenceLevel; 0 = point-estimate switching).
	Confidence float64
	// Models overrides the cost models of every run engine (nil = the
	// analytic defaults).
	Models *perfmodel.Models
	// WarmStart supplies persisted site decisions to every measured run's
	// engine (nil = cold starts). Snapshots, when non-nil, receives each
	// measured run's per-site state — together they let cmd/experiments
	// demonstrate cold vs warm behavior against a tuner.Store.
	WarmStart core.WarmStarter
	Snapshots func([]core.SiteSnapshot)
	// EngineHook observes every measured run's engine right after
	// construction (see apps.Obs.EngineHook).
	EngineHook func(*core.Engine)
}

// DefaultRunConfig returns the paper's run counts at full scale.
func DefaultRunConfig() RunConfig {
	return RunConfig{Scale: 1.0, Warmup: 5, Measured: 30, Seed: 1}
}

// QuickRunConfig returns a reduced configuration for tests and benches.
func QuickRunConfig() RunConfig {
	return RunConfig{Scale: 0.1, Warmup: 1, Measured: 5, Seed: 1}
}

// measureCell runs app cfg.Measured times (after warm-up) in the given mode
// and aggregates the measurements.
func measureCell(app App, mode Mode, rule core.Rule, cfg RunConfig) Cell {
	cell := Cell{TransitionCounts: make(map[string]int)}
	for i := 0; i < cfg.Warmup; i++ {
		Run(app, mode, rule, cfg.Seed)
	}
	o := Obs{
		Label:       fmt.Sprintf("%s/%s/%s", app.Name(), mode, rule.Name),
		Sink:        cfg.Sink,
		Metrics:     cfg.Metrics,
		Parallelism: cfg.Parallelism,
		Confidence:  cfg.Confidence,
		Models:      cfg.Models,
		WarmStart:   cfg.WarmStart,
		Snapshots:   cfg.Snapshots,
		EngineHook:  cfg.EngineHook,
	}
	for i := 0; i < cfg.Measured; i++ {
		res := RunObs(app, mode, rule, cfg.Seed, o)
		cell.TimesSec = append(cell.TimesSec, res.Elapsed.Seconds())
		cell.PeaksMB = append(cell.PeaksMB, float64(res.PeakHeapBytes)/(1024*1024))
		for _, tr := range res.Transitions {
			key := fmt.Sprintf("%s: %s -> %s", tr.Context, tr.From, tr.To)
			cell.TransitionCounts[key]++
		}
	}
	return cell
}

// delta compares a cell against the original: improvements are positive.
func delta(original, modified []float64) Delta {
	sig, rel := stats.SignificantDiff(original, modified)
	return Delta{Significant: sig, ImprovementPct: -rel * 100}
}

// MeasureApp produces one Table 5 row for app.
func MeasureApp(app App, cfg RunConfig) Row {
	row := Row{App: app.Name()}
	row.Original = measureCell(app, ModeOriginal, core.Rtime(), cfg)
	row.FullTime = measureCell(app, ModeFullAdap, core.Rtime(), cfg)
	row.FullAlloc = measureCell(app, ModeFullAdap, core.Ralloc(), cfg)
	row.Instance = measureCell(app, ModeInstanceAdap, core.Rtime(), cfg)

	// Count sites from a probe run.
	env := NewEnv(ModeOriginal, nil, cfg.Seed)
	app.Run(env)
	row.Sites = env.SiteCount()

	row.T1 = delta(row.Original.TimesSec, row.FullTime.TimesSec)
	row.M1 = delta(row.Original.PeaksMB, row.FullTime.PeaksMB)
	row.T2 = delta(row.Original.TimesSec, row.FullAlloc.TimesSec)
	row.M2 = delta(row.Original.PeaksMB, row.FullAlloc.PeaksMB)
	row.T3 = delta(row.Original.TimesSec, row.Instance.TimesSec)
	row.M3 = delta(row.Original.PeaksMB, row.Instance.PeaksMB)
	return row
}

// MeasureAll produces the full Table 5 for every application.
func MeasureAll(cfg RunConfig) []Row {
	var rows []Row
	for _, app := range All(cfg.Scale) {
		rows = append(rows, MeasureApp(app, cfg))
	}
	return rows
}

// FormatDelta renders a Delta in Table 5 style: "–" for non-significant,
// signed percentage otherwise.
func FormatDelta(d Delta) string {
	if !d.Significant {
		return "–"
	}
	return fmt.Sprintf("%+.0f%%", d.ImprovementPct)
}

// MeanOf is a reporting convenience: mean of a measurement series.
func MeanOf(xs []float64) float64 { return stats.Mean(xs) }
