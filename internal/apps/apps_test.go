package apps

import (
	"strings"
	"testing"

	"repro/internal/collections"
	"repro/internal/core"
)

func TestAllAppsRunInAllModes(t *testing.T) {
	for _, app := range All(0.05) {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			var sinks []int
			for _, mode := range Modes() {
				res := Run(app, mode, core.Rtime(), 42)
				if res.Elapsed <= 0 {
					t.Errorf("%s: no time measured", mode)
				}
				if res.PeakHeapBytes == 0 {
					t.Errorf("%s: no peak heap measured", mode)
				}
				sinks = append(sinks, res.Sink)
			}
			// The mode must not change observable results: collections
			// are swapped, semantics are not.
			if sinks[0] != sinks[1] || sinks[1] != sinks[2] {
				t.Errorf("sinks differ across modes: %v", sinks)
			}
		})
	}
}

func TestAppsDeterministicAcrossRuns(t *testing.T) {
	for _, app := range All(0.05) {
		a := Run(app, ModeOriginal, core.Rtime(), 7)
		b := Run(app, ModeOriginal, core.Rtime(), 7)
		if a.Sink != b.Sink {
			t.Errorf("%s: sink differs across identical runs: %d vs %d", app.Name(), a.Sink, b.Sink)
		}
	}
}

func TestFullAdapProducesTransitions(t *testing.T) {
	if testing.Short() {
		t.Skip("app runs are slow")
	}
	// At a reasonable scale every app must trigger at least one variant
	// switch under at least one rule — the premise of Table 6.
	for _, app := range All(0.3) {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			total := 0
			for _, rule := range []core.Rule{core.Rtime(), core.Ralloc()} {
				res := Run(app, ModeFullAdap, rule, 42)
				total += len(res.Transitions)
			}
			if total == 0 {
				t.Errorf("no transitions under either rule")
			}
		})
	}
}

func TestH2RtimeTransitionsCursorToAdaptiveOrHashList(t *testing.T) {
	if testing.Short() {
		t.Skip("app runs are slow")
	}
	res := Run(NewH2(0.3), ModeFullAdap, core.Rtime(), 42)
	var hit bool
	for _, tr := range res.Transitions {
		if tr.Context == "h2/IndexCursor.rows" && tr.From == collections.ArrayListID {
			if tr.To == collections.AdaptiveListID || tr.To == collections.HashArrayListID {
				hit = true
			}
		}
	}
	if !hit {
		t.Errorf("IndexCursor site never left ArrayList for a hash-capable list; transitions: %v",
			transitionsOf(res))
	}
}

func TestLusearchRtimeLeavesChainedMap(t *testing.T) {
	if testing.Short() {
		t.Skip("app runs are slow")
	}
	res := Run(NewLusearch(0.3), ModeFullAdap, core.Rtime(), 42)
	var hit bool
	for _, tr := range res.Transitions {
		if tr.From == collections.HashMapID && strings.HasPrefix(string(tr.To), "map/") &&
			tr.To != collections.HashMapID {
			hit = true
		}
	}
	if !hit {
		t.Errorf("lusearch never left the chained HashMap; transitions: %v", transitionsOf(res))
	}
}

func TestBloatRtimeLeavesLinkedList(t *testing.T) {
	if testing.Short() {
		t.Skip("app runs are slow")
	}
	res := Run(NewBloat(0.3), ModeFullAdap, core.Rtime(), 42)
	var hit bool
	for _, tr := range res.Transitions {
		if tr.From == collections.LinkedListID {
			hit = true
		}
	}
	if !hit {
		t.Errorf("bloat never left LinkedList; transitions: %v", transitionsOf(res))
	}
}

func TestAvroraRallocReducesSetMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("app runs are slow")
	}
	res := Run(NewAvrora(0.3), ModeFullAdap, core.Ralloc(), 42)
	var hit bool
	for _, tr := range res.Transitions {
		if tr.From == collections.HashSetID {
			hit = true
		}
	}
	if !hit {
		t.Errorf("avrora never left the chained HashSet under Ralloc; transitions: %v",
			transitionsOf(res))
	}
}

func transitionsOf(res Result) []string {
	out := make([]string, 0, len(res.Transitions))
	for _, tr := range res.Transitions {
		out = append(out, tr.Context+": "+string(tr.From)+" -> "+string(tr.To))
	}
	return out
}

func TestEnvSiteMemoization(t *testing.T) {
	env := NewEnv(ModeOriginal, nil, 1)
	f1 := env.ListSite("x", collections.ArrayListID)
	f2 := env.ListSite("x", collections.LinkedListID) // same name: memoized
	if env.SiteCount() != 1 {
		t.Fatalf("SiteCount = %d, want 1", env.SiteCount())
	}
	// Both factories are the same site; the first registration wins.
	if _, ok := f1().(*collections.ArrayList[int]); !ok {
		t.Fatal("factory does not honor the default variant")
	}
	if _, ok := f2().(*collections.ArrayList[int]); !ok {
		t.Fatal("memoized factory changed variant")
	}
}

func TestEnvModeWiring(t *testing.T) {
	// Original: honors declared default.
	env := NewEnv(ModeOriginal, nil, 1)
	if _, ok := env.ListSite("a", collections.LinkedListID)().(*collections.LinkedList[int]); !ok {
		t.Error("Original mode ignored default variant")
	}
	// InstanceAdap: always adaptive.
	env = NewEnv(ModeInstanceAdap, nil, 1)
	if _, ok := env.ListSite("a", collections.LinkedListID)().(*collections.AdaptiveList[int]); !ok {
		t.Error("InstanceAdap mode did not produce an adaptive list")
	}
	if _, ok := env.SetSite("s", collections.HashSetID)().(*collections.AdaptiveSet[int]); !ok {
		t.Error("InstanceAdap mode did not produce an adaptive set")
	}
	if _, ok := env.MapSite("m", collections.HashMapID)().(*collections.AdaptiveMap[int, int]); !ok {
		t.Error("InstanceAdap mode did not produce an adaptive map")
	}
}

func TestEnvEngineModeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FullAdap without engine did not panic")
		}
	}()
	NewEnv(ModeFullAdap, nil, 1)
}

func TestMeasureAppQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 measurement is slow")
	}
	cfg := RunConfig{Scale: 0.05, Warmup: 1, Measured: 3, Seed: 1}
	row := MeasureApp(NewAvrora(cfg.Scale), cfg)
	if row.App != "avrora" {
		t.Fatalf("App = %s", row.App)
	}
	if row.Sites != 2 {
		t.Fatalf("Sites = %d, want 2", row.Sites)
	}
	if len(row.Original.TimesSec) != 3 || len(row.FullTime.TimesSec) != 3 {
		t.Fatal("run counts wrong")
	}
	for _, ts := range row.Original.TimesSec {
		if ts <= 0 {
			t.Fatal("non-positive time measured")
		}
	}
}

func TestFormatDelta(t *testing.T) {
	if got := FormatDelta(Delta{Significant: false, ImprovementPct: 50}); got != "–" {
		t.Errorf("non-significant = %q", got)
	}
	if got := FormatDelta(Delta{Significant: true, ImprovementPct: 12.4}); got != "+12%" {
		t.Errorf("positive = %q", got)
	}
	if got := FormatDelta(Delta{Significant: true, ImprovementPct: -7.3}); got != "-7%" {
		t.Errorf("negative = %q", got)
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 0.5) != 50 {
		t.Error("scaled(100, 0.5) != 50")
	}
	if scaled(10, 0.001) != 1 {
		t.Error("scaled floor is 1")
	}
}

func TestH2UndoLogSiteStaysOnArray(t *testing.T) {
	if testing.Short() {
		t.Skip("app runs are slow")
	}
	// The undo-log site reproduces the paper's Section 2 pathology:
	// short-lived buffers that cross the adaptive threshold but receive
	// no lookups. The allocation-site analysis must keep it on ArrayList
	// (hardwired instance-level adaptation pays a wasted transition on
	// every buffer — the 12% degradation story).
	for _, rule := range []core.Rule{core.Rtime(), core.Ralloc()} {
		res := Run(NewH2(0.5), ModeFullAdap, rule, 42)
		for _, tr := range res.Transitions {
			if tr.Context == "h2/UndoLog.entries" {
				t.Errorf("%s: undo-log site switched %s -> %s", rule.Name, tr.From, tr.To)
			}
		}
	}
}

func TestRunOverheadQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement is slow")
	}
	// Structural check of the Section 5.3 machinery at tiny scale (the
	// significance verdicts at this scale are not meaningful).
	cell := measureCell(NewAvrora(0.05), ModeFullAdap, core.ImpossibleRule(),
		RunConfig{Scale: 0.05, Warmup: 0, Measured: 3, Seed: 1})
	if len(cell.TimesSec) != 3 {
		t.Fatalf("measured %d runs", len(cell.TimesSec))
	}
	if len(cell.TransitionCounts) != 0 {
		t.Fatalf("impossible rule produced transitions: %v", cell.TransitionCounts)
	}
}
