package stats

import (
	"errors"
	"math"
	"sort"
)

// qTable05 holds critical values of the studentized range distribution at
// α = 0.05 for k = 2..6 treatment groups, indexed by within-group degrees of
// freedom. Values between tabulated dfs are interpolated linearly; dfs above
// the largest entry use the asymptotic row.
var qTable05 = []struct {
	df int
	q  [5]float64 // k = 2, 3, 4, 5, 6
}{
	{2, [5]float64{6.08, 8.33, 9.80, 10.88, 11.73}},
	{3, [5]float64{4.50, 5.91, 6.82, 7.50, 8.04}},
	{4, [5]float64{3.93, 5.04, 5.76, 6.29, 6.71}},
	{5, [5]float64{3.64, 4.60, 5.22, 5.67, 6.03}},
	{6, [5]float64{3.46, 4.34, 4.90, 5.30, 5.63}},
	{7, [5]float64{3.34, 4.16, 4.68, 5.06, 5.36}},
	{8, [5]float64{3.26, 4.04, 4.53, 4.89, 5.17}},
	{9, [5]float64{3.20, 3.95, 4.41, 4.76, 5.02}},
	{10, [5]float64{3.15, 3.88, 4.33, 4.65, 4.91}},
	{12, [5]float64{3.08, 3.77, 4.20, 4.51, 4.75}},
	{14, [5]float64{3.03, 3.70, 4.11, 4.41, 4.64}},
	{16, [5]float64{3.00, 3.65, 4.05, 4.33, 4.56}},
	{18, [5]float64{2.97, 3.61, 4.00, 4.28, 4.49}},
	{20, [5]float64{2.95, 3.58, 3.96, 4.23, 4.45}},
	{24, [5]float64{2.92, 3.53, 3.90, 4.17, 4.37}},
	{30, [5]float64{2.89, 3.49, 3.85, 4.10, 4.30}},
	{40, [5]float64{2.86, 3.44, 3.79, 4.04, 4.23}},
	{60, [5]float64{2.83, 3.40, 3.74, 3.98, 4.16}},
	{120, [5]float64{2.80, 3.36, 3.68, 3.92, 4.10}},
	{1 << 30, [5]float64{2.77, 3.31, 3.63, 3.86, 4.03}},
}

// qCritical05 returns the α=0.05 studentized-range critical value for k
// groups and df within-group degrees of freedom. k is clamped to [2, 6].
func qCritical05(k, df int) float64 {
	if k < 2 {
		k = 2
	}
	if k > 6 {
		k = 6
	}
	col := k - 2
	if df <= qTable05[0].df {
		return qTable05[0].q[col]
	}
	for i := 1; i < len(qTable05); i++ {
		if df <= qTable05[i].df {
			lo, hi := qTable05[i-1], qTable05[i]
			f := float64(df-lo.df) / float64(hi.df-lo.df)
			return lo.q[col] + f*(hi.q[col]-lo.q[col])
		}
	}
	return qTable05[len(qTable05)-1].q[k-2]
}

// TukeyPair reports one pairwise comparison of the Tukey HSD test.
type TukeyPair struct {
	A, B        int     // group indices
	MeanDiff    float64 // mean(A) - mean(B)
	Q           float64 // studentized range statistic |diff| / SE
	QCritical   float64 // α=0.05 critical value
	Significant bool
}

// TukeyResult is the outcome of a Tukey HSD test over several groups.
type TukeyResult struct {
	GroupMeans []float64
	MSE        float64 // within-group mean square error
	DF         int     // within-group degrees of freedom
	Pairs      []TukeyPair
}

// ErrTukey is returned for inputs the test cannot process.
var ErrTukey = errors.New("stats: Tukey HSD needs >= 2 groups with >= 2 samples each")

// TukeyHSD runs the Tukey honestly-significant-difference test at α = 0.05
// over the sample groups — the test the paper applies to decide which
// DaCapo time/memory deltas are reported as significant. Unequal group
// sizes use the Tukey-Kramer standard error.
func TukeyHSD(groups ...[]float64) (TukeyResult, error) {
	if len(groups) < 2 {
		return TukeyResult{}, ErrTukey
	}
	var res TukeyResult
	total := 0
	for _, g := range groups {
		if len(g) < 2 {
			return TukeyResult{}, ErrTukey
		}
		total += len(g)
		res.GroupMeans = append(res.GroupMeans, Mean(g))
	}
	// Within-group (error) sum of squares.
	var sse float64
	for i, g := range groups {
		for _, x := range g {
			d := x - res.GroupMeans[i]
			sse += d * d
		}
	}
	res.DF = total - len(groups)
	res.MSE = sse / float64(res.DF)
	qc := qCritical05(len(groups), res.DF)
	for a := 0; a < len(groups); a++ {
		for b := a + 1; b < len(groups); b++ {
			diff := res.GroupMeans[a] - res.GroupMeans[b]
			// Tukey-Kramer SE for unequal group sizes.
			se := math.Sqrt(res.MSE / 2 * (1/float64(len(groups[a])) + 1/float64(len(groups[b]))))
			q := 0.0
			if se > 0 {
				q = math.Abs(diff) / se
			} else if diff != 0 {
				q = math.Inf(1)
			}
			res.Pairs = append(res.Pairs, TukeyPair{
				A: a, B: b,
				MeanDiff:    diff,
				Q:           q,
				QCritical:   qc,
				Significant: q > qc,
			})
		}
	}
	return res, nil
}

// SignificantDiff runs a two-group Tukey HSD and reports whether the means
// differ significantly at α = 0.05, along with the relative change of b
// versus a ((mean(b)-mean(a))/mean(a)).
func SignificantDiff(a, b []float64) (significant bool, relChange float64) {
	res, err := TukeyHSD(a, b)
	if err != nil {
		return false, 0
	}
	ma := res.GroupMeans[0]
	rel := 0.0
	if ma != 0 {
		rel = (res.GroupMeans[1] - ma) / ma
	}
	return res.Pairs[0].Significant, rel
}

// sortedCopy returns xs sorted ascending (used by tests and reports).
func sortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}
