// Package stats provides the statistical machinery the paper's evaluation
// methodology calls for: summary statistics, Student-t confidence intervals
// for steady-state measurements (Georges et al., OOPSLA'07), and the Tukey
// HSD test used to decide which Table 5 differences are significant.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile (0–100) of xs by linear
// interpolation between closest ranks (the R-7 / NumPy-default definition:
// rank = p/100·(n−1)). Under nearest-rank, Percentile(xs, 50) disagreed with
// Median on even-length inputs (it returned the lower middle element instead
// of averaging the pair); interpolation makes p50 and Median identical for
// every input, which TestPercentileMedianAgree pins.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + (rank-float64(lo))*(s[lo+1]-s[lo])
}

// t95 is the two-sided 95% Student-t critical value by degrees of freedom.
// Entries cover small df exactly; larger df interpolate toward the normal
// limit 1.960.
var t95 = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	12: 2.179, 14: 2.145, 16: 2.120, 18: 2.101, 20: 2.086,
	25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}

// tCritical95 returns the two-sided 95% t critical value for df degrees of
// freedom, interpolating between tabulated entries.
func tCritical95(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if v, ok := t95[df]; ok {
		return v
	}
	if df > 120 {
		return 1.960
	}
	// Linear interpolation between the nearest tabulated dfs.
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 18, 20, 25, 30, 40, 60, 120}
	lo, hi := keys[0], keys[len(keys)-1]
	for _, k := range keys {
		if k <= df && k > lo {
			lo = k
		}
		if k >= df && k < hi {
			hi = k
		}
	}
	if lo == hi {
		return t95[lo]
	}
	f := float64(df-lo) / float64(hi-lo)
	return t95[lo] + f*(t95[hi]-t95[lo])
}

// CI95 returns the half-width of the 95% confidence interval of the mean of
// xs (Student-t).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// Summary bundles the statistics reported for one measurement series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64 // half-width of the 95% CI of the mean
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), CI95: CI95(xs)}
	for i, x := range xs {
		if i == 0 || x < s.Min {
			s.Min = x
		}
		if i == 0 || x > s.Max {
			s.Max = x
		}
	}
	return s
}
