package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", m)
	}
	// Sample variance of this classic series is 32/7.
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton statistics should be 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %g, want 2", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even Median = %g, want 2.5", m)
	}
	if Median(nil) != 0 {
		t.Error("empty Median should be 0")
	}
}

func TestPercentile(t *testing.T) {
	// R-7 linear interpolation: rank = p/100·(n−1) over the sorted series.
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct{ p, want float64 }{
		{0, 10}, {10, 19}, {25, 32.5}, {50, 55}, {90, 91}, {100, 100},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty Percentile should be 0")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("singleton Percentile = %g, want 7", got)
	}
}

// Pins the convention the Percentile/Median reconciliation settled on:
// Percentile(xs, 50) and Median agree on every input, odd or even length.
func TestPercentileMedianAgree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for n := 1; n <= 25; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		p50, med := Percentile(xs, 50), Median(xs)
		if !almost(p50, med, 1e-9) {
			t.Fatalf("n=%d: Percentile(50) = %g, Median = %g", n, p50, med)
		}
	}
	// The even-length case that nearest-rank got wrong: p50 of {1,2,3,4}
	// must average the middle pair, not return 2.
	if got := Percentile([]float64{4, 1, 3, 2}, 50); got != 2.5 {
		t.Errorf("Percentile({1..4}, 50) = %g, want 2.5", got)
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=10, sd=1 → CI = 2.262/sqrt(10) ≈ 0.7153.
	xs := make([]float64, 10)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	// sd of alternating ±1 (n=10): variance = 10/9.
	want := 2.262 * math.Sqrt(10.0/9.0) / math.Sqrt(10)
	if got := CI95(xs); !almost(got, want, 1e-9) {
		t.Errorf("CI95 = %g, want %g", got, want)
	}
	if CI95([]float64{5}) != 0 {
		t.Error("CI95 of a single sample should be 0")
	}
}

func TestTCriticalInterpolation(t *testing.T) {
	if v := tCritical95(10); !almost(v, 2.228, 1e-9) {
		t.Errorf("t(10) = %g", v)
	}
	// df=11 must sit between df=10 and df=12 values.
	v := tCritical95(11)
	if v >= 2.228 || v <= 2.179 {
		t.Errorf("t(11) = %g, want in (2.179, 2.228)", v)
	}
	if v := tCritical95(1000); v != 1.960 {
		t.Errorf("t(1000) = %g, want 1.960", v)
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Error("t(0) should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.CI95 <= 0 {
		t.Error("CI95 should be positive for varied samples")
	}
}

func TestTukeyHSDDistinctGroups(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mk := func(mean float64) []float64 {
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = mean + r.NormFloat64()*0.5
		}
		return xs
	}
	res, err := TukeyHSD(mk(10), mk(20), mk(10.05))
	if err != nil {
		t.Fatal(err)
	}
	// Pairs are (0,1), (0,2), (1,2): groups 0 and 1 clearly differ,
	// 0 and 2 clearly do not, 1 and 2 clearly differ.
	get := func(a, b int) TukeyPair {
		for _, p := range res.Pairs {
			if p.A == a && p.B == b {
				return p
			}
		}
		t.Fatalf("missing pair (%d,%d)", a, b)
		return TukeyPair{}
	}
	if !get(0, 1).Significant {
		t.Error("groups 10 vs 20 not significant")
	}
	if get(0, 2).Significant {
		t.Error("groups 10 vs 10.05 reported significant")
	}
	if !get(1, 2).Significant {
		t.Error("groups 20 vs 10.05 not significant")
	}
}

func TestTukeyHSDIdenticalGroups(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	mk := func() []float64 {
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = 100 + r.NormFloat64()*3
		}
		return xs
	}
	res, err := TukeyHSD(mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs[0].Significant {
		t.Errorf("identical populations reported significant: %+v", res.Pairs[0])
	}
}

func TestTukeyHSDErrors(t *testing.T) {
	if _, err := TukeyHSD([]float64{1, 2}); err == nil {
		t.Error("single group accepted")
	}
	if _, err := TukeyHSD([]float64{1, 2}, []float64{3}); err == nil {
		t.Error("singleton group accepted")
	}
}

func TestTukeyHSDUnequalSizes(t *testing.T) {
	a := []float64{10, 10.2, 9.8, 10.1, 9.9, 10.0, 10.1, 9.9}
	b := []float64{15, 15.2, 14.8}
	res, err := TukeyHSD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pairs[0].Significant {
		t.Error("clearly separated unequal groups not significant")
	}
}

func TestTukeyZeroVariance(t *testing.T) {
	// All samples identical within and across groups: SE = 0, diff = 0.
	res, err := TukeyHSD([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs[0].Significant {
		t.Error("identical constant groups reported significant")
	}
	// Zero variance but different means: must be significant (q = +Inf).
	res, err = TukeyHSD([]float64{5, 5, 5}, []float64{6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pairs[0].Significant {
		t.Error("constant groups with different means not significant")
	}
}

func TestSignificantDiff(t *testing.T) {
	a := []float64{100, 101, 99, 100, 100, 101, 99}
	b := []float64{80, 81, 79, 80, 80, 81, 79}
	sig, rel := SignificantDiff(a, b)
	if !sig {
		t.Error("20% improvement not significant")
	}
	if !almost(rel, -0.2, 0.01) {
		t.Errorf("relChange = %g, want ~-0.2", rel)
	}
	if sig, _ := SignificantDiff([]float64{1}, []float64{2}); sig {
		t.Error("degenerate input should not be significant")
	}
}

func TestQCriticalMonotonicity(t *testing.T) {
	// More groups → larger critical value; more df → smaller.
	for df := 5; df <= 120; df *= 2 {
		for k := 2; k < 6; k++ {
			if qCritical05(k, df) >= qCritical05(k+1, df) {
				t.Errorf("q not increasing in k at df=%d k=%d", df, k)
			}
		}
	}
	for k := 2; k <= 6; k++ {
		if qCritical05(k, 5) <= qCritical05(k, 60) {
			t.Errorf("q not decreasing in df for k=%d", k)
		}
	}
	// Clamping.
	if qCritical05(1, 10) != qCritical05(2, 10) {
		t.Error("k<2 not clamped")
	}
	if qCritical05(50, 10) != qCritical05(6, 10) {
		t.Error("k>6 not clamped")
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := sortedCopy(xs)
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Error("sortedCopy mutated input")
	}
	if !reflect.DeepEqual(s, []float64{1, 2, 3}) {
		t.Errorf("sortedCopy = %v", s)
	}
}

// Property: mean of a shifted series equals shifted mean; variance is
// shift-invariant and scales quadratically.
func TestMeanVarianceProperties(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
			xs = append(xs, x)
		}
		shift = math.Mod(shift, 1e6)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
			scaled[i] = 2 * x
		}
		tolM := 1e-6 * (1 + math.Abs(Mean(xs)) + math.Abs(shift))
		tolV := 1e-6 * (1 + Variance(xs))
		return almost(Mean(shifted), Mean(xs)+shift, tolM) &&
			almost(Variance(shifted), Variance(xs), tolV) &&
			almost(Variance(scaled), 4*Variance(xs), 4*tolV)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
