package tuner

import (
	"math"
	"testing"
	"time"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/polyfit"
)

// uncertaintyModels builds three single-dimension variants: "u/high" with a
// large prediction variance, "u/low" with a tiny one, and "u/none" with no
// variance at all.
func uncertaintyModels() *perfmodel.Models {
	m := perfmodel.NewModels()
	cost := polyfit.Poly{Coeffs: []float64{5}}
	for id, variance := range map[collections.VariantID]float64{"u/high": 100, "u/low": 1} {
		for _, op := range perfmodel.Ops() {
			m.SetWithVar(id, op, perfmodel.DimTimeNS, cost, polyfit.Poly{Coeffs: []float64{variance}})
		}
	}
	for _, op := range perfmodel.Ops() {
		m.Set("u/none", op, perfmodel.DimTimeNS, cost)
	}
	return m
}

// The shadow planner measures the cells the models are least certain about
// first: unknown variance beats any finite score, and higher summed SE beats
// lower.
func TestPlanRanksCellsByModelUncertainty(t *testing.T) {
	e := core.NewEngineManual(core.Config{Models: uncertaintyModels(), Name: "plan"})
	defer e.Close()
	tn := New(Config{Engine: e})
	snaps := []core.SiteSnapshot{{
		Name:       "s",
		Candidates: []collections.VariantID{"u/low", "u/high", "u/none"},
		Profile:    core.WorkloadProfile{Instances: 5, MeanSize: 8, MaxSize: 8},
	}}
	cells, sites := tn.plan(snaps)
	if sites != 1 || len(cells) != 3 {
		t.Fatalf("plan yielded %d cells over %d sites, want 3/1", len(cells), sites)
	}
	want := []collections.VariantID{"u/none", "u/high", "u/low"}
	for i, id := range want {
		if cells[i].ID != id {
			t.Fatalf("cell order = %v, want %v", cells, want)
		}
	}
	if s := cellUncertainty(e.Models(), cells[0]); !math.IsInf(s, 1) {
		t.Errorf("variance-free cell score = %g, want +Inf", s)
	}
	if s := cellUncertainty(e.Models(), shadowCell{ID: "u/high", Size: 8}); s != 40 {
		t.Errorf("u/high score = %g, want 40 (4 ops × se 10)", s)
	}
	if s := cellUncertainty(e.Models(), shadowCell{ID: "missing", Size: 8}); !math.IsInf(s, 1) {
		t.Errorf("missing-curve cell score = %g, want +Inf", s)
	}
}

// timeOp reports a spread-based standard error once several trusted batches
// fit the deadline, and stays ok=false on an expired deadline.
func TestTimeOpStandardError(t *testing.T) {
	ns, se, ok := timeOp(time.Now().Add(time.Second), func() {})
	if !ok || ns <= 0 {
		t.Fatalf("timeOp = (%g, %g, %v), want positive per-call time", ns, se, ok)
	}
	if se < 0 || math.IsNaN(se) {
		t.Errorf("se = %g, want finite and non-negative", se)
	}
	if _, _, ok := timeOp(time.Now().Add(-time.Millisecond), func() {}); ok {
		t.Error("expired deadline still measured")
	}
}
