package tuner

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/obs"
)

// churn creates n lists through the context with the given size and lookup
// count each, drops them, and forces a GC so the weak references clear.
func churn(ctx *core.ListContext[int], n, size, lookups int) {
	for i := 0; i < n; i++ {
		l := ctx.NewList()
		for j := 0; j < size; j++ {
			l.Add(j)
		}
		for j := 0; j < lookups; j++ {
			l.Contains(j % (size + 1))
		}
	}
	runtime.GC()
}

func countKind(events []obs.Event, k obs.Kind) int {
	n := 0
	for _, e := range events {
		if e.EventKind() == k {
			n++
		}
	}
	return n
}

// TestColdThenWarmDemo pins the PR's two-run contract end to end. Run 1
// starts cold, converges demo:list to HashArrayList, calibrates, and
// persists. Run 2 opens the same store: the site warm-starts on the
// persisted variant, the refined models come back from disk, and a stable
// workload closes windows without a single transition.
func TestColdThenWarmDemo(t *testing.T) {
	dir := t.TempDir()

	// --- Run 1: cold ---
	col1 := obs.NewCollector()
	reg1 := obs.NewRegistry()
	store1 := Open(dir, col1, reg1)
	e1 := core.NewEngineManual(core.Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
		Name: "run1", Sink: col1, Metrics: reg1, WarmStart: store1,
	})
	ctx1 := core.NewListContext[int](e1, core.WithName("demo:list"))
	churn(ctx1, 10, 500, 500)
	e1.AnalyzeNow()
	if got := ctx1.CurrentVariant(); got != collections.HashArrayListID {
		t.Fatalf("cold run variant = %s, want HashArrayList", got)
	}
	if got := len(e1.Transitions()); got != 1 {
		t.Fatalf("cold run transitions = %d, want 1", got)
	}
	tn := New(Config{Engine: e1, Store: store1, Budget: 1, Sink: col1, Metrics: reg1})
	measured := tn.RunOnce()
	if measured == 0 {
		t.Fatal("calibration measured no cells")
	}
	if got := reg1.CalibrationRuns.Load(); got != 1 {
		t.Errorf("CalibrationRuns = %d, want 1", got)
	}
	if countKind(col1.Events(), obs.KindCalibrationStarted) != 1 ||
		countKind(col1.Events(), obs.KindCalibrationCompleted) != 1 {
		t.Error("calibration cycle events missing")
	}
	if countKind(col1.Events(), obs.KindStoreSaved) != 1 {
		t.Error("calibration cycle did not save the store")
	}
	if _, ok := e1.Models().MeasuredOn(); !ok {
		t.Error("hot-swapped models carry no fingerprint")
	}
	if countKind(col1.Events(), obs.KindWarmStart) != 0 {
		t.Error("cold run emitted warm_start events")
	}
	e1.Close()

	// --- Run 2: warm ---
	col2 := obs.NewCollector()
	reg2 := obs.NewRegistry()
	store2 := Open(dir, col2, reg2)
	if got := reg2.StoreLoads.Load(); got != 1 {
		t.Fatalf("StoreLoads = %d, want 1 (events: %v)", got, col2.Events())
	}
	models := store2.Models()
	if models == nil {
		t.Fatal("warm run found no persisted models")
	}
	e2 := core.NewEngineManual(core.Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
		Name: "run2", Sink: col2, Metrics: reg2, WarmStart: store2, Models: models,
	})
	ctx2 := core.NewListContext[int](e2, core.WithName("demo:list"))
	// Warm start applies before the first collection exists.
	if got := ctx2.CurrentVariant(); got != collections.HashArrayListID {
		t.Fatalf("warm run starts on %s, want HashArrayList restored", got)
	}
	if got := countKind(col2.Events(), obs.KindWarmStart); got != 1 {
		t.Fatalf("warm run warm_start events = %d, want 1", got)
	}
	if _, ok := e2.Models().MeasuredOn(); !ok {
		t.Error("warm engine not running on the persisted (fingerprinted) models")
	}
	// The stable workload holds the restored variant: windows close, no
	// transitions, no rule evaluations.
	for round := 0; round < 3; round++ {
		churn(ctx2, 10, 500, 500)
		e2.AnalyzeNow()
	}
	if got := ctx2.Round(); got != 3 {
		t.Fatalf("warm run rounds = %d, want 3", got)
	}
	if got := len(e2.Transitions()); got != 0 {
		t.Errorf("warm run transitions = %d, want 0 on the stable site", got)
	}
	if got := reg2.RuleEvaluations.Load(); got != 0 {
		t.Errorf("warm run RuleEvaluations = %d, want 0", got)
	}
	if got := countKind(col2.Events(), obs.KindCalibrationDrift); got != 0 {
		t.Errorf("stable warm run emitted %d drift events", got)
	}
	e2.Close()
}

// TestBudgetEnforced pins the duty-cycle invariant: the tuner's shadow
// wall-clock never exceeds Budget × elapsed, checked after every cycle.
func TestBudgetEnforced(t *testing.T) {
	e := core.NewEngineManual(core.Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
	})
	defer e.Close()
	ctx := core.NewListContext[int](e, core.WithName("budget:list"))
	churn(ctx, 10, 100, 100)
	e.AnalyzeNow()

	const budget = 0.05
	tn := New(Config{Engine: e, Budget: budget, MaxCellTime: time.Millisecond})
	measured := 0
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		measured += tn.RunOnce()
		if frac := tn.ShadowFraction(); frac > budget {
			t.Fatalf("ShadowFraction = %.4f exceeds budget %.2f", frac, budget)
		}
		if measured > 0 && tn.ShadowFraction() > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if measured == 0 {
		t.Fatal("budgeted tuner never measured a cell within 5s")
	}
	// Cells are deduplicated across cycles: re-running does not re-spend.
	spent := tn.ShadowFraction()
	again := tn.RunOnce()
	if again != 0 {
		t.Errorf("second cycle re-measured %d cells", again)
	}
	if frac := tn.ShadowFraction(); frac > spent {
		t.Errorf("ShadowFraction grew from %.4f to %.4f on a no-op cycle", spent, frac)
	}
}

// TestPauseStopsCalibration: a paused tuner's RunOnce is a no-op until
// Resume.
func TestPauseStopsCalibration(t *testing.T) {
	e := core.NewEngineManual(core.Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
	})
	defer e.Close()
	ctx := core.NewListContext[int](e, core.WithName("pause:list"))
	churn(ctx, 10, 50, 50)
	e.AnalyzeNow()

	reg := obs.NewRegistry()
	tn := New(Config{Engine: e, Budget: 1, Metrics: reg})
	tn.Pause()
	if got := tn.RunOnce(); got != 0 {
		t.Fatalf("paused RunOnce measured %d cells", got)
	}
	if got := reg.CalibrationRuns.Load(); got != 0 {
		t.Errorf("paused tuner counted %d calibration runs", got)
	}
	tn.Resume()
	if got := tn.RunOnce(); got == 0 {
		t.Fatal("resumed tuner measured nothing")
	}
}

// TestTunerCoversCatalog asserts every default-pool catalog variant is
// shadow-benchmarkable: it must resolve to a bench adapter at int, so a
// future Register*Variant without one fails loudly here instead of being
// silently skipped by calibration.
func TestTunerCoversCatalog(t *testing.T) {
	entries := collections.Entries()
	if len(entries) == 0 {
		t.Fatal("empty catalog")
	}
	candidates := 0
	for _, e := range entries {
		if !e.DefaultCandidate {
			continue
		}
		candidates++
		target, ok := collections.BenchTargetFor(e.Info.ID)
		if !ok || target.Adapter == nil {
			t.Errorf("default-pool variant %s has no bench adapter: the tuner cannot shadow-benchmark it", e.Info.ID)
			continue
		}
		// The adapter must actually produce a usable handle at int.
		keys, probes := shadowKeys(8)
		h := target.Adapter(keys)
		if h == nil {
			t.Errorf("bench adapter of %s returned nil handle", e.Info.ID)
			continue
		}
		h.Contains(probes[0])
		h.Iterate()
		h.Middle()
	}
	if candidates == 0 {
		t.Fatal("catalog reports no default candidates")
	}
}

// TestModelsRefinedBySampledSizes: after a calibration cycle, the engine's
// models differ from the analytic priors inside the sampled bands and agree
// with them far outside.
func TestModelsRefinedBySampledSizes(t *testing.T) {
	e := core.NewEngineManual(core.Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
	})
	defer e.Close()
	prior := e.Models()
	ctx := core.NewListContext[int](e, core.WithName("refine:list"))
	churn(ctx, 10, 200, 200)
	e.AnalyzeNow()

	tn := New(Config{Engine: e, Budget: 1})
	if tn.RunOnce() == 0 {
		t.Fatal("no cells measured")
	}
	refined := e.Models()
	if refined == prior {
		t.Fatal("models were not hot-swapped")
	}
	// At the sampled size the refined curve carries a real measurement: a
	// positive cost that (almost surely) differs from the analytic value.
	got := refined.Cost(collections.ArrayListID, "contains", "time-ns", 200)
	if got <= 0 {
		t.Errorf("refined contains cost at sampled size = %g, want > 0", got)
	}
	// Far outside every sampled band the analytic prior survives exactly.
	farPrior := prior.Cost(collections.ArrayListID, "contains", "time-ns", 1e9)
	farRefined := refined.Cost(collections.ArrayListID, "contains", "time-ns", 1e9)
	if farPrior != farRefined {
		t.Errorf("prior curve not preserved outside sampled bands: %g != %g", farRefined, farPrior)
	}
}
