package tuner

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// Config parametrizes a Tuner. Engine is required; everything else has
// usable defaults.
type Config struct {
	// Engine is the engine whose contexts are calibrated and whose models
	// are refined. Required.
	Engine *core.Engine
	// Store, when non-nil, receives the refined models and per-site
	// decisions at the end of every calibration cycle (Store.Save).
	Store *Store
	// Budget caps the tuner's shadow-benchmark wall-clock as a fraction of
	// the time elapsed since the tuner was created: at any moment,
	// shadow time ≤ Budget × elapsed. Zero uses the default (0.02, i.e.
	// 2% of one core); values ≥ 1 effectively disable the cap.
	Budget float64
	// Interval is the background calibration period (Start only). Zero
	// uses the default (1s).
	Interval time.Duration
	// MaxCellTime bounds one shadow cell (a variant measured at one size).
	// Zero uses the default (5ms).
	MaxCellTime time.Duration
	// Sink and Metrics receive the tuner's calibration/store telemetry.
	// Nil Metrics gets a private registry; pass the engine's to aggregate.
	Sink    obs.Sink
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 0.02
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.MaxCellTime <= 0 {
		c.MaxCellTime = 5 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Tuner runs online calibration against one engine: it plans shadow cells
// from the sites' observed workload shapes, measures them under the
// duty-cycle budget, folds the measurements into the engine's models, and
// persists the refined state. All benchmarking happens on the caller's (or
// the background loop's) goroutine — the engine's allocation fast path is
// never touched.
type Tuner struct {
	cfg     Config
	created time.Time
	// shadowNs is the lifetime wall-clock spent inside shadow cells.
	shadowNs atomic.Int64
	paused   atomic.Bool

	mu sync.Mutex
	// measured dedupes cells across cycles: a (variant, size) cell is
	// benchmarked once per process — workloads revisit the same sizes, and
	// re-measuring them would burn budget without new information.
	measured map[shadowCell]bool
	// points accumulates every measurement, so each swap overlays the full
	// evidence onto a fresh clone of the engine's active models.
	points map[pointKey][]perfmodel.MeasuredPoint

	background bool
	stop       chan struct{}
	done       chan struct{}
}

// pointKey addresses one measured curve.
type pointKey struct {
	ID  collections.VariantID
	Op  perfmodel.Op
	Dim perfmodel.Dimension
}

// New returns a Tuner without a background goroutine; calibration runs only
// when RunOnce is called. Tests and single-shot demos use this.
func New(cfg Config) *Tuner {
	if cfg.Engine == nil {
		panic("tuner: Config.Engine is required")
	}
	return &Tuner{
		cfg:      cfg.withDefaults(),
		created:  time.Now(),
		measured: make(map[shadowCell]bool),
		points:   make(map[pointKey][]perfmodel.MeasuredPoint),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start returns a Tuner running calibration cycles every Config.Interval on
// a background goroutine. Call Close to stop it.
func Start(cfg Config) *Tuner {
	t := New(cfg)
	t.background = true
	go t.loop()
	return t
}

func (t *Tuner) loop() {
	defer close(t.done)
	ticker := time.NewTicker(t.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.RunOnce()
		}
	}
}

// Pause suspends calibration: background cycles and RunOnce become no-ops
// until Resume. The budget clock keeps running, so a paused tuner accrues
// headroom rather than debt.
func (t *Tuner) Pause() { t.paused.Store(true) }

// Resume re-enables calibration after Pause.
func (t *Tuner) Resume() { t.paused.Store(false) }

// Close stops the background loop (if any). Idempotent via the paused flag:
// a closed tuner still accepts RunOnce calls, which simply no-op.
func (t *Tuner) Close() {
	t.Pause()
	if t.background {
		t.background = false
		close(t.stop)
		<-t.done
	}
}

// ShadowFraction reports the fraction of the tuner's lifetime spent inside
// shadow benchmarks — the quantity Config.Budget bounds.
func (t *Tuner) ShadowFraction() float64 {
	elapsed := time.Since(t.created).Nanoseconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.shadowNs.Load()) / float64(elapsed)
}

// allow reports whether one more cell fits the budget right now. The check
// is pre-emptive — it reserves the cell's worst case before starting it —
// so the budget invariant (shadow ≤ Budget × elapsed) holds at every
// instant, not just on average.
func (t *Tuner) allow() bool {
	if t.cfg.Budget >= 1 {
		return true
	}
	elapsed := float64(time.Since(t.created).Nanoseconds())
	reserve := float64(2 * t.cfg.MaxCellTime.Nanoseconds())
	return float64(t.shadowNs.Load())+reserve <= t.cfg.Budget*elapsed
}

// RunOnce executes one calibration cycle: plan cells from the engine's site
// snapshots, measure what the budget allows, fold new measurements into the
// models, hot-swap them into the engine, and persist to the store. It
// returns the number of cells measured this cycle.
func (t *Tuner) RunOnce() int {
	if t.paused.Load() {
		return 0
	}
	snaps := t.cfg.Engine.SiteSnapshots()
	cells, sites := t.plan(snaps)
	t.cfg.Metrics.CalibrationRuns.Add(1)
	if t.cfg.Sink != nil {
		t.cfg.Sink.Emit(obs.CalibrationStarted{
			Engine: t.cfg.Engine.Config().Name, Sites: sites, Cells: len(cells),
		})
	}
	var cycleShadow int64
	fresh := 0
	// The shadow cells run under a pprof label so CPU profiles attribute
	// benchmark time to the framework, not the host workload, and the spent
	// wall-clock is credited to the registry's self-overhead counter — the
	// same ledger the engine's analysis passes feed.
	pprof.Do(context.Background(), pprof.Labels("collectionswitch", "tuner-shadow"), func(context.Context) {
		for _, c := range cells {
			if !t.allow() {
				break
			}
			target, ok := collections.BenchTargetFor(c.ID)
			if !ok || target.Adapter == nil {
				continue
			}
			start := time.Now()
			pts := measureCell(target.Adapter, c.Size, start.Add(t.cfg.MaxCellTime))
			spent := time.Since(start).Nanoseconds()
			t.shadowNs.Add(spent)
			cycleShadow += spent
			if len(pts.timeNs) == 0 {
				continue
			}
			t.mu.Lock()
			t.measured[c] = true
			size := float64(c.Size)
			for op, ns := range pts.timeNs {
				k := pointKey{c.ID, op, perfmodel.DimTimeNS}
				t.points[k] = append(t.points[k], perfmodel.MeasuredPoint{Size: size, Value: ns, SE: pts.timeSE[op]})
			}
			if pts.footOK {
				// The cost fold charges footprint through the populate curve.
				k := pointKey{c.ID, perfmodel.OpPopulate, perfmodel.DimFootprint}
				t.points[k] = append(t.points[k], perfmodel.MeasuredPoint{Size: size, Value: pts.footprint})
			}
			t.mu.Unlock()
			fresh++
			t.cfg.Metrics.CalibrationCells.Add(1)
		}
	})
	t.cfg.Metrics.SelfOverheadNs.Add(cycleShadow)
	swapped := false
	if fresh > 0 {
		models := t.refinedModels()
		t.cfg.Engine.SetModels(models)
		if t.cfg.Store != nil {
			t.cfg.Store.SetModels(models)
		}
		swapped = true
	}
	if t.cfg.Store != nil {
		t.cfg.Store.RecordSites(snaps)
		if err := t.cfg.Store.Save(); err != nil && t.cfg.Engine.Config().Logf != nil {
			t.cfg.Engine.Config().Logf("tuner: store save failed: %v", err)
		}
	}
	if t.cfg.Sink != nil {
		t.cfg.Sink.Emit(obs.CalibrationCompleted{
			Engine:   t.cfg.Engine.Config().Name,
			Measured: fresh, Planned: len(cells),
			ShadowNs: cycleShadow, Swapped: swapped,
		})
	}
	return fresh
}

// refinedModels clones the engine's active models and overlays every
// accumulated measurement: measured points govern the sampled size bands,
// the prior curves survive everywhere else, and the result is stamped with
// this machine's fingerprint.
func (t *Tuner) refinedModels() *perfmodel.Models {
	models := t.cfg.Engine.Models().Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, pts := range t.points {
		models.OverlayMeasured(k.ID, k.Op, k.Dim, pts)
	}
	models.SetFingerprint(perfmodel.CollectFingerprint())
	return models
}

// plan derives the cycle's cell list from the sites' observed workloads:
// for every site that has folded at least one instance, each candidate
// variant is measured at the site's mean and max observed size (clamped to
// shadowSizeCap). Cells already measured in an earlier cycle are skipped.
// Cells are ranked by model uncertainty, most uncertain first (see below).
// The returned sites count is the number of sites that contributed cells.
func (t *Tuner) plan(snaps []core.SiteSnapshot) ([]shadowCell, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[shadowCell]bool)
	var cells []shadowCell
	sites := 0
	for _, snap := range snaps {
		if snap.Profile.Instances == 0 {
			continue
		}
		contributed := false
		for _, size := range shadowSizes(snap.Profile) {
			for _, v := range snap.Candidates {
				c := shadowCell{ID: v, Size: size}
				if seen[c] || t.measured[c] {
					continue
				}
				seen[c] = true
				cells = append(cells, c)
				contributed = true
			}
		}
		if contributed {
			sites++
		}
	}
	// Measure where the models are least sure first: cells whose curves are
	// missing or carry no variance (+Inf score), then descending summed
	// prediction SE at the cell's size. If the budget cuts the cycle short,
	// the measurements that shrink the models' confidence intervals most are
	// already in. Equal scores fall back to smallest-size-first, so a fully
	// uncertain plan keeps the historical cheap-cells-first order.
	models := t.cfg.Engine.Models()
	score := make(map[shadowCell]float64, len(cells))
	for _, c := range cells {
		score[c] = cellUncertainty(models, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		si, sj := score[cells[i]], score[cells[j]]
		if si != sj {
			return si > sj
		}
		if cells[i].Size != cells[j].Size {
			return cells[i].Size < cells[j].Size
		}
		return cells[i].ID < cells[j].ID
	})
	return cells, sites
}

// shadowSizes picks the sizes a site's candidates are measured at: the mean
// and the max observed size, deduplicated, floored at 1 and clamped to
// shadowSizeCap.
func shadowSizes(p core.WorkloadProfile) []int {
	mean := int(p.MeanSize + 0.5)
	maxSz := int(p.MaxSize)
	sizes := []int{clampSize(mean)}
	if m := clampSize(maxSz); m != sizes[0] {
		sizes = append(sizes, m)
	}
	return sizes
}

func clampSize(n int) int {
	if n < 1 {
		return 1
	}
	if n > shadowSizeCap {
		return shadowSizeCap
	}
	return n
}
