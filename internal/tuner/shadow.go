package tuner

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// Shadow micro-benchmarks: tiny, deadline-bounded measurements of one
// variant's critical operations at one observed collection size, run on the
// tuner's own goroutine. They trade the statistical rigor of the offline
// model builder (perfmodel.Builder, testing.Benchmark, warm-up phases) for
// bounded cost — each cell is capped by a wall-clock deadline so the
// duty-cycle ledger in tuner.go can enforce its budget pre-emptively.

// shadowSizeCap bounds the collection size a shadow cell will populate.
// Observed max sizes can be arbitrarily large; populating millions of
// elements inside a millisecond-scale deadline would measure nothing but the
// deadline. Sizes above the cap are clamped (the overlay band then refines
// the curve at the cap, and the analytic curve's shape carries beyond it).
const shadowSizeCap = 1 << 15

// batchSliceNs is the target duration of one timed batch: long enough to
// dominate timer overhead, short enough that deadline overshoot stays small.
const batchSliceNs = 200_000 // 200µs

// seBatches is how many trusted (≥ batchSliceNs) batches timeOp tries to
// collect: the spread of their per-call means yields the measurement's
// standard error, which the overlay bands carry into the models' prediction
// intervals. One batch (deadline pressure) means no spread estimate — SE 0.
const seBatches = 3

// shadowCell identifies one (variant, size) measurement unit. All four
// critical operations (and the footprint) are measured together: populate
// has to run anyway to build the instance the other ops probe.
type shadowCell struct {
	ID   collections.VariantID
	Size int
}

// cellPoints is the yield of one measured cell: per-op time points (with
// their sampling standard errors) and an optional footprint point, all at
// the cell's size.
type cellPoints struct {
	timeNs    map[perfmodel.Op]float64
	timeSE    map[perfmodel.Op]float64
	footprint float64
	footOK    bool
}

// cellUncertainty scores a cell by how unsure the active models are about
// it: the summed per-op prediction standard error of the time curves at the
// cell's size. A missing curve, or one fitted without variance, scores +Inf
// — nothing is known there, so the planner measures it first.
func cellUncertainty(models *perfmodel.Models, c shadowCell) float64 {
	total := 0.0
	s := float64(c.Size)
	for _, op := range perfmodel.Ops() {
		if !models.Has(c.ID, op, perfmodel.DimTimeNS) {
			return math.Inf(1)
		}
		_, se, ok := models.CostSE(c.ID, op, perfmodel.DimTimeNS, s)
		if !ok {
			return math.Inf(1)
		}
		total += se
	}
	return total
}

// shadowKeys mirrors the model builder's key scheme: n distinct shuffled
// keys in [0, 2n) — half the probe domain present — plus 256 probes.
func shadowKeys(n int) (keys, probes []int) {
	r := rand.New(rand.NewSource(int64(n)*2654435761 + 1))
	keys = r.Perm(n * 2)[:n]
	probes = make([]int, 256)
	for i := range probes {
		probes[i] = r.Intn(n * 2)
	}
	return keys, probes
}

// measureCell shadow-benchmarks one cell against its adapter, stopping at
// deadline. It returns whatever was measured before the deadline — possibly
// only the leading operations, possibly nothing (empty timeNs map).
func measureCell(ad collections.BenchAdapter, size int, deadline time.Time) cellPoints {
	out := cellPoints{
		timeNs: make(map[perfmodel.Op]float64),
		timeSE: make(map[perfmodel.Op]float64),
	}
	keys, probes := shadowKeys(size)
	var h collections.BenchHandle
	// Populate is charged per complete population to size (the Table 3
	// convention), so its point is per-call time — one call builds one
	// instance, and the last instance built is probed by the other ops.
	ns, se, ok := timeOp(deadline, func() { h = ad(keys) })
	if !ok || h == nil {
		return out // deadline spent before a single populate: measure nothing
	}
	out.timeNs[perfmodel.OpPopulate] = ns
	out.timeSE[perfmodel.OpPopulate] = se
	if b, ok := h.Footprint(); ok {
		out.footprint = float64(b)
		out.footOK = true
	}
	i := 0
	if ns, se, ok := timeOp(deadline, func() { h.Contains(probes[i&255]); i++ }); ok {
		out.timeNs[perfmodel.OpContains] = ns
		out.timeSE[perfmodel.OpContains] = se
	}
	if ns, se, ok := timeOp(deadline, func() { h.Iterate() }); ok {
		out.timeNs[perfmodel.OpIterate] = ns
		out.timeSE[perfmodel.OpIterate] = se
	}
	if ns, se, ok := timeOp(deadline, func() { h.Middle() }); ok {
		out.timeNs[perfmodel.OpMiddle] = ns
		out.timeSE[perfmodel.OpMiddle] = se
	}
	return out
}

// timeOp estimates fn's per-call time in nanoseconds with geometrically
// growing batches. Once a batch is long enough to trust (batchSliceNs) the
// same batch size is repeated up to seBatches times (deadline permitting) and
// the spread of the per-call batch means yields the estimate's standard
// error — se 0 when only one trusted batch fit. ok=false means the deadline
// was already spent before a single call could run.
func timeOp(deadline time.Time, fn func()) (nsPerCall, se float64, ok bool) {
	var totalNs, totalCalls float64
	var batchMeans []float64
	n := 1
	for {
		if !time.Now().Before(deadline) {
			break
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		batch := time.Since(start)
		totalNs += float64(batch.Nanoseconds())
		totalCalls += float64(n)
		if batch.Nanoseconds() >= batchSliceNs {
			batchMeans = append(batchMeans, float64(batch.Nanoseconds())/float64(n))
			if len(batchMeans) >= seBatches {
				break
			}
			continue // repeat the trusted batch size for the spread estimate
		}
		n *= 4
	}
	if totalCalls == 0 {
		return 0, 0, false
	}
	if k := len(batchMeans); k >= 2 {
		var mean, ss float64
		for _, b := range batchMeans {
			mean += b
		}
		mean /= float64(k)
		for _, b := range batchMeans {
			d := b - mean
			ss += d * d
		}
		se = math.Sqrt(ss/float64(k-1)) / math.Sqrt(float64(k))
	}
	return totalNs / totalCalls, se, true
}
