package tuner

import (
	"math/rand"
	"time"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// Shadow micro-benchmarks: tiny, deadline-bounded measurements of one
// variant's critical operations at one observed collection size, run on the
// tuner's own goroutine. They trade the statistical rigor of the offline
// model builder (perfmodel.Builder, testing.Benchmark, warm-up phases) for
// bounded cost — each cell is capped by a wall-clock deadline so the
// duty-cycle ledger in tuner.go can enforce its budget pre-emptively.

// shadowSizeCap bounds the collection size a shadow cell will populate.
// Observed max sizes can be arbitrarily large; populating millions of
// elements inside a millisecond-scale deadline would measure nothing but the
// deadline. Sizes above the cap are clamped (the overlay band then refines
// the curve at the cap, and the analytic curve's shape carries beyond it).
const shadowSizeCap = 1 << 15

// batchSliceNs is the target duration of one timed batch: long enough to
// dominate timer overhead, short enough that deadline overshoot stays small.
const batchSliceNs = 200_000 // 200µs

// shadowCell identifies one (variant, size) measurement unit. All four
// critical operations (and the footprint) are measured together: populate
// has to run anyway to build the instance the other ops probe.
type shadowCell struct {
	ID   collections.VariantID
	Size int
}

// cellPoints is the yield of one measured cell: per-op time points and an
// optional footprint point, all at the cell's size.
type cellPoints struct {
	timeNs    map[perfmodel.Op]float64
	footprint float64
	footOK    bool
}

// shadowKeys mirrors the model builder's key scheme: n distinct shuffled
// keys in [0, 2n) — half the probe domain present — plus 256 probes.
func shadowKeys(n int) (keys, probes []int) {
	r := rand.New(rand.NewSource(int64(n)*2654435761 + 1))
	keys = r.Perm(n * 2)[:n]
	probes = make([]int, 256)
	for i := range probes {
		probes[i] = r.Intn(n * 2)
	}
	return keys, probes
}

// measureCell shadow-benchmarks one cell against its adapter, stopping at
// deadline. It returns whatever was measured before the deadline — possibly
// only the leading operations, possibly nothing (empty timeNs map).
func measureCell(ad collections.BenchAdapter, size int, deadline time.Time) cellPoints {
	out := cellPoints{timeNs: make(map[perfmodel.Op]float64)}
	keys, probes := shadowKeys(size)
	var h collections.BenchHandle
	// Populate is charged per complete population to size (the Table 3
	// convention), so its point is per-call time — one call builds one
	// instance, and the last instance built is probed by the other ops.
	ns, ok := timeOp(deadline, func() { h = ad(keys) })
	if !ok || h == nil {
		return out // deadline spent before a single populate: measure nothing
	}
	out.timeNs[perfmodel.OpPopulate] = ns
	if b, ok := h.Footprint(); ok {
		out.footprint = float64(b)
		out.footOK = true
	}
	i := 0
	if ns, ok := timeOp(deadline, func() { h.Contains(probes[i&255]); i++ }); ok {
		out.timeNs[perfmodel.OpContains] = ns
	}
	if ns, ok := timeOp(deadline, func() { h.Iterate() }); ok {
		out.timeNs[perfmodel.OpIterate] = ns
	}
	if ns, ok := timeOp(deadline, func() { h.Middle() }); ok {
		out.timeNs[perfmodel.OpMiddle] = ns
	}
	return out
}

// timeOp estimates fn's per-call time in nanoseconds with geometrically
// growing batches, stopping once a batch is long enough to trust
// (batchSliceNs) or the deadline passes. ok=false means the deadline was
// already spent before a single call could run.
func timeOp(deadline time.Time, fn func()) (nsPerCall float64, ok bool) {
	var totalNs, totalCalls float64
	for n := 1; ; n *= 4 {
		if !time.Now().Before(deadline) {
			break
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		batch := time.Since(start)
		totalNs += float64(batch.Nanoseconds())
		totalCalls += float64(n)
		if batch.Nanoseconds() >= batchSliceNs {
			break
		}
	}
	if totalCalls == 0 {
		return 0, false
	}
	return totalNs / totalCalls, true
}
