package tuner

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/polyfit"
)

func demoSnapshot() core.SiteSnapshot {
	return core.SiteSnapshot{
		Name:        "demo:list",
		Abstraction: "list",
		Variant:     collections.HashArrayListID,
		Candidates:  []collections.VariantID{collections.ArrayListID, collections.HashArrayListID},
		Rounds:      2,
		Profile:     core.WorkloadProfile{Adds: 500, Contains: 500, Instances: 10, MeanSize: 500, MaxSize: 500},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	s := Open(dir, col, reg)
	if got := len(col.Events()); got != 0 {
		t.Fatalf("cold open on empty dir emitted %d events, want 0", got)
	}
	s.RecordSites([]core.SiteSnapshot{demoSnapshot()})
	m := perfmodel.NewModels()
	m.Set(collections.ArrayListID, perfmodel.OpContains, perfmodel.DimTimeNS, polyfit.Poly{Coeffs: []float64{0, 3}})
	m.SetFingerprint(perfmodel.CollectFingerprint())
	s.SetModels(m)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if got := reg.StoreSaves.Load(); got != 1 {
		t.Errorf("StoreSaves = %d, want 1", got)
	}

	col2 := obs.NewCollector()
	reg2 := obs.NewRegistry()
	s2 := Open(dir, col2, reg2)
	if got := reg2.StoreLoads.Load(); got != 1 {
		t.Fatalf("StoreLoads = %d, want 1 (events: %v)", got, col2.Events())
	}
	dec, ok := s2.WarmLookup("demo:list")
	if !ok {
		t.Fatal("persisted site not found after reload")
	}
	if dec.Variant != collections.HashArrayListID || dec.Profile.Instances != 10 {
		t.Errorf("WarmLookup = %+v", dec)
	}
	if _, ok := s2.WarmLookup("unknown:site"); ok {
		t.Error("WarmLookup invented a decision for an unknown site")
	}
	lm := s2.Models()
	if lm == nil {
		t.Fatal("persisted models not reloaded")
	}
	if got := lm.Cost(collections.ArrayListID, perfmodel.OpContains, perfmodel.DimTimeNS, 10); got != 30 {
		t.Errorf("reloaded model Cost = %g, want 30", got)
	}
	if _, ok := lm.MeasuredOn(); !ok {
		t.Error("reloaded models lost their fingerprint")
	}
}

// rejected opens a store against a (mutated) file and asserts the wholesale
// rejection contract: empty state, exactly one StoreRejected event carrying
// wantReason, exactly one StoreRejects count, no panic.
func rejected(t *testing.T, dir, wantReason string) {
	t.Helper()
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	s := Open(dir, col, reg)
	if got := s.SiteCount(); got != 0 {
		t.Errorf("rejected store kept %d sites, want 0 (no partial state)", got)
	}
	if s.Models() != nil {
		t.Error("rejected store kept models")
	}
	if _, ok := s.WarmLookup("demo:list"); ok {
		t.Error("rejected store still answers warm lookups")
	}
	if got := reg.StoreRejects.Load(); got != 1 {
		t.Errorf("StoreRejects = %d, want 1", got)
	}
	events := col.Events()
	if len(events) != 1 {
		t.Fatalf("rejection emitted %d events, want exactly 1: %v", len(events), events)
	}
	rej, ok := events[0].(obs.StoreRejected)
	if !ok {
		t.Fatalf("event = %T, want StoreRejected", events[0])
	}
	if !strings.Contains(rej.Reason, wantReason) {
		t.Errorf("rejection reason = %q, want substring %q", rej.Reason, wantReason)
	}
}

// savedStore writes a valid store file into a fresh temp dir.
func savedStore(t *testing.T) *Store {
	t.Helper()
	s := Open(t.TempDir(), nil, nil)
	s.RecordSites([]core.SiteSnapshot{demoSnapshot()})
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRejectsTruncatedJSON(t *testing.T) {
	s := savedStore(t)
	data, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rejected(t, s.dir, "invalid JSON")
}

func TestStoreRejectsUnknownSchema(t *testing.T) {
	s := savedStore(t)
	mutateStoreFile(t, s.Path(), func(doc map[string]any) {
		doc["schema"] = 99
	})
	rejected(t, s.dir, "unknown schema version 99")
}

func TestStoreRejectsFingerprintMismatch(t *testing.T) {
	s := savedStore(t)
	mutateStoreFile(t, s.Path(), func(doc map[string]any) {
		fp := doc["fingerprint"].(map[string]any)
		fp["cpu_model"] = "some other machine"
	})
	rejected(t, s.dir, "fingerprint mismatch")
}

func TestStoreRejectsInvalidNestedModels(t *testing.T) {
	s := savedStore(t)
	mutateStoreFile(t, s.Path(), func(doc map[string]any) {
		doc["models"] = map[string]any{"curves": []any{
			map[string]any{"variant": "x", "op": "contains", "dimension": "time-ns", "pieces": []any{}},
		}}
	})
	rejected(t, s.dir, "invalid model set")
}

// mutateStoreFile round-trips the store file through a generic JSON map so
// corruption tests can doctor individual fields.
func mutateStoreFile(t *testing.T, path string, mutate func(map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	mutate(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadStoreTolerantOfFingerprintMismatch(t *testing.T) {
	s := savedStore(t)
	m := perfmodel.NewModels()
	m.Set(collections.ArrayListID, perfmodel.OpContains, perfmodel.DimTimeNS, polyfit.Poly{Coeffs: []float64{0, 3}})
	s.SetModels(m)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	// Directory and file paths both resolve.
	forDir, err := ReadStore(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	forFile, err := ReadStore(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(forDir.Sites) != 1 || len(forFile.Sites) != 1 {
		t.Fatalf("sites = %d / %d, want 1", len(forDir.Sites), len(forFile.Sites))
	}
	if !forDir.FingerprintMatches {
		t.Error("same-machine store reported a fingerprint mismatch")
	}
	if forDir.Models == nil || forDir.Models.Cost(collections.ArrayListID, perfmodel.OpContains, perfmodel.DimTimeNS, 10) != 30 {
		t.Error("models not decoded")
	}

	// A foreign fingerprint is reported, not rejected — offline search over
	// a store committed from another machine is deliberate.
	mutateStoreFile(t, s.Path(), func(doc map[string]any) {
		fp := doc["fingerprint"].(map[string]any)
		fp["cpu_model"] = "some other machine"
	})
	foreign, err := ReadStore(s.dir)
	if err != nil {
		t.Fatalf("foreign-fingerprint store rejected by ReadStore: %v", err)
	}
	if foreign.FingerprintMatches {
		t.Error("foreign store claimed a fingerprint match")
	}
	if len(foreign.Sites) != 1 || foreign.Sites[0].Name != "demo:list" {
		t.Errorf("foreign store sites = %+v", foreign.Sites)
	}

	// Schema and decode failures still fail.
	mutateStoreFile(t, s.Path(), func(doc map[string]any) { doc["schema"] = 99 })
	if _, err := ReadStore(s.dir); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ReadStore(t.TempDir()); err == nil {
		t.Error("missing store file accepted")
	}
}
