// Package tuner implements online calibration and warm start: a background
// subsystem that refines the engine's performance models in-process and
// persists per-site decisions across restarts.
//
// The paper builds its empirical cost models in a separate offline
// benchmarking phase on the target machine (Section 4.1.2) and concedes the
// models are machine-specific. The tuner closes both gaps at runtime:
//
//   - It snapshots each live allocation context's observed workload shape
//     (operation mix, size statistics) from the monitoring data the engine
//     already collects, and shadow-benchmarks the candidate variants at the
//     sizes the workload actually exhibits — on a duty-cycled goroutine whose
//     wall-clock share is capped by a configurable budget, never on the
//     allocation fast path.
//   - Measured points are folded into the active models as piecewise
//     overrides (perfmodel.OverlayMeasured): the measurement wins inside the
//     sampled size bands, the prior analytic curve survives everywhere else.
//     Refined models are hot-swapped into the engine via Engine.SetModels.
//   - Refined models and per-site decisions persist to a versioned on-disk
//     Store keyed by machine fingerprint, so a restarted engine warm-starts
//     each site on its last-chosen variant (core.WarmStarter) and re-opens
//     selection only when the observed profile drifts.
package tuner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// storeSchema is the on-disk schema version. Files with any other version
// are rejected wholesale (forward- and backward-incompatible by design: a
// half-understood store is worse than a cold start).
const storeSchema = 1

// StoreFileName is the file a Store reads and writes inside its directory.
const StoreFileName = "collectionswitch-store.json"

// storeDoc is the on-disk form of a Store: schema version, the fingerprint
// of the machine the state was measured on, the per-site decisions, and the
// refined model set (nested in perfmodel's own JSON format).
type storeDoc struct {
	Schema      int                   `json:"schema"`
	Fingerprint perfmodel.Fingerprint `json:"fingerprint"`
	Sites       []core.SiteSnapshot   `json:"sites"`
	Models      json.RawMessage       `json:"models,omitempty"`
}

// Store is the persisted warm-start state: per-site decisions plus refined
// performance models, bound to one machine fingerprint. It implements
// core.WarmStarter, so it plugs directly into core.Config.WarmStart. A Store
// is safe for concurrent use.
type Store struct {
	dir     string
	sink    obs.Sink
	metrics *obs.Registry

	mu     sync.Mutex
	sites  map[string]core.SiteSnapshot
	order  []string // site insertion order, for deterministic files
	models *perfmodel.Models
}

// Open returns the Store rooted at dir, loading any persisted state found
// there. A missing file is a silent cold start. An invalid file — torn JSON,
// unknown schema version, a fingerprint from a different machine, or an
// undecodable nested model set — is discarded wholesale: the Store comes up
// empty (analytic defaults, cold sites) and exactly one obs.StoreRejected
// event (plus a StoreRejects count) reports why. Open never fails: the
// warm-start path must degrade to a cold start, not take the process down.
// sink and metrics may be nil.
func Open(dir string, sink obs.Sink, metrics *obs.Registry) *Store {
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	s := &Store{
		dir:     dir,
		sink:    sink,
		metrics: metrics,
		sites:   make(map[string]core.SiteSnapshot),
	}
	s.load()
	return s
}

// Path returns the store file the Store reads and writes.
func (s *Store) Path() string { return filepath.Join(s.dir, StoreFileName) }

// load reads and validates the store file; any failure after the file is
// known to exist rejects the whole file via reject().
func (s *Store) load() {
	path := s.Path()
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.reject(fmt.Sprintf("unreadable: %v", err))
		}
		return // cold start: nothing persisted yet
	}
	var doc storeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		s.reject(fmt.Sprintf("invalid JSON: %v", err))
		return
	}
	if doc.Schema != storeSchema {
		s.reject(fmt.Sprintf("unknown schema version %d (want %d)", doc.Schema, storeSchema))
		return
	}
	if here := perfmodel.CollectFingerprint(); !doc.Fingerprint.Matches(here) {
		s.reject(fmt.Sprintf("fingerprint mismatch: store %s, machine %s", doc.Fingerprint, here))
		return
	}
	var models *perfmodel.Models
	if len(doc.Models) > 0 {
		m, err := perfmodel.ReadJSON(bytes.NewReader(doc.Models))
		if err != nil {
			s.reject(fmt.Sprintf("invalid model set: %v", err))
			return
		}
		models = m
	}
	// Validation complete: adopt the state in one step (no partial loads).
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models = models
	for _, site := range doc.Sites {
		if _, seen := s.sites[site.Name]; !seen {
			s.order = append(s.order, site.Name)
		}
		s.sites[site.Name] = site
	}
	s.metrics.StoreLoads.Add(1)
	if s.sink != nil {
		curves := 0
		if models != nil {
			curves = models.Len()
		}
		s.sink.Emit(obs.StoreLoaded{Path: path, Sites: len(doc.Sites), Curves: curves})
	}
}

// reject reports one discarded store file. The Store keeps its empty state.
func (s *Store) reject(reason string) {
	s.metrics.StoreRejects.Add(1)
	if s.sink != nil {
		s.sink.Emit(obs.StoreRejected{Path: s.Path(), Reason: reason})
	}
}

// WarmLookup implements core.WarmStarter: it reports the persisted decision
// for an allocation context, ok=false for unknown sites.
func (s *Store) WarmLookup(ctx string) (core.WarmDecision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	site, ok := s.sites[ctx]
	if !ok {
		return core.WarmDecision{}, false
	}
	return core.WarmDecision{Variant: site.Variant, Profile: site.Profile}, true
}

// Models returns the refined model set loaded from or recorded into the
// store, nil when only analytic defaults are available.
func (s *Store) Models() *perfmodel.Models {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.models
}

// SiteCount returns the number of persisted site decisions.
func (s *Store) SiteCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sites)
}

// RecordSites merges the given snapshots over the persisted decisions,
// keyed by site name. Call Save to write them out.
func (s *Store) RecordSites(snaps []core.SiteSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, snap := range snaps {
		if _, seen := s.sites[snap.Name]; !seen {
			s.order = append(s.order, snap.Name)
		}
		s.sites[snap.Name] = snap
	}
}

// SetModels records the refined model set to persist with the next Save.
func (s *Store) SetModels(m *perfmodel.Models) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models = m
}

// Save writes the store file atomically (temp file + fsync + rename — the
// same crash-safety discipline as perfmodel.SaveFile), stamped with the
// current machine fingerprint. The store directory is created if needed.
func (s *Store) Save() error {
	s.mu.Lock()
	doc := storeDoc{
		Schema:      storeSchema,
		Fingerprint: perfmodel.CollectFingerprint(),
		Sites:       make([]core.SiteSnapshot, 0, len(s.sites)),
	}
	for _, name := range s.order {
		doc.Sites = append(doc.Sites, s.sites[name])
	}
	curves := 0
	if s.models != nil {
		var buf bytes.Buffer
		if err := s.models.WriteJSON(&buf); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("tuner: encoding models: %w", err)
		}
		doc.Models = buf.Bytes()
		curves = s.models.Len()
	}
	s.mu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("tuner: creating store dir: %w", err)
	}
	path := s.Path()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("tuner: encoding store: %w", err)
	}
	if err := perfmodel.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return fmt.Errorf("tuner: writing store: %w", err)
	}
	s.metrics.StoreSaves.Add(1)
	if s.sink != nil {
		s.sink.Emit(obs.StoreSaved{Path: path, Sites: len(doc.Sites), Curves: curves})
	}
	return nil
}
