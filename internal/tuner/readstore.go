package tuner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// StoreData is the decoded content of a store file, for offline consumers.
type StoreData struct {
	// Path is the store file actually read.
	Path string
	// Sites are the persisted per-site decisions, file order.
	Sites []core.SiteSnapshot
	// Models is the refined model set, nil when the store carries none.
	Models *perfmodel.Models
	// Fingerprint identifies the machine the state was measured on.
	Fingerprint perfmodel.Fingerprint
	// FingerprintMatches reports whether that machine is this one.
	FingerprintMatches bool
}

// ReadStore reads and decodes a store file for offline analysis (cmd/collopt
// and similar tools). path may be the store file itself or the directory
// containing it. Unlike Open — the warm-start surface, which must never adopt
// state measured elsewhere — ReadStore tolerates a machine-fingerprint
// mismatch and merely reports it, because an offline search over a store
// committed from another machine is a deliberate act; schema and decode
// errors still fail. The result is a detached copy sharing nothing with any
// live Store.
func ReadStore(path string) (StoreData, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, StoreFileName)
	}
	out := StoreData{Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		return out, fmt.Errorf("tuner: reading store: %w", err)
	}
	var doc storeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return out, fmt.Errorf("tuner: store %s: invalid JSON: %w", path, err)
	}
	if doc.Schema != storeSchema {
		return out, fmt.Errorf("tuner: store %s: unknown schema version %d (want %d)", path, doc.Schema, storeSchema)
	}
	if len(doc.Models) > 0 {
		m, err := perfmodel.ReadJSON(bytes.NewReader(doc.Models))
		if err != nil {
			return out, fmt.Errorf("tuner: store %s: invalid model set: %w", path, err)
		}
		out.Models = m
	}
	out.Sites = doc.Sites
	out.Fingerprint = doc.Fingerprint
	out.FingerprintMatches = doc.Fingerprint.Matches(perfmodel.CollectFingerprint())
	return out, nil
}
