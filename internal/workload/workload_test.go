package workload

import (
	"testing"

	"repro/internal/collections"
)

func TestSinglePhaseListDeterministicSink(t *testing.T) {
	mk := func() collections.List[int] { return collections.NewArrayList[int]() }
	_, sink1 := SinglePhaseList(mk, 10, 50, 20, 7)
	_, sink2 := SinglePhaseList(mk, 10, 50, 20, 7)
	if sink1 != sink2 {
		t.Fatalf("same seed produced different sinks: %d vs %d", sink1, sink2)
	}
	if sink1 == 0 {
		t.Fatal("no lookups ever hit; probe generation broken")
	}
}

func TestSinglePhaseVariantsAgreeOnSink(t *testing.T) {
	// Every list variant must produce the same lookup hit count — the
	// workload is semantic, the variant only changes performance.
	var want int
	for i, v := range collections.ListVariants[int]() {
		_, sink := SinglePhaseList(func() collections.List[int] { return v.New(0) }, 5, 80, 30, 3)
		if i == 0 {
			want = sink
			continue
		}
		if sink != want {
			t.Fatalf("%s sink = %d, want %d", v.ID, sink, want)
		}
	}
}

func TestSinglePhaseSetAndMap(t *testing.T) {
	var setSink int
	for i, v := range collections.SetVariants[int]() {
		_, sink := SinglePhaseSet(func() collections.Set[int] { return v.New(0) }, 5, 60, 30, 11)
		if i == 0 {
			setSink = sink
		} else if sink != setSink {
			t.Fatalf("%s sink = %d, want %d", v.ID, sink, setSink)
		}
	}
	var mapSink int
	for i, v := range collections.MapVariants[int, int]() {
		_, sink := SinglePhaseMap(func() collections.Map[int, int] { return v.New(0) }, 5, 60, 30, 11)
		if i == 0 {
			mapSink = sink
		} else if sink != mapSink {
			t.Fatalf("%s sink = %d, want %d", v.ID, sink, mapSink)
		}
	}
}

func TestSinglePhaseMeasuresAllocation(t *testing.T) {
	res, _ := SinglePhaseSet(func() collections.Set[int] { return collections.NewHashSet[int]() }, 50, 100, 10, 1)
	if res.AllocBytes == 0 {
		t.Fatal("no allocation measured for 50 hash sets of 100 elements")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no time measured")
	}
}

func TestSinglePhaseAllocOrdering(t *testing.T) {
	// Chained sets must allocate more than open-addressing sets in the
	// same scenario — the premise of Figure 5d.
	chained, _ := SinglePhaseSet(func() collections.Set[int] { return collections.NewHashSet[int]() }, 200, 200, 0, 1)
	open, _ := SinglePhaseSet(func() collections.Set[int] {
		return collections.NewOpenHashSetPreset[int](collections.OpenCompact, 0)
	}, 200, 200, 0, 1)
	if open.AllocBytes >= chained.AllocBytes {
		t.Fatalf("open-compact allocated %d >= chained %d", open.AllocBytes, chained.AllocBytes)
	}
}

func TestMultiPhasePhases(t *testing.T) {
	ph := Phases()
	if len(ph) != 5 {
		t.Fatalf("phases = %v", ph)
	}
	if ph[0] != PhaseContains || ph[3] != PhaseSearchRemove {
		t.Fatalf("phase order wrong: %v", ph)
	}
}

func TestMultiPhaseIterationAllPhases(t *testing.T) {
	for _, phase := range Phases() {
		for _, v := range collections.ListVariants[int]() {
			elapsed, sink := MultiPhaseIteration(
				func() collections.List[int] { return v.New(0) },
				phase, 3, 50, 20, 5)
			if elapsed <= 0 {
				t.Errorf("%s/%s: no time measured", phase, v.ID)
			}
			if phase == PhaseIteration && sink == 0 {
				t.Errorf("%s/%s: iteration sink is zero", phase, v.ID)
			}
		}
	}
}

func TestMultiPhaseSearchRemoveShrinks(t *testing.T) {
	// The search-and-remove phase must actually remove elements it hits.
	removed := 0
	mk := func() collections.List[int] {
		l := collections.NewArrayList[int]()
		return l
	}
	_, sink := MultiPhaseIteration(mk, PhaseSearchRemove, 1, 100, 100, 9)
	removed = sink
	if removed == 0 {
		t.Fatal("search-and-remove never removed anything")
	}
	if removed > 100 {
		t.Fatalf("removed %d out of 100 elements", removed)
	}
}

func TestHookVariantsInvokeHook(t *testing.T) {
	mkList := func() collections.List[int] { return collections.NewArrayList[int]() }
	calls := 0
	res, sink := SinglePhaseListHook(mkList, 40, 30, 10, 3, 10, func() { calls++ })
	if calls != 4 {
		t.Errorf("list hook called %d times, want 4", calls)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	// Hook runs must not change results versus the plain variant.
	_, plainSink := SinglePhaseList(mkList, 40, 30, 10, 3)
	if sink != plainSink {
		t.Errorf("hook variant sink %d != plain %d", sink, plainSink)
	}

	mkSet := func() collections.Set[int] { return collections.NewHashSet[int]() }
	calls = 0
	_, setSink := SinglePhaseSetHook(mkSet, 25, 30, 10, 3, 5, func() { calls++ })
	if calls != 5 {
		t.Errorf("set hook called %d times, want 5", calls)
	}
	_, plainSetSink := SinglePhaseSet(mkSet, 25, 30, 10, 3)
	if setSink != plainSetSink {
		t.Errorf("set hook sink %d != plain %d", setSink, plainSetSink)
	}

	mkMap := func() collections.Map[int, int] { return collections.NewHashMap[int, int]() }
	calls = 0
	_, mapSink := SinglePhaseMapHook(mkMap, 25, 30, 10, 3, 25, func() { calls++ })
	if calls != 1 {
		t.Errorf("map hook called %d times, want 1", calls)
	}
	_, plainMapSink := SinglePhaseMap(mkMap, 25, 30, 10, 3)
	if mapSink != plainMapSink {
		t.Errorf("map hook sink %d != plain %d", mapSink, plainMapSink)
	}
}

func TestMultiPhaseHookMatchesPlain(t *testing.T) {
	mk := func() collections.List[int] { return collections.NewArrayList[int]() }
	for _, phase := range Phases() {
		_, plain := MultiPhaseIteration(mk, phase, 10, 40, 20, 5)
		calls := 0
		_, hooked := MultiPhaseIterationHook(mk, phase, 10, 40, 20, 5, 5, func() { calls++ })
		if plain != hooked {
			t.Errorf("%s: hooked sink %d != plain %d", phase, hooked, plain)
		}
		if calls != 2 {
			t.Errorf("%s: hook called %d times, want 2", phase, calls)
		}
	}
}

func TestHookZeroEveryRunsOnce(t *testing.T) {
	mk := func() collections.List[int] { return collections.NewArrayList[int]() }
	calls := 0
	SinglePhaseListHook(mk, 10, 10, 5, 1, 0, func() { calls++ })
	if calls != 1 {
		t.Errorf("every<=0 should hook once at the end, got %d", calls)
	}
}
