package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// This file defines the op space of the collection-aware traffic service
// (internal/service, cmd/collserve) and the phase schedules the saturation
// harness (cmd/collload) drives it with. The load generator and the
// end-to-end tests share these definitions, so "a scan-heavy phase" means
// the same operation mix everywhere it is measured.

// ServiceOp enumerates the request types of the traffic service.
type ServiceOp int

const (
	// OpSetAdd / OpSetHas target the keyed-set store (membership sets).
	OpSetAdd ServiceOp = iota
	OpSetHas
	// OpKVPut / OpKVGet target the int→int map store (point lookups).
	OpKVPut
	OpKVGet
	// OpRangeAdd / OpRangeScan target the sorted-range store (ordered
	// scans) — the op pair where variant choice matters most: sorted
	// variants answer scans by Range, hash variants by full iteration.
	OpRangeAdd
	OpRangeScan

	// NumServiceOps is the size of the op space (for weight tables).
	NumServiceOps
)

// String returns the wire name of the op (also used in summaries).
func (op ServiceOp) String() string {
	switch op {
	case OpSetAdd:
		return "set_add"
	case OpSetHas:
		return "set_has"
	case OpKVPut:
		return "kv_put"
	case OpKVGet:
		return "kv_get"
	case OpRangeAdd:
		return "range_add"
	case OpRangeScan:
		return "range_scan"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// ServiceMix is a weighted distribution over service ops.
type ServiceMix struct {
	Weights [NumServiceOps]int
}

// Pick draws one op according to the weights (uniform over ops with all
// weights zero, so a zero mix still generates traffic).
func (m ServiceMix) Pick(r *rand.Rand) ServiceOp {
	total := 0
	for _, w := range m.Weights {
		total += w
	}
	if total <= 0 {
		return ServiceOp(r.Intn(int(NumServiceOps)))
	}
	n := r.Intn(total)
	for op, w := range m.Weights {
		if n < w {
			return ServiceOp(op)
		}
		n -= w
	}
	return OpSetHas
}

// Named phase mixes. Every phase keeps a trickle of writes into the range
// store: new collection instances are what adopt a switched variant, so a
// phase with zero creations would freeze selection rather than exercise it.
var serviceMixes = map[string]ServiceMix{
	// read: point lookups dominate; collections mostly just get probed.
	"read": {Weights: [NumServiceOps]int{
		OpSetAdd: 5, OpSetHas: 35, OpKVPut: 5, OpKVGet: 40, OpRangeAdd: 5, OpRangeScan: 10,
	}},
	// write: population dominates — insert-heavy instances, where hash
	// variants beat sorted-array's O(n) shifting inserts.
	"write": {Weights: [NumServiceOps]int{
		OpSetAdd: 30, OpSetHas: 5, OpKVPut: 30, OpKVGet: 5, OpRangeAdd: 28, OpRangeScan: 2,
	}},
	// scan: ordered range queries dominate — where sorted variants answer
	// in O(log n + k) against a hash variant's full O(n) iteration.
	"scan": {Weights: [NumServiceOps]int{
		OpSetAdd: 3, OpSetHas: 7, OpKVPut: 3, OpKVGet: 7, OpRangeAdd: 15, OpRangeScan: 65,
	}},
	// mixed: the per-site clincher — write-hot on the sets/kv stores while
	// simultaneously scan-hot on the range store. No single global variant
	// fits this phase (hash loses the scans, sorted loses the inserts);
	// per-site selection picks both winners at once.
	"mixed": {Weights: [NumServiceOps]int{
		OpSetAdd: 22, OpSetHas: 5, OpKVPut: 20, OpKVGet: 5, OpRangeAdd: 13, OpRangeScan: 35,
	}},
}

// MixByName returns a named mix (read, write, scan, mixed).
func MixByName(name string) (ServiceMix, bool) {
	m, ok := serviceMixes[strings.ToLower(strings.TrimSpace(name))]
	return m, ok
}

// MixNames lists the known mix names (unordered).
func MixNames() []string {
	names := make([]string, 0, len(serviceMixes))
	for n := range serviceMixes {
		names = append(names, n)
	}
	return names
}

// ServicePhase is one timed segment of a load run.
type ServicePhase struct {
	Name     string
	Duration time.Duration
	Mix      ServiceMix
}

// ParseServicePhases parses a phase schedule of the form
// "write:5s,read:5s,scan:5s" — comma-separated name:duration pairs where
// every name is a known mix and every duration is positive.
func ParseServicePhases(spec string) ([]ServicePhase, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty phase spec")
	}
	var phases []ServicePhase
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, durStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("phase %q: want name:duration", part)
		}
		mix, ok := MixByName(name)
		if !ok {
			return nil, fmt.Errorf("phase %q: unknown mix %q (have %s)",
				part, name, strings.Join(MixNames(), ", "))
		}
		d, err := time.ParseDuration(strings.TrimSpace(durStr))
		if err != nil {
			return nil, fmt.Errorf("phase %q: %v", part, err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("phase %q: duration must be positive", part)
		}
		phases = append(phases, ServicePhase{Name: strings.ToLower(strings.TrimSpace(name)), Duration: d, Mix: mix})
	}
	return phases, nil
}
