package workload

import (
	"math/rand"
	"runtime"
	"time"

	"repro/internal/collections"
)

// The hook variants of the single-phase runners are used when the factory
// comes from a CollectionSwitch allocation context: the hook runs between
// instance batches, giving the caller a place to force a GC (so monitors'
// weak references clear) and drive the analysis engine — the role the JVM's
// GC and the background analyzer thread play in the paper's setup.

// SinglePhaseListHook is SinglePhaseList with a periodic hook invoked every
// `every` instances.
func SinglePhaseListHook(newList func() collections.List[int], instances, size, lookups int, seed int64, every int, hook func()) (Result, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	if every <= 0 {
		every = instances
	}
	sink := 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < instances; i++ {
		l := newList()
		for _, k := range keys {
			l.Add(k)
		}
		for j := 0; j < lookups; j++ {
			if l.Contains(probes[j%len(probes)]) {
				sink++
			}
		}
		if (i+1)%every == 0 && hook != nil {
			hook()
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{Elapsed: elapsed, AllocBytes: after.TotalAlloc - before.TotalAlloc}, sink
}

// SinglePhaseSetHook is SinglePhaseSet with a periodic hook.
func SinglePhaseSetHook(newSet func() collections.Set[int], instances, size, lookups int, seed int64, every int, hook func()) (Result, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	if every <= 0 {
		every = instances
	}
	sink := 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < instances; i++ {
		s := newSet()
		for _, k := range keys {
			s.Add(k)
		}
		for j := 0; j < lookups; j++ {
			if s.Contains(probes[j%len(probes)]) {
				sink++
			}
		}
		if (i+1)%every == 0 && hook != nil {
			hook()
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{Elapsed: elapsed, AllocBytes: after.TotalAlloc - before.TotalAlloc}, sink
}

// SinglePhaseMapHook is SinglePhaseMap with a periodic hook.
func SinglePhaseMapHook(newMap func() collections.Map[int, int], instances, size, lookups int, seed int64, every int, hook func()) (Result, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	if every <= 0 {
		every = instances
	}
	sink := 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < instances; i++ {
		m := newMap()
		for _, k := range keys {
			m.Put(k, k)
		}
		for j := 0; j < lookups; j++ {
			if _, ok := m.Get(probes[j%len(probes)]); ok {
				sink++
			}
		}
		if (i+1)%every == 0 && hook != nil {
			hook()
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{Elapsed: elapsed, AllocBytes: after.TotalAlloc - before.TotalAlloc}, sink
}

// MultiPhaseIterationHook is MultiPhaseIteration with a periodic hook
// invoked every `every` instances.
func MultiPhaseIterationHook(newList func() collections.List[int], phase Phase, instances, size, ops int, seed int64, every int, hook func()) (time.Duration, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	if every <= 0 {
		every = instances
	}
	sink := 0
	start := time.Now()
	for i := 0; i < instances; i++ {
		l := newList()
		for _, k := range keys {
			l.Add(k)
		}
		switch phase {
		case PhaseContains, PhaseContains2:
			for j := 0; j < ops; j++ {
				if l.Contains(probes[j%len(probes)]) {
					sink++
				}
			}
		case PhaseIteration:
			for j := 0; j < ops; j++ {
				l.ForEach(func(v int) bool { sink += v; return true })
			}
		case PhaseIndex:
			for j := 0; j < ops; j++ {
				sink += l.Get(j % l.Len())
			}
		case PhaseSearchRemove:
			for j := 0; j < ops && l.Len() > 0; j++ {
				v := probes[j%len(probes)]
				if l.Remove(v) {
					sink++
				}
			}
		}
		if (i+1)%every == 0 && hook != nil {
			hook()
		}
	}
	return time.Since(start), sink
}
