// Package workload provides the deterministic workload generators behind
// the micro-benchmark experiments (Section 5.1): the single-phase scenario
// (populate + lookups, Figure 5) and the multi-phase scenario whose dominant
// operation changes over time (Figure 6).
package workload

import (
	"math/rand"
	"runtime"
	"time"

	"repro/internal/collections"
)

// Result captures one scenario run.
type Result struct {
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
	// AllocBytes is the total heap allocation during the run.
	AllocBytes uint64
}

// measure runs fn, returning elapsed time and allocated bytes.
func measure(fn func()) Result {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{Elapsed: elapsed, AllocBytes: after.TotalAlloc - before.TotalAlloc}
}

// SinglePhaseList is the Figure 5a scenario: create instances lists, add
// size uniform elements to each, then run lookups Contains calls per
// instance. The sink return defeats dead-code elimination.
func SinglePhaseList(newList func() collections.List[int], instances, size, lookups int, seed int64) (Result, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	sink := 0
	res := measure(func() {
		for i := 0; i < instances; i++ {
			l := newList()
			for _, k := range keys {
				l.Add(k)
			}
			for j := 0; j < lookups; j++ {
				if l.Contains(probes[j%len(probes)]) {
					sink++
				}
			}
		}
	})
	return res, sink
}

// SinglePhaseSet is the Figure 5b/5d scenario for sets.
func SinglePhaseSet(newSet func() collections.Set[int], instances, size, lookups int, seed int64) (Result, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	sink := 0
	res := measure(func() {
		for i := 0; i < instances; i++ {
			s := newSet()
			for _, k := range keys {
				s.Add(k)
			}
			for j := 0; j < lookups; j++ {
				if s.Contains(probes[j%len(probes)]) {
					sink++
				}
			}
		}
	})
	return res, sink
}

// SinglePhaseMap is the Figure 5c/5e scenario for maps.
func SinglePhaseMap(newMap func() collections.Map[int, int], instances, size, lookups int, seed int64) (Result, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	sink := 0
	res := measure(func() {
		for i := 0; i < instances; i++ {
			m := newMap()
			for _, k := range keys {
				m.Put(k, k)
			}
			for j := 0; j < lookups; j++ {
				if _, ok := m.Get(probes[j%len(probes)]); ok {
					sink++
				}
			}
		}
	})
	return res, sink
}

// Phase names one phase of the multi-phased scenario (Figure 6 x-axis).
type Phase string

// The five phases of Figure 6, in order.
const (
	PhaseContains     Phase = "contains"
	PhaseIteration    Phase = "iteration"
	PhaseIndex        Phase = "index operation"
	PhaseSearchRemove Phase = "search and remove"
	PhaseContains2    Phase = "contains (again)"
)

// Phases returns the Figure 6 phase sequence.
func Phases() []Phase {
	return []Phase{PhaseContains, PhaseIteration, PhaseIndex, PhaseSearchRemove, PhaseContains2}
}

// MultiPhaseIteration runs one iteration of the Figure 6 experiment: create
// instances lists, populate each to size, then run ops operations of the
// phase's dominant type on each. Returns the elapsed time.
func MultiPhaseIteration(newList func() collections.List[int], phase Phase, instances, size, ops int, seed int64) (time.Duration, int) {
	r := rand.New(rand.NewSource(seed))
	keys := r.Perm(size * 2)[:size]
	probes := make([]int, 128)
	for i := range probes {
		probes[i] = r.Intn(size * 2)
	}
	sink := 0
	start := time.Now()
	for i := 0; i < instances; i++ {
		l := newList()
		for _, k := range keys {
			l.Add(k)
		}
		switch phase {
		case PhaseContains, PhaseContains2:
			for j := 0; j < ops; j++ {
				if l.Contains(probes[j%len(probes)]) {
					sink++
				}
			}
		case PhaseIteration:
			for j := 0; j < ops; j++ {
				l.ForEach(func(v int) bool { sink += v; return true })
			}
		case PhaseIndex:
			for j := 0; j < ops; j++ {
				sink += l.Get(j % l.Len())
			}
		case PhaseSearchRemove:
			for j := 0; j < ops && l.Len() > 0; j++ {
				v := probes[j%len(probes)]
				if l.Remove(v) {
					sink++
				}
			}
		}
	}
	return time.Since(start), sink
}
