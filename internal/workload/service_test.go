package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestParseServicePhases(t *testing.T) {
	phases, err := ParseServicePhases("write:5s, read:250ms ,scan:1m")
	if err != nil {
		t.Fatalf("ParseServicePhases: %v", err)
	}
	want := []struct {
		name string
		d    time.Duration
	}{{"write", 5 * time.Second}, {"read", 250 * time.Millisecond}, {"scan", time.Minute}}
	if len(phases) != len(want) {
		t.Fatalf("got %d phases, want %d", len(phases), len(want))
	}
	for i, w := range want {
		if phases[i].Name != w.name || phases[i].Duration != w.d {
			t.Errorf("phase %d = %s:%s, want %s:%s", i, phases[i].Name, phases[i].Duration, w.name, w.d)
		}
	}
}

func TestParseServicePhasesRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"write",          // no duration
		"write:xyz",      // unparseable duration
		"write:0s",       // non-positive
		"write:-1s",      // negative
		"tetris:5s",      // unknown mix
		"write:5s,,",     // empty segment
		"write:5s,bad:2", // bad trailing segment
	} {
		if _, err := ParseServicePhases(spec); err == nil {
			t.Errorf("ParseServicePhases(%q) accepted a bad spec", spec)
		}
	}
}

func TestServiceMixPickRespectsWeights(t *testing.T) {
	mix, ok := MixByName("scan")
	if !ok {
		t.Fatal("scan mix missing")
	}
	r := rand.New(rand.NewSource(7))
	counts := map[ServiceOp]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[mix.Pick(r)]++
	}
	// scan mix: range scans dominate by construction.
	if counts[OpRangeScan] < n/2 {
		t.Errorf("scan mix produced only %d/%d range scans", counts[OpRangeScan], n)
	}
	// Every weighted op appears; the zero-weight tail does not need to.
	for op, w := range mix.Weights {
		if w > 0 && counts[ServiceOp(op)] == 0 {
			t.Errorf("op %s weighted %d never drawn", ServiceOp(op), w)
		}
	}
	// A zero mix still generates uniform traffic rather than panicking.
	var zero ServiceMix
	seen := map[ServiceOp]bool{}
	for i := 0; i < 1000; i++ {
		seen[zero.Pick(r)] = true
	}
	if len(seen) != int(NumServiceOps) {
		t.Errorf("zero mix covered %d/%d ops", len(seen), NumServiceOps)
	}
}
