// Package search implements offline multi-objective selection: given the
// workload profiles of a program's allocation sites (from a tuner
// calibration store or Engine.SiteSnapshots) and the framework's cost-model
// curves, it searches the space of per-site variant assignments for the
// Pareto front over time, footprint, and allocation objectives.
//
// The algorithm is NSGA-II-lite, after *Darwinian Data Structure Selection*:
// fast nondominated sorting with crowding-distance truncation over a seeded
// population (the baseline assignment, per-objective greedy assignments, and
// caller-supplied seeds such as the store's current selections), binary
// tournament selection, uniform crossover, per-gene mutation, and a final
// per-site hill-climb polish of every front member. Model uncertainty
// (schema-2 variance) breaks ties: between otherwise indistinguishable
// assignments the one the models are more certain about wins.
//
// Cost evaluation mirrors the online selector's fold (internal/core costAgg)
// at the profile level: operation dimensions charge
//
//	TC_D = popN·cost(populate, s) + Contains·cost(contains, s)
//	     + Iterates·cost(iterate, s) + Middles·cost(middle, s)
//
// with s the observed mean instance size and popN = Adds/s, while the
// footprint dimension is retained state, charged once per instance at the
// observed maximum size. Everything is deterministic for a fixed Config.Seed.
package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/perfmodel"
)

// Objective names a search objective and maps to a cost-model dimension.
type Objective string

const (
	ObjTime   Objective = "time"   // execution time (time-ns)
	ObjMem    Objective = "mem"    // retained footprint bytes
	ObjAlloc  Objective = "alloc"  // bytes allocated
	ObjEnergy Objective = "energy" // synthesized energy dimension
)

// Dimension returns the perfmodel dimension the objective evaluates on.
func (o Objective) Dimension() (perfmodel.Dimension, error) {
	switch o {
	case ObjTime:
		return perfmodel.DimTimeNS, nil
	case ObjMem:
		return perfmodel.DimFootprint, nil
	case ObjAlloc:
		return perfmodel.DimAllocB, nil
	case ObjEnergy:
		return perfmodel.DimEnergy, nil
	}
	return "", fmt.Errorf("search: unknown objective %q (want time, mem, alloc, or energy)", o)
}

// ParseObjectives parses a comma-separated objective list ("time,mem").
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	seen := map[Objective]bool{}
	for _, part := range strings.Split(s, ",") {
		o := Objective(strings.TrimSpace(part))
		if o == "" {
			continue
		}
		if _, err := o.Dimension(); err != nil {
			return nil, err
		}
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("search: no objectives in %q", s)
	}
	return out, nil
}

// Site is one searchable allocation site: its candidate pool and the
// workload profile the objectives are evaluated against.
type Site struct {
	Name        string
	Abstraction collections.Abstraction
	// Baseline is the site's current assignment — the constructor found in
	// the source, or the store's selected variant.
	Baseline collections.VariantID
	// Candidates is the pool searched over; it must contain Baseline.
	Candidates []collections.VariantID
	Profile    core.WorkloadProfile
}

// Problem is one search instance.
type Problem struct {
	Sites      []Site
	Models     *perfmodel.Models
	Objectives []Objective
}

// Config tunes the search. The zero value selects sensible defaults.
type Config struct {
	// Seed drives every random choice; equal seeds give equal results.
	Seed int64
	// Population size (default 64, minimum 4, rounded up to even).
	Population int
	// Generations evolved (default 120).
	Generations int
	// Seeds are extra assignments injected into the initial population,
	// e.g. the store's currently selected variants. Unknown variants in a
	// seed fall back to the site baseline.
	Seeds [][]collections.VariantID
}

// Assignment is one evaluated point of the search space.
type Assignment struct {
	// Variants is index-aligned with Problem.Sites.
	Variants []collections.VariantID `json:"variants"`
	// Costs holds the total cost per objective, Problem.Objectives order.
	Costs []float64 `json:"costs"`
	// SEs holds the accumulated model standard error per objective —
	// conservative (perfectly correlated) sums, matching the online
	// selector's interval convention.
	SEs []float64 `json:"ses"`
}

// Result is the search outcome.
type Result struct {
	// Objectives echoes the problem's objective order, the axis labels of
	// every Costs slice.
	Objectives []Objective `json:"objectives"`
	// Front is the final nondominated set, sorted ascending by the first
	// objective.
	Front []Assignment `json:"front"`
	// Baseline is the evaluated all-baseline assignment.
	Baseline Assignment `json:"baseline"`
	// Evaluations counts distinct cost evaluations performed.
	Evaluations int `json:"evaluations"`
}

// Dominates reports whether costs a Pareto-dominates b: no worse on every
// objective and strictly better on at least one.
func Dominates(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// BetterCount returns how many objectives a improves on over b, and whether
// a is no worse than b everywhere. noWorse && strictly >= n means "dominates
// b on ≥ n objectives" in the acceptance-criteria sense.
func BetterCount(a, b []float64) (strictly int, noWorse bool) {
	noWorse = true
	for i := range a {
		if a[i] > b[i] {
			noWorse = false
		}
		if a[i] < b[i] {
			strictly++
		}
	}
	return strictly, noWorse
}

// matrix holds the precomputed per-site, per-candidate, per-objective costs.
type matrix struct {
	sites [][]cell // [site][candidate]
}

type cell struct {
	variant collections.VariantID
	cost    []float64 // per objective
	se      []float64
}

// evaluator runs the genome → costs mapping.
type evaluator struct {
	m     matrix
	nObj  int
	evals int
}

// individual is one genome plus its evaluation and NSGA bookkeeping.
type individual struct {
	genes    []int // candidate index per site
	costs    []float64
	ses      []float64
	rank     int
	crowding float64
}

// Run searches the assignment space and returns the Pareto front. It errors
// when the problem is empty, an objective lacks model coverage for a site's
// baseline, or a site's candidate pool evaluates empty.
func Run(p Problem, cfg Config) (Result, error) {
	if len(p.Sites) == 0 {
		return Result{}, fmt.Errorf("search: no sites")
	}
	if len(p.Objectives) == 0 {
		return Result{}, fmt.Errorf("search: no objectives")
	}
	if p.Models == nil {
		return Result{}, fmt.Errorf("search: nil models")
	}
	dims := make([]perfmodel.Dimension, len(p.Objectives))
	for i, o := range p.Objectives {
		d, err := o.Dimension()
		if err != nil {
			return Result{}, err
		}
		dims[i] = d
	}

	m, err := buildMatrix(p, dims)
	if err != nil {
		return Result{}, err
	}
	ev := &evaluator{m: m, nObj: len(dims)}

	pop := cfg.Population
	if pop <= 0 {
		pop = 64
	}
	if pop < 4 {
		pop = 4
	}
	if pop%2 == 1 {
		pop++
	}
	gens := cfg.Generations
	if gens <= 0 {
		gens = 120
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// ---- seeded initial population ------------------------------------
	var inds []*individual
	addGenome := func(g []int) {
		inds = append(inds, ev.evaluate(g))
	}
	baselineGenes := make([]int, len(p.Sites))
	for i := range p.Sites {
		baselineGenes[i] = m.indexOf(i, p.Sites[i].Baseline)
	}
	addGenome(baselineGenes)
	// Per-objective greedy: argmin per site on one objective at a time.
	for k := 0; k < len(dims); k++ {
		g := make([]int, len(p.Sites))
		for i := range p.Sites {
			best, bestCost := 0, math.Inf(1)
			for j, c := range m.sites[i] {
				if c.cost[k] < bestCost {
					best, bestCost = j, c.cost[k]
				}
			}
			g[i] = best
		}
		addGenome(g)
	}
	for _, seed := range cfg.Seeds {
		g := make([]int, len(p.Sites))
		for i := range p.Sites {
			g[i] = baselineGenes[i]
			if i < len(seed) {
				if j := m.indexOf(i, seed[i]); j >= 0 {
					g[i] = j
				}
			}
		}
		addGenome(g)
	}
	for len(inds) < pop {
		g := make([]int, len(p.Sites))
		for i := range p.Sites {
			g[i] = rng.Intn(len(m.sites[i]))
		}
		addGenome(g)
	}
	inds = inds[:pop]
	rankPopulation(inds)

	// ---- generations ---------------------------------------------------
	mutP := 1.0 / float64(len(p.Sites))
	for gen := 0; gen < gens; gen++ {
		offspring := make([]*individual, 0, pop)
		for len(offspring) < pop {
			a := tournament(rng, inds)
			b := tournament(rng, inds)
			ca, cb := crossover(rng, a.genes, b.genes)
			mutate(rng, ca, m, mutP)
			mutate(rng, cb, m, mutP)
			offspring = append(offspring, ev.evaluate(ca), ev.evaluate(cb))
		}
		inds = truncate(append(inds, offspring...), pop)
	}

	// ---- hill-climb polish of the front --------------------------------
	front := currentFront(inds)
	polished := make([]*individual, 0, len(front))
	for _, ind := range front {
		polished = append(polished, ev.polish(ind))
	}
	front = append(front, polished...)

	// ---- final nondominated filter + dedup -----------------------------
	final := nondominated(front)
	final = dedup(final)
	sort.SliceStable(final, func(i, j int) bool {
		if final[i].costs[0] != final[j].costs[0] {
			return final[i].costs[0] < final[j].costs[0]
		}
		return genomeLess(final[i].genes, final[j].genes)
	})

	res := Result{
		Objectives:  p.Objectives,
		Front:       make([]Assignment, len(final)),
		Baseline:    ev.assignment(ev.evaluate(baselineGenes)),
		Evaluations: ev.evals,
	}
	for i, ind := range final {
		res.Front[i] = ev.assignment(ind)
	}
	return res, nil
}

// buildMatrix precomputes per-site candidate costs, dropping candidates the
// models cannot evaluate on every requested dimension.
func buildMatrix(p Problem, dims []perfmodel.Dimension) (matrix, error) {
	m := matrix{sites: make([][]cell, len(p.Sites))}
	for i, s := range p.Sites {
		if len(s.Candidates) == 0 {
			return m, fmt.Errorf("search: site %s has no candidates", s.Name)
		}
		hasBaseline := false
		for _, v := range s.Candidates {
			if !covered(p.Models, v, dims) {
				if v == s.Baseline {
					return m, fmt.Errorf("search: site %s: models lack curves for baseline %s", s.Name, v)
				}
				continue
			}
			cost, se := siteCost(p.Models, v, dims, s.Profile)
			m.sites[i] = append(m.sites[i], cell{variant: v, cost: cost, se: se})
			if v == s.Baseline {
				hasBaseline = true
			}
		}
		if !hasBaseline {
			return m, fmt.Errorf("search: site %s: baseline %s not in candidate pool", s.Name, s.Baseline)
		}
	}
	return m, nil
}

// covered reports whether models can evaluate v on every cell the cost fold
// touches (footprint through the populate curve only, like the online
// selector).
func covered(models *perfmodel.Models, v collections.VariantID, dims []perfmodel.Dimension) bool {
	for _, dim := range dims {
		if dim == perfmodel.DimFootprint {
			if !models.Has(v, perfmodel.OpPopulate, dim) {
				return false
			}
			continue
		}
		for _, op := range perfmodel.Ops() {
			if !models.Has(v, op, dim) {
				return false
			}
		}
	}
	return true
}

// siteCost evaluates one (site, candidate) pair on every objective
// dimension, mirroring the online selector's fold at the profile level.
func siteCost(models *perfmodel.Models, v collections.VariantID, dims []perfmodel.Dimension, w core.WorkloadProfile) (cost, se []float64) {
	s := w.MeanSize
	if s < 1 {
		s = 1
	}
	smax := float64(w.MaxSize)
	if smax < s {
		smax = s
	}
	instances := float64(w.Instances)
	if instances < 1 {
		instances = 1
	}
	popN := w.Adds / s
	cost = make([]float64, len(dims))
	se = make([]float64, len(dims))
	for k, dim := range dims {
		if dim == perfmodel.DimFootprint {
			// Retained state: charged once per instance at max size.
			c, e, _ := models.CostSE(v, perfmodel.OpPopulate, dim, smax)
			cost[k] = instances * c
			se[k] = instances * e
			continue
		}
		type term struct {
			op perfmodel.Op
			n  float64
		}
		for _, t := range []term{
			{perfmodel.OpPopulate, popN},
			{perfmodel.OpContains, w.Contains},
			{perfmodel.OpIterate, w.Iterates},
			{perfmodel.OpMiddle, w.Middles},
		} {
			c, e, _ := models.CostSE(v, t.op, dim, s)
			cost[k] += t.n * c
			// Correlated-sum accumulation, the online selector's
			// conservative interval convention.
			se[k] += t.n * e
		}
	}
	return cost, se
}

func (m matrix) indexOf(site int, v collections.VariantID) int {
	for j, c := range m.sites[site] {
		if c.variant == v {
			return j
		}
	}
	return -1
}

func (e *evaluator) evaluate(genes []int) *individual {
	e.evals++
	ind := &individual{
		genes: append([]int(nil), genes...),
		costs: make([]float64, e.nObj),
		ses:   make([]float64, e.nObj),
	}
	for i, j := range genes {
		c := e.m.sites[i][j]
		for k := 0; k < e.nObj; k++ {
			ind.costs[k] += c.cost[k]
			ind.ses[k] += c.se[k]
		}
	}
	return ind
}

func (e *evaluator) assignment(ind *individual) Assignment {
	a := Assignment{
		Variants: make([]collections.VariantID, len(ind.genes)),
		Costs:    append([]float64(nil), ind.costs...),
		SEs:      append([]float64(nil), ind.ses...),
	}
	for i, j := range ind.genes {
		a.Variants[i] = e.m.sites[i][j].variant
	}
	return a
}

// polish hill-climbs one individual: repeatedly applies the single-site swap
// that Pareto-dominates the current point, until no swap does.
func (e *evaluator) polish(ind *individual) *individual {
	cur := ind
	for improved := true; improved; {
		improved = false
		for i := range cur.genes {
			for j := range e.m.sites[i] {
				if j == cur.genes[i] {
					continue
				}
				g := append([]int(nil), cur.genes...)
				g[i] = j
				cand := e.evaluate(g)
				if Dominates(cand.costs, cur.costs) {
					cur = cand
					improved = true
				}
			}
		}
	}
	return cur
}

// seSum is the uncertainty tie-breaker key.
func seSum(ind *individual) float64 {
	t := 0.0
	for _, s := range ind.ses {
		t += s
	}
	return t
}

// tournament is binary tournament selection: lower rank wins, then higher
// crowding distance, then lower accumulated model uncertainty.
func tournament(rng *rand.Rand, inds []*individual) *individual {
	a := inds[rng.Intn(len(inds))]
	b := inds[rng.Intn(len(inds))]
	switch {
	case a.rank != b.rank:
		if a.rank < b.rank {
			return a
		}
		return b
	case a.crowding != b.crowding:
		if a.crowding > b.crowding {
			return a
		}
		return b
	default:
		if seSum(a) <= seSum(b) {
			return a
		}
		return b
	}
}

// crossover is uniform: each gene comes from either parent with p = 1/2.
func crossover(rng *rand.Rand, a, b []int) ([]int, []int) {
	ca := append([]int(nil), a...)
	cb := append([]int(nil), b...)
	for i := range ca {
		if rng.Intn(2) == 0 {
			ca[i], cb[i] = cb[i], ca[i]
		}
	}
	return ca, cb
}

// mutate resets each gene to a uniformly random candidate with probability p.
func mutate(rng *rand.Rand, g []int, m matrix, p float64) {
	for i := range g {
		if rng.Float64() < p {
			g[i] = rng.Intn(len(m.sites[i]))
		}
	}
}

// rankPopulation assigns nondomination ranks and crowding distances.
func rankPopulation(inds []*individual) [][]*individual {
	fronts := fastNondominatedSort(inds)
	for _, f := range fronts {
		assignCrowding(f)
	}
	return fronts
}

// fastNondominatedSort is the O(N²·M) NSGA-II sort.
func fastNondominatedSort(inds []*individual) [][]*individual {
	n := len(inds)
	domCount := make([]int, n)
	dominates := make([][]int, n)
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(inds[i].costs, inds[j].costs) {
				dominates[i] = append(dominates[i], j)
			} else if Dominates(inds[j].costs, inds[i].costs) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			inds[i].rank = 0
			first = append(first, i)
		}
	}
	var fronts [][]*individual
	cur := first
	for rank := 0; len(cur) > 0; rank++ {
		f := make([]*individual, 0, len(cur))
		var next []int
		for _, i := range cur {
			inds[i].rank = rank
			f = append(f, inds[i])
			for _, j := range dominates[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		fronts = append(fronts, f)
		cur = next
	}
	return fronts
}

// assignCrowding computes the crowding distance within one front.
func assignCrowding(front []*individual) {
	n := len(front)
	for _, ind := range front {
		ind.crowding = 0
	}
	if n == 0 {
		return
	}
	nObj := len(front[0].costs)
	for k := 0; k < nObj; k++ {
		sort.SliceStable(front, func(i, j int) bool { return front[i].costs[k] < front[j].costs[k] })
		lo, hi := front[0].costs[k], front[n-1].costs[k]
		front[0].crowding = math.Inf(1)
		front[n-1].crowding = math.Inf(1)
		if hi == lo {
			continue
		}
		for i := 1; i < n-1; i++ {
			front[i].crowding += (front[i+1].costs[k] - front[i-1].costs[k]) / (hi - lo)
		}
	}
}

// truncate is the elitist environmental selection: rank the merged
// population, fill whole fronts, and cut the last partial front by crowding
// distance (uncertainty-then-genome tie-break keeps it deterministic).
func truncate(inds []*individual, pop int) []*individual {
	fronts := rankPopulation(inds)
	out := make([]*individual, 0, pop)
	for _, f := range fronts {
		if len(out)+len(f) <= pop {
			out = append(out, f...)
			continue
		}
		sort.SliceStable(f, func(i, j int) bool {
			if f[i].crowding != f[j].crowding {
				return f[i].crowding > f[j].crowding
			}
			if si, sj := seSum(f[i]), seSum(f[j]); si != sj {
				return si < sj
			}
			return genomeLess(f[i].genes, f[j].genes)
		})
		out = append(out, f[:pop-len(out)]...)
		break
	}
	return out
}

// currentFront returns the rank-0 members of a ranked population.
func currentFront(inds []*individual) []*individual {
	var out []*individual
	for _, ind := range inds {
		if ind.rank == 0 {
			out = append(out, ind)
		}
	}
	return out
}

// nondominated filters to the Pareto-optimal members.
func nondominated(inds []*individual) []*individual {
	var out []*individual
	for i, a := range inds {
		dominated := false
		for j, b := range inds {
			if i == j {
				continue
			}
			if Dominates(b.costs, a.costs) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

// dedup collapses duplicate genomes and, among genomes with identical costs,
// keeps the one the models are most certain about.
func dedup(inds []*individual) []*individual {
	var out []*individual
	seenGenome := map[string]bool{}
	byCosts := map[string]int{} // costs key -> index into out
	for _, ind := range inds {
		gk := genomeKey(ind.genes)
		if seenGenome[gk] {
			continue
		}
		seenGenome[gk] = true
		ck := costsKey(ind.costs)
		if i, ok := byCosts[ck]; ok {
			if seSum(ind) < seSum(out[i]) {
				out[i] = ind
			}
			continue
		}
		byCosts[ck] = len(out)
		out = append(out, ind)
	}
	return out
}

func genomeKey(g []int) string {
	var b strings.Builder
	for _, x := range g {
		fmt.Fprintf(&b, "%d,", x)
	}
	return b.String()
}

func costsKey(c []float64) string {
	var b strings.Builder
	for _, x := range c {
		fmt.Fprintf(&b, "%x,", math.Float64bits(x))
	}
	return b.String()
}

func genomeLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
