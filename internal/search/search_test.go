package search

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/polyfit"
)

func constPoly(c float64) polyfit.Poly { return polyfit.Poly{Coeffs: []float64{c}} }

// setVariant installs constant curves for one synthetic variant: `t` per
// critical op on time, `f` on footprint (populate only is required, but all
// ops are cheap to install), zero alloc.
func setVariant(m *perfmodel.Models, v collections.VariantID, t, f float64) {
	for _, op := range perfmodel.Ops() {
		m.Set(v, op, perfmodel.DimTimeNS, constPoly(t))
		m.Set(v, op, perfmodel.DimAllocB, constPoly(0))
		m.Set(v, op, perfmodel.DimFootprint, constPoly(f))
	}
}

const (
	vFast  collections.VariantID = "test/fast"  // cheap time, heavy footprint
	vSmall collections.VariantID = "test/small" // slow, tiny footprint
	vBad   collections.VariantID = "test/bad"   // dominated everywhere
)

func testModels() *perfmodel.Models {
	m := perfmodel.NewModels()
	setVariant(m, vFast, 1, 100)
	setVariant(m, vSmall, 10, 1)
	setVariant(m, vBad, 20, 200)
	return m
}

func testProfile() core.WorkloadProfile {
	return core.WorkloadProfile{
		Adds: 100, Contains: 50, Iterates: 10, Middles: 5,
		Instances: 2, MeanSize: 10, MaxSize: 20,
	}
}

func testProblem(nSites int) Problem {
	p := Problem{
		Models:     testModels(),
		Objectives: []Objective{ObjTime, ObjMem},
	}
	for i := 0; i < nSites; i++ {
		p.Sites = append(p.Sites, Site{
			Name:       "site",
			Baseline:   vBad,
			Candidates: []collections.VariantID{vFast, vSmall, vBad},
			Profile:    testProfile(),
		})
	}
	return p
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("time, mem")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(objs, []Objective{ObjTime, ObjMem}) {
		t.Fatalf("objs = %v", objs)
	}
	if _, err := ParseObjectives("time,bogus"); err == nil {
		t.Fatal("bogus objective accepted")
	}
	if _, err := ParseObjectives(","); err == nil {
		t.Fatal("empty objective list accepted")
	}
}

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 2}, []float64{2, 2}) {
		t.Error("strictly better on one, equal on other: should dominate")
	}
	if Dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Error("trade-off: should not dominate")
	}
	if Dominates([]float64{2, 2}, []float64{2, 2}) {
		t.Error("equal: should not dominate")
	}
	n, noWorse := BetterCount([]float64{1, 1, 2}, []float64{2, 2, 2})
	if n != 2 || !noWorse {
		t.Errorf("BetterCount = %d, %v", n, noWorse)
	}
}

func TestSiteCostMatchesHandComputation(t *testing.T) {
	m := testModels()
	dims := []perfmodel.Dimension{perfmodel.DimTimeNS, perfmodel.DimFootprint}
	cost, _ := siteCost(m, vFast, dims, testProfile())
	// popN = 100/10 = 10; time = (10+50+10+5)*1 = 75; footprint = 2*100.
	if math.Abs(cost[0]-75) > 1e-9 {
		t.Errorf("time cost = %v, want 75", cost[0])
	}
	if math.Abs(cost[1]-200) > 1e-9 {
		t.Errorf("footprint cost = %v, want 200", cost[1])
	}
}

func TestRunFindsTradeoffFront(t *testing.T) {
	res, err := Run(testProblem(3), Config{Seed: 1, Population: 16, Generations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	// The bad baseline must be strictly dominated on both objectives by at
	// least one front member.
	dominated := false
	for _, a := range res.Front {
		if n, noWorse := BetterCount(a.Costs, res.Baseline.Costs); noWorse && n >= 2 {
			dominated = true
		}
		for _, v := range a.Variants {
			if v == vBad {
				t.Errorf("dominated variant %s on the front: %+v", vBad, a)
			}
		}
	}
	if !dominated {
		t.Errorf("no front member dominates the baseline on both objectives; baseline %v front %+v",
			res.Baseline.Costs, res.Front)
	}
	// Extremes: all-fast and all-small are both Pareto-optimal.
	var sawAllFast, sawAllSmall bool
	for _, a := range res.Front {
		allFast, allSmall := true, true
		for _, v := range a.Variants {
			allFast = allFast && v == vFast
			allSmall = allSmall && v == vSmall
		}
		sawAllFast = sawAllFast || allFast
		sawAllSmall = sawAllSmall || allSmall
	}
	if !sawAllFast || !sawAllSmall {
		t.Errorf("front misses an extreme: allFast=%v allSmall=%v", sawAllFast, sawAllSmall)
	}
	// Front is sorted by the first objective and mutually nondominated.
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Costs[0] < res.Front[i-1].Costs[0] {
			t.Error("front not sorted by first objective")
		}
	}
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i != j && Dominates(a.Costs, b.Costs) {
				t.Errorf("front member %d dominates member %d", i, j)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	p := testProblem(4)
	a, err := Run(p, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Front, b.Front) {
		t.Fatal("same seed produced different fronts")
	}
}

func TestRunSeedAssignmentsJoinThePopulation(t *testing.T) {
	p := testProblem(2)
	seeds := [][]collections.VariantID{{vSmall, vSmall}}
	res, err := Run(p, Config{Seed: 7, Population: 8, Generations: 5, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Front {
		if a.Variants[0] == vSmall && a.Variants[1] == vSmall {
			found = true
		}
	}
	if !found {
		t.Error("seeded all-small assignment missing from the front")
	}
}

func TestRunDropsUncoveredCandidates(t *testing.T) {
	p := testProblem(1)
	p.Sites[0].Candidates = append(p.Sites[0].Candidates, "test/unmodeled")
	res, err := Run(p, Config{Seed: 1, Population: 8, Generations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Front {
		if a.Variants[0] == "test/unmodeled" {
			t.Fatal("unmodeled candidate assigned")
		}
	}
}

func TestRunErrorsOnUnmodeledBaseline(t *testing.T) {
	p := testProblem(1)
	p.Sites[0].Baseline = "test/unmodeled"
	p.Sites[0].Candidates = []collections.VariantID{"test/unmodeled", vFast}
	if _, err := Run(p, Config{Seed: 1}); err == nil {
		t.Fatal("unmodeled baseline accepted")
	}
}

func TestRunErrorsOnEmptyProblem(t *testing.T) {
	if _, err := Run(Problem{}, Config{}); err == nil {
		t.Fatal("empty problem accepted")
	}
	p := testProblem(1)
	p.Objectives = nil
	if _, err := Run(p, Config{}); err == nil {
		t.Fatal("no objectives accepted")
	}
}

func TestUncertaintyBreaksTies(t *testing.T) {
	// Two variants with identical costs; one carries variance. The dedup
	// keeps the certain one.
	m := perfmodel.NewModels()
	for _, op := range perfmodel.Ops() {
		m.Set("test/sure", op, perfmodel.DimTimeNS, constPoly(5))
		m.Set("test/sure", op, perfmodel.DimFootprint, constPoly(5))
		m.SetWithVar("test/shaky", op, perfmodel.DimTimeNS, constPoly(5), constPoly(4))
		m.SetWithVar("test/shaky", op, perfmodel.DimFootprint, constPoly(5), constPoly(4))
	}
	p := Problem{
		Models:     m,
		Objectives: []Objective{ObjTime, ObjMem},
		Sites: []Site{{
			Name:       "s",
			Baseline:   "test/shaky",
			Candidates: []collections.VariantID{"test/shaky", "test/sure"},
			Profile:    testProfile(),
		}},
	}
	res, err := Run(p, Config{Seed: 3, Population: 8, Generations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) != 1 {
		t.Fatalf("front size = %d, want 1 (identical costs)", len(res.Front))
	}
	if res.Front[0].Variants[0] != "test/sure" {
		t.Errorf("tie broken toward the uncertain variant: %+v", res.Front[0])
	}
	if res.Front[0].SEs[0] != 0 {
		t.Errorf("kept assignment carries uncertainty: %+v", res.Front[0])
	}
}
