package perfmodel

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// The paper concedes its benchmarked cost models are machine-specific
// (Section 6): curves fitted on one machine mislead selection on another.
// A Fingerprint makes that dependency explicit — refined models and
// persisted site decisions carry the identity of the machine they were
// measured on, and the warm-start store rejects state from a different
// machine instead of silently applying it.

// Fingerprint identifies the machine and runtime a model set was measured
// on. Two fingerprints must be equal for persisted measurements to be
// trusted.
type Fingerprint struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUModel   string `json:"cpu_model"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CollectFingerprint samples the current machine and runtime.
func CollectFingerprint() Fingerprint {
	return Fingerprint{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// Matches reports whether two fingerprints identify the same machine and
// runtime configuration.
func (f Fingerprint) Matches(other Fingerprint) bool { return f == other }

// IsZero reports whether the fingerprint carries no machine identity.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// String renders the fingerprint for logs and rejection messages.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s/%s %q x%d (%s)", f.GOOS, f.GOARCH, f.CPUModel, f.GOMAXPROCS, f.GoVersion)
}

// cpuModel returns a human-readable CPU model string. On Linux it reads the
// first "model name" line of /proc/cpuinfo; elsewhere (or when unreadable)
// it degrades to the architecture, which still discriminates across the
// common cross-machine copy mistakes.
func cpuModel() string {
	if runtime.GOOS == "linux" {
		if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				name, value, found := strings.Cut(line, ":")
				if !found {
					continue
				}
				switch strings.TrimSpace(name) {
				case "model name", "Processor", "cpu model":
					return strings.TrimSpace(value)
				}
			}
		}
	}
	return "unknown (" + runtime.GOARCH + ")"
}
