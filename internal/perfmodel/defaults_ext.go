package perfmodel

import (
	"math"

	"repro/internal/collections"
)

// Analytic default models for the future-work variants (sorted and
// concurrent collections, Section 7). Same modeling approach as
// defaults.go, with logarithmic point-operation costs for the tree-shaped
// structures:
//
//   - AVL / skip list: O(log n) probes over pointer-chased nodes, one node
//     allocation per insert — time near the chained hash's, footprint too;
//   - sorted array: binary-searched O(log n) lookups at flat-array
//     footprint, but quadratic population (shift per insert);
//   - sync wrappers: their inner open-balanced costs plus a fixed lock
//     acquisition per operation;
//   - sharded map: slightly higher fixed cost per operation (shard pick +
//     lock), a 16-table base footprint, and contention relief that a
//     sequential cost model deliberately does not credit.

// logCost returns a + b·log2(s+1), the point-op shape of tree structures.
func logCost(a, b float64) costFn {
	return func(s float64) float64 { return a + b*math.Log2(s+1) }
}

// nLogCost returns s·(a + b·log2(s+1)), the population shape of trees.
func nLogCost(a, b float64) costFn {
	return func(s float64) float64 { return s * (a + b*math.Log2(s+1)) }
}

func analyticExtensionSets() []analyticVariant {
	avl := analyticVariant{
		id: collections.AVLTreeSetID,
		time: map[Op]costFn{
			OpPopulate: nLogCost(40, 6),
			OpContains: logCost(10, 5),
			OpIterate:  lin(12, 1.2),
			OpMiddle:   logCost(30, 12), // insert + delete with rebalancing
		},
		allocPopulate: lin(48, 56), // one node per element
		allocMiddle:   lin(56, 0),
		footprint:     lin(48, 56),
	}
	skip := analyticVariant{
		id: collections.SkipListSetID,
		time: map[Op]costFn{
			OpPopulate: nLogCost(60, 8),
			OpContains: logCost(15, 7),
			OpIterate:  lin(12, 1.0),
			OpMiddle:   logCost(40, 16),
		},
		allocPopulate: lin(220, 80), // node + tower per element, sentinel base
		allocMiddle:   lin(80, 0),
		footprint:     lin(220, 80),
	}
	sortedArr := analyticVariant{
		id: collections.SortedArraySetID,
		time: map[Op]costFn{
			OpPopulate: quad(20, 3, 0.15), // shift on every insert
			OpContains: logCost(8, 4),
			OpIterate:  lin(5, 0.3),
			OpMiddle:   lin(12, 0.3), // shift-dominated
		},
		allocPopulate: lin(48, 16),
		allocMiddle:   zero,
		footprint:     lin(48, 10),
	}
	syncSet := analyticVariant{
		id: collections.SyncSetID,
		time: map[Op]costFn{
			// Open-balanced costs plus ~18ns of uncontended lock per op
			// (populate pays it once per element).
			OpPopulate: quad(50, 32, 0.010),
			OpContains: lin(25.5, 0.0018),
			OpIterate:  lin(26, 0.55),
			OpMiddle:   lin(64, 0.002),
		},
		allocPopulate: quad(200, 24, 0.02),
		allocMiddle:   zero,
		footprint:     lin(120, 18),
	}
	return []analyticVariant{avl, skip, sortedArr, syncSet}
}

func analyticExtensionMaps() []analyticVariant {
	avl := analyticVariant{
		id: collections.AVLTreeMapID,
		time: map[Op]costFn{
			OpPopulate: nLogCost(46, 7),
			OpContains: logCost(11, 5.5),
			OpIterate:  lin(14, 1.3),
			OpMiddle:   logCost(34, 13),
		},
		allocPopulate: lin(56, 64),
		allocMiddle:   lin(64, 0),
		footprint:     lin(56, 64),
	}
	skip := analyticVariant{
		id: collections.SkipListMapID,
		time: map[Op]costFn{
			OpPopulate: nLogCost(70, 9),
			OpContains: logCost(17, 8),
			OpIterate:  lin(14, 1.1),
			OpMiddle:   logCost(46, 18),
		},
		allocPopulate: lin(240, 88),
		allocMiddle:   lin(88, 0),
		footprint:     lin(240, 88),
	}
	sortedArr := analyticVariant{
		id: collections.SortedArrayMapID,
		time: map[Op]costFn{
			OpPopulate: quad(23, 3.5, 0.17),
			OpContains: logCost(9, 4.5),
			OpIterate:  lin(6, 0.35),
			OpMiddle:   lin(14, 0.35),
		},
		allocPopulate: lin(96, 30),
		allocMiddle:   zero,
		footprint:     lin(96, 19),
	}
	syncMap := analyticVariant{
		id: collections.SyncMapID,
		time: map[Op]costFn{
			OpPopulate: quad(58, 34, 0.012),
			OpContains: lin(27, 0.002),
			OpIterate:  lin(28, 0.63),
			OpMiddle:   lin(70, 0.002),
		},
		allocPopulate: quad(320, 46, 0.038),
		allocMiddle:   zero,
		footprint:     lin(220, 34),
	}
	sharded := analyticVariant{
		id: collections.ShardedMapID,
		time: map[Op]costFn{
			// Per-op shard pick + lock; 16 small tables grow cheaper per
			// table but the base is bigger.
			OpPopulate: quad(900, 38, 0.002),
			OpContains: lin(31, 0.001),
			OpIterate:  lin(160, 0.7),
			OpMiddle:   lin(76, 0.001),
		},
		allocPopulate: lin(2600, 46), // 16 pre-sized tables
		allocMiddle:   zero,
		footprint:     lin(2600, 34),
	}
	return []analyticVariant{avl, skip, sortedArr, syncMap, sharded}
}
