package perfmodel

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

func TestModelsSetCostHas(t *testing.T) {
	m := NewModels()
	if m.Has(collections.ArrayListID, OpContains, DimTimeNS) {
		t.Fatal("empty models claim a curve")
	}
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{4, 0.45}})
	if !m.Has(collections.ArrayListID, OpContains, DimTimeNS) {
		t.Fatal("Has = false after Set")
	}
	if got := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 100); got != 49 {
		t.Fatalf("Cost = %g, want 49", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestModelsCostClampsNegative(t *testing.T) {
	m := NewModels()
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{-100, 1}})
	if got := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 10); got != 0 {
		t.Fatalf("negative cost not clamped: %g", got)
	}
}

func TestModelsCostPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cost on missing curve did not panic")
		}
	}()
	NewModels().Cost(collections.ArrayListID, OpContains, DimTimeNS, 1)
}

func TestModelsVariantsSorted(t *testing.T) {
	m := NewModels()
	p := polyfit.Poly{Coeffs: []float64{1}}
	m.Set(collections.HashSetID, OpContains, DimTimeNS, p)
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, p)
	vs := m.Variants()
	if len(vs) != 2 || vs[0] != collections.ArrayListID || vs[1] != collections.HashSetID {
		t.Fatalf("Variants = %v", vs)
	}
}

func TestModelsMerge(t *testing.T) {
	a := NewModels()
	b := NewModels()
	a.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1}})
	b.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{2}})
	b.Set(collections.HashSetID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{3}})
	a.Merge(b)
	if got := a.Cost(collections.ArrayListID, OpContains, DimTimeNS, 0); got != 2 {
		t.Fatalf("Merge did not overwrite: %g", got)
	}
	if a.Len() != 2 {
		t.Fatalf("Len after merge = %d, want 2", a.Len())
	}
}

func TestDefaultCoversEveryVariantOpDimension(t *testing.T) {
	m := Default()
	for _, info := range collections.AllVariantInfos() {
		for _, op := range Ops() {
			for _, dim := range Dimensions() {
				if !m.Has(info.ID, op, dim) {
					t.Errorf("missing default curve %s/%s/%s", info.ID, op, dim)
				}
			}
		}
	}
}

func TestDefaultFitTracksAnalytic(t *testing.T) {
	// The fitted cubic must track the analytic function closely at the
	// plan sizes for smooth (non-piecewise) variants.
	m := Default()
	for _, v := range []collections.VariantID{
		collections.ArrayListID, collections.HashSetID, collections.OpenHashMapFastID,
	} {
		for _, s := range []float64{10, 100, 500, 1000} {
			want, ok := AnalyticCost(v, OpContains, DimTimeNS, s)
			if !ok {
				t.Fatalf("no analytic cost for %s", v)
			}
			got := m.Cost(v, OpContains, DimTimeNS, s)
			if math.Abs(got-want) > 0.05*want+1 {
				t.Errorf("%s contains at %g: fitted %g vs analytic %g", v, s, got, want)
			}
		}
	}
}

func TestDefaultOrderingsMatchPaper(t *testing.T) {
	m := Default()
	// At size 500, a contains on ArrayList must be far costlier than on
	// HashArrayList (the Figure 5a premise).
	al := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 500)
	hal := m.Cost(collections.HashArrayListID, OpContains, DimTimeNS, 500)
	if al < 3*hal {
		t.Errorf("ArrayList contains (%g) should dwarf HashArrayList (%g) at 500", al, hal)
	}
	// At size 10 the opposite holds: the array scan is cheap.
	al10 := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 10)
	hal10 := m.Cost(collections.HashArrayListID, OpContains, DimTimeNS, 10)
	if al10 > hal10 {
		t.Errorf("ArrayList contains (%g) should beat HashArrayList (%g) at 10", al10, hal10)
	}
	// Populating a chained HashSet must cost more than an open-hash set
	// (entry boxing), and allocate more (Figure 5b/d premise).
	chained := m.Cost(collections.HashSetID, OpPopulate, DimTimeNS, 500)
	open := m.Cost(collections.OpenHashSetFastID, OpPopulate, DimTimeNS, 500)
	if chained < open {
		t.Errorf("chained populate (%g) should cost more than open (%g)", chained, open)
	}
	chainedA := m.Cost(collections.HashSetID, OpPopulate, DimAllocB, 500)
	compactA := m.Cost(collections.OpenHashSetCmpID, OpPopulate, DimAllocB, 500)
	fastA := m.Cost(collections.OpenHashSetFastID, OpPopulate, DimAllocB, 500)
	if !(compactA < fastA && fastA < chainedA) {
		t.Errorf("alloc ordering compact (%g) < fast (%g) < chained (%g) violated",
			compactA, fastA, chainedA)
	}
	// The compact preset's time must degrade with size faster than the
	// fast preset's — the driver of the Figure 5d/e multi-step switch.
	ratioSmall := m.Cost(collections.OpenHashSetCmpID, OpPopulate, DimTimeNS, 100) /
		m.Cost(collections.OpenHashSetFastID, OpPopulate, DimTimeNS, 100)
	ratioLarge := m.Cost(collections.OpenHashSetCmpID, OpPopulate, DimTimeNS, 1000) /
		m.Cost(collections.OpenHashSetFastID, OpPopulate, DimTimeNS, 1000)
	if ratioLarge <= ratioSmall {
		t.Errorf("compact/fast time ratio should grow with size: %g -> %g", ratioSmall, ratioLarge)
	}
}

func TestDefaultAdaptivePiecewise(t *testing.T) {
	m := Default()
	// A cubic fitted over the full 10..1000 sweep cannot hug the array
	// regime tightly (only one plan size sits below the threshold), but
	// the adaptive set's modeled footprint below the threshold must still
	// undercut the chained hash set's — the paper's memory claim.
	thr := float64(collections.DefaultSetThreshold)
	small := m.Cost(collections.AdaptiveSetID, OpPopulate, DimFootprint, thr/2)
	chainedFoot := m.Cost(collections.HashSetID, OpPopulate, DimFootprint, thr/2)
	if small >= chainedFoot {
		t.Errorf("adaptive footprint below threshold %g should undercut chained %g", small, chainedFoot)
	}
	big := m.Cost(collections.AdaptiveSetID, OpContains, DimTimeNS, 800)
	open := m.Cost(collections.OpenHashSetFastID, OpContains, DimTimeNS, 800)
	arrBig := m.Cost(collections.ArraySetID, OpContains, DimTimeNS, 800)
	if big > arrBig/4 {
		t.Errorf("adaptive contains at 800 (%g) should be hash-like, array is %g", big, arrBig)
	}
	_ = open
}

func TestJSONRoundTrip(t *testing.T) {
	m := Default()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != m.Len() {
		t.Fatalf("round trip lost curves: %d -> %d", m.Len(), back.Len())
	}
	for _, v := range m.Variants() {
		for _, op := range Ops() {
			for _, dim := range Dimensions() {
				if !m.Has(v, op, dim) {
					continue
				}
				for _, s := range []float64{10, 500} {
					a, b := m.Cost(v, op, dim, s), back.Cost(v, op, dim, s)
					if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
						t.Fatalf("%s/%s/%s at %g: %g != %g", v, op, dim, s, a, b)
					}
				}
			}
		}
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"curves":[{"variant":"x","op":"y","dimension":"z","coeffs":[]}]}`)); err == nil {
		t.Error("empty coefficient vector accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := Default()
	path := filepath.Join(t.TempDir(), "models.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != m.Len() {
		t.Fatalf("file round trip lost curves: %d -> %d", m.Len(), back.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestDefaultPlanMatchesTable3(t *testing.T) {
	p := DefaultPlan()
	if p.Sizes[0] != 10 || p.Sizes[1] != 50 || p.Sizes[2] != 100 {
		t.Fatalf("plan sizes start %v", p.Sizes[:3])
	}
	if p.Sizes[len(p.Sizes)-1] != 1000 {
		t.Fatalf("plan sizes end at %d, want 1000", p.Sizes[len(p.Sizes)-1])
	}
	if len(p.Ops) != 4 || p.Degree != 3 {
		t.Fatalf("plan ops/degree = %d/%d", len(p.Ops), p.Degree)
	}
	if p.WarmupIters != 15 || p.MeasureIters != 30 {
		t.Fatalf("plan iterations = %d/%d, want 15/30", p.WarmupIters, p.MeasureIters)
	}
}

func TestBuilderQuickPlanLists(t *testing.T) {
	if testing.Short() {
		t.Skip("builder benchmarks are slow")
	}
	plan := QuickPlan()
	plan.Sizes = []int{10, 50, 200}
	b := NewBuilder(plan)
	var progressed int
	b.Progress = func(collections.VariantID, Op) { progressed++ }
	m, err := b.BuildLists()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range collections.ListVariants[int]() {
		for _, op := range Ops() {
			if !m.Has(v.ID, op, DimTimeNS) {
				t.Errorf("missing measured curve %s/%s", v.ID, op)
			}
			if !m.Has(v.ID, op, DimFootprint) {
				t.Errorf("missing footprint curve %s/%s", v.ID, op)
			}
		}
	}
	if progressed == 0 {
		t.Error("progress callback never invoked")
	}
	// Sanity: the measured ArrayList contains cost must grow with size.
	small := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 10)
	large := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 200)
	if large <= small {
		t.Errorf("measured ArrayList contains does not grow: %g -> %g", small, large)
	}
}
