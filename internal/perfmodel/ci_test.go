package perfmodel

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/polyfit"
)

// Curves stored with variance must answer CostSE/CostCI; curves without must
// degrade to exact point estimates.
func TestCostSEAndCI(t *testing.T) {
	m := NewModels()
	m.SetWithVar("v", OpContains, DimTimeNS,
		polyfit.Poly{Coeffs: []float64{10, 2}}, // cost = 10 + 2s
		polyfit.Poly{Coeffs: []float64{4, 0, 0.01}} /* var = 4 + 0.01s² */)
	cost, se, ok := m.CostSE("v", OpContains, DimTimeNS, 10)
	if !ok {
		t.Fatal("variance-carrying curve reported ok=false")
	}
	if cost != 30 {
		t.Errorf("cost = %g, want 30", cost)
	}
	if want := math.Sqrt(4 + 0.01*100); math.Abs(se-want) > 1e-12 {
		t.Errorf("se = %g, want %g", se, want)
	}
	lo, hi := m.CostCI("v", OpContains, DimTimeNS, 10, 2)
	if math.Abs(lo-(30-2*se)) > 1e-12 || math.Abs(hi-(30+2*se)) > 1e-12 {
		t.Errorf("CI = [%g, %g], want 30 ± 2·%g", lo, hi, se)
	}

	// Lower bound clamps at zero like Cost does.
	m.SetWithVar("v", OpIterate, DimTimeNS,
		polyfit.Poly{Coeffs: []float64{1}}, polyfit.Poly{Coeffs: []float64{100}})
	lo, hi = m.CostCI("v", OpIterate, DimTimeNS, 5, 1)
	if lo != 0 || math.Abs(hi-11) > 1e-12 {
		t.Errorf("clamped CI = [%g, %g], want [0, 11]", lo, hi)
	}

	// No variance info: ok=false, zero-width interval.
	m.Set("v", OpMiddle, DimTimeNS, polyfit.Poly{Coeffs: []float64{7}})
	if _, se, ok := m.CostSE("v", OpMiddle, DimTimeNS, 3); ok || se != 0 {
		t.Errorf("plain curve: se=%g ok=%v, want 0/false", se, ok)
	}
	lo, hi = m.CostCI("v", OpMiddle, DimTimeNS, 3, 2)
	if lo != 7 || hi != 7 {
		t.Errorf("plain curve CI = [%g, %g], want [7, 7]", lo, hi)
	}

	// z ≤ 0 disables widening even on variance-carrying curves.
	lo, hi = m.CostCI("v", OpContains, DimTimeNS, 10, 0)
	if lo != 30 || hi != 30 {
		t.Errorf("z=0 CI = [%g, %g], want [30, 30]", lo, hi)
	}
}

// The piecewise setter keeps one variance curve per regime.
func TestSetPiecewiseWithVar(t *testing.T) {
	m := NewModels()
	m.SetPiecewiseWithVar("v", OpContains, DimTimeNS, 100,
		polyfit.Poly{Coeffs: []float64{1}}, polyfit.Poly{Coeffs: []float64{0.25}},
		polyfit.Poly{Coeffs: []float64{5}}, polyfit.Poly{Coeffs: []float64{9}})
	if _, se, ok := m.CostSE("v", OpContains, DimTimeNS, 50); !ok || se != 0.5 {
		t.Errorf("below regime se = %g, want 0.5", se)
	}
	if _, se, ok := m.CostSE("v", OpContains, DimTimeNS, 500); !ok || se != 3 {
		t.Errorf("above regime se = %g, want 3", se)
	}
}

// JSON round-trip preserves the variance polynomials and the schema version.
func TestJSONRoundTripVariance(t *testing.T) {
	m := NewModels()
	m.SetWithVar("v1", OpContains, DimTimeNS,
		polyfit.Poly{Coeffs: []float64{1, 2, 3}},
		polyfit.Poly{Coeffs: []float64{0.5, 0, 0.25}})
	m.SetPiecewiseWithVar("v2", OpPopulate, DimAllocB, 64,
		polyfit.Poly{Coeffs: []float64{10}}, polyfit.Poly{Coeffs: []float64{1}},
		polyfit.Poly{Coeffs: []float64{20}}, polyfit.Poly{Coeffs: []float64{2}})
	m.Set("v3", OpIterate, DimTimeNS, polyfit.Poly{Coeffs: []float64{4}})

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": 2`) {
		t.Error("serialized models missing schema version 2")
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []float64{1, 32, 64, 100, 1e4} {
		wc, wse, wok := m.CostSE("v1", OpContains, DimTimeNS, size)
		gc, gse, gok := got.CostSE("v1", OpContains, DimTimeNS, size)
		if wc != gc || wse != gse || wok != gok {
			t.Errorf("v1 at %g: (%g,%g,%v) vs decoded (%g,%g,%v)", size, wc, wse, wok, gc, gse, gok)
		}
		wc, wse, wok = m.CostSE("v2", OpPopulate, DimAllocB, size)
		gc, gse, gok = got.CostSE("v2", OpPopulate, DimAllocB, size)
		if wc != gc || wse != gse || wok != gok {
			t.Errorf("v2 at %g: (%g,%g,%v) vs decoded (%g,%g,%v)", size, wc, wse, wok, gc, gse, gok)
		}
	}
	if _, _, ok := got.CostSE("v3", OpIterate, DimTimeNS, 5); ok {
		t.Error("variance invented for a curve stored without one")
	}
}

// Files written before the schema bump (no "schema", no "var") decode as
// curves without uncertainty; files from a future schema are rejected.
func TestJSONSchemaCompatibility(t *testing.T) {
	legacy := `{
  "curves": [
    {"variant": "v", "op": "contains", "dimension": "time-ns",
     "pieces": [{"upTo": 16, "coeffs": [1, 2]}, {"coeffs": [3]}]}
  ]
}`
	m, err := ReadJSON(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if got := m.Cost("v", OpContains, DimTimeNS, 8); got != 17 {
		t.Errorf("legacy curve Cost(8) = %g, want 17", got)
	}
	if _, se, ok := m.CostSE("v", OpContains, DimTimeNS, 8); ok || se != 0 {
		t.Errorf("legacy curve reported uncertainty: se=%g ok=%v", se, ok)
	}
	lo, hi := m.CostCI("v", OpContains, DimTimeNS, 8, 1.96)
	if lo != 17 || hi != 17 {
		t.Errorf("legacy curve CI = [%g, %g], want zero-width", lo, hi)
	}

	future := `{"schema": 3, "curves": []}`
	if _, err := ReadJSON(strings.NewReader(future)); err == nil {
		t.Error("future schema accepted")
	}
}

// Measured overlay points carry their sampling error into the band variance,
// and bands without an SE stay exact.
func TestOverlayMeasuredVariance(t *testing.T) {
	m := NewModels()
	m.SetWithVar("v", OpContains, DimTimeNS,
		polyfit.Poly{Coeffs: []float64{100}}, polyfit.Poly{Coeffs: []float64{16}})
	m.OverlayMeasured("v", OpContains, DimTimeNS, []MeasuredPoint{
		{Size: 10, Value: 50, SE: 2},
		{Size: 1000, Value: 70},
	})
	// Inside the first band: measured value and its variance.
	if _, se, ok := m.CostSE("v", OpContains, DimTimeNS, 10); !ok || se != 2 {
		t.Errorf("band se = %g ok=%v, want 2/true", se, ok)
	}
	// Second band measured without SE: exact.
	if _, se, ok := m.CostSE("v", OpContains, DimTimeNS, 1000); ok || se != 0 {
		t.Errorf("SE-free band: se=%g ok=%v, want exact", se, ok)
	}
	// Outside the bands the prior variance survives.
	if _, se, ok := m.CostSE("v", OpContains, DimTimeNS, 1e6); !ok || se != 4 {
		t.Errorf("prior se = %g ok=%v, want 4/true", se, ok)
	}
	if got := m.Cost("v", OpContains, DimTimeNS, 1e6); got != 100 {
		t.Errorf("prior cost = %g, want 100", got)
	}
}
