package perfmodel

import (
	"math"
	"testing"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// TestOpNamesMatchCatalog pins the string contract between the catalog's
// critical-operation names and this package's Op constants: an analytic
// model keyed by collections.OpName* must resolve to the same curves the
// engine queries by perfmodel.Op.
func TestOpNamesMatchCatalog(t *testing.T) {
	want := collections.OpNames()
	ops := Ops()
	if len(ops) != len(want) {
		t.Fatalf("Ops() has %d entries, catalog OpNames() has %d", len(ops), len(want))
	}
	for i, op := range ops {
		if string(op) != want[i] {
			t.Fatalf("Ops()[%d] = %q, catalog OpNames()[%d] = %q", i, op, i, want[i])
		}
	}
}

// TestJSONRoundTripAfterMerge saves a merged model set (one plain curve, one
// piecewise curve from a second Models) and checks every curve survives the
// byte round trip.
func TestJSONRoundTripAfterMerge(t *testing.T) {
	a := NewModels()
	a.Set("v/plain", OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{2, 0.5}})
	b := NewModels()
	b.SetPiecewise("v/adaptive", OpPopulate, DimAllocB, 80,
		polyfit.Poly{Coeffs: []float64{10, 1}},
		polyfit.Poly{Coeffs: []float64{200, 3}})
	b.Set("v/plain", OpContains, DimAllocB, polyfit.Poly{Coeffs: []float64{0, 8}})
	a.Merge(b)

	path := t.TempDir() + "/merged.json"
	if err := a.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Len() != a.Len() {
		t.Fatalf("round trip kept %d curves, want %d", got.Len(), a.Len())
	}
	for _, size := range []float64{1, 40, 80, 81, 500, 1000} {
		for _, probe := range []struct {
			v   collections.VariantID
			op  Op
			dim Dimension
		}{
			{"v/plain", OpContains, DimTimeNS},
			{"v/plain", OpContains, DimAllocB},
			{"v/adaptive", OpPopulate, DimAllocB},
		} {
			want := a.Cost(probe.v, probe.op, probe.dim, size)
			if g := got.Cost(probe.v, probe.op, probe.dim, size); g != want {
				t.Fatalf("Cost(%s,%s,%s,%g) = %g after round trip, want %g",
					probe.v, probe.op, probe.dim, size, g, want)
			}
		}
	}
}

// checkFinite asserts Cost is finite and non-negative for every curve of m
// at the given size.
func checkFinite(t *testing.T, m *Models, size float64) {
	t.Helper()
	for _, v := range m.Variants() {
		for _, op := range Ops() {
			for _, dim := range Dimensions() {
				if !m.Has(v, op, dim) {
					continue
				}
				c := m.Cost(v, op, dim, size)
				if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
					t.Fatalf("Cost(%s, %s, %s, %g) = %v: not finite non-negative", v, op, dim, size, c)
				}
			}
		}
	}
}

// TestDefaultCostsFiniteNonNegative sweeps the Table 3 size range (and a
// margin beyond it) over every curve of the shipped defaults: the selection
// arithmetic divides and ranks these numbers, so a NaN or infinity anywhere
// would silently corrupt decisions.
func TestDefaultCostsFiniteNonNegative(t *testing.T) {
	m := Default()
	for size := 1; size <= 1000; size += 7 {
		checkFinite(t, m, float64(size))
	}
	for _, size := range []float64{0, 1, 10, 80, 1000, 5000} {
		checkFinite(t, m, size)
	}
}

// FuzzDefaultCostFinite is the property test in fuzz form: any size in
// [0, 10000] must produce finite, non-negative costs from the defaults.
// `go test` runs the seed corpus; `go test -fuzz=FuzzDefaultCostFinite`
// explores further.
func FuzzDefaultCostFinite(f *testing.F) {
	for _, seed := range []float64{0, 1, 10, 50, 80, 100, 555, 1000, 9999.5} {
		f.Add(seed)
	}
	m := Default()
	variants := m.Variants()
	f.Fuzz(func(t *testing.T, size float64) {
		if math.IsNaN(size) || size < 0 || size > 10000 {
			t.Skip()
		}
		for _, v := range variants {
			for _, op := range Ops() {
				for _, dim := range Dimensions() {
					if !m.Has(v, op, dim) {
						continue
					}
					c := m.Cost(v, op, dim, size)
					if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
						t.Fatalf("Cost(%s, %s, %s, %g) = %v: not finite non-negative", v, op, dim, size, c)
					}
				}
			}
		}
	})
}
