// Package perfmodel implements the paper's performance-model component: the
// factorial benchmark plan of Table 3, empirical model building on the
// target machine, least-squares cubic cost models per collection variant and
// critical operation, and the analytic default models that ship with the
// framework so it can select variants without a benchmarking pass.
//
// A model answers cost_{op,V}(s): the averaged cost of critical operation op
// on variant V at collection size s, per cost dimension (execution time,
// bytes allocated, retained footprint). The selection engine combines these
// into the total-cost estimate TC_D(V) of Section 3.1.1.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// Op is a critical collection operation — one whose cost is linear or worse
// on at least one variant (Section 4.1.2).
type Op string

// The four critical operations of Table 3. Populate is charged per complete
// population of a collection to its maximum size; the others are charged per
// call at the collection's maximum size.
const (
	OpPopulate Op = "populate"
	OpContains Op = "contains"
	OpIterate  Op = "iterate"
	OpMiddle   Op = "middle"
)

// Ops lists all critical operations in Table 3 order.
func Ops() []Op { return []Op{OpPopulate, OpContains, OpIterate, OpMiddle} }

// Dimension is a performance cost dimension (Section 3.1.2).
type Dimension string

// The cost dimensions modeled in this reproduction. (The paper names energy
// as future work.)
const (
	DimTimeNS    Dimension = "time-ns"   // execution time, nanoseconds
	DimAllocB    Dimension = "alloc-b"   // bytes allocated during the operation
	DimFootprint Dimension = "footprint" // retained bytes at size s
)

// Dimensions lists all modeled cost dimensions, including the synthesized
// energy dimension (see energy.go).
func Dimensions() []Dimension {
	return []Dimension{DimTimeNS, DimAllocB, DimFootprint, DimEnergy}
}

// key identifies one fitted curve.
type key struct {
	Variant collections.VariantID
	Op      Op
	Dim     Dimension
}

// piece is one segment of a cost curve: poly applies for sizes <= upTo.
// The final piece of every curve has upTo = +Inf. vp, when non-empty, is the
// prediction-variance polynomial of the segment — StdErr(s)² as fitted by
// polyfit (see FitResult.VarPoly) or the sampling variance of a measured
// overlay band. An empty vp means the segment carries no uncertainty
// information and its cost is treated as exact.
type piece struct {
	upTo float64
	poly polyfit.Poly
	vp   polyfit.Poly
}

// curve is a piecewise-polynomial cost function. Non-adaptive variants use
// a single piece; adaptive variants get one polynomial per representation
// regime with the break at their transition threshold — a single cubic
// cannot follow the kinked cost function of an array→hash collection
// without inventing phantom costs on one side of the threshold.
type curve struct {
	pieces []piece
}

func (c curve) eval(s float64) float64 {
	for _, p := range c.pieces {
		if s <= p.upTo {
			return p.poly.Eval(s)
		}
	}
	if n := len(c.pieces); n > 0 {
		return c.pieces[n-1].poly.Eval(s)
	}
	return 0
}

// pieceAt returns the segment covering size s (the last one for s beyond
// every bound, matching eval), ok=false for an empty curve.
func (c curve) pieceAt(s float64) (piece, bool) {
	for _, p := range c.pieces {
		if s <= p.upTo {
			return p, true
		}
	}
	if n := len(c.pieces); n > 0 {
		return c.pieces[n-1], true
	}
	return piece{}, false
}

// Models holds the fitted cost curves for a set of collection variants.
// The zero value is empty; use Set/Cost to populate and query. Models are
// safe for concurrent reads after construction.
type Models struct {
	curves map[key]curve
	// fp, when non-nil, records the machine the curves were measured on
	// (empirically built or calibration-refined model sets; the analytic
	// defaults are machine-independent and carry none).
	fp *Fingerprint
}

// SetFingerprint attaches the machine identity the curves were measured on.
func (m *Models) SetFingerprint(f Fingerprint) { m.fp = &f }

// MeasuredOn returns the machine fingerprint attached to the model set,
// ok=false for machine-independent (analytic) models.
func (m *Models) MeasuredOn() (Fingerprint, bool) {
	if m.fp == nil {
		return Fingerprint{}, false
	}
	return *m.fp, true
}

// Clone returns an independent copy: mutating the clone (Set, Merge,
// OverlayMeasured) never affects the original, so a running engine's active
// models can be refined off to the side and hot-swapped in atomically.
func (m *Models) Clone() *Models {
	out := NewModels()
	for k, cv := range m.curves {
		pieces := make([]piece, len(cv.pieces))
		copy(pieces, cv.pieces)
		out.curves[k] = curve{pieces: pieces}
	}
	if m.fp != nil {
		fp := *m.fp
		out.fp = &fp
	}
	return out
}

// NewModels returns an empty model set.
func NewModels() *Models {
	return &Models{curves: make(map[key]curve)}
}

// Set stores a single-polynomial cost curve for (variant, op, dim),
// replacing any previous curve.
func (m *Models) Set(v collections.VariantID, op Op, dim Dimension, p polyfit.Poly) {
	m.curves[key{v, op, dim}] = curve{pieces: []piece{{upTo: math.Inf(1), poly: p}}}
}

// SetWithVar stores a single-polynomial cost curve together with its
// prediction-variance polynomial (StdErr² as a function of size, from
// polyfit.FitResult.VarPoly), enabling CostSE/CostCI on the curve.
func (m *Models) SetWithVar(v collections.VariantID, op Op, dim Dimension, p, variance polyfit.Poly) {
	m.curves[key{v, op, dim}] = curve{pieces: []piece{{upTo: math.Inf(1), poly: p, vp: variance}}}
}

// SetPiecewise stores a two-regime cost curve: below applies for sizes up
// to threshold, above beyond it. Used for the adaptive variants, whose cost
// functions kink at the representation transition.
func (m *Models) SetPiecewise(v collections.VariantID, op Op, dim Dimension, threshold float64, below, above polyfit.Poly) {
	m.curves[key{v, op, dim}] = curve{pieces: []piece{
		{upTo: threshold, poly: below},
		{upTo: math.Inf(1), poly: above},
	}}
}

// SetPiecewiseWithVar is SetPiecewise with a prediction-variance polynomial
// per regime.
func (m *Models) SetPiecewiseWithVar(v collections.VariantID, op Op, dim Dimension, threshold float64, below, belowVar, above, aboveVar polyfit.Poly) {
	m.curves[key{v, op, dim}] = curve{pieces: []piece{
		{upTo: threshold, poly: below, vp: belowVar},
		{upTo: math.Inf(1), poly: above, vp: aboveVar},
	}}
}

// Has reports whether a curve exists for (variant, op, dim).
func (m *Models) Has(v collections.VariantID, op Op, dim Dimension) bool {
	_, ok := m.curves[key{v, op, dim}]
	return ok
}

// Cost evaluates cost_{op,V}(size) on dimension dim. Negative evaluations
// (possible near the origin of a least-squares cubic) are clamped to zero.
// Querying a missing curve panics: the engine must never silently compare a
// modeled variant with an unmodeled one.
func (m *Models) Cost(v collections.VariantID, op Op, dim Dimension, size float64) float64 {
	cv, ok := m.curves[key{v, op, dim}]
	if !ok {
		panic(fmt.Sprintf("perfmodel: no curve for %s/%s/%s", v, op, dim))
	}
	c := cv.eval(size)
	if c < 0 {
		return 0
	}
	return c
}

// CostSE returns the clamped cost estimate together with its standard error
// at the given size. ok is false when the covering segment carries no
// variance information (analytic defaults, merged curves), in which case the
// cost must be treated as exact. Like Cost, it panics on a missing curve.
func (m *Models) CostSE(v collections.VariantID, op Op, dim Dimension, size float64) (cost, se float64, ok bool) {
	cv, found := m.curves[key{v, op, dim}]
	if !found {
		panic(fmt.Sprintf("perfmodel: no curve for %s/%s/%s", v, op, dim))
	}
	cost = cv.eval(size)
	if cost < 0 {
		cost = 0
	}
	p, found := cv.pieceAt(size)
	if !found || len(p.vp.Coeffs) == 0 {
		return cost, 0, false
	}
	variance := p.vp.Eval(size)
	if variance < 0 || math.IsNaN(variance) {
		variance = 0
	}
	return cost, math.Sqrt(variance), true
}

// CostCI returns the confidence interval Cost ± z·StdErr at the given size,
// both bounds clamped to ≥ 0 like Cost itself. A segment without variance
// information yields a zero-width interval at the point estimate, so curves
// that predate uncertainty tracking never widen a decision.
func (m *Models) CostCI(v collections.VariantID, op Op, dim Dimension, size, z float64) (lo, hi float64) {
	cost, se, ok := m.CostSE(v, op, dim, size)
	if !ok || se == 0 || z <= 0 {
		return cost, cost
	}
	lo, hi = cost-z*se, cost+z*se
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	return lo, hi
}

// Curve returns the stored polynomial for (variant, op, dim) when it is a
// single-piece curve; piecewise curves report ok = false (use Cost or
// CurveString for those).
func (m *Models) Curve(v collections.VariantID, op Op, dim Dimension) (polyfit.Poly, bool) {
	cv, ok := m.curves[key{v, op, dim}]
	if !ok || len(cv.pieces) != 1 {
		return polyfit.Poly{}, false
	}
	return cv.pieces[0].poly, true
}

// CurveString renders the stored curve, piecewise or not.
func (m *Models) CurveString(v collections.VariantID, op Op, dim Dimension) (string, bool) {
	cv, ok := m.curves[key{v, op, dim}]
	if !ok {
		return "", false
	}
	if len(cv.pieces) == 1 {
		return cv.pieces[0].poly.String(), true
	}
	parts := make([]string, len(cv.pieces))
	for i, p := range cv.pieces {
		if math.IsInf(p.upTo, 1) {
			parts[i] = fmt.Sprintf("x>prev: %s", p.poly)
		} else {
			parts[i] = fmt.Sprintf("x<=%g: %s", p.upTo, p.poly)
		}
	}
	return strings.Join(parts, " | "), true
}

// Variants returns the sorted list of variant IDs with at least one curve.
func (m *Models) Variants() []collections.VariantID {
	seen := make(map[collections.VariantID]bool)
	for k := range m.curves {
		seen[k.Variant] = true
	}
	out := make([]collections.VariantID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of stored curves.
func (m *Models) Len() int { return len(m.curves) }

// Merge copies every curve of other into m, overwriting duplicates.
func (m *Models) Merge(other *Models) {
	for k, p := range other.curves {
		m.curves[k] = p
	}
}

// combine builds f(a, b) piecewise, merging the two curves' breakpoints.
// Variance information does not survive combination: f is an arbitrary
// polynomial map with no error-propagation rule, so combined curves (the
// synthesized energy dimension) report no uncertainty.
func combine(a, b curve, f func(pa, pb polyfit.Poly) polyfit.Poly) curve {
	bounds := map[float64]bool{}
	for _, p := range a.pieces {
		bounds[p.upTo] = true
	}
	for _, p := range b.pieces {
		bounds[p.upTo] = true
	}
	cuts := make([]float64, 0, len(bounds))
	for u := range bounds {
		cuts = append(cuts, u)
	}
	sort.Float64s(cuts)
	segAt := func(c curve, x float64) polyfit.Poly {
		for _, p := range c.pieces {
			if x <= p.upTo {
				return p.poly
			}
		}
		return c.pieces[len(c.pieces)-1].poly
	}
	out := curve{pieces: make([]piece, 0, len(cuts))}
	for _, u := range cuts {
		// Pick a representative x inside this segment.
		x := u
		if math.IsInf(u, 1) {
			x = math.MaxFloat64
		}
		out.pieces = append(out.pieces, piece{upTo: u, poly: f(segAt(a, x), segAt(b, x))})
	}
	return out
}
