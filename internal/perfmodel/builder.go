package perfmodel

import (
	"math/rand"
	"testing"

	"repro/internal/collections"
	"repro/internal/obs"
	"repro/internal/polyfit"
)

// This file is the empirical model builder of Section 4.1: it measures every
// collection variant under every (critical operation × size) cell of the
// factorial plan and fits the cost polynomials. It plays the role JMH plays
// in the paper, using testing.Benchmark for steady-state timing and
// allocation profiling (ns/op and B/op).
//
// The driver is generic: it measures whatever collections.BenchTarget
// adapters the catalog hands it, so a user-registered variant is benchmarked
// by the same code path as the builtins (BuildLists/BuildSets/BuildMaps are
// thin projections over the catalog's default candidates).

// Builder runs the benchmark plan and produces Models.
type Builder struct {
	Plan Plan
	// Progress, if non-nil, receives a line per completed (variant, op)
	// pair — cmd/perfmodel wires this to stderr.
	Progress func(variant collections.VariantID, op Op)
	// Sink, if non-nil, receives an obs.BenchmarkProgress event per
	// completed (variant, op) pair with done/total counts.
	Sink obs.Sink
	// rng drives the uniform data distribution of Table 3.
	seed int64
	// progress counters across one Build run.
	done, total int
}

// NewBuilder returns a Builder over the given plan.
func NewBuilder(plan Plan) *Builder { return &Builder{Plan: plan, seed: 1} }

// sample is one measured cell of the factorial plan.
type sample struct {
	size  int
	ns    float64 // time per op (populate: per full population)
	alloc float64 // bytes allocated per op
}

// fit fits one dimension of a sample series with GCV-selected ridge
// regularization, so the stored curve carries its prediction variance.
func (b *Builder) fit(samples []sample, pick func(sample) float64) (polyfit.FitResult, error) {
	s := polyfit.NewSamples(len(samples))
	for _, sm := range samples {
		s.Add(float64(sm.size), pick(sm))
	}
	return polyfit.FitGCV(s, b.Plan.Degree)
}

// keysFor returns n distinct uniformly shuffled int keys, plus a probe set
// mixing present and absent keys (the uniform distribution of Table 3).
func keysFor(n int, seed int64) (keys, probes []int) {
	r := rand.New(rand.NewSource(seed))
	keys = r.Perm(n * 2)[:n] // values in [0, 2n): half the domain present
	probes = make([]int, 256)
	for i := range probes {
		probes[i] = r.Intn(n * 2)
	}
	return keys, probes
}

// benchNs runs fn under testing.Benchmark with allocation reporting and
// returns ns/op and B/op. Warm-up iterations run first, unmeasured
// (Section 4.1.2 methodology).
func (b *Builder) bench(warm func(), fn func(bi *testing.B)) (ns, alloc float64) {
	for i := 0; i < b.Plan.WarmupIters; i++ {
		warm()
	}
	res := testing.Benchmark(func(bi *testing.B) {
		bi.ReportAllocs()
		fn(bi)
	})
	return float64(res.NsPerOp()), float64(res.AllocedBytesPerOp())
}

// Build measures the given benchmark targets and returns their models
// (without the synthesized energy dimension; see BuildAll).
func (b *Builder) Build(targets []collections.BenchTarget) (*Models, error) {
	b.done, b.total = 0, len(targets)*len(Ops())
	m := NewModels()
	for _, t := range targets {
		if err := b.buildTarget(m, t); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// buildTarget measures one variant across the factorial plan through its
// catalog bench adapter.
func (b *Builder) buildTarget(m *Models, t collections.BenchTarget) error {
	all := map[Op][]sample{}
	foot := make([]sample, 0, len(b.Plan.Sizes))
	for _, size := range b.Plan.Sizes {
		keys, probes := keysFor(size, b.seed)

		// populate: per full population to size (the adapter populates).
		ns, alloc := b.bench(func() { t.Adapter(keys) }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				t.Adapter(keys)
			}
		})
		all[OpPopulate] = append(all[OpPopulate], sample{size, ns, alloc})

		h := t.Adapter(keys)
		// contains: per call at size, probing present and absent keys.
		ns, alloc = b.bench(func() { h.Contains(probes[0]) }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				h.Contains(probes[i%len(probes)])
			}
		})
		all[OpContains] = append(all[OpContains], sample{size, ns, alloc})

		// iterate: per full traversal at size.
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				h.Iterate()
			}
		})
		all[OpIterate] = append(all[OpIterate], sample{size, ns, alloc})

		// middle: the abstraction's size-preserving middle mutation.
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				h.Middle()
			}
		})
		all[OpMiddle] = append(all[OpMiddle], sample{size, ns, alloc})

		if fp, ok := h.Footprint(); ok {
			foot = append(foot, sample{size, float64(fp), 0})
		}
	}
	return b.store(m, t.ID, all, foot)
}

// BuildLists measures every default list candidate and returns their models.
func (b *Builder) BuildLists() (*Models, error) {
	return b.Build(collections.BenchTargets(collections.ListAbstraction))
}

// BuildSets measures every default set candidate and returns their models.
func (b *Builder) BuildSets() (*Models, error) {
	return b.Build(collections.BenchTargets(collections.SetAbstraction))
}

// BuildMaps measures every default map candidate and returns their models.
func (b *Builder) BuildMaps() (*Models, error) {
	return b.Build(collections.BenchTargets(collections.MapAbstraction))
}

// fitSamples fits one dimension of a sample series; for adaptive variants
// it fits the two representation regimes separately (their cost functions
// kink at the transition threshold), falling back to a single fit when a
// regime has too few samples.
func (b *Builder) fitSamples(m *Models, id collections.VariantID, op Op, dim Dimension, samples []sample, pick func(sample) float64) error {
	if collections.IsAdaptive(id) {
		thr := float64(collections.AdaptiveThresholdOf(id))
		var below, above []sample
		for _, s := range samples {
			if float64(s.size) <= thr {
				below = append(below, s)
			} else {
				above = append(above, s)
			}
		}
		if len(below) >= 2 && len(above) >= 2 {
			fitSeg := func(seg []sample) (polyfit.FitResult, error) {
				degree := b.Plan.Degree
				if degree > len(seg)-1 {
					degree = len(seg) - 1
				}
				s := polyfit.NewSamples(len(seg))
				for _, sm := range seg {
					s.Add(float64(sm.size), pick(sm))
				}
				return polyfit.FitGCV(s, degree)
			}
			pb, err := fitSeg(below)
			if err != nil {
				return err
			}
			pa, err := fitSeg(above)
			if err != nil {
				return err
			}
			m.SetPiecewiseWithVar(id, op, dim, thr, pb.Poly, pb.VarPoly(), pa.Poly, pa.VarPoly())
			return nil
		}
	}
	r, err := b.fit(samples, pick)
	if err != nil {
		return err
	}
	m.SetWithVar(id, op, dim, r.Poly, r.VarPoly())
	return nil
}

// store fits and records the curves of one variant.
func (b *Builder) store(m *Models, id collections.VariantID, all map[Op][]sample, foot []sample) error {
	for op, samples := range all {
		if err := b.fitSamples(m, id, op, DimTimeNS, samples, func(s sample) float64 { return s.ns }); err != nil {
			return err
		}
		if err := b.fitSamples(m, id, op, DimAllocB, samples, func(s sample) float64 { return s.alloc }); err != nil {
			return err
		}
		b.done++
		if b.Progress != nil {
			b.Progress(id, op)
		}
		if b.Sink != nil {
			b.Sink.Emit(obs.BenchmarkProgress{
				Variant: string(id), Op: string(op), Done: b.done, Total: b.total,
			})
		}
	}
	if len(foot) > 0 {
		for _, op := range b.Plan.Ops {
			if err := b.fitSamples(m, id, op, DimFootprint, foot, func(s sample) float64 { return s.ns }); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildAll measures every default candidate of every abstraction and returns
// the merged models with the synthesized energy dimension.
func (b *Builder) BuildAll() (*Models, error) {
	targets := collections.BenchTargets(collections.ListAbstraction)
	targets = append(targets, collections.BenchTargets(collections.SetAbstraction)...)
	targets = append(targets, collections.BenchTargets(collections.MapAbstraction)...)
	m, err := b.Build(targets)
	if err != nil {
		return nil, err
	}
	SynthesizeEnergy(m)
	return m, nil
}
