package perfmodel

import (
	"math/rand"
	"testing"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// This file is the empirical model builder of Section 4.1: it measures every
// collection variant under every (critical operation × size) cell of the
// factorial plan and fits the cost polynomials. It plays the role JMH plays
// in the paper, using testing.Benchmark for steady-state timing and
// allocation profiling (ns/op and B/op).

// Builder runs the benchmark plan and produces Models.
type Builder struct {
	Plan Plan
	// Progress, if non-nil, receives a line per completed (variant, op)
	// pair — cmd/perfmodel wires this to stderr.
	Progress func(variant collections.VariantID, op Op)
	// rng drives the uniform data distribution of Table 3.
	seed int64
}

// NewBuilder returns a Builder over the given plan.
func NewBuilder(plan Plan) *Builder { return &Builder{Plan: plan, seed: 1} }

// sample is one measured cell of the factorial plan.
type sample struct {
	size  int
	ns    float64 // time per op (populate: per full population)
	alloc float64 // bytes allocated per op
}

// fitDim fits one dimension of a sample series.
func (b *Builder) fit(samples []sample, pick func(sample) float64) (polyfit.Poly, error) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s.size)
		ys[i] = pick(s)
	}
	return polyfit.Fit(xs, ys, b.Plan.Degree)
}

// keysFor returns n distinct uniformly shuffled int keys, plus a probe set
// mixing present and absent keys (the uniform distribution of Table 3).
func keysFor(n int, seed int64) (keys, probes []int) {
	r := rand.New(rand.NewSource(seed))
	keys = r.Perm(n * 2)[:n] // values in [0, 2n): half the domain present
	probes = make([]int, 256)
	for i := range probes {
		probes[i] = r.Intn(n * 2)
	}
	return keys, probes
}

// benchNs runs fn under testing.Benchmark with allocation reporting and
// returns ns/op and B/op. Warm-up iterations run first, unmeasured
// (Section 4.1.2 methodology).
func (b *Builder) bench(warm func(), fn func(bi *testing.B)) (ns, alloc float64) {
	for i := 0; i < b.Plan.WarmupIters; i++ {
		warm()
	}
	res := testing.Benchmark(func(bi *testing.B) {
		bi.ReportAllocs()
		fn(bi)
	})
	return float64(res.NsPerOp()), float64(res.AllocedBytesPerOp())
}

// BuildLists measures every list variant and returns their models.
func (b *Builder) BuildLists() (*Models, error) {
	m := NewModels()
	for _, variant := range collections.ListVariants[int]() {
		if err := b.buildList(m, variant); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (b *Builder) buildList(m *Models, variant collections.ListVariant[int]) error {
	type opSamples map[Op][]sample
	all := opSamples{}
	foot := make([]sample, 0, len(b.Plan.Sizes))
	for _, size := range b.Plan.Sizes {
		keys, probes := keysFor(size, b.seed)
		populate := func() collections.List[int] {
			l := variant.New(0)
			for _, k := range keys {
				l.Add(k)
			}
			return l
		}
		// populate: per full population to size.
		ns, alloc := b.bench(func() { populate() }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				populate()
			}
		})
		all[OpPopulate] = append(all[OpPopulate], sample{size, ns, alloc})

		l := populate()
		// contains: per call at size.
		ns, alloc = b.bench(func() { l.Contains(probes[0]) }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				l.Contains(probes[i%len(probes)])
			}
		})
		all[OpContains] = append(all[OpContains], sample{size, ns, alloc})

		// iterate: per full traversal at size.
		sink := 0
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				l.ForEach(func(v int) bool { sink += v; return true })
			}
		})
		_ = sink
		all[OpIterate] = append(all[OpIterate], sample{size, ns, alloc})

		// middle: insert + remove at the midpoint, size stays constant.
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			mid := l.Len() / 2
			for i := 0; i < bi.N; i++ {
				l.Insert(mid, -1)
				l.RemoveAt(mid)
			}
		})
		all[OpMiddle] = append(all[OpMiddle], sample{size, ns, alloc})

		if sz, ok := l.(collections.Sizer); ok {
			foot = append(foot, sample{size, float64(sz.FootprintBytes()), 0})
		}
	}
	return b.store(m, variant.ID, all, foot)
}

// BuildSets measures every set variant and returns their models.
func (b *Builder) BuildSets() (*Models, error) {
	m := NewModels()
	for _, variant := range collections.SetVariants[int]() {
		if err := b.buildSet(m, variant); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (b *Builder) buildSet(m *Models, variant collections.SetVariant[int]) error {
	all := map[Op][]sample{}
	foot := make([]sample, 0, len(b.Plan.Sizes))
	for _, size := range b.Plan.Sizes {
		keys, probes := keysFor(size, b.seed)
		populate := func() collections.Set[int] {
			s := variant.New(0)
			for _, k := range keys {
				s.Add(k)
			}
			return s
		}
		ns, alloc := b.bench(func() { populate() }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				populate()
			}
		})
		all[OpPopulate] = append(all[OpPopulate], sample{size, ns, alloc})

		s := populate()
		ns, alloc = b.bench(func() { s.Contains(probes[0]) }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				s.Contains(probes[i%len(probes)])
			}
		})
		all[OpContains] = append(all[OpContains], sample{size, ns, alloc})

		sink := 0
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				s.ForEach(func(v int) bool { sink += v; return true })
			}
		})
		_ = sink
		all[OpIterate] = append(all[OpIterate], sample{size, ns, alloc})

		// middle for sets: add + remove of a fresh element.
		fresh := size*2 + 1
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				s.Add(fresh)
				s.Remove(fresh)
			}
		})
		all[OpMiddle] = append(all[OpMiddle], sample{size, ns, alloc})

		if sz, ok := s.(collections.Sizer); ok {
			foot = append(foot, sample{size, float64(sz.FootprintBytes()), 0})
		}
	}
	return b.store(m, variant.ID, all, foot)
}

// BuildMaps measures every map variant and returns their models.
func (b *Builder) BuildMaps() (*Models, error) {
	m := NewModels()
	for _, variant := range collections.MapVariants[int, int]() {
		if err := b.buildMap(m, variant); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (b *Builder) buildMap(m *Models, variant collections.MapVariant[int, int]) error {
	all := map[Op][]sample{}
	foot := make([]sample, 0, len(b.Plan.Sizes))
	for _, size := range b.Plan.Sizes {
		keys, probes := keysFor(size, b.seed)
		populate := func() collections.Map[int, int] {
			mp := variant.New(0)
			for _, k := range keys {
				mp.Put(k, k)
			}
			return mp
		}
		ns, alloc := b.bench(func() { populate() }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				populate()
			}
		})
		all[OpPopulate] = append(all[OpPopulate], sample{size, ns, alloc})

		mp := populate()
		ns, alloc = b.bench(func() { mp.Get(probes[0]) }, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				mp.Get(probes[i%len(probes)])
			}
		})
		all[OpContains] = append(all[OpContains], sample{size, ns, alloc})

		sink := 0
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				mp.ForEach(func(_, v int) bool { sink += v; return true })
			}
		})
		_ = sink
		all[OpIterate] = append(all[OpIterate], sample{size, ns, alloc})

		fresh := size*2 + 1
		ns, alloc = b.bench(func() {}, func(bi *testing.B) {
			for i := 0; i < bi.N; i++ {
				mp.Put(fresh, fresh)
				mp.Remove(fresh)
			}
		})
		all[OpMiddle] = append(all[OpMiddle], sample{size, ns, alloc})

		if sz, ok := mp.(collections.Sizer); ok {
			foot = append(foot, sample{size, float64(sz.FootprintBytes()), 0})
		}
	}
	return b.store(m, variant.ID, all, foot)
}

// fitSamples fits one dimension of a sample series; for adaptive variants
// it fits the two representation regimes separately (their cost functions
// kink at the transition threshold), falling back to a single fit when a
// regime has too few samples.
func (b *Builder) fitSamples(m *Models, id collections.VariantID, op Op, dim Dimension, samples []sample, pick func(sample) float64) error {
	if collections.IsAdaptive(id) {
		thr := adaptiveThresholdOf(id)
		var below, above []sample
		for _, s := range samples {
			if float64(s.size) <= thr {
				below = append(below, s)
			} else {
				above = append(above, s)
			}
		}
		if len(below) >= 2 && len(above) >= 2 {
			fitSeg := func(seg []sample) (polyfit.Poly, error) {
				degree := b.Plan.Degree
				if degree > len(seg)-1 {
					degree = len(seg) - 1
				}
				xs := make([]float64, len(seg))
				ys := make([]float64, len(seg))
				for i, s := range seg {
					xs[i] = float64(s.size)
					ys[i] = pick(s)
				}
				return polyfit.Fit(xs, ys, degree)
			}
			pb, err := fitSeg(below)
			if err != nil {
				return err
			}
			pa, err := fitSeg(above)
			if err != nil {
				return err
			}
			m.SetPiecewise(id, op, dim, thr, pb, pa)
			return nil
		}
	}
	p, err := b.fit(samples, pick)
	if err != nil {
		return err
	}
	m.Set(id, op, dim, p)
	return nil
}

// store fits and records the curves of one variant.
func (b *Builder) store(m *Models, id collections.VariantID, all map[Op][]sample, foot []sample) error {
	for op, samples := range all {
		if err := b.fitSamples(m, id, op, DimTimeNS, samples, func(s sample) float64 { return s.ns }); err != nil {
			return err
		}
		if err := b.fitSamples(m, id, op, DimAllocB, samples, func(s sample) float64 { return s.alloc }); err != nil {
			return err
		}
		if b.Progress != nil {
			b.Progress(id, op)
		}
	}
	if len(foot) > 0 {
		for _, op := range b.Plan.Ops {
			if err := b.fitSamples(m, id, op, DimFootprint, foot, func(s sample) float64 { return s.ns }); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildAll measures lists, sets and maps and returns the merged models.
func (b *Builder) BuildAll() (*Models, error) {
	lists, err := b.BuildLists()
	if err != nil {
		return nil, err
	}
	sets, err := b.BuildSets()
	if err != nil {
		return nil, err
	}
	maps, err := b.BuildMaps()
	if err != nil {
		return nil, err
	}
	lists.Merge(sets)
	lists.Merge(maps)
	SynthesizeEnergy(lists)
	return lists, nil
}
