package perfmodel

import (
	"math"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// Energy is the cost dimension the paper names as future work (Section 7:
// "expand the performance model to other cost dimensions such as energy
// usage"). Direct energy measurement (RAPL counters, external meters — the
// instrumentation Hasan et al. used for the Java collection energy profiles
// the paper cites) is not available in this environment, so the dimension is
// *synthesized*: per-operation energy is modeled as execution time weighted
// by a data-structure power factor (pointer-chasing structures keep the
// memory subsystem busier per nanosecond than linear scans), plus an
// allocation term (each allocated byte costs GC work later). The synthesis
// preserves exactly what a selection rule needs: a consistent relative
// ordering of variants on the energy dimension.

// DimEnergy is the synthesized energy dimension, in nanojoule-equivalents.
const DimEnergy Dimension = "energy-nj"

// allocEnergyPerByte charges allocation-induced energy (allocator + GC).
const allocEnergyPerByte = 0.2

// defaultPowerFactor applies to variants without a specific entry.
const defaultPowerFactor = 1.1

// powerFactors maps variants to their relative power draw per unit time.
// Flat sequential scans are the 1.0 baseline; randomized pointer chasing
// stresses DRAM and caches hardest.
var powerFactors = map[collections.VariantID]float64{
	collections.ArrayListID:      1.0,
	collections.ArraySetID:       1.0,
	collections.ArrayMapID:       1.0,
	collections.SortedArraySetID: 1.0,
	collections.SortedArrayMapID: 1.0,

	collections.LinkedListID:    1.35,
	collections.HashSetID:       1.3,
	collections.HashMapID:       1.3,
	collections.LinkedHashSetID: 1.35,
	collections.LinkedHashMapID: 1.35,
	collections.AVLTreeSetID:    1.35,
	collections.AVLTreeMapID:    1.35,
	collections.SkipListSetID:   1.4,
	collections.SkipListMapID:   1.4,

	collections.OpenHashSetFastID: 1.08,
	collections.OpenHashMapFastID: 1.08,
	collections.OpenHashSetBalID:  1.1,
	collections.OpenHashMapBalID:  1.1,
	collections.OpenHashSetCmpID:  1.15,
	collections.OpenHashMapCmpID:  1.15,
	collections.CompactHashSetID:  1.12,
	collections.CompactHashMapID:  1.12,

	collections.HashArrayListID: 1.2,
	collections.AdaptiveListID:  1.1,
	collections.AdaptiveSetID:   1.05,
	collections.AdaptiveMapID:   1.05,
}

// PowerFactor returns the relative power draw of a variant.
func PowerFactor(v collections.VariantID) float64 {
	if f, ok := powerFactors[v]; ok {
		return f
	}
	return defaultPowerFactor
}

// SynthesizeEnergy derives the energy curves of every (variant, op) pair
// that has time and allocation curves:
//
//	energy = PowerFactor(V) · time + allocEnergyPerByte · alloc
//
// Piecewise curves (the adaptive variants') compose segment by segment.
// Both the default models and the machine-built models pass through this,
// so rules over DimEnergy (core.Renergy) work with either.
func SynthesizeEnergy(m *Models) {
	// Collect first: inserting while ranging over a map has unspecified
	// iteration behavior.
	type pending struct {
		k key
		c curve
	}
	var adds []pending
	for k, timeCurve := range m.curves {
		if k.Dim != DimTimeNS {
			continue
		}
		pf := PowerFactor(k.Variant)
		allocCurve, okA := m.curves[key{k.Variant, k.Op, DimAllocB}]
		if !okA {
			allocCurve = curve{pieces: []piece{{upTo: math.Inf(1)}}}
		}
		energy := combine(timeCurve, allocCurve, func(pt, pa polyfit.Poly) polyfit.Poly {
			return polyfit.Add(polyfit.Scale(pt, pf), polyfit.Scale(pa, allocEnergyPerByte))
		})
		adds = append(adds, pending{key{k.Variant, k.Op, DimEnergy}, energy})
	}
	for _, a := range adds {
		m.curves[a.k] = a.c
	}
}
