package perfmodel

import (
	"math"
	"testing"

	"repro/internal/collections"
)

func TestEnergyDimensionInDimensions(t *testing.T) {
	found := false
	for _, d := range Dimensions() {
		if d == DimEnergy {
			found = true
		}
	}
	if !found {
		t.Fatal("DimEnergy missing from Dimensions()")
	}
}

func TestDefaultIncludesEnergyCurves(t *testing.T) {
	m := Default()
	for _, info := range collections.AllVariantInfos() {
		for _, op := range Ops() {
			if !m.Has(info.ID, op, DimEnergy) {
				t.Errorf("missing energy curve %s/%s", info.ID, op)
			}
		}
	}
	for _, info := range collections.ExtensionVariantInfos() {
		for _, op := range Ops() {
			if !m.Has(info.ID, op, DimEnergy) {
				t.Errorf("missing extension energy curve %s/%s", info.ID, op)
			}
		}
	}
}

func TestEnergySynthesisFormula(t *testing.T) {
	m := Default()
	// energy = PowerFactor·time + 0.2·alloc, verified pointwise.
	for _, v := range []collections.VariantID{
		collections.HashSetID, collections.ArraySetID, collections.AVLTreeSetID,
	} {
		pf := PowerFactor(v)
		for _, s := range []float64{50, 500} {
			timeC := m.Cost(v, OpPopulate, DimTimeNS, s)
			allocC := m.Cost(v, OpPopulate, DimAllocB, s)
			want := pf*timeC + allocEnergyPerByte*allocC
			got := m.Cost(v, OpPopulate, DimEnergy, s)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Errorf("%s energy at %g = %g, want %g", v, s, got, want)
			}
		}
	}
}

func TestPowerFactorOrdering(t *testing.T) {
	// Pointer-chasing structures must draw more than flat arrays.
	if PowerFactor(collections.LinkedListID) <= PowerFactor(collections.ArrayListID) {
		t.Error("linked list power <= array list")
	}
	if PowerFactor(collections.HashSetID) <= PowerFactor(collections.OpenHashSetFastID) {
		t.Error("chained hash power <= open hash")
	}
	// Unknown variants get the default.
	if PowerFactor("bogus/variant") != defaultPowerFactor {
		t.Error("unknown variant did not get the default power factor")
	}
}

func TestDefaultCoversExtensionVariants(t *testing.T) {
	m := Default()
	for _, info := range collections.ExtensionVariantInfos() {
		for _, op := range Ops() {
			for _, dim := range Dimensions() {
				if !m.Has(info.ID, op, dim) {
					t.Errorf("missing extension curve %s/%s/%s", info.ID, op, dim)
				}
			}
		}
	}
}

func TestExtensionModelShapes(t *testing.T) {
	m := Default()
	// Tree lookups grow slower than array-set scans.
	avlSmall := m.Cost(collections.AVLTreeSetID, OpContains, DimTimeNS, 50)
	avlLarge := m.Cost(collections.AVLTreeSetID, OpContains, DimTimeNS, 1000)
	arrLarge := m.Cost(collections.ArraySetID, OpContains, DimTimeNS, 1000)
	if avlLarge >= arrLarge {
		t.Errorf("AVL contains at 1000 (%g) should beat ArraySet scan (%g)", avlLarge, arrLarge)
	}
	if avlLarge > 4*avlSmall {
		t.Errorf("AVL contains grows too fast: %g -> %g", avlSmall, avlLarge)
	}
	// Sorted array keeps array-level footprint.
	saFoot := m.Cost(collections.SortedArraySetID, OpPopulate, DimFootprint, 500)
	avlFoot := m.Cost(collections.AVLTreeSetID, OpPopulate, DimFootprint, 500)
	if saFoot >= avlFoot {
		t.Errorf("sorted array footprint (%g) should undercut AVL (%g)", saFoot, avlFoot)
	}
	// Sync wrapper costs more time than its bare inner preset.
	syncC := m.Cost(collections.SyncSetID, OpContains, DimTimeNS, 500)
	bareC := m.Cost(collections.OpenHashSetBalID, OpContains, DimTimeNS, 500)
	if syncC <= bareC {
		t.Errorf("sync contains (%g) should cost more than bare (%g)", syncC, bareC)
	}
}

func TestBuilderModelsGetEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("builder benchmarks are slow")
	}
	plan := QuickPlan()
	plan.Sizes = []int{10, 50, 120}
	m, err := NewBuilder(plan).BuildLists()
	if err != nil {
		t.Fatal(err)
	}
	SynthesizeEnergy(m)
	for _, v := range collections.ListVariants[int]() {
		if !m.Has(v.ID, OpContains, DimEnergy) {
			t.Errorf("measured models missing energy curve for %s", v.ID)
		}
	}
}
