package perfmodel

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

func TestSetPiecewiseEval(t *testing.T) {
	m := NewModels()
	below := polyfit.Poly{Coeffs: []float64{10, 1}}  // 10 + x
	above := polyfit.Poly{Coeffs: []float64{100, 2}} // 100 + 2x
	m.SetPiecewise(collections.AdaptiveSetID, OpContains, DimTimeNS, 40, below, above)
	if got := m.Cost(collections.AdaptiveSetID, OpContains, DimTimeNS, 20); got != 30 {
		t.Fatalf("below-threshold Cost = %g, want 30", got)
	}
	if got := m.Cost(collections.AdaptiveSetID, OpContains, DimTimeNS, 40); got != 50 {
		t.Fatalf("at-threshold Cost = %g, want 50 (inclusive below)", got)
	}
	if got := m.Cost(collections.AdaptiveSetID, OpContains, DimTimeNS, 100); got != 300 {
		t.Fatalf("above-threshold Cost = %g, want 300", got)
	}
}

func TestCurveSingleVsPiecewise(t *testing.T) {
	m := NewModels()
	m.Set(collections.ArraySetID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1}})
	m.SetPiecewise(collections.AdaptiveSetID, OpContains, DimTimeNS, 40,
		polyfit.Poly{Coeffs: []float64{1}}, polyfit.Poly{Coeffs: []float64{2}})
	if _, ok := m.Curve(collections.ArraySetID, OpContains, DimTimeNS); !ok {
		t.Error("single-piece Curve not retrievable")
	}
	if _, ok := m.Curve(collections.AdaptiveSetID, OpContains, DimTimeNS); ok {
		t.Error("piecewise curve wrongly exposed as a single polynomial")
	}
	s, ok := m.CurveString(collections.AdaptiveSetID, OpContains, DimTimeNS)
	if !ok || !strings.Contains(s, "x<=40") {
		t.Errorf("CurveString = %q, %v", s, ok)
	}
	if _, ok := m.CurveString(collections.HashSetID, OpContains, DimTimeNS); ok {
		t.Error("CurveString for missing curve reported ok")
	}
}

func TestDefaultAdaptiveCurvesArePiecewise(t *testing.T) {
	m := Default()
	for _, id := range []collections.VariantID{
		collections.AdaptiveListID, collections.AdaptiveSetID, collections.AdaptiveMapID,
	} {
		if _, single := m.Curve(id, OpContains, DimTimeNS); single {
			t.Errorf("%s contains curve is not piecewise", id)
		}
	}
	// Non-adaptive variants stay single-polynomial.
	if _, single := m.Curve(collections.ArrayListID, OpContains, DimTimeNS); !single {
		t.Error("ArrayList curve became piecewise")
	}
}

func TestPiecewiseDefaultsTrackAnalyticBelowThreshold(t *testing.T) {
	// The motivating bug: a single cubic invented phantom adaptive costs
	// below the threshold. The piecewise defaults must track the analytic
	// function on both sides.
	m := Default()
	for _, s := range []float64{10, 30, 60, 79, 81, 150, 500} {
		want, ok := AnalyticCost(collections.AdaptiveListID, OpContains, DimTimeNS, s)
		if !ok {
			t.Fatal("no analytic cost")
		}
		got := m.Cost(collections.AdaptiveListID, OpContains, DimTimeNS, s)
		if math.Abs(got-want) > 0.10*want+2 {
			t.Errorf("adaptive contains at %g: fitted %g vs analytic %g", s, got, want)
		}
	}
}

func TestAdaptiveBeatsHashArrayOnMixedH2Workload(t *testing.T) {
	// Regression for the h2 selection: with piecewise models, the mixed
	// small/large lookup-heavy cursor workload must cost less on
	// AdaptiveList than on HashArrayList (small instances avoid the bag).
	m := Default()
	totalAdaptive, totalHashArray := 0.0, 0.0
	charge := func(size, probes float64) {
		totalAdaptive += m.Cost(collections.AdaptiveListID, OpPopulate, DimTimeNS, size) +
			probes*m.Cost(collections.AdaptiveListID, OpContains, DimTimeNS, size)
		totalHashArray += m.Cost(collections.HashArrayListID, OpPopulate, DimTimeNS, size) +
			probes*m.Cost(collections.HashArrayListID, OpContains, DimTimeNS, size)
	}
	for i := 0; i < 90; i++ {
		charge(16, 58)
	}
	for i := 0; i < 10; i++ {
		charge(200, 610)
	}
	if totalAdaptive >= totalHashArray {
		t.Fatalf("adaptive %g not cheaper than hasharray %g on mixed workload",
			totalAdaptive, totalHashArray)
	}
}

func TestJSONRoundTripPiecewise(t *testing.T) {
	m := NewModels()
	m.SetPiecewise(collections.AdaptiveSetID, OpContains, DimTimeNS, 40,
		polyfit.Poly{Coeffs: []float64{10, 1}}, polyfit.Poly{Coeffs: []float64{100, 2}})
	m.Set(collections.HashSetID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{5}})
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"upTo": 40`) {
		t.Errorf("serialized form missing piece bound:\n%s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{20, 40, 41, 500} {
		a := m.Cost(collections.AdaptiveSetID, OpContains, DimTimeNS, s)
		b := back.Cost(collections.AdaptiveSetID, OpContains, DimTimeNS, s)
		if a != b {
			t.Fatalf("round trip diverges at %g: %g vs %g", s, a, b)
		}
	}
}

func TestJSONRejectsEmptyPieces(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString(`{"curves":[{"variant":"x","op":"y","dimension":"z","pieces":[]}]}`)); err == nil {
		t.Error("curve without pieces accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"curves":[{"variant":"x","op":"y","dimension":"z","pieces":[{"coeffs":[]}]}]}`)); err == nil {
		t.Error("piece without coefficients accepted")
	}
}

func TestEnergySynthesisPiecewise(t *testing.T) {
	// Energy curves of adaptive variants must follow the piecewise time
	// and alloc curves on both sides of the threshold.
	m := Default()
	pf := PowerFactor(collections.AdaptiveSetID)
	for _, s := range []float64{20, 200} {
		timeC := m.Cost(collections.AdaptiveSetID, OpPopulate, DimTimeNS, s)
		allocC := m.Cost(collections.AdaptiveSetID, OpPopulate, DimAllocB, s)
		want := pf*timeC + allocEnergyPerByte*allocC
		got := m.Cost(collections.AdaptiveSetID, OpPopulate, DimEnergy, s)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("adaptive energy at %g = %g, want %g", s, got, want)
		}
	}
}

func TestAdaptiveThresholdOf(t *testing.T) {
	cases := map[collections.VariantID]int64{
		collections.AdaptiveListID: 80,
		collections.AdaptiveSetID:  40,
		collections.AdaptiveMapID:  50,
		collections.ArrayListID:    0,
	}
	for id, want := range cases {
		if got := collections.AdaptiveThresholdOf(id); got != want {
			t.Errorf("AdaptiveThresholdOf(%s) = %d, want %d", id, got, want)
		}
	}
}
