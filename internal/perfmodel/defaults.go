package perfmodel

import (
	"fmt"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// This file fits the analytic default models that ship with the framework.
// The cost functions themselves live on the variant catalog
// (collections.Entry.Analytic, see collections/catalog_models.go): the paper
// builds its models by benchmarking on the target machine (Section 4.1) and
// this repository supports that too (builder.go, cmd/perfmodel), but
// hardware-independent defaults keep the selection engine deterministic in
// tests and examples. Default samples each catalog entry's analytic
// functions at the Table 3 plan sizes and fits them with the same
// least-squares cubic machinery the empirical builder uses, so default and
// machine-built models are interchangeable everywhere — including for
// user-registered variants carrying a collections.WithAnalytic model.

// fitAnalytic samples fn at the plan sizes and fits the plan-degree
// polynomial, panicking on failure (defaults are static data; a failure is
// a programming error).
func fitAnalytic(fn collections.CostFn, plan Plan) polyfit.Poly {
	xs := make([]float64, len(plan.Sizes))
	ys := make([]float64, len(plan.Sizes))
	for i, s := range plan.Sizes {
		xs[i] = float64(s)
		ys[i] = fn(float64(s))
	}
	p, err := polyfit.Fit(xs, ys, plan.Degree)
	if err != nil {
		panic(fmt.Sprintf("perfmodel: default fit failed: %v", err))
	}
	return p
}

// fitSubset fits fn over the plan sizes selected by keep, degrading the
// polynomial degree when too few points remain.
func fitSubset(fn collections.CostFn, plan Plan, keep func(int) bool) polyfit.Poly {
	var xs, ys []float64
	for _, s := range plan.Sizes {
		if keep(s) {
			xs = append(xs, float64(s))
			ys = append(ys, fn(float64(s)))
		}
	}
	degree := plan.Degree
	if degree > len(xs)-1 {
		degree = len(xs) - 1
	}
	if degree < 0 {
		panic("perfmodel: no plan sizes in fit segment")
	}
	p, err := polyfit.Fit(xs, ys, degree)
	if err != nil {
		panic(fmt.Sprintf("perfmodel: segment fit failed: %v", err))
	}
	return p
}

// setCurves stores fn's fit for one (variant, op, dim): a single fit for
// ordinary variants, a two-regime piecewise fit at the transition threshold
// for adaptive ones.
func setCurves(m *Models, id collections.VariantID, op Op, dim Dimension, fn collections.CostFn, plan Plan) {
	if !collections.IsAdaptive(id) {
		m.Set(id, op, dim, fitAnalytic(fn, plan))
		return
	}
	thr := float64(collections.AdaptiveThresholdOf(id))
	below := fitSubset(fn, plan, func(s int) bool { return float64(s) <= thr })
	above := fitSubset(fn, plan, func(s int) bool { return float64(s) > thr })
	m.SetPiecewise(id, op, dim, thr, below, above)
}

// Default returns the analytic default models for every catalog variant
// carrying an analytic model, fitted over the Table 3 plan sizes with cubic
// polynomials. The result is freshly built on each call; callers typically
// build it once and share it (reads are concurrency-safe).
func Default() *Models {
	return DefaultDegree(DefaultPlan().Degree)
}

// DefaultDegree builds the analytic default models with fits of the given
// polynomial degree instead of the paper's cubic. Lower degrees smear the
// piecewise adaptive-variant curves badly — the model-degree ablation bench
// quantifies what that costs in selection quality.
func DefaultDegree(degree int) *Models {
	plan := DefaultPlan()
	plan.Degree = degree
	// Densify the sample grid below the adaptive thresholds: with only
	// two Table 3 sizes under 80, a cubic fitted to a piecewise curve
	// sags toward zero there and invents phantom advantages for the
	// adaptive variants on tiny-collection sites.
	small := []int{20, 30, 40, 60, 70, 80}
	plan.Sizes = append(append([]int(nil), small...), plan.Sizes...)
	m := NewModels()
	zero := func(float64) float64 { return 0 }
	for _, e := range collections.Entries() {
		av := e.Analytic
		if av == nil {
			continue
		}
		id := e.Info.ID
		for op, fn := range av.Time {
			setCurves(m, id, Op(op), DimTimeNS, fn, plan)
		}
		setCurves(m, id, OpPopulate, DimAllocB, av.AllocPopulate, plan)
		setCurves(m, id, OpMiddle, DimAllocB, av.AllocMiddle, plan)
		setCurves(m, id, OpContains, DimAllocB, zero, plan)
		setCurves(m, id, OpIterate, DimAllocB, zero, plan)
		for _, op := range Ops() {
			setCurves(m, id, op, DimFootprint, av.Footprint, plan)
		}
	}
	SynthesizeEnergy(m)
	return m
}

// AnalyticCost evaluates the raw (un-fitted) analytic cost function for a
// variant, used by tests to bound the fit error of Default.
func AnalyticCost(v collections.VariantID, op Op, dim Dimension, s float64) (float64, bool) {
	e, ok := collections.EntryOf(v)
	if !ok || e.Analytic == nil {
		return 0, false
	}
	av := e.Analytic
	switch dim {
	case DimTimeNS:
		if fn, ok := av.Time[string(op)]; ok {
			return fn(s), true
		}
	case DimAllocB:
		switch op {
		case OpPopulate:
			return av.AllocPopulate(s), true
		case OpMiddle:
			return av.AllocMiddle(s), true
		default:
			return 0, true
		}
	case DimFootprint:
		return av.Footprint(s), true
	}
	return 0, false
}
