package perfmodel

import (
	"fmt"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// This file defines the analytic default models that ship with the
// framework. The paper builds its models by benchmarking on the target
// machine (Section 4.1); this repository supports that too (see builder.go
// and cmd/perfmodel), but also provides hardware-independent defaults so the
// selection engine behaves deterministically in tests and examples.
//
// Each variant gets a per-operation analytic cost function derived from its
// data-structure mechanics:
//
//   - array scans cost a small constant per element (contiguous memory);
//   - linked traversals cost ~3-4x that (pointer chasing);
//   - chained hash operations pay an entry allocation on insert and a
//     near-constant probe on lookup;
//   - open addressing pays no per-entry allocation; its probe cost grows
//     with the load-factor preset, and the high-load preset additionally
//     degrades superlinearly with size (long probe chains interact badly
//     with caches as tables outgrow them) — the effect behind the paper's
//     multi-step Ralloc switching in Figure 5d/e;
//   - adaptive variants follow their array form below the transition
//     threshold and their hash form above it, plus a one-time transition
//     cost (Figure 3).
//
// The functions are sampled at the Table 3 plan sizes and fitted with the
// same least-squares cubic machinery the empirical builder uses, so default
// and machine-built models are interchangeable everywhere.

// costFn computes an analytic cost at collection size s.
type costFn func(s float64) float64

// analyticVariant bundles the cost functions of one variant.
type analyticVariant struct {
	id collections.VariantID
	// time[op] in nanoseconds. populate covers the whole population to
	// size s; the others are per call at size s.
	time map[Op]costFn
	// allocPopulate is the bytes allocated while populating to size s
	// (including growth churn). Lookup-like ops allocate nothing.
	allocPopulate costFn
	// allocMiddle is bytes allocated per middle op (usually 0).
	allocMiddle costFn
	// footprint is retained bytes at size s.
	footprint costFn
}

func lin(a, b float64) costFn { return func(s float64) float64 { return a + b*s } }

func quad(a, b, c float64) costFn {
	return func(s float64) float64 { return a + b*s + c*s*s }
}

// piecewise returns below(s) for s <= threshold and above(s) + once for
// larger sizes (once being the amortized transition cost charge).
func piecewise(threshold float64, below, above costFn, once costFn) costFn {
	return func(s float64) float64 {
		if s <= threshold {
			return below(s)
		}
		return above(s) + once(s)
	}
}

func zero(float64) float64 { return 0 }

// analyticLists returns the analytic models of the list variants.
func analyticLists() []analyticVariant {
	array := analyticVariant{
		id: collections.ArrayListID,
		time: map[Op]costFn{
			OpPopulate: lin(20, 4),
			OpContains: lin(4, 0.45),
			OpIterate:  lin(5, 0.35),
			OpMiddle:   lin(15, 0.2),
		},
		allocPopulate: lin(48, 16), // append growth churn ~2x final 8B/elem
		allocMiddle:   zero,
		footprint:     lin(48, 10),
	}
	linked := analyticVariant{
		id: collections.LinkedListID,
		time: map[Op]costFn{
			OpPopulate: lin(30, 14),
			OpContains: lin(8, 1.6),
			OpIterate:  lin(8, 1.3),
			OpMiddle:   lin(25, 0.9),
		},
		allocPopulate: lin(32, 40), // one node allocation per element
		allocMiddle:   lin(40, 0),
		footprint:     lin(48, 40),
	}
	hashArray := analyticVariant{
		id: collections.HashArrayListID,
		time: map[Op]costFn{
			// The bag insert dominates population: a hash-map write per
			// element (~55ns on unboxed ints) against ~4ns for a plain
			// append. Honest constants here are what keeps the framework
			// from switching when the lookup volume cannot amortize the
			// bag (Go scans are far cheaper than JDK Integer scans).
			OpPopulate: lin(60, 55), // array append + bag insert
			OpContains: lin(9, 0.002),
			OpIterate:  lin(5, 0.35),
			// NOTE: modeled identical to ArrayList. This reproduces the
			// limitation the paper documents in the Figure 6 discussion:
			// the model assumes positional removal costs the same on both
			// variants, while the real implementation also updates the
			// hash bag — causing the known wrong pick in the
			// "search and remove" phase.
			OpMiddle: lin(15, 0.2),
		},
		allocPopulate: lin(96, 64), // array churn + bag entries
		allocMiddle:   zero,
		footprint:     lin(96, 40),
	}
	thr := float64(collections.DefaultListThreshold)
	adaptive := analyticVariant{
		id: collections.AdaptiveListID,
		time: map[Op]costFn{
			OpPopulate: piecewise(thr,
				lin(20, 4),
				func(s float64) float64 { return 20 + 4*thr + 55*(s-thr) },
				func(float64) float64 { return 45 * thr }, // bag build at transition
			),
			OpContains: piecewise(thr, lin(4, 0.45), lin(9, 0.002), zero),
			OpIterate:  lin(5, 0.35),
			OpMiddle:   lin(15, 0.2),
		},
		allocPopulate: piecewise(thr,
			lin(48, 16),
			func(s float64) float64 { return 48 + 16*thr + 64*(s-thr) },
			func(float64) float64 { return 48 * thr },
		),
		allocMiddle: zero,
		footprint:   piecewise(thr, lin(48, 10), lin(96, 40), zero),
	}
	return []analyticVariant{array, linked, hashArray, adaptive}
}

// analyticSets returns the analytic models of the set variants. Map models
// reuse these shapes with slightly higher constants (two parallel arrays /
// larger entries), see analyticMaps.
func analyticSets() []analyticVariant {
	chained := analyticVariant{
		id: collections.HashSetID,
		time: map[Op]costFn{
			OpPopulate: lin(60, 32), // entry box allocation dominates
			OpContains: lin(11, 0.003),
			OpIterate:  lin(10, 1.1),
			OpMiddle:   lin(45, 0.004),
		},
		allocPopulate: lin(128, 64), // 48B boxes + table churn
		allocMiddle:   lin(48, 0),
		footprint:     lin(96, 59), // boxes + bucket table
	}
	openFast := analyticVariant{
		id: collections.OpenHashSetFastID,
		time: map[Op]costFn{
			OpPopulate: quad(50, 15, 0.004),
			OpContains: lin(6, 0.001),
			OpIterate:  lin(8, 0.6),
			OpMiddle:   lin(26, 0.001),
		},
		// The 160B intercept models the minimum table allocation every
		// open-addressing instance pays even when nearly empty — the
		// fixed cost that makes array-backed (and adaptive) variants the
		// memory choice for very small collections.
		allocPopulate: lin(160, 36), // table churn at load 0.5
		allocMiddle:   zero,
		footprint:     lin(64, 27), // ~3 slots per element x 9B
	}
	openBalanced := analyticVariant{
		id: collections.OpenHashSetBalID,
		time: map[Op]costFn{
			OpPopulate: quad(50, 14, 0.010),
			OpContains: lin(7.5, 0.0018),
			OpIterate:  lin(8, 0.55),
			OpMiddle:   lin(28, 0.002),
		},
		// The balanced preset's population churn grows superlinearly at
		// large sizes (more frequent tombstone-triggered rehashes near its
		// 0.75 load ceiling). This is the calibrated analogue of the
		// paper's Figure 5d/e observation that the Koloboke-like fast
		// preset becomes the best allocation choice once sizes reach ~700,
		// after the Eclipse-like preset dominated the mid range.
		allocPopulate: quad(160, 24, 0.02),
		allocMiddle:   zero,
		footprint:     lin(64, 18),
	}
	openCompact := analyticVariant{
		id: collections.OpenHashSetCmpID,
		time: map[Op]costFn{
			// High-load tables degrade superlinearly: long probe chains
			// plus cache misses as the table outgrows cache levels. This
			// is what eventually trips the Ralloc time-penalty criterion
			// at medium sizes (Figure 5d/e).
			OpPopulate: quad(50, 13, 0.05),
			OpContains: lin(10, 0.02),
			OpIterate:  lin(8, 0.5),
			OpMiddle:   lin(34, 0.02),
		},
		allocPopulate: lin(160, 20),
		allocMiddle:   zero,
		footprint:     lin(64, 13),
	}
	linkedHash := analyticVariant{
		id: collections.LinkedHashSetID,
		time: map[Op]costFn{
			OpPopulate: lin(70, 38),
			OpContains: lin(11, 0.003),
			OpIterate:  lin(9, 0.9),
			OpMiddle:   lin(52, 0.004),
		},
		allocPopulate: lin(160, 80),
		allocMiddle:   lin(64, 0),
		footprint:     lin(96, 75),
	}
	arraySet := analyticVariant{
		id: collections.ArraySetID,
		time: map[Op]costFn{
			OpPopulate: quad(20, 2, 0.225), // each Add scans for duplicates
			OpContains: lin(2, 0.45),
			OpIterate:  lin(5, 0.3),
			OpMiddle:   lin(10, 0.45),
		},
		allocPopulate: lin(48, 16),
		allocMiddle:   zero,
		footprint:     lin(48, 10),
	}
	compactHash := analyticVariant{
		id: collections.CompactHashSetID,
		time: map[Op]costFn{
			// The dense variant's extra indirection and swap-remove
			// bookkeeping degrade steeply at large sizes, confining its
			// competitiveness to the small range (as the paper's VLSI
			// variant's byte-serialization overhead does).
			OpPopulate: quad(55, 14, 0.055),
			OpContains: lin(9, 0.004),
			OpIterate:  lin(6, 0.35), // dense iteration is the strength
			OpMiddle:   lin(40, 0.006),
		},
		allocPopulate: lin(180, 26),
		allocMiddle:   zero,
		footprint:     lin(72, 20),
	}
	thr := float64(collections.DefaultSetThreshold)
	adaptive := analyticVariant{
		id: collections.AdaptiveSetID,
		time: map[Op]costFn{
			OpPopulate: piecewise(thr,
				quad(20, 2, 0.225),
				func(s float64) float64 { return 20 + 2*thr + 0.225*thr*thr + 16*(s-thr) },
				func(float64) float64 { return 16 * thr }, // reinsertion at transition
			),
			OpContains: piecewise(thr, lin(2, 0.45), lin(6, 0.001), zero),
			OpIterate:  piecewise(thr, lin(5, 0.3), lin(8, 0.6), zero),
			OpMiddle:   piecewise(thr, lin(10, 0.45), lin(26, 0.001), zero),
		},
		allocPopulate: piecewise(thr,
			lin(48, 16),
			func(s float64) float64 { return 48 + 16*thr + 36*(s-thr) },
			func(float64) float64 { return 160 + 36*thr }, // table + reinsertion
		),
		allocMiddle: zero,
		footprint:   piecewise(thr, lin(48, 10), lin(64, 27), zero),
	}
	return []analyticVariant{
		chained, openFast, openBalanced, openCompact,
		linkedHash, arraySet, compactHash, adaptive,
	}
}

// analyticMaps derives map models from the set shapes: keys plus values
// roughly double the moved bytes and the entry sizes.
func analyticMaps() []analyticVariant {
	sets := analyticSets()
	setIDToMapID := map[collections.VariantID]collections.VariantID{
		collections.HashSetID:         collections.HashMapID,
		collections.OpenHashSetFastID: collections.OpenHashMapFastID,
		collections.OpenHashSetBalID:  collections.OpenHashMapBalID,
		collections.OpenHashSetCmpID:  collections.OpenHashMapCmpID,
		collections.LinkedHashSetID:   collections.LinkedHashMapID,
		collections.ArraySetID:        collections.ArrayMapID,
		collections.CompactHashSetID:  collections.CompactHashMapID,
		collections.AdaptiveSetID:     collections.AdaptiveMapID,
	}
	scaleTime := 1.15 // extra value handling per op
	scaleSpace := 1.8 // value array roughly doubles space
	out := make([]analyticVariant, 0, len(sets))
	for _, sv := range sets {
		sv := sv
		mv := analyticVariant{
			id:   setIDToMapID[sv.id],
			time: make(map[Op]costFn, len(sv.time)),
		}
		for op, fn := range sv.time {
			fn := fn
			mv.time[op] = func(s float64) float64 { return scaleTime * fn(s) }
		}
		ap, am, fp := sv.allocPopulate, sv.allocMiddle, sv.footprint
		mv.allocPopulate = func(s float64) float64 { return scaleSpace * ap(s) }
		mv.allocMiddle = func(s float64) float64 { return scaleSpace * am(s) }
		mv.footprint = func(s float64) float64 { return scaleSpace * fp(s) }
		out = append(out, mv)
	}
	return out
}

// fitAnalytic samples fn at the plan sizes and fits the plan-degree
// polynomial, panicking on failure (defaults are static data; a failure is
// a programming error).
func fitAnalytic(fn costFn, plan Plan) polyfit.Poly {
	xs := make([]float64, len(plan.Sizes))
	ys := make([]float64, len(plan.Sizes))
	for i, s := range plan.Sizes {
		xs[i] = float64(s)
		ys[i] = fn(float64(s))
	}
	p, err := polyfit.Fit(xs, ys, plan.Degree)
	if err != nil {
		panic(fmt.Sprintf("perfmodel: default fit failed: %v", err))
	}
	return p
}

// fitSubset fits fn over the plan sizes selected by keep, degrading the
// polynomial degree when too few points remain.
func fitSubset(fn costFn, plan Plan, keep func(int) bool) polyfit.Poly {
	var xs, ys []float64
	for _, s := range plan.Sizes {
		if keep(s) {
			xs = append(xs, float64(s))
			ys = append(ys, fn(float64(s)))
		}
	}
	degree := plan.Degree
	if degree > len(xs)-1 {
		degree = len(xs) - 1
	}
	if degree < 0 {
		panic("perfmodel: no plan sizes in fit segment")
	}
	p, err := polyfit.Fit(xs, ys, degree)
	if err != nil {
		panic(fmt.Sprintf("perfmodel: segment fit failed: %v", err))
	}
	return p
}

// adaptiveThresholdOf returns the transition threshold of an adaptive
// variant (the breakpoint of its piecewise cost model).
func adaptiveThresholdOf(id collections.VariantID) float64 {
	switch id {
	case collections.AdaptiveListID:
		return collections.DefaultListThreshold
	case collections.AdaptiveSetID:
		return collections.DefaultSetThreshold
	case collections.AdaptiveMapID:
		return collections.DefaultMapThreshold
	}
	return 0
}

// setCurves stores fn's fit for one (variant, op, dim): a single fit for
// ordinary variants, a two-regime piecewise fit at the transition threshold
// for adaptive ones.
func setCurves(m *Models, id collections.VariantID, op Op, dim Dimension, fn costFn, plan Plan) {
	if !collections.IsAdaptive(id) {
		m.Set(id, op, dim, fitAnalytic(fn, plan))
		return
	}
	thr := adaptiveThresholdOf(id)
	below := fitSubset(fn, plan, func(s int) bool { return float64(s) <= thr })
	above := fitSubset(fn, plan, func(s int) bool { return float64(s) > thr })
	m.SetPiecewise(id, op, dim, thr, below, above)
}

// Default returns the analytic default models for every variant in the
// registry, fitted over the Table 3 plan sizes with cubic polynomials.
// The result is freshly built on each call; callers typically build it once
// and share it (reads are concurrency-safe).
func Default() *Models {
	return DefaultDegree(DefaultPlan().Degree)
}

// DefaultDegree builds the analytic default models with fits of the given
// polynomial degree instead of the paper's cubic. Lower degrees smear the
// piecewise adaptive-variant curves badly — the model-degree ablation bench
// quantifies what that costs in selection quality.
func DefaultDegree(degree int) *Models {
	plan := DefaultPlan()
	plan.Degree = degree
	// Densify the sample grid below the adaptive thresholds: with only
	// two Table 3 sizes under 80, a cubic fitted to a piecewise curve
	// sags toward zero there and invents phantom advantages for the
	// adaptive variants on tiny-collection sites.
	small := []int{20, 30, 40, 60, 70, 80}
	plan.Sizes = append(append([]int(nil), small...), plan.Sizes...)
	m := NewModels()
	all := analyticLists()
	all = append(all, analyticSets()...)
	all = append(all, analyticMaps()...)
	all = append(all, analyticExtensionSets()...)
	all = append(all, analyticExtensionMaps()...)
	for _, av := range all {
		for op, fn := range av.time {
			setCurves(m, av.id, op, DimTimeNS, fn, plan)
		}
		setCurves(m, av.id, OpPopulate, DimAllocB, av.allocPopulate, plan)
		setCurves(m, av.id, OpMiddle, DimAllocB, av.allocMiddle, plan)
		setCurves(m, av.id, OpContains, DimAllocB, zero, plan)
		setCurves(m, av.id, OpIterate, DimAllocB, zero, plan)
		for _, op := range Ops() {
			setCurves(m, av.id, op, DimFootprint, av.footprint, plan)
		}
	}
	SynthesizeEnergy(m)
	return m
}

// AnalyticCost evaluates the raw (un-fitted) analytic cost function for a
// variant, used by tests to bound the fit error of Default.
func AnalyticCost(v collections.VariantID, op Op, dim Dimension, s float64) (float64, bool) {
	all := analyticLists()
	all = append(all, analyticSets()...)
	all = append(all, analyticMaps()...)
	all = append(all, analyticExtensionSets()...)
	all = append(all, analyticExtensionMaps()...)
	for _, av := range all {
		if av.id != v {
			continue
		}
		switch dim {
		case DimTimeNS:
			if fn, ok := av.time[op]; ok {
				return fn(s), true
			}
		case DimAllocB:
			switch op {
			case OpPopulate:
				return av.allocPopulate(s), true
			case OpMiddle:
				return av.allocMiddle(s), true
			default:
				return 0, true
			}
		case DimFootprint:
			return av.footprint(s), true
		}
		return 0, false
	}
	return 0, false
}
