package perfmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// The JSON form lets cmd/perfmodel persist machine-built models and the
// framework load them later, mirroring the paper's separation between the
// offline benchmarking phase and the runtime library.

// modelsSchema is the version written by WriteJSON. Version history:
//
//	0 (absent) — original format: curves of {upTo, coeffs} pieces.
//	2          — pieces may carry a "var" prediction-variance polynomial.
//
// ReadJSON accepts any version ≤ modelsSchema: the additions are purely
// optional fields, so older files decode as curves without uncertainty.
const modelsSchema = 2

// jsonPiece is one segment of a serialized curve. UpTo is nil for the
// final, unbounded segment (JSON has no +Inf). Var, when present, is the
// prediction-variance polynomial of the segment (ascending coefficients,
// like Coeffs).
type jsonPiece struct {
	UpTo   *float64  `json:"upTo,omitempty"`
	Coeffs []float64 `json:"coeffs"`
	Var    []float64 `json:"var,omitempty"`
}

// jsonCurve is the serialized form of one fitted curve.
type jsonCurve struct {
	Variant   string      `json:"variant"`
	Op        string      `json:"op"`
	Dimension string      `json:"dimension"`
	Pieces    []jsonPiece `json:"pieces"`
}

type jsonModels struct {
	// Schema is the format version (see modelsSchema). Zero or absent means
	// the original, pre-versioning format.
	Schema int `json:"schema,omitempty"`
	// Fingerprint identifies the machine a measured model set was built
	// on; omitted for machine-independent (analytic) models. Files written
	// before fingerprints existed load as fingerprint-free.
	Fingerprint *Fingerprint `json:"fingerprint,omitempty"`
	Curves      []jsonCurve  `json:"curves"`
}

// WriteJSON serializes the models.
func (m *Models) WriteJSON(w io.Writer) error {
	doc := jsonModels{Schema: modelsSchema, Fingerprint: m.fp, Curves: make([]jsonCurve, 0, len(m.curves))}
	for k, cv := range m.curves {
		jc := jsonCurve{
			Variant:   string(k.Variant),
			Op:        string(k.Op),
			Dimension: string(k.Dim),
		}
		for _, p := range cv.pieces {
			jp := jsonPiece{Coeffs: p.poly.Coeffs, Var: p.vp.Coeffs}
			if !math.IsInf(p.upTo, 1) {
				u := p.upTo
				jp.UpTo = &u
			}
			jc.Pieces = append(jc.Pieces, jp)
		}
		doc.Curves = append(doc.Curves, jc)
	}
	sort.Slice(doc.Curves, func(i, j int) bool {
		a, b := doc.Curves[i], doc.Curves[j]
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Dimension < b.Dimension
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON deserializes models previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Models, error) {
	var doc jsonModels
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("perfmodel: decoding models: %w", err)
	}
	if doc.Schema > modelsSchema {
		return nil, fmt.Errorf("perfmodel: model schema %d is newer than supported %d", doc.Schema, modelsSchema)
	}
	m := NewModels()
	if doc.Fingerprint != nil {
		m.fp = doc.Fingerprint
	}
	for _, c := range doc.Curves {
		if len(c.Pieces) == 0 {
			return nil, fmt.Errorf("perfmodel: curve %s/%s/%s has no pieces", c.Variant, c.Op, c.Dimension)
		}
		cv := curve{}
		for i, jp := range c.Pieces {
			if len(jp.Coeffs) == 0 {
				return nil, fmt.Errorf("perfmodel: curve %s/%s/%s piece %d has no coefficients", c.Variant, c.Op, c.Dimension, i)
			}
			upTo := math.Inf(1)
			if jp.UpTo != nil {
				upTo = *jp.UpTo
			}
			cv.pieces = append(cv.pieces, piece{
				upTo: upTo,
				poly: polyfit.Poly{Coeffs: jp.Coeffs},
				vp:   polyfit.Poly{Coeffs: jp.Var},
			})
		}
		m.curves[key{collections.VariantID(c.Variant), Op(c.Op), Dimension(c.Dimension)}] = cv
	}
	return m, nil
}

// SaveFile writes the models to path crash-safely: the JSON is written to a
// temporary file in the target directory, fsynced, and renamed into place,
// so a crash mid-write leaves either the previous file or the complete new
// one — never a torn half-model set. (A truncated file would anyway be
// rejected by LoadFile's JSON decode rather than yield partial models.)
func (m *Models) SaveFile(path string) error {
	return AtomicWriteFile(path, m.WriteJSON)
}

// AtomicWriteFile streams write's output into a temp file next to path,
// fsyncs, and renames over path — the crash-safety discipline shared by
// SaveFile and the warm-start store (internal/tuner). The temp file is
// removed on any failure.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads models from path.
func LoadFile(path string) (*Models, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
