package perfmodel

import (
	"math"
	"sort"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

// Online calibration (internal/tuner) measures a handful of (variant, op,
// size) points on the deployed machine at the sizes the running workload
// actually exhibits. This file folds those points into an existing model
// set: a measured point claims a narrow size band around its sample, and
// outside the sampled bands the prior curve — analytic default or earlier
// measurement — survives untouched. The result stays a piecewise curve, so
// every downstream consumer (Cost, JSON round-trip, the selection engine)
// is oblivious to how many calibration passes produced it.

// MeasuredPoint is one shadow-benchmark observation: the averaged cost of
// an operation at collection size Size. SE, when positive, is the standard
// error of Value across the shadow benchmark's repeated batches; it becomes
// the variance of the point's overlay band so the selector can see how
// trustworthy the measurement is.
type MeasuredPoint struct {
	Size  float64 `json:"size"`
	Value float64 `json:"value"`
	SE    float64 `json:"se,omitempty"`
}

// bandPiece renders one measured point as the constant polynomial of its
// band, with the point's sampling variance as the band's variance curve.
func bandPiece(upTo float64, p MeasuredPoint) piece {
	out := piece{upTo: upTo, poly: polyfit.Poly{Coeffs: []float64{p.Value}}}
	if p.SE > 0 && !math.IsNaN(p.SE) && !math.IsInf(p.SE, 0) {
		out.vp = polyfit.Poly{Coeffs: []float64{p.SE * p.SE}}
	}
	return out
}

// overlayBand is the half-width factor of the size band a lone measured
// point overrides: the band spans [Size/overlayBand, Size*overlayBand].
// Between two measured points the band boundary falls at their geometric
// mean, so adjacent samples tile the region between them seamlessly.
const overlayBand = 1.5

// OverlayMeasured splices measured points into the (v, op, dim) curve:
// within each point's size band the curve becomes the measured constant;
// elsewhere the prior curve survives. Without a prior curve the points
// alone form the curve, with the outermost bands extended to 0 and +Inf
// (constant extrapolation). Points are deduplicated by size (last wins);
// at least one point is required (no-op otherwise).
func (m *Models) OverlayMeasured(v collections.VariantID, op Op, dim Dimension, points []MeasuredPoint) {
	pts := normalizePoints(points)
	if len(pts) == 0 {
		return
	}
	k := key{v, op, dim}
	prior, hasPrior := m.curves[k]

	// Band boundaries around the measured sizes: outermost edges at
	// size/band and size*band, interior cuts at geometric means.
	low := pts[0].Size / overlayBand
	high := pts[len(pts)-1].Size * overlayBand
	cuts := make([]float64, 0, len(pts)+1)
	for i := 0; i < len(pts)-1; i++ {
		cuts = append(cuts, math.Sqrt(pts[i].Size*pts[i+1].Size))
	}
	cuts = append(cuts, high)
	// measuredAt returns the measured point whose band covers size x in
	// (low, high].
	measuredAt := func(x float64) MeasuredPoint {
		for i, c := range cuts {
			if x <= c {
				return pts[i]
			}
		}
		return pts[len(pts)-1]
	}

	if !hasPrior {
		// Points alone: first band reaches down to 0, last to +Inf.
		out := curve{}
		for i := 0; i < len(pts)-1; i++ {
			out.pieces = append(out.pieces, bandPiece(cuts[i], pts[i]))
		}
		out.pieces = append(out.pieces, bandPiece(math.Inf(1), pts[len(pts)-1]))
		m.curves[k] = out
		return
	}

	// Re-segment over the union of prior bounds and overlay bounds; each
	// segment picks the overlay constant inside (low, high] and the prior
	// polynomial outside.
	bounds := map[float64]bool{low: true, high: true}
	for _, c := range cuts {
		bounds[c] = true
	}
	for _, p := range prior.pieces {
		bounds[p.upTo] = true
	}
	bounds[math.Inf(1)] = true
	all := make([]float64, 0, len(bounds))
	for b := range bounds {
		all = append(all, b)
	}
	sort.Float64s(all)

	priorAt := func(x float64) piece {
		for _, p := range prior.pieces {
			if x <= p.upTo {
				return p
			}
		}
		return prior.pieces[len(prior.pieces)-1]
	}
	out := curve{pieces: make([]piece, 0, len(all))}
	for _, u := range all {
		// Representative point inside the segment ending at u.
		x := u
		if math.IsInf(u, 1) {
			x = math.MaxFloat64
		}
		var pc piece
		if x > low && x <= high {
			pc = bandPiece(u, measuredAt(x))
		} else {
			pp := priorAt(x)
			pc = piece{upTo: u, poly: pp.poly, vp: pp.vp}
		}
		out.pieces = append(out.pieces, pc)
	}
	m.curves[k] = out
}

// normalizePoints sorts by size, drops non-positive sizes and non-finite
// values, and deduplicates equal sizes (last observation wins).
func normalizePoints(points []MeasuredPoint) []MeasuredPoint {
	pts := make([]MeasuredPoint, 0, len(points))
	for _, p := range points {
		if p.Size <= 0 || math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			continue
		}
		pts = append(pts, p)
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Size < pts[j].Size })
	dedup := pts[:0]
	for _, p := range pts {
		if n := len(dedup); n > 0 && dedup[n-1].Size == p.Size {
			dedup[n-1] = p
			continue
		}
		dedup = append(dedup, p)
	}
	return dedup
}

// UnknownVariants returns the sorted variant IDs that carry curves in m but
// have no entry in the variant catalog — typically a model file built
// against a different catalog state. Their curves are never consulted: no
// allocation context lists an uncataloged variant as a candidate, so a load
// path should warn once per listed ID (cmd/experiments routes this through
// the model_gaps counter).
func UnknownVariants(m *Models) []collections.VariantID {
	var out []collections.VariantID
	for _, v := range m.Variants() {
		if _, ok := collections.EntryOf(v); !ok {
			out = append(out, v)
		}
	}
	return out
}
