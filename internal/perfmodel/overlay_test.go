package perfmodel

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/collections"
	"repro/internal/polyfit"
)

func TestOverlayMeasuredOverridesOnlySampledBands(t *testing.T) {
	m := NewModels()
	// Prior: cost(s) = 2s, a clean line we can probe anywhere.
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{0, 2}})

	m.OverlayMeasured(collections.ArrayListID, OpContains, DimTimeNS, []MeasuredPoint{
		{Size: 100, Value: 50},
		{Size: 400, Value: 90},
	})

	cases := []struct {
		size, want float64
		where      string
	}{
		{10, 20, "far below the sampled region: prior curve"},
		{66, 132, "just below the band edge (100/1.5): prior curve"},
		{100, 50, "at the first sample: measured value"},
		{150, 50, "inside the first band (below geomean 200): measured value"},
		{300, 90, "between geomean and second sample: second measured value"},
		{400, 90, "at the second sample: measured value"},
		{601, 1202, "just above 400*1.5: prior curve"},
		{5000, 10000, "far above the sampled region: prior curve"},
	}
	for _, c := range cases {
		if got := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, c.size); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Cost(%g) = %g, want %g (%s)", c.size, got, c.want, c.where)
		}
	}
}

func TestOverlayMeasuredPreservesPiecewisePrior(t *testing.T) {
	m := NewModels()
	// Piecewise prior (an adaptive variant's kinked curve): 1 below 64, 10 above.
	m.SetPiecewise(collections.AdaptiveListID, OpContains, DimTimeNS, 64,
		polyfit.Poly{Coeffs: []float64{1}}, polyfit.Poly{Coeffs: []float64{10}})

	// Sample far above the kink; the below-kink regime must survive.
	m.OverlayMeasured(collections.AdaptiveListID, OpContains, DimTimeNS, []MeasuredPoint{
		{Size: 1000, Value: 7},
	})
	if got := m.Cost(collections.AdaptiveListID, OpContains, DimTimeNS, 10); got != 1 {
		t.Errorf("below-kink prior overwritten: Cost(10) = %g, want 1", got)
	}
	if got := m.Cost(collections.AdaptiveListID, OpContains, DimTimeNS, 1000); got != 7 {
		t.Errorf("measured band lost: Cost(1000) = %g, want 7", got)
	}
	if got := m.Cost(collections.AdaptiveListID, OpContains, DimTimeNS, 100); got != 10 {
		t.Errorf("above-kink prior below the band overwritten: Cost(100) = %g, want 10", got)
	}
	if got := m.Cost(collections.AdaptiveListID, OpContains, DimTimeNS, 1e6); got != 10 {
		t.Errorf("prior tail overwritten: Cost(1e6) = %g, want 10", got)
	}
}

func TestOverlayMeasuredWithoutPrior(t *testing.T) {
	m := NewModels()
	m.OverlayMeasured(collections.ArrayListID, OpIterate, DimTimeNS, []MeasuredPoint{
		{Size: 10, Value: 3},
		{Size: 100, Value: 30},
	})
	if !m.Has(collections.ArrayListID, OpIterate, DimTimeNS) {
		t.Fatal("overlay without prior created no curve")
	}
	// Constant extrapolation at both ends.
	if got := m.Cost(collections.ArrayListID, OpIterate, DimTimeNS, 1); got != 3 {
		t.Errorf("Cost(1) = %g, want 3", got)
	}
	if got := m.Cost(collections.ArrayListID, OpIterate, DimTimeNS, 1e6); got != 30 {
		t.Errorf("Cost(1e6) = %g, want 30", got)
	}
}

func TestOverlayMeasuredIgnoresGarbagePoints(t *testing.T) {
	m := NewModels()
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{5}})
	m.OverlayMeasured(collections.ArrayListID, OpContains, DimTimeNS, []MeasuredPoint{
		{Size: -1, Value: 1},
		{Size: 0, Value: 1},
		{Size: 10, Value: math.NaN()},
		{Size: 10, Value: math.Inf(1)},
	})
	if got := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 10); got != 5 {
		t.Errorf("garbage points changed the curve: Cost(10) = %g, want 5", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := NewModels()
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{4}})
	m.SetFingerprint(CollectFingerprint())

	cl := m.Clone()
	if fp, ok := cl.MeasuredOn(); !ok || !fp.Matches(CollectFingerprint()) {
		t.Error("clone lost the fingerprint")
	}
	cl.OverlayMeasured(collections.ArrayListID, OpContains, DimTimeNS, []MeasuredPoint{{Size: 10, Value: 99}})
	cl.Set(collections.LinkedListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1}})

	if got := m.Cost(collections.ArrayListID, OpContains, DimTimeNS, 10); got != 4 {
		t.Errorf("overlay on clone mutated the original: Cost = %g, want 4", got)
	}
	if m.Has(collections.LinkedListID, OpContains, DimTimeNS) {
		t.Error("Set on clone leaked into the original")
	}
}

func TestFingerprintJSONRoundTrip(t *testing.T) {
	m := NewModels()
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1, 2}})
	fp := CollectFingerprint()
	m.SetFingerprint(fp)

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rfp, ok := got.MeasuredOn()
	if !ok {
		t.Fatal("fingerprint dropped in JSON round-trip")
	}
	if !rfp.Matches(fp) {
		t.Errorf("fingerprint changed in round-trip: %s != %s", rfp, fp)
	}

	// A model set without a fingerprint (old files) still loads.
	m2 := NewModels()
	m2.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1}})
	buf.Reset()
	if err := m2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got2.MeasuredOn(); ok {
		t.Error("fingerprint invented for a fingerprint-free file")
	}
}

func TestSaveFileIsAtomicAndTornFilesRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")
	m := Default()
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp residue after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only models.json in %s, found %d entries", dir, len(entries))
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != m.Len() {
		t.Fatalf("round-trip lost curves: %d != %d", loaded.Len(), m.Len())
	}

	// Simulate a torn write: truncate the file mid-JSON. LoadFile must
	// reject it with a decode error, not return half a model set.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted a truncated model file")
	} else if !strings.Contains(err.Error(), "decoding models") {
		t.Errorf("unexpected error for torn file: %v", err)
	}

	// Overwriting an existing file stays atomic (rename over it).
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("re-save over torn file failed to restore: %v", err)
	}
}

func TestUnknownVariantsAgainstCatalog(t *testing.T) {
	m := NewModels()
	m.Set(collections.ArrayListID, OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1}})
	m.Set("list/not-a-variant", OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1}})
	m.Set("map/also-missing", OpContains, DimTimeNS, polyfit.Poly{Coeffs: []float64{1}})

	unknown := UnknownVariants(m)
	if len(unknown) != 2 {
		t.Fatalf("UnknownVariants = %v, want 2 entries", unknown)
	}
	if unknown[0] != "list/not-a-variant" || unknown[1] != "map/also-missing" {
		t.Errorf("UnknownVariants = %v, want sorted unknown ids", unknown)
	}
	if got := UnknownVariants(Default()); len(got) != 0 {
		t.Errorf("default models report unknown variants: %v", got)
	}
}
