package perfmodel

// Plan is the factorial experimental plan of Table 3: each collection
// variant is evaluated at every (size, operation) combination, with Integer
// (int) elements drawn from a uniform distribution.
type Plan struct {
	// Sizes are the collection sizes to sample. Table 3 uses
	// [10, 50, 100, 150, ..., 1000].
	Sizes []int
	// Ops are the critical operations to measure.
	Ops []Op
	// Degree is the polynomial degree fitted to the samples (paper: 3).
	Degree int
	// WarmupIters and MeasureIters follow the steady-state methodology of
	// Section 4.1.2 (15 unmeasured, 30 measured). The builder exposes
	// them so tests can run reduced plans.
	WarmupIters, MeasureIters int
}

// DefaultPlan returns the Table 3 plan: sizes 10, 50, 100, 150, …, 1000;
// all four critical operations; cubic fits; 15 warm-up and 30 measured
// iterations.
func DefaultPlan() Plan {
	sizes := []int{10, 50}
	for s := 100; s <= 1000; s += 50 {
		sizes = append(sizes, s)
	}
	return Plan{
		Sizes:        sizes,
		Ops:          Ops(),
		Degree:       3,
		WarmupIters:  15,
		MeasureIters: 30,
	}
}

// QuickPlan returns a reduced plan for tests and smoke runs: fewer sizes and
// iterations, quadratic fits (stable on few points).
func QuickPlan() Plan {
	return Plan{
		Sizes:        []int{10, 100, 400, 1000},
		Ops:          Ops(),
		Degree:       2,
		WarmupIters:  1,
		MeasureIters: 3,
	}
}
