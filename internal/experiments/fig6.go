package experiments

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/workload"
)

// This file regenerates Figure 6: the multi-phased scenario. Each iteration
// creates and populates many list instances and executes 100 operations of
// the phase's dominant type; the dominant operation changes every five
// iterations (contains → iteration → index → search-and-remove → contains).
// CollectionSwitch is plotted against fixed ArrayList, HashArrayList and
// LinkedList. The paper documents one deliberate miss — the framework picks
// HashArrayList instead of ArrayList in the search-and-remove phase because
// the model prices positional removal identically on both — which this
// reproduction preserves (see perfmodel/defaults.go).

// Fig6Iteration is one x-position of Figure 6.
type Fig6Iteration struct {
	Index int
	Phase workload.Phase
	// Times in milliseconds per setup.
	Switch, ArrayList, HashArrayList, LinkedList float64
	// SwitchVariant is the variant the context used during this
	// iteration.
	SwitchVariant collections.VariantID
}

// Fig6Result is the full multi-phase series.
type Fig6Result struct {
	Iterations []Fig6Iteration
}

// RunFig6 measures the multi-phase scenario.
func RunFig6(sc Scale) Fig6Result {
	return RunFig6Obs(sc, Obs{})
}

// RunFig6Obs is RunFig6 with observability wiring on the engine.
func RunFig6Obs(sc Scale, o Obs) Fig6Result {
	e := core.NewEngineManual(core.Config{
		WindowSize:          100,
		FinishedRatio:       0.6,
		Rule:                core.Rtime(),
		Models:              o.Models,
		AnalysisParallelism: o.Parallelism,
		ConfidenceLevel:     o.Confidence,
		Name:                "fig6",
		Sink:                o.Sink,
		Metrics:             o.Metrics,
	})
	defer e.Close()
	if o.EngineHook != nil {
		o.EngineHook(e)
	}
	ctx := core.NewListContext[int](e, core.WithName("fig6"))
	hook := engineHook(e)

	var res Fig6Result
	idx := 0
	for _, phase := range workload.Phases() {
		for rep := 0; rep < sc.Fig6Reps; rep++ {
			seed := int64(idx + 1)
			it := Fig6Iteration{Index: idx, Phase: phase}

			// CollectionSwitch run: analysis happens between batches.
			every := sc.Fig6Instances / 10
			batchedHook := hook
			elapsed, _ := workload.MultiPhaseIterationHook(ctx.NewList, phase,
				sc.Fig6Instances, sc.Fig6Size, sc.Fig6Ops, seed, every, batchedHook)
			it.Switch = float64(elapsed.Microseconds()) / 1000
			it.SwitchVariant = ctx.CurrentVariant()
			// Give the engine a final chance to adapt before the next
			// iteration (mirrors its continuous background analysis).
			runtime.GC()
			e.AnalyzeNow()

			for _, fixed := range []struct {
				id   collections.VariantID
				dest *float64
			}{
				{collections.ArrayListID, &it.ArrayList},
				{collections.HashArrayListID, &it.HashArrayList},
				{collections.LinkedListID, &it.LinkedList},
			} {
				id := fixed.id
				el, _ := workload.MultiPhaseIteration(func() collections.List[int] {
					return collections.NewListOf[int](id, 0)
				}, phase, sc.Fig6Instances, sc.Fig6Size, sc.Fig6Ops, seed)
				*fixed.dest = float64(el.Microseconds()) / 1000
			}
			res.Iterations = append(res.Iterations, it)
			idx++
		}
	}
	return res
}

// PrintFig6 renders the Figure 6 series.
func PrintFig6(w io.Writer, res Fig6Result) {
	header(w, "Figure 6 — multi-phased scenario (times in ms, Rtime)")
	fmt.Fprintf(w, "%4s %-18s %10s %10s %10s %10s  %s\n",
		"iter", "phase", "Switch", "ArrayList", "HashArrLst", "LinkedList", "switch variant")
	for _, it := range res.Iterations {
		fmt.Fprintf(w, "%4d %-18s %10.2f %10.2f %10.2f %10.2f  %s\n",
			it.Index, it.Phase, it.Switch, it.ArrayList, it.HashArrayList, it.LinkedList,
			it.SwitchVariant)
	}
	fmt.Fprintln(w, "(paper: Switch tracks the best fixed variant per phase except")
	fmt.Fprintln(w, " search-and-remove, where the model limitation keeps HashArrayList)")
}
