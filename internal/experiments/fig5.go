package experiments

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/workload"
)

// This file regenerates Figure 5: the single-phase micro-benchmark. Each
// point of the sweep creates and populates many collection instances and
// runs 100 lookups per instance; CollectionSwitch (starting from the JDK
// default) is compared against the fixed JDK-like variant. Panels a–c use
// Rtime and report execution time; panels d–e use Ralloc and report bytes
// allocated. The marker column indicates the variant the context switched
// to at that size, matching the figure's transition markers.

// Fig5Point is one x-position of a Figure 5 panel.
type Fig5Point struct {
	Size int
	// Switch/Baseline are the measured costs of the CollectionSwitch run
	// and the fixed-variant run.
	SwitchTime, BaselineTime   float64 // seconds
	SwitchAlloc, BaselineAlloc uint64  // bytes
	// SelectedVariant is the variant in use at the end of the
	// CollectionSwitch run ("" if it never switched).
	SelectedVariant collections.VariantID
}

// Fig5Panel is one sub-figure (a–e).
type Fig5Panel struct {
	Name     string // e.g. "5a: list time vs ArrayList"
	Rule     string
	Baseline collections.VariantID
	Points   []Fig5Point
}

// newFig5Engine builds the manual engine used for one single-phase run.
func newFig5Engine(rule core.Rule, name string, o Obs) *core.Engine {
	e := core.NewEngineManual(core.Config{
		WindowSize:          100,
		FinishedRatio:       0.6,
		Rule:                rule,
		Models:              o.Models,
		AnalysisParallelism: o.Parallelism,
		ConfidenceLevel:     o.Confidence,
		Name:                name,
		Sink:                o.Sink,
		Metrics:             o.Metrics,
	})
	if o.EngineHook != nil {
		o.EngineHook(e)
	}
	return e
}

// hook ticks the engine the way the background analyzer and the JVM GC
// would: collect dead monitors, then analyze.
func engineHook(e *core.Engine) func() {
	return func() {
		runtime.GC()
		e.AnalyzeNow()
	}
}

// RunFig5 measures all five panels at the given scale.
func RunFig5(sc Scale) []Fig5Panel {
	return RunFig5Obs(sc, Obs{})
}

// RunFig5Obs is RunFig5 with observability wiring on every engine.
func RunFig5Obs(sc Scale, o Obs) []Fig5Panel {
	panels := []Fig5Panel{
		{Name: "5a: Lists, Rtime, time vs ArrayList", Rule: "Rtime", Baseline: collections.ArrayListID},
		{Name: "5b: Sets, Rtime, time vs HashSet", Rule: "Rtime", Baseline: collections.HashSetID},
		{Name: "5c: Maps, Rtime, time vs HashMap", Rule: "Rtime", Baseline: collections.HashMapID},
		{Name: "5d: Sets, Ralloc, allocation vs HashSet", Rule: "Ralloc", Baseline: collections.HashSetID},
		{Name: "5e: Maps, Ralloc, allocation vs HashMap", Rule: "Ralloc", Baseline: collections.HashMapID},
	}
	every := sc.Fig5Instances / 20
	for _, size := range sc.Fig5Sizes {
		// Panel a: lists under Rtime.
		panels[0].Points = append(panels[0].Points,
			fig5List(core.Rtime(), size, sc.Fig5Instances, sc.Fig5ListLookups, every, o))
		// Panel b/d: sets under Rtime and Ralloc.
		panels[1].Points = append(panels[1].Points,
			fig5Set(core.Rtime(), size, sc.Fig5Instances, sc.Fig5Lookups, every, o))
		panels[3].Points = append(panels[3].Points,
			fig5Set(core.Ralloc(), size, sc.Fig5Instances, sc.Fig5Lookups, every, o))
		// Panel c/e: maps under Rtime and Ralloc.
		panels[2].Points = append(panels[2].Points,
			fig5Map(core.Rtime(), size, sc.Fig5Instances, sc.Fig5Lookups, every, o))
		panels[4].Points = append(panels[4].Points,
			fig5Map(core.Ralloc(), size, sc.Fig5Instances, sc.Fig5Lookups, every, o))
	}
	return panels
}

func fig5List(rule core.Rule, size, instances, lookups, every int, o Obs) Fig5Point {
	e := newFig5Engine(rule, fmt.Sprintf("fig5a@%d", size), o)
	defer e.Close()
	ctx := core.NewListContext[int](e, core.WithName(fmt.Sprintf("fig5a@%d", size)))
	swRes, _ := workload.SinglePhaseListHook(ctx.NewList, instances, size, lookups, int64(size), every, engineHook(e))
	baseRes, _ := workload.SinglePhaseList(func() collections.List[int] {
		return collections.NewArrayList[int]()
	}, instances, size, lookups, int64(size))
	p := Fig5Point{
		Size:          size,
		SwitchTime:    swRes.Elapsed.Seconds(),
		BaselineTime:  baseRes.Elapsed.Seconds(),
		SwitchAlloc:   swRes.AllocBytes,
		BaselineAlloc: baseRes.AllocBytes,
	}
	if v := ctx.CurrentVariant(); v != collections.ArrayListID {
		p.SelectedVariant = v
	}
	return p
}

func fig5Set(rule core.Rule, size, instances, lookups, every int, o Obs) Fig5Point {
	e := newFig5Engine(rule, fmt.Sprintf("fig5set@%d", size), o)
	defer e.Close()
	ctx := core.NewSetContext[int](e, core.WithName(fmt.Sprintf("fig5set@%d", size)))
	swRes, _ := workload.SinglePhaseSetHook(ctx.NewSet, instances, size, lookups, int64(size), every, engineHook(e))
	baseRes, _ := workload.SinglePhaseSet(func() collections.Set[int] {
		return collections.NewHashSet[int]()
	}, instances, size, lookups, int64(size))
	p := Fig5Point{
		Size:          size,
		SwitchTime:    swRes.Elapsed.Seconds(),
		BaselineTime:  baseRes.Elapsed.Seconds(),
		SwitchAlloc:   swRes.AllocBytes,
		BaselineAlloc: baseRes.AllocBytes,
	}
	if v := ctx.CurrentVariant(); v != collections.HashSetID {
		p.SelectedVariant = v
	}
	return p
}

func fig5Map(rule core.Rule, size, instances, lookups, every int, o Obs) Fig5Point {
	e := newFig5Engine(rule, fmt.Sprintf("fig5map@%d", size), o)
	defer e.Close()
	ctx := core.NewMapContext[int, int](e, core.WithName(fmt.Sprintf("fig5map@%d", size)))
	swRes, _ := workload.SinglePhaseMapHook(ctx.NewMap, instances, size, lookups, int64(size), every, engineHook(e))
	baseRes, _ := workload.SinglePhaseMap(func() collections.Map[int, int] {
		return collections.NewHashMap[int, int]()
	}, instances, size, lookups, int64(size))
	p := Fig5Point{
		Size:          size,
		SwitchTime:    swRes.Elapsed.Seconds(),
		BaselineTime:  baseRes.Elapsed.Seconds(),
		SwitchAlloc:   swRes.AllocBytes,
		BaselineAlloc: baseRes.AllocBytes,
	}
	if v := ctx.CurrentVariant(); v != collections.HashMapID {
		p.SelectedVariant = v
	}
	return p
}

// PrintFig5 renders the Figure 5 series.
func PrintFig5(w io.Writer, panels []Fig5Panel) {
	for _, panel := range panels {
		header(w, "Figure "+panel.Name)
		alloc := panel.Rule == "Ralloc"
		if alloc {
			fmt.Fprintf(w, "%6s %15s %15s %8s  %s\n", "size", "Switch(MB)", "Baseline(MB)", "ratio", "selected variant")
		} else {
			fmt.Fprintf(w, "%6s %15s %15s %8s  %s\n", "size", "Switch(s)", "Baseline(s)", "ratio", "selected variant")
		}
		for _, p := range panel.Points {
			var sw, base float64
			if alloc {
				sw = float64(p.SwitchAlloc) / (1024 * 1024)
				base = float64(p.BaselineAlloc) / (1024 * 1024)
			} else {
				sw = p.SwitchTime
				base = p.BaselineTime
			}
			ratio := 0.0
			if base > 0 {
				ratio = sw / base
			}
			sel := string(p.SelectedVariant)
			if sel == "" {
				sel = "(kept default)"
			}
			fmt.Fprintf(w, "%6d %15.3f %15.3f %8.2f  %s\n", p.Size, sw, base, ratio, sel)
		}
	}
}
