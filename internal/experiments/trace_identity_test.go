package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/obs"
)

// timestampRe strips the two wall-clock fields of a trace line: the envelope
// write-time stamp and the measured pass durations. Everything else — event
// kinds, order, per-context payloads, decisions — must be byte-identical.
var timestampRe = regexp.MustCompile(`"(time_unix_ns|duration_ns)":-?[0-9]+`)

func normalizeTrace(raw []byte) [][]byte {
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	out := make([][]byte, 0, len(lines))
	for _, l := range lines {
		if len(l) == 0 {
			continue
		}
		out = append(out, timestampRe.ReplaceAll(l, []byte(`"$1":0`)))
	}
	return out
}

// TestTable6TraceMatchesSeedFixture is the refactor's non-negotiable
// invariant in executable form: the Table 5/6 sweep at analysis parallelism
// 1 must produce a JSONL trace byte-identical — modulo timestamps — to the
// fixture captured before the sharded-profile/epoch-window/batched-emission
// refactor. Any change to what is monitored, folded, decided or emitted
// shows up as a diverging line. The fixture was generated with
//
//	go run ./cmd/experiments -exp table6 -quick -parallel 1 -trace <fixture>
//
// at the pre-refactor HEAD; regenerate it the same way (and justify the diff)
// when a deliberate behavior change is introduced.
func TestTable6TraceMatchesSeedFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 measurement is slow")
	}
	fixture, err := os.ReadFile(filepath.Join("testdata", "table6_trace_parallel1_seed.jsonl"))
	if err != nil {
		t.Fatalf("reading seed fixture: %v", err)
	}

	var trace bytes.Buffer
	sink := obs.NewJSONLSink(&trace)
	RunTable5Obs(QuickScale(), Obs{Sink: sink, Metrics: obs.NewRegistry(), Parallelism: 1})
	if err := sink.Flush(); err != nil {
		t.Fatalf("flushing trace: %v", err)
	}

	want := normalizeTrace(fixture)
	got := normalizeTrace(trace.Bytes())
	if len(got) != len(want) {
		t.Fatalf("trace length: got %d events, fixture has %d", len(got), len(want))
	}
	diffs := 0
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			diffs++
			if diffs <= 3 {
				t.Errorf("trace line %d diverges from seed fixture:\n got  %s\nwant %s", i+1, got[i], want[i])
			}
		}
	}
	if diffs > 3 {
		t.Errorf("... and %d more diverging lines", diffs-3)
	}
}
