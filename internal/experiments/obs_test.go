package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestTable6ReconstructibleFromTrace is the acceptance test of the -trace
// flag: running the Table 5 sweep with a JSONL sink must yield an event
// stream from which Table6FromEvents reproduces exactly the rows the
// in-process aggregation prints.
func TestTable6ReconstructibleFromTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 measurement is slow")
	}
	sc := QuickScale()
	sc.AppScale = 0.05
	sc.AppMeasured = 1
	sc.AppWarmup = 0

	var trace bytes.Buffer
	sink := obs.NewJSONLSink(&trace)
	rows := RunTable5Obs(sc, Obs{Sink: sink, Metrics: obs.NewRegistry()})
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	events, err := obs.ReadAll(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}

	want := Table6From(rows)
	got := Table6FromEvents(events)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Table 6 from events diverges from in-process aggregation:\n got %+v\nwant %+v", got, want)
	}
}

func TestSplitRunLabel(t *testing.T) {
	for _, tc := range []struct {
		label           string
		app, mode, rule string
		ok              bool
	}{
		{"avrora/fulladap/Rtime", "avrora", "fulladap", "Rtime", true},
		{"h2/instanceadap/Ralloc", "h2", "instanceadap", "Ralloc", true},
		{"fig6", "", "", "", false},
		{"", "", "", "", false},
		{"/x/y", "", "", "", false},
	} {
		app, mode, rule, ok := splitRunLabel(tc.label)
		if app != tc.app || mode != tc.mode || rule != tc.rule || ok != tc.ok {
			t.Errorf("splitRunLabel(%q) = (%q, %q, %q, %v), want (%q, %q, %q, %v)",
				tc.label, app, mode, rule, ok, tc.app, tc.mode, tc.rule, tc.ok)
		}
	}
}
