package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// This file regenerates Figure 7: the cost of analyzing the collected
// collection metrics as a function of the monitored window size. Because
// the engine folds finished instances into running per-variant totals
// incrementally, the periodic decision step is O(candidates) regardless of
// how many instances were monitored — the property behind the paper's flat
// ~250–285 ns curve.

// Fig7Point is one window size of the overhead sweep.
type Fig7Point struct {
	WindowSize int
	// OverheadNs is the measured decision cost in nanoseconds.
	OverheadNs float64
}

// RunFig7 measures the analysis overhead across window sizes 100..100k.
func RunFig7(models *perfmodel.Models) []Fig7Point {
	if models == nil {
		models = perfmodel.Default()
	}
	var out []Fig7Point
	for _, window := range []int{100, 1000, 10000, 100000} {
		ns := core.DecisionOverheadNs(models, core.Rtime(), window, 2000)
		out = append(out, Fig7Point{WindowSize: window, OverheadNs: ns})
	}
	return out
}

// PrintFig7 renders the overhead sweep.
func PrintFig7(w io.Writer, points []Fig7Point) {
	header(w, "Figure 7 — analysis overhead by window size")
	fmt.Fprintf(w, "%12s %15s\n", "window", "overhead (ns)")
	for _, p := range points {
		fmt.Fprintf(w, "%12d %15.0f\n", p.WindowSize, p.OverheadNs)
	}
	fmt.Fprintln(w, "(paper: 250–285 ns, flat in window size)")
}
