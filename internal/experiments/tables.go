package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Obs bundles the optional observability wiring of cmd/experiments: Sink
// receives the engine events of measured runs (the -trace flag), Metrics
// aggregates counters and the analysis-latency histogram across experiments
// (the -metrics flag), and Parallelism bounds every experiment engine's
// analysis worker pool (the -parallel flag; 0 = engine default GOMAXPROCS,
// 1 = the historical sequential ordering). The zero value disables the
// sinks and leaves parallelism at the engine default.
type Obs struct {
	Sink        obs.Sink
	Metrics     *obs.Registry
	Parallelism int
	// Confidence is handed to every experiment engine as
	// Config.ConfidenceLevel (the -confidence flag; 0 = point-estimate
	// switching, the historical behavior).
	Confidence float64
	// Models overrides every experiment engine's cost models (the -models
	// flag; nil = the analytic defaults).
	Models *perfmodel.Models
	// WarmStart supplies persisted site decisions to the engine-driven
	// experiments (the -store flag; nil = cold starts). Snapshots receives
	// each measured run's per-site state for persistence.
	WarmStart core.WarmStarter
	Snapshots func([]core.SiteSnapshot)
	// EngineHook, when non-nil, observes every engine the experiments
	// create, right after construction — the diag introspection server
	// attaches here (the -http flag) so /sites and /sites/{name}/explain
	// cover each experiment engine as it comes up.
	EngineHook func(*core.Engine)
}

// PrintTable2 renders the collection-variant inventory (paper Table 2).
func PrintTable2(w io.Writer) {
	header(w, "Table 2 — collection implementations considered as variants")
	fmt.Fprintf(w, "%-12s %-24s %-24s %s\n", "Abstraction", "Variant", "Analogue of", "Description")
	for _, info := range collections.AllVariantInfos() {
		fmt.Fprintf(w, "%-12s %-24s %-24s %s\n",
			info.Abstraction, info.ID, info.Analogue, info.Description)
	}
	fmt.Fprintln(w, "\nFuture-work extensions (paper Section 7: sorted and concurrent variants):")
	for _, info := range collections.ExtensionVariantInfos() {
		fmt.Fprintf(w, "%-12s %-24s %-24s %s\n",
			info.Abstraction, info.ID, info.Analogue, info.Description)
	}
}

// PrintTable4 renders the selection rules (paper Table 4).
func PrintTable4(w io.Writer) {
	header(w, "Table 4 — selection rules")
	fmt.Fprintf(w, "%-8s %-24s %s\n", "Rule", "Improvement", "Penalty")
	fmt.Fprintf(w, "%-8s %-24s %s\n", "Rtime", "Time cost < 0.8", "–")
	fmt.Fprintf(w, "%-8s %-24s %s\n", "Ralloc", "Alloc cost < 0.8", "Time cost < 1.2")
	fmt.Fprintln(w, "\nMachine-readable forms:")
	for _, r := range []core.Rule{core.Rtime(), core.Ralloc(), core.Rfootprint(), core.ImpossibleRule()} {
		fmt.Fprintf(w, "  %s\n", r)
	}
}

// RunTable5 measures the DaCapo-substitute applications.
func RunTable5(sc Scale) []apps.Row {
	return RunTable5Obs(sc, Obs{})
}

// RunTable5Obs is RunTable5 with observability wiring threaded into every
// measured run's engine.
func RunTable5Obs(sc Scale, o Obs) []apps.Row {
	cfg := apps.RunConfig{
		Scale:       sc.AppScale,
		Warmup:      sc.AppWarmup,
		Measured:    sc.AppMeasured,
		Seed:        1,
		Sink:        o.Sink,
		Metrics:     o.Metrics,
		Parallelism: o.Parallelism,
		Confidence:  o.Confidence,
		Models:      o.Models,
		WarmStart:   o.WarmStart,
		Snapshots:   o.Snapshots,
		EngineHook:  o.EngineHook,
	}
	return apps.MeasureAll(cfg)
}

// PrintTable5 renders the application results in the paper's layout.
func PrintTable5(w io.Writer, rows []apps.Row) {
	header(w, "Table 5 — results on the DaCapo-substitute applications")
	fmt.Fprintf(w, "%-10s %7s | %9s %9s | %7s %7s | %7s %7s | %7s %7s\n",
		"Bench", "#Sites", "T(s)", "M(MB)",
		"T1", "M1", "T2", "M2", "T3", "M3")
	fmt.Fprintf(w, "%-10s %7s | %9s %9s | %15s | %15s | %15s\n",
		"", "", "Original", "", "FullAdap Rtime", "FullAdap Ralloc", "InstanceAdap")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %7d | %9.3f %9.1f | %7s %7s | %7s %7s | %7s %7s\n",
			r.App, r.Sites,
			stats.Mean(r.Original.TimesSec), stats.Mean(r.Original.PeaksMB),
			apps.FormatDelta(r.T1), apps.FormatDelta(r.M1),
			apps.FormatDelta(r.T2), apps.FormatDelta(r.M2),
			apps.FormatDelta(r.T3), apps.FormatDelta(r.M3))
	}
	fmt.Fprintln(w, "(positive deltas are improvements; – means not significant by Tukey HSD)")
}

// TransitionRow summarizes one app's most common transition under a rule —
// the paper's Table 6.
type TransitionRow struct {
	App    string
	Rtime  string
	Ralloc string
}

// Table6From extracts the most frequent transition per app and rule from
// Table 5 measurement rows.
func Table6From(rows []apps.Row) []TransitionRow {
	out := make([]TransitionRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, TransitionRow{
			App:    r.App,
			Rtime:  topTransition(r.FullTime.TransitionCounts),
			Ralloc: topTransition(r.FullAlloc.TransitionCounts),
		})
	}
	return out
}

// topTransition returns the most frequent transition key ("(none)" when the
// log is empty). Ties break lexicographically for determinism.
func topTransition(counts map[string]int) string {
	if len(counts) == 0 {
		return "(none)"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := keys[0]
	for _, k := range keys[1:] {
		if counts[k] > counts[best] {
			best = k
		}
	}
	return best
}

// Table6FromEvents rebuilds the Table 6 aggregation purely from a
// structured event stream — e.g. one decoded from a -trace JSONL file with
// obs.ReadAll. Engines in the Table 5 machinery are labeled "app/mode/rule";
// the FullAdap cells' Transition events carry everything the in-process
// aggregation uses, so this reconstructs exactly the rows Table6From prints.
func Table6FromEvents(events []obs.Event) []TransitionRow {
	type cellKey struct{ app, rule string }
	counts := make(map[cellKey]map[string]int)
	var appOrder []string
	seen := make(map[string]bool)
	for _, ev := range events {
		app, mode, rule, ok := splitRunLabel(ev.EngineName())
		if !ok || mode != string(apps.ModeFullAdap) {
			continue
		}
		if !seen[app] {
			seen[app] = true
			appOrder = append(appOrder, app)
		}
		t, isTransition := ev.(obs.Transition)
		if !isTransition {
			continue
		}
		k := cellKey{app: app, rule: rule}
		if counts[k] == nil {
			counts[k] = make(map[string]int)
		}
		counts[k][fmt.Sprintf("%s: %s -> %s", t.Context, t.From, t.To)]++
	}
	out := make([]TransitionRow, 0, len(appOrder))
	for _, app := range appOrder {
		out = append(out, TransitionRow{
			App:    app,
			Rtime:  topTransition(counts[cellKey{app: app, rule: "Rtime"}]),
			Ralloc: topTransition(counts[cellKey{app: app, rule: "Ralloc"}]),
		})
	}
	return out
}

// splitRunLabel parses the "app/mode/rule" engine labels of the Table 5
// machinery.
func splitRunLabel(label string) (app, mode, rule string, ok bool) {
	parts := strings.SplitN(label, "/", 3)
	if len(parts) != 3 || parts[0] == "" {
		return "", "", "", false
	}
	return parts[0], parts[1], parts[2], true
}

// PrintTable6 renders the most common transitions.
func PrintTable6(w io.Writer, rows []TransitionRow) {
	header(w, "Table 6 — most commonly performed transitions")
	fmt.Fprintf(w, "%-10s | %-55s | %s\n", "Benchmark", "Rtime", "Ralloc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %-55s | %s\n", r.App, r.Rtime, r.Ralloc)
	}
}

// OverheadRow is one application of the Section 5.3 overhead experiment:
// the framework runs with monitoring enabled but an impossible rule, so any
// significant time difference is pure framework overhead.
type OverheadRow struct {
	App          string
	OriginalSec  []float64
	DisabledSec  []float64 // FullAdap with ImpossibleRule
	Significant  bool
	RelChangePct float64
}

// RunOverhead measures the Section 5.3 framework-overhead experiment.
func RunOverhead(sc Scale) []OverheadRow {
	return RunOverheadObs(sc, Obs{})
}

// RunOverheadObs is RunOverhead with observability wiring on the measured
// FullAdap runs.
func RunOverheadObs(sc Scale, o Obs) []OverheadRow {
	var out []OverheadRow
	for _, app := range apps.All(sc.AppScale) {
		row := OverheadRow{App: app.Name()}
		for i := 0; i < sc.AppWarmup; i++ {
			apps.Run(app, apps.ModeOriginal, core.Rtime(), 1)
			apps.Run(app, apps.ModeFullAdap, core.ImpossibleRule(), 1)
		}
		ao := apps.Obs{
			Label:       fmt.Sprintf("%s/%s/%s", app.Name(), apps.ModeFullAdap, core.ImpossibleRule().Name),
			Sink:        o.Sink,
			Metrics:     o.Metrics,
			Parallelism: o.Parallelism,
			Confidence:  o.Confidence,
			Models:      o.Models,
			EngineHook:  o.EngineHook,
		}
		for i := 0; i < sc.AppMeasured; i++ {
			orig := apps.Run(app, apps.ModeOriginal, core.Rtime(), 1)
			dis := apps.RunObs(app, apps.ModeFullAdap, core.ImpossibleRule(), 1, ao)
			row.OriginalSec = append(row.OriginalSec, orig.Elapsed.Seconds())
			row.DisabledSec = append(row.DisabledSec, dis.Elapsed.Seconds())
		}
		sig, rel := stats.SignificantDiff(row.OriginalSec, row.DisabledSec)
		row.Significant = sig
		row.RelChangePct = rel * 100
		out = append(out, row)
	}
	return out
}

// PrintOverhead renders the Section 5.3 results.
func PrintOverhead(w io.Writer, rows []OverheadRow) {
	header(w, "Section 5.3 — framework overhead (impossible rule, no switches)")
	fmt.Fprintf(w, "%-10s %12s %12s %14s %s\n",
		"Bench", "orig (s)", "w/ framework", "change", "significant?")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.3f %12.3f %+13.1f%% %v\n",
			r.App, stats.Mean(r.OriginalSec), stats.Mean(r.DisabledSec),
			r.RelChangePct, r.Significant)
	}
	fmt.Fprintln(w, "(paper: no significant difference on any benchmark)")
}
