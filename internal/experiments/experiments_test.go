package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

func TestThresholdAnalysisShape(t *testing.T) {
	results := RunThresholdAnalysis(5)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 adaptive types", len(results))
	}
	for _, res := range results {
		if len(res.Points) == 0 {
			t.Fatalf("%s: no points", res.Collection)
		}
		if res.Threshold < 20 || res.Threshold > 600 {
			t.Errorf("%s: threshold %d outside the swept range", res.Collection, res.Threshold)
		}
		// The benefit must be positive at the largest measured size:
		// linear scans always lose eventually.
		last := res.Points[len(res.Points)-1]
		if last.BenefitNs <= 0 {
			t.Errorf("%s: benefit still negative at size %d (%f ns)",
				res.Collection, last.Size, last.BenefitNs)
		}
	}
	var buf bytes.Buffer
	PrintThresholds(&buf, results)
	for _, want := range []string{"AdaptiveList", "AdaptiveSet", "AdaptiveMap", "Threshold"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("threshold report missing %q", want)
		}
	}
}

func TestFig5QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 sweep is slow")
	}
	sc := QuickScale()
	sc.Fig5Sizes = []int{300, 800}
	sc.Fig5Instances = 3000
	panels := RunFig5(sc)
	if len(panels) != 5 {
		t.Fatalf("got %d panels, want 5", len(panels))
	}
	for _, p := range panels {
		if len(p.Points) != 2 {
			t.Fatalf("%s: %d points", p.Name, len(p.Points))
		}
	}
	// Panel a at size 800: CollectionSwitch must have switched off
	// ArrayList and beat the baseline on time.
	a := panels[0].Points[1]
	if a.SelectedVariant == "" {
		t.Errorf("5a@800: never switched off ArrayList")
	}
	if a.SwitchTime >= a.BaselineTime {
		t.Errorf("5a@800: Switch %.4fs not faster than ArrayList %.4fs",
			a.SwitchTime, a.BaselineTime)
	}
	// Panel d: the Ralloc run must allocate less than the chained
	// baseline at both sizes.
	for _, p := range panels[3].Points {
		if p.SwitchAlloc >= p.BaselineAlloc {
			t.Errorf("5d@%d: Switch alloc %d not below baseline %d",
				p.Size, p.SwitchAlloc, p.BaselineAlloc)
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, panels)
	if !strings.Contains(buf.String(), "Figure 5a") {
		t.Error("fig5 report missing panel header")
	}
}

func TestFig6QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep is slow")
	}
	sc := QuickScale()
	sc.Fig6Instances = 2000
	sc.Fig6Reps = 2
	res := RunFig6(sc)
	if len(res.Iterations) != 10 { // 5 phases x 2 reps
		t.Fatalf("got %d iterations, want 10", len(res.Iterations))
	}
	// In the contains phases the LinkedList must be the slowest fixed
	// variant (sanity of the harness itself).
	first := res.Iterations[1]
	if first.LinkedList < first.ArrayList {
		t.Errorf("contains phase: LinkedList %.2fms faster than ArrayList %.2fms",
			first.LinkedList, first.ArrayList)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, res)
	if !strings.Contains(buf.String(), "search and remove") {
		t.Error("fig6 report missing phases")
	}
}

func TestFig7FlatOverhead(t *testing.T) {
	points := RunFig7(perfmodel.Default())
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	small := points[0].OverheadNs
	large := points[len(points)-1].OverheadNs
	if small <= 0 {
		t.Fatal("zero overhead measured")
	}
	// The decision step must not scale with window size: allow generous
	// noise but reject linear growth (1000x window -> <10x time).
	if large > 10*small+200 {
		t.Errorf("overhead grows with window size: %0.f ns @100 vs %0.f ns @100k", small, large)
	}
	var buf bytes.Buffer
	PrintFig7(&buf, points)
	if !strings.Contains(buf.String(), "window") {
		t.Error("fig7 report malformed")
	}
}

func TestTable2PrintsAllVariants(t *testing.T) {
	var buf bytes.Buffer
	PrintTable2(&buf)
	for _, info := range collections.AllVariantInfos() {
		if !strings.Contains(buf.String(), string(info.ID)) {
			t.Errorf("table 2 missing %s", info.ID)
		}
	}
}

func TestTable4Prints(t *testing.T) {
	var buf bytes.Buffer
	PrintTable4(&buf)
	for _, want := range []string{"Rtime", "Ralloc", "Time cost < 0.8", "alloc-b<0.80"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table 4 missing %q", want)
		}
	}
}

func TestTable5And6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 measurement is slow")
	}
	sc := QuickScale()
	sc.AppScale = 0.05
	sc.AppMeasured = 3
	sc.AppWarmup = 0
	rows := RunTable5(sc)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5 applications", len(rows))
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	for _, app := range []string{"avrora", "bloat", "fop", "h2", "lusearch"} {
		if !strings.Contains(buf.String(), app) {
			t.Errorf("table 5 missing %s", app)
		}
	}
	t6 := Table6From(rows)
	if len(t6) != 5 {
		t.Fatalf("table 6 rows = %d", len(t6))
	}
	buf.Reset()
	PrintTable6(&buf, t6)
	if !strings.Contains(buf.String(), "Rtime") {
		t.Error("table 6 malformed")
	}
}

func TestScalesSane(t *testing.T) {
	full := FullScale()
	if full.Fig5Instances != 100000 || full.AppMeasured != 30 || full.AppWarmup != 5 {
		t.Errorf("full scale does not match the paper: %+v", full)
	}
	if full.Fig5Sizes[0] != 100 || full.Fig5Sizes[len(full.Fig5Sizes)-1] != 1000 {
		t.Errorf("full sweep sizes wrong: %v", full.Fig5Sizes)
	}
	quick := QuickScale()
	if quick.Fig5Instances >= full.Fig5Instances {
		t.Error("quick scale not smaller than full")
	}
}

func TestTopTransition(t *testing.T) {
	if got := topTransition(nil); got != "(none)" {
		t.Errorf("empty = %q", got)
	}
	counts := map[string]int{"a": 2, "b": 5, "c": 1}
	if got := topTransition(counts); got != "b" {
		t.Errorf("top = %q, want b", got)
	}
	// Deterministic tie-break.
	tie := map[string]int{"z": 3, "a": 3}
	if got := topTransition(tie); got != "a" {
		t.Errorf("tie = %q, want a", got)
	}
}

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs are slow")
	}
	sc := QuickScale()
	sc.Fig5Instances = 1500
	res := RunAblation(sc)
	if len(res.Cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(res.Cells))
	}
	// The paper-default configuration (window 100, ratio 0.6, cubic
	// models) must reach the expected switch.
	for _, c := range res.Cells {
		if (c.Knob == "window-size" && c.Value == "100") ||
			(c.Knob == "finished-ratio" && c.Value == "0.6") ||
			(c.Knob == "model-degree" && c.Value == "3") {
			if !c.Switched {
				t.Errorf("%s=%s did not switch", c.Knob, c.Value)
			}
		}
	}
	var buf bytes.Buffer
	PrintAblation(&buf, res)
	if !strings.Contains(buf.String(), "window-size") {
		t.Error("ablation report malformed")
	}
}

func TestTable2IncludesExtensions(t *testing.T) {
	var buf bytes.Buffer
	PrintTable2(&buf)
	for _, info := range collections.ExtensionVariantInfos() {
		if !strings.Contains(buf.String(), string(info.ID)) {
			t.Errorf("table 2 missing extension %s", info.ID)
		}
	}
}
