package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/collections"
	"repro/internal/stats"
)

// This file is the transition-threshold analysis of Figure 3 / Table 1: for
// each adaptive collection type, find the size at which the cost of
// transitioning to the hash representation is surpassed by the cost of
// linear lookups over every element — the paper's criterion for fixing the
// adaptive thresholds.

// ThresholdPoint is one x-position of the Figure 3 curve.
type ThresholdPoint struct {
	Size int
	// BenefitNs is the measured benefit of transitioning at this size:
	// (array lookup cost over all elements) − (transition cost + hash
	// lookup cost over all elements). Positive means transitioning pays.
	BenefitNs float64
}

// ThresholdResult is the Figure 3 analysis of one adaptive type.
type ThresholdResult struct {
	Collection string // "AdaptiveList", "AdaptiveSet", "AdaptiveMap"
	Transition string // e.g. "array -> openhash"
	Points     []ThresholdPoint
	// Threshold is the smallest measured size with positive benefit —
	// the Table 1 value for this machine.
	Threshold int
}

// medianTime runs fn in batches large enough to defeat clock resolution
// (each timed region spans many repetitions) and returns the median cost of
// one fn call in nanoseconds — medians resist scheduler noise at these
// microsecond scales.
func medianTime(trials, reps int, fn func()) float64 {
	if reps < 1 {
		reps = 1
	}
	times := make([]float64, trials)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		times[t] = float64(time.Since(start).Nanoseconds()) / float64(reps)
	}
	return stats.Median(times)
}

// RunThresholdAnalysis measures the Figure 3 curves for the three adaptive
// types. The paper plots sizes 10..80 and finds thresholds 80/40/50 on
// JDK Integer collections; Go's unboxed int scans are several times
// cheaper, pushing the crossovers to larger sizes, so the sweep extends to
// 600 to keep the zero crossing visible (the measured values become this
// machine's Table 1).
func RunThresholdAnalysis(trials int) []ThresholdResult {
	sizes := make([]int, 0, 24)
	for s := 20; s <= 200; s += 20 {
		sizes = append(sizes, s)
	}
	for s := 250; s <= 600; s += 50 {
		sizes = append(sizes, s)
	}
	r := rand.New(rand.NewSource(99))

	list := ThresholdResult{Collection: "AdaptiveList", Transition: "array -> hash"}
	set := ThresholdResult{Collection: "AdaptiveSet", Transition: "array -> openhash"}
	mp := ThresholdResult{Collection: "AdaptiveMap", Transition: "array -> openhash"}

	for _, n := range sizes {
		keys := r.Perm(n * 2)[:n]
		reps := 1 + 50000/(n*10) // keep each timed region >= ~5us

		// --- Set: ArraySet scan vs transition + OpenHashSet lookups.
		arrSet := collections.NewArraySet[int]()
		for _, k := range keys {
			arrSet.Add(k)
		}
		arrayCost := medianTime(trials, reps, func() {
			for _, k := range keys {
				arrSet.Contains(k)
			}
		})
		transCost := medianTime(trials, reps, func() {
			h := collections.NewOpenHashSetPreset[int](collections.OpenFast, 2*n)
			for _, k := range keys {
				h.Add(k)
			}
		})
		hashSet := collections.NewOpenHashSetPreset[int](collections.OpenFast, 2*n)
		for _, k := range keys {
			hashSet.Add(k)
		}
		hashCost := medianTime(trials, reps, func() {
			for _, k := range keys {
				hashSet.Contains(k)
			}
		})
		set.Points = append(set.Points, ThresholdPoint{
			Size: n, BenefitNs: arrayCost - (transCost + hashCost),
		})

		// --- List: ArrayList scan vs HashArrayList bag build + lookups.
		arrList := collections.NewArrayList[int]()
		for _, k := range keys {
			arrList.Add(k)
		}
		arrayCostL := medianTime(trials, reps, func() {
			for _, k := range keys {
				arrList.Contains(k)
			}
		})
		transCostL := medianTime(trials, reps, func() {
			collections.NewHashArrayListFrom(append([]int(nil), keys...))
		})
		hashList := collections.NewHashArrayListFrom(append([]int(nil), keys...))
		hashCostL := medianTime(trials, reps, func() {
			for _, k := range keys {
				hashList.Contains(k)
			}
		})
		list.Points = append(list.Points, ThresholdPoint{
			Size: n, BenefitNs: arrayCostL - (transCostL + hashCostL),
		})

		// --- Map: ArrayMap scan vs transition + OpenHashMap lookups.
		arrMap := collections.NewArrayMap[int, int]()
		for _, k := range keys {
			arrMap.Put(k, k)
		}
		arrayCostM := medianTime(trials, reps, func() {
			for _, k := range keys {
				arrMap.Get(k)
			}
		})
		transCostM := medianTime(trials, reps, func() {
			h := collections.NewOpenHashMapPreset[int, int](collections.OpenFast, 2*n)
			for _, k := range keys {
				h.Put(k, k)
			}
		})
		hashMap := collections.NewOpenHashMapPreset[int, int](collections.OpenFast, 2*n)
		for _, k := range keys {
			hashMap.Put(k, k)
		}
		hashCostM := medianTime(trials, reps, func() {
			for _, k := range keys {
				hashMap.Get(k)
			}
		})
		mp.Points = append(mp.Points, ThresholdPoint{
			Size: n, BenefitNs: arrayCostM - (transCostM + hashCostM),
		})
	}

	for _, res := range []*ThresholdResult{&list, &set, &mp} {
		res.Threshold = crossover(res.Points)
	}
	return []ThresholdResult{list, set, mp}
}

// crossover returns the first size from which the benefit stays positive,
// or the last size if it never does.
func crossover(points []ThresholdPoint) int {
	for i, p := range points {
		if p.BenefitNs <= 0 {
			continue
		}
		positive := true
		for _, q := range points[i:] {
			if q.BenefitNs <= 0 {
				positive = false
				break
			}
		}
		if positive {
			return p.Size
		}
	}
	return points[len(points)-1].Size
}

// PrintThresholds renders the Figure 3 curves and the Table 1 thresholds.
func PrintThresholds(w io.Writer, results []ThresholdResult) {
	header(w, "Figure 3 / Table 1 — adaptive transition thresholds")
	fmt.Fprintf(w, "%-14s %-20s %s\n", "Col. Variant", "Transition", "Threshold (this machine)")
	for _, res := range results {
		fmt.Fprintf(w, "%-14s %-20s %d\n", res.Collection, res.Transition, res.Threshold)
	}
	fmt.Fprintln(w, "\nBenefit curves (ns; positive = transition pays):")
	fmt.Fprintf(w, "%6s", "size")
	for _, res := range results {
		fmt.Fprintf(w, " %14s", res.Collection)
	}
	fmt.Fprintln(w)
	for i := range results[0].Points {
		fmt.Fprintf(w, "%6d", results[0].Points[i].Size)
		for _, res := range results {
			fmt.Fprintf(w, " %14.0f", res.Points[i].BenefitNs)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper, i7-2760QM/JDK: list 80, set 40, map 50)")
}
