package experiments

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/collections"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// The ablation experiment quantifies the design decisions DESIGN.md §5
// calls out: the monitoring window size, the finished-ratio gate, the
// adaptive-candidate gate and the model degree. Each cell runs the
// lookup-heavy single-phase scenario through a context configured with one
// knob changed and reports whether (and after how many instances) the
// context reached the expected switch, plus the run time.

// AblationCell is one measured configuration.
type AblationCell struct {
	Knob     string
	Value    string
	Switched bool
	// SwitchedAfter is the number of instances created before the
	// context left the default variant (-1 if it never did).
	SwitchedAfter int
	Seconds       float64
}

// AblationResult groups the cells by knob.
type AblationResult struct {
	Cells []AblationCell
}

// runAblationCell drives the scenario against cfg and reports the outcome.
func runAblationCell(cfg core.Config, instances, size, lookups int) (bool, int, float64) {
	e := core.NewEngineManual(cfg)
	defer e.Close()
	ctx := core.NewListContext[int](e, core.WithName("ablation"))
	switchedAfter := -1
	created := 0
	hook := func() {
		runtime.GC()
		e.AnalyzeNow()
		if switchedAfter < 0 && ctx.CurrentVariant() != collections.ArrayListID {
			switchedAfter = created
		}
	}
	every := instances / 50
	if every < 1 {
		every = 1
	}
	res, _ := workload.SinglePhaseListHook(func() collections.List[int] {
		created++
		return ctx.NewList()
	}, instances, size, lookups, 1, every, hook)
	// The factory indirection above counts creations; ctx.NewList is
	// invoked through it so the switch point is attributable.
	return switchedAfter >= 0, switchedAfter, res.Elapsed.Seconds()
}

// RunAblation measures all ablation knobs at the given scale.
func RunAblation(sc Scale) AblationResult {
	instances := sc.Fig5Instances
	const size, lookups = 500, 500
	var out AblationResult
	add := func(knob, value string, cfg core.Config) {
		sw, after, secs := runAblationCell(cfg, instances, size, lookups)
		out.Cells = append(out.Cells, AblationCell{
			Knob: knob, Value: value,
			Switched: sw, SwitchedAfter: after, Seconds: secs,
		})
	}
	for _, w := range []int{10, 100, 1000} {
		add("window-size", fmt.Sprintf("%d", w), core.Config{WindowSize: w, Rule: core.Rtime()})
	}
	for _, fr := range []float64{0.2, 0.6, 1.0} {
		add("finished-ratio", fmt.Sprintf("%.1f", fr), core.Config{FinishedRatio: fr, Rule: core.Rtime()})
	}
	for _, cd := range []float64{-1, 3, 10} {
		add("cooldown-windows", fmt.Sprintf("%g", cd), core.Config{CooldownWindows: cd, Rule: core.Rtime()})
	}
	for _, deg := range []int{1, 2, 3} {
		add("model-degree", fmt.Sprintf("%d", deg), core.Config{
			Models: perfmodel.DefaultDegree(deg), Rule: core.Rtime(),
		})
	}
	return out
}

// PrintAblation renders the ablation table.
func PrintAblation(w io.Writer, res AblationResult) {
	header(w, "Ablations — framework design decisions (DESIGN.md §5)")
	fmt.Fprintf(w, "%-18s %8s %9s %14s %10s\n",
		"knob", "value", "switched", "after #insts", "time (s)")
	for _, c := range res.Cells {
		after := "-"
		if c.SwitchedAfter >= 0 {
			after = fmt.Sprintf("%d", c.SwitchedAfter)
		}
		fmt.Fprintf(w, "%-18s %8s %9v %14s %10.3f\n",
			c.Knob, c.Value, c.Switched, after, c.Seconds)
	}
	fmt.Fprintln(w, "(scenario: populate 500 + 500 lookups per instance; expected switch: ArrayList -> HashArrayList)")
}
