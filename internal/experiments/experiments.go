// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 5) on top of this repository's substrates.
// Each experiment returns structured data and offers a Print method that
// renders the same rows/series the paper reports; cmd/experiments is the
// CLI front end, and bench_test.go exposes each experiment as a testing.B
// benchmark.
//
// Absolute numbers are machine- and runtime-specific; the reproduction
// target is the shape of each result (who wins, by roughly what factor,
// where crossovers fall). EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
)

// Scale reduces or enlarges experiment workloads uniformly. Full is the
// paper's configuration; Quick suits tests and benches.
type Scale struct {
	// Fig5Instances is the number of collection instances per
	// single-phase run (paper: 100k).
	Fig5Instances int
	// Fig5Lookups is the per-instance lookup count for the set and map
	// panels (paper: 100).
	Fig5Lookups int
	// Fig5ListLookups is the per-instance lookup count for the list
	// panel. The paper uses 100 against JDK Integer equality; Go's
	// unboxed int scans are roughly 5x cheaper, so the same
	// discriminating power needs ~5x the lookups (see EXPERIMENTS.md).
	Fig5ListLookups int
	// Fig5Sizes are the swept collection sizes (paper: 100..1000).
	Fig5Sizes []int
	// Fig6Instances is the instance count per multi-phase iteration.
	Fig6Instances int
	// Fig6Size is the collection size in the multi-phase scenario.
	Fig6Size int
	// Fig6Reps is the number of iterations per phase (paper: 5).
	Fig6Reps int
	// Fig6Ops is the per-instance operation count per iteration
	// (paper: 100; raised for the same scan-cost reason as
	// Fig5ListLookups).
	Fig6Ops int
	// AppScale scales the DaCapo-substitute workloads.
	AppScale float64
	// AppWarmup/AppMeasured are run counts for Table 5 (paper: 5/30).
	AppWarmup, AppMeasured int
	// ThresholdTrials is the measurement repetition count in the
	// Figure 3 threshold analysis.
	ThresholdTrials int
}

// FullScale returns the paper's experiment configuration.
func FullScale() Scale {
	sizes := make([]int, 0, 10)
	for s := 100; s <= 1000; s += 100 {
		sizes = append(sizes, s)
	}
	return Scale{
		Fig5Instances:   100000,
		Fig5Sizes:       sizes,
		Fig5Lookups:     100,
		Fig5ListLookups: 500,
		Fig6Instances:   100000,
		Fig6Size:        500,
		Fig6Reps:        5,
		Fig6Ops:         500,
		AppScale:        1.0,
		AppWarmup:       5,
		AppMeasured:     30,
		ThresholdTrials: 51,
	}
}

// QuickScale returns a reduced configuration that exercises every code path
// in seconds.
func QuickScale() Scale {
	return Scale{
		Fig5Instances:   2000,
		Fig5Sizes:       []int{100, 300, 500, 800, 1000},
		Fig5Lookups:     100,
		Fig5ListLookups: 500,
		Fig6Instances:   2000,
		Fig6Size:        300,
		Fig6Reps:        2,
		Fig6Ops:         500,
		AppScale:        0.1,
		AppWarmup:       1,
		AppMeasured:     5,
		ThresholdTrials: 11,
	}
}

// header prints a section header in the experiment reports.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
