package core

import (
	"time"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// Decision explainability (ISSUE 6). The paper's answer to "why did the
// framework pick that variant?" is a trace log; decision records upgrade it
// to a queryable form: every analysis pass appends, per site, one bounded-
// ring record stating either what was decided (per-candidate cost estimates
// under the active rule, the winner, the margin) or the concrete reason no
// decision could fire (cooldown, window still filling, finished ratio not
// reached, warm-start hold, model gaps). Engine.Explain(site) serves the
// ring; the /sites/{name}/explain endpoint of internal/diag is its HTTP
// face. Recording happens exclusively inside analysis passes under the
// context mutex — the lock-free creation fast path never sees it — and
// emits no events, so traces are byte-identical with recording on or off.

// DecisionOutcome classifies one analysis pass at one allocation context.
type DecisionOutcome string

const (
	// OutcomeSwitched: the rule fired; Winner is the variant switched to
	// and a matching Transition event was emitted.
	OutcomeSwitched DecisionOutcome = "switched"
	// OutcomeHeld: the window closed and the rule was evaluated, but no
	// candidate beat the thresholds. Winner is the nearest miss and Margin
	// (≤ 0) how far it was from the first criterion's threshold.
	OutcomeHeld DecisionOutcome = "held"
	// OutcomeCooldown: the context is in its post-round cooldown; the next
	// Cooldown creations are handed out unmonitored and no window exists
	// to decide over.
	OutcomeCooldown DecisionOutcome = "cooldown"
	// OutcomeWindowFilling: the monitoring window has room (WindowFill of
	// WindowSize instances monitored so far).
	OutcomeWindowFilling DecisionOutcome = "window_filling"
	// OutcomeAwaitingFinished: the window is full but fewer than
	// NeededFolds instances have become unreachable (Folded counts them) —
	// the paper's finished-ratio gate.
	OutcomeAwaitingFinished DecisionOutcome = "awaiting_finished"
	// OutcomeWarmHold: a warm-started context closed a window without rule
	// evaluation because its observed profile stayed within the drift
	// threshold of the persisted one (Drift carries the measured value).
	OutcomeWarmHold DecisionOutcome = "warm_hold"
	// OutcomeModelMissing: the window closed but ranking was impossible —
	// the active models lack curves for the current variant or for every
	// alternative (ModelGaps lists the skipped candidates).
	OutcomeModelMissing DecisionOutcome = "model_missing"
	// OutcomeCIOverlap: confidence gating (Config.ConfidenceLevel) withheld
	// a switch — a candidate beat every point-estimate threshold but its
	// interval upper ratio did not. Winner names the suppressed candidate
	// and Margin (> 0) how far its point ratio cleared the first criterion;
	// a matching obs.SwitchSuppressed event was emitted.
	OutcomeCIOverlap DecisionOutcome = "ci_overlap"
)

// CandidateEstimate is one candidate's standing in a rule evaluation: the
// accumulated total costs TC_D over the closed window for each rule
// dimension, the TC_D(candidate)/TC_D(current) ratios, and whether the
// candidate satisfied every criterion (Reason names the first gate it
// failed: a criterion threshold or the adaptive-variant size gate; the
// current variant itself is listed with Reason "current").
type CandidateEstimate struct {
	Variant  collections.VariantID           `json:"variant"`
	Costs    map[perfmodel.Dimension]float64 `json:"costs"`
	Ratios   map[perfmodel.Dimension]float64 `json:"ratios,omitempty"`
	Eligible bool                            `json:"eligible"`
	Reason   string                          `json:"reason,omitempty"`
	// CostsLo/CostsHi bound Costs at the engine's configured confidence
	// level, and RatiosHi is the conservative upper ratio (candidate upper
	// bound over the current variant's lower bound) the confidence gate
	// compares against the thresholds. All absent when ConfidenceLevel is
	// unset.
	CostsLo  map[perfmodel.Dimension]float64 `json:"costs_lo,omitempty"`
	CostsHi  map[perfmodel.Dimension]float64 `json:"costs_hi,omitempty"`
	RatiosHi map[perfmodel.Dimension]float64 `json:"ratios_hi,omitempty"`
}

// DecisionRecord is one analysis pass at one site, as retained by the
// per-context explain ring (Config.DecisionRing, Engine.Explain). Round
// follows the Transition convention: the 0-based monitoring round that was
// in progress during the pass.
type DecisionRecord struct {
	When    time.Time             `json:"when"`
	Round   int                   `json:"round"`
	Variant collections.VariantID `json:"variant"` // current variant at pass time
	Outcome DecisionOutcome       `json:"outcome"`
	// Winner is the switch target (switched) or the nearest-miss candidate
	// (held); empty for passes that never ranked candidates.
	Winner collections.VariantID `json:"winner,omitempty"`
	// Margin is Criteria[0].Threshold − ratio₁(Winner): positive means the
	// winner cleared the first criterion by that much, negative (held) how
	// far the nearest miss was from triggering.
	Margin float64 `json:"margin,omitempty"`
	// Candidates holds the full per-candidate estimates of a rule
	// evaluation (switched/held outcomes only).
	Candidates []CandidateEstimate `json:"candidates,omitempty"`
	// ModelGaps lists candidates excluded from the ranking because the
	// active models lack curves the rule needs.
	ModelGaps []collections.VariantID `json:"model_gaps,omitempty"`
	// Cooldown / WindowFill / Folded / NeededFolds locate a waiting pass:
	// unmonitored creations remaining, monitored instances in the open
	// window, instances folded so far, and the finished-ratio target.
	Cooldown    int `json:"cooldown,omitempty"`
	WindowFill  int `json:"window_fill,omitempty"`
	Folded      int `json:"folded,omitempty"`
	NeededFolds int `json:"needed_folds,omitempty"`
	// Drift is the measured profile drift of a warm_hold pass.
	Drift float64 `json:"drift,omitempty"`
	// Repeats counts consecutive passes with this same waiting outcome
	// that were folded into this record instead of flooding the ring
	// (1 = the pass happened once).
	Repeats int `json:"repeats"`
}

// waiting reports whether the outcome is a no-op pass eligible for
// consecutive-record folding.
func (o DecisionOutcome) waiting() bool {
	switch o {
	case OutcomeCooldown, OutcomeWindowFilling, OutcomeAwaitingFinished:
		return true
	}
	return false
}

// decisionRing retains the last K decision records of one context. It is
// guarded by the owning siteCore's mutex (analyze appends while holding it;
// decisionRecords copies under it), so the ring itself is lock-free.
type decisionRing struct {
	buf   []DecisionRecord
	start int
	n     int
}

func newDecisionRing(capacity int) *decisionRing {
	if capacity < 1 {
		return nil
	}
	return &decisionRing{buf: make([]DecisionRecord, capacity)}
}

// push appends a record. Consecutive records with the same waiting outcome
// and variant collapse into one entry with a bumped Repeats count — a site
// sitting in a long cooldown keeps its ring informative instead of filling
// it with identical lines.
func (r *decisionRing) push(rec DecisionRecord) {
	rec.Repeats = 1
	if r.n > 0 && rec.Outcome.waiting() {
		last := &r.buf[(r.start+r.n-1)%len(r.buf)]
		if last.Outcome == rec.Outcome && last.Variant == rec.Variant {
			rec.Repeats = last.Repeats + 1
			*last = rec
			return
		}
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = rec
		r.n++
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % len(r.buf)
}

// records returns the retained records, oldest first.
func (r *decisionRing) records() []DecisionRecord {
	if r == nil {
		return nil
	}
	out := make([]DecisionRecord, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// SiteStatus is one allocation context's live introspection view: the
// warm-start snapshot plus the in-flight window and cooldown counters and
// the outcome of the most recent analysis pass. The diag server renders one
// per context under /sites.
type SiteStatus struct {
	SiteSnapshot
	WindowFill  int             `json:"window_fill"`
	Folded      int             `json:"folded"`
	Cooldown    int             `json:"cooldown"`
	LastOutcome DecisionOutcome `json:"last_outcome,omitempty"`
}

// SiteStatuses returns one live status per registered context, in
// registration order. Each status is captured under its context's lock;
// the set is not a cross-context atomic snapshot.
func (e *Engine) SiteStatuses() []SiteStatus {
	e.mu.Lock()
	ctxs := make([]analyzable, len(e.contexts))
	copy(ctxs, e.contexts)
	e.mu.Unlock()
	out := make([]SiteStatus, len(ctxs))
	for i, c := range ctxs {
		out[i] = c.siteStatus()
	}
	return out
}

// Explain returns the retained decision records of the named allocation
// context, oldest first — the queryable form of "why did (or didn't) this
// site switch". It returns nil for unknown sites and for engines with
// decision recording disabled (Config.DecisionRing < 0). The returned slice
// is a copy; records are immutable snapshots.
func (e *Engine) Explain(site string) []DecisionRecord {
	e.mu.Lock()
	var target analyzable
	for _, c := range e.contexts {
		if c.contextName() == site {
			target = c
			break
		}
	}
	e.mu.Unlock()
	if target == nil {
		return nil
	}
	return target.decisionRecords()
}
