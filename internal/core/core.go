// Package core implements CollectionSwitch itself: allocation contexts that
// instantiate, monitor and adaptively re-select collection variants at
// runtime (paper Sections 3 and 4).
//
// An allocation context stands in for one collection allocation site. It
// creates collections of its current variant, transparently wraps a sampled
// window of the created instances in monitors that record their workload
// profiles (operation counts and maximum size), detects instance death
// through weak pointers — the Go analogue of the paper's WeakReference
// technique — and periodically folds the observed workloads into per-variant
// total-cost estimates
//
//	TC_D(V) = Σ_instances Σ_op N_op · cost_{op,V}(s_max)
//
// using the performance models of package perfmodel. When a configurable
// selection rule (Table 4) finds a variant whose estimated costs beat the
// current one's, the context switches the variant used for future
// instantiations and starts a new monitoring round.
//
// The Engine owns the analysis loop: a single background goroutine wakes at
// the monitoring rate (default 50 ms) and analyzes every registered context.
// Folding is incremental — each finished instance is folded into running
// per-variant sums exactly once — so the periodic decision step costs O(
// candidates), independent of the window size (the property Figure 7
// measures).
package core

// Workload is an immutable snapshot of a profile, the W of Section 3.1.1.
// It is produced by profile.snapshot (profile.go), which aggregates the
// striped per-shard counters into these exact totals.
type Workload struct {
	Adds     int64
	Contains int64
	Iterates int64
	Middles  int64
	MaxSize  int64
}
