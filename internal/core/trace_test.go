package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// traceSink collects Logf events for assertions.
type traceSink struct {
	mu    sync.Mutex
	lines []string
}

func (s *traceSink) logf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lines = append(s.lines, fmt.Sprintf(format, args...))
}

func (s *traceSink) joined() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return strings.Join(s.lines, "\n")
}

func TestTraceLogEvents(t *testing.T) {
	sink := &traceSink{}
	e := NewEngineManual(Config{
		WindowSize:      10,
		FinishedRatio:   0.6,
		Rule:            Rtime(),
		CooldownWindows: -1,
		Logf:            sink.logf,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("trace:list"))
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow()

	log := sink.joined()
	for _, want := range []string{
		"context registered: trace:list",
		"transition at trace:list (round 0): list/array -> list/hasharray",
		"round 1 complete at trace:list (variant list/hasharray)",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("trace log missing %q; log:\n%s", want, log)
		}
	}
}

func TestNoTraceWithoutLogf(t *testing.T) {
	// Tracing disabled must not panic anywhere on the event paths.
	e := NewEngineManual(Config{WindowSize: 10, CooldownWindows: -1})
	defer e.Close()
	ctx := NewListContext[int](e)
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow()
	if len(e.Transitions()) == 0 {
		t.Fatal("expected a transition")
	}
}
