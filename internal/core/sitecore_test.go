package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/collections"
	"repro/internal/obs"
)

func TestDuplicateContextNamesDisambiguated(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{WindowSize: 10, Name: "dup", Sink: col})
	defer e.Close()

	first := NewListContext[int](e, WithName("site:x"))
	taken := NewSetContext[int](e, WithName("site:x#2")) // occupies the obvious suffix
	second := NewMapContext[int, int](e, WithName("site:x"))
	third := NewListContext[int](e, WithName("site:x"))

	if got := first.Name(); got != "site:x" {
		t.Errorf("first registrant renamed to %q, want site:x untouched", got)
	}
	if got := taken.Name(); got != "site:x#2" {
		t.Errorf("explicit site:x#2 renamed to %q", got)
	}
	if got := second.Name(); got != "site:x#3" {
		t.Errorf("second site:x = %q, want site:x#3 (probe past the taken #2)", got)
	}
	if got := third.Name(); got != "site:x#4" {
		t.Errorf("third site:x = %q, want site:x#4", got)
	}

	var dups []obs.DuplicateContextName
	for _, ev := range col.Events() {
		if d, ok := ev.(obs.DuplicateContextName); ok {
			dups = append(dups, d)
		}
	}
	want := []obs.DuplicateContextName{
		{Engine: "dup", Name: "site:x", Renamed: "site:x#3"},
		{Engine: "dup", Name: "site:x", Renamed: "site:x#4"},
	}
	if len(dups) != len(want) {
		t.Fatalf("saw %d DuplicateContextName events, want %d: %v", len(dups), len(want), dups)
	}
	for i, d := range dups {
		if d != want[i] {
			t.Errorf("dup event %d = %+v, want %+v", i, d, want[i])
		}
	}
	// The ContextRegistered event must carry the disambiguated name, so the
	// rest of the trace (Table 6 rows, window lines) never silently merges.
	var regs []string
	for _, ev := range col.Events() {
		if r, ok := ev.(obs.ContextRegistered); ok {
			regs = append(regs, r.Context)
		}
	}
	wantRegs := []string{"site:x", "site:x#2", "site:x#3", "site:x#4"}
	for i, r := range regs {
		if r != wantRegs[i] {
			t.Errorf("registration %d announced %q, want %q", i, r, wantRegs[i])
		}
	}
}

// TestRoundNumberingConventions pins the relationships documented under
// "Round numbering" in package obs: engine passes are 0-based, context
// monitoring rounds are 1-based completed ordinals, and Transition.Round is
// the deliberate 0-based exception (WindowClosed.Round - 1).
func TestRoundNumberingConventions(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{
		WindowSize:      10,
		FinishedRatio:   0.6,
		Rule:            Rtime(),
		CooldownWindows: -1, // reopen immediately so round two runs back to back
		Name:            "rounds",
		Sink:            col,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("rounds:list"))

	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow() // pass 0, closes monitoring round 1 (with a transition)
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow() // pass 1, closes monitoring round 2

	var passStarts, passEnds, windowRounds, cooldownRounds, transitionRounds, statRounds []int
	for _, ev := range col.Events() {
		switch v := ev.(type) {
		case obs.RoundStarted:
			passStarts = append(passStarts, v.Round)
		case obs.RoundCompleted:
			passEnds = append(passEnds, v.Round)
			for _, s := range v.Contexts {
				statRounds = append(statRounds, s.Round)
			}
		case obs.WindowClosed:
			windowRounds = append(windowRounds, v.Round)
		case obs.CooldownEntered:
			cooldownRounds = append(cooldownRounds, v.Round)
		case obs.Transition:
			transitionRounds = append(transitionRounds, v.Round)
		}
	}

	assertInts := func(label string, got, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s = %v, want %v", label, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s = %v, want %v", label, got, want)
				return
			}
		}
	}
	// Engine analysis passes: 0-based.
	assertInts("RoundStarted rounds", passStarts, []int{0, 1})
	assertInts("RoundCompleted rounds", passEnds, []int{0, 1})
	// Context monitoring rounds: 1-based completed ordinals.
	assertInts("WindowClosed rounds", windowRounds, []int{1, 2})
	// ContextWindowStat.Round == rounds completed when the pass ended ==
	// the 1-based ordinal of the last closed round.
	assertInts("ContextWindowStat rounds", statRounds, []int{1, 2})
	if got := ctx.Round(); got != 2 {
		t.Errorf("ctx.Round() = %d, want 2 completed rounds", got)
	}
	// Transition.Round is the deliberate 0-based exception: the index of the
	// monitoring round in progress when the switch fired.
	if len(transitionRounds) == 0 {
		t.Fatal("no transition fired; workload should force array -> hasharray")
	}
	if transitionRounds[0] != windowRounds[0]-1 {
		t.Errorf("Transition.Round = %d, want WindowClosed.Round-1 = %d",
			transitionRounds[0], windowRounds[0]-1)
	}
	// CooldownWindows < 0 disables the cooldown, so no CooldownEntered should
	// appear; the 1-based convention for it is covered by TestEngineEventFlow.
	assertInts("CooldownEntered rounds", cooldownRounds, nil)
}

// TestConcurrentCreationRace hammers all three context types from many
// goroutines while a background engine analyzes concurrently. Run under
// -race (CI does) it proves the lock-light creation path and the parallel
// analysis pool are data-race free.
func TestConcurrentCreationRace(t *testing.T) {
	e := NewEngine(Config{
		WindowSize:      25,
		FinishedRatio:   0.6,
		MonitorRate:     time.Millisecond,
		Rule:            Rtime(),
		CooldownWindows: 1,
	})
	defer e.Close()

	lists := NewListContext[int](e, WithName("race:list"))
	sets := NewSetContext[int](e, WithName("race:set"))
	maps := NewMapContext[int, int](e, WithName("race:map"))

	const goroutines = 8
	const perG = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l := lists.NewList()
				l.Add(i)
				l.Contains(i)
				s := sets.NewSet()
				s.Add(i)
				m := maps.NewMap()
				m.Put(i, g)
				if i%100 == 0 {
					runtime.GC()
					e.AnalyzeNow() // manual passes race against the background loop
				}
			}
		}(g)
	}
	wg.Wait()

	want := int64(3 * goroutines * perG)
	if got := e.Metrics().InstancesCreated.Load(); got != want {
		t.Errorf("InstancesCreated = %d, want %d (no creation lost or duplicated)", got, want)
	}
}

// fastPathContext returns a list context parked in the given state:
// stateWindowFull (window filled, awaiting analysis — the pure-load fast
// path) or a cooldown with budget CAS-decrement slots remaining.
func fastPathContext(t testing.TB, state int64, budget int) (*Engine, *ListContext[int]) {
	t.Helper()
	e := NewEngineManual(Config{
		WindowSize:      10,
		FinishedRatio:   0.6,
		Rule:            Rtime(),
		CooldownWindows: float64(budget) / 10.0,
	})
	ctx := NewListContext[int](e, WithName("fast:list"))
	for i := 0; i < 10; i++ {
		ctx.NewList().Add(i)
	}
	if state == stateWindowFull {
		if got := ctx.core.state.Load(); got != stateWindowFull {
			t.Fatalf("state = %d after filling the window, want %d", got, stateWindowFull)
		}
		return e, ctx
	}
	runtime.GC()
	e.AnalyzeNow() // closes the round, entering the cooldown
	if got := ctx.core.state.Load(); got != int64(budget) {
		t.Fatalf("state = %d after analysis, want cooldown %d", got, budget)
	}
	return e, ctx
}

// allocSink forces the measured collections to escape, so the baseline and
// the context path are compared on equal footing.
var allocSink collections.List[int]

// TestFastPathAllocsOnlyCollection asserts the creation fast path allocates
// nothing beyond what the variant factory itself allocates, in both
// lock-free states (window full and cooldown).
func TestFastPathAllocsOnlyCollection(t *testing.T) {
	baseline := testing.AllocsPerRun(200, func() { allocSink = collections.NewArrayListCap[int](0) })

	t.Run("window-full", func(t *testing.T) {
		e, ctx := fastPathContext(t, stateWindowFull, 0)
		defer e.Close()
		got := testing.AllocsPerRun(200, func() { allocSink = ctx.NewList() })
		if got > baseline {
			t.Errorf("fast path allocs/op = %g, factory alone = %g", got, baseline)
		}
	})
	t.Run("cooldown", func(t *testing.T) {
		// Budget must outlast AllocsPerRun's warmup + measured runs.
		e, ctx := fastPathContext(t, 1, 1000)
		defer e.Close()
		got := testing.AllocsPerRun(200, func() { allocSink = ctx.NewList() })
		if got > baseline {
			t.Errorf("cooldown path allocs/op = %g, factory alone = %g", got, baseline)
		}
		if rem := ctx.core.state.Load(); rem <= 0 || rem >= 1000 {
			t.Errorf("cooldown budget = %d after runs, want decremented within (0, 1000)", rem)
		}
	})
}

// TestFastPathTakesNoMutex proves lock-freedom directly: with the context
// mutex held by the test, window-full creations must still return (the slow
// path would deadlock here).
func TestFastPathTakesNoMutex(t *testing.T) {
	e, ctx := fastPathContext(t, stateWindowFull, 0)
	defer e.Close()
	ctx.core.mu.Lock()
	defer ctx.core.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			ctx.NewList().Add(i)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("window-full creation blocked on the context mutex")
	}
}

// BenchmarkNewParallel measures contended creation throughput on the
// lock-free fast path (window full, awaiting the finished ratio — a pure
// atomic load, no CAS, no mutex). Allocations per op should equal the
// variant factory's own footprint; compare BenchmarkNewListBaseline.
func BenchmarkNewParallel(b *testing.B) {
	e, ctx := fastPathContext(b, stateWindowFull, 0)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = ctx.NewList()
		}
	})
}

// BenchmarkNewParallelCooldown exercises the CAS-decrement cooldown path
// under contention. The cooldown budget is topped back up outside the timer
// whenever it runs dry.
func BenchmarkNewParallelCooldown(b *testing.B) {
	e, ctx := fastPathContext(b, 1, 1<<30)
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = ctx.NewList()
		}
	})
	if ctx.core.state.Load() <= 0 {
		b.Fatal("cooldown budget exhausted mid-benchmark; raise the top-up")
	}
}

// BenchmarkNewListBaseline is the factory-only control for the parallel
// creation benchmarks.
func BenchmarkNewListBaseline(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = collections.NewArrayListCap[int](0)
		}
	})
}

// BenchmarkAnalyzeNowParallelism measures one analysis pass over many
// contexts at parallelism 1 vs GOMAXPROCS — the scaling claim behind
// Config.AnalysisParallelism.
func BenchmarkAnalyzeNowParallelism(b *testing.B) {
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts = workerCounts[:1] // single-CPU host: nothing to compare
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewEngineManual(Config{
				WindowSize:          10,
				Rule:                Rtime(),
				CooldownWindows:     -1,
				AnalysisParallelism: workers,
			})
			defer e.Close()
			for i := 0; i < 32; i++ {
				ctx := NewListContext[int](e, WithName(fmt.Sprintf("bench:%d", i)))
				for j := 0; j < 10; j++ {
					ctx.NewList().Add(j)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.AnalyzeNow()
			}
		})
	}
}
