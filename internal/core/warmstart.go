package core

import (
	"math"

	"repro/internal/collections"
)

// Warm start closes the cold-start gap the paper's design accepts: every
// process begins on default variants and pays a full monitoring round per
// site before the first switch. A WarmStarter (implemented by the
// tuner.Store) replays the previous process's per-site decisions at
// registration time, and the drift check below decides — per window — whether
// the persisted decision still describes the workload the site actually
// observes. While it does, rule evaluation is skipped (no transitions, no
// rule-evaluation counters); once the observed profile drifts past
// Config.DriftThreshold the site sheds its warm state and resumes normal
// selection.

// WorkloadProfile is the aggregated workload shape of an allocation site:
// operation totals, instance count, and the size statistics of the monitored
// instances. It is the unit of drift comparison and the per-site payload of
// the warm-start store.
type WorkloadProfile struct {
	Adds      float64 `json:"adds"`
	Contains  float64 `json:"contains"`
	Iterates  float64 `json:"iterates"`
	Middles   float64 `json:"middles"`
	Instances int64   `json:"instances"`
	MeanSize  float64 `json:"mean_size"`
	MaxSize   int64   `json:"max_size"`
}

// observe folds one finished instance's workload into the profile.
func (p *WorkloadProfile) observe(w Workload) {
	p.Adds += float64(w.Adds)
	p.Contains += float64(w.Contains)
	p.Iterates += float64(w.Iterates)
	p.Middles += float64(w.Middles)
	p.Instances++
	p.MeanSize += (float64(w.MaxSize) - p.MeanSize) / float64(p.Instances)
	if w.MaxSize > p.MaxSize {
		p.MaxSize = w.MaxSize
	}
}

// ops returns the total operation count of the profile.
func (p WorkloadProfile) ops() float64 {
	return p.Adds + p.Contains + p.Iterates + p.Middles
}

// Drift measures how far two workload profiles diverge, in [0, ~]. It is the
// maximum of two components: the total-variation distance of the operation
// mixes (0 = identical mix, 1 = disjoint operations) and the size drift
// |log2(meanA/meanB)|/4 (a 16× mean-size change scores 1). Profiles with no
// observed instances cannot contradict anything and drift 0; a profile that
// performs operations drifts 1 from one that performs none. The default
// threshold (Config.DriftThreshold = 0.5) tolerates moderate mix shifts and
// up to a 4× size change before a warm site re-opens selection.
func Drift(a, b WorkloadProfile) float64 {
	if a.Instances == 0 || b.Instances == 0 {
		return 0
	}
	opsA, opsB := a.ops(), b.ops()
	var mix float64
	switch {
	case opsA > 0 && opsB > 0:
		mix = (math.Abs(a.Adds/opsA-b.Adds/opsB) +
			math.Abs(a.Contains/opsA-b.Contains/opsB) +
			math.Abs(a.Iterates/opsA-b.Iterates/opsB) +
			math.Abs(a.Middles/opsA-b.Middles/opsB)) / 2
	case opsA != opsB:
		mix = 1
	}
	sa, sb := a.MeanSize, b.MeanSize
	if sa < 1 {
		sa = 1
	}
	if sb < 1 {
		sb = 1
	}
	size := math.Abs(math.Log2(sa)-math.Log2(sb)) / 4
	return math.Max(mix, size)
}

// WarmDecision is one persisted site decision: the variant the site had
// settled on and the workload profile it was observed under.
type WarmDecision struct {
	Variant collections.VariantID
	Profile WorkloadProfile
}

// WarmStarter supplies persisted site decisions at context registration.
// WarmLookup receives the context's final (duplicate-disambiguated) name and
// reports the stored decision, ok=false for unknown sites. Implementations
// must not call back into the registering Engine. The canonical
// implementation is the tuner.Store.
type WarmStarter interface {
	WarmLookup(context string) (WarmDecision, bool)
}

// SiteSnapshot is the externally visible state of one allocation context:
// what it selected, what it observed, and whether it is running warm. The
// tuner persists snapshots to the warm-start store and plans its shadow
// benchmarks at the observed sizes.
type SiteSnapshot struct {
	Name        string                  `json:"name"`
	Abstraction string                  `json:"abstraction"` // "list", "set", "map"
	Variant     collections.VariantID   `json:"variant"`
	Candidates  []collections.VariantID `json:"candidates"`
	Rounds      int                     `json:"rounds"`
	Warm        bool                    `json:"warm"`
	Profile     WorkloadProfile         `json:"profile"`
}

// SiteSnapshots returns one snapshot per registered context, in registration
// order.
func (e *Engine) SiteSnapshots() []SiteSnapshot {
	e.mu.Lock()
	ctxs := make([]analyzable, len(e.contexts))
	copy(ctxs, e.contexts)
	e.mu.Unlock()
	out := make([]SiteSnapshot, len(ctxs))
	for i, c := range ctxs {
		out[i] = c.siteSnapshot()
	}
	return out
}
