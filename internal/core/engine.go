package core

import (
	"sync"
	"time"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// sharedDefaultModels builds the default performance models once per
// process: every engine without explicit models reads the same instance
// (Models are concurrency-safe after construction), keeping the framework's
// fixed memory overhead independent of how many engines run.
var sharedDefaultModels = sync.OnceValue(perfmodel.Default)

// Config parametrizes an Engine. The zero value is usable: every field
// falls back to the paper's evaluation settings (Section 5: window size
// 100, finished ratio 0.6, monitoring rate 50 ms, rule Rtime, default
// performance models).
type Config struct {
	// WindowSize is the number of instances monitored per round at each
	// allocation context.
	WindowSize int
	// FinishedRatio is the fraction of the monitored window that must
	// have finished (become unreachable) before the context may act.
	FinishedRatio float64
	// MonitorRate is the period of the background analysis task.
	MonitorRate time.Duration
	// Rule is the selection rule applied at analysis time.
	Rule Rule
	// Models are the performance models consulted for cost estimates.
	Models *perfmodel.Models
	// AdaptiveSizeSpread gates adaptive variants: they become candidates
	// only when the observed max sizes of the monitored instances spread
	// by at least this factor between the smallest and largest instance
	// (Section 3.2: "widely ranging sizes"). Zero uses the default (4).
	AdaptiveSizeSpread float64
	// CooldownWindows throttles monitoring: after each analysis round, the
	// next CooldownWindows×WindowSize instances are created unmonitored.
	// This bounds the sampled fraction of instances (the paper bounds it
	// through the 50ms monitoring rate against millions of creations per
	// second) and with it the monitor overhead. Zero uses the default
	// (3); negative disables the cooldown.
	CooldownWindows float64
	// Logf, when non-nil, receives framework trace events (context
	// registration, completed analysis rounds, transitions) — the
	// "detailed log system for tracing framework events" the paper
	// describes as its debuggability mitigation (Section 4.4). The
	// callback runs on the analysis goroutine; keep it fast.
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields with the paper's settings.
func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 100
	}
	if c.FinishedRatio <= 0 {
		c.FinishedRatio = 0.6
	}
	if c.FinishedRatio > 1 {
		c.FinishedRatio = 1
	}
	if c.MonitorRate <= 0 {
		c.MonitorRate = 50 * time.Millisecond
	}
	if c.Rule.Name == "" {
		c.Rule = Rtime()
	}
	if c.Models == nil {
		c.Models = sharedDefaultModels()
	}
	if c.AdaptiveSizeSpread <= 0 {
		c.AdaptiveSizeSpread = 4
	}
	if c.CooldownWindows == 0 {
		c.CooldownWindows = 3
	}
	if c.CooldownWindows < 0 {
		c.CooldownWindows = 0
	}
	return c
}

// Transition records one variant switch performed by an allocation context,
// feeding the Table 6 aggregation and the framework's trace log.
type Transition struct {
	Context string                // allocation-context name (site label)
	From    collections.VariantID //
	To      collections.VariantID //
	Round   int                   // monitoring round that triggered it
	// Ratios holds TC_D(new)/TC_D(current) per rule dimension at the
	// moment of the switch.
	Ratios map[perfmodel.Dimension]float64
	When   time.Time
}

// analyzable is the engine-facing face of a generic allocation context.
type analyzable interface {
	analyze()
	contextName() string
}

// Engine coordinates allocation contexts: it owns the configuration, the
// periodic analysis loop and the transition log. Create one per application
// (or per subsystem) and register contexts against it.
type Engine struct {
	cfg Config

	mu          sync.Mutex
	contexts    []analyzable
	transitions []Transition
	closed      bool

	background bool // whether loop() was started
	stop       chan struct{}
	done       chan struct{}
}

// NewEngine returns an Engine running its background analysis loop at the
// configured monitoring rate. Call Close to stop it.
func NewEngine(cfg Config) *Engine {
	e := newEngine(cfg)
	e.background = true
	go e.loop()
	return e
}

// NewEngineManual returns an Engine without a background loop; analysis
// runs only when AnalyzeNow is called. Experiments and tests use this for
// deterministic scheduling.
func NewEngineManual(cfg Config) *Engine {
	return newEngine(cfg)
}

func newEngine(cfg Config) *Engine {
	return &Engine{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

func (e *Engine) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.MonitorRate)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.AnalyzeNow()
		}
	}
}

// Close stops the background loop (if any). It is idempotent. Contexts
// remain usable for collection creation afterwards but no further analysis
// runs unless AnalyzeNow is called explicitly.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	background := e.background
	e.mu.Unlock()
	if background {
		close(e.stop)
		<-e.done
	}
}

// AnalyzeNow runs one synchronous analysis pass over every registered
// context. The background loop calls this on each tick.
func (e *Engine) AnalyzeNow() {
	e.mu.Lock()
	ctxs := make([]analyzable, len(e.contexts))
	copy(ctxs, e.contexts)
	e.mu.Unlock()
	for _, c := range ctxs {
		c.analyze()
	}
}

// register adds a context to the analysis schedule.
func (e *Engine) register(c analyzable) {
	e.mu.Lock()
	e.contexts = append(e.contexts, c)
	e.mu.Unlock()
	e.logf("context registered: %s", c.contextName())
}

// logf emits a trace event if tracing is configured.
func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// logTransition appends to the transition log.
func (e *Engine) logTransition(t Transition) {
	e.mu.Lock()
	e.transitions = append(e.transitions, t)
	e.mu.Unlock()
	e.logf("transition at %s (round %d): %s -> %s", t.Context, t.Round, t.From, t.To)
}

// Transitions returns a copy of the transition log in occurrence order.
func (e *Engine) Transitions() []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Transition, len(e.transitions))
	copy(out, e.transitions)
	return out
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// ContextCount returns the number of registered allocation contexts.
func (e *Engine) ContextCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.contexts)
}
