package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collections"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// sharedDefaultModels builds the default performance models once per
// process: every engine without explicit models reads the same instance
// (Models are concurrency-safe after construction), keeping the framework's
// fixed memory overhead independent of how many engines run.
var sharedDefaultModels = sync.OnceValue(perfmodel.Default)

// Config parametrizes an Engine. The zero value is usable: every field
// falls back to the paper's evaluation settings (Section 5: window size
// 100, finished ratio 0.6, monitoring rate 50 ms, rule Rtime, default
// performance models).
type Config struct {
	// WindowSize is the number of instances monitored per round at each
	// allocation context.
	WindowSize int
	// FinishedRatio is the fraction of the monitored window that must
	// have finished (become unreachable) before the context may act.
	FinishedRatio float64
	// MonitorRate is the period of the background analysis task.
	MonitorRate time.Duration
	// Rule is the selection rule applied at analysis time.
	Rule Rule
	// Models are the performance models consulted for cost estimates.
	Models *perfmodel.Models
	// AdaptiveSizeSpread gates adaptive variants: they become candidates
	// only when the observed max sizes of the monitored instances spread
	// by at least this factor between the smallest and largest instance
	// (Section 3.2: "widely ranging sizes"). Zero uses the default (4).
	AdaptiveSizeSpread float64
	// CooldownWindows throttles monitoring: after each analysis round, the
	// next CooldownWindows×WindowSize instances are created unmonitored.
	// This bounds the sampled fraction of instances (the paper bounds it
	// through the 50ms monitoring rate against millions of creations per
	// second) and with it the monitor overhead. Zero uses the default
	// (3); negative disables the cooldown.
	CooldownWindows float64
	// AnalysisParallelism bounds the worker pool AnalyzeNow fans registered
	// contexts over. Zero uses the default (GOMAXPROCS); 1 analyzes
	// contexts sequentially in registration order, reproducing the
	// single-threaded event ordering exactly (deterministic tests and
	// traces); values above 1 let analysis latency stay flat as the
	// context count grows, at the price of interleaved per-context event
	// order. Negative values are clamped to 1 (reported as ConfigClamped).
	AnalysisParallelism int
	// AnalysisSpans, when true (and a Sink is attached), emits one
	// obs.ContextAnalyzed span event per context per analysis pass, with
	// the context's analyze duration. Off by default: span events are a
	// debugging aid and would grow traces by one line per context per
	// pass.
	AnalysisSpans bool
	// WarmStart, when non-nil, is consulted once per context registration:
	// a stored decision for the context's (final) name restores its variant
	// before the first collection is created, and the context skips rule
	// evaluation while its observed workload stays within DriftThreshold of
	// the stored profile (see warmstart.go). Nil — the default — reproduces
	// the historical cold-start behavior exactly. The canonical
	// implementation is the warm-start store of internal/tuner.
	WarmStart WarmStarter
	// DriftThreshold bounds how far a warm-started context's observed
	// workload profile may drift from the persisted one (core.Drift) before
	// the context sheds its warm state and resumes normal selection. Zero
	// uses the default (0.5); negative values are clamped to 0 (any
	// measurable drift re-opens selection) and reported as ConfigClamped.
	DriftThreshold float64
	// DecisionRing bounds the per-context ring of decision records served
	// by Engine.Explain (and the diag /sites/{name}/explain endpoint): each
	// analysis pass appends one record explaining what was decided or why
	// nothing could be. Zero uses the default (16); negative disables
	// recording entirely. Records live only in memory, are written only
	// inside analysis passes (never on the creation fast path) and emit no
	// events, so traces are identical with recording on or off.
	DecisionRing int
	// ConfidenceLevel, when in (0, 1), arms confidence-aware switching:
	// model curves that carry prediction variance widen each candidate's
	// accumulated cost into an interval at this level, and a switch fires
	// only when the candidate's conservative upper ratio clears every
	// criterion threshold. Overlapping intervals hold the current variant,
	// reported as ci_overlap decision records, switch_suppressed events and
	// the switches_suppressed_ci_total counter. Zero — the default —
	// disables all interval work: decisions and traces are byte-identical
	// to the point-estimate engine. Negative values clamp to 0 and values
	// ≥ 1 clamp to 0.999 (both reported as ConfigClamped).
	ConfidenceLevel float64
	// Name labels this engine in emitted events, distinguishing engines
	// when several share a sink or registry (e.g. the Table 5 sweep).
	Name string
	// Sink, when non-nil, receives the structured framework events of
	// package obs — the typed successor of the paper's "detailed log
	// system for tracing framework events" (Section 4.4). Events are
	// emitted on the analysis goroutine; keep sinks fast. With a nil
	// Sink the event paths are skipped entirely and add no allocations.
	Sink obs.Sink
	// Metrics receives the engine's counters and histograms. Nil gets a
	// private registry; pass a shared one to aggregate across engines.
	Metrics *obs.Registry
	// Logf, when non-nil, receives framework trace events in legacy
	// printf form; it is adapted onto the event stream via obs.LogfSink
	// and renders the historical lines byte-identically. The callback
	// runs on the analysis goroutine; keep it fast.
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields with the paper's settings and reports the
// fields that validation had to rewrite, so misconfiguration surfaces as
// ConfigClamped events rather than silent clamping.
func (c Config) withDefaults() (Config, []obs.ConfigClamped) {
	var clamps []obs.ConfigClamped
	if c.WindowSize <= 0 {
		c.WindowSize = 100
	}
	if c.FinishedRatio <= 0 {
		c.FinishedRatio = 0.6
	}
	if c.FinishedRatio > 1 {
		clamps = append(clamps, obs.ConfigClamped{Field: "FinishedRatio", From: c.FinishedRatio, To: 1})
		c.FinishedRatio = 1
	}
	if c.MonitorRate <= 0 {
		c.MonitorRate = 50 * time.Millisecond
	}
	if c.Rule.Name == "" {
		c.Rule = Rtime()
	}
	if c.Models == nil {
		c.Models = sharedDefaultModels()
	}
	if c.AdaptiveSizeSpread <= 0 {
		c.AdaptiveSizeSpread = 4
	}
	if c.CooldownWindows == 0 {
		c.CooldownWindows = 3
	}
	if c.CooldownWindows < 0 {
		// Negative means "cooldown disabled" (documented API), but it is
		// also the most common way to fat-finger the field — report it.
		clamps = append(clamps, obs.ConfigClamped{Field: "CooldownWindows", From: c.CooldownWindows, To: 0})
		c.CooldownWindows = 0
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.5
	}
	if c.DriftThreshold < 0 {
		clamps = append(clamps, obs.ConfigClamped{Field: "DriftThreshold", From: c.DriftThreshold, To: 0})
		c.DriftThreshold = 0
	}
	if c.DecisionRing == 0 {
		c.DecisionRing = 16
	}
	if c.ConfidenceLevel < 0 {
		clamps = append(clamps, obs.ConfigClamped{Field: "ConfidenceLevel", From: c.ConfidenceLevel, To: 0})
		c.ConfidenceLevel = 0
	}
	if c.ConfidenceLevel >= 1 {
		clamps = append(clamps, obs.ConfigClamped{Field: "ConfidenceLevel", From: c.ConfidenceLevel, To: 0.999})
		c.ConfidenceLevel = 0.999
	}
	if c.AnalysisParallelism == 0 {
		c.AnalysisParallelism = runtime.GOMAXPROCS(0)
	}
	if c.AnalysisParallelism < 0 {
		clamps = append(clamps, obs.ConfigClamped{Field: "AnalysisParallelism", From: float64(c.AnalysisParallelism), To: 1})
		c.AnalysisParallelism = 1
	}
	return c, clamps
}

// Transition records one variant switch performed by an allocation context,
// feeding the Table 6 aggregation and the framework's trace log.
type Transition struct {
	Context string                // allocation-context name (site label)
	From    collections.VariantID //
	To      collections.VariantID //
	Round   int                   // monitoring round that triggered it
	// Ratios holds TC_D(new)/TC_D(current) per rule dimension at the
	// moment of the switch.
	Ratios map[perfmodel.Dimension]float64
	When   time.Time
}

// analyzable is the engine-facing face of a generic allocation context.
type analyzable interface {
	analyze()
	contextName() string
	// rename disambiguates a duplicate site label; Engine.register calls it
	// before the context is published to the analysis schedule.
	rename(string)
	windowStats() obs.ContextWindowStat
	// warmStart restores a persisted decision; Engine.register calls it
	// (pre-publication) when Config.WarmStart knows the site. False means
	// the stored variant is not in the context's candidate pool.
	warmStart(WarmDecision) bool
	siteSnapshot() SiteSnapshot
	// decisionRecords returns the context's explain ring, oldest first
	// (nil when Config.DecisionRing disabled recording).
	decisionRecords() []DecisionRecord
	// siteStatus is siteSnapshot plus the live window/cooldown counters and
	// last decision outcome, captured under one lock for the diag server.
	siteStatus() SiteStatus
}

// Engine coordinates allocation contexts: it owns the configuration, the
// periodic analysis loop, the transition log and the telemetry plumbing.
// Create one per application (or per subsystem) and register contexts
// against it.
type Engine struct {
	cfg     Config
	sink    obs.Sink      // resolved sink (Config.Sink + Logf adapter); nil disables events
	metrics *obs.Registry // never nil

	// models is the hot-swappable cost-model handle (Config.Models at
	// construction, replaced by SetModels). Contexts load it when they
	// build a window's cost aggregate, so a swap takes effect at each
	// context's next window without stopping monitoring.
	models atomic.Pointer[perfmodel.Models]
	// ruleDims are the distinct dimensions of cfg.Rule's criteria — the
	// only dimensions a window aggregate needs to accumulate (and the only
	// ones candidates need model curves for).
	ruleDims []perfmodel.Dimension
	// confZ is the normal quantile of cfg.ConfidenceLevel (0 when the
	// confidence gate is off); site cores arm their window aggregates with
	// it at construction.
	confZ float64

	mu          sync.Mutex
	contexts    []analyzable
	names       map[string]int // site label -> registrations seen (duplicate detection)
	transitions []Transition
	rounds      int // completed AnalyzeNow passes
	closed      bool

	// analysisMu serializes analysis passes; Close acquires it to wait
	// for any in-flight pass before returning.
	analysisMu sync.Mutex

	// batch is the active analysis pass's event batch (nil outside passes).
	// Events produced inside a pass accumulate here and reach the sink in
	// one batched delivery when the pass ends — one sink call per pass, not
	// per event — preserving emission order exactly. Events produced outside
	// passes (registration, close, model swaps, clamps) go straight to the
	// sink as before.
	batch atomic.Pointer[obs.Batch]

	background bool // whether loop() was started
	stop       chan struct{}
	done       chan struct{}
}

// NewEngine returns an Engine running its background analysis loop at the
// configured monitoring rate. Call Close to stop it.
func NewEngine(cfg Config) *Engine {
	e := newEngine(cfg)
	e.background = true
	go e.loop()
	return e
}

// NewEngineManual returns an Engine without a background loop; analysis
// runs only when AnalyzeNow is called. Experiments and tests use this for
// deterministic scheduling.
func NewEngineManual(cfg Config) *Engine {
	return newEngine(cfg)
}

func newEngine(cfg Config) *Engine {
	cfg, clamps := cfg.withDefaults()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	sink := cfg.Sink
	if cfg.Logf != nil {
		sink = obs.Multi(sink, obs.NewLogfSink(cfg.Logf))
	}
	e := &Engine{
		cfg:     cfg,
		sink:    sink,
		metrics: cfg.Metrics,
		names:   make(map[string]int),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	e.models.Store(cfg.Models)
	if cfg.ConfidenceLevel > 0 {
		// Two-sided normal quantile: level 0.95 → z ≈ 1.96.
		e.confZ = math.Sqrt2 * math.Erfinv(cfg.ConfidenceLevel)
	}
	for _, crit := range cfg.Rule.Criteria {
		seen := false
		for _, d := range e.ruleDims {
			if d == crit.Dimension {
				seen = true
				break
			}
		}
		if !seen {
			e.ruleDims = append(e.ruleDims, crit.Dimension)
		}
	}
	for _, cl := range clamps {
		e.metrics.ConfigClamps.Add(1)
		if e.sink != nil {
			cl.Engine = cfg.Name
			e.sink.Emit(cl)
		}
	}
	return e
}

func (e *Engine) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.MonitorRate)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.AnalyzeNow()
		}
	}
}

// Close stops the background loop (if any) and waits for any in-flight
// analysis pass — background or manual — to drain before returning. It is
// idempotent. Contexts remain usable for collection creation afterwards but
// no further analysis runs unless AnalyzeNow is called explicitly.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	background := e.background
	e.mu.Unlock()
	if background {
		close(e.stop)
		<-e.done
	}
	// Wait for a concurrent AnalyzeNow caller to finish its pass.
	e.analysisMu.Lock()
	e.analysisMu.Unlock() //nolint:staticcheck // empty critical section is the wait
	if e.sink != nil {
		e.mu.Lock()
		ev := obs.EngineClosed{
			Engine:      e.cfg.Name,
			Contexts:    len(e.contexts),
			Rounds:      e.rounds,
			Transitions: len(e.transitions),
		}
		e.mu.Unlock()
		e.sink.Emit(ev)
		// Drain any buffering sink (JSONL, or a Multi over one): the trace
		// is complete on disk the moment Close returns.
		if err := obs.FlushSink(e.sink); err != nil {
			e.metrics.SinkFlushErrors.Add(1)
		}
	}
}

// AnalyzeNow runs one synchronous analysis pass over every registered
// context. The background loop calls this on each tick. Passes are
// serialized: concurrent callers queue rather than interleave. Within a
// pass, contexts are fanned out over a worker pool bounded by
// Config.AnalysisParallelism; with parallelism 1 they are analyzed
// sequentially in registration order, so the emitted event stream is
// byte-identical to the historical single-threaded engine.
func (e *Engine) AnalyzeNow() {
	e.analysisMu.Lock()
	defer e.analysisMu.Unlock()
	e.mu.Lock()
	ctxs := make([]analyzable, len(e.contexts))
	copy(ctxs, e.contexts)
	round := e.rounds
	e.mu.Unlock()
	// All events of this pass accumulate in one batch, delivered to the
	// sink in a single call after RoundCompleted (analysisMu is held
	// throughout, so exactly one batch is ever active).
	var batch *obs.Batch
	if e.sink != nil {
		batch = obs.NewBatch(e.sink)
		e.batch.Store(batch)
		e.emit(obs.RoundStarted{Engine: e.cfg.Name, Round: round, Contexts: len(ctxs)})
	}
	start := time.Now()
	// The analysis pass runs under a pprof label so CPU profiles attribute
	// the framework's self-overhead to "collectionswitch=analysis" rather
	// than smearing it over the application's call stacks; SelfOverheadNs
	// accumulates the same wall time for the /metrics overhead fraction.
	pprof.Do(context.Background(), pprof.Labels("collectionswitch", "analysis"), func(context.Context) {
		e.analyzeAll(ctxs, round)
	})
	elapsed := time.Since(start)
	e.metrics.AnalysisRounds.Add(1)
	e.metrics.AnalysisLatency.Observe(elapsed.Seconds())
	e.metrics.SelfOverheadNs.Add(elapsed.Nanoseconds())
	e.mu.Lock()
	e.rounds++
	e.mu.Unlock()
	if e.sink != nil {
		stats := make([]obs.ContextWindowStat, len(ctxs))
		for i, c := range ctxs {
			stats[i] = c.windowStats()
		}
		e.emit(obs.RoundCompleted{
			Engine:     e.cfg.Name,
			Round:      round,
			DurationNs: elapsed.Nanoseconds(),
			Contexts:   stats,
		})
	}
	if batch != nil {
		e.batch.Store(nil)
		batch.Flush()
	}
}

// emit routes an event into the active analysis pass's batch, or straight to
// the sink outside a pass. Callers guard with e.sink != nil (the nil-sink
// event paths must stay allocation-free).
func (e *Engine) emit(ev obs.Event) {
	if b := e.batch.Load(); b != nil {
		b.Emit(ev)
		return
	}
	e.sink.Emit(ev)
}

// analyzeAll runs one analysis pass over ctxs, sequentially below two
// workers and via a bounded work-stealing pool otherwise. Contexts are
// claimed through an atomic cursor so the pool never allocates per context.
func (e *Engine) analyzeAll(ctxs []analyzable, round int) {
	workers := e.cfg.AnalysisParallelism
	if workers > len(ctxs) {
		workers = len(ctxs)
	}
	if workers <= 1 {
		for _, c := range ctxs {
			e.analyzeOne(c, round)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(ctxs) {
					return
				}
				e.analyzeOne(ctxs[i], round)
			}
		}()
	}
	wg.Wait()
}

// analyzeOne analyzes a single context, wrapping it in a ContextAnalyzed
// span when Config.AnalysisSpans asked for per-context latency telemetry.
func (e *Engine) analyzeOne(c analyzable, round int) {
	if e.sink == nil || !e.cfg.AnalysisSpans {
		c.analyze()
		return
	}
	start := time.Now()
	c.analyze()
	e.emit(obs.ContextAnalyzed{
		Engine:     e.cfg.Name,
		Round:      round,
		Context:    c.contextName(),
		DurationNs: time.Since(start).Nanoseconds(),
	})
}

// register adds a context to the analysis schedule. Registration against a
// closed engine is a logged no-op: the context still creates collections but
// is never analyzed. Duplicate site labels are disambiguated with a "#N"
// suffix (second registration of "foo" becomes "foo#2") so their Table 6
// rows and trace lines never silently merge; the rename is reported through
// a DuplicateContextName warning event.
func (e *Engine) register(c analyzable) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.metrics.RegistrationsDropped.Add(1)
		if e.sink != nil {
			e.sink.Emit(obs.ContextRegistered{Engine: e.cfg.Name, Context: c.contextName(), Dropped: true})
		}
		return
	}
	base := c.contextName()
	var dup *obs.DuplicateContextName
	if n := e.names[base]; n > 0 {
		// Probe for a free "#N" suffix: an explicit WithName("foo#2") may
		// already occupy the obvious candidate.
		renamed := ""
		for {
			n++
			renamed = fmt.Sprintf("%s#%d", base, n)
			if e.names[renamed] == 0 {
				break
			}
		}
		e.names[base] = n
		e.names[renamed] = 1
		c.rename(renamed)
		dup = &obs.DuplicateContextName{Engine: e.cfg.Name, Name: base, Renamed: renamed}
	} else {
		e.names[base] = 1
	}
	e.mu.Unlock()
	// Warm start happens between name resolution and publication: the
	// restored variant must be in place before the context can be analyzed
	// or create its first collection, and the lookup runs outside the engine
	// lock (WarmStarter implementations own their own synchronization).
	var warm *obs.WarmStart
	if ws := e.cfg.WarmStart; ws != nil {
		if dec, ok := ws.WarmLookup(c.contextName()); ok && c.warmStart(dec) {
			e.metrics.WarmStarts.Add(1)
			warm = &obs.WarmStart{Engine: e.cfg.Name, Context: c.contextName(), Variant: string(dec.Variant)}
		}
	}
	e.mu.Lock()
	e.contexts = append(e.contexts, c)
	e.mu.Unlock()
	e.metrics.ContextsRegistered.Add(1)
	if e.sink != nil {
		if dup != nil {
			e.sink.Emit(*dup)
		}
		e.sink.Emit(obs.ContextRegistered{Engine: e.cfg.Name, Context: c.contextName()})
		if warm != nil {
			e.sink.Emit(*warm)
		}
	}
}

// logTransition appends to the transition log and mirrors the switch onto
// the event stream and the transition counters.
func (e *Engine) logTransition(t Transition) {
	e.mu.Lock()
	e.transitions = append(e.transitions, t)
	e.mu.Unlock()
	e.metrics.IncTransition(t.Context, string(t.From), string(t.To))
	if e.sink != nil {
		ratios := make(map[string]float64, len(t.Ratios))
		for d, v := range t.Ratios {
			ratios[string(d)] = v
		}
		e.emit(obs.Transition{
			Engine:  e.cfg.Name,
			Context: t.Context,
			From:    string(t.From),
			To:      string(t.To),
			Round:   t.Round,
			Ratios:  ratios,
		})
	}
}

// windowClose carries one round-close request from a site core into
// closeWindow: the folded aggregate plus everything the decision record
// needs to explain the outcome.
type windowClose struct {
	name      string
	agg       *costAgg
	current   collections.VariantID
	round     int   // 0-based index of the round being closed
	threshold int64 // adaptive-variant transition threshold
	finished  int   // instances folded before decision time
	cooldown  int   // unmonitored creations the context skips next
	// skipRule holds a warm-started context on its restored variant: the
	// window still closes (telemetry, cooldown, round advance) but no rule
	// is evaluated and no transition can occur. drift is the measured
	// profile drift that justified the hold.
	skipRule bool
	drift    float64
	// record asks for a DecisionRecord; modelGaps lists the candidates the
	// aggregate had to exclude for missing model curves (explain data only).
	record    bool
	modelGaps []collections.VariantID
}

// closeWindow finishes one monitoring round at a context: it evaluates the
// selection rule over the folded aggregate, records any transition, and
// emits the WindowClosed / CooldownEntered telemetry (WindowClosed reports
// the round 1-based to match the legacy trace wording). It returns the
// variant future instantiations should use plus, when wc.record is set, the
// decision record explaining the outcome (the caller owns pushing it into
// the context's ring under its lock).
func (e *Engine) closeWindow(wc windowClose) (collections.VariantID, *DecisionRecord) {
	current := wc.current
	var rec *DecisionRecord
	if wc.record {
		rec = &DecisionRecord{
			When:      time.Now(),
			Round:     wc.round,
			Variant:   wc.current,
			ModelGaps: wc.modelGaps,
			Folded:    wc.finished,
		}
	}
	if wc.skipRule {
		if rec != nil {
			rec.Outcome = OutcomeWarmHold
			rec.Drift = wc.drift
		}
	} else {
		e.metrics.RuleEvaluations.Add(1)
		d, ests, miss, missC1 := decideExplain(wc.agg, wc.current, e.cfg.Rule, e.cfg.AdaptiveSizeSpread, wc.threshold, wc.record)
		if d.ok {
			e.logTransition(Transition{
				Context: wc.name, From: wc.current, To: d.switchTo,
				Round: wc.round, Ratios: d.ratios, When: time.Now(),
			})
			current = d.switchTo
		} else if d.suppressedTo != "" {
			// The confidence gate withheld the only would-be switch: surface
			// it so a held site is distinguishable from one with nothing to
			// switch to.
			e.metrics.SwitchesSuppressedCI.Add(1)
			if e.sink != nil {
				e.emit(obs.SwitchSuppressed{
					Engine:  e.cfg.Name,
					Context: wc.name,
					From:    string(wc.current),
					To:      string(d.suppressedTo),
					Round:   wc.round,
					Ratio:   d.suppressedC1,
					Level:   e.cfg.ConfidenceLevel,
				})
			}
		}
		if rec != nil {
			rec.Candidates = ests
			var thr1 float64
			var c1dim perfmodel.Dimension
			if len(e.cfg.Rule.Criteria) > 0 {
				thr1 = e.cfg.Rule.Criteria[0].Threshold
				c1dim = e.cfg.Rule.Criteria[0].Dimension
			}
			switch {
			case d.ok:
				rec.Outcome = OutcomeSwitched
				rec.Winner = d.switchTo
				rec.Margin = thr1 - d.ratios[c1dim]
			case d.suppressedTo != "":
				rec.Outcome = OutcomeCIOverlap
				rec.Winner = d.suppressedTo
				rec.Margin = thr1 - d.suppressedC1
			case ests == nil:
				// decideExplain bailed before ranking: the aggregate has no
				// entry for the current variant (its model curves are
				// missing) or nothing was folded.
				rec.Outcome = OutcomeModelMissing
			case miss == "":
				// Ranking ran but no alternative was considered at all.
				if len(wc.modelGaps) > 0 {
					rec.Outcome = OutcomeModelMissing
				} else {
					rec.Outcome = OutcomeHeld
				}
			default:
				rec.Outcome = OutcomeHeld
				rec.Winner = miss
				rec.Margin = thr1 - missC1
			}
		}
	}
	e.metrics.WindowsClosed.Add(1)
	if wc.cooldown > 0 {
		e.metrics.CooldownsEntered.Add(1)
	}
	if e.sink != nil {
		e.emit(obs.WindowClosed{
			Engine:        e.cfg.Name,
			Context:       wc.name,
			Round:         wc.round + 1,
			Variant:       string(current),
			WindowSize:    e.cfg.WindowSize,
			Finished:      wc.finished,
			FinishedRatio: float64(wc.finished) / float64(e.cfg.WindowSize),
			SizeSpread:    wc.agg.sizeSpread(),
		})
		if wc.cooldown > 0 {
			e.emit(obs.CooldownEntered{
				Engine:   e.cfg.Name,
				Context:  wc.name,
				Round:    wc.round + 1,
				SkipNext: wc.cooldown,
			})
		}
	}
	return current, rec
}

// SetModels hot-swaps the engine's performance models at runtime without
// stopping monitoring: each context picks up the new models at its next
// analysis pass — a window already being monitored re-folds its collected
// workloads against the new models, so the swap governs that window's
// decision rather than waiting a full round.
// Passing nil restores the shared analytic defaults. The swap is reported
// through an obs.ModelsSwapped event and the ModelSwaps counter. Typical use
// is loading a machine-built JSON model file (cmd/perfmodel) into a running
// engine via perfmodel.LoadFile.
func (e *Engine) SetModels(m *perfmodel.Models) {
	defaulted := m == nil
	if defaulted {
		m = sharedDefaultModels()
	}
	e.models.Store(m)
	e.metrics.ModelSwaps.Add(1)
	if e.sink != nil {
		e.sink.Emit(obs.ModelsSwapped{Engine: e.cfg.Name, Curves: m.Len(), Defaulted: defaulted})
	}
}

// Models returns the engine's active performance models (the Config.Models
// at construction, or the latest SetModels value).
func (e *Engine) Models() *perfmodel.Models { return e.models.Load() }

// Transitions returns a copy of the transition log in occurrence order.
func (e *Engine) Transitions() []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Transition, len(e.transitions))
	copy(out, e.transitions)
	return out
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Closed reports whether Close has begun. A closed engine runs no further
// background analysis and drops new registrations, but its contexts remain
// usable for collection creation and every snapshot surface (SiteStatuses,
// Explain, Transitions) keeps serving the last state — which is what the
// introspection endpoints and the service lifecycle consult it for.
func (e *Engine) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Metrics returns the engine's metrics registry (never nil).
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// ContextCount returns the number of registered allocation contexts.
func (e *Engine) ContextCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.contexts)
}
