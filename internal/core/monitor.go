package core

import (
	"repro/internal/collections"
)

// The monitor types wrap a collection instance and log its critical
// operations into a profile before forwarding to the real implementation —
// the "extra layer called monitor" of Section 4.3. Only the sampled window
// of instances pays this cost; instances beyond the window are handed out
// unwrapped.

// monitoredList wraps a List and counts its critical operations.
type monitoredList[T comparable] struct {
	inner collections.List[T]
	p     *profile
}

func (m *monitoredList[T]) Add(v T) {
	m.p.adds.Add(1)
	m.inner.Add(v)
	m.p.observeSize(m.inner.Len())
}

func (m *monitoredList[T]) Insert(i int, v T) {
	m.p.adds.Add(1)
	if i < m.inner.Len() {
		m.p.middles.Add(1)
	}
	m.inner.Insert(i, v)
	m.p.observeSize(m.inner.Len())
}

func (m *monitoredList[T]) Get(i int) T { return m.inner.Get(i) }

func (m *monitoredList[T]) Set(i int, v T) T { return m.inner.Set(i, v) }

func (m *monitoredList[T]) RemoveAt(i int) T {
	m.p.middles.Add(1)
	return m.inner.RemoveAt(i)
}

func (m *monitoredList[T]) Remove(v T) bool {
	// A removal by value is a search plus a positional removal.
	m.p.contains.Add(1)
	m.p.middles.Add(1)
	return m.inner.Remove(v)
}

func (m *monitoredList[T]) Contains(v T) bool {
	m.p.contains.Add(1)
	return m.inner.Contains(v)
}

func (m *monitoredList[T]) IndexOf(v T) int {
	m.p.contains.Add(1)
	return m.inner.IndexOf(v)
}

func (m *monitoredList[T]) Len() int { return m.inner.Len() }

func (m *monitoredList[T]) Clear() { m.inner.Clear() }

func (m *monitoredList[T]) ForEach(fn func(T) bool) {
	m.p.iterates.Add(1)
	m.inner.ForEach(fn)
}

// FootprintBytes delegates to the wrapped variant so memory accounting sees
// through the monitor.
func (m *monitoredList[T]) FootprintBytes() int {
	if s, ok := m.inner.(collections.Sizer); ok {
		return s.FootprintBytes()
	}
	return 0
}

// monitoredSet wraps a Set and counts its critical operations.
type monitoredSet[T comparable] struct {
	inner collections.Set[T]
	p     *profile
}

func (m *monitoredSet[T]) Add(v T) bool {
	m.p.adds.Add(1)
	changed := m.inner.Add(v)
	m.p.observeSize(m.inner.Len())
	return changed
}

func (m *monitoredSet[T]) Remove(v T) bool {
	m.p.middles.Add(1)
	return m.inner.Remove(v)
}

func (m *monitoredSet[T]) Contains(v T) bool {
	m.p.contains.Add(1)
	return m.inner.Contains(v)
}

func (m *monitoredSet[T]) Len() int { return m.inner.Len() }

func (m *monitoredSet[T]) Clear() { m.inner.Clear() }

func (m *monitoredSet[T]) ForEach(fn func(T) bool) {
	m.p.iterates.Add(1)
	m.inner.ForEach(fn)
}

func (m *monitoredSet[T]) FootprintBytes() int {
	if s, ok := m.inner.(collections.Sizer); ok {
		return s.FootprintBytes()
	}
	return 0
}

// monitoredMap wraps a Map and counts its critical operations.
type monitoredMap[K comparable, V any] struct {
	inner collections.Map[K, V]
	p     *profile
}

func (m *monitoredMap[K, V]) Put(k K, v V) (V, bool) {
	m.p.adds.Add(1)
	old, present := m.inner.Put(k, v)
	m.p.observeSize(m.inner.Len())
	return old, present
}

func (m *monitoredMap[K, V]) Get(k K) (V, bool) {
	m.p.contains.Add(1)
	return m.inner.Get(k)
}

func (m *monitoredMap[K, V]) Remove(k K) (V, bool) {
	m.p.middles.Add(1)
	return m.inner.Remove(k)
}

func (m *monitoredMap[K, V]) ContainsKey(k K) bool {
	m.p.contains.Add(1)
	return m.inner.ContainsKey(k)
}

func (m *monitoredMap[K, V]) Len() int { return m.inner.Len() }

func (m *monitoredMap[K, V]) Clear() { m.inner.Clear() }

func (m *monitoredMap[K, V]) ForEach(fn func(K, V) bool) {
	m.p.iterates.Add(1)
	m.inner.ForEach(fn)
}

func (m *monitoredMap[K, V]) FootprintBytes() int {
	if s, ok := m.inner.(collections.Sizer); ok {
		return s.FootprintBytes()
	}
	return 0
}
