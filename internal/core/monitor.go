package core

import (
	"runtime"
	"unsafe"

	"repro/internal/collections"
)

// The monitor types wrap a collection instance and log its critical
// operations into a profile before forwarding to the real implementation —
// the "extra layer called monitor" of Section 4.3. Only the sampled window
// of instances pays this cost; instances beyond the window are handed out
// unwrapped.
//
// Two monitor implementations exist per abstraction, chosen once at wrap
// time by the profile's stripe count (see profile.go):
//
//   - monitoredList/Set/Map is the single-stripe form: every counting
//     method performs one atomic increment on the cached stripe pointer,
//     with no per-operation stripe selection of any kind. This matters
//     because a locked x86 read-modify-write dispatches only once every
//     older instruction has retired — any selection work ahead of it
//     (a branch, a hash, even a handful of dependency-free ALU ops) is
//     serialized into the operation's latency rather than hidden by
//     out-of-order execution. Measured on the saturation benchmark, a
//     single predicted branch before the increment costs ~2ns/op; the
//     direct form is indistinguishable from the historical shared-counter
//     monitor at GOMAXPROCS=1.
//   - stripedList/Set/Map embeds the single-stripe form at offset zero and
//     overrides the counting methods to pick a stripe from a cheap
//     stack-address hash, so concurrent recorders on different goroutines
//     land on different cache lines. The selection cost only exists in
//     this form, where it buys the removal of cross-core line ping-pong.
//
// The embedding at offset zero means a *stripedSet and the *monitoredSet
// pointing at its first field are the same address and the same heap
// object: siteCore keeps its weak reference typed as the plain form (one M
// type parameter) while the user-facing interface value dispatches to the
// striped methods. unwrap* in context.go performs the cast, discriminating
// on maskBytes (non-zero exactly for striped monitors).
//
// Two details keep the shared profile pool safe:
//
//   - Methods that write the profile after their last use of the monitor
//     (the size observation after a successful insert) end with
//     runtime.KeepAlive(m). Without it the monitor — whose collection by
//     the GC is the instance-death signal — could be reclaimed between the
//     inner operation and the final counter write, the analyzer could fold
//     and release the profile, and the late write would land in a profile
//     already recycled to another instance. Methods that merely count and
//     then delegate need no pin: the delegation itself keeps m alive past
//     the counter write.
//   - The collections.Sizer assertion is resolved once at wrap time and
//     cached in the sizer field, instead of re-asserted on every
//     FootprintBytes call.

// stripeOf selects a counter stripe for one operation on a striped monitor:
// base is the profile's first stripe, maskBytes is (stripes-1)*64. The hash
// mixes two windows of a current stack slot's address — goroutine stacks
// are disjoint allocations, so distinct goroutines land on distinct stripes
// with high probability, and repeated calls from similar frames reuse a
// stripe (the affinity that keeps its cache line core-local). Collisions
// merely share a stripe — every counter update is atomic, so counts stay
// exact regardless of the distribution. The probe address never outlives
// the expression, and maskBytes keeps the byte offset a multiple of 64
// inside the profile's stripe array, so the unsafe.Add stays in bounds.
func stripeOf(base *pshard, maskBytes uintptr) *pshard {
	var probe byte
	sp := uintptr(unsafe.Pointer(&probe))
	return (*pshard)(unsafe.Add(unsafe.Pointer(base), ((sp>>5)^(sp>>11))&maskBytes))
}

// monitoredList wraps a List and counts its critical operations on a single
// cached stripe.
type monitoredList[T comparable] struct {
	inner     collections.List[T]
	sh        *pshard           // first stripe of p; counting target of the plain form
	maskBytes uintptr           // (stripes-1)*64; 0 marks the plain single-stripe form
	sizer     collections.Sizer // cached inner.(collections.Sizer); nil if unsupported
	p         *profile
}

func (m *monitoredList[T]) Add(v T) {
	m.sh.adds.Add(1)
	m.inner.Add(v)
	m.sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
}

func (m *monitoredList[T]) Insert(i int, v T) {
	m.sh.adds.Add(1)
	if i < m.inner.Len() {
		m.sh.middles.Add(1)
	}
	m.inner.Insert(i, v)
	m.sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
}

func (m *monitoredList[T]) Get(i int) T { return m.inner.Get(i) }

func (m *monitoredList[T]) Set(i int, v T) T { return m.inner.Set(i, v) }

func (m *monitoredList[T]) RemoveAt(i int) T {
	m.sh.middles.Add(1)
	return m.inner.RemoveAt(i)
}

func (m *monitoredList[T]) Remove(v T) bool {
	// A removal by value is a search plus a positional removal.
	m.sh.contains.Add(1)
	m.sh.middles.Add(1)
	return m.inner.Remove(v)
}

func (m *monitoredList[T]) Contains(v T) bool {
	m.sh.contains.Add(1)
	return m.inner.Contains(v)
}

func (m *monitoredList[T]) IndexOf(v T) int {
	m.sh.contains.Add(1)
	return m.inner.IndexOf(v)
}

func (m *monitoredList[T]) Len() int { return m.inner.Len() }

func (m *monitoredList[T]) Clear() { m.inner.Clear() }

func (m *monitoredList[T]) ForEach(fn func(T) bool) {
	m.sh.iterates.Add(1)
	m.inner.ForEach(fn)
}

// FootprintBytes delegates to the wrapped variant so memory accounting sees
// through the monitor.
func (m *monitoredList[T]) FootprintBytes() int {
	if m.sizer != nil {
		return m.sizer.FootprintBytes()
	}
	return 0
}

// stripedList is the multi-stripe list monitor: identical layout (the
// embedded plain form is its only field), counting methods overridden to
// select a per-goroutine stripe. Non-counting methods are promoted from the
// embedded form.
type stripedList[T comparable] struct {
	monitoredList[T]
}

func (m *stripedList[T]) Add(v T) {
	sh := stripeOf(m.sh, m.maskBytes)
	sh.adds.Add(1)
	m.inner.Add(v)
	sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
}

func (m *stripedList[T]) Insert(i int, v T) {
	sh := stripeOf(m.sh, m.maskBytes)
	sh.adds.Add(1)
	if i < m.inner.Len() {
		sh.middles.Add(1)
	}
	m.inner.Insert(i, v)
	sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
}

func (m *stripedList[T]) RemoveAt(i int) T {
	stripeOf(m.sh, m.maskBytes).middles.Add(1)
	return m.inner.RemoveAt(i)
}

func (m *stripedList[T]) Remove(v T) bool {
	sh := stripeOf(m.sh, m.maskBytes)
	sh.contains.Add(1)
	sh.middles.Add(1)
	return m.inner.Remove(v)
}

func (m *stripedList[T]) Contains(v T) bool {
	stripeOf(m.sh, m.maskBytes).contains.Add(1)
	return m.inner.Contains(v)
}

func (m *stripedList[T]) IndexOf(v T) int {
	stripeOf(m.sh, m.maskBytes).contains.Add(1)
	return m.inner.IndexOf(v)
}

func (m *stripedList[T]) ForEach(fn func(T) bool) {
	stripeOf(m.sh, m.maskBytes).iterates.Add(1)
	m.inner.ForEach(fn)
}

// monitoredSet wraps a Set and counts its critical operations on a single
// cached stripe.
type monitoredSet[T comparable] struct {
	inner     collections.Set[T]
	sh        *pshard           // first stripe of p; counting target of the plain form
	maskBytes uintptr           // (stripes-1)*64; 0 marks the plain single-stripe form
	sizer     collections.Sizer // cached inner.(collections.Sizer); nil if unsupported
	p         *profile
}

func (m *monitoredSet[T]) Add(v T) bool {
	m.sh.adds.Add(1)
	changed := m.inner.Add(v)
	m.sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
	return changed
}

func (m *monitoredSet[T]) Remove(v T) bool {
	m.sh.middles.Add(1)
	return m.inner.Remove(v)
}

func (m *monitoredSet[T]) Contains(v T) bool {
	m.sh.contains.Add(1)
	return m.inner.Contains(v)
}

func (m *monitoredSet[T]) Len() int { return m.inner.Len() }

func (m *monitoredSet[T]) Clear() { m.inner.Clear() }

func (m *monitoredSet[T]) ForEach(fn func(T) bool) {
	m.sh.iterates.Add(1)
	m.inner.ForEach(fn)
}

func (m *monitoredSet[T]) FootprintBytes() int {
	if m.sizer != nil {
		return m.sizer.FootprintBytes()
	}
	return 0
}

// stripedSet is the multi-stripe set monitor (see stripedList).
type stripedSet[T comparable] struct {
	monitoredSet[T]
}

func (m *stripedSet[T]) Add(v T) bool {
	sh := stripeOf(m.sh, m.maskBytes)
	sh.adds.Add(1)
	changed := m.inner.Add(v)
	sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
	return changed
}

func (m *stripedSet[T]) Remove(v T) bool {
	stripeOf(m.sh, m.maskBytes).middles.Add(1)
	return m.inner.Remove(v)
}

func (m *stripedSet[T]) Contains(v T) bool {
	stripeOf(m.sh, m.maskBytes).contains.Add(1)
	return m.inner.Contains(v)
}

func (m *stripedSet[T]) ForEach(fn func(T) bool) {
	stripeOf(m.sh, m.maskBytes).iterates.Add(1)
	m.inner.ForEach(fn)
}

// monitoredMap wraps a Map and counts its critical operations on a single
// cached stripe.
type monitoredMap[K comparable, V any] struct {
	inner     collections.Map[K, V]
	sh        *pshard           // first stripe of p; counting target of the plain form
	maskBytes uintptr           // (stripes-1)*64; 0 marks the plain single-stripe form
	sizer     collections.Sizer // cached inner.(collections.Sizer); nil if unsupported
	p         *profile
}

func (m *monitoredMap[K, V]) Put(k K, v V) (V, bool) {
	m.sh.adds.Add(1)
	old, present := m.inner.Put(k, v)
	m.sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
	return old, present
}

func (m *monitoredMap[K, V]) Get(k K) (V, bool) {
	m.sh.contains.Add(1)
	return m.inner.Get(k)
}

func (m *monitoredMap[K, V]) Remove(k K) (V, bool) {
	m.sh.middles.Add(1)
	return m.inner.Remove(k)
}

func (m *monitoredMap[K, V]) ContainsKey(k K) bool {
	m.sh.contains.Add(1)
	return m.inner.ContainsKey(k)
}

func (m *monitoredMap[K, V]) Len() int { return m.inner.Len() }

func (m *monitoredMap[K, V]) Clear() { m.inner.Clear() }

func (m *monitoredMap[K, V]) ForEach(fn func(K, V) bool) {
	m.sh.iterates.Add(1)
	m.inner.ForEach(fn)
}

func (m *monitoredMap[K, V]) FootprintBytes() int {
	if m.sizer != nil {
		return m.sizer.FootprintBytes()
	}
	return 0
}

// stripedMap is the multi-stripe map monitor (see stripedList).
type stripedMap[K comparable, V any] struct {
	monitoredMap[K, V]
}

func (m *stripedMap[K, V]) Put(k K, v V) (V, bool) {
	sh := stripeOf(m.sh, m.maskBytes)
	sh.adds.Add(1)
	old, present := m.inner.Put(k, v)
	sh.observeSize(m.inner.Len())
	runtime.KeepAlive(m)
	return old, present
}

func (m *stripedMap[K, V]) Get(k K) (V, bool) {
	stripeOf(m.sh, m.maskBytes).contains.Add(1)
	return m.inner.Get(k)
}

func (m *stripedMap[K, V]) Remove(k K) (V, bool) {
	stripeOf(m.sh, m.maskBytes).middles.Add(1)
	return m.inner.Remove(k)
}

func (m *stripedMap[K, V]) ContainsKey(k K) bool {
	stripeOf(m.sh, m.maskBytes).contains.Add(1)
	return m.inner.ContainsKey(k)
}

func (m *stripedMap[K, V]) ForEach(fn func(K, V) bool) {
	stripeOf(m.sh, m.maskBytes).iterates.Add(1)
	m.inner.ForEach(fn)
}
