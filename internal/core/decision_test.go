package core

import (
	"runtime"
	"testing"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// lastRecord returns the newest decision record of the site, failing the
// test when the ring is empty.
func lastRecord(t *testing.T, e *Engine, site string) DecisionRecord {
	t.Helper()
	recs := e.Explain(site)
	if len(recs) == 0 {
		t.Fatalf("Explain(%q) returned no records", site)
	}
	return recs[len(recs)-1]
}

func TestExplainSwitchedRecordMatchesTransition(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e, WithName("explain:switch"))
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow()
	trs := e.Transitions()
	if len(trs) != 1 {
		t.Fatalf("transitions = %d, want 1", len(trs))
	}
	rec := lastRecord(t, e, "explain:switch")
	if rec.Outcome != OutcomeSwitched {
		t.Fatalf("outcome = %s, want switched", rec.Outcome)
	}
	if rec.Winner != trs[0].To {
		t.Errorf("record winner = %s, transition switched to %s", rec.Winner, trs[0].To)
	}
	if rec.Round != trs[0].Round {
		t.Errorf("record round = %d, transition round = %d", rec.Round, trs[0].Round)
	}
	if rec.Variant != trs[0].From {
		t.Errorf("record variant = %s, transition from = %s", rec.Variant, trs[0].From)
	}
	if rec.Margin <= 0 {
		t.Errorf("switched margin = %g, want > 0", rec.Margin)
	}
	// The per-candidate estimates must cover the catalog: the current
	// variant labeled as such, the winner eligible, and every entry
	// carrying cost estimates for the rule dimension.
	if len(rec.Candidates) == 0 {
		t.Fatal("switched record has no candidate estimates")
	}
	var sawCurrent, sawWinner bool
	for _, est := range rec.Candidates {
		if _, ok := est.Costs[perfmodel.DimTimeNS]; !ok {
			t.Errorf("estimate %s lacks a %s cost", est.Variant, perfmodel.DimTimeNS)
		}
		switch est.Variant {
		case rec.Variant:
			sawCurrent = true
			if est.Reason != "current" {
				t.Errorf("current estimate reason = %q", est.Reason)
			}
		case rec.Winner:
			sawWinner = true
			if !est.Eligible {
				t.Error("winner estimate not marked eligible")
			}
			if r := est.Ratios[perfmodel.DimTimeNS]; r >= 1 {
				t.Errorf("winner time ratio = %g, want < 1", r)
			}
		}
	}
	if !sawCurrent || !sawWinner {
		t.Errorf("estimates missing current (%v) or winner (%v)", sawCurrent, sawWinner)
	}
}

func TestExplainHeldRecordCarriesMargin(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e, WithName("explain:held"))
	churnLists(ctx, 10, 10, 50) // small sizes: ArrayList stays optimal
	e.AnalyzeNow()
	if got := len(e.Transitions()); got != 0 {
		t.Fatalf("transitions = %d, want 0", got)
	}
	rec := lastRecord(t, e, "explain:held")
	if rec.Outcome != OutcomeHeld {
		t.Fatalf("outcome = %s, want held", rec.Outcome)
	}
	if rec.Winner == "" {
		t.Error("held record has no nearest-miss winner")
	}
	if rec.Margin > 0 {
		t.Errorf("held margin = %g, want ≤ 0", rec.Margin)
	}
	for _, est := range rec.Candidates {
		if est.Variant != rec.Variant && est.Eligible {
			// An eligible alternative with the rule's margin would have
			// switched; held records must explain why each one failed.
			if est.Ratios[perfmodel.DimTimeNS] < 1 {
				t.Errorf("held record lists eligible improving candidate %s", est.Variant)
			}
		}
	}
}

func TestExplainWaitingReasons(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e, WithName("explain:wait"))

	// Half-filled window: the pass reports window_filling with the fill.
	churnLists(ctx, 5, 100, 10)
	e.AnalyzeNow()
	rec := lastRecord(t, e, "explain:wait")
	if rec.Outcome != OutcomeWindowFilling {
		t.Fatalf("outcome = %s, want window_filling", rec.Outcome)
	}
	if rec.WindowFill != 5 {
		t.Errorf("window_fill = %d, want 5", rec.WindowFill)
	}

	// Full window, all instances alive: awaiting_finished with the gate.
	live := make([]collections.List[int], 0, 5)
	for i := 0; i < 5; i++ {
		l := ctx.NewList()
		l.Add(i)
		live = append(live, l)
	}
	runtime.GC()
	e.AnalyzeNow()
	rec = lastRecord(t, e, "explain:wait")
	if rec.Outcome != OutcomeAwaitingFinished {
		t.Fatalf("outcome = %s, want awaiting_finished", rec.Outcome)
	}
	if rec.NeededFolds != 6 {
		t.Errorf("needed_folds = %d, want 6", rec.NeededFolds)
	}
	if rec.Folded >= 6 {
		t.Errorf("folded = %d, want < 6", rec.Folded)
	}
	runtime.KeepAlive(live)
}

func TestExplainCooldownRecordsFoldRepeats(t *testing.T) {
	e := NewEngineManual(Config{WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: 2})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("explain:cool"))
	churnLists(ctx, 10, 10, 10)
	e.AnalyzeNow() // closes the round, enters a 20-creation cooldown
	if got := ctx.Round(); got != 1 {
		t.Fatalf("round = %d, want 1", got)
	}
	e.AnalyzeNow()
	e.AnalyzeNow()
	recs := e.Explain("explain:cool")
	if len(recs) < 2 {
		t.Fatalf("records = %d, want ≥ 2 (close + cooldown)", len(recs))
	}
	last := recs[len(recs)-1]
	if last.Outcome != OutcomeCooldown {
		t.Fatalf("outcome = %s, want cooldown", last.Outcome)
	}
	if last.Cooldown != 20 {
		t.Errorf("cooldown remaining = %d, want 20", last.Cooldown)
	}
	// The two cooldown passes folded into one record instead of flushing
	// the ring with identical lines.
	if last.Repeats != 2 {
		t.Errorf("repeats = %d, want 2", last.Repeats)
	}
	if prev := recs[len(recs)-2]; prev.Outcome == OutcomeCooldown {
		t.Errorf("consecutive cooldown records not folded: %+v", prev)
	}
}

func TestExplainRingBound(t *testing.T) {
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1, DecisionRing: 4,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("explain:ring"))
	for round := 0; round < 6; round++ {
		churnLists(ctx, 10, 10, 10)
		e.AnalyzeNow() // each pass closes a held round: no dedup applies
	}
	recs := e.Explain("explain:ring")
	if len(recs) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(recs))
	}
	// Oldest records were evicted: the survivors are rounds 2..5 in order.
	for i, rec := range recs {
		if rec.Round != i+2 {
			t.Errorf("recs[%d].Round = %d, want %d", i, rec.Round, i+2)
		}
	}
}

func TestExplainDisabledAndUnknownSite(t *testing.T) {
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1, DecisionRing: -1,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("explain:off"))
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow()
	if len(e.Transitions()) == 0 {
		t.Fatal("scenario did not switch; recording-off path untested")
	}
	if recs := e.Explain("explain:off"); recs != nil {
		t.Errorf("Explain with DecisionRing=-1 returned %d records, want nil", len(recs))
	}
	if recs := e.Explain("no-such-site"); recs != nil {
		t.Errorf("Explain(unknown) returned %d records, want nil", len(recs))
	}
}

func TestExplainWarmHoldRecord(t *testing.T) {
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
		WarmStart: fakeStarter{
			"explain:warm": {Variant: collections.HashArrayListID, Profile: lookupHeavyProfile()},
		},
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("explain:warm"))
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow()
	rec := lastRecord(t, e, "explain:warm")
	if rec.Outcome != OutcomeWarmHold {
		t.Fatalf("outcome = %s, want warm_hold", rec.Outcome)
	}
	if rec.Variant != collections.HashArrayListID {
		t.Errorf("warm-hold variant = %s, want the restored HashArrayList", rec.Variant)
	}
	if rec.Drift < 0 || rec.Drift > e.Config().DriftThreshold {
		t.Errorf("warm-hold drift = %g, want within [0, %g]", rec.Drift, e.Config().DriftThreshold)
	}
	if len(rec.Candidates) != 0 {
		t.Errorf("warm-hold record carries %d candidate estimates, want 0 (no rule ran)", len(rec.Candidates))
	}
}

func TestSiteStatusesReflectLiveState(t *testing.T) {
	e := NewEngineManual(Config{WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: 2})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("status:list"))
	churnLists(ctx, 10, 10, 10)
	e.AnalyzeNow()
	e.AnalyzeNow()
	sts := e.SiteStatuses()
	if len(sts) != 1 {
		t.Fatalf("statuses = %d, want 1", len(sts))
	}
	st := sts[0]
	if st.Name != "status:list" || st.Abstraction != "list" {
		t.Errorf("status identity = %s/%s", st.Name, st.Abstraction)
	}
	if st.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", st.Rounds)
	}
	if st.Cooldown != 20 {
		t.Errorf("cooldown = %d, want 20", st.Cooldown)
	}
	if st.LastOutcome != OutcomeCooldown {
		t.Errorf("last outcome = %s, want cooldown", st.LastOutcome)
	}
}

// TestDecideExplainMatchesDecide pins the refactoring invariant: the
// decision computed with explain enabled is identical to the plain decide
// path on the same aggregate.
func TestDecideExplainMatchesDecide(t *testing.T) {
	models := perfmodel.Default()
	cands := []collections.VariantID{
		collections.ArrayListID, collections.LinkedListID, collections.HashArrayListID,
	}
	for _, w := range []Workload{
		{Adds: 500, Contains: 500, MaxSize: 500},
		{Adds: 10, Contains: 2, MaxSize: 10},
		{Adds: 100, Iterates: 50, MaxSize: 100},
	} {
		agg := newCostAgg(models, cands)
		for i := 0; i < 10; i++ {
			agg.fold(w)
		}
		plain := decide(agg, collections.ArrayListID, Rtime(), 4, 64)
		withExplain, ests, _, _ := decideExplain(agg, collections.ArrayListID, Rtime(), 4, 64, true)
		if plain.ok != withExplain.ok || plain.switchTo != withExplain.switchTo {
			t.Errorf("workload %+v: decide=%+v explain=%+v", w, plain, withExplain)
		}
		if len(ests) != len(cands) {
			t.Errorf("workload %+v: %d estimates, want %d", w, len(ests), len(cands))
		}
	}
}

// BenchmarkDecisionRecording guards the acceptance claim that decision
// recording adds no fast-path overhead: creation cost with the default ring
// must match creation with recording disabled, because records are written
// only inside analysis passes.
func BenchmarkDecisionRecording(b *testing.B) {
	run := func(b *testing.B, ring int) {
		e := NewEngineManual(Config{
			WindowSize:      100,
			Rule:            ImpossibleRule(),
			CooldownWindows: -1,
			DecisionRing:    ring,
		})
		defer e.Close()
		ctx := NewListContext[int](e, WithName("bench:decision"))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := ctx.NewList()
			l.Add(i)
			l.Contains(i)
			if i%100 == 99 {
				e.AnalyzeNow()
			}
		}
	}
	b.Run("ring-default", func(b *testing.B) { run(b, 0) })
	b.Run("ring-disabled", func(b *testing.B) { run(b, -1) })
}
