package core

import (
	"fmt"
	"strings"

	"repro/internal/perfmodel"
)

// Criterion is one predicate of a selection rule (Section 3.1.2): the
// candidate variant satisfies it when
//
//	TC_D(V_new) / TC_D(V_cur) <= Threshold.
//
// A threshold below 1 demands an improvement on the dimension; a threshold
// of 1 or above caps the allowed penalty.
type Criterion struct {
	Dimension perfmodel.Dimension
	Threshold float64
}

// Rule is an ordered list of criteria. A candidate is eligible if it
// satisfies every criterion; among eligible candidates the one with the
// largest improvement on the first criterion's dimension wins (Section
// 3.1.2).
type Rule struct {
	Name     string
	Criteria []Criterion
}

// Rtime is the execution-time rule of Table 4: switch when the candidate's
// estimated time cost is below 0.8 of the current variant's.
func Rtime() Rule {
	return Rule{
		Name: "Rtime",
		Criteria: []Criterion{
			{Dimension: perfmodel.DimTimeNS, Threshold: 0.8},
		},
	}
}

// Ralloc is the allocation rule of Table 4: switch when the candidate
// allocates below 0.8 of the current variant while costing at most 1.2x the
// time. Without the time cap, array-backed variants would always win on
// allocation and degrade execution uncontrollably.
func Ralloc() Rule {
	return Rule{
		Name: "Ralloc",
		Criteria: []Criterion{
			{Dimension: perfmodel.DimAllocB, Threshold: 0.8},
			{Dimension: perfmodel.DimTimeNS, Threshold: 1.2},
		},
	}
}

// Rfootprint optimizes the retained-memory dimension with the same 1.2x
// time cap as Ralloc. Not part of Table 4, but expressible in the paper's
// rule language; used by the ablation benchmarks.
func Rfootprint() Rule {
	return Rule{
		Name: "Rfootprint",
		Criteria: []Criterion{
			{Dimension: perfmodel.DimFootprint, Threshold: 0.8},
			{Dimension: perfmodel.DimTimeNS, Threshold: 1.2},
		},
	}
}

// Renergy optimizes the synthesized energy dimension (the paper's Section 7
// future work) with the usual 1.2x time cap: switch when the candidate's
// estimated energy is below 0.8 of the current variant's without slowing
// execution uncontrollably.
func Renergy() Rule {
	return Rule{
		Name: "Renergy",
		Criteria: []Criterion{
			{Dimension: perfmodel.DimEnergy, Threshold: 0.8},
			{Dimension: perfmodel.DimTimeNS, Threshold: 1.2},
		},
	}
}

// ImpossibleRule demands a 1000x improvement — no candidate ever satisfies
// it. The paper uses exactly this configuration to measure the framework's
// monitoring overhead with optimization actions disabled (Section 5.3).
func ImpossibleRule() Rule {
	return Rule{
		Name: "Impossible",
		Criteria: []Criterion{
			{Dimension: perfmodel.DimTimeNS, Threshold: 0.001},
		},
	}
}

// Validate reports whether the rule is well-formed: at least one criterion,
// positive thresholds, and no duplicate dimensions.
func (r Rule) Validate() error {
	if len(r.Criteria) == 0 {
		return fmt.Errorf("core: rule %q has no criteria", r.Name)
	}
	seen := make(map[perfmodel.Dimension]bool)
	for _, c := range r.Criteria {
		if c.Threshold <= 0 {
			return fmt.Errorf("core: rule %q: non-positive threshold %g for %s", r.Name, c.Threshold, c.Dimension)
		}
		if seen[c.Dimension] {
			return fmt.Errorf("core: rule %q: duplicate dimension %s", r.Name, c.Dimension)
		}
		seen[c.Dimension] = true
	}
	return nil
}

// String renders the rule in Table 4 style, e.g.
// "Ralloc[alloc-b<0.80 time-ns<1.20]".
func (r Rule) String() string {
	parts := make([]string, len(r.Criteria))
	for i, c := range r.Criteria {
		parts[i] = fmt.Sprintf("%s<%.2f", c.Dimension, c.Threshold)
	}
	return fmt.Sprintf("%s[%s]", r.Name, strings.Join(parts, " "))
}
