package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEpochDrainingNoLostOps hammers one site from concurrent recorders
// while AnalyzeNow closes windows concurrently, then asserts the framework's
// aggregated totals equal a reference count the test kept in a plain atomic:
// epoch advancing, shard summing and profile recycling must neither lose nor
// double-count a single operation.
//
// FinishedRatio 1 makes the assertion exact: a window only closes once every
// monitored instance in it is dead, so each profile is folded exactly once,
// after its last recorded operation (the weak reference clears only when the
// GC has proven the monitor unreachable, which no in-flight operation
// survives). The reference counter is bumped while the instance is still
// strongly held, so it too is complete before the fold can happen.
func TestEpochDrainingNoLostOps(t *testing.T) {
	e := NewEngineManual(Config{
		WindowSize:      8,
		FinishedRatio:   1,
		CooldownWindows: -1, // every creation is eligible to be monitored
		Rule:            ImpossibleRule(),
		DecisionRing:    -1,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("race:epoch-drain"))

	var refAdds, refContains, monitored atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const recorders = 4
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := ctx.NewList()
				k := 1 + (i+g)%7
				for j := 0; j < k; j++ {
					l.Add(j)
				}
				l.Contains(0)
				if isMonitoredList(l) {
					// The instance is still strongly referenced here, so its
					// profile cannot have been folded yet: the reference
					// counts are complete before the framework's.
					refAdds.Add(int64(k))
					refContains.Add(1)
					monitored.Add(1)
				}
				i++
			}
		}(g)
	}
	// The analyzer races the recorders: folds, window closes and epoch
	// advances run against live Add/Contains traffic.
	analyzeDone := make(chan struct{})
	go func() {
		defer close(analyzeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.GC()
			e.AnalyzeNow()
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	<-analyzeDone

	// Drain: every instance is now dropped; keep collecting and analyzing
	// until the framework has folded everything the recorders counted.
	siteTotals := func() (Workload, int64) {
		snaps := e.SiteSnapshots()
		if len(snaps) != 1 {
			t.Fatalf("SiteSnapshots = %d sites, want 1", len(snaps))
		}
		p := snaps[0].Profile
		// The profile stores counts as float64; they are exact integers far
		// below the 2^53 mantissa limit at this scale.
		return Workload{Adds: int64(p.Adds), Contains: int64(p.Contains)}, p.Instances
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		runtime.GC()
		e.AnalyzeNow()
		got, instances := siteTotals()
		if got.Adds == refAdds.Load() && got.Contains == refContains.Load() && instances == monitored.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain did not converge: folded adds=%d contains=%d instances=%d, reference adds=%d contains=%d instances=%d",
				got.Adds, got.Contains, instances, refAdds.Load(), refContains.Load(), monitored.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// Exactness both ways: the folded totals equal the reference exactly —
	// nothing lost, nothing double-counted — and every monitored instance
	// was folded exactly once.
	got, instances := siteTotals()
	if got.Adds != refAdds.Load() || got.Contains != refContains.Load() {
		t.Errorf("folded totals adds=%d contains=%d != reference adds=%d contains=%d",
			got.Adds, got.Contains, refAdds.Load(), refContains.Load())
	}
	if instances != monitored.Load() {
		t.Errorf("folded instances = %d, want %d", instances, monitored.Load())
	}
	if mon := e.Metrics().InstancesMonitored.Load(); mon != monitored.Load() {
		t.Errorf("InstancesMonitored = %d, want %d", mon, monitored.Load())
	}
	if monitored.Load() == 0 {
		t.Error("hammer produced no monitored instances — test exercised nothing")
	}
}

// TestLateBounceRecyclesProfile pins the window-boundary path: a creation
// that finds the window full after the fast-path gate said open must hand
// out a bare (unmonitored) collection and recycle its speculative profile
// without ever exposing it.
func TestLateBounceRecyclesProfile(t *testing.T) {
	e := NewEngineManual(Config{WindowSize: 2, CooldownWindows: -1, Rule: ImpossibleRule()})
	defer e.Close()
	ctx := NewSetContext[int](e, WithName("race:bounce"))
	a, b := ctx.NewSet(), ctx.NewSet()
	if !isMonitoredSet(a) {
		t.Fatal("first creation not monitored")
	}
	if !isMonitoredSet(b) {
		t.Fatal("second creation not monitored")
	}
	// Window full: the state gate now bounces creations on the fast path,
	// but a creator that already passed the gate must bounce safely inside
	// newMonitored too.
	if got := ctx.core.state.Load(); got != stateWindowFull {
		t.Fatalf("state = %d, want stateWindowFull", got)
	}
	ctx.core.state.Store(stateOpen) // simulate the stale-gate racer
	c := ctx.NewSet()
	if isMonitoredSet(c) {
		t.Fatal("bounced creation still monitored")
	}
	if got := ctx.core.state.Load(); got != stateWindowFull {
		t.Fatalf("bounce did not republish the gate: state = %d", got)
	}
	if got := ctx.core.win.Load().fill.Load(); got != 2 {
		t.Fatalf("window fill = %d, want 2", got)
	}
}
