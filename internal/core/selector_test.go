package core

import (
	"testing"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

func listCandidates() []collections.VariantID {
	out := make([]collections.VariantID, 0, 4)
	for _, v := range collections.ListVariants[int]() {
		out = append(out, v.ID)
	}
	return out
}

func setCandidates() []collections.VariantID {
	out := make([]collections.VariantID, 0, 8)
	for _, v := range collections.SetVariants[int]() {
		out = append(out, v.ID)
	}
	return out
}

func TestDecideListLookupHeavySwitchesToHashArray(t *testing.T) {
	// The Figure 5a scenario: populate to 500 then run lookups. The
	// lookup volume must amortize the hash bag's build cost (Go's int
	// scans are cheap, so the crossover sits near ~200 lookups with the
	// default models); at 500 lookups the switch is clear-cut.
	agg := newCostAgg(perfmodel.Default(), listCandidates())
	for i := 0; i < 100; i++ {
		agg.fold(Workload{Adds: 500, Contains: 500, MaxSize: 500})
	}
	d := decide(agg, collections.ArrayListID, Rtime(), 4, 50)
	if !d.ok {
		t.Fatal("no switch decided")
	}
	if d.switchTo != collections.HashArrayListID {
		t.Fatalf("switched to %s, want %s", d.switchTo, collections.HashArrayListID)
	}
	if r := d.ratios[perfmodel.DimTimeNS]; r >= 0.8 {
		t.Fatalf("time ratio %g, want < 0.8", r)
	}
}

func TestDecideListSmallSizesStayOnArray(t *testing.T) {
	// At size 10 the linear scan is cheap: no hash variant can promise a
	// 20% improvement, so the context must stay.
	agg := newCostAgg(perfmodel.Default(), listCandidates())
	for i := 0; i < 100; i++ {
		agg.fold(Workload{Adds: 10, Contains: 500, MaxSize: 10})
	}
	d := decide(agg, collections.ArrayListID, Rtime(), 4, 50)
	if d.ok {
		t.Fatalf("switched to %s at size 10", d.switchTo)
	}
}

func TestDecideSetRtimePicksOpenFast(t *testing.T) {
	// Figure 5b: chained HashSet loses to the Koloboke-like fast preset.
	agg := newCostAgg(perfmodel.Default(), setCandidates())
	for i := 0; i < 100; i++ {
		agg.fold(Workload{Adds: 500, Contains: 100, MaxSize: 500})
	}
	d := decide(agg, collections.HashSetID, Rtime(), 4, 50)
	if !d.ok {
		t.Fatal("no switch decided")
	}
	if d.switchTo != collections.OpenHashSetFastID {
		t.Fatalf("switched to %s, want %s", d.switchTo, collections.OpenHashSetFastID)
	}
}

func TestDecideSetRallocStepsAcrossPresets(t *testing.T) {
	// Figure 5d: under Ralloc the selected preset shifts from the most
	// memory-compact at small sizes, through balanced, to fast at large
	// sizes.
	cases := []struct {
		size int64
		want collections.VariantID
	}{
		{150, collections.OpenHashSetCmpID},
		{550, collections.OpenHashSetBalID},
		{900, collections.OpenHashSetFastID},
	}
	for _, c := range cases {
		agg := newCostAgg(perfmodel.Default(), setCandidates())
		for i := 0; i < 100; i++ {
			agg.fold(Workload{Adds: c.size, Contains: 100, MaxSize: c.size})
		}
		d := decide(agg, collections.HashSetID, Ralloc(), 4, 50)
		if !d.ok {
			t.Fatalf("size %d: no switch decided", c.size)
		}
		if d.switchTo != c.want {
			t.Fatalf("size %d: switched to %s, want %s", c.size, d.switchTo, c.want)
		}
	}
}

func TestDecideAdaptiveGatedBySizeSpread(t *testing.T) {
	models := perfmodel.Default()
	// Candidate set narrowed to {chained, adaptive} to observe the gate
	// itself: with widely ranging sizes adaptive is admitted and wins;
	// with an unreachable spread gate it is excluded and nothing wins.
	candidates := []collections.VariantID{collections.HashSetID, collections.AdaptiveSetID}
	agg := newCostAgg(models, candidates)
	for i := 0; i < 90; i++ {
		agg.fold(Workload{Adds: 8, Contains: 20, MaxSize: 8})
	}
	for i := 0; i < 10; i++ {
		agg.fold(Workload{Adds: 600, Contains: 20, MaxSize: 600})
	}
	if spread := agg.sizeSpread(); spread < 4 {
		t.Fatalf("sizeSpread = %g, expected >= 4", spread)
	}
	d := decide(agg, collections.HashSetID, Ralloc(), 4, 50)
	if !d.ok || d.switchTo != collections.AdaptiveSetID {
		t.Fatalf("spread workload: got %+v, want switch to %s", d, collections.AdaptiveSetID)
	}

	// Same aggregate but with a spread gate above the observed spread:
	// adaptive must be excluded.
	if d := decide(agg, collections.HashSetID, Ralloc(), 1e9, 50); d.ok {
		t.Fatalf("adaptive selected (%s) despite failing the spread gate", d.switchTo)
	}
}

func TestDecideFullCandidatesSpreadWorkloadPicksMemoryVariant(t *testing.T) {
	// With the full candidate set, the spread workload must still move
	// off the chained HashSet to one of the memory-oriented variants
	// under Ralloc (which one depends on the exact mix).
	agg := newCostAgg(perfmodel.Default(), setCandidates())
	for i := 0; i < 90; i++ {
		agg.fold(Workload{Adds: 8, Contains: 20, MaxSize: 8})
	}
	for i := 0; i < 10; i++ {
		agg.fold(Workload{Adds: 600, Contains: 20, MaxSize: 600})
	}
	d := decide(agg, collections.HashSetID, Ralloc(), 4, 50)
	if !d.ok {
		t.Fatal("no switch on spread workload")
	}
	memoryish := map[collections.VariantID]bool{
		collections.AdaptiveSetID:    true,
		collections.OpenHashSetCmpID: true,
		collections.CompactHashSetID: true,
		collections.ArraySetID:       true,
		collections.OpenHashSetBalID: true,
	}
	if !memoryish[d.switchTo] {
		t.Fatalf("switched to %s, not a memory-oriented variant", d.switchTo)
	}
	if r := d.ratios[perfmodel.DimAllocB]; r >= 0.8 {
		t.Fatalf("alloc ratio %g, want < 0.8", r)
	}
}

func TestDecideUniformSizesExcludeAdaptive(t *testing.T) {
	agg := newCostAgg(perfmodel.Default(), setCandidates())
	for i := 0; i < 100; i++ {
		agg.fold(Workload{Adds: 30, Contains: 50, MaxSize: 30})
	}
	if spread := agg.sizeSpread(); spread != 1 {
		t.Fatalf("uniform spread = %g, want 1", spread)
	}
	d := decide(agg, collections.HashSetID, Ralloc(), 4, 50)
	if d.ok && d.switchTo == collections.AdaptiveSetID {
		t.Fatal("adaptive selected for uniform sizes")
	}
}

func TestDecideEmptyAggregate(t *testing.T) {
	agg := newCostAgg(perfmodel.Default(), listCandidates())
	if d := decide(agg, collections.ArrayListID, Rtime(), 4, 50); d.ok {
		t.Fatal("decision from empty aggregate")
	}
}

func TestDecideUnknownCurrent(t *testing.T) {
	agg := newCostAgg(perfmodel.Default(), listCandidates())
	agg.fold(Workload{Adds: 100, MaxSize: 100})
	if d := decide(agg, "list/bogus", Rtime(), 4, 50); d.ok {
		t.Fatal("decision with unknown current variant")
	}
}

func TestDecideStaysWhenCurrentIsBest(t *testing.T) {
	// Already on HashArrayList with a lookup-heavy workload: nothing can
	// beat it by 20%.
	agg := newCostAgg(perfmodel.Default(), listCandidates())
	for i := 0; i < 100; i++ {
		agg.fold(Workload{Adds: 500, Contains: 1000, MaxSize: 500})
	}
	if d := decide(agg, collections.HashArrayListID, Rtime(), 4, 50); d.ok {
		t.Fatalf("left HashArrayList for %s on lookup-heavy workload", d.switchTo)
	}
}

func TestDecideIterationHeavyLeavesLinked(t *testing.T) {
	// Iteration plus middle-insert-heavy workload starting from
	// LinkedList: ArrayList's cheap iteration should win under Rtime
	// (the bloat LL→AL transition of Table 6).
	agg := newCostAgg(perfmodel.Default(), listCandidates())
	for i := 0; i < 100; i++ {
		agg.fold(Workload{Adds: 200, Iterates: 50, Contains: 30, MaxSize: 200})
	}
	d := decide(agg, collections.LinkedListID, Rtime(), 4, 50)
	if !d.ok {
		t.Fatal("no switch from LinkedList")
	}
	if d.switchTo != collections.ArrayListID {
		t.Fatalf("switched to %s, want %s", d.switchTo, collections.ArrayListID)
	}
}

func TestCostAggSpreadEdgeCases(t *testing.T) {
	agg := newCostAgg(perfmodel.Default(), setCandidates())
	if agg.sizeSpread() != 1 {
		t.Error("empty aggregate spread != 1")
	}
	agg.fold(Workload{Adds: 0, MaxSize: 0})
	if agg.sizeSpread() != 1 {
		t.Error("zero-size aggregate spread != 1")
	}
	agg.fold(Workload{Adds: 100, MaxSize: 100})
	if got := agg.sizeSpread(); got != 100 {
		t.Errorf("spread with sizes {0,100} = %g, want 100 (min clamped to 1)", got)
	}
}

func TestFoldCountsPopulations(t *testing.T) {
	// An instance populated twice to size s (2s adds) must be charged
	// two populations.
	models := perfmodel.Default()
	once := newCostAgg(models, listCandidates())
	once.fold(Workload{Adds: 500, MaxSize: 500})
	twice := newCostAgg(models, listCandidates())
	twice.fold(Workload{Adds: 1000, MaxSize: 500})
	a := once.total(0, perfmodel.DimTimeNS)
	b := twice.total(0, perfmodel.DimTimeNS)
	if b < 1.8*a || b > 2.2*a {
		t.Errorf("double population cost %g, want ~2x %g", b, a)
	}
}
