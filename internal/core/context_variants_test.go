package core

import (
	"runtime"
	"testing"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

func TestSetContextWithSortedVariants(t *testing.T) {
	// Candidate pool: chained default plus the sorted-array extension.
	// A small, lookup-moderate workload under Ralloc must pick the sorted
	// array: lowest allocation, binary-searched lookups keep it inside
	// the 1.2x time cap.
	e := testEngine(Ralloc())
	defer e.Close()
	variants := append(collections.SetVariants[int](), collections.SortedSetVariants[int]()...)
	ctx := NewSetContextWithVariants(e, variants,
		WithDefaultVariant(collections.HashSetID),
		WithName("test:sorted"),
		WithCandidates(collections.HashSetID, collections.SortedArraySetID))
	for i := 0; i < 10; i++ {
		s := ctx.NewSet()
		for j := 0; j < 20; j++ {
			s.Add(j * 3)
		}
		for j := 0; j < 20; j++ {
			s.Contains(j * 2)
		}
	}
	runtime.GC()
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.SortedArraySetID {
		t.Fatalf("variant = %s, want %s", got, collections.SortedArraySetID)
	}
	// The switched-to instances must really be sorted arrays.
	s := ctx.NewSet()
	for _, v := range []int{5, 1, 3} {
		s.Add(v)
	}
	var got []int
	s.ForEach(func(v int) bool { got = append(got, v); return true })
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("post-switch iteration not sorted: %v", got)
	}
}

func TestMapContextWithConcurrentVariants(t *testing.T) {
	// A context whose pool is {chained, sync, sharded}: under Rtime with
	// a sequential workload the engine must NOT move to the lock-paying
	// variants (their modeled time is strictly worse).
	e := testEngine(Rtime())
	defer e.Close()
	variants := append(collections.MapVariants[int, int](), collections.ConcurrentMapVariants[int, int]()...)
	ctx := NewMapContextWithVariants(e, variants,
		WithDefaultVariant(collections.HashMapID),
		WithCandidates(collections.HashMapID, collections.SyncMapID, collections.ShardedMapID))
	for i := 0; i < 10; i++ {
		m := ctx.NewMap()
		for j := 0; j < 200; j++ {
			m.Put(j, j)
		}
		for j := 0; j < 100; j++ {
			m.Get(j)
		}
	}
	runtime.GC()
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got == collections.SyncMapID || got == collections.ShardedMapID {
		t.Fatalf("sequential workload switched to lock-paying variant %s", got)
	}
}

func TestListContextWithVariantsDefaultIsFirst(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	variants := []collections.ListVariant[int]{
		{ID: collections.LinkedListID, New: func(int) collections.List[int] { return collections.NewLinkedList[int]() }},
		{ID: collections.ArrayListID, New: func(c int) collections.List[int] { return collections.NewArrayListCap[int](c) }},
	}
	ctx := NewListContextWithVariants(e, variants)
	if got := ctx.CurrentVariant(); got != collections.LinkedListID {
		t.Fatalf("default = %s, want first supplied variant", got)
	}
	if _, ok := ctx.NewList().(*monitoredList[int]); !ok {
		t.Fatal("instances not monitored")
	}
}

func TestWithVariantsEmptyPanics(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("empty variant pool accepted")
		}
	}()
	NewSetContextWithVariants[int](e, nil)
}

func TestWithVariantsUnknownDefaultPanics(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("default outside the pool accepted")
		}
	}()
	NewListContextWithVariants(e, collections.ListVariants[int](),
		WithDefaultVariant("set/hash"))
}

func TestRenergyRule(t *testing.T) {
	r := Renergy()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Criteria[0].Dimension != perfmodel.DimEnergy || r.Criteria[0].Threshold != 0.8 {
		t.Fatalf("Renergy C1 = %+v", r.Criteria[0])
	}
	if r.Criteria[1].Dimension != perfmodel.DimTimeNS || r.Criteria[1].Threshold != 1.2 {
		t.Fatalf("Renergy C2 = %+v", r.Criteria[1])
	}
}

func TestRenergySelectsLowPowerVariant(t *testing.T) {
	// Chained hash (power 1.3, boxed allocation) against the open fast
	// preset (1.08, flat): the energy rule must move off the chained set.
	e := testEngine(Renergy())
	defer e.Close()
	ctx := NewSetContext[int](e, WithName("test:energy"),
		WithCandidates(collections.HashSetID, collections.OpenHashSetFastID))
	for i := 0; i < 10; i++ {
		s := ctx.NewSet()
		for j := 0; j < 400; j++ {
			s.Add(j)
		}
		for j := 0; j < 100; j++ {
			s.Contains(j * 2)
		}
	}
	runtime.GC()
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.OpenHashSetFastID {
		t.Fatalf("energy rule kept %s", got)
	}
	trs := e.Transitions()
	if len(trs) != 1 {
		t.Fatalf("transitions = %d", len(trs))
	}
	if r := trs[0].Ratios[perfmodel.DimEnergy]; r >= 0.8 {
		t.Fatalf("energy ratio = %g, want < 0.8", r)
	}
}

func TestEnergyAccumulatedInAggregate(t *testing.T) {
	agg := newCostAgg(perfmodel.Default(), setCandidates())
	agg.fold(Workload{Adds: 100, Contains: 50, MaxSize: 100})
	for i, v := range agg.candidates {
		if e := agg.total(i, perfmodel.DimEnergy); e <= 0 {
			t.Errorf("candidate %s accumulated no energy cost", v)
		}
	}
}
