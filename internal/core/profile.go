package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// The instance profile is the record path of the whole framework: every
// critical operation on a monitored collection lands here. Under saturation
// (all cores busy, many goroutines sharing one monitored instance) a single
// set of per-instance atomics becomes a cache-line ping-pong hot spot, so the
// counters are striped: a profile owns a small power-of-two set of
// cache-line-padded stripes, each operation increments the stripe a cheap
// per-goroutine hash selects (monitor.go, stripeOf), and the stripes are
// summed only when the analyzer folds the instance. Increments from
// different cores land on different cache lines, which removes the
// cross-core contention while keeping every count exact — the stripe sum
// equals the total number of increments, and the per-stripe maximum-size
// high-water marks combine into exactly the global maximum
// (TestProfileShardsSumExactly).
//
// On a GOMAXPROCS=1 process the profile collapses to a single stripe, the
// wrap path builds the plain (non-striped) monitor form, and the record
// path is byte-for-byte the historical one: one uncontended atomic add per
// counter, no per-operation selection of any kind (see monitor.go for why
// even a predicted branch would not be free there).

// cacheLineBytes is the coherence granularity the stripes are padded to.
const cacheLineBytes = 64

// pshard is one counter stripe. The five counters occupy 40 bytes; the pad
// grows the struct to one full cache line so neighboring stripes never share
// a line (the false sharing the striping exists to avoid). stripeOf indexes
// the stripe array by byte offset, so the size must stay exactly
// cacheLineBytes (asserted at compile time below).
type pshard struct {
	adds     atomic.Int64 // Add/Insert/Put calls
	contains atomic.Int64 // Contains/IndexOf/Get/ContainsKey calls
	iterates atomic.Int64 // full traversals (ForEach)
	middles  atomic.Int64 // positional/middle mutations and removals
	maxSize  atomic.Int64 // high-water mark of Len()
	_        [cacheLineBytes - 5*8]byte
}

var (
	_ [cacheLineBytes - unsafe.Sizeof(pshard{})]byte
	_ [unsafe.Sizeof(pshard{}) - cacheLineBytes]byte
)

// observeSize raises the stripe's max-size high-water mark to at least n.
func (sh *pshard) observeSize(n int) {
	for {
		cur := sh.maxSize.Load()
		if int64(n) <= cur {
			return
		}
		if sh.maxSize.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// profile accumulates the workload of one monitored collection instance
// across its counter stripes. The monitored collection may live on any
// goroutine while the analyzer reads concurrently; every field access is
// atomic.
type profile struct {
	shards []pshard
}

// profileShardCount sizes a fresh profile's stripe set: the next power of
// two covering GOMAXPROCS (so the goroutine hash reduces to a mask), capped
// to bound the per-instance footprint on very wide machines.
func profileShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n > 64 {
		n = 64
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// base returns the first stripe — the fixed counting target of the plain
// monitor form and the base address striped monitors offset from.
func (p *profile) base() *pshard { return &p.shards[0] }

// maskBytes returns the stripe-selection mask in bytes, (stripes-1)*64.
// Zero exactly when the profile has a single stripe, which is what makes it
// double as the plain-vs-striped monitor discriminator (context.go).
func (p *profile) maskBytes() uintptr {
	return uintptr(len(p.shards)-1) * cacheLineBytes
}

// profilePool recycles profiles between monitoring windows: a window's worth
// of striped counters is the dominant allocation of the monitored-creation
// path, and sites churn through one profile per monitored instance. Entries
// are zeroed on release, so Get always hands back a clean profile. Profiles
// are recyclable precisely when their monitor has been collected (the weak
// reference reports nil): the monitor's death is what guarantees no recorder
// can still reach the counters. The monitor wrappers themselves cannot be
// pooled for the same reason in reverse — their collection by the GC is the
// instance-death signal, so by the time the framework knows one is free it
// no longer exists.
var profilePool = sync.Pool{New: func() any {
	return &profile{shards: make([]pshard, profileShardCount())}
}}

// newProfile returns a zeroed profile, recycled when one is available.
func newProfile() *profile {
	return profilePool.Get().(*profile)
}

// release zeroes the profile and returns it to the pool. Callers must
// guarantee no recorder can still reach it (see profilePool).
func (p *profile) release() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.adds.Store(0)
		sh.contains.Store(0)
		sh.iterates.Store(0)
		sh.middles.Store(0)
		sh.maxSize.Store(0)
	}
	profilePool.Put(p)
}

// snapshot aggregates the stripes into the immutable Workload the analyzer
// folds: counters sum (each operation incremented exactly one stripe once),
// the size high-water mark is the maximum over stripes.
func (p *profile) snapshot() Workload {
	var w Workload
	for i := range p.shards {
		sh := &p.shards[i]
		w.Adds += sh.adds.Load()
		w.Contains += sh.contains.Load()
		w.Iterates += sh.iterates.Load()
		w.Middles += sh.middles.Load()
		if m := sh.maxSize.Load(); m > w.MaxSize {
			w.MaxSize = m
		}
	}
	return w
}
