package core

import (
	"testing"

	"repro/internal/collections"
	"repro/internal/obs"
)

// fakeStarter is an in-memory WarmStarter.
type fakeStarter map[string]WarmDecision

func (f fakeStarter) WarmLookup(ctx string) (WarmDecision, bool) {
	d, ok := f[ctx]
	return d, ok
}

// lookupHeavyProfile mirrors churnLists(n, 500, 500): balanced add/contains
// mix at mean size 500.
func lookupHeavyProfile() WorkloadProfile {
	return WorkloadProfile{Adds: 500, Contains: 500, Instances: 1, MeanSize: 500, MaxSize: 500}
}

func TestDrift(t *testing.T) {
	base := lookupHeavyProfile()
	if d := Drift(base, base); d != 0 {
		t.Errorf("Drift(p, p) = %g, want 0", d)
	}
	if d := Drift(base, WorkloadProfile{}); d != 0 {
		t.Errorf("Drift against an unobserved profile = %g, want 0", d)
	}
	// Same mix, 16x size shift: size component alone reaches 1.
	big := base
	big.MeanSize = 500 * 16
	if d := Drift(base, big); d < 0.99 || d > 1.01 {
		t.Errorf("Drift at 16x size = %g, want ~1", d)
	}
	// Disjoint op mixes at the same size: total-variation distance 1.
	addsOnly := WorkloadProfile{Adds: 100, Instances: 1, MeanSize: 500}
	containsOnly := WorkloadProfile{Contains: 100, Instances: 1, MeanSize: 500}
	if d := Drift(addsOnly, containsOnly); d != 1 {
		t.Errorf("Drift of disjoint mixes = %g, want 1", d)
	}
	// An active profile against a silent one is maximal mix drift.
	silent := WorkloadProfile{Instances: 1, MeanSize: 500}
	if d := Drift(addsOnly, silent); d != 1 {
		t.Errorf("Drift active vs silent = %g, want 1", d)
	}
	if d := Drift(base, addsOnly); d != 0.5 {
		t.Errorf("Drift 50/50 vs adds-only = %g, want 0.5", d)
	}
}

func TestWarmStartRestoresVariant(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{
		WindowSize: 10, CooldownWindows: -1, Sink: col, Name: "warm",
		WarmStart: fakeStarter{
			"site:list": {Variant: collections.HashArrayListID, Profile: lookupHeavyProfile()},
		},
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("site:list"))
	if got := ctx.CurrentVariant(); got != collections.HashArrayListID {
		t.Fatalf("warm-started variant = %s, want HashArrayList", got)
	}
	if got := e.Metrics().WarmStarts.Load(); got != 1 {
		t.Errorf("WarmStarts = %d, want 1", got)
	}
	ev, ok := firstOfKind(col.Events(), obs.KindWarmStart)
	if !ok {
		t.Fatal("no WarmStart event emitted")
	}
	ws := ev.(obs.WarmStart)
	if ws.Context != "site:list" || ws.Variant != string(collections.HashArrayListID) {
		t.Errorf("WarmStart event = %+v", ws)
	}
	// An unknown site starts cold, silently.
	cold := NewListContext[int](e, WithName("other:list"))
	if got := cold.CurrentVariant(); got != collections.ArrayListID {
		t.Errorf("unknown site warm-started to %s", got)
	}
	if got := e.Metrics().WarmStarts.Load(); got != 1 {
		t.Errorf("WarmStarts after unknown site = %d, want 1", got)
	}
}

func TestWarmStartRejectsVariantOutsideCandidatePool(t *testing.T) {
	e := NewEngineManual(Config{
		WindowSize: 10, CooldownWindows: -1,
		WarmStart: fakeStarter{
			"site:list": {Variant: collections.HashMapID}, // not a list variant
		},
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("site:list"))
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("variant = %s, want ArrayList (stale store entry ignored)", got)
	}
	if got := e.Metrics().WarmStarts.Load(); got != 0 {
		t.Errorf("WarmStarts = %d, want 0", got)
	}
}

func TestWarmContextHoldsVariantOnStableWorkload(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1, Sink: col,
		WarmStart: fakeStarter{
			"site:list": {Variant: collections.HashArrayListID, Profile: lookupHeavyProfile()},
		},
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("site:list"))
	// The live workload matches the persisted profile, so windows close
	// without any rule evaluation and the restored variant holds.
	for round := 0; round < 3; round++ {
		churnLists(ctx, 10, 500, 500)
		e.AnalyzeNow()
	}
	if got := ctx.Round(); got != 3 {
		t.Fatalf("rounds = %d, want 3 (windows must still close while warm)", got)
	}
	if got := ctx.CurrentVariant(); got != collections.HashArrayListID {
		t.Errorf("variant = %s, want HashArrayList held", got)
	}
	if got := len(e.Transitions()); got != 0 {
		t.Errorf("transitions = %d, want 0 on a stable warm site", got)
	}
	if got := e.Metrics().RuleEvaluations.Load(); got != 0 {
		t.Errorf("RuleEvaluations = %d, want 0 while warm", got)
	}
	if got := e.Metrics().WindowsClosed.Load(); got != 3 {
		t.Errorf("WindowsClosed = %d, want 3", got)
	}
	snap := e.SiteSnapshots()
	if len(snap) != 1 || !snap[0].Warm || snap[0].Variant != collections.HashArrayListID {
		t.Errorf("snapshot = %+v, want warm HashArrayList", snap)
	}
}

func TestWarmContextReopensOnDrift(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1, Sink: col,
		WarmStart: fakeStarter{
			"site:list": {Variant: collections.HashArrayListID, Profile: lookupHeavyProfile()},
		},
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("site:list"))
	// The workload shifted to add-only tiny lists: far past the threshold.
	churnLists(ctx, 10, 10, 0)
	e.AnalyzeNow()

	ev, ok := firstOfKind(col.Events(), obs.KindCalibrationDrift)
	if !ok {
		t.Fatal("no CalibrationDrift event emitted")
	}
	cd := ev.(obs.CalibrationDrift)
	if cd.Context != "site:list" || cd.Drift <= cd.Threshold {
		t.Errorf("CalibrationDrift event = %+v", cd)
	}
	if got := e.Metrics().DriftReopens.Load(); got != 1 {
		t.Errorf("DriftReopens = %d, want 1", got)
	}
	// The drifting window itself is evaluated normally — no decision lag.
	if got := e.Metrics().RuleEvaluations.Load(); got != 1 {
		t.Errorf("RuleEvaluations = %d, want 1 (the drifted window evaluates)", got)
	}
	if snap := e.SiteSnapshots(); snap[0].Warm {
		t.Error("context still warm after drift")
	}
	// With selection re-opened, the mis-restored variant is corrected.
	churnLists(ctx, 10, 10, 0)
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Errorf("variant = %s, want ArrayList after drift re-opened selection", got)
	}
}

func TestSiteSnapshotCarriesProfileAndAbstraction(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e, WithName("snap:list"))
	churnLists(ctx, 10, 100, 50)
	e.AnalyzeNow()
	snaps := e.SiteSnapshots()
	if len(snaps) != 1 {
		t.Fatalf("SiteSnapshots = %d entries, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Name != "snap:list" || s.Abstraction != "list" {
		t.Errorf("snapshot identity = %q/%q", s.Name, s.Abstraction)
	}
	if s.Rounds != 1 || s.Warm {
		t.Errorf("snapshot rounds/warm = %d/%v, want 1/false", s.Rounds, s.Warm)
	}
	if s.Profile.Instances != 10 || s.Profile.MeanSize != 100 || s.Profile.Adds != 10*100 {
		t.Errorf("snapshot profile = %+v", s.Profile)
	}
	if len(s.Candidates) == 0 {
		t.Error("snapshot lost the candidate pool")
	}
}
