package core

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
	"weak"

	"repro/internal/collections"
	"repro/internal/obs"
	"repro/internal/perfmodel"
)

// This file implements the adaptive allocation context of Section 4.3 once,
// generically, for all abstractions. A siteCore is parameterized by the
// collection interface C (List[T], Set[T], Map[K,V], ...) and the concrete
// monitor type M whose pointer implements C; the per-abstraction wrappers in
// context.go contribute only the monitor-wrapping functions and the adaptive
// transition threshold. Everything else — factories, the monitored window,
// incremental cost aggregation, round/cooldown state, analysis — lives here
// exactly once.
//
// Creation fast path. The common case at a hot allocation site is that the
// context is NOT currently filling a window: it is either in its post-round
// cooldown or waiting with a full window for the finished ratio. The paper's
// design says monitoring must cost ~nothing in that state, so the fast path
// is lock-free: a single atomic state word encodes
//
//	state > 0                cooldown; CAS-decrement and hand out an
//	                         unmonitored instance
//	state == stateOpen (0)   window open; take the mutex and monitor
//	state == stateWindowFull window full, awaiting analysis; hand out an
//	                         unmonitored instance without any write
//
// and the current variant's factory is published through an atomic pointer.
// The fast path performs no allocation beyond the collection itself (asserted
// by TestFastPathAllocsOnlyCollection and guarded by BenchmarkNewParallel).
//
// Epoch-based window lifecycle. Each monitoring round's records live in
// their own epoch window (epochWin), published through an atomic pointer.
// Creations that join the window synchronize only on the epoch's own tiny
// append lock — never on c.mu, which has become an analyze-side lock — so
// window accounting on the record path no longer contends with folding,
// decision evaluation, explain reads or snapshot captures. Closing a round
// advances the epoch: analyze seals the old window, drains it (every record
// folded exactly once — the aggregate equals the historical shared-counter
// totals), recycles the profiles of finished instances, and installs a fresh
// epoch *before* reopening the creation gate, so a creator that observes the
// open state always observes the new epoch too. The grace the drain extends
// to in-flight recorders is the weak reference: a profile is only recycled
// once the GC has proven its monitor unreachable, which no live operation
// can survive (monitor methods pin the monitor past their last profile
// write — see monitor.go).
const (
	stateOpen       int64 = 0  // window accepting monitored instances
	stateWindowFull int64 = -1 // window full, waiting for the finished ratio
)

// siteRecord tracks one monitored instance: a weak pointer to the monitor
// (so the context never keeps the collection alive — the paper's
// WeakReference technique) and a strong pointer to its profile.
type siteRecord[M any] struct {
	ref    weak.Pointer[M]
	p      *profile
	folded bool
}

// epochWin holds one monitoring round's records. Creators append under the
// epoch's own mutex (held for a capacity check and a slice append — a few
// nanoseconds); the analyzer snapshots the slice header under the same
// mutex, then folds outside it, so recorders and the fold never contend.
// Existing elements of records are never moved or rewritten, which makes a
// snapshotted prefix safe to walk lock-free.
type epochWin[M any] struct {
	mu      sync.Mutex
	records []*siteRecord[M]
	// sealed is set by analyze when the epoch retires; a creator that raced
	// the close bounces to an unmonitored instance instead of appending to a
	// window that will never be drained.
	sealed bool
	// fill mirrors len(records) for lock-free stats reads.
	fill atomic.Int64
}

// newEpochWin sizes the record slice for the configured window, capped so a
// huge WindowSize (benchmarks use 1<<31 to mean "never closes") does not
// pre-allocate a huge array.
func newEpochWin[M any](windowSize int) *epochWin[M] {
	c := windowSize
	if c > 1024 {
		c = 1024
	}
	return &epochWin[M]{records: make([]*siteRecord[M], 0, c)}
}

// snapshot returns a prefix-consistent view of the epoch's records: every
// record folded by an earlier analysis pass is in it (folds only happen to
// previously snapshotted prefixes), records appended later are simply not
// seen until the next pass.
func (w *epochWin[M]) snapshot() []*siteRecord[M] {
	w.mu.Lock()
	recs := w.records
	w.mu.Unlock()
	return recs
}

// curVariant is the atomically published "current variant" of a context:
// the fast path loads it with a single pointer read.
type curVariant[C any] struct {
	id      collections.VariantID
	factory func(int) C
}

// siteCore is the shared engine-facing core of an allocation context.
type siteCore[C any, M any] struct {
	e    *Engine
	name string // final after Engine.register (duplicate disambiguation)

	// Immutable after construction.
	abstraction string                                // "list", "set", "map"
	factories   map[collections.VariantID]func(int) C //
	wrap        func(C, *profile) *M                  // wrap a collection in a fresh monitor
	unwrap      func(*M) C                            // view the monitor as the abstraction
	threshold   int64                                 // adaptive-variant transition threshold

	// state is the lock-free creation gate (see the file comment).
	state atomic.Int64
	// cur is the variant future instantiations use, swapped at window close.
	cur atomic.Pointer[curVariant[C]]
	// win is the current epoch window. Creators load it and append under the
	// epoch's own lock; analyze retires it and installs the next epoch at
	// window close. Never accessed through c.mu.
	win atomic.Pointer[epochWin[M]]

	// mu is the analyze-side lock: it guards agg, round, missingWarned, the
	// ring and the workload profiles, and serializes analysis with the
	// snapshot/status/explain readers. The record path never takes it.
	mu    sync.Mutex
	agg   *costAgg
	round int
	// ring is the bounded decision-record history served by Engine.Explain;
	// nil when Config.DecisionRing disabled recording. Written only by
	// analyze (under mu), so the creation fast path never touches it.
	ring *decisionRing

	// candidates is the factory-filtered candidate pool. The per-window
	// aggregate is built from the subset the active models fully cover
	// (see buildAgg); keeping the full list here lets a model hot-swap
	// restore candidates an earlier model set was missing curves for.
	candidates []collections.VariantID
	// missingWarned dedupes ModelMissing warnings: one per (context,
	// variant) per model set (warnedFor tracks which set it applies to).
	missingWarned map[collections.VariantID]bool
	warnedFor     *perfmodel.Models

	// Workload-shape accounting for warm start and calibration (guarded by
	// mu). winProf aggregates the current window's folded workloads and is
	// reset at each window close; siteProf aggregates over the context's
	// lifetime. Both are fed exactly where a record's folded flag flips to
	// true — the model-swap re-fold path must not double-count an instance.
	winProf  WorkloadProfile
	siteProf WorkloadProfile
	// warm marks a context restored from a WarmStarter: rule evaluation is
	// skipped while the observed window profile stays within DriftThreshold
	// of warmProf (the profile the persisted decision was made under).
	warm     bool
	warmProf WorkloadProfile
}

// init populates a zero siteCore in place (it contains atomics and a mutex,
// so it must never be copied after first use).
func (c *siteCore[C, M]) init(e *Engine, o ctxOptions, abstraction string, factories map[collections.VariantID]func(int) C,
	wrap func(C, *profile) *M, unwrap func(*M) C, threshold int64) {
	c.e = e
	c.name = o.name
	c.abstraction = abstraction
	c.factories = factories
	c.wrap = wrap
	c.unwrap = unwrap
	c.threshold = threshold
	c.candidates = filterKnown(o.candidates, factories)
	c.missingWarned = make(map[collections.VariantID]bool)
	c.ring = newDecisionRing(e.cfg.DecisionRing)
	c.agg = c.buildAgg()
	c.win.Store(newEpochWin[M](e.cfg.WindowSize))
	c.cur.Store(&curVariant[C]{id: o.defaultVar, factory: factories[o.defaultVar]})
}

// buildAgg constructs the cost aggregate for the next monitoring window
// against the engine's active models: candidates lacking a curve for any
// (op × rule-dimension) cell the fold will evaluate are skipped — ranking a
// partially modeled candidate against fully modeled ones would mis-rank it
// (and panic in Models.Cost) — and the first gap is reported once per
// (context, variant) per model set through an obs.ModelMissing warning.
func (c *siteCore[C, M]) buildAgg() *costAgg {
	models := c.e.models.Load()
	if models != c.warnedFor {
		c.warnedFor = models
		clear(c.missingWarned)
	}
	usable := make([]collections.VariantID, 0, len(c.candidates))
	for _, v := range c.candidates {
		op, dim, missing := missingCurve(models, v, c.e.ruleDims)
		if !missing {
			usable = append(usable, v)
			continue
		}
		if !c.missingWarned[v] {
			c.missingWarned[v] = true
			c.e.metrics.ModelGaps.Add(1)
			if c.e.sink != nil {
				c.e.emit(obs.ModelMissing{
					Engine:    c.e.cfg.Name,
					Context:   c.name,
					Variant:   string(v),
					Op:        string(op),
					Dimension: string(dim),
				})
			}
		}
	}
	agg := newCostAggDims(models, usable, c.e.ruleDims)
	agg.setConfidence(c.e.confZ)
	return agg
}

// newCollection returns a collection of the context's current variant. The
// first WindowSize instances of each monitoring round are wrapped in
// monitors; cooldown and window-full creations take the lock-free fast path.
func (c *siteCore[C, M]) newCollection() C {
	c.e.metrics.InstancesCreated.Add(1)
	for {
		s := c.state.Load()
		if s == stateWindowFull {
			return c.cur.Load().factory(0)
		}
		if s > 0 {
			if c.state.CompareAndSwap(s, s-1) {
				return c.cur.Load().factory(0)
			}
			continue // lost a cooldown slot to a concurrent creator; retry
		}
		return c.newMonitored()
	}
}

// newMonitored is the monitored-creation path: the window looked open, so
// the creation tries to join the current epoch. It synchronizes only on the
// epoch's append lock — never on c.mu — so joining the window cannot contend
// with an in-flight analysis pass. Capacity is re-checked under that lock: a
// concurrent creator may have filled the window (or a concurrent analyze
// sealed it) between the fast-path gate load and here, in which case the
// creation bounces to an unmonitored instance and republishes the gate. A
// creator racing an epoch advance can land its record in the *new* epoch
// while the gate still reads as cooldown — a benign oversample by one (the
// record simply joins the next round's window); at AnalysisParallelism 1
// with single-threaded creation the race cannot occur, which is what keeps
// the Table 6 trace byte-identical.
func (c *siteCore[C, M]) newMonitored() C {
	inner := c.cur.Load().factory(0)
	p := newProfile()
	m := c.wrap(inner, p)
	rec := &siteRecord[M]{ref: weak.Make(m), p: p}
	w := c.win.Load()
	w.mu.Lock()
	if w.sealed || len(w.records) >= c.e.cfg.WindowSize {
		w.mu.Unlock()
		c.state.CompareAndSwap(stateOpen, stateWindowFull)
		// The monitor never escapes, so no operation can ever reach p.
		p.release()
		return inner
	}
	w.records = append(w.records, rec)
	n := len(w.records)
	w.fill.Store(int64(n))
	w.mu.Unlock()
	c.e.metrics.InstancesMonitored.Add(1)
	if n == c.e.cfg.WindowSize {
		c.state.CompareAndSwap(stateOpen, stateWindowFull)
	}
	return c.unwrap(m)
}

// currentVariant returns the variant future instantiations will use.
func (c *siteCore[C, M]) currentVariant() collections.VariantID {
	return c.cur.Load().id
}

// completedRounds returns the number of completed analysis rounds.
func (c *siteCore[C, M]) completedRounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

func (c *siteCore[C, M]) contextName() string { return c.name }

// rename is called by Engine.register (before the context is published to
// the analysis schedule) to disambiguate duplicate site labels.
func (c *siteCore[C, M]) rename(name string) { c.name = name }

// cooldownRemaining projects the state word onto the legacy cooldown count.
func (c *siteCore[C, M]) cooldownRemaining() int {
	if s := c.state.Load(); s > 0 {
		return int(s)
	}
	return 0
}

func (c *siteCore[C, M]) windowStats() obs.ContextWindowStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.ContextWindowStat{
		Context: c.name, Variant: string(c.currentVariant()), Round: c.round,
		WindowFill: int(c.win.Load().fill.Load()), Folded: c.agg.folded, Cooldown: c.cooldownRemaining(),
	}
}

// analyze folds finished instances and, when the window is complete and the
// finished ratio reached, applies the selection rule (Sections 3.1, 4.3).
// It holds only c.mu (the analyze-side lock); the epoch window is read
// through a prefix-consistent snapshot, so live recorders and creators never
// wait on this pass.
func (c *siteCore[C, M]) analyze() {
	c.mu.Lock()
	defer c.mu.Unlock()
	win := c.win.Load()
	recs := win.snapshot()
	if c.e.models.Load() != c.agg.models {
		// Models were hot-swapped mid-window. The per-instance workload
		// snapshots are still held by the window records, so rebuild the
		// aggregate against the new models and re-fold what was already
		// folded — the swap then governs this window's decision, not just
		// the next one's.
		fresh := c.buildAgg()
		for _, r := range recs {
			if r.folded {
				fresh.fold(r.p.snapshot())
			}
		}
		c.agg = fresh
	}
	reclaimed := 0
	for _, r := range recs {
		if !r.folded && r.ref.Value() == nil {
			w := r.p.snapshot()
			c.agg.fold(w)
			c.winProf.observe(w)
			c.siteProf.observe(w)
			r.folded = true
			reclaimed++
		}
	}
	if reclaimed > 0 {
		c.e.metrics.WeakReclaims.Add(int64(reclaimed))
	}
	// Waiting passes record *why* no decision could fire; consecutive
	// identical reasons are folded by the ring (Repeats), so a site idling
	// in a long cooldown does not flush its decision history.
	recording := c.ring != nil
	if len(recs) < c.e.cfg.WindowSize {
		if recording {
			if s := c.state.Load(); s > 0 {
				c.ring.push(DecisionRecord{
					When: time.Now(), Round: c.round, Variant: c.cur.Load().id,
					Outcome: OutcomeCooldown, Cooldown: int(s),
				})
			} else {
				c.ring.push(DecisionRecord{
					When: time.Now(), Round: c.round, Variant: c.cur.Load().id,
					Outcome: OutcomeWindowFilling, WindowFill: len(recs), Folded: c.agg.folded,
				})
			}
		}
		return
	}
	if c.agg.folded < neededFolds(c.e.cfg) {
		if recording {
			c.ring.push(DecisionRecord{
				When: time.Now(), Round: c.round, Variant: c.cur.Load().id,
				Outcome: OutcomeAwaitingFinished, WindowFill: len(recs),
				Folded: c.agg.folded, NeededFolds: neededFolds(c.e.cfg),
			})
		}
		return
	}
	// Decision time: use the whole set of metrics, including instances
	// still alive (the paper folds all collected metrics; the finished
	// ratio only gates when the analysis may run).
	finished := c.agg.folded
	for _, r := range recs {
		if !r.folded {
			w := r.p.snapshot()
			c.agg.fold(w)
			c.winProf.observe(w)
			c.siteProf.observe(w)
			r.folded = true
		}
	}
	// A warm-started context holds its restored variant without evaluating
	// the rule — until the window's observed profile drifts past the
	// configured threshold from the profile the persisted decision was made
	// under. Crossing it sheds the warm state permanently: from this window
	// on the context selects like any cold one.
	skipRule := false
	var warmDrift float64
	if c.warm {
		if drift := Drift(c.warmProf, c.winProf); drift <= c.e.cfg.DriftThreshold {
			skipRule = true
			warmDrift = drift
		} else {
			c.warm = false
			c.e.metrics.DriftReopens.Add(1)
			if c.e.sink != nil {
				c.e.emit(obs.CalibrationDrift{
					Engine:    c.e.cfg.Name,
					Context:   c.name,
					Drift:     drift,
					Threshold: c.e.cfg.DriftThreshold,
				})
			}
		}
	}
	cooldown := int(c.e.cfg.CooldownWindows * float64(c.e.cfg.WindowSize))
	cur := c.cur.Load()
	var gaps []collections.VariantID
	if recording {
		gaps = c.modelGaps()
	}
	next, rec := c.e.closeWindow(windowClose{
		name: c.name, agg: c.agg, current: cur.id, round: c.round,
		threshold: c.threshold, finished: finished, cooldown: cooldown,
		skipRule: skipRule, drift: warmDrift,
		record: recording, modelGaps: gaps,
	})
	if rec != nil {
		c.ring.push(*rec)
	}
	if next != cur.id {
		c.cur.Store(&curVariant[C]{id: next, factory: c.factories[next]})
	}
	// Advance the epoch: seal the retired window (a creator that raced the
	// close bounces instead of joining a window nobody will drain), recycle
	// the profiles whose monitors the GC already proved unreachable, and
	// install the next epoch *before* reopening the gate — a creator that
	// observes the reopened state therefore always observes the new epoch.
	win.mu.Lock()
	win.sealed = true
	win.mu.Unlock()
	for _, r := range recs {
		if r.ref.Value() == nil {
			r.p.release()
			r.p = nil
		}
	}
	c.win.Store(newEpochWin[M](c.e.cfg.WindowSize))
	c.agg = c.buildAgg()
	c.winProf = WorkloadProfile{}
	c.round++
	c.state.Store(int64(cooldown)) // 0 reopens the window immediately
}

// warmStart restores a persisted site decision before the context joins the
// analysis schedule. It refuses (false) a variant outside the candidate pool
// — a stale store must never strand a site on a variant the selection rule
// cannot reason about.
func (c *siteCore[C, M]) warmStart(dec WarmDecision) bool {
	f, ok := c.factories[dec.Variant]
	if !ok {
		return false
	}
	inPool := false
	for _, v := range c.candidates {
		if v == dec.Variant {
			inPool = true
			break
		}
	}
	if !inPool {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur.Store(&curVariant[C]{id: dec.Variant, factory: f})
	c.warm = true
	c.warmProf = dec.Profile
	return true
}

// modelGaps lists the candidates the current window aggregate had to exclude
// because the active models lack curves for them (explain data; caller holds
// c.mu).
func (c *siteCore[C, M]) modelGaps() []collections.VariantID {
	if len(c.agg.candidates) == len(c.candidates) {
		return nil
	}
	in := make(map[collections.VariantID]bool, len(c.agg.candidates))
	for _, v := range c.agg.candidates {
		in[v] = true
	}
	gaps := make([]collections.VariantID, 0, len(c.candidates)-len(c.agg.candidates))
	for _, v := range c.candidates {
		if !in[v] {
			gaps = append(gaps, v)
		}
	}
	return gaps
}

// decisionRecords returns the explain ring, oldest first.
func (c *siteCore[C, M]) decisionRecords() []DecisionRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.records()
}

// siteStatus extends siteSnapshot with the live window/cooldown counters and
// the last decision outcome, all captured under one lock — the /sites view
// of the diag server.
func (c *siteCore[C, M]) siteStatus() SiteStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := SiteStatus{
		SiteSnapshot: c.snapshotLocked(),
		WindowFill:   int(c.win.Load().fill.Load()),
		Folded:       c.agg.folded,
		Cooldown:     c.cooldownRemaining(),
	}
	if recs := c.ring.records(); len(recs) > 0 {
		st.LastOutcome = recs[len(recs)-1].Outcome
	}
	return st
}

// siteSnapshot captures the context's externally visible state for the
// warm-start store and the tuner's benchmark planning. A warm context that
// has not yet observed a window of its own reports the persisted profile, so
// short runs never erode a previously learned workload shape.
func (c *siteCore[C, M]) siteSnapshot() SiteSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *siteCore[C, M]) snapshotLocked() SiteSnapshot {
	prof := c.siteProf
	if prof.Instances == 0 && c.warm {
		prof = c.warmProf
	}
	cands := make([]collections.VariantID, len(c.candidates))
	copy(cands, c.candidates)
	return SiteSnapshot{
		Name:        c.name,
		Abstraction: c.abstraction,
		Variant:     c.cur.Load().id,
		Candidates:  cands,
		Rounds:      c.round,
		Warm:        c.warm,
		Profile:     prof,
	}
}

// neededFolds converts the finished ratio into an instance count.
func neededFolds(cfg Config) int {
	return int(math.Ceil(cfg.FinishedRatio * float64(cfg.WindowSize)))
}

// filterKnown drops candidate IDs that have no factory (e.g. a map variant
// ID passed to a list context).
func filterKnown[F any](ids []collections.VariantID, factories map[collections.VariantID]F) []collections.VariantID {
	out := make([]collections.VariantID, 0, len(ids))
	for _, id := range ids {
		if _, ok := factories[id]; ok {
			out = append(out, id)
		}
	}
	return out
}
