package core

import (
	"fmt"
	"math"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// costAgg incrementally accumulates the per-variant total costs TC_D(V) of
// Section 3.1.1 over the workloads of finished instances. Folding happens
// once per instance; the decision step then only compares the accumulated
// sums, making its cost independent of the window size (the Figure 7
// property).
type costAgg struct {
	models     *perfmodel.Models
	candidates []collections.VariantID
	dims       []perfmodel.Dimension
	// tc[candidateIndex][dimIndex] accumulated total cost.
	tc     [][]float64
	folded int
	// size spread of folded workloads, for adaptive gating.
	minSize, maxSize int64
}

func newCostAgg(models *perfmodel.Models, candidates []collections.VariantID) *costAgg {
	return newCostAggDims(models, candidates, perfmodel.Dimensions())
}

// newCostAggDims builds an aggregate over only the given dimensions. The
// site cores pass the active rule's dimensions: accumulating dimensions the
// rule never reads would waste fold work and would demand model curves the
// decision cannot use.
func newCostAggDims(models *perfmodel.Models, candidates []collections.VariantID, dims []perfmodel.Dimension) *costAgg {
	a := &costAgg{
		models:     models,
		candidates: candidates,
		dims:       dims,
		tc:         make([][]float64, len(candidates)),
		minSize:    math.MaxInt64,
	}
	for i := range a.tc {
		a.tc[i] = make([]float64, len(a.dims))
	}
	return a
}

// missingCurve reports the first (op, dimension) cell a candidate lacks a
// model curve for, over exactly the cells fold will evaluate: every critical
// op per dimension, except footprint which is charged through the populate
// curve only.
func missingCurve(models *perfmodel.Models, v collections.VariantID, dims []perfmodel.Dimension) (perfmodel.Op, perfmodel.Dimension, bool) {
	for _, dim := range dims {
		if dim == perfmodel.DimFootprint {
			if !models.Has(v, perfmodel.OpPopulate, dim) {
				return perfmodel.OpPopulate, dim, true
			}
			continue
		}
		for _, op := range perfmodel.Ops() {
			if !models.Has(v, op, dim) {
				return op, dim, true
			}
		}
	}
	return "", "", false
}

// fold adds one instance workload to the running totals.
func (a *costAgg) fold(w Workload) {
	a.folded++
	if w.MaxSize < a.minSize {
		a.minSize = w.MaxSize
	}
	if w.MaxSize > a.maxSize {
		a.maxSize = w.MaxSize
	}
	s := float64(w.MaxSize)
	if s < 1 {
		s = 1
	}
	// Populate is modeled per complete population to size s, so the raw
	// add count converts to "number of populations".
	popN := float64(w.Adds) / s
	for ci, v := range a.candidates {
		for di, dim := range a.dims {
			if dim == perfmodel.DimFootprint {
				// Footprint is a retained-state dimension: charged
				// once per instance at its maximum size.
				a.tc[ci][di] += a.models.Cost(v, perfmodel.OpPopulate, dim, s)
				continue
			}
			c := popN * a.models.Cost(v, perfmodel.OpPopulate, dim, s)
			c += float64(w.Contains) * a.models.Cost(v, perfmodel.OpContains, dim, s)
			c += float64(w.Iterates) * a.models.Cost(v, perfmodel.OpIterate, dim, s)
			c += float64(w.Middles) * a.models.Cost(v, perfmodel.OpMiddle, dim, s)
			a.tc[ci][di] += c
		}
	}
}

// total returns TC_D(V) for candidate index ci.
func (a *costAgg) total(ci int, dim perfmodel.Dimension) float64 {
	for di, d := range a.dims {
		if d == dim {
			return a.tc[ci][di]
		}
	}
	return 0
}

// sizeSpread returns maxSize/minSize of the folded workloads (≥1); 1 when
// nothing was folded.
func (a *costAgg) sizeSpread() float64 {
	if a.folded == 0 || a.maxSize <= 0 {
		return 1
	}
	minSz := a.minSize
	if minSz < 1 {
		minSz = 1
	}
	return float64(a.maxSize) / float64(minSz)
}

// decision is the outcome of evaluating a rule over an aggregate.
type decision struct {
	switchTo collections.VariantID
	ratios   map[perfmodel.Dimension]float64
	ok       bool
}

// decide applies the selection rule of Section 3.1.2: a candidate is
// eligible if TC_D(new)/TC_D(cur) ≤ T_D for every criterion; among eligible
// candidates the largest improvement on the first criterion wins. Adaptive
// variants are only considered when the observed sizes are "widely ranging"
// (Section 3.2): the spread must reach adaptiveSpread AND the sizes must
// straddle the variant's transition threshold — an adaptive collection is
// pointless when every instance stays on one side of it.
func decide(a *costAgg, current collections.VariantID, rule Rule, adaptiveSpread float64, adaptiveThreshold int64) decision {
	d, _, _, _ := decideExplain(a, current, rule, adaptiveSpread, adaptiveThreshold, false)
	return d
}

// decideExplain is decide plus explainability: when explain is set it also
// returns one CandidateEstimate per catalog candidate (costs, ratios,
// eligibility, the first gate each ineligible candidate failed) and the
// nearest miss — the non-gated alternative with the lowest first-criterion
// ratio, whether or not it was eligible — for the held-decision margin. The
// decision itself is computed identically with explain on or off.
func decideExplain(a *costAgg, current collections.VariantID, rule Rule, adaptiveSpread float64, adaptiveThreshold int64, explain bool) (decision, []CandidateEstimate, collections.VariantID, float64) {
	curIdx := -1
	for i, v := range a.candidates {
		if v == current {
			curIdx = i
			break
		}
	}
	if curIdx < 0 || a.folded == 0 {
		return decision{}, nil, "", math.Inf(1)
	}
	spread := a.sizeSpread()
	best := decision{}
	bestC1 := math.Inf(1)
	var estimates []CandidateEstimate
	var miss collections.VariantID
	missC1 := math.Inf(1)
	if explain {
		estimates = make([]CandidateEstimate, 0, len(a.candidates))
	}
	for i, v := range a.candidates {
		if i == curIdx {
			if explain {
				estimates = append(estimates, a.estimate(i, curIdx, rule, false, "current"))
			}
			continue
		}
		if collections.IsAdaptive(v) {
			straddles := a.minSize < adaptiveThreshold && a.maxSize > adaptiveThreshold
			if spread < adaptiveSpread || !straddles {
				if explain {
					estimates = append(estimates, a.estimate(i, curIdx, rule, false, "adaptive size gate"))
				}
				continue
			}
		}
		ratios := make(map[perfmodel.Dimension]float64, len(rule.Criteria))
		eligible := true
		failure := ""
		for _, crit := range rule.Criteria {
			ratio := a.ratio(i, curIdx, crit.Dimension)
			ratios[crit.Dimension] = ratio
			if ratio > crit.Threshold {
				eligible = false
				if failure == "" {
					failure = fmt.Sprintf("%s ratio %.4g > threshold %.4g", crit.Dimension, ratio, crit.Threshold)
				}
				if !explain {
					break
				}
			}
		}
		if explain {
			est := a.estimate(i, curIdx, rule, eligible, failure)
			est.Ratios = ratios
			estimates = append(estimates, est)
			if c1 := ratios[rule.Criteria[0].Dimension]; c1 < missC1 {
				missC1 = c1
				miss = v
			}
		}
		if !eligible {
			continue
		}
		c1 := ratios[rule.Criteria[0].Dimension]
		if c1 < bestC1 {
			bestC1 = c1
			best = decision{switchTo: v, ratios: ratios, ok: true}
		}
	}
	return best, estimates, miss, missC1
}

// ratio returns TC_D(candidate ci)/TC_D(candidate curIdx) with the decide
// conventions for zero denominators.
func (a *costAgg) ratio(ci, curIdx int, dim perfmodel.Dimension) float64 {
	newCost := a.total(ci, dim)
	curCost := a.total(curIdx, dim)
	switch {
	case curCost > 0:
		return newCost / curCost
	case newCost == 0:
		return 1
	default:
		return math.Inf(1)
	}
}

// estimate builds the explain entry for candidate ci: accumulated costs over
// every aggregated dimension plus the rule-criterion ratios against curIdx.
func (a *costAgg) estimate(ci, curIdx int, rule Rule, eligible bool, reason string) CandidateEstimate {
	costs := make(map[perfmodel.Dimension]float64, len(a.dims))
	for di, dim := range a.dims {
		costs[dim] = a.tc[ci][di]
	}
	est := CandidateEstimate{
		Variant:  a.candidates[ci],
		Costs:    costs,
		Eligible: eligible,
		Reason:   reason,
	}
	if ci != curIdx {
		est.Ratios = make(map[perfmodel.Dimension]float64, len(rule.Criteria))
		for _, crit := range rule.Criteria {
			est.Ratios[crit.Dimension] = a.ratio(ci, curIdx, crit.Dimension)
		}
	}
	return est
}
