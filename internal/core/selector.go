package core

import (
	"fmt"
	"math"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// costAgg incrementally accumulates the per-variant total costs TC_D(V) of
// Section 3.1.1 over the workloads of finished instances. Folding happens
// once per instance; the decision step then only compares the accumulated
// sums, making its cost independent of the window size (the Figure 7
// property).
type costAgg struct {
	models     *perfmodel.Models
	candidates []collections.VariantID
	dims       []perfmodel.Dimension
	// tc[candidateIndex][dimIndex] accumulated total cost.
	tc     [][]float64
	folded int
	// size spread of folded workloads, for adaptive gating.
	minSize, maxSize int64
	// Confidence gating (Config.ConfidenceLevel): z is the normal-quantile
	// multiplier of the configured level and lo/hi mirror tc with the
	// accumulated interval bounds. Both stay zero/nil — and fold performs no
	// interval work at all — until setConfidence arms them.
	z      float64
	lo, hi [][]float64
}

func newCostAgg(models *perfmodel.Models, candidates []collections.VariantID) *costAgg {
	return newCostAggDims(models, candidates, perfmodel.Dimensions())
}

// newCostAggDims builds an aggregate over only the given dimensions. The
// site cores pass the active rule's dimensions: accumulating dimensions the
// rule never reads would waste fold work and would demand model curves the
// decision cannot use.
func newCostAggDims(models *perfmodel.Models, candidates []collections.VariantID, dims []perfmodel.Dimension) *costAgg {
	a := &costAgg{
		models:     models,
		candidates: candidates,
		dims:       dims,
		tc:         make([][]float64, len(candidates)),
		minSize:    math.MaxInt64,
	}
	for i := range a.tc {
		a.tc[i] = make([]float64, len(a.dims))
	}
	return a
}

// setConfidence arms the aggregate's interval accumulation: z is the normal
// quantile of the engine's ConfidenceLevel (√2·erfinv(level)). With z ≤ 0 —
// the default — the aggregate stays a pure point-estimate accumulator and
// decide is byte-identical to the legacy path.
func (a *costAgg) setConfidence(z float64) {
	if z <= 0 {
		return
	}
	a.z = z
	a.lo = make([][]float64, len(a.candidates))
	a.hi = make([][]float64, len(a.candidates))
	for i := range a.candidates {
		a.lo[i] = make([]float64, len(a.dims))
		a.hi[i] = make([]float64, len(a.dims))
	}
}

// missingCurve reports the first (op, dimension) cell a candidate lacks a
// model curve for, over exactly the cells fold will evaluate: every critical
// op per dimension, except footprint which is charged through the populate
// curve only.
func missingCurve(models *perfmodel.Models, v collections.VariantID, dims []perfmodel.Dimension) (perfmodel.Op, perfmodel.Dimension, bool) {
	for _, dim := range dims {
		if dim == perfmodel.DimFootprint {
			if !models.Has(v, perfmodel.OpPopulate, dim) {
				return perfmodel.OpPopulate, dim, true
			}
			continue
		}
		for _, op := range perfmodel.Ops() {
			if !models.Has(v, op, dim) {
				return op, dim, true
			}
		}
	}
	return "", "", false
}

// fold adds one instance workload to the running totals.
func (a *costAgg) fold(w Workload) {
	a.folded++
	if w.MaxSize < a.minSize {
		a.minSize = w.MaxSize
	}
	if w.MaxSize > a.maxSize {
		a.maxSize = w.MaxSize
	}
	s := float64(w.MaxSize)
	if s < 1 {
		s = 1
	}
	// Populate is modeled per complete population to size s, so the raw
	// add count converts to "number of populations".
	popN := float64(w.Adds) / s
	for ci, v := range a.candidates {
		for di, dim := range a.dims {
			if dim == perfmodel.DimFootprint {
				// Footprint is a retained-state dimension: charged
				// once per instance at its maximum size.
				a.tc[ci][di] += a.models.Cost(v, perfmodel.OpPopulate, dim, s)
				if a.z > 0 {
					l, h := a.models.CostCI(v, perfmodel.OpPopulate, dim, s, a.z)
					a.lo[ci][di] += l
					a.hi[ci][di] += h
				}
				continue
			}
			c := popN * a.models.Cost(v, perfmodel.OpPopulate, dim, s)
			c += float64(w.Contains) * a.models.Cost(v, perfmodel.OpContains, dim, s)
			c += float64(w.Iterates) * a.models.Cost(v, perfmodel.OpIterate, dim, s)
			c += float64(w.Middles) * a.models.Cost(v, perfmodel.OpMiddle, dim, s)
			a.tc[ci][di] += c
			if a.z > 0 {
				// Interval bounds accumulate with the same multipliers as
				// the point costs. Summing lower bounds with lower bounds
				// (and upper with upper) treats the per-op model errors as
				// perfectly correlated — a conservative widening that can
				// only suppress switches, never force one.
				lp, hp := a.models.CostCI(v, perfmodel.OpPopulate, dim, s, a.z)
				lc, hc := a.models.CostCI(v, perfmodel.OpContains, dim, s, a.z)
				li, hit := a.models.CostCI(v, perfmodel.OpIterate, dim, s, a.z)
				lm, hm := a.models.CostCI(v, perfmodel.OpMiddle, dim, s, a.z)
				a.lo[ci][di] += popN*lp + float64(w.Contains)*lc + float64(w.Iterates)*li + float64(w.Middles)*lm
				a.hi[ci][di] += popN*hp + float64(w.Contains)*hc + float64(w.Iterates)*hit + float64(w.Middles)*hm
			}
		}
	}
}

// total returns TC_D(V) for candidate index ci.
func (a *costAgg) total(ci int, dim perfmodel.Dimension) float64 {
	for di, d := range a.dims {
		if d == dim {
			return a.tc[ci][di]
		}
	}
	return 0
}

// sizeSpread returns maxSize/minSize of the folded workloads (≥1); 1 when
// nothing was folded.
func (a *costAgg) sizeSpread() float64 {
	if a.folded == 0 || a.maxSize <= 0 {
		return 1
	}
	minSz := a.minSize
	if minSz < 1 {
		minSz = 1
	}
	return float64(a.maxSize) / float64(minSz)
}

// decision is the outcome of evaluating a rule over an aggregate.
type decision struct {
	switchTo collections.VariantID
	ratios   map[perfmodel.Dimension]float64
	ok       bool
	// suppressedTo names the best candidate (lowest point first-criterion
	// ratio) that cleared every point-estimate threshold but was withheld by
	// the confidence gate: its interval upper ratio exceeded a threshold.
	// Empty when nothing was suppressed. suppressedC1 carries its point
	// first-criterion ratio for the decision record and suppression event.
	suppressedTo collections.VariantID
	suppressedC1 float64
}

// decide applies the selection rule of Section 3.1.2: a candidate is
// eligible if TC_D(new)/TC_D(cur) ≤ T_D for every criterion; among eligible
// candidates the largest improvement on the first criterion wins. Adaptive
// variants are only considered when the observed sizes are "widely ranging"
// (Section 3.2): the spread must reach adaptiveSpread AND the sizes must
// straddle the variant's transition threshold — an adaptive collection is
// pointless when every instance stays on one side of it.
func decide(a *costAgg, current collections.VariantID, rule Rule, adaptiveSpread float64, adaptiveThreshold int64) decision {
	d, _, _, _ := decideExplain(a, current, rule, adaptiveSpread, adaptiveThreshold, false)
	return d
}

// decideExplain is decide plus explainability: when explain is set it also
// returns one CandidateEstimate per catalog candidate (costs, ratios,
// eligibility, the first gate each ineligible candidate failed) and the
// nearest miss — the non-gated alternative with the lowest first-criterion
// ratio, whether or not it was eligible — for the held-decision margin. The
// decision itself is computed identically with explain on or off.
//
// On a confidence-armed aggregate (setConfidence) a point-eligible candidate
// must additionally clear every criterion with its interval upper ratio; the
// best candidate the gate withholds is reported through the decision's
// suppressed fields so the engine can surface it as a ci_overlap outcome.
func decideExplain(a *costAgg, current collections.VariantID, rule Rule, adaptiveSpread float64, adaptiveThreshold int64, explain bool) (decision, []CandidateEstimate, collections.VariantID, float64) {
	curIdx := -1
	for i, v := range a.candidates {
		if v == current {
			curIdx = i
			break
		}
	}
	if curIdx < 0 || a.folded == 0 {
		return decision{}, nil, "", math.Inf(1)
	}
	spread := a.sizeSpread()
	best := decision{}
	bestC1 := math.Inf(1)
	var estimates []CandidateEstimate
	var miss collections.VariantID
	missC1 := math.Inf(1)
	var supTo collections.VariantID
	supC1 := math.Inf(1)
	if explain {
		estimates = make([]CandidateEstimate, 0, len(a.candidates))
	}
	for i, v := range a.candidates {
		if i == curIdx {
			if explain {
				estimates = append(estimates, a.estimate(i, curIdx, rule, false, "current"))
			}
			continue
		}
		if collections.IsAdaptive(v) {
			straddles := a.minSize < adaptiveThreshold && a.maxSize > adaptiveThreshold
			if spread < adaptiveSpread || !straddles {
				if explain {
					estimates = append(estimates, a.estimate(i, curIdx, rule, false, "adaptive size gate"))
				}
				continue
			}
		}
		ratios := make(map[perfmodel.Dimension]float64, len(rule.Criteria))
		eligible := true
		failure := ""
		for _, crit := range rule.Criteria {
			ratio := a.ratio(i, curIdx, crit.Dimension)
			ratios[crit.Dimension] = ratio
			if ratio > crit.Threshold {
				eligible = false
				if failure == "" {
					failure = fmt.Sprintf("%s ratio %.4g > threshold %.4g", crit.Dimension, ratio, crit.Threshold)
				}
				if !explain {
					break
				}
			}
		}
		// Confidence gate: a candidate that beat every point threshold must
		// also beat them with its conservative upper ratio (candidate upper
		// bound over current lower bound) before it may switch. Disarmed
		// aggregates (z == 0) never enter this loop, keeping the legacy
		// decision path — and its traces — bit-identical.
		ciBlocked := false
		if eligible && a.z > 0 {
			for _, crit := range rule.Criteria {
				rhi := a.ratioCI(i, curIdx, crit.Dimension)
				if rhi > crit.Threshold {
					ciBlocked = true
					if failure == "" {
						failure = fmt.Sprintf("ci_overlap: %s upper ratio %.4g > threshold %.4g", crit.Dimension, rhi, crit.Threshold)
					}
					if !explain {
						break
					}
				}
			}
			if ciBlocked {
				if c1 := ratios[rule.Criteria[0].Dimension]; c1 < supC1 {
					supC1 = c1
					supTo = v
				}
			}
		}
		if explain {
			est := a.estimate(i, curIdx, rule, eligible && !ciBlocked, failure)
			est.Ratios = ratios
			estimates = append(estimates, est)
			if c1 := ratios[rule.Criteria[0].Dimension]; c1 < missC1 {
				missC1 = c1
				miss = v
			}
		}
		if !eligible || ciBlocked {
			continue
		}
		c1 := ratios[rule.Criteria[0].Dimension]
		if c1 < bestC1 {
			bestC1 = c1
			best = decision{switchTo: v, ratios: ratios, ok: true}
		}
	}
	if supTo != "" {
		best.suppressedTo = supTo
		best.suppressedC1 = supC1
	}
	return best, estimates, miss, missC1
}

// ratio returns TC_D(candidate ci)/TC_D(candidate curIdx) with the decide
// conventions for zero denominators.
func (a *costAgg) ratio(ci, curIdx int, dim perfmodel.Dimension) float64 {
	newCost := a.total(ci, dim)
	curCost := a.total(curIdx, dim)
	switch {
	case curCost > 0:
		return newCost / curCost
	case newCost == 0:
		return 1
	default:
		return math.Inf(1)
	}
}

// ratioCI returns the conservative upper bound on TC_D(ci)/TC_D(curIdx):
// the candidate's accumulated upper bound over the current variant's lower
// bound, with the decide conventions for zero denominators. Only meaningful
// on armed aggregates (setConfidence).
func (a *costAgg) ratioCI(ci, curIdx int, dim perfmodel.Dimension) float64 {
	di := -1
	for j, d := range a.dims {
		if d == dim {
			di = j
			break
		}
	}
	if di < 0 {
		return math.Inf(1)
	}
	hiNew := a.hi[ci][di]
	loCur := a.lo[curIdx][di]
	switch {
	case loCur > 0:
		return hiNew / loCur
	case hiNew == 0:
		return 1
	default:
		return math.Inf(1)
	}
}

// estimate builds the explain entry for candidate ci: accumulated costs over
// every aggregated dimension plus the rule-criterion ratios against curIdx.
func (a *costAgg) estimate(ci, curIdx int, rule Rule, eligible bool, reason string) CandidateEstimate {
	costs := make(map[perfmodel.Dimension]float64, len(a.dims))
	for di, dim := range a.dims {
		costs[dim] = a.tc[ci][di]
	}
	est := CandidateEstimate{
		Variant:  a.candidates[ci],
		Costs:    costs,
		Eligible: eligible,
		Reason:   reason,
	}
	if a.z > 0 {
		est.CostsLo = make(map[perfmodel.Dimension]float64, len(a.dims))
		est.CostsHi = make(map[perfmodel.Dimension]float64, len(a.dims))
		for di, dim := range a.dims {
			est.CostsLo[dim] = a.lo[ci][di]
			est.CostsHi[dim] = a.hi[ci][di]
		}
	}
	if ci != curIdx {
		est.Ratios = make(map[perfmodel.Dimension]float64, len(rule.Criteria))
		for _, crit := range rule.Criteria {
			est.Ratios[crit.Dimension] = a.ratio(ci, curIdx, crit.Dimension)
		}
		if a.z > 0 {
			est.RatiosHi = make(map[perfmodel.Dimension]float64, len(rule.Criteria))
			for _, crit := range rule.Criteria {
				est.RatiosHi[crit.Dimension] = a.ratioCI(ci, curIdx, crit.Dimension)
			}
		}
	}
	return est
}
