package core

import (
	"repro/internal/collections"
)

// The WithVariants constructors admit custom candidate pools — the way the
// future-work sorted and concurrent variants (and any user-supplied
// implementation) join the selection process. The engine requires a
// performance-model curve for every candidate; the default models cover all
// variants shipped by the collections package.

// NewListContextWithVariants registers a list context whose candidate pool
// is exactly the given variants (order matters only for tie display). The
// default variant is the first entry unless WithDefaultVariant overrides it.
func NewListContextWithVariants[T comparable](e *Engine, variants []collections.ListVariant[T], opts ...Option) *ListContext[T] {
	if len(variants) == 0 {
		panic("core: NewListContextWithVariants needs at least one variant")
	}
	ids, factories := listFactories(variants)
	o := resolveOptions(opts, variants[0].ID, ids, 2)
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: default variant " + string(o.defaultVar) + " not among supplied variants")
	}
	c := &ListContext[T]{}
	c.core.init(e, o, "list", factories, wrapList[T], unwrapList[T], collections.DefaultListThreshold)
	e.register(&c.core)
	return c
}

// NewSetContextWithVariants registers a set context over a custom candidate
// pool; see NewListContextWithVariants.
func NewSetContextWithVariants[T comparable](e *Engine, variants []collections.SetVariant[T], opts ...Option) *SetContext[T] {
	if len(variants) == 0 {
		panic("core: NewSetContextWithVariants needs at least one variant")
	}
	ids, factories := setFactories(variants)
	o := resolveOptions(opts, variants[0].ID, ids, 2)
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: default variant " + string(o.defaultVar) + " not among supplied variants")
	}
	c := &SetContext[T]{}
	c.core.init(e, o, "set", factories, wrapSet[T], unwrapSet[T], collections.DefaultSetThreshold)
	e.register(&c.core)
	return c
}

// NewMapContextWithVariants registers a map context over a custom candidate
// pool; see NewListContextWithVariants.
func NewMapContextWithVariants[K comparable, V any](e *Engine, variants []collections.MapVariant[K, V], opts ...Option) *MapContext[K, V] {
	if len(variants) == 0 {
		panic("core: NewMapContextWithVariants needs at least one variant")
	}
	ids, factories := mapFactories(variants)
	o := resolveOptions(opts, variants[0].ID, ids, 2)
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: default variant " + string(o.defaultVar) + " not among supplied variants")
	}
	c := &MapContext[K, V]{}
	c.core.init(e, o, "map", factories, wrapMap[K, V], unwrapMap[K, V], collections.DefaultMapThreshold)
	e.register(&c.core)
	return c
}
