package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// eventKinds projects a collector's stream to its kind sequence.
func eventKinds(events []obs.Event) []obs.Kind {
	out := make([]obs.Kind, len(events))
	for i, e := range events {
		out[i] = e.EventKind()
	}
	return out
}

func firstOfKind(events []obs.Event, k obs.Kind) (obs.Event, bool) {
	for _, e := range events {
		if e.EventKind() == k {
			return e, true
		}
	}
	return nil, false
}

func TestRegisterAfterCloseIsLoggedNoOp(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{WindowSize: 10, Name: "closed", Sink: col})
	e.Close()
	ctx := NewListContext[int](e, WithName("late:list"))

	if got := e.ContextCount(); got != 0 {
		t.Errorf("ContextCount = %d after post-close registration, want 0", got)
	}
	if got := e.Metrics().RegistrationsDropped.Load(); got != 1 {
		t.Errorf("RegistrationsDropped = %d, want 1", got)
	}
	ev, ok := firstOfKind(col.Events(), obs.KindContextRegistered)
	if !ok {
		t.Fatal("no ContextRegistered event emitted")
	}
	reg := ev.(obs.ContextRegistered)
	if !reg.Dropped || reg.Context != "late:list" {
		t.Errorf("event = %+v, want Dropped=true Context=late:list", reg)
	}
	// The context must stay usable for plain creation.
	l := ctx.NewList()
	l.Add(1)
	if !l.Contains(1) {
		t.Error("collection from unregistered context not functional")
	}
}

// blockingCtx is a fake analyzable whose analyze() parks until released,
// letting the test hold an analysis pass in flight.
type blockingCtx struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingCtx) analyze() {
	b.once.Do(func() { close(b.entered) })
	<-b.release
}
func (b *blockingCtx) contextName() string { return "blocking" }
func (b *blockingCtx) rename(string)       {}
func (b *blockingCtx) windowStats() obs.ContextWindowStat {
	return obs.ContextWindowStat{Context: "blocking"}
}
func (b *blockingCtx) warmStart(WarmDecision) bool       { return false }
func (b *blockingCtx) siteSnapshot() SiteSnapshot        { return SiteSnapshot{Name: "blocking"} }
func (b *blockingCtx) decisionRecords() []DecisionRecord { return nil }
func (b *blockingCtx) siteStatus() SiteStatus {
	return SiteStatus{SiteSnapshot: SiteSnapshot{Name: "blocking"}}
}

func TestCloseWaitsForInFlightAnalysis(t *testing.T) {
	e := NewEngineManual(Config{WindowSize: 10})
	b := &blockingCtx{entered: make(chan struct{}), release: make(chan struct{})}
	e.register(b)

	analyzeDone := make(chan struct{})
	go func() {
		e.AnalyzeNow()
		close(analyzeDone)
	}()
	<-b.entered

	closeDone := make(chan struct{})
	go func() {
		e.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while an analysis pass was in flight")
	case <-time.After(20 * time.Millisecond):
	}

	close(b.release)
	select {
	case <-closeDone:
	case <-time.After(time.Second):
		t.Fatal("Close did not return after the analysis pass drained")
	}
	<-analyzeDone
}

func TestConfigClampEvents(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{
		Name:            "clamped",
		FinishedRatio:   1.5,
		CooldownWindows: -2,
		Sink:            col,
	})
	defer e.Close()

	if got := e.Config().FinishedRatio; got != 1 {
		t.Errorf("FinishedRatio = %v, want clamped to 1", got)
	}
	if got := e.Config().CooldownWindows; got != 0 {
		t.Errorf("CooldownWindows = %v, want clamped to 0", got)
	}
	if got := e.Metrics().ConfigClamps.Load(); got != 2 {
		t.Errorf("ConfigClamps = %d, want 2", got)
	}
	want := map[string]obs.ConfigClamped{
		"FinishedRatio":   {Engine: "clamped", Field: "FinishedRatio", From: 1.5, To: 1},
		"CooldownWindows": {Engine: "clamped", Field: "CooldownWindows", From: -2, To: 0},
	}
	seen := 0
	for _, ev := range col.Events() {
		cl, ok := ev.(obs.ConfigClamped)
		if !ok {
			continue
		}
		seen++
		if w, known := want[cl.Field]; !known || cl != w {
			t.Errorf("unexpected clamp event %+v", cl)
		}
	}
	if seen != 2 {
		t.Errorf("saw %d ConfigClamped events, want 2", seen)
	}
}

func TestEngineEventFlow(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{
		WindowSize:      10,
		FinishedRatio:   0.6,
		Rule:            Rtime(),
		CooldownWindows: 1,
		Name:            "flow",
		Sink:            col,
	})
	ctx := NewListContext[int](e, WithName("flow:list"))
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow()
	e.Close()

	events := col.Events()
	// The pass must order: registration, round start, transition decision,
	// window close, cooldown, round completion, engine close.
	wantOrder := []obs.Kind{
		obs.KindContextRegistered, obs.KindRoundStarted, obs.KindTransition,
		obs.KindWindowClosed, obs.KindCooldownEntered, obs.KindRoundCompleted,
		obs.KindEngineClosed,
	}
	pos := 0
	for _, k := range eventKinds(events) {
		if pos < len(wantOrder) && k == wantOrder[pos] {
			pos++
		}
	}
	if pos != len(wantOrder) {
		t.Fatalf("event order missing %s; stream: %v", wantOrder[pos], eventKinds(events))
	}

	tr, _ := firstOfKind(events, obs.KindTransition)
	trans := tr.(obs.Transition)
	if trans.From != "list/array" || trans.To != "list/hasharray" || trans.Round != 0 {
		t.Errorf("transition = %+v, want list/array -> list/hasharray at round 0", trans)
	}
	if len(trans.Ratios) == 0 {
		t.Error("transition carries no TC_D ratios")
	}

	wc, _ := firstOfKind(events, obs.KindWindowClosed)
	closed := wc.(obs.WindowClosed)
	if closed.Round != 1 || closed.Variant != "list/hasharray" || closed.WindowSize != 10 {
		t.Errorf("window closed = %+v", closed)
	}
	if closed.FinishedRatio < 0.6 || closed.FinishedRatio > 1 {
		t.Errorf("finished ratio %v outside [0.6, 1]", closed.FinishedRatio)
	}

	cd, _ := firstOfKind(events, obs.KindCooldownEntered)
	if got := cd.(obs.CooldownEntered).SkipNext; got != 10 {
		t.Errorf("cooldown skip = %d, want 10 (1 window x size 10)", got)
	}

	rc, _ := firstOfKind(events, obs.KindRoundCompleted)
	completed := rc.(obs.RoundCompleted)
	if completed.DurationNs <= 0 || len(completed.Contexts) != 1 {
		t.Errorf("round completed = %+v", completed)
	}
	if stat := completed.Contexts[0]; stat.Context != "flow:list" || stat.Round != 1 {
		t.Errorf("window stat = %+v, want flow:list after round 1", stat)
	}

	ec, _ := firstOfKind(events, obs.KindEngineClosed)
	if closedEv := ec.(obs.EngineClosed); closedEv.Contexts != 1 || closedEv.Rounds != 1 || closedEv.Transitions != 1 {
		t.Errorf("engine closed = %+v", closedEv)
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngineManual(Config{
		WindowSize:      10,
		FinishedRatio:   0.6,
		Rule:            Rtime(),
		CooldownWindows: 1,
		Name:            "metrics",
		Metrics:         reg,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("m:list"))
	// 10 monitored creations fill the window; 5 more land in the cooldown
	// after analysis.
	churnLists(ctx, 10, 200, 200)
	e.AnalyzeNow()
	churnLists(ctx, 5, 10, 0)

	if got := reg.InstancesCreated.Load(); got != 15 {
		t.Errorf("InstancesCreated = %d, want 15", got)
	}
	if got := reg.InstancesMonitored.Load(); got != 10 {
		t.Errorf("InstancesMonitored = %d, want 10", got)
	}
	if got := reg.MonitoredFraction(); got != 10.0/15.0 {
		t.Errorf("MonitoredFraction = %v, want %v", got, 10.0/15.0)
	}
	if got := reg.ContextsRegistered.Load(); got != 1 {
		t.Errorf("ContextsRegistered = %d, want 1", got)
	}
	if got := reg.AnalysisRounds.Load(); got != 1 {
		t.Errorf("AnalysisRounds = %d, want 1", got)
	}
	if got := reg.AnalysisLatency.Count(); got != 1 {
		t.Errorf("AnalysisLatency.Count = %d, want 1", got)
	}
	if got := reg.WindowsClosed.Load(); got != 1 {
		t.Errorf("WindowsClosed = %d, want 1", got)
	}
	if got := reg.RuleEvaluations.Load(); got != 1 {
		t.Errorf("RuleEvaluations = %d, want 1", got)
	}
	if got := reg.WeakReclaims.Load(); got == 0 {
		t.Error("WeakReclaims = 0, want > 0 after GC reclaimed the window")
	}
	if got := reg.TransitionsTotal(); got != 1 {
		t.Errorf("TransitionsTotal = %d, want 1", got)
	}
	counts := reg.TransitionCounts()
	key := obs.TransitionKey{Context: "m:list", From: "list/array", To: "list/hasharray"}
	if counts[key] != 1 {
		t.Errorf("TransitionCounts = %v, want {%v: 1}", counts, key)
	}
}

// TestSharedRegistryAcrossEngines mirrors the Table 5 sweep: many engines
// aggregate into one registry.
func TestSharedRegistryAcrossEngines(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 3; i++ {
		e := NewEngineManual(Config{WindowSize: 5, Metrics: reg})
		ctx := NewListContext[int](e)
		for j := 0; j < 5; j++ {
			ctx.NewList().Add(j)
		}
		e.Close()
	}
	if got := reg.ContextsRegistered.Load(); got != 3 {
		t.Errorf("ContextsRegistered = %d, want 3", got)
	}
	if got := reg.InstancesCreated.Load(); got != 15 {
		t.Errorf("InstancesCreated = %d, want 15", got)
	}
}

func TestMetricsRegistryRaceClean(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngineManual(Config{WindowSize: 20, Rule: Rtime(), Metrics: reg})
	defer e.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := NewListContext[int](e)
			for i := 0; i < 200; i++ {
				l := ctx.NewList()
				l.Add(i)
				l.Contains(i)
				if i%50 == 0 {
					runtime.GC()
					e.AnalyzeNow()
				}
				reg.IncTransition("race", "a", "b")
				reg.AnalysisLatency.Observe(float64(i) * 1e-6)
				_ = reg.MonitoredFraction()
				_ = reg.TransitionCounts()
			}
		}(g)
	}
	wg.Wait()
	if got := reg.TransitionCounts()[obs.TransitionKey{Context: "race", From: "a", To: "b"}]; got != 800 {
		t.Errorf("race transition count = %d, want 800", got)
	}
}
