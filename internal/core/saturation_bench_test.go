package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/collections"
)

// BenchmarkMonitorSaturation measures the monitoring tax with every core
// busy: all workers hammer ONE shared monitored collection, so every
// profile-counter update lands on the same instance — the worst case for
// shared-atomic counters (cross-core cache-line ping-pong) and the case the
// sharded profile is designed to make free. The unmonitored sub-benchmarks
// run the identical op mix against the bare variant; the monitored-minus-
// unmonitored ns/op delta is the per-operation monitor overhead at
// saturation. Run at GOMAXPROCS 1 and NumCPU (deduplicated on single-CPU
// hosts); results are recorded under results/ and discussed in
// EXPERIMENTS.md ("Monitoring overhead at saturation").
//
// The op mix is read-only on the inner collection (Contains probes plus a
// periodic full iteration) so the shared instance needs no external locking
// and the measured delta isolates the monitor layer itself.
func BenchmarkMonitorSaturation(b *testing.B) {
	procsList := []int{1, runtime.NumCPU()}
	if procsList[1] == procsList[0] {
		procsList = procsList[:1]
	}
	for _, procs := range procsList {
		b.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			const setSize = 1024
			bare := collections.NewHashSet[int]()
			for i := 0; i < setSize; i++ {
				bare.Add(i)
			}
			mon := monitoredSaturationSet(b, setSize)

			run := func(name string, s collections.Set[int]) {
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					b.RunParallel(func(pb *testing.PB) {
						i := 0
						sink := 0
						for pb.Next() {
							// 50% hits, 50% misses, one traversal per 256 ops.
							if s.Contains(i & (2*setSize - 1)) {
								sink++
							}
							if i&255 == 255 {
								s.ForEach(func(int) bool { sink++; return sink < 0 })
							}
							i++
						}
						_ = sink
					})
				})
			}
			run("unmonitored", bare)
			run("monitored", mon)
		})
	}
}

// monitoredSaturationSet draws a monitored set through a real context (so the
// benchmark exercises exactly the wrapping the engine performs) and populates
// it to size n.
func monitoredSaturationSet(b *testing.B, n int) collections.Set[int] {
	b.Helper()
	e := NewEngineManual(Config{WindowSize: 1 << 20})
	b.Cleanup(e.Close)
	ctx := NewSetContext[int](e, WithName("bench:saturation"))
	s := ctx.NewSet()
	if !isMonitoredSet(s) {
		b.Fatal("first instance of a fresh window is not monitored")
	}
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}
