package core

import (
	"sync"
	"testing"
	"unsafe"

	"repro/internal/collections"
)

// The striped monitor form is only built for multi-stripe profiles, which
// newProfile produces only when GOMAXPROCS > 1 — so on a narrow host the
// engine never constructs one naturally. These tests build multi-stripe
// profiles directly and pin the form-selection, aliasing and exact-counting
// contracts of the striped path regardless of host width.

// multiStripeProfile returns a profile with the given power-of-two stripe
// count, bypassing the GOMAXPROCS-scaled pool.
func multiStripeProfile(stripes int) *profile {
	return &profile{shards: make([]pshard, stripes)}
}

// isMonitoredList reports whether c is a monitor of either form. Tests that
// only care about monitored-vs-bare must use these helpers instead of a
// concrete type assertion: which form wrap builds depends on the host's
// GOMAXPROCS.
func isMonitoredList[T comparable](c collections.List[T]) bool {
	switch c.(type) {
	case *monitoredList[T], *stripedList[T]:
		return true
	}
	return false
}

func isMonitoredSet[T comparable](c collections.Set[T]) bool {
	switch c.(type) {
	case *monitoredSet[T], *stripedSet[T]:
		return true
	}
	return false
}

// TestWrapSelectsMonitorForm pins wrap-time form selection: a single-stripe
// profile yields the plain monitor, a multi-stripe profile yields the
// striped monitor, and in both cases the *monitoredX handed to siteCore and
// the collection interface handed to the user alias the same heap object
// (the offset-zero embedding the weak-reference death signal relies on).
func TestWrapSelectsMonitorForm(t *testing.T) {
	plain := wrapSet[int](collections.NewSyncSet[int](0), multiStripeProfile(1))
	if plain.maskBytes != 0 {
		t.Fatalf("single-stripe wrap: maskBytes = %d, want 0", plain.maskBytes)
	}
	if _, ok := unwrapSet(plain).(*monitoredSet[int]); !ok {
		t.Fatalf("single-stripe unwrap returned %T, want *monitoredSet[int]", unwrapSet(plain))
	}

	m := wrapSet[int](collections.NewSyncSet[int](0), multiStripeProfile(8))
	if want := uintptr(7 * cacheLineBytes); m.maskBytes != want {
		t.Fatalf("8-stripe wrap: maskBytes = %d, want %d", m.maskBytes, want)
	}
	st, ok := unwrapSet(m).(*stripedSet[int])
	if !ok {
		t.Fatalf("8-stripe unwrap returned %T, want *stripedSet[int]", unwrapSet(m))
	}
	if unsafe.Pointer(st) != unsafe.Pointer(m) {
		t.Fatal("striped set and its embedded plain form are different objects")
	}

	ml := wrapList[int](collections.NewArrayList[int](), multiStripeProfile(4))
	if stl, ok := unwrapList(ml).(*stripedList[int]); !ok || unsafe.Pointer(stl) != unsafe.Pointer(ml) {
		t.Fatalf("list wrap/unwrap: got %T, aliased=%v", unwrapList(ml), ok && unsafe.Pointer(stl) == unsafe.Pointer(ml))
	}
	mm := wrapMap[int, int](collections.NewSyncMap[int, int](0), multiStripeProfile(4))
	if stm, ok := unwrapMap(mm).(*stripedMap[int, int]); !ok || unsafe.Pointer(stm) != unsafe.Pointer(mm) {
		t.Fatalf("map wrap/unwrap: got %T, aliased=%v", unwrapMap(mm), ok && unsafe.Pointer(stm) == unsafe.Pointer(mm))
	}
}

// TestStripeOfBoundsAndAlignment pins the unsafe arithmetic inside stripeOf:
// from any goroutine's stack address the selected stripe must be one of the
// profile's stripes — a 64-byte-aligned offset inside the array — never a
// byte address beyond it.
func TestStripeOfBoundsAndAlignment(t *testing.T) {
	p := multiStripeProfile(8)
	base := uintptr(unsafe.Pointer(p.base()))
	var wg sync.WaitGroup
	offsets := make([]uintptr, 64)
	for g := range offsets {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			offsets[g] = uintptr(unsafe.Pointer(stripeOf(p.base(), p.maskBytes()))) - base
		}(g)
	}
	wg.Wait()
	distinct := map[uintptr]bool{}
	for g, off := range offsets {
		if off%cacheLineBytes != 0 {
			t.Errorf("goroutine %d: stripe offset %d not cache-line aligned", g, off)
		}
		if off >= uintptr(len(p.shards))*cacheLineBytes {
			t.Errorf("goroutine %d: stripe offset %d beyond the stripe array", g, off)
		}
		distinct[off] = true
	}
	t.Logf("64 goroutines spread over %d of %d stripes", len(distinct), len(p.shards))
}

// TestStripedSetCountsExactly hammers one striped set monitor from many
// goroutines and asserts the stripe sums are exact: every operation
// incremented exactly one stripe once, so the folded Workload equals the
// reference counts regardless of how the stack hash spread the writers.
func TestStripedSetCountsExactly(t *testing.T) {
	p := multiStripeProfile(8)
	s := unwrapSet(wrapSet[int](collections.NewSyncSet[int](0), p))
	if _, ok := s.(*stripedSet[int]); !ok {
		t.Fatalf("monitor form = %T, want *stripedSet[int]", s)
	}
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Add(g*perG + i)
				s.Contains(i)
				if i%64 == 63 {
					s.ForEach(func(int) bool { return false })
				}
			}
		}(g)
	}
	wg.Wait()
	w := p.snapshot()
	if w.Adds != goroutines*perG {
		t.Errorf("Adds = %d, want %d", w.Adds, goroutines*perG)
	}
	if w.Contains != goroutines*perG {
		t.Errorf("Contains = %d, want %d", w.Contains, goroutines*perG)
	}
	if want := int64(goroutines * (perG / 64)); w.Iterates != want {
		t.Errorf("Iterates = %d, want %d", w.Iterates, want)
	}
	// All inserted values are distinct, so the last-completing Add observed
	// the full set: the high-water mark must be exact, not approximate.
	if w.MaxSize != goroutines*perG {
		t.Errorf("MaxSize = %d, want %d", w.MaxSize, goroutines*perG)
	}
	if s.Len() != goroutines*perG {
		t.Errorf("Len = %d, want %d", s.Len(), goroutines*perG)
	}
}

// TestStripedMonitorsCountEveryMethod drives every overridden counting
// method of the striped list, set and map forms on one goroutine and checks
// each landed in the right counter — guarding against an override that
// delegates without counting (or counts into the wrong column).
func TestStripedMonitorsCountEveryMethod(t *testing.T) {
	pl := multiStripeProfile(4)
	l := unwrapList(wrapList[int](collections.NewArrayList[int](), pl))
	l.Add(1)                                  // adds
	l.Add(2)                                  // adds
	l.Insert(1, 3)                            // adds + middles (interior insert)
	l.Insert(3, 4)                            // adds (append position)
	l.Contains(1)                             // contains
	l.IndexOf(2)                              // contains
	l.Remove(4)                               // contains + middles
	l.RemoveAt(0)                             // middles
	l.ForEach(func(int) bool { return true }) // iterates
	if w := pl.snapshot(); w.Adds != 4 || w.Contains != 3 || w.Middles != 3 || w.Iterates != 1 || w.MaxSize != 4 {
		t.Errorf("striped list workload = %+v", w)
	}

	ps := multiStripeProfile(4)
	s := unwrapSet(wrapSet[int](collections.NewArraySet[int](), ps))
	s.Add(1)
	s.Add(2)
	s.Contains(1)
	s.Remove(2)
	s.ForEach(func(int) bool { return true })
	if w := ps.snapshot(); w.Adds != 2 || w.Contains != 1 || w.Middles != 1 || w.Iterates != 1 || w.MaxSize != 2 {
		t.Errorf("striped set workload = %+v", w)
	}

	pm := multiStripeProfile(4)
	m := unwrapMap(wrapMap[int, int](collections.NewArrayMap[int, int](), pm))
	m.Put(1, 10)
	m.Put(2, 20)
	m.Get(1)
	m.ContainsKey(2)
	m.Remove(1)
	m.ForEach(func(int, int) bool { return true })
	if w := pm.snapshot(); w.Adds != 2 || w.Contains != 2 || w.Middles != 1 || w.Iterates != 1 || w.MaxSize != 2 {
		t.Errorf("striped map workload = %+v", w)
	}
}
