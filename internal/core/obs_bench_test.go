package core

import (
	"io"
	"testing"

	"repro/internal/obs"
)

// TestNilSinkMonitoredOpZeroAlloc is the benchmark guard's hard assertion:
// with no sink attached, operations on a monitored collection must not
// allocate — the observability layer's hot-path cost is atomic increments
// only.
func TestNilSinkMonitoredOpZeroAlloc(t *testing.T) {
	e := NewEngineManual(Config{WindowSize: 10, CooldownWindows: -1})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("alloc:list"))
	l := ctx.NewList()
	l.Add(1)
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Contains(1)
		l.Get(0)
		l.Len()
	}); allocs != 0 {
		t.Errorf("monitored ops allocated %v times per run with nil sink, want 0", allocs)
	}
}

// BenchmarkObsOverhead compares the monitored-instance lifecycle with no
// sink against a live JSONL sink. The nil-sink variant is the deployment
// configuration the overhead claim (Section 5.3) is about; the sub-benchmark
// reports allocs/op so regressions on the event-free path are visible in
// benchstat output.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, sink obs.Sink) {
		e := NewEngineManual(Config{
			WindowSize:      100,
			Rule:            ImpossibleRule(),
			CooldownWindows: -1,
			Name:            "bench",
			Sink:            sink,
		})
		defer e.Close()
		ctx := NewListContext[int](e, WithName("bench:list"))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := ctx.NewList()
			l.Add(i)
			l.Contains(i)
			if i%100 == 99 {
				e.AnalyzeNow()
			}
		}
	}
	b.Run("nil-sink", func(b *testing.B) {
		run(b, nil)
	})
	b.Run("jsonl-sink", func(b *testing.B) {
		run(b, obs.NewJSONLSink(io.Discard))
	})
}

// BenchmarkMonitoredOp isolates the per-operation cost on an already
// monitored collection — the paper's "fixed small overhead per operation"
// claim — with and without an attached sink. Sinks only see window-close
// events, so both variants should be indistinguishable here.
func BenchmarkMonitoredOp(b *testing.B) {
	for _, bench := range []struct {
		name string
		sink obs.Sink
	}{
		{"nil-sink", nil},
		{"jsonl-sink", obs.NewJSONLSink(io.Discard)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			e := NewEngineManual(Config{WindowSize: 10, CooldownWindows: -1, Sink: bench.sink})
			defer e.Close()
			ctx := NewListContext[int](e)
			l := ctx.NewList()
			l.Add(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Contains(i)
			}
		})
	}
}
