package core

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// testEngine returns a manual engine with a small window for fast tests.
func testEngine(rule Rule) *Engine {
	return NewEngineManual(Config{
		WindowSize:      10,
		FinishedRatio:   0.6,
		Rule:            rule,
		CooldownWindows: -1, // tests drive rounds explicitly
	})
}

// churnLists creates n lists through the context, applies work to each and
// drops them all, then forces the GC so the weak references clear.
func churnLists(ctx *ListContext[int], n, size, lookups int) {
	for i := 0; i < n; i++ {
		l := ctx.NewList()
		for j := 0; j < size; j++ {
			l.Add(j)
		}
		for j := 0; j < lookups; j++ {
			l.Contains(j % (size + 1))
		}
	}
	runtime.GC()
}

func TestListContextSwitchesOnLookupHeavyWorkload(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e, WithName("test:list"))
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("default variant = %s, want ArrayList", got)
	}
	churnLists(ctx, 10, 500, 500)
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.HashArrayListID {
		t.Fatalf("after analysis variant = %s, want HashArrayList", got)
	}
	trs := e.Transitions()
	if len(trs) != 1 {
		t.Fatalf("transition log has %d entries, want 1", len(trs))
	}
	tr := trs[0]
	if tr.Context != "test:list" || tr.From != collections.ArrayListID || tr.To != collections.HashArrayListID {
		t.Fatalf("transition = %+v", tr)
	}
	if tr.Ratios[perfmodel.DimTimeNS] >= 0.8 {
		t.Fatalf("logged time ratio = %g", tr.Ratios[perfmodel.DimTimeNS])
	}
	if ctx.Round() != 1 {
		t.Fatalf("round = %d, want 1", ctx.Round())
	}
	// New instances now use the switched variant.
	l := ctx.NewList()
	if !isMonitoredList(l) {
		t.Fatal("post-switch instance not monitored (new round should monitor)")
	}
}

func TestListContextStaysOnSmallSizes(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e)
	churnLists(ctx, 10, 10, 50)
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("small-size workload switched to %s", got)
	}
	// The round still completes: monitoring restarts.
	if ctx.Round() != 1 {
		t.Fatalf("round = %d, want 1", ctx.Round())
	}
}

func TestContextNoDecisionBeforeWindowFull(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e)
	churnLists(ctx, 5, 500, 100) // half the window
	e.AnalyzeNow()
	if ctx.Round() != 0 {
		t.Fatal("decision made before window filled")
	}
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("variant changed to %s before window filled", got)
	}
}

func TestContextNoDecisionBeforeFinishedRatio(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e)
	// Fill the window but keep strong references to all instances: none
	// can finish.
	live := make([]collections.List[int], 0, 10)
	for i := 0; i < 10; i++ {
		l := ctx.NewList()
		for j := 0; j < 500; j++ {
			l.Add(j)
		}
		for j := 0; j < 100; j++ {
			l.Contains(j)
		}
		live = append(live, l)
	}
	runtime.GC()
	e.AnalyzeNow()
	if ctx.Round() != 0 {
		t.Fatal("decision made with zero finished instances")
	}
	// Drop 4 of 10 (below the 0.6 ratio): still no decision. The slice
	// entries must be nilled — truncating alone keeps the backing array
	// referencing the monitors.
	for i := 6; i < 10; i++ {
		live[i] = nil
	}
	live = live[:6]
	runtime.GC()
	e.AnalyzeNow()
	if ctx.Round() != 0 {
		t.Fatal("decision made below the finished ratio")
	}
	// Drop to 6 finished (at the ratio): decision fires.
	for i := 4; i < 6; i++ {
		live[i] = nil
	}
	live = live[:4]
	runtime.GC()
	e.AnalyzeNow()
	if ctx.Round() != 1 {
		t.Fatal("no decision at the finished ratio")
	}
	runtime.KeepAlive(live)
}

func TestSetContextSwitch(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewSetContext[int](e, WithName("test:set"))
	if got := ctx.CurrentVariant(); got != collections.HashSetID {
		t.Fatalf("default set variant = %s", got)
	}
	for i := 0; i < 10; i++ {
		s := ctx.NewSet()
		for j := 0; j < 500; j++ {
			s.Add(j)
		}
		for j := 0; j < 100; j++ {
			s.Contains(j * 2)
		}
	}
	runtime.GC()
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.OpenHashSetFastID {
		t.Fatalf("set switched to %s, want %s", got, collections.OpenHashSetFastID)
	}
}

func TestMapContextSwitchUnderRalloc(t *testing.T) {
	e := testEngine(Ralloc())
	defer e.Close()
	ctx := NewMapContext[int, string](e, WithName("test:map"))
	if got := ctx.CurrentVariant(); got != collections.HashMapID {
		t.Fatalf("default map variant = %s", got)
	}
	for i := 0; i < 10; i++ {
		m := ctx.NewMap()
		for j := 0; j < 150; j++ {
			m.Put(j, "v")
		}
		for j := 0; j < 100; j++ {
			m.Get(j)
		}
	}
	runtime.GC()
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.OpenHashMapCmpID {
		t.Fatalf("map switched to %s, want %s (compact preset at size 150)",
			got, collections.OpenHashMapCmpID)
	}
}

func TestImpossibleRuleNeverSwitches(t *testing.T) {
	e := testEngine(ImpossibleRule())
	defer e.Close()
	ctx := NewListContext[int](e)
	for round := 0; round < 3; round++ {
		churnLists(ctx, 10, 500, 100)
		e.AnalyzeNow()
	}
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("impossible rule switched to %s", got)
	}
	if len(e.Transitions()) != 0 {
		t.Fatalf("impossible rule logged %d transitions", len(e.Transitions()))
	}
	if ctx.Round() != 3 {
		t.Fatalf("rounds = %d, want 3 (analysis must still cycle)", ctx.Round())
	}
}

func TestContextMonitorsOnlyWindow(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e)
	monitored := 0
	for i := 0; i < 25; i++ {
		if isMonitoredList(ctx.NewList()) {
			monitored++
		}
	}
	if monitored != 10 {
		t.Fatalf("monitored %d instances, want window size 10", monitored)
	}
}

func TestContextContinuousAdaptation(t *testing.T) {
	// After switching, a new monitoring round can switch back when the
	// workload changes (the paper's continuous adaptation property).
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e, WithName("test:phases"))
	// Phase 1: lookup-heavy -> HashArrayList.
	churnLists(ctx, 10, 500, 200)
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.HashArrayListID {
		t.Fatalf("phase 1 variant = %s", got)
	}
	// Phase 2: iteration-only -> back to ArrayList (cheaper populate,
	// same iterate).
	for i := 0; i < 10; i++ {
		l := ctx.NewList()
		for j := 0; j < 500; j++ {
			l.Add(j)
		}
		sum := 0
		for k := 0; k < 50; k++ {
			l.ForEach(func(v int) bool { sum += v; return true })
		}
	}
	runtime.GC()
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("phase 2 variant = %s, want ArrayList", got)
	}
	if len(e.Transitions()) != 2 {
		t.Fatalf("transitions = %d, want 2", len(e.Transitions()))
	}
}

func TestWithCandidatesRestricts(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e,
		WithCandidates(collections.ArrayListID, collections.LinkedListID))
	churnLists(ctx, 10, 500, 200) // would pick HashArrayList if allowed
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("restricted context switched to %s", got)
	}
}

func TestWithDefaultVariant(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e, WithDefaultVariant(collections.LinkedListID))
	if got := ctx.CurrentVariant(); got != collections.LinkedListID {
		t.Fatalf("default variant = %s", got)
	}
	l := ctx.NewList()
	l.Add(1)
	if !l.Contains(1) {
		t.Fatal("created list does not work")
	}
}

func TestContextAutoName(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	ctx := NewListContext[int](e)
	if !strings.Contains(ctx.Name(), "context_test.go:") {
		t.Fatalf("auto name = %q, want caller site", ctx.Name())
	}
}

func TestEngineDefaults(t *testing.T) {
	e := NewEngineManual(Config{})
	cfg := e.Config()
	if cfg.WindowSize != 100 {
		t.Errorf("WindowSize = %d, want 100", cfg.WindowSize)
	}
	if cfg.FinishedRatio != 0.6 {
		t.Errorf("FinishedRatio = %g, want 0.6", cfg.FinishedRatio)
	}
	if cfg.MonitorRate != 50*time.Millisecond {
		t.Errorf("MonitorRate = %v, want 50ms", cfg.MonitorRate)
	}
	if cfg.Rule.Name != "Rtime" {
		t.Errorf("Rule = %s, want Rtime", cfg.Rule.Name)
	}
	if cfg.Models == nil {
		t.Error("Models not defaulted")
	}
	if cfg.AdaptiveSizeSpread != 4 {
		t.Errorf("AdaptiveSizeSpread = %g, want 4", cfg.AdaptiveSizeSpread)
	}
	if cfg.CooldownWindows != 3 {
		t.Errorf("CooldownWindows = %g, want 3", cfg.CooldownWindows)
	}
	neg := NewEngineManual(Config{CooldownWindows: -1})
	if neg.Config().CooldownWindows != 0 {
		t.Errorf("negative CooldownWindows not normalized to 0")
	}
}

func TestBackgroundEngineAnalyzes(t *testing.T) {
	e := NewEngine(Config{
		WindowSize:      10,
		FinishedRatio:   0.6,
		MonitorRate:     5 * time.Millisecond,
		Rule:            Rtime(),
		CooldownWindows: -1,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("bg:list"))
	churnLists(ctx, 10, 500, 500)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ctx.CurrentVariant() == collections.HashArrayListID {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background engine never switched; variant = %s", ctx.CurrentVariant())
}

func TestEngineCloseIdempotent(t *testing.T) {
	e := NewEngine(Config{MonitorRate: time.Millisecond})
	e.Close()
	e.Close() // must not panic or deadlock
	em := NewEngineManual(Config{})
	em.Close()
	em.Close()
}

func TestEngineConcurrentCreationAndAnalysis(t *testing.T) {
	e := NewEngine(Config{
		WindowSize:    50,
		MonitorRate:   time.Millisecond,
		FinishedRatio: 0.5,
	})
	defer e.Close()
	listCtx := NewListContext[int](e)
	setCtx := NewSetContext[int](e)
	mapCtx := NewMapContext[int, int](e)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := listCtx.NewList()
				s := setCtx.NewSet()
				m := mapCtx.NewMap()
				for j := 0; j < 50; j++ {
					l.Add(j)
					s.Add(j * seed)
					m.Put(j, j)
				}
				l.Contains(25)
				s.Contains(25)
				m.Get(25)
			}
		}(g + 1)
	}
	wg.Wait()
	runtime.GC()
	e.AnalyzeNow()
	// No assertion beyond absence of races/panics and usable state.
	if e.ContextCount() != 3 {
		t.Fatalf("ContextCount = %d", e.ContextCount())
	}
}

func TestUnknownDefaultVariantPanics(t *testing.T) {
	e := testEngine(Rtime())
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown default variant did not panic")
		}
	}()
	NewListContext[int](e, WithDefaultVariant("set/hash")) // wrong abstraction
}

func TestMonitoredWrapperCountsOps(t *testing.T) {
	p := newProfile()
	m := wrapList(collections.NewArrayList[int](), p)
	m.Add(1)
	m.Add(2)
	m.Insert(1, 3) // middle insert: add + middle
	m.Insert(3, 4) // append insert: add only
	m.Contains(1)
	m.IndexOf(2)
	m.ForEach(func(int) bool { return true })
	m.RemoveAt(0)
	m.Remove(3) // contains + middle
	w := p.snapshot()
	if w.Adds != 4 {
		t.Errorf("Adds = %d, want 4", w.Adds)
	}
	if w.Contains != 3 {
		t.Errorf("Contains = %d, want 3", w.Contains)
	}
	if w.Iterates != 1 {
		t.Errorf("Iterates = %d, want 1", w.Iterates)
	}
	if w.Middles != 3 {
		t.Errorf("Middles = %d, want 3", w.Middles)
	}
	if w.MaxSize != 4 {
		t.Errorf("MaxSize = %d, want 4", w.MaxSize)
	}
}

func TestMonitoredSetAndMapCounts(t *testing.T) {
	ps := newProfile()
	s := wrapSet(collections.NewHashSet[int](), ps)
	s.Add(1)
	s.Add(1) // duplicate still counts as an add call
	s.Contains(1)
	s.Remove(1)
	s.ForEach(func(int) bool { return true })
	ws := ps.snapshot()
	if ws.Adds != 2 || ws.Contains != 1 || ws.Middles != 1 || ws.Iterates != 1 {
		t.Errorf("set workload = %+v", ws)
	}
	if ws.MaxSize != 1 {
		t.Errorf("set MaxSize = %d, want 1", ws.MaxSize)
	}

	pm := newProfile()
	m := wrapMap(collections.NewHashMap[int, int](), pm)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Get(1)
	m.ContainsKey(2)
	m.Remove(1)
	m.ForEach(func(int, int) bool { return true })
	wm := pm.snapshot()
	if wm.Adds != 2 || wm.Contains != 2 || wm.Middles != 1 || wm.Iterates != 1 {
		t.Errorf("map workload = %+v", wm)
	}
	if wm.MaxSize != 2 {
		t.Errorf("map MaxSize = %d, want 2", wm.MaxSize)
	}
}

func TestProfileObserveSizeMonotonic(t *testing.T) {
	p := newProfile()
	sh := p.base()
	sh.observeSize(5)
	sh.observeSize(3)
	sh.observeSize(8)
	sh.observeSize(1)
	if got := p.snapshot().MaxSize; got != 8 {
		t.Fatalf("MaxSize = %d, want 8", got)
	}
}

// TestProfileShardsSumExactly pins the shard-then-aggregate invariant the
// whole refactor rests on: concurrent increments spread over the counter
// stripes must sum to exactly the number of increments performed, and the
// per-shard max-size high-water marks must combine into exactly the global
// maximum — regardless of how the goroutine hash distributed the writers.
func TestProfileShardsSumExactly(t *testing.T) {
	// Build a multi-stripe profile directly: on a narrow host newProfile
	// collapses to one stripe, which would make this test vacuous.
	p := &profile{shards: make([]pshard, 8)}
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sh := stripeOf(p.base(), p.maskBytes())
				sh.adds.Add(1)
				sh.contains.Add(1)
				sh.observeSize(g*perG + i)
			}
		}(g)
	}
	wg.Wait()
	w := p.snapshot()
	if w.Adds != goroutines*perG || w.Contains != goroutines*perG {
		t.Errorf("shard sums = adds %d contains %d, want %d each", w.Adds, w.Contains, goroutines*perG)
	}
	if want := int64(goroutines*perG - 1); w.MaxSize != want {
		t.Errorf("MaxSize = %d, want %d", w.MaxSize, want)
	}
	// Recycling must hand back a clean profile.
	p.release()
	q := newProfile()
	defer q.release()
	if w := q.snapshot(); w != (Workload{}) {
		t.Errorf("pooled profile not zeroed: %+v", w)
	}
}
