package core

import (
	"sync"
	"testing"

	"repro/internal/collections"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/polyfit"
)

// flatModels builds a model set with one constant time curve per critical
// operation for each given variant, and no other dimensions — the minimal
// coverage an Rtime engine needs (unused dimensions must not be demanded of
// user-supplied model files).
func flatModels(costs map[collections.VariantID]float64) *perfmodel.Models {
	m := perfmodel.NewModels()
	for v, c := range costs {
		for _, op := range perfmodel.Ops() {
			m.Set(v, op, perfmodel.DimTimeNS, polyfit.Poly{Coeffs: []float64{c}})
		}
	}
	return m
}

func countKind(events []obs.Event, k obs.Kind) int {
	n := 0
	for _, e := range events {
		if e.EventKind() == k {
			n++
		}
	}
	return n
}

// TestModelMissingSkipsCandidate pins the model-gap behavior: candidates
// the active models cannot price are dropped from the ranking with one
// ModelMissing warning each, the remaining candidates stay selectable, and
// the warnings are not repeated on later windows under the same models.
func TestModelMissingSkipsCandidate(t *testing.T) {
	// Only two of the four default list candidates are priced; LinkedList
	// is made to dominate so the filtered ranking still switches.
	m := flatModels(map[collections.VariantID]float64{
		collections.ArrayListID:  100,
		collections.LinkedListID: 1,
	})
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
		Rule: Rtime(), Models: m, Name: "gaps", Sink: col, Metrics: reg,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("gaps:list"))

	churnLists(ctx, 10, 50, 50)
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.LinkedListID {
		t.Fatalf("selected %s, want %s (ranking over the priced candidates)", got, collections.LinkedListID)
	}

	missing := map[string]bool{}
	for _, ev := range col.Events() {
		mm, ok := ev.(obs.ModelMissing)
		if !ok {
			continue
		}
		if mm.Context != "gaps:list" || mm.Dimension != string(perfmodel.DimTimeNS) {
			t.Fatalf("unexpected ModelMissing fields: %+v", mm)
		}
		if missing[mm.Variant] {
			t.Fatalf("duplicate ModelMissing for %s", mm.Variant)
		}
		missing[mm.Variant] = true
	}
	for _, want := range []collections.VariantID{collections.HashArrayListID, collections.AdaptiveListID} {
		if !missing[string(want)] {
			t.Fatalf("no ModelMissing warning for unpriced candidate %s (got %v)", want, missing)
		}
	}
	if got := reg.ModelGaps.Load(); got != int64(len(missing)) {
		t.Fatalf("ModelGaps = %d, want %d", got, len(missing))
	}

	// A second window under the same models must not repeat the warnings.
	before := countKind(col.Events(), obs.KindModelMissing)
	churnLists(ctx, 10, 50, 50)
	e.AnalyzeNow()
	if after := countKind(col.Events(), obs.KindModelMissing); after != before {
		t.Fatalf("warnings repeated: %d -> %d ModelMissing events", before, after)
	}
}

// TestSetModelsTakesEffect pins the hot-reload path: a swap is visible
// through Models(), emits a ModelsSwapped event, resets the per-model-set
// warning dedup, and the next closed window ranks under the new models.
func TestSetModelsTakesEffect(t *testing.T) {
	// Initial models price ArrayList alone: nothing to switch to.
	m1 := flatModels(map[collections.VariantID]float64{collections.ArrayListID: 100})
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
		Rule: Rtime(), Models: m1, Name: "swap", Sink: col, Metrics: reg,
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("swap:list"))

	churnLists(ctx, 10, 50, 50)
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.ArrayListID {
		t.Fatalf("selected %s with a single priced candidate, want no switch", got)
	}
	gapsBefore := countKind(col.Events(), obs.KindModelMissing)
	if gapsBefore == 0 {
		t.Fatal("expected ModelMissing warnings under the partial models")
	}

	// Swap in models that also price LinkedList as dominant.
	m2 := flatModels(map[collections.VariantID]float64{
		collections.ArrayListID:  100,
		collections.LinkedListID: 1,
	})
	e.SetModels(m2)
	if e.Models() != m2 {
		t.Fatal("Models() does not return the swapped-in set")
	}
	if got := reg.ModelSwaps.Load(); got != 1 {
		t.Fatalf("ModelSwaps = %d, want 1", got)
	}
	sw, ok := firstOfKind(col.Events(), obs.KindModelsSwapped)
	if !ok {
		t.Fatal("no ModelsSwapped event")
	}
	if ev := sw.(obs.ModelsSwapped); ev.Engine != "swap" || ev.Defaulted || ev.Curves != m2.Len() {
		t.Fatalf("ModelsSwapped = %+v", ev)
	}

	churnLists(ctx, 10, 50, 50)
	e.AnalyzeNow()
	if got := ctx.CurrentVariant(); got != collections.LinkedListID {
		t.Fatalf("selected %s after swap, want %s", got, collections.LinkedListID)
	}
	// The dedup is per model set: the still-unpriced candidates warn again.
	if after := countKind(col.Events(), obs.KindModelMissing); after <= gapsBefore {
		t.Fatalf("warning dedup not reset by swap: %d -> %d", gapsBefore, after)
	}

	// nil restores the analytic defaults and says so.
	e.SetModels(nil)
	if e.Models() == nil || e.Models() == m2 {
		t.Fatal("SetModels(nil) did not restore the defaults")
	}
	var last obs.ModelsSwapped
	for _, ev := range col.Events() {
		if s, ok := ev.(obs.ModelsSwapped); ok {
			last = s
		}
	}
	if !last.Defaulted {
		t.Fatalf("restoring defaults reported Defaulted=false: %+v", last)
	}
}

// TestSetModelsRaceHammer exercises concurrent hot-swaps against live
// monitoring and analysis. Run with -race (the CI race job includes this
// package); correctness assertions are minimal — the test exists to give
// the race detector interleavings.
func TestSetModelsRaceHammer(t *testing.T) {
	e := NewEngineManual(Config{
		WindowSize: 10, FinishedRatio: 0.6, CooldownWindows: -1,
		Rule: Rtime(), Name: "hammer",
	})
	defer e.Close()
	ctx := NewListContext[int](e, WithName("hammer:list"))

	alt := flatModels(map[collections.VariantID]float64{
		collections.ArrayListID:  10,
		collections.LinkedListID: 20,
	})
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				e.SetModels(alt)
			} else {
				e.SetModels(nil)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			l := ctx.NewList()
			l.Add(i)
			l.Contains(i)
			_ = e.Models()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			e.AnalyzeNow()
		}
	}()
	wg.Wait()
	if e.Models() == nil {
		t.Fatal("nil model handle after hammering")
	}
}
