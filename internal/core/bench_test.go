package core

import (
	"testing"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// BenchmarkContextCreation measures the per-instance cost of drawing a
// collection from a context, monitored (inside the window) and unmonitored
// (fast path).
func BenchmarkContextCreation(b *testing.B) {
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		var sink collections.List[int]
		for i := 0; i < b.N; i++ {
			sink = collections.NewArrayList[int]()
		}
		_ = sink
	})
	b.Run("context-unmonitored", func(b *testing.B) {
		e := NewEngineManual(Config{WindowSize: 1})
		defer e.Close()
		ctx := NewListContext[int](e)
		ctx.NewList() // fill the 1-instance window
		b.ReportAllocs()
		b.ResetTimer()
		var sink collections.List[int]
		for i := 0; i < b.N; i++ {
			sink = ctx.NewList()
		}
		_ = sink
	})
	b.Run("context-monitored", func(b *testing.B) {
		e := NewEngineManual(Config{WindowSize: 1 << 31})
		defer e.Close()
		ctx := NewListContext[int](e)
		b.ReportAllocs()
		b.ResetTimer()
		var sink collections.List[int]
		for i := 0; i < b.N; i++ {
			sink = ctx.NewList()
		}
		_ = sink
	})
}

// BenchmarkMonitoredOps measures the per-operation monitor tax.
func BenchmarkMonitoredOps(b *testing.B) {
	bare := collections.NewArrayList[int]()
	mon := wrapList(collections.NewArrayList[int](), newProfile())
	for i := 0; i < 100; i++ {
		bare.Add(i)
		mon.Add(i)
	}
	b.Run("bare-contains", func(b *testing.B) {
		sink := false
		for i := 0; i < b.N; i++ {
			sink = bare.Contains(i % 200)
		}
		_ = sink
	})
	b.Run("monitored-contains", func(b *testing.B) {
		sink := false
		for i := 0; i < b.N; i++ {
			sink = mon.Contains(i % 200)
		}
		_ = sink
	})
}

// BenchmarkFold measures the incremental cost of folding one finished
// instance into the per-variant totals — the amortized analysis work per
// monitored instance.
func BenchmarkFold(b *testing.B) {
	models := perfmodel.Default()
	agg := newCostAgg(models, setCandidates())
	w := Workload{Adds: 200, Contains: 100, Iterates: 3, MaxSize: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.fold(w)
	}
}

// BenchmarkDecide measures the decision step itself (the Figure 7 quantity,
// here in testing.B form).
func BenchmarkDecide(b *testing.B) {
	models := perfmodel.Default()
	agg := newCostAgg(models, setCandidates())
	for i := 0; i < 100; i++ {
		agg.fold(Workload{Adds: int64(10 + i*7), Contains: 100, MaxSize: int64(10 + i*7)})
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		if d := decide(agg, collections.HashSetID, Rtime(), 4, 40); d.ok {
			sink++
		}
	}
	_ = sink
}
