package core

import (
	"fmt"
	"runtime"

	"repro/internal/collections"
)

// ctxOptions collects the per-context settings shared by the three context
// kinds.
type ctxOptions struct {
	name       string
	defaultVar collections.VariantID
	candidates []collections.VariantID
}

// Option configures an allocation context at creation.
type Option func(*ctxOptions)

// WithName labels the context in transition logs and reports. Without it,
// the context is named after its creation site (file:line), mirroring the
// paper's allocation-site identity.
func WithName(name string) Option {
	return func(o *ctxOptions) { o.name = name }
}

// WithDefaultVariant sets the variant instantiated before any switch — the
// collection the developer originally declared at the site. The default
// defaults follow the JDK dominance reported in the paper's empirical
// study: ArrayList, HashSet, HashMap.
func WithDefaultVariant(id collections.VariantID) Option {
	return func(o *ctxOptions) { o.defaultVar = id }
}

// WithCandidates restricts the variants the context may select among. The
// default is every registered variant of the context's abstraction. The
// default variant is always included.
func WithCandidates(ids ...collections.VariantID) Option {
	return func(o *ctxOptions) { o.candidates = append([]collections.VariantID(nil), ids...) }
}

// resolveOptions applies opts over the abstraction defaults. callerSkip is
// the number of frames between the user call site and this function.
func resolveOptions(opts []Option, defVar collections.VariantID, all []collections.VariantID, callerSkip int) ctxOptions {
	o := ctxOptions{defaultVar: defVar, candidates: all}
	for _, opt := range opts {
		opt(&o)
	}
	if o.name == "" {
		if _, file, line, ok := runtime.Caller(callerSkip); ok {
			o.name = fmt.Sprintf("%s:%d", trimPath(file), line)
		} else {
			o.name = "unknown-site"
		}
	}
	// The default variant must be a candidate, or the context could not
	// compare anything against it.
	found := false
	for _, c := range o.candidates {
		if c == o.defaultVar {
			found = true
			break
		}
	}
	if !found {
		o.candidates = append([]collections.VariantID{o.defaultVar}, o.candidates...)
	}
	return o
}

// trimPath shortens an absolute source path to its last two segments.
func trimPath(p string) string {
	slashes := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			slashes++
			if slashes == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
