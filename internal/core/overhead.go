package core

import (
	"time"

	"repro/internal/collections"
	"repro/internal/perfmodel"
)

// DecisionOverheadNs measures the cost of one analysis decision over an
// aggregate built from windowSize instance workloads — the quantity Figure 7
// reports across window sizes. Because the engine folds each finished
// instance into running totals exactly once, the decision step only compares
// per-variant sums and its cost is independent of windowSize; this function
// exists to demonstrate and benchmark that property.
func DecisionOverheadNs(models *perfmodel.Models, rule Rule, windowSize, iters int) float64 {
	candidates := make([]collections.VariantID, 0, 8)
	for _, v := range collections.SetVariants[int]() {
		candidates = append(candidates, v.ID)
	}
	agg := newCostAgg(models, candidates)
	for i := 0; i < windowSize; i++ {
		// Vary the sizes so the aggregate is not degenerate.
		size := int64(10 + (i%50)*20)
		agg.fold(Workload{Adds: size, Contains: 100, Iterates: 2, MaxSize: size})
	}
	if iters <= 0 {
		iters = 1
	}
	start := time.Now()
	sink := 0
	for i := 0; i < iters; i++ {
		d := decide(agg, collections.HashSetID, rule, 4, collections.DefaultSetThreshold)
		if d.ok {
			sink++
		}
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed.Nanoseconds()) / float64(iters)
}
