package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/collections"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/polyfit"
)

// flappingModels builds a two-variant model set with opposing op costs —
// "test/a" iterates expensively and probes cheaply, "test/b" the reverse —
// so a workload alternating between iterate-heavy and contains-heavy rounds
// makes the point-estimate rule flip the winner every round. Every curve
// carries a large prediction variance (se 50 per call), so a confidence-armed
// engine sees the candidates' cost intervals overlap massively.
func flappingModels() *perfmodel.Models {
	m := perfmodel.NewModels()
	variance := polyfit.Poly{Coeffs: []float64{2500}}
	set := func(id collections.VariantID, op perfmodel.Op, cost float64) {
		m.SetWithVar(id, op, perfmodel.DimTimeNS, polyfit.Poly{Coeffs: []float64{cost}}, variance)
	}
	for _, id := range []collections.VariantID{"test/a", "test/b"} {
		set(id, perfmodel.OpPopulate, 1)
		set(id, perfmodel.OpMiddle, 1)
	}
	set("test/a", perfmodel.OpContains, 1)
	set("test/a", perfmodel.OpIterate, 10)
	set("test/b", perfmodel.OpContains, 10)
	set("test/b", perfmodel.OpIterate, 1)
	return m
}

// runFlapping drives eight window closes over the flapping workload against
// an engine at the given confidence level and returns the engine, the event
// collector and the decision records (one per round).
func runFlapping(t *testing.T, level float64) (*Engine, *obs.Collector, []DecisionRecord) {
	t.Helper()
	col := obs.NewCollector()
	e := NewEngineManual(Config{
		WindowSize: 10, Rule: Rtime(), Models: flappingModels(),
		ConfidenceLevel: level, Name: "flap", Sink: col,
	})
	rng := rand.New(rand.NewSource(42))
	cands := []collections.VariantID{"test/a", "test/b"}
	current := cands[0]
	var recs []DecisionRecord
	for round := 0; round < 8; round++ {
		agg := newCostAggDims(e.Models(), cands, e.ruleDims)
		agg.setConfidence(e.confZ)
		for i := 0; i < 10; i++ {
			w := Workload{Adds: 10, MaxSize: 10}
			jitter := int64(rng.Intn(10))
			if round%2 == 0 {
				w.Iterates, w.Contains = 100+jitter, 5+jitter
			} else {
				w.Contains, w.Iterates = 100+jitter, 5+jitter
			}
			agg.fold(w)
		}
		next, rec := e.closeWindow(windowClose{
			name: "flap:site", agg: agg, current: current, round: round,
			threshold: 50, finished: agg.folded, record: true,
		})
		if rec == nil {
			t.Fatalf("round %d: no decision record", round)
		}
		recs = append(recs, *rec)
		current = next
	}
	return e, col, recs
}

// Without the confidence gate the alternating workload flips the variant
// every round; with it, the overlapping cost intervals hold the site still
// and every withheld switch is counted, recorded and emitted.
func TestConfidenceGateSuppressesFlapping(t *testing.T) {
	ungated, _, _ := runFlapping(t, 0)
	if n := len(ungated.Transitions()); n < 3 {
		t.Fatalf("ungated engine made %d transitions, want >= 3 (flapping)", n)
	}
	if got := ungated.Metrics().SwitchesSuppressedCI.Load(); got != 0 {
		t.Errorf("ungated engine suppressed %d switches, want 0", got)
	}

	gated, col, recs := runFlapping(t, 0.95)
	if n := len(gated.Transitions()); n > 1 {
		t.Errorf("gated engine made %d transitions, want <= 1", n)
	}
	suppressed := gated.Metrics().SwitchesSuppressedCI.Load()
	if suppressed == 0 {
		t.Fatal("gated engine counted no suppressed switches")
	}

	// The withheld rounds surface as ci_overlap records naming the blocked
	// candidate, with the positive point margin it would have switched by.
	overlaps := 0
	for _, rec := range recs {
		if rec.Outcome != OutcomeCIOverlap {
			continue
		}
		overlaps++
		if rec.Winner != "test/b" {
			t.Errorf("ci_overlap winner = %s, want test/b", rec.Winner)
		}
		if rec.Margin <= 0 {
			t.Errorf("ci_overlap margin = %g, want > 0 (point estimate cleared)", rec.Margin)
		}
		for _, est := range rec.Candidates {
			if est.Variant != "test/b" {
				continue
			}
			if est.Eligible {
				t.Error("suppressed candidate still marked eligible")
			}
			if len(est.RatiosHi) == 0 || len(est.CostsLo) == 0 || len(est.CostsHi) == 0 {
				t.Error("suppressed candidate estimate missing interval fields")
			}
			if rhi := est.RatiosHi[perfmodel.DimTimeNS]; rhi <= 0.8 {
				t.Errorf("suppressed candidate upper ratio %g, want > threshold 0.8", rhi)
			}
		}
	}
	if int64(overlaps) != suppressed {
		t.Errorf("%d ci_overlap records vs %d counted suppressions", overlaps, suppressed)
	}

	// And as switch_suppressed events on the sink.
	events := 0
	for _, ev := range col.Events() {
		ss, ok := ev.(obs.SwitchSuppressed)
		if !ok {
			continue
		}
		events++
		if ss.Context != "flap:site" || ss.From != "test/a" || ss.To != "test/b" || ss.Level != 0.95 {
			t.Errorf("switch_suppressed event = %+v", ss)
		}
	}
	if int64(events) != suppressed {
		t.Errorf("%d switch_suppressed events vs %d counted suppressions", events, suppressed)
	}
}

// decide and decideExplain must reach the identical decision with explain on
// or off, armed or not — and arming an aggregate over variance-free models
// must not change any decision (zero-width intervals degenerate to the point
// gate).
func TestDecideEquivalenceAcrossExplainAndConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	models := perfmodel.Default()
	cands := setCandidates()
	for trial := 0; trial < 300; trial++ {
		rule := Rtime()
		if trial%3 == 0 {
			rule = Ralloc()
		}
		fold := func(a *costAgg) {
			r := rand.New(rand.NewSource(int64(trial)))
			for i := 0; i < 1+r.Intn(20); i++ {
				size := int64(1 + r.Intn(1000))
				a.fold(Workload{
					Adds: size * int64(1+r.Intn(3)), Contains: int64(r.Intn(2000)),
					Iterates: int64(r.Intn(50)), Middles: int64(r.Intn(50)), MaxSize: size,
				})
			}
		}
		plain := newCostAgg(models, cands)
		armed := newCostAgg(models, cands)
		armed.setConfidence(1.96)
		fold(plain)
		fold(armed)
		current := cands[rng.Intn(len(cands))]

		d1 := decide(plain, current, rule, 4, 50)
		d2, ests, _, _ := decideExplain(plain, current, rule, 4, 50, true)
		if d1.ok != d2.ok || d1.switchTo != d2.switchTo || d1.suppressedTo != d2.suppressedTo {
			t.Fatalf("trial %d: explain changed the decision: %+v vs %+v", trial, d1, d2)
		}
		if len(ests) != len(cands) {
			t.Fatalf("trial %d: %d estimates for %d candidates", trial, len(ests), len(cands))
		}
		d3 := decide(armed, current, rule, 4, 50)
		if d1.ok != d3.ok || d1.switchTo != d3.switchTo {
			t.Fatalf("trial %d: variance-free arming changed the decision: %+v vs %+v", trial, d1, d3)
		}
		if d3.suppressedTo != "" {
			t.Fatalf("trial %d: suppression without variance: %+v", trial, d3)
		}
		for dim, r := range d1.ratios {
			if d3.ratios[dim] != r {
				t.Fatalf("trial %d: ratio drift on %s: %g vs %g", trial, dim, r, d3.ratios[dim])
			}
		}
	}
}

// An unarmed aggregate never allocates interval state and estimates carry no
// interval fields.
func TestUnarmedAggregateStaysLegacy(t *testing.T) {
	agg := newCostAggDims(flappingModels(), []collections.VariantID{"test/a", "test/b"},
		[]perfmodel.Dimension{perfmodel.DimTimeNS})
	agg.setConfidence(0)
	agg.fold(Workload{Adds: 10, Contains: 100, MaxSize: 10})
	if agg.lo != nil || agg.hi != nil || agg.z != 0 {
		t.Fatal("setConfidence(0) armed the aggregate")
	}
	_, ests, _, _ := decideExplain(agg, "test/a", Rtime(), 4, 50, true)
	for _, est := range ests {
		if est.CostsLo != nil || est.CostsHi != nil || est.RatiosHi != nil {
			t.Fatalf("unarmed estimate carries interval fields: %+v", est)
		}
	}
}

// ConfidenceLevel outside [0, 1) is clamped and reported.
func TestConfidenceLevelClamped(t *testing.T) {
	col := obs.NewCollector()
	e := NewEngineManual(Config{ConfidenceLevel: -0.5, Sink: col, Name: "neg"})
	if got := e.Config().ConfidenceLevel; got != 0 {
		t.Errorf("negative level clamped to %g, want 0", got)
	}
	if e.confZ != 0 {
		t.Errorf("confZ = %g after clamp to 0, want 0", e.confZ)
	}
	e2 := NewEngineManual(Config{ConfidenceLevel: 1.5, Name: "big"})
	if got := e2.Config().ConfidenceLevel; got != 0.999 {
		t.Errorf("level 1.5 clamped to %g, want 0.999", got)
	}
	found := false
	for _, ev := range col.Events() {
		if cl, ok := ev.(obs.ConfigClamped); ok && cl.Field == "ConfidenceLevel" {
			found = true
			if cl.From != -0.5 || cl.To != 0 {
				t.Errorf("clamp event = %+v, want From=-0.5 To=0", cl)
			}
		}
	}
	if !found {
		t.Error("no ConfigClamped event for ConfidenceLevel")
	}
	// The quantile matches the standard normal: level 0.95 → z ≈ 1.9600.
	e3 := NewEngineManual(Config{ConfidenceLevel: 0.95, Name: "z"})
	if z := e3.confZ; math.Abs(z-1.959964) > 1e-4 {
		t.Errorf("confZ(0.95) = %g, want ~1.96", z)
	}
}
