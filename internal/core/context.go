package core

import (
	"unsafe"

	"repro/internal/collections"
)

// The public allocation-context types for the three abstractions. All
// selection logic lives in siteCore (sitecore.go); the wrappers below
// contribute exactly two abstraction-specific ingredients: the
// monitor-wrapping functions and the adaptive transition threshold.

// wrapList/unwrapList adapt the list monitors to the siteCore monitor
// hooks. The Sizer assertion is resolved here, once per instance, so
// FootprintBytes never re-asserts on the hot path. A multi-stripe profile
// gets the striped monitor form; the stripes of a GOMAXPROCS=1 process
// collapse to one and the plain form keeps the record path at its
// historical cost (see monitor.go). Because the plain form is the striped
// form's first field, the returned *monitoredList addresses the same heap
// object either way — siteCore's weak reference and the user-facing
// interface value agree on the instance-death signal — and unwrapList
// recovers the striped method set by casting back, discriminating on
// maskBytes (non-zero exactly for striped monitors).
func wrapList[T comparable](inner collections.List[T], p *profile) *monitoredList[T] {
	s, _ := inner.(collections.Sizer)
	if p.maskBytes() == 0 {
		return &monitoredList[T]{inner: inner, sizer: s, p: p, sh: p.base()}
	}
	st := &stripedList[T]{monitoredList[T]{inner: inner, sizer: s, p: p, sh: p.base(), maskBytes: p.maskBytes()}}
	return &st.monitoredList
}
func unwrapList[T comparable](m *monitoredList[T]) collections.List[T] {
	if m.maskBytes != 0 {
		return (*stripedList[T])(unsafe.Pointer(m))
	}
	return m
}

func wrapSet[T comparable](inner collections.Set[T], p *profile) *monitoredSet[T] {
	s, _ := inner.(collections.Sizer)
	if p.maskBytes() == 0 {
		return &monitoredSet[T]{inner: inner, sizer: s, p: p, sh: p.base()}
	}
	st := &stripedSet[T]{monitoredSet[T]{inner: inner, sizer: s, p: p, sh: p.base(), maskBytes: p.maskBytes()}}
	return &st.monitoredSet
}
func unwrapSet[T comparable](m *monitoredSet[T]) collections.Set[T] {
	if m.maskBytes != 0 {
		return (*stripedSet[T])(unsafe.Pointer(m))
	}
	return m
}

func wrapMap[K comparable, V any](inner collections.Map[K, V], p *profile) *monitoredMap[K, V] {
	s, _ := inner.(collections.Sizer)
	if p.maskBytes() == 0 {
		return &monitoredMap[K, V]{inner: inner, sizer: s, p: p, sh: p.base()}
	}
	st := &stripedMap[K, V]{monitoredMap[K, V]{inner: inner, sizer: s, p: p, sh: p.base(), maskBytes: p.maskBytes()}}
	return &st.monitoredMap
}
func unwrapMap[K comparable, V any](m *monitoredMap[K, V]) collections.Map[K, V] {
	if m.maskBytes != 0 {
		return (*stripedMap[K, V])(unsafe.Pointer(m))
	}
	return m
}

// listFactories/setFactories/mapFactories flatten a variant slice into the
// (ids, factory map) pair siteCore consumes.
func listFactories[T comparable](variants []collections.ListVariant[T]) ([]collections.VariantID, map[collections.VariantID]func(int) collections.List[T]) {
	ids := make([]collections.VariantID, 0, len(variants))
	factories := make(map[collections.VariantID]func(int) collections.List[T], len(variants))
	for _, v := range variants {
		ids = append(ids, v.ID)
		factories[v.ID] = v.New
	}
	return ids, factories
}

func setFactories[T comparable](variants []collections.SetVariant[T]) ([]collections.VariantID, map[collections.VariantID]func(int) collections.Set[T]) {
	ids := make([]collections.VariantID, 0, len(variants))
	factories := make(map[collections.VariantID]func(int) collections.Set[T], len(variants))
	for _, v := range variants {
		ids = append(ids, v.ID)
		factories[v.ID] = v.New
	}
	return ids, factories
}

func mapFactories[K comparable, V any](variants []collections.MapVariant[K, V]) ([]collections.VariantID, map[collections.VariantID]func(int) collections.Map[K, V]) {
	ids := make([]collections.VariantID, 0, len(variants))
	factories := make(map[collections.VariantID]func(int) collections.Map[K, V], len(variants))
	for _, v := range variants {
		ids = append(ids, v.ID)
		factories[v.ID] = v.New
	}
	return ids, factories
}

// ListContext is an adaptive allocation context for lists. Create it once
// per allocation site (typically in a package-level variable — the paper's
// "static context") and obtain collections through NewList.
type ListContext[T comparable] struct {
	core siteCore[collections.List[T], monitoredList[T]]
}

// NewListContext registers a list allocation context with the engine. The
// default variant is ArrayList (the JDK-dominant choice reported by the
// paper's empirical study) unless overridden with WithDefaultVariant.
func NewListContext[T comparable](e *Engine, opts ...Option) *ListContext[T] {
	ids, factories := listFactories(collections.ListVariants[T]())
	o := resolveOptions(opts, collections.ArrayListID, ids, 2)
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: unknown default list variant " + string(o.defaultVar))
	}
	c := &ListContext[T]{}
	c.core.init(e, o, "list", factories, wrapList[T], unwrapList[T], collections.DefaultListThreshold)
	e.register(&c.core)
	return c
}

// NewList returns a list of the context's current variant. The first
// WindowSize instances of each monitoring round are wrapped in monitors.
func (c *ListContext[T]) NewList() collections.List[T] { return c.core.newCollection() }

// CurrentVariant returns the variant future instantiations will use.
func (c *ListContext[T]) CurrentVariant() collections.VariantID { return c.core.currentVariant() }

// Round returns the number of completed analysis rounds.
func (c *ListContext[T]) Round() int { return c.core.completedRounds() }

// Name returns the context's site label.
func (c *ListContext[T]) Name() string { return c.core.contextName() }

// SetContext is an adaptive allocation context for sets.
type SetContext[T comparable] struct {
	core siteCore[collections.Set[T], monitoredSet[T]]
}

// NewSetContext registers a set allocation context with the engine; the
// default variant is the chained HashSet.
func NewSetContext[T comparable](e *Engine, opts ...Option) *SetContext[T] {
	ids, factories := setFactories(collections.SetVariants[T]())
	o := resolveOptions(opts, collections.HashSetID, ids, 2)
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: unknown default set variant " + string(o.defaultVar))
	}
	c := &SetContext[T]{}
	c.core.init(e, o, "set", factories, wrapSet[T], unwrapSet[T], collections.DefaultSetThreshold)
	e.register(&c.core)
	return c
}

// NewSet returns a set of the context's current variant, monitored while
// the window has room.
func (c *SetContext[T]) NewSet() collections.Set[T] { return c.core.newCollection() }

// CurrentVariant returns the variant future instantiations will use.
func (c *SetContext[T]) CurrentVariant() collections.VariantID { return c.core.currentVariant() }

// Round returns the number of completed analysis rounds.
func (c *SetContext[T]) Round() int { return c.core.completedRounds() }

// Name returns the context's site label.
func (c *SetContext[T]) Name() string { return c.core.contextName() }

// MapContext is an adaptive allocation context for maps.
type MapContext[K comparable, V any] struct {
	core siteCore[collections.Map[K, V], monitoredMap[K, V]]
}

// NewMapContext registers a map allocation context with the engine; the
// default variant is the chained HashMap.
func NewMapContext[K comparable, V any](e *Engine, opts ...Option) *MapContext[K, V] {
	ids, factories := mapFactories(collections.MapVariants[K, V]())
	o := resolveOptions(opts, collections.HashMapID, ids, 2)
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: unknown default map variant " + string(o.defaultVar))
	}
	c := &MapContext[K, V]{}
	c.core.init(e, o, "map", factories, wrapMap[K, V], unwrapMap[K, V], collections.DefaultMapThreshold)
	e.register(&c.core)
	return c
}

// NewMap returns a map of the context's current variant, monitored while
// the window has room.
func (c *MapContext[K, V]) NewMap() collections.Map[K, V] { return c.core.newCollection() }

// CurrentVariant returns the variant future instantiations will use.
func (c *MapContext[K, V]) CurrentVariant() collections.VariantID { return c.core.currentVariant() }

// Round returns the number of completed analysis rounds.
func (c *MapContext[K, V]) Round() int { return c.core.completedRounds() }

// Name returns the context's site label.
func (c *MapContext[K, V]) Name() string { return c.core.contextName() }
