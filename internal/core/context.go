package core

import (
	"math"
	"sync"
	"weak"

	"repro/internal/collections"
	"repro/internal/obs"
)

// This file implements the adaptive allocation contexts of Section 4.3 for
// the three abstractions. The three types are structurally identical —
// Go generics cannot abstract over the differing method sets of List, Set
// and Map — but all selection logic is shared through costAgg and decide.

// listRecord tracks one monitored list instance: a weak pointer to the
// monitor (so the context never keeps the collection alive — the paper's
// WeakReference technique) and a strong pointer to its profile.
type listRecord[T comparable] struct {
	ref    weak.Pointer[monitoredList[T]]
	p      *profile
	folded bool
}

// ListContext is an adaptive allocation context for lists. Create it once
// per allocation site (typically in a package-level variable — the paper's
// "static context") and obtain collections through NewList.
type ListContext[T comparable] struct {
	e    *Engine
	name string

	factories map[collections.VariantID]func(int) collections.List[T]

	// The following are guarded by the engine-independent context lock
	// embedded in the analyze/create paths.
	mu       sync.Mutex
	current  collections.VariantID
	window   []*listRecord[T]
	agg      *costAgg
	round    int
	cooldown int // unmonitored creations remaining before the next round
}

// NewListContext registers a list allocation context with the engine. The
// default variant is ArrayList (the JDK-dominant choice reported by the
// paper's empirical study) unless overridden with WithDefaultVariant.
func NewListContext[T comparable](e *Engine, opts ...Option) *ListContext[T] {
	ids := make([]collections.VariantID, 0, 4)
	factories := make(map[collections.VariantID]func(int) collections.List[T])
	for _, v := range collections.ListVariants[T]() {
		ids = append(ids, v.ID)
		factories[v.ID] = v.New
	}
	o := resolveOptions(opts, collections.ArrayListID, ids, 2)
	candidates := filterKnown(o.candidates, factories)
	c := &ListContext[T]{
		e:         e,
		name:      o.name,
		factories: factories,
		current:   o.defaultVar,
		agg:       newCostAgg(e.cfg.Models, candidates),
	}
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: unknown default list variant " + string(o.defaultVar))
	}
	e.register(c)
	return c
}

// NewList returns a list of the context's current variant. The first
// WindowSize instances of each monitoring round are wrapped in monitors.
func (c *ListContext[T]) NewList() collections.List[T] {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.e.metrics.InstancesCreated.Add(1)
	inner := c.factories[c.current](0)
	if c.cooldown > 0 {
		c.cooldown--
		return inner
	}
	if len(c.window) < c.e.cfg.WindowSize {
		c.e.metrics.InstancesMonitored.Add(1)
		p := &profile{}
		m := &monitoredList[T]{inner: inner, p: p}
		c.window = append(c.window, &listRecord[T]{ref: weak.Make(m), p: p})
		return m
	}
	return inner
}

// CurrentVariant returns the variant future instantiations will use.
func (c *ListContext[T]) CurrentVariant() collections.VariantID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Round returns the number of completed analysis rounds.
func (c *ListContext[T]) Round() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

// Name returns the context's site label.
func (c *ListContext[T]) Name() string { return c.name }

func (c *ListContext[T]) contextName() string { return c.name }

func (c *ListContext[T]) windowStats() obs.ContextWindowStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.ContextWindowStat{
		Context: c.name, Variant: string(c.current), Round: c.round,
		WindowFill: len(c.window), Folded: c.agg.folded, Cooldown: c.cooldown,
	}
}

// analyze folds finished instances and, when the window is complete and the
// finished ratio reached, applies the selection rule (Sections 3.1, 4.3).
func (c *ListContext[T]) analyze() {
	c.mu.Lock()
	defer c.mu.Unlock()
	reclaimed := 0
	for _, r := range c.window {
		if !r.folded && r.ref.Value() == nil {
			c.agg.fold(r.p.snapshot())
			r.folded = true
			reclaimed++
		}
	}
	if reclaimed > 0 {
		c.e.metrics.WeakReclaims.Add(int64(reclaimed))
	}
	if len(c.window) < c.e.cfg.WindowSize {
		return
	}
	if c.agg.folded < neededFolds(c.e.cfg) {
		return
	}
	// Decision time: use the whole set of metrics, including instances
	// still alive (the paper folds all collected metrics; the finished
	// ratio only gates when the analysis may run).
	finished := c.agg.folded
	for _, r := range c.window {
		if !r.folded {
			c.agg.fold(r.p.snapshot())
			r.folded = true
		}
	}
	cooldown := int(c.e.cfg.CooldownWindows * float64(c.e.cfg.WindowSize))
	c.current = c.e.closeWindow(c.name, c.agg, c.current, c.round, collections.DefaultListThreshold, finished, cooldown)
	c.window = c.window[:0]
	c.agg = newCostAgg(c.e.cfg.Models, c.agg.candidates)
	c.round++
	c.cooldown = cooldown
}

// setRecord tracks one monitored set instance.
type setRecord[T comparable] struct {
	ref    weak.Pointer[monitoredSet[T]]
	p      *profile
	folded bool
}

// SetContext is an adaptive allocation context for sets.
type SetContext[T comparable] struct {
	e    *Engine
	name string

	factories map[collections.VariantID]func(int) collections.Set[T]

	mu       sync.Mutex
	current  collections.VariantID
	window   []*setRecord[T]
	agg      *costAgg
	round    int
	cooldown int
}

// NewSetContext registers a set allocation context with the engine; the
// default variant is the chained HashSet.
func NewSetContext[T comparable](e *Engine, opts ...Option) *SetContext[T] {
	ids := make([]collections.VariantID, 0, 8)
	factories := make(map[collections.VariantID]func(int) collections.Set[T])
	for _, v := range collections.SetVariants[T]() {
		ids = append(ids, v.ID)
		factories[v.ID] = v.New
	}
	o := resolveOptions(opts, collections.HashSetID, ids, 2)
	candidates := filterKnown(o.candidates, factories)
	c := &SetContext[T]{
		e:         e,
		name:      o.name,
		factories: factories,
		current:   o.defaultVar,
		agg:       newCostAgg(e.cfg.Models, candidates),
	}
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: unknown default set variant " + string(o.defaultVar))
	}
	e.register(c)
	return c
}

// NewSet returns a set of the context's current variant, monitored while
// the window has room.
func (c *SetContext[T]) NewSet() collections.Set[T] {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.e.metrics.InstancesCreated.Add(1)
	inner := c.factories[c.current](0)
	if c.cooldown > 0 {
		c.cooldown--
		return inner
	}
	if len(c.window) < c.e.cfg.WindowSize {
		c.e.metrics.InstancesMonitored.Add(1)
		p := &profile{}
		m := &monitoredSet[T]{inner: inner, p: p}
		c.window = append(c.window, &setRecord[T]{ref: weak.Make(m), p: p})
		return m
	}
	return inner
}

// CurrentVariant returns the variant future instantiations will use.
func (c *SetContext[T]) CurrentVariant() collections.VariantID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Round returns the number of completed analysis rounds.
func (c *SetContext[T]) Round() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

// Name returns the context's site label.
func (c *SetContext[T]) Name() string { return c.name }

func (c *SetContext[T]) contextName() string { return c.name }

func (c *SetContext[T]) windowStats() obs.ContextWindowStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.ContextWindowStat{
		Context: c.name, Variant: string(c.current), Round: c.round,
		WindowFill: len(c.window), Folded: c.agg.folded, Cooldown: c.cooldown,
	}
}

func (c *SetContext[T]) analyze() {
	c.mu.Lock()
	defer c.mu.Unlock()
	reclaimed := 0
	for _, r := range c.window {
		if !r.folded && r.ref.Value() == nil {
			c.agg.fold(r.p.snapshot())
			r.folded = true
			reclaimed++
		}
	}
	if reclaimed > 0 {
		c.e.metrics.WeakReclaims.Add(int64(reclaimed))
	}
	if len(c.window) < c.e.cfg.WindowSize {
		return
	}
	if c.agg.folded < neededFolds(c.e.cfg) {
		return
	}
	finished := c.agg.folded
	for _, r := range c.window {
		if !r.folded {
			c.agg.fold(r.p.snapshot())
			r.folded = true
		}
	}
	cooldown := int(c.e.cfg.CooldownWindows * float64(c.e.cfg.WindowSize))
	c.current = c.e.closeWindow(c.name, c.agg, c.current, c.round, collections.DefaultSetThreshold, finished, cooldown)
	c.window = c.window[:0]
	c.agg = newCostAgg(c.e.cfg.Models, c.agg.candidates)
	c.round++
	c.cooldown = cooldown
}

// mapRecord tracks one monitored map instance.
type mapRecord[K comparable, V any] struct {
	ref    weak.Pointer[monitoredMap[K, V]]
	p      *profile
	folded bool
}

// MapContext is an adaptive allocation context for maps.
type MapContext[K comparable, V any] struct {
	e    *Engine
	name string

	factories map[collections.VariantID]func(int) collections.Map[K, V]

	mu       sync.Mutex
	current  collections.VariantID
	window   []*mapRecord[K, V]
	agg      *costAgg
	round    int
	cooldown int
}

// NewMapContext registers a map allocation context with the engine; the
// default variant is the chained HashMap.
func NewMapContext[K comparable, V any](e *Engine, opts ...Option) *MapContext[K, V] {
	ids := make([]collections.VariantID, 0, 8)
	factories := make(map[collections.VariantID]func(int) collections.Map[K, V])
	for _, v := range collections.MapVariants[K, V]() {
		ids = append(ids, v.ID)
		factories[v.ID] = v.New
	}
	o := resolveOptions(opts, collections.HashMapID, ids, 2)
	candidates := filterKnown(o.candidates, factories)
	c := &MapContext[K, V]{
		e:         e,
		name:      o.name,
		factories: factories,
		current:   o.defaultVar,
		agg:       newCostAgg(e.cfg.Models, candidates),
	}
	if _, ok := factories[o.defaultVar]; !ok {
		panic("core: unknown default map variant " + string(o.defaultVar))
	}
	e.register(c)
	return c
}

// NewMap returns a map of the context's current variant, monitored while
// the window has room.
func (c *MapContext[K, V]) NewMap() collections.Map[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.e.metrics.InstancesCreated.Add(1)
	inner := c.factories[c.current](0)
	if c.cooldown > 0 {
		c.cooldown--
		return inner
	}
	if len(c.window) < c.e.cfg.WindowSize {
		c.e.metrics.InstancesMonitored.Add(1)
		p := &profile{}
		m := &monitoredMap[K, V]{inner: inner, p: p}
		c.window = append(c.window, &mapRecord[K, V]{ref: weak.Make(m), p: p})
		return m
	}
	return inner
}

// CurrentVariant returns the variant future instantiations will use.
func (c *MapContext[K, V]) CurrentVariant() collections.VariantID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Round returns the number of completed analysis rounds.
func (c *MapContext[K, V]) Round() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

// Name returns the context's site label.
func (c *MapContext[K, V]) Name() string { return c.name }

func (c *MapContext[K, V]) contextName() string { return c.name }

func (c *MapContext[K, V]) windowStats() obs.ContextWindowStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obs.ContextWindowStat{
		Context: c.name, Variant: string(c.current), Round: c.round,
		WindowFill: len(c.window), Folded: c.agg.folded, Cooldown: c.cooldown,
	}
}

func (c *MapContext[K, V]) analyze() {
	c.mu.Lock()
	defer c.mu.Unlock()
	reclaimed := 0
	for _, r := range c.window {
		if !r.folded && r.ref.Value() == nil {
			c.agg.fold(r.p.snapshot())
			r.folded = true
			reclaimed++
		}
	}
	if reclaimed > 0 {
		c.e.metrics.WeakReclaims.Add(int64(reclaimed))
	}
	if len(c.window) < c.e.cfg.WindowSize {
		return
	}
	if c.agg.folded < neededFolds(c.e.cfg) {
		return
	}
	finished := c.agg.folded
	for _, r := range c.window {
		if !r.folded {
			c.agg.fold(r.p.snapshot())
			r.folded = true
		}
	}
	cooldown := int(c.e.cfg.CooldownWindows * float64(c.e.cfg.WindowSize))
	c.current = c.e.closeWindow(c.name, c.agg, c.current, c.round, collections.DefaultMapThreshold, finished, cooldown)
	c.window = c.window[:0]
	c.agg = newCostAgg(c.e.cfg.Models, c.agg.candidates)
	c.round++
	c.cooldown = cooldown
}

// neededFolds converts the finished ratio into an instance count.
func neededFolds(cfg Config) int {
	return int(math.Ceil(cfg.FinishedRatio * float64(cfg.WindowSize)))
}

// filterKnown drops candidate IDs that have no factory (e.g. a map variant
// ID passed to a list context).
func filterKnown[F any](ids []collections.VariantID, factories map[collections.VariantID]F) []collections.VariantID {
	out := make([]collections.VariantID, 0, len(ids))
	for _, id := range ids {
		if _, ok := factories[id]; ok {
			out = append(out, id)
		}
	}
	return out
}
