package core

import (
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func TestTableFourRules(t *testing.T) {
	rt := Rtime()
	if len(rt.Criteria) != 1 || rt.Criteria[0].Dimension != perfmodel.DimTimeNS || rt.Criteria[0].Threshold != 0.8 {
		t.Fatalf("Rtime = %+v, want time<0.8", rt)
	}
	ra := Ralloc()
	if len(ra.Criteria) != 2 {
		t.Fatalf("Ralloc has %d criteria, want 2", len(ra.Criteria))
	}
	if ra.Criteria[0].Dimension != perfmodel.DimAllocB || ra.Criteria[0].Threshold != 0.8 {
		t.Fatalf("Ralloc C1 = %+v, want alloc<0.8", ra.Criteria[0])
	}
	if ra.Criteria[1].Dimension != perfmodel.DimTimeNS || ra.Criteria[1].Threshold != 1.2 {
		t.Fatalf("Ralloc C2 = %+v, want time<1.2", ra.Criteria[1])
	}
}

func TestRuleValidate(t *testing.T) {
	for _, r := range []Rule{Rtime(), Ralloc(), Rfootprint(), ImpossibleRule()} {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
	bad := []Rule{
		{Name: "empty"},
		{Name: "nonpos", Criteria: []Criterion{{perfmodel.DimTimeNS, 0}}},
		{Name: "neg", Criteria: []Criterion{{perfmodel.DimTimeNS, -1}}},
		{Name: "dup", Criteria: []Criterion{
			{perfmodel.DimTimeNS, 0.8}, {perfmodel.DimTimeNS, 1.2},
		}},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %q validated", r.Name)
		}
	}
}

func TestRuleString(t *testing.T) {
	s := Ralloc().String()
	for _, want := range []string{"Ralloc", "alloc-b<0.80", "time-ns<1.20"} {
		if !strings.Contains(s, want) {
			t.Errorf("Ralloc.String() = %q missing %q", s, want)
		}
	}
}

func TestImpossibleRuleNeverEligible(t *testing.T) {
	// Direct selector-level check: with a 1000x requirement nothing wins.
	models := perfmodel.Default()
	agg := newCostAgg(models, listCandidates())
	for i := 0; i < 10; i++ {
		agg.fold(Workload{Adds: 500, Contains: 100, MaxSize: 500})
	}
	d := decide(agg, "list/array", ImpossibleRule(), 4, 50)
	if d.ok {
		t.Fatalf("impossible rule selected %s", d.switchTo)
	}
}
