package check

import (
	"repro/internal/collections"
	"repro/internal/obs"
)

// Harnesses enumerates the current catalog snapshot: one harness per entry,
// instantiated at int elements/keys through the collections.Int*Factory
// resolvers. Entries that cannot be resolved at int (a custom variant
// registered only for another type) are returned as uncovered — the coverage
// test fails on a non-empty second return, so every future RegisterXVariant
// is pulled into differential checking automatically.
func Harnesses() ([]Harness, []collections.VariantID) {
	var hs []Harness
	var uncovered []collections.VariantID
	for _, e := range collections.Entries() {
		id := e.Info.ID
		switch e.Info.Abstraction {
		case collections.ListAbstraction:
			if f, ok := collections.IntListFactory(id); ok {
				hs = append(hs, NewListHarness(id, f))
				continue
			}
		case collections.SetAbstraction:
			if f, ok := collections.IntSetFactory(id); ok {
				hs = append(hs, NewSetHarness(id, f))
				continue
			}
		case collections.MapAbstraction:
			if f, ok := collections.IntMapFactory(id); ok {
				hs = append(hs, NewMapHarness(id, f))
				continue
			}
		}
		uncovered = append(uncovered, id)
	}
	return hs, uncovered
}

// Config parameterizes a catalog-wide differential run.
type Config struct {
	// Seeds for the op generator; defaults to {1, 2}.
	Seeds []int64
	// Ops per run; defaults to 400.
	Ops int
	// Profiles to run each seed under; defaults to {Mixed, Growth}.
	Profiles []Profile
	// Sink receives CheckCompleted/CheckDivergence events; nil discards.
	Sink obs.Sink
}

// CheckCatalog runs every catalog harness against every seed × profile and
// returns the divergences found (shrunk to minimal sequences). Variants the
// catalog carries but the checker cannot instantiate are NOT silently
// skipped here forever — Harnesses' uncovered list is pinned empty by the
// coverage test.
func CheckCatalog(cfg Config) []*Divergence {
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2}
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if len(cfg.Profiles) == 0 {
		cfg.Profiles = []Profile{Mixed, Growth}
	}
	emit := func(e obs.Event) {
		if cfg.Sink != nil {
			cfg.Sink.Emit(e)
		}
	}
	hs, _ := Harnesses()
	var divs []*Divergence
	for _, h := range hs {
		for _, seed := range cfg.Seeds {
			for _, p := range cfg.Profiles {
				d := h.Check(seed, cfg.Ops, p)
				emit(obs.CheckCompleted{Variant: string(h.ID), Abstraction: string(h.Abstraction),
					Seed: seed, Ops: cfg.Ops, Diverged: d != nil})
				if d != nil {
					divs = append(divs, d)
					emit(obs.CheckDivergence{Variant: string(h.ID), Abstraction: string(h.Abstraction),
						Seed: seed, OpIndex: d.OpIndex, Ops: len(d.Ops), Detail: d.Detail})
				}
			}
		}
	}
	return divs
}
