package check

// The reference oracles: the plainest possible Go implementations of the
// three abstraction contracts. They are deliberately naive — a slice with
// linear scans, native maps — so their behavior is beyond doubt; every
// catalog variant is judged against them.

// listOracle models List semantics on a bare slice.
type listOracle struct{ elems []int }

func (o *listOracle) add(v int) { o.elems = append(o.elems, v) }

func (o *listOracle) insert(i, v int) {
	o.elems = append(o.elems, 0)
	copy(o.elems[i+1:], o.elems[i:])
	o.elems[i] = v
}

func (o *listOracle) removeAt(i int) int {
	v := o.elems[i]
	o.elems = append(o.elems[:i], o.elems[i+1:]...)
	return v
}

// remove deletes the first occurrence of v, per the List contract.
func (o *listOracle) remove(v int) bool {
	if i := o.indexOf(v); i >= 0 {
		o.removeAt(i)
		return true
	}
	return false
}

func (o *listOracle) indexOf(v int) int {
	for i, e := range o.elems {
		if e == v {
			return i
		}
	}
	return -1
}

func (o *listOracle) clear() { o.elems = o.elems[:0] }

// setOracle models Set semantics on a native map.
type setOracle struct{ m map[int]struct{} }

func newSetOracle() *setOracle { return &setOracle{m: make(map[int]struct{})} }

func (o *setOracle) add(v int) bool {
	if _, ok := o.m[v]; ok {
		return false
	}
	o.m[v] = struct{}{}
	return true
}

func (o *setOracle) remove(v int) bool {
	if _, ok := o.m[v]; !ok {
		return false
	}
	delete(o.m, v)
	return true
}

func (o *setOracle) contains(v int) bool { _, ok := o.m[v]; return ok }
func (o *setOracle) clear()              { clear(o.m) }

// mapOracle models Map semantics on a native map.
type mapOracle struct{ m map[int]int }

func newMapOracle() *mapOracle { return &mapOracle{m: make(map[int]int)} }

func (o *mapOracle) put(k, v int) (int, bool) {
	old, ok := o.m[k]
	o.m[k] = v
	return old, ok
}

func (o *mapOracle) remove(k int) (int, bool) {
	old, ok := o.m[k]
	delete(o.m, k)
	return old, ok
}

func (o *mapOracle) get(k int) (int, bool) { v, ok := o.m[k]; return v, ok }
func (o *mapOracle) clear()                { clear(o.m) }
