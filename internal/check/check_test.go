package check

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/collections"
	"repro/internal/obs"
)

// TestDifferentialCatalog is the differential suite: every catalog variant ×
// seeds × profiles against the oracle. Any divergence fails the build (CI
// runs this under go test and again under -race).
func TestDifferentialCatalog(t *testing.T) {
	divs := CheckCatalog(Config{Seeds: []int64{1, 2, 3}, Ops: 400})
	for _, d := range divs {
		t.Errorf("%v\nrepro:\n%s", d, d.Repro())
	}
}

// TestCheckerCoversCatalog diffs the checked-variant set against the catalog
// snapshot: every entry — core, adaptive, sorted, concurrent, custom — must
// resolve to a harness, so a future RegisterXVariant is automatically pulled
// into checking (or fails here if it cannot be instantiated at int).
func TestCheckerCoversCatalog(t *testing.T) {
	hs, uncovered := Harnesses()
	if len(uncovered) != 0 {
		t.Fatalf("catalog entries with no checker harness: %v", uncovered)
	}
	checked := make(map[collections.VariantID]bool, len(hs))
	for _, h := range hs {
		checked[h.ID] = true
	}
	entries := collections.Entries()
	if len(entries) < 29 {
		t.Fatalf("catalog unexpectedly small: %d entries", len(entries))
	}
	if len(hs) != len(entries) {
		t.Fatalf("%d harnesses for %d catalog entries", len(hs), len(entries))
	}
	for _, e := range entries {
		if !checked[e.Info.ID] {
			t.Errorf("catalog entry %s not covered by the checker", e.Info.ID)
		}
	}
	// Adaptive variants must carry their catalog threshold so the
	// transition-transparency invariant is armed.
	armed := 0
	for _, h := range hs {
		if h.Threshold > 0 {
			armed++
		}
	}
	if armed != 3 {
		t.Errorf("%d harnesses have adaptive thresholds, want 3", armed)
	}
}

// collectSink gathers events for assertions.
type collectSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *collectSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func TestCheckCatalogEmitsEvents(t *testing.T) {
	sink := &collectSink{}
	divs := CheckCatalog(Config{Seeds: []int64{1}, Ops: 100, Profiles: []Profile{Mixed}, Sink: sink})
	if len(divs) != 0 {
		t.Fatalf("unexpected divergences: %v", divs)
	}
	hs, _ := Harnesses()
	completed := 0
	for _, e := range sink.events {
		c, ok := e.(obs.CheckCompleted)
		if !ok {
			t.Fatalf("unexpected event %T", e)
		}
		if c.Diverged {
			t.Errorf("event reports divergence for %s", c.Variant)
		}
		completed++
	}
	if completed != len(hs) {
		t.Errorf("%d check_completed events for %d harnesses", completed, len(hs))
	}
}

// buggyList wraps a correct list but removes the LAST occurrence instead of
// the first — the seeded synthetic bug the shrinker test hunts.
type buggyList struct{ collections.List[int] }

func (b *buggyList) Remove(v int) bool {
	last := -1
	for i := 0; i < b.List.Len(); i++ {
		if b.List.Get(i) == v {
			last = i
		}
	}
	if last < 0 {
		return false
	}
	b.List.RemoveAt(last)
	return true
}

// buggyMap wraps a correct map but loses the old value on Remove.
type buggyMap struct{ collections.Map[int, int] }

func (b *buggyMap) Remove(k int) (int, bool) {
	_, ok := b.Map.Remove(k)
	return 0, ok
}

func TestShrinkProducesMinimalListRepro(t *testing.T) {
	h := NewListHarness("list/buggy-last-remove", func(int) collections.List[int] {
		return &buggyList{collections.NewArrayList[int]()}
	})
	var ops []Op
	var d *Divergence
	for seed := int64(1); seed <= 20 && d == nil; seed++ {
		ops = GenOps(collections.ListAbstraction, seed, 400, Mixed)
		d = h.RunOps(ops)
	}
	if d == nil {
		t.Fatal("synthetic last-occurrence-Remove bug never triggered")
	}
	shrunk, sd := Shrink(ops, h.RunOps)
	if sd == nil {
		t.Fatal("shrunk sequence no longer fails")
	}
	// The global minimum for this bug is 4 ops: Add v, Add w, Add v,
	// Remove v (the misordering shows up in the final iteration check).
	if len(shrunk) > 4 {
		t.Errorf("shrunk to %d ops, want <= 4:\n%s", len(shrunk), sd.Repro())
	}
	// 1-minimality: removing any single op must make the sequence pass.
	for i := range shrunk {
		cand := append(append([]Op(nil), shrunk[:i]...), shrunk[i+1:]...)
		if h.RunOps(cand) != nil {
			t.Errorf("not 1-minimal: op %d removable", i)
		}
	}
	repro := sd.Repro()
	for _, want := range []string{"list/buggy-last-remove", "c.Remove(", "c.Add("} {
		if !strings.Contains(repro, want) {
			t.Errorf("repro missing %q:\n%s", want, repro)
		}
	}
}

func TestShrinkProducesMinimalMapRepro(t *testing.T) {
	h := NewMapHarness("map/buggy-remove-old", func(int) collections.Map[int, int] {
		return &buggyMap{collections.NewHashMap[int, int]()}
	})
	var ops []Op
	var d *Divergence
	for seed := int64(1); seed <= 20 && d == nil; seed++ {
		ops = GenOps(collections.MapAbstraction, seed, 400, Mixed)
		d = h.RunOps(ops)
	}
	if d == nil {
		t.Fatal("synthetic Remove-old-value bug never triggered")
	}
	shrunk, sd := Shrink(ops, h.RunOps)
	if sd == nil {
		t.Fatal("shrunk sequence no longer fails")
	}
	// Global minimum: Put(k, v != 0), Remove(k).
	if len(shrunk) != 2 {
		t.Errorf("shrunk to %d ops, want 2:\n%s", len(shrunk), sd.Repro())
	}
	if !strings.Contains(sd.Repro(), "c.Put(") {
		t.Errorf("repro missing the Put:\n%s", sd.Repro())
	}
}

// TestShrinkPassesThroughGreenRuns pins that Shrink reports nil for a
// sequence that does not fail.
func TestShrinkPassesThroughGreenRuns(t *testing.T) {
	h := NewListHarness(collections.ArrayListID, func(c int) collections.List[int] {
		return collections.NewArrayListCap[int](c)
	})
	ops := GenOps(collections.ListAbstraction, 1, 50, Mixed)
	got, d := Shrink(ops, h.RunOps)
	if d != nil {
		t.Fatalf("green run reported divergence: %v", d)
	}
	if len(got) != len(ops) {
		t.Fatalf("green run was shrunk to %d ops", len(got))
	}
}

// TestEncodeDecodeRoundTrip pins that the fuzz byte codec inverts the
// generator output, so corpus seeds replay the exact generated sequences.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, a := range []collections.Abstraction{
		collections.ListAbstraction, collections.SetAbstraction, collections.MapAbstraction,
	} {
		ops := GenOps(a, 5, 200, Mixed)
		decoded := DecodeOps(a, EncodeOps(a, ops))
		if len(decoded) != len(ops) {
			t.Fatalf("%s: round trip length %d, want %d", a, len(decoded), len(ops))
		}
		for i := range ops {
			if decoded[i] != ops[i] {
				t.Fatalf("%s: op %d round-tripped to %+v, want %+v", a, i, decoded[i], ops[i])
			}
		}
	}
}

// TestAdaptiveTransitionInvariantArmed pins that the checker would actually
// catch a broken transition: a harness with a wrong threshold must diverge
// on a growth run.
func TestAdaptiveTransitionInvariantArmed(t *testing.T) {
	h := NewListHarness(collections.AdaptiveListID, func(int) collections.List[int] {
		return collections.NewAdaptiveList[int]()
	})
	if h.Threshold != collections.DefaultListThreshold {
		t.Fatalf("threshold = %d, want %d", h.Threshold, collections.DefaultListThreshold)
	}
	// Sabotage the threshold: the real variant transitions at 80, so
	// claiming 200 must trip the transparency invariant once size exceeds 80.
	h.Threshold = 200
	d := h.Check(1, 600, Growth)
	if d == nil {
		t.Fatal("sabotaged adaptive threshold not detected")
	}
	if !strings.Contains(d.Detail, "Transitioned") {
		t.Fatalf("unexpected detail: %s", d.Detail)
	}
}
