package check

import (
	"fmt"
	"strings"

	"repro/internal/collections"
)

// Shrink reduces a failing op sequence to a 1-minimal one (ddmin-style): it
// repeatedly deletes chunks, halving the chunk size down to single ops, until
// no single-op deletion keeps the sequence failing. fails must be
// deterministic; runs are pure computation, so the quadratic worst case is
// cheap at checker sequence lengths. It returns the shrunk sequence and the
// divergence it still produces (nil if ops did not fail to begin with).
func Shrink(ops []Op, fails func([]Op) *Divergence) ([]Op, *Divergence) {
	last := fails(ops)
	if last == nil {
		return ops, nil
	}
	cur := append([]Op(nil), ops...)
	chunk := (len(cur) + 1) / 2
	for chunk >= 1 {
		removed := false
		for start := 0; start < len(cur); {
			end := min(start+chunk, len(cur))
			cand := make([]Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if d := fails(cand); d != nil {
				cur, last = cand, d
				removed = true
				// cur shrank in place: retry the same start position,
				// where the next chunk has slid in.
			} else {
				start = end
			}
		}
		if chunk > 1 {
			chunk /= 2
		} else if !removed {
			break
		}
	}
	return cur, last
}

// Repro renders the divergence as a runnable Go snippet. List index seeds
// are concretized by replaying the sequence against the oracle, so the
// printed calls use the literal indexes the run used.
func (d *Divergence) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s diverged from the %s oracle (seed %d, %d ops)\n",
		d.Variant, d.Abstraction, d.Seed, len(d.Ops))
	fmt.Fprintf(&b, "// at op %d: %s\n", d.OpIndex, d.Detail)
	switch d.Abstraction {
	case collections.ListAbstraction:
		fmt.Fprintf(&b, "f, _ := collections.IntListFactory(%q)\n", string(d.Variant))
		b.WriteString("c := f(0)\n")
		var o listOracle
		for i, op := range d.Ops {
			if i > d.OpIndex {
				break
			}
			b.WriteString(renderListOp(&o, op))
		}
	case collections.SetAbstraction:
		fmt.Fprintf(&b, "f, _ := collections.IntSetFactory(%q)\n", string(d.Variant))
		b.WriteString("c := f(0)\n")
		for i, op := range d.Ops {
			if i > d.OpIndex {
				break
			}
			b.WriteString(renderSetOp(op))
		}
	case collections.MapAbstraction:
		fmt.Fprintf(&b, "f, _ := collections.IntMapFactory(%q)\n", string(d.Variant))
		b.WriteString("c := f(0)\n")
		for i, op := range d.Ops {
			if i > d.OpIndex {
				break
			}
			b.WriteString(renderMapOp(op))
		}
	}
	if d.OpIndex >= len(d.Ops) {
		b.WriteString("// ...then compare a full ForEach against the expected contents\n")
	}
	return b.String()
}

func renderIterateStop(limit int) string {
	return fmt.Sprintf("{ n := 0; c.ForEach(func(int) bool { n++; return n < %d }) }\n", limit)
}

func renderListOp(o *listOracle, op Op) string {
	switch op.Code {
	case OpAdd:
		o.add(op.V)
		return fmt.Sprintf("c.Add(%d)\n", op.V)
	case OpInsert:
		at := idx(op.K, len(o.elems)+1)
		o.insert(at, op.V)
		return fmt.Sprintf("c.Insert(%d, %d)\n", at, op.V)
	case OpGet:
		if len(o.elems) == 0 {
			return ""
		}
		return fmt.Sprintf("_ = c.Get(%d)\n", idx(op.K, len(o.elems)))
	case OpSet:
		if len(o.elems) == 0 {
			return ""
		}
		at := idx(op.K, len(o.elems))
		o.elems[at] = op.V
		return fmt.Sprintf("c.Set(%d, %d)\n", at, op.V)
	case OpRemoveAt:
		if len(o.elems) == 0 {
			return ""
		}
		at := idx(op.K, len(o.elems))
		o.removeAt(at)
		return fmt.Sprintf("c.RemoveAt(%d)\n", at)
	case OpRemove:
		o.remove(op.V)
		return fmt.Sprintf("c.Remove(%d)\n", op.V)
	case OpContains:
		return fmt.Sprintf("_, _ = c.Contains(%d), c.IndexOf(%d)\n", op.V, op.V)
	case OpLen:
		return "_ = c.Len()\n"
	case OpClear:
		o.clear()
		return "c.Clear()\n"
	case OpIterate:
		return "c.ForEach(func(int) bool { return true })\n"
	case OpIterateStop:
		return renderIterateStop(1 + idx(op.K, keyDomain))
	}
	return ""
}

func renderSetOp(op Op) string {
	switch op.Code {
	case OpAdd:
		return fmt.Sprintf("c.Add(%d)\n", op.K)
	case OpRemove:
		return fmt.Sprintf("c.Remove(%d)\n", op.K)
	case OpContains:
		return fmt.Sprintf("_ = c.Contains(%d)\n", op.K)
	case OpLen:
		return "_ = c.Len()\n"
	case OpClear:
		return "c.Clear()\n"
	case OpIterate:
		return "c.ForEach(func(int) bool { return true })\n"
	case OpIterateStop:
		return renderIterateStop(1 + idx(op.K, keyDomain))
	}
	return ""
}

func renderMapOp(op Op) string {
	switch op.Code {
	case OpAdd:
		return fmt.Sprintf("c.Put(%d, %d)\n", op.K, op.V)
	case OpRemove:
		return fmt.Sprintf("c.Remove(%d)\n", op.K)
	case OpContains:
		return fmt.Sprintf("_, _ = c.Get(%d)\n", op.K)
	case OpLen:
		return "_ = c.Len()\n"
	case OpClear:
		return "c.Clear()\n"
	case OpIterate:
		return "c.ForEach(func(int, int) bool { return true })\n"
	case OpIterateStop:
		return fmt.Sprintf("{ n := 0; c.ForEach(func(int, int) bool { n++; return n < %d }) }\n",
			1+idx(op.K, keyDomain))
	}
	return ""
}
