package check

import (
	"fmt"

	"repro/internal/collections"
)

// Harness couples one variant with the machinery to run differential
// sequences against it. Exactly one of the three factories is set.
type Harness struct {
	ID          collections.VariantID
	Abstraction collections.Abstraction
	// Threshold is the adaptive transition size from the catalog (0 for
	// non-adaptive variants); it drives the transition-transparency check.
	Threshold int64

	newList func(int) collections.List[int]
	newSet  func(int) collections.Set[int]
	newMap  func(int) collections.Map[int, int]
}

// NewListHarness builds a harness around a list factory. The adaptive
// threshold is looked up in the catalog (0 for unregistered IDs).
func NewListHarness(id collections.VariantID, factory func(int) collections.List[int]) Harness {
	return Harness{ID: id, Abstraction: collections.ListAbstraction,
		Threshold: collections.AdaptiveThresholdOf(id), newList: factory}
}

// NewSetHarness builds a harness around a set factory; see NewListHarness.
func NewSetHarness(id collections.VariantID, factory func(int) collections.Set[int]) Harness {
	return Harness{ID: id, Abstraction: collections.SetAbstraction,
		Threshold: collections.AdaptiveThresholdOf(id), newSet: factory}
}

// NewMapHarness builds a harness around a map factory; see NewListHarness.
func NewMapHarness(id collections.VariantID, factory func(int) collections.Map[int, int]) Harness {
	return Harness{ID: id, Abstraction: collections.MapAbstraction,
		Threshold: collections.AdaptiveThresholdOf(id), newMap: factory}
}

// RunOps replays ops against a fresh instance and the oracle in lockstep,
// comparing every return value and re-checking the standing invariants after
// each op; nil means no divergence.
func (h Harness) RunOps(ops []Op) *Divergence {
	switch {
	case h.newList != nil:
		return runList(h, ops)
	case h.newSet != nil:
		return runSet(h, ops)
	default:
		return runMap(h, ops)
	}
}

// Check generates n ops from seed with profile p, replays them, and on
// divergence shrinks to a 1-minimal failing sequence.
func (h Harness) Check(seed int64, n int, p Profile) *Divergence {
	d := h.RunOps(GenOps(h.Abstraction, seed, n, p))
	if d == nil {
		return nil
	}
	if _, sd := Shrink(d.Ops, h.RunOps); sd != nil {
		d = sd
	}
	d.Seed = seed
	return d
}

// idx maps an arbitrary index seed into [0, n).
func idx(k, n int) int {
	i := k % n
	if i < 0 {
		i += n
	}
	return i
}

// runState carries the standing-invariant state threaded through one run.
type runState struct {
	maxSize       int // max oracle size since the last Clear
	prevFootprint int
}

// invariants re-checks the standing invariants after one op: Len equality,
// footprint positivity and growth-monotonicity, and adaptive-transition
// transparency. grew reports whether the op strictly increased the oracle
// size. It returns a non-empty detail string on violation.
func (h Harness) invariants(c any, oracleLen int, grew bool, st *runState) string {
	if got := c.(interface{ Len() int }).Len(); got != oracleLen {
		return fmt.Sprintf("Len = %d, oracle %d", got, oracleLen)
	}
	if oracleLen > st.maxSize {
		st.maxSize = oracleLen
	}
	if s, ok := c.(collections.Sizer); ok {
		fp := s.FootprintBytes()
		if fp <= 0 {
			return fmt.Sprintf("FootprintBytes = %d, want positive", fp)
		}
		if grew && fp < st.prevFootprint {
			return fmt.Sprintf("footprint shrank %d -> %d on a growing op (size %d)",
				st.prevFootprint, fp, oracleLen)
		}
		st.prevFootprint = fp
	}
	if h.Threshold > 0 {
		if a, ok := c.(collections.Adaptive); ok {
			want := int64(st.maxSize) > h.Threshold
			if got := a.Transitioned(); got != want {
				return fmt.Sprintf("Transitioned() = %v with max size %d and threshold %d",
					got, st.maxSize, h.Threshold)
			}
		}
	}
	return ""
}

func runList(h Harness, ops []Op) *Divergence {
	l := h.newList(0)
	var o listOracle
	var st runState
	div := func(i int, format string, args ...any) *Divergence {
		return &Divergence{Variant: h.ID, Abstraction: h.Abstraction,
			Ops: ops, OpIndex: i, Detail: fmt.Sprintf(format, args...)}
	}
	for i, op := range ops {
		sizeBefore := len(o.elems)
		switch op.Code {
		case OpAdd:
			l.Add(op.V)
			o.add(op.V)
		case OpInsert:
			at := idx(op.K, len(o.elems)+1)
			l.Insert(at, op.V)
			o.insert(at, op.V)
		case OpGet:
			if len(o.elems) == 0 {
				continue
			}
			at := idx(op.K, len(o.elems))
			if got, want := l.Get(at), o.elems[at]; got != want {
				return div(i, "Get(%d) = %d, oracle %d", at, got, want)
			}
		case OpSet:
			if len(o.elems) == 0 {
				continue
			}
			at := idx(op.K, len(o.elems))
			want := o.elems[at]
			o.elems[at] = op.V
			if got := l.Set(at, op.V); got != want {
				return div(i, "Set(%d, %d) = %d, oracle %d", at, op.V, got, want)
			}
		case OpRemoveAt:
			if len(o.elems) == 0 {
				continue
			}
			at := idx(op.K, len(o.elems))
			want := o.removeAt(at)
			if got := l.RemoveAt(at); got != want {
				return div(i, "RemoveAt(%d) = %d, oracle %d", at, got, want)
			}
		case OpRemove:
			want := o.remove(op.V)
			if got := l.Remove(op.V); got != want {
				return div(i, "Remove(%d) = %v, oracle %v", op.V, got, want)
			}
		case OpContains:
			if got, want := l.Contains(op.V), o.indexOf(op.V) >= 0; got != want {
				return div(i, "Contains(%d) = %v, oracle %v", op.V, got, want)
			}
			if got, want := l.IndexOf(op.V), o.indexOf(op.V); got != want {
				return div(i, "IndexOf(%d) = %d, oracle %d", op.V, got, want)
			}
		case OpLen:
			// Len is compared by invariants after every op.
		case OpClear:
			l.Clear()
			o.clear()
			st = runState{}
		case OpIterate:
			var got []int
			l.ForEach(func(v int) bool { got = append(got, v); return true })
			if detail := compareListIteration(got, o.elems); detail != "" {
				return div(i, "%s", detail)
			}
		case OpIterateStop:
			limit := 1 + idx(op.K, keyDomain)
			calls := 0
			l.ForEach(func(int) bool { calls++; return calls < limit })
			if want := min(limit, len(o.elems)); calls != want {
				return div(i, "ForEach stopped at limit %d made %d callbacks, want %d", limit, calls, want)
			}
		}
		if detail := h.invariants(l, len(o.elems), len(o.elems) > sizeBefore, &st); detail != "" {
			return div(i, "%s", detail)
		}
	}
	var got []int
	l.ForEach(func(v int) bool { got = append(got, v); return true })
	if detail := compareListIteration(got, o.elems); detail != "" {
		return div(len(ops), "final iteration: %s", detail)
	}
	return nil
}

func compareListIteration(got, want []int) string {
	if len(got) != len(want) {
		return fmt.Sprintf("iteration visited %d elements, oracle has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("iteration[%d] = %d, oracle %d", i, got[i], want[i])
		}
	}
	return ""
}

func runSet(h Harness, ops []Op) *Divergence {
	s := h.newSet(0)
	o := newSetOracle()
	var st runState
	div := func(i int, format string, args ...any) *Divergence {
		return &Divergence{Variant: h.ID, Abstraction: h.Abstraction,
			Ops: ops, OpIndex: i, Detail: fmt.Sprintf(format, args...)}
	}
	for i, op := range ops {
		sizeBefore := len(o.m)
		switch op.Code {
		case OpAdd:
			want := o.add(op.K)
			if got := s.Add(op.K); got != want {
				return div(i, "Add(%d) = %v, oracle %v", op.K, got, want)
			}
		case OpRemove:
			want := o.remove(op.K)
			if got := s.Remove(op.K); got != want {
				return div(i, "Remove(%d) = %v, oracle %v", op.K, got, want)
			}
		case OpContains:
			if got, want := s.Contains(op.K), o.contains(op.K); got != want {
				return div(i, "Contains(%d) = %v, oracle %v", op.K, got, want)
			}
		case OpLen:
		case OpClear:
			s.Clear()
			o.clear()
			st = runState{}
		case OpIterate:
			if detail := compareSetIteration(s, o); detail != "" {
				return div(i, "%s", detail)
			}
		case OpIterateStop:
			limit := 1 + idx(op.K, keyDomain)
			calls := 0
			s.ForEach(func(int) bool { calls++; return calls < limit })
			if want := min(limit, len(o.m)); calls != want {
				return div(i, "ForEach stopped at limit %d made %d callbacks, want %d", limit, calls, want)
			}
		}
		if detail := h.invariants(s, len(o.m), len(o.m) > sizeBefore, &st); detail != "" {
			return div(i, "%s", detail)
		}
	}
	if detail := compareSetIteration(s, o); detail != "" {
		return div(len(ops), "final iteration: %s", detail)
	}
	return nil
}

func compareSetIteration(s collections.Set[int], o *setOracle) string {
	seen := make(map[int]bool, len(o.m))
	dup, missing := 0, 0
	var firstBad int
	bad := false
	s.ForEach(func(v int) bool {
		if seen[v] {
			dup++
		}
		seen[v] = true
		if !o.contains(v) {
			missing++
			if !bad {
				firstBad, bad = v, true
			}
		}
		return true
	})
	switch {
	case dup > 0:
		return fmt.Sprintf("iteration produced %d duplicate elements", dup)
	case missing > 0:
		return fmt.Sprintf("iteration produced %d (and %d more) not in the oracle", firstBad, missing-1)
	case len(seen) != len(o.m):
		return fmt.Sprintf("iteration visited %d elements, oracle has %d", len(seen), len(o.m))
	}
	return ""
}

func runMap(h Harness, ops []Op) *Divergence {
	m := h.newMap(0)
	o := newMapOracle()
	var st runState
	div := func(i int, format string, args ...any) *Divergence {
		return &Divergence{Variant: h.ID, Abstraction: h.Abstraction,
			Ops: ops, OpIndex: i, Detail: fmt.Sprintf(format, args...)}
	}
	for i, op := range ops {
		sizeBefore := len(o.m)
		switch op.Code {
		case OpAdd:
			wantV, wantOK := o.put(op.K, op.V)
			if gotV, gotOK := m.Put(op.K, op.V); gotOK != wantOK || (wantOK && gotV != wantV) {
				return div(i, "Put(%d, %d) = %d,%v, oracle %d,%v", op.K, op.V, gotV, gotOK, wantV, wantOK)
			}
		case OpRemove:
			wantV, wantOK := o.remove(op.K)
			if gotV, gotOK := m.Remove(op.K); gotOK != wantOK || (wantOK && gotV != wantV) {
				return div(i, "Remove(%d) = %d,%v, oracle %d,%v", op.K, gotV, gotOK, wantV, wantOK)
			}
		case OpContains:
			wantV, wantOK := o.get(op.K)
			if gotV, gotOK := m.Get(op.K); gotOK != wantOK || (wantOK && gotV != wantV) {
				return div(i, "Get(%d) = %d,%v, oracle %d,%v", op.K, gotV, gotOK, wantV, wantOK)
			}
			if got := m.ContainsKey(op.K); got != wantOK {
				return div(i, "ContainsKey(%d) = %v, oracle %v", op.K, got, wantOK)
			}
		case OpLen:
		case OpClear:
			m.Clear()
			o.clear()
			st = runState{}
		case OpIterate:
			if detail := compareMapIteration(m, o); detail != "" {
				return div(i, "%s", detail)
			}
		case OpIterateStop:
			limit := 1 + idx(op.K, keyDomain)
			calls := 0
			m.ForEach(func(int, int) bool { calls++; return calls < limit })
			if want := min(limit, len(o.m)); calls != want {
				return div(i, "ForEach stopped at limit %d made %d callbacks, want %d", limit, calls, want)
			}
		}
		if detail := h.invariants(m, len(o.m), len(o.m) > sizeBefore, &st); detail != "" {
			return div(i, "%s", detail)
		}
	}
	if detail := compareMapIteration(m, o); detail != "" {
		return div(len(ops), "final iteration: %s", detail)
	}
	return nil
}

func compareMapIteration(m collections.Map[int, int], o *mapOracle) string {
	seen := make(map[int]bool, len(o.m))
	detail := ""
	m.ForEach(func(k, v int) bool {
		if seen[k] {
			detail = fmt.Sprintf("iteration produced key %d twice", k)
			return false
		}
		seen[k] = true
		if want, ok := o.get(k); !ok || want != v {
			detail = fmt.Sprintf("iteration produced (%d, %d), oracle has %d,%v", k, v, want, ok)
			return false
		}
		return true
	})
	if detail != "" {
		return detail
	}
	if len(seen) != len(o.m) {
		return fmt.Sprintf("iteration visited %d entries, oracle has %d", len(seen), len(o.m))
	}
	return ""
}
