package check

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/collections"
)

// The concurrent mode: instead of a lockstep oracle (meaningless under
// interleaving), the hammers assert linearizability-lite properties that
// hold for any correct mutex-guarded implementation, and full oracle-style
// self-consistency once the goroutines have quiesced. Run these under
// -race: the assertions catch lost updates and phantom values, the race
// detector catches unsynchronized access.

// HammerConfig parameterizes the concurrent checkers.
type HammerConfig struct {
	Goroutines int   // default 8
	OpsPerG    int   // default 5000
	Keys       int   // key universe size, default 64
	Seed       int64 // default 1
}

func (c *HammerConfig) defaults() {
	if c.Goroutines <= 0 {
		c.Goroutines = 8
	}
	if c.OpsPerG <= 0 {
		c.OpsPerG = 5000
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// HammerMap drives a concurrency-safe map from N goroutines. The per-key
// assertion is linearizability-lite: every value observed for a key must be
// one that was actually Put for that key (values are globally unique and
// recorded before the Put, so a concurrent observer can always validate).
// After quiescing, iteration, Get and Len must agree with each other.
func HammerMap(factory func(int) collections.Map[int, int], cfg HammerConfig) error {
	cfg.defaults()
	m := factory(0)
	written := make([]struct {
		mu   sync.Mutex
		vals map[int]bool
	}, cfg.Keys)
	for i := range written {
		written[i].vals = make(map[int]bool)
	}
	record := func(k, v int) {
		written[k].mu.Lock()
		written[k].vals[v] = true
		written[k].mu.Unlock()
	}
	wasWritten := func(k, v int) bool {
		written[k].mu.Lock()
		defer written[k].mu.Unlock()
		return written[k].vals[v]
	}
	errs := make(chan error, cfg.Goroutines)
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(gid)))
			for i := 0; i < cfg.OpsPerG; i++ {
				k := rng.Intn(cfg.Keys)
				switch r := rng.Intn(100); {
				case r < 50:
					v := gid*cfg.OpsPerG + i // globally unique value
					record(k, v)             // before the Put, see above
					m.Put(k, v)
				case r < 75:
					if v, ok := m.Get(k); ok && !wasWritten(k, v) {
						errs <- fmt.Errorf("Get(%d) observed %d, never Put for that key", k, v)
						return
					}
				case r < 90:
					m.Remove(k)
				default:
					m.ContainsKey(k)
					m.Len() // approximate under mutation; value unasserted
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	// Quiesced self-consistency.
	count := 0
	var ferr error
	m.ForEach(func(k, v int) bool {
		count++
		if k < 0 || k >= cfg.Keys || !wasWritten(k, v) {
			ferr = fmt.Errorf("iteration observed (%d, %d), never Put", k, v)
			return false
		}
		if got, ok := m.Get(k); !ok || got != v {
			ferr = fmt.Errorf("Get(%d) = %d,%v disagrees with iterated value %d", k, got, ok, v)
			return false
		}
		return true
	})
	if ferr != nil {
		return ferr
	}
	if got := m.Len(); got != count {
		return fmt.Errorf("quiesced Len = %d, iteration count %d", got, count)
	}
	return nil
}

// HammerSet drives a concurrency-safe set. Each key has one owner goroutine
// (key mod Goroutines) that asserts its own Add/Remove return values against
// local bookkeeping — no other goroutine mutates that key, so the owner's
// view is authoritative — while the others probe Contains and iterate
// concurrently. Quiesced membership must equal the owners' final states.
func HammerSet(factory func(int) collections.Set[int], cfg HammerConfig) error {
	cfg.defaults()
	s := factory(0)
	expected := make([]map[int]bool, cfg.Goroutines)
	for g := range expected {
		expected[g] = make(map[int]bool)
	}
	errs := make(chan error, cfg.Goroutines)
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(gid)))
			mine := expected[gid]
			for i := 0; i < cfg.OpsPerG; i++ {
				k := rng.Intn(cfg.Keys)
				owned := k%cfg.Goroutines == gid
				switch r := rng.Intn(100); {
				case owned && r < 55:
					// Add must report a change exactly when the owner knows
					// the key absent.
					if changed := s.Add(k); changed == mine[k] {
						errs <- fmt.Errorf("Add(%d) = %v with owner-known membership %v", k, changed, mine[k])
						return
					}
					mine[k] = true
				case owned && r < 80:
					if changed := s.Remove(k); changed != mine[k] {
						errs <- fmt.Errorf("Remove(%d) = %v with owner-known membership %v", k, changed, mine[k])
						return
					}
					mine[k] = false
				case r < 90:
					s.Contains(k) // cross-owner probe: unasserted, must be race-free
				default:
					n := 0
					s.ForEach(func(int) bool { n++; return n < 4 })
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	want := 0
	for k := 0; k < cfg.Keys; k++ {
		exp := expected[k%cfg.Goroutines][k]
		if exp {
			want++
		}
		if got := s.Contains(k); got != exp {
			return fmt.Errorf("quiesced Contains(%d) = %v, owner expects %v", k, got, exp)
		}
	}
	if got := s.Len(); got != want {
		return fmt.Errorf("quiesced Len = %d, owners expect %d", got, want)
	}
	count := 0
	s.ForEach(func(int) bool { count++; return true })
	if count != want {
		return fmt.Errorf("quiesced iteration count = %d, owners expect %d", count, want)
	}
	return nil
}
