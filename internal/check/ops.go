package check

import (
	"math/rand"

	"repro/internal/collections"
)

// OpCode enumerates the operations the checker can replay. The first block
// is shared by all abstractions; the second is list-specific (positional).
type OpCode uint8

const (
	OpAdd         OpCode = iota // list Add(V) / set Add(K) / map Put(K, V)
	OpRemove                    // list Remove(V) / set Remove(K) / map Remove(K)
	OpContains                  // list Contains(V)+IndexOf(V) / set Contains(K) / map Get(K)+ContainsKey(K)
	OpLen                       // explicit Len probe (Len is also checked after every op)
	OpClear                     // Clear
	OpIterate                   // full ForEach, compared against the oracle
	OpIterateStop               // ForEach stopped after 1+|K| mod 64 callbacks
	OpInsert                    // list Insert(idx, V)
	OpGet                       // list Get(idx)
	OpSet                       // list Set(idx, V)
	OpRemoveAt                  // list RemoveAt(idx)
)

// Op is one decoded operation. For sets and maps K is the key and V the
// value; for lists V is the element and K the index seed of positional ops,
// normalized into the valid range at apply time so every sequence is legal.
type Op struct {
	Code OpCode
	K, V int
}

// listOpSet and kvOpSet are the per-abstraction op vocabularies; the byte
// decoder maps any input byte onto them, so every fuzz input is a valid
// sequence.
var (
	listOpSet = []OpCode{OpAdd, OpRemove, OpContains, OpLen, OpClear,
		OpIterate, OpIterateStop, OpInsert, OpGet, OpSet, OpRemoveAt}
	kvOpSet = []OpCode{OpAdd, OpRemove, OpContains, OpLen, OpClear,
		OpIterate, OpIterateStop}
)

// The key universe: 64 values including negatives, small enough that random
// sequences collide constantly (exercising duplicate/overwrite paths) and
// wide enough to push the adaptive sets and maps past their transition
// thresholds (40 and 50).
const (
	keyDomain = 64
	keyMin    = -8
)

func opSetFor(a collections.Abstraction) []OpCode {
	if a == collections.ListAbstraction {
		return listOpSet
	}
	return kvOpSet
}

// DecodeOps turns a byte stream into an op sequence over the vocabulary of
// abstraction a — three bytes per op — the front end of the fuzz targets.
func DecodeOps(a collections.Abstraction, data []byte) []Op {
	set := opSetFor(a)
	var ops []Op
	for i := 0; i+2 < len(data); i += 3 {
		ops = append(ops, Op{
			Code: set[int(data[i])%len(set)],
			K:    int(data[i+1]%keyDomain) + keyMin,
			V:    int(data[i+2]%keyDomain) + keyMin,
		})
	}
	return ops
}

// EncodeOps is the inverse of DecodeOps for ops whose K and V lie in the key
// domain (all generator output); it seeds the fuzz corpus.
func EncodeOps(a collections.Abstraction, ops []Op) []byte {
	set := opSetFor(a)
	buf := make([]byte, 0, 3*len(ops))
	for _, op := range ops {
		ci := 0
		for i, c := range set {
			if c == op.Code {
				ci = i
				break
			}
		}
		buf = append(buf, byte(ci), byte(op.K-keyMin), byte(op.V-keyMin))
	}
	return buf
}

// Profile selects the op mix of the seeded generator.
type Profile int

const (
	// Mixed exercises every operation with light churn and occasional Clear.
	Mixed Profile = iota
	// Growth is add-heavy with no Clear, so adaptive variants reliably cross
	// their transition threshold within a few hundred ops.
	Growth
)

// GenOps generates n deterministic ops for abstraction a from seed.
func GenOps(a collections.Abstraction, seed int64, n int, p Profile) []Op {
	rng := rand.New(rand.NewSource(seed))
	isList := a == collections.ListAbstraction
	pick := func() OpCode {
		r := rng.Intn(100)
		if p == Growth {
			if r < 65 {
				return OpAdd
			}
			if isList {
				reads := []OpCode{OpContains, OpGet, OpSet, OpInsert, OpIterate, OpIterateStop, OpLen}
				return reads[rng.Intn(len(reads))]
			}
			reads := []OpCode{OpContains, OpIterate, OpIterateStop, OpLen}
			return reads[rng.Intn(len(reads))]
		}
		switch {
		case r < 40:
			return OpAdd
		case r < 55:
			if isList && r < 48 {
				return OpRemoveAt
			}
			return OpRemove
		case r < 75:
			if isList && r < 65 {
				return OpGet
			}
			return OpContains
		case r < 83:
			if isList {
				return []OpCode{OpInsert, OpSet}[rng.Intn(2)]
			}
			return OpAdd
		case r < 90:
			return OpIterate
		case r < 95:
			return OpIterateStop
		case r < 98:
			return OpLen
		default:
			return OpClear
		}
	}
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Code: pick(), K: keyMin + rng.Intn(keyDomain), V: keyMin + rng.Intn(keyDomain)}
	}
	return ops
}
