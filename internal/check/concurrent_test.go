package check

import (
	"strings"
	"testing"

	"repro/internal/collections"
)

// The hammer suite runs over every concurrent catalog variant. Under the CI
// race job these same tests execute with -race, which upgrades them from
// assertion checks to full data-race detection.

func hammerOps(t *testing.T) int {
	if testing.Short() {
		return 1500
	}
	_ = t
	return 5000
}

func TestHammerConcurrentMaps(t *testing.T) {
	for _, id := range []collections.VariantID{collections.SyncMapID, collections.ShardedMapID} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			t.Parallel()
			f, ok := collections.IntMapFactory(id)
			if !ok {
				t.Fatalf("no int factory for %s", id)
			}
			for seed := int64(1); seed <= 3; seed++ {
				if err := HammerMap(f, HammerConfig{Seed: seed, OpsPerG: hammerOps(t)}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestHammerSyncSet(t *testing.T) {
	f, ok := collections.IntSetFactory(collections.SyncSetID)
	if !ok {
		t.Fatal("no int factory for set/sync")
	}
	for seed := int64(1); seed <= 3; seed++ {
		if err := HammerSet(f, HammerConfig{Seed: seed, OpsPerG: hammerOps(t)}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// misroutedMap is a deliberately broken "concurrent" map: every 200th value
// is stored under the neighboring key — the shape of a sharding bug. The
// per-key value-uniqueness rule must catch the foreign value on observation
// or at quiesce — proof the linearizability-lite assertions have teeth.
type misroutedMap struct {
	collections.Map[int, int]
	keys int
}

func (m *misroutedMap) Put(k, v int) (int, bool) {
	if v%200 == 17 {
		k = (k + 1) % m.keys
	}
	return m.Map.Put(k, v)
}

func TestHammerMapDetectsMisroutedWrites(t *testing.T) {
	failed := false
	for seed := int64(1); seed <= 5 && !failed; seed++ {
		err := HammerMap(func(int) collections.Map[int, int] {
			return &misroutedMap{Map: collections.NewSyncMap[int, int](0), keys: 64}
		}, HammerConfig{Goroutines: 2, OpsPerG: 10000, Seed: seed})
		failed = err != nil
	}
	if !failed {
		t.Fatal("misrouted writes never detected")
	}
}

// phantomMap invents values: Get returns v+1 for one key in a thousand.
type phantomMap struct{ collections.Map[int, int] }

func (m *phantomMap) Get(k int) (int, bool) {
	v, ok := m.Map.Get(k)
	if ok && k == 13 {
		return v + 1, ok
	}
	return v, ok
}

func TestHammerMapDetectsPhantomValues(t *testing.T) {
	err := HammerMap(func(int) collections.Map[int, int] {
		return &phantomMap{collections.NewSyncMap[int, int](0)}
	}, HammerConfig{Goroutines: 2, OpsPerG: 5000})
	if err == nil {
		t.Fatal("phantom value never detected")
	}
	if !strings.Contains(err.Error(), "never Put") && !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// brokenAddSet returns the wrong changed flag on re-Add.
type brokenAddSet struct{ collections.Set[int] }

func (s *brokenAddSet) Add(v int) bool {
	s.Set.Add(v)
	return true // claims a change even when v was present
}

func TestHammerSetDetectsWrongReturns(t *testing.T) {
	err := HammerSet(func(int) collections.Set[int] {
		return &brokenAddSet{collections.NewSyncSet[int](0)}
	}, HammerConfig{Goroutines: 2, OpsPerG: 2000})
	if err == nil {
		t.Fatal("wrong Add return never detected")
	}
	if !strings.Contains(err.Error(), "Add(") {
		t.Fatalf("unexpected error: %v", err)
	}
}
