// Package check is the differential oracle checker of the variant catalog.
//
// CollectionSwitch's selection engine may hand a caller any candidate variant
// and switch it mid-run, so every variant of an abstraction must be
// behaviorally interchangeable — a semantic divergence between two list
// variants is silent data corruption, not a visible failure. This package
// proves interchangeability mechanically instead of per-variant hand-written
// tests: it replays randomized operation sequences against a catalog variant
// and a reference oracle (a plain Go slice or map) in lockstep, comparing
// every return value and re-checking standing invariants after each step:
//
//   - Len agrees with the oracle after every operation;
//   - full iteration visits exactly Len elements and matches the oracle
//     (exact order for lists, multiset equality for sets and maps);
//   - early-stopped iteration makes exactly min(limit, Len) callbacks;
//   - FootprintBytes stays positive and never shrinks across an operation
//     that grew the collection;
//   - adaptive variants report Transitioned() exactly when the maximum size
//     since the last Clear exceeded their catalog threshold.
//
// Sequences are deterministic (seeded) or decoded from fuzz byte streams
// (see DecodeOps and the Fuzz*Oracle targets). Failures shrink to a
// 1-minimal reproducing sequence (Shrink) and print as runnable Go
// (Divergence.Repro). Harnesses enumerates the catalog snapshot, so a
// user-registered variant is pulled into checking automatically; the
// concurrent wrappers additionally get hammered from N goroutines with
// linearizability-lite assertions (HammerMap, HammerSet) under -race.
package check

import (
	"fmt"

	"repro/internal/collections"
)

// Divergence describes one point where a variant's observable behavior left
// the oracle's.
type Divergence struct {
	Variant     collections.VariantID
	Abstraction collections.Abstraction
	Seed        int64 // 0 when the ops came from fuzz input
	Ops         []Op  // the (possibly shrunk) op sequence
	OpIndex     int   // index of the diverging op; len(Ops) means the final iteration check
	Detail      string
}

// Error renders the divergence as a one-line summary.
func (d *Divergence) Error() string {
	return fmt.Sprintf("%s diverged at op %d/%d: %s", d.Variant, d.OpIndex, len(d.Ops), d.Detail)
}
