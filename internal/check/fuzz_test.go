package check

import (
	"testing"

	"repro/internal/collections"
)

// The native fuzz targets: each decodes the byte stream into an op sequence
// and replays it against EVERY catalog variant of the abstraction, so one
// interesting input probes the whole variant family at once. The corpus is
// seeded with generator output (EncodeOps inverts DecodeOps), including
// growth runs long enough to cross the adaptive transition thresholds.
// CI runs each target for a short smoke budget; run locally with e.g.
//
//	go test ./internal/check -fuzz FuzzListOracle -fuzztime 60s

func harnessesOf(a collections.Abstraction) []Harness {
	hs, _ := Harnesses()
	var out []Harness
	for _, h := range hs {
		if h.Abstraction == a {
			out = append(out, h)
		}
	}
	return out
}

func seedCorpus(f *testing.F, a collections.Abstraction) {
	for _, seed := range []int64{1, 2} {
		f.Add(EncodeOps(a, GenOps(a, seed, 60, Mixed)))
		f.Add(EncodeOps(a, GenOps(a, seed, 150, Growth)))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 0, 0, 5, 0, 0})
}

func fuzzOracle(f *testing.F, a collections.Abstraction) {
	seedCorpus(f, a)
	hs := harnessesOf(a)
	if len(hs) == 0 {
		f.Fatal("no harnesses")
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := DecodeOps(a, data)
		if len(ops) == 0 {
			return
		}
		for _, h := range hs {
			if d := h.RunOps(ops); d != nil {
				if _, sd := Shrink(ops, h.RunOps); sd != nil {
					d = sd
				}
				t.Fatalf("%v\nrepro:\n%s", d, d.Repro())
			}
		}
	})
}

func FuzzListOracle(f *testing.F) { fuzzOracle(f, collections.ListAbstraction) }
func FuzzSetOracle(f *testing.F)  { fuzzOracle(f, collections.SetAbstraction) }
func FuzzMapOracle(f *testing.F)  { fuzzOracle(f, collections.MapAbstraction) }
