package collections

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// opScript is a randomly generated sequence of collection operations; its
// Generate method makes it usable directly with testing/quick.
type opScript struct {
	Ops []scriptOp
}

type scriptOp struct {
	Kind uint8 // interpreted modulo the per-abstraction op count
	Arg  int16 // value / key material
	Pos  uint8 // positional material for lists
}

// Generate implements quick.Generator, producing scripts of up to 400 ops
// with arguments drawn from a small domain so that duplicates, collisions
// and remove-hits are frequent.
func (opScript) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 50 + r.Intn(350)
	ops := make([]scriptOp, n)
	for i := range ops {
		ops[i] = scriptOp{
			Kind: uint8(r.Intn(256)),
			Arg:  int16(r.Intn(128)),
			Pos:  uint8(r.Intn(256)),
		}
	}
	return reflect.ValueOf(opScript{Ops: ops})
}

// listOracle replays a script against both a variant and a plain slice,
// failing the test at the first observable divergence.
func runListScript(t *testing.T, id VariantID, l List[int], script opScript) {
	t.Helper()
	var oracle []int
	for step, op := range script.Ops {
		switch op.Kind % 7 {
		case 0: // Add
			l.Add(int(op.Arg))
			oracle = append(oracle, int(op.Arg))
		case 1: // Insert
			if len(oracle) == 0 {
				continue
			}
			pos := int(op.Pos) % (len(oracle) + 1)
			l.Insert(pos, int(op.Arg))
			oracle = append(oracle, 0)
			copy(oracle[pos+1:], oracle[pos:])
			oracle[pos] = int(op.Arg)
		case 2: // RemoveAt
			if len(oracle) == 0 {
				continue
			}
			pos := int(op.Pos) % len(oracle)
			got := l.RemoveAt(pos)
			want := oracle[pos]
			oracle = append(oracle[:pos], oracle[pos+1:]...)
			if got != want {
				t.Fatalf("%s step %d: RemoveAt(%d) = %d, oracle %d", id, step, pos, got, want)
			}
		case 3: // Remove by value
			got := l.Remove(int(op.Arg))
			want := false
			for i, v := range oracle {
				if v == int(op.Arg) {
					oracle = append(oracle[:i], oracle[i+1:]...)
					want = true
					break
				}
			}
			if got != want {
				t.Fatalf("%s step %d: Remove(%d) = %v, oracle %v", id, step, op.Arg, got, want)
			}
		case 4: // Contains + IndexOf
			got := l.IndexOf(int(op.Arg))
			want := -1
			for i, v := range oracle {
				if v == int(op.Arg) {
					want = i
					break
				}
			}
			if got != want {
				t.Fatalf("%s step %d: IndexOf(%d) = %d, oracle %d", id, step, op.Arg, got, want)
			}
			if c := l.Contains(int(op.Arg)); c != (want >= 0) {
				t.Fatalf("%s step %d: Contains(%d) = %v, oracle %v", id, step, op.Arg, c, want >= 0)
			}
		case 5: // Set
			if len(oracle) == 0 {
				continue
			}
			pos := int(op.Pos) % len(oracle)
			got := l.Set(pos, int(op.Arg))
			if got != oracle[pos] {
				t.Fatalf("%s step %d: Set(%d) returned %d, oracle %d", id, step, pos, got, oracle[pos])
			}
			oracle[pos] = int(op.Arg)
		case 6: // Get
			if len(oracle) == 0 {
				continue
			}
			pos := int(op.Pos) % len(oracle)
			if got := l.Get(pos); got != oracle[pos] {
				t.Fatalf("%s step %d: Get(%d) = %d, oracle %d", id, step, pos, got, oracle[pos])
			}
		}
		if l.Len() != len(oracle) {
			t.Fatalf("%s step %d: Len = %d, oracle %d", id, step, l.Len(), len(oracle))
		}
	}
	// Final full-state comparison via ForEach.
	i := 0
	l.ForEach(func(v int) bool {
		if i >= len(oracle) || v != oracle[i] {
			t.Fatalf("%s final: element %d = %d, oracle %v", id, i, v, oracle)
		}
		i++
		return true
	})
	if i != len(oracle) {
		t.Fatalf("%s final: iterated %d elements, oracle has %d", id, i, len(oracle))
	}
}

func TestListPropertyOracle(t *testing.T) {
	for _, v := range ListVariants[int]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			f := func(script opScript) bool {
				runListScript(t, v.ID, v.New(0), script)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("list/adaptive-threshold5", func(t *testing.T) {
		f := func(script opScript) bool {
			runListScript(t, "adaptive-5", NewAdaptiveListThreshold[int](5), script)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

func runSetScript(t *testing.T, id VariantID, s Set[int], script opScript) {
	t.Helper()
	oracle := make(map[int]bool)
	for step, op := range script.Ops {
		arg := int(op.Arg)
		switch op.Kind % 3 {
		case 0: // Add
			got := s.Add(arg)
			want := !oracle[arg]
			oracle[arg] = true
			if got != want {
				t.Fatalf("%s step %d: Add(%d) = %v, oracle %v", id, step, arg, got, want)
			}
		case 1: // Remove
			got := s.Remove(arg)
			want := oracle[arg]
			delete(oracle, arg)
			if got != want {
				t.Fatalf("%s step %d: Remove(%d) = %v, oracle %v", id, step, arg, got, want)
			}
		case 2: // Contains
			if got := s.Contains(arg); got != oracle[arg] {
				t.Fatalf("%s step %d: Contains(%d) = %v, oracle %v", id, step, arg, got, oracle[arg])
			}
		}
		if s.Len() != len(oracle) {
			t.Fatalf("%s step %d: Len = %d, oracle %d", id, step, s.Len(), len(oracle))
		}
	}
	seen := make(map[int]bool)
	s.ForEach(func(v int) bool {
		if seen[v] {
			t.Fatalf("%s final: duplicate element %d in iteration", id, v)
		}
		seen[v] = true
		if !oracle[v] {
			t.Fatalf("%s final: phantom element %d", id, v)
		}
		return true
	})
	if len(seen) != len(oracle) {
		t.Fatalf("%s final: iterated %d elements, oracle has %d", id, len(seen), len(oracle))
	}
}

func TestSetPropertyOracle(t *testing.T) {
	for _, v := range SetVariants[int]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			f := func(script opScript) bool {
				runSetScript(t, v.ID, v.New(0), script)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("set/adaptive-threshold5", func(t *testing.T) {
		f := func(script opScript) bool {
			runSetScript(t, "adaptive-5", NewAdaptiveSetThreshold[int](5), script)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

func runMapScript(t *testing.T, id VariantID, m Map[int, int], script opScript) {
	t.Helper()
	oracle := make(map[int]int)
	for step, op := range script.Ops {
		k := int(op.Arg)
		v := int(op.Pos)
		switch op.Kind % 4 {
		case 0: // Put
			got, present := m.Put(k, v)
			wantVal, wantPresent := oracle[k]
			oracle[k] = v
			if present != wantPresent || (present && got != wantVal) {
				t.Fatalf("%s step %d: Put(%d) = %d,%v; oracle %d,%v", id, step, k, got, present, wantVal, wantPresent)
			}
		case 1: // Get
			got, ok := m.Get(k)
			wantVal, wantOk := oracle[k]
			if ok != wantOk || (ok && got != wantVal) {
				t.Fatalf("%s step %d: Get(%d) = %d,%v; oracle %d,%v", id, step, k, got, ok, wantVal, wantOk)
			}
		case 2: // Remove
			got, ok := m.Remove(k)
			wantVal, wantOk := oracle[k]
			delete(oracle, k)
			if ok != wantOk || (ok && got != wantVal) {
				t.Fatalf("%s step %d: Remove(%d) = %d,%v; oracle %d,%v", id, step, k, got, ok, wantVal, wantOk)
			}
		case 3: // ContainsKey
			_, wantOk := oracle[k]
			if got := m.ContainsKey(k); got != wantOk {
				t.Fatalf("%s step %d: ContainsKey(%d) = %v, oracle %v", id, step, k, got, wantOk)
			}
		}
		if m.Len() != len(oracle) {
			t.Fatalf("%s step %d: Len = %d, oracle %d", id, step, m.Len(), len(oracle))
		}
	}
	seen := make(map[int]bool)
	m.ForEach(func(k, v int) bool {
		if seen[k] {
			t.Fatalf("%s final: duplicate key %d", id, k)
		}
		seen[k] = true
		if want, ok := oracle[k]; !ok || want != v {
			t.Fatalf("%s final: entry %d=%d, oracle %d (present %v)", id, k, v, want, ok)
		}
		return true
	})
	if len(seen) != len(oracle) {
		t.Fatalf("%s final: iterated %d entries, oracle has %d", id, len(seen), len(oracle))
	}
}

func TestMapPropertyOracle(t *testing.T) {
	for _, v := range MapVariants[int, int]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			f := func(script opScript) bool {
				runMapScript(t, v.ID, v.New(0), script)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("map/adaptive-threshold5", func(t *testing.T) {
		f := func(script opScript) bool {
			runMapScript(t, "adaptive-5", NewAdaptiveMapThreshold[int, int](5), script)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}
