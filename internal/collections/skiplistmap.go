package collections

import (
	"cmp"
	"math/bits"
)

// SkipListMap is a probabilistic ordered map — the (sequential) analogue of
// JDK ConcurrentSkipListMap. Towers of forward pointers give expected
// O(log n) point operations with simpler invariants than balanced trees;
// iteration follows the bottom level in ascending key order.
type SkipListMap[K cmp.Ordered, V any] struct {
	head  *slNode[K, V] // sentinel with maximum tower height
	size  int
	level int // highest level currently in use (1-based)
	rng   uint64
}

const skipListMaxLevel = 24

type slNode[K cmp.Ordered, V any] struct {
	key  K
	val  V
	next []*slNode[K, V]
}

// NewSkipListMap returns an empty SkipListMap.
func NewSkipListMap[K cmp.Ordered, V any]() *SkipListMap[K, V] {
	return &SkipListMap[K, V]{
		head:  &slNode[K, V]{next: make([]*slNode[K, V], skipListMaxLevel)},
		level: 1,
		rng:   0x9e3779b97f4a7c15,
	}
}

// nextRand advances the per-instance xorshift state. A private generator
// keeps instances independent without global rand contention.
func (m *SkipListMap[K, V]) nextRand() uint64 {
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	return x
}

// randomLevel draws a tower height with P(level > k) = 2^-k.
func (m *SkipListMap[K, V]) randomLevel() int {
	// The count of trailing zero bits of a uniform word is geometric.
	lvl := bits.TrailingZeros64(m.nextRand()|1<<(skipListMaxLevel-1)) + 1
	if lvl > skipListMaxLevel {
		lvl = skipListMaxLevel
	}
	return lvl
}

// findPredecessors fills path with the rightmost node before k per level.
func (m *SkipListMap[K, V]) findPredecessors(k K, path *[skipListMaxLevel]*slNode[K, V]) *slNode[K, V] {
	n := m.head
	for lvl := m.level - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].key < k {
			n = n.next[lvl]
		}
		path[lvl] = n
	}
	return n.next[0]
}

// Put associates k with v, returning the previous value if present.
func (m *SkipListMap[K, V]) Put(k K, v V) (V, bool) {
	var path [skipListMaxLevel]*slNode[K, V]
	candidate := m.findPredecessors(k, &path)
	if candidate != nil && candidate.key == k {
		old := candidate.val
		candidate.val = v
		return old, true
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for l := m.level; l < lvl; l++ {
			path[l] = m.head
		}
		m.level = lvl
	}
	node := &slNode[K, V]{key: k, val: v, next: make([]*slNode[K, V], lvl)}
	for l := 0; l < lvl; l++ {
		node.next[l] = path[l].next[l]
		path[l].next[l] = node
	}
	m.size++
	var zero V
	return zero, false
}

// Get returns the value for k and whether it was present.
func (m *SkipListMap[K, V]) Get(k K) (V, bool) {
	n := m.head
	for lvl := m.level - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].key < k {
			n = n.next[lvl]
		}
	}
	n = n.next[0]
	if n != nil && n.key == k {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Remove deletes the entry for k.
func (m *SkipListMap[K, V]) Remove(k K) (V, bool) {
	var path [skipListMaxLevel]*slNode[K, V]
	candidate := m.findPredecessors(k, &path)
	var zero V
	if candidate == nil || candidate.key != k {
		return zero, false
	}
	for l := 0; l < len(candidate.next); l++ {
		if path[l].next[l] == candidate {
			path[l].next[l] = candidate.next[l]
		}
	}
	for m.level > 1 && m.head.next[m.level-1] == nil {
		m.level--
	}
	m.size--
	return candidate.val, true
}

// ContainsKey reports whether k has an entry.
func (m *SkipListMap[K, V]) ContainsKey(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Len returns the number of entries.
func (m *SkipListMap[K, V]) Len() int { return m.size }

// Clear removes all entries.
func (m *SkipListMap[K, V]) Clear() {
	m.head = &slNode[K, V]{next: make([]*slNode[K, V], skipListMaxLevel)}
	m.level = 1
	m.size = 0
}

// ForEach calls fn on each entry in ascending key order until fn returns
// false.
func (m *SkipListMap[K, V]) ForEach(fn func(K, V) bool) {
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		if !fn(n.key, n.val) {
			return
		}
	}
}

// MinKey returns the smallest key, if any.
func (m *SkipListMap[K, V]) MinKey() (K, bool) {
	if n := m.head.next[0]; n != nil {
		return n.key, true
	}
	var zero K
	return zero, false
}

// MaxKey returns the largest key, if any (O(log n) via top-level walk).
func (m *SkipListMap[K, V]) MaxKey() (K, bool) {
	n := m.head
	for lvl := m.level - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil {
			n = n.next[lvl]
		}
	}
	if n == m.head {
		var zero K
		return zero, false
	}
	return n.key, true
}

// Range calls fn on each entry with key in [from, to] ascending until fn
// returns false.
func (m *SkipListMap[K, V]) Range(from, to K, fn func(K, V) bool) {
	n := m.head
	for lvl := m.level - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && n.next[lvl].key < from {
			n = n.next[lvl]
		}
	}
	for n = n.next[0]; n != nil && n.key <= to; n = n.next[0] {
		if !fn(n.key, n.val) {
			return
		}
	}
}

// FootprintBytes estimates one node (key, value, expected two tower slots)
// per entry.
func (m *SkipListMap[K, V]) FootprintBytes() int {
	var zk K
	var zv V
	node := structBase + sizeOf(zk) + sizeOf(zv) + sliceHeader + 2*wordBytes
	return structBase + skipListMaxLevel*wordBytes + m.size*node
}
