// Package collections is the collection-library substrate of the
// CollectionSwitch reproduction. It provides generic List, Set and Map
// abstractions together with the full space of implementation variants the
// paper benchmarks: array-backed, linked, chained-hash, open-addressing hash
// (in three memory/speed presets mirroring Koloboke, Eclipse Collections and
// fastutil), compact dense-hash, and the adaptive variants that switch their
// underlying representation when the collection grows past a threshold.
//
// Every variant implements the corresponding abstraction interface plus
// Sizer, so the framework can reason about memory footprint, and is
// registered in the variant registry (see variants.go) under a stable
// VariantID used by the performance models and the selection engine.
package collections

// List is the list abstraction: an ordered sequence with positional access.
// Type parameter T must be comparable so that search operations (Contains,
// IndexOf, Remove) are available on every variant.
type List[T comparable] interface {
	// Add appends v to the end of the list.
	Add(v T)
	// Insert places v at index i, shifting subsequent elements right.
	// It panics if i is out of range [0, Len()].
	Insert(i int, v T)
	// Get returns the element at index i. It panics if i is out of range.
	Get(i int) T
	// Set replaces the element at index i and returns the previous value.
	// It panics if i is out of range.
	Set(i int, v T) T
	// RemoveAt removes and returns the element at index i, shifting
	// subsequent elements left. It panics if i is out of range.
	RemoveAt(i int) T
	// Remove deletes the first occurrence of v, reporting whether an
	// element was removed.
	Remove(v T) bool
	// Contains reports whether v occurs in the list.
	Contains(v T) bool
	// IndexOf returns the index of the first occurrence of v, or -1.
	IndexOf(v T) int
	// Len returns the number of elements.
	Len() int
	// Clear removes all elements.
	Clear()
	// ForEach calls fn on each element in order until fn returns false.
	ForEach(fn func(T) bool)
}

// Set is the set abstraction: a group of unique elements.
type Set[T comparable] interface {
	// Add inserts v, reporting whether the set changed (v was absent).
	Add(v T) bool
	// Remove deletes v, reporting whether the set changed (v was present).
	Remove(v T) bool
	// Contains reports whether v is in the set.
	Contains(v T) bool
	// Len returns the number of elements.
	Len() int
	// Clear removes all elements.
	Clear()
	// ForEach calls fn on each element until fn returns false. Iteration
	// order is implementation-defined unless documented otherwise.
	ForEach(fn func(T) bool)
}

// Map is the map abstraction: an association of unique keys to values.
type Map[K comparable, V any] interface {
	// Put associates k with v, returning the previous value and whether
	// one was present.
	Put(k K, v V) (V, bool)
	// Get returns the value for k and whether it was present.
	Get(k K) (V, bool)
	// Remove deletes the entry for k, returning the removed value and
	// whether one was present.
	Remove(k K) (V, bool)
	// ContainsKey reports whether k has an entry.
	ContainsKey(k K) bool
	// Len returns the number of entries.
	Len() int
	// Clear removes all entries.
	Clear()
	// ForEach calls fn on each entry until fn returns false. Iteration
	// order is implementation-defined unless documented otherwise.
	ForEach(fn func(K, V) bool)
}

// Sizer is implemented by every variant in this package. FootprintBytes
// estimates the retained heap of the collection's internal structures
// (excluding the elements' own referents) from the known layout of the
// implementation. The estimates feed the footprint cost dimension of the
// performance models and the Ralloc experiments.
type Sizer interface {
	FootprintBytes() int
}

// Adaptive is implemented by the adaptive variants (AdaptiveList,
// AdaptiveSet, AdaptiveMap). Transitioned reports whether the instance has
// switched from its small-size array representation to its large-size hash
// representation.
type Adaptive interface {
	Transitioned() bool
}

const (
	wordBytes   = 8  // pointer / int size on a 64-bit platform
	sliceHeader = 24 // ptr + len + cap
	structBase  = 16 // allocator overhead charged per heap object
)
