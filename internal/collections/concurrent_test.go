package collections

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConcurrentVariantsSequentialContract(t *testing.T) {
	// The concurrent variants must satisfy the ordinary contracts when
	// used sequentially.
	t.Run("syncset", func(t *testing.T) {
		f := func(script opScript) bool {
			runSetScript(t, SyncSetID, NewSyncSet[int](0), script)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatal(err)
		}
	})
	for name, mk := range map[VariantID]func() Map[int, int]{
		SyncMapID:    func() Map[int, int] { return NewSyncMap[int, int](0) },
		ShardedMapID: func() Map[int, int] { return NewShardedMap[int, int](0) },
	} {
		mk := mk
		t.Run(string(name), func(t *testing.T) {
			f := func(script opScript) bool {
				runMapScript(t, name, mk(), script)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSyncSetParallel(t *testing.T) {
	s := NewSyncSet[int](0)
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := base*perG + i
				s.Add(v)
				if !s.Contains(v) {
					t.Errorf("lost element %d", v)
					return
				}
				if i%3 == 0 {
					s.Remove(v)
				}
			}
		}(g)
	}
	wg.Wait()
	want := 0
	for i := 0; i < perG; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if got := s.Len(); got != want*goroutines {
		t.Fatalf("Len = %d, want %d", got, want*goroutines)
	}
}

func TestShardedMapParallel(t *testing.T) {
	m := NewShardedMap[int, int](0)
	const (
		goroutines = 8
		perG       = 3000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := base*perG + i
				m.Put(k, k*2)
				if v, ok := m.Get(k); !ok || v != k*2 {
					t.Errorf("lost entry %d", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.Len(); got != goroutines*perG {
		t.Fatalf("Len = %d, want %d", got, goroutines*perG)
	}
	// Every entry is reachable through ForEach exactly once.
	seen := make(map[int]bool, goroutines*perG)
	m.ForEach(func(k, v int) bool {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		if v != k*2 {
			t.Fatalf("entry %d has value %d", k, v)
		}
		seen[k] = true
		return true
	})
	if len(seen) != goroutines*perG {
		t.Fatalf("ForEach visited %d entries", len(seen))
	}
}

func TestSyncMapParallelMixed(t *testing.T) {
	m := NewSyncMap[int, int](0)
	var wg sync.WaitGroup
	// Writers and readers over an overlapping key space.
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Put(i%512, seed)
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Get(i % 512)
				m.ContainsKey(i % 701)
			}
		}()
	}
	wg.Wait()
	if m.Len() != 512 {
		t.Fatalf("Len = %d, want 512", m.Len())
	}
}

func TestShardedMapClearAndFootprint(t *testing.T) {
	m := NewShardedMap[int, int](1024)
	for i := 0; i < 1000; i++ {
		m.Put(i, i)
	}
	if m.FootprintBytes() <= 0 {
		t.Fatal("no footprint")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	m.Put(1, 1)
	if v, ok := m.Get(1); !ok || v != 1 {
		t.Fatal("map unusable after Clear")
	}
}

func TestShardedMapPresizingRoundsUp(t *testing.T) {
	// capHint must be split over the shards with round-up: truncation gave
	// 16×6=96 pre-sized slots for capHint=100 and none at all for
	// capHint<16. Each shard's table must match an OpenHashMap pre-sized
	// for ceil(capHint/shards).
	for _, capHint := range []int{1, 8, 15, 100, 177, 1000} {
		per := (capHint + shardedShards - 1) / shardedShards
		ref := NewOpenHashMapPreset[int, int](OpenBalanced, per)
		m := NewShardedMap[int, int](capHint)
		for i := range m.shards {
			if got, want := len(m.shards[i].m.keys), len(ref.keys); got != want {
				t.Fatalf("capHint=%d shard %d table = %d slots, want %d",
					capHint, i, got, want)
			}
		}
	}
}

func TestConcurrentWrapperFootprints(t *testing.T) {
	// The wrappers must charge their own header on top of the inner tables,
	// per the sizeof.go conventions every other variant follows.
	t.Run("syncset", func(t *testing.T) {
		s := NewSyncSet[int](0)
		for i := 0; i < 100; i++ {
			s.Add(i)
		}
		want := structBase + rwMutexBytes + wordBytes + s.inner.FootprintBytes()
		if got := s.FootprintBytes(); got != want {
			t.Fatalf("SyncSet footprint = %d, want %d", got, want)
		}
	})
	t.Run("syncmap", func(t *testing.T) {
		m := NewSyncMap[int, int](0)
		for i := 0; i < 100; i++ {
			m.Put(i, i)
		}
		want := structBase + rwMutexBytes + wordBytes + m.inner.FootprintBytes()
		if got := m.FootprintBytes(); got != want {
			t.Fatalf("SyncMap footprint = %d, want %d", got, want)
		}
		// The wrapper must cost more than the bare table it guards.
		if m.FootprintBytes() <= m.inner.FootprintBytes() {
			t.Fatal("SyncMap footprint does not exceed inner table")
		}
	})
	t.Run("sharded", func(t *testing.T) {
		m := NewShardedMap[int, int](0)
		for i := 0; i < 100; i++ {
			m.Put(i, i)
		}
		want := structBase + sizeOf(m.h) + shardedShards*(rwMutexBytes+wordBytes)
		for i := range m.shards {
			want += m.shards[i].m.FootprintBytes()
		}
		if got := m.FootprintBytes(); got != want {
			t.Fatalf("ShardedMap footprint = %d, want %d", got, want)
		}
		// 16 mutexes + 16 shard pointers are real memory: the header charge
		// alone must exceed the sync wrappers' single-lock header.
		if got := m.FootprintBytes(); got < shardedShards*(rwMutexBytes+wordBytes) {
			t.Fatalf("ShardedMap footprint %d omits the shard header array", got)
		}
	})
}

func TestShardedMapForEachEarlyStopAcrossShards(t *testing.T) {
	m := NewShardedMap[int, int](0)
	const n = 1000
	for i := 0; i < n; i++ {
		m.Put(i, i)
	}
	// Shard occupancy, in iteration order.
	var cum []int
	total := 0
	for i := range m.shards {
		total += m.shards[i].m.Len()
		cum = append(cum, total)
	}
	if total != n {
		t.Fatalf("shards hold %d entries, want %d", total, n)
	}
	// Stopping mid-shard, exactly on every shard boundary, and one past it
	// must all invoke fn exactly stopAfter times — a stop in shard i must
	// not leak iteration into shard i+1.
	stops := []int{1, cum[0], cum[0] + 1, cum[len(cum)/2], n / 2, n}
	for _, stopAfter := range stops {
		calls := 0
		m.ForEach(func(int, int) bool {
			calls++
			return calls < stopAfter
		})
		if calls != stopAfter {
			t.Fatalf("stopAfter=%d: fn called %d times", stopAfter, calls)
		}
	}
}

func TestConcurrentVariantRegistries(t *testing.T) {
	if got := len(ConcurrentSetVariants[int]()); got != 1 {
		t.Fatalf("concurrent set variants = %d", got)
	}
	if got := len(ConcurrentMapVariants[int, int]()); got != 2 {
		t.Fatalf("concurrent map variants = %d", got)
	}
	for _, v := range ConcurrentMapVariants[int, int]() {
		m := v.New(16)
		m.Put(1, 2)
		if _, ok := m.(Sizer); !ok {
			t.Errorf("%s does not implement Sizer", v.ID)
		}
	}
}
