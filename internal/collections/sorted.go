package collections

import "cmp"

// This file begins the paper's stated future work (Section 7): "a wider set
// of candidate collections, including concurrent and sorted collections."
// Sorted variants keep their elements in key order, trading O(log n) (or
// worse) mutation for ordered iteration and range queries. They satisfy the
// same Set/Map abstractions — a CollectionSwitch context can adopt them as
// opt-in candidates (core.NewSetContextWithVariants) — plus the ordered
// extensions below. In the catalog they carry Group GroupSorted /
// GroupConcurrent with DefaultCandidate false.

// SortedSet is a Set whose iteration is ascending and which supports
// ordered queries.
type SortedSet[T cmp.Ordered] interface {
	Set[T]
	// Min returns the smallest element, if any.
	Min() (T, bool)
	// Max returns the largest element, if any.
	Max() (T, bool)
	// Range calls fn on each element in [from, to] in ascending order
	// until fn returns false.
	Range(from, to T, fn func(T) bool)
}

// SortedMap is a Map whose iteration is in ascending key order and which
// supports ordered queries.
type SortedMap[K cmp.Ordered, V any] interface {
	Map[K, V]
	// MinKey returns the smallest key, if any.
	MinKey() (K, bool)
	// MaxKey returns the largest key, if any.
	MaxKey() (K, bool)
	// Range calls fn on each entry with key in [from, to] in ascending
	// order until fn returns false.
	Range(from, to K, fn func(K, V) bool)
}

// Sorted variant IDs (future-work extension of Table 2).
const (
	AVLTreeSetID     VariantID = "set/avltree"     // JDK TreeSet analogue
	SkipListSetID    VariantID = "set/skiplist"    // ConcurrentSkipListSet analogue (sequential form)
	SortedArraySetID VariantID = "set/sortedarray" // binary-searched flat set
	AVLTreeMapID     VariantID = "map/avltree"
	SkipListMapID    VariantID = "map/skiplist"
	SortedArrayMapID VariantID = "map/sortedarray"
)

// Concurrent variant IDs (future-work extension of Table 2).
const (
	SyncSetID    VariantID = "set/sync"    // Collections.synchronizedSet analogue
	SyncMapID    VariantID = "map/sync"    // Collections.synchronizedMap analogue
	ShardedMapID VariantID = "map/sharded" // ConcurrentHashMap analogue (lock striping)
)

// ExtensionVariantInfos returns the inventory of the future-work variants,
// in the same format as AllVariantInfos (which intentionally stays limited
// to the paper's Table 2). The catalog's extension entries are built from
// this table.
func ExtensionVariantInfos() []VariantInfo {
	return []VariantInfo{
		{AVLTreeSetID, SetAbstraction, "JDK TreeSet", "AVL-balanced search tree, ordered iteration"},
		{SkipListSetID, SetAbstraction, "JDK ConcurrentSkipListSet", "Skip list, ordered iteration"},
		{SortedArraySetID, SetAbstraction, "—", "Sorted array, binary search, ordered iteration"},
		{AVLTreeMapID, MapAbstraction, "JDK TreeMap", "AVL-balanced search tree map"},
		{SkipListMapID, MapAbstraction, "JDK ConcurrentSkipListMap", "Skip list map"},
		{SortedArrayMapID, MapAbstraction, "—", "Sorted parallel arrays, binary search"},
		{SyncSetID, SetAbstraction, "Collections.synchronizedSet", "Mutex-guarded open-hash set"},
		{SyncMapID, MapAbstraction, "Collections.synchronizedMap", "Mutex-guarded open-hash map"},
		{ShardedMapID, MapAbstraction, "JDK ConcurrentHashMap", "Lock-striped sharded hash map"},
	}
}

// builtinSortedSetFactory instantiates a builtin sorted set variant, nil for
// other IDs.
func builtinSortedSetFactory[T cmp.Ordered](id VariantID) func(int) Set[T] {
	switch id {
	case AVLTreeSetID:
		return func(int) Set[T] { return NewAVLTreeSet[T]() }
	case SkipListSetID:
		return func(int) Set[T] { return NewSkipListSet[T]() }
	case SortedArraySetID:
		return func(c int) Set[T] { return NewSortedArraySetCap[T](c) }
	}
	return nil
}

// builtinSortedMapFactory instantiates a builtin sorted map variant, nil for
// other IDs.
func builtinSortedMapFactory[K cmp.Ordered, V any](id VariantID) func(int) Map[K, V] {
	switch id {
	case AVLTreeMapID:
		return func(int) Map[K, V] { return NewAVLTreeMap[K, V]() }
	case SkipListMapID:
		return func(int) Map[K, V] { return NewSkipListMap[K, V]() }
	case SortedArrayMapID:
		return func(c int) Map[K, V] { return NewSortedArrayMapCap[K, V](c) }
	}
	return nil
}

// SortedSetVariants returns factories for the sorted set variants. They are
// opt-in candidates: pass them to core.NewSetContextWithVariants alongside
// (or instead of) the default SetVariants.
func SortedSetVariants[T cmp.Ordered]() []SetVariant[T] {
	var out []SetVariant[T]
	for _, e := range snapshot().entries {
		if e.Group != GroupSorted || e.Info.Abstraction != SetAbstraction {
			continue
		}
		if f := builtinSortedSetFactory[T](e.Info.ID); f != nil {
			out = append(out, SetVariant[T]{e.Info.ID, f})
		}
	}
	return out
}

// SortedMapVariants returns factories for the sorted map variants.
func SortedMapVariants[K cmp.Ordered, V any]() []MapVariant[K, V] {
	var out []MapVariant[K, V]
	for _, e := range snapshot().entries {
		if e.Group != GroupSorted || e.Info.Abstraction != MapAbstraction {
			continue
		}
		if f := builtinSortedMapFactory[K, V](e.Info.ID); f != nil {
			out = append(out, MapVariant[K, V]{e.Info.ID, f})
		}
	}
	return out
}

// ConcurrentSetVariants returns factories for the concurrency-safe set
// variants (opt-in candidates).
func ConcurrentSetVariants[T comparable]() []SetVariant[T] {
	var out []SetVariant[T]
	for _, e := range snapshot().entries {
		if e.Group != GroupConcurrent || e.Info.Abstraction != SetAbstraction {
			continue
		}
		if f := builtinSetFactory[T](e.Info.ID); f != nil {
			out = append(out, SetVariant[T]{e.Info.ID, f})
		}
	}
	return out
}

// ConcurrentMapVariants returns factories for the concurrency-safe map
// variants (opt-in candidates).
func ConcurrentMapVariants[K comparable, V any]() []MapVariant[K, V] {
	var out []MapVariant[K, V]
	for _, e := range snapshot().entries {
		if e.Group != GroupConcurrent || e.Info.Abstraction != MapAbstraction {
			continue
		}
		if f := builtinMapFactory[K, V](e.Info.ID); f != nil {
			out = append(out, MapVariant[K, V]{e.Info.ID, f})
		}
	}
	return out
}
