package collections

import "testing"

func TestAdaptiveListTransitionsAtThreshold(t *testing.T) {
	l := NewAdaptiveListThreshold[int](10)
	for i := 0; i < 10; i++ {
		l.Add(i)
		if l.Transitioned() {
			t.Fatalf("transitioned at size %d, threshold 10", i+1)
		}
	}
	l.Add(10)
	if !l.Transitioned() {
		t.Fatal("did not transition past threshold")
	}
	// All elements survive the transition, in order.
	for i := 0; i <= 10; i++ {
		if got := l.Get(i); got != i {
			t.Fatalf("Get(%d) = %d after transition", i, got)
		}
		if !l.Contains(i) {
			t.Fatalf("Contains(%d) = false after transition", i)
		}
	}
}

func TestAdaptiveListTransitionViaInsert(t *testing.T) {
	l := NewAdaptiveListThreshold[int](3)
	for i := 0; i < 3; i++ {
		l.Add(i)
	}
	l.Insert(1, 99)
	if !l.Transitioned() {
		t.Fatal("Insert crossing the threshold did not transition")
	}
	want := []int{0, 99, 1, 2}
	for i, w := range want {
		if got := l.Get(i); got != w {
			t.Fatalf("Get(%d) = %d, want %d", i, got, w)
		}
	}
}

// checkBag asserts the hash form's bag is exactly the multiset of its
// element slice — the invariant the adopted-slice transition must preserve.
func checkBag[T comparable](t *testing.T, l *HashArrayList[T]) {
	t.Helper()
	want := make(map[T]int32, len(l.elems))
	for _, e := range l.elems {
		want[e]++
	}
	if len(want) != len(l.bag) {
		t.Fatalf("bag has %d distinct elements, want %d", len(l.bag), len(want))
	}
	for v, n := range want {
		if l.bag[v] != n {
			t.Fatalf("bag[%v] = %d, want %d", v, l.bag[v], n)
		}
	}
}

func TestAdaptiveListBagConsistencyAfterInsertTransition(t *testing.T) {
	// The transition adopts the array's backing slice (no copy), including
	// duplicates; every later mutation through the hash form must keep the
	// bag in lockstep with that adopted slice.
	l := NewAdaptiveListThreshold[int](4)
	for _, v := range []int{1, 2, 2, 3} {
		l.Add(v)
	}
	l.Insert(2, 2) // crosses the threshold mid-Insert: [1 2 2 2 3]
	if !l.Transitioned() {
		t.Fatal("Insert crossing the threshold did not transition")
	}
	checkBag(t, l.hash)

	// Set over a duplicate: the bag count for 2 drops, 9 appears.
	if old := l.Set(1, 9); old != 2 {
		t.Fatalf("Set returned %d, want 2", old)
	}
	checkBag(t, l.hash)
	// Set an element to itself: counts unchanged.
	l.Set(0, 1)
	checkBag(t, l.hash)
	// Remove one of the remaining duplicates; the other must stay visible.
	if !l.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	checkBag(t, l.hash)
	if !l.Contains(2) {
		t.Fatal("second duplicate lost after removing the first")
	}
	l.RemoveAt(l.Len() - 1)
	checkBag(t, l.hash)

	want := []int{1, 9, 2}
	if l.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(want))
	}
	for i, w := range want {
		if got := l.Get(i); got != w {
			t.Fatalf("Get(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestAdaptiveListClearReverts(t *testing.T) {
	l := NewAdaptiveListThreshold[int](2)
	for i := 0; i < 5; i++ {
		l.Add(i)
	}
	if !l.Transitioned() {
		t.Fatal("expected transition")
	}
	l.Clear()
	if l.Transitioned() {
		t.Fatal("Clear did not revert to array representation")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after Clear", l.Len())
	}
}

func TestAdaptiveListDefaultThreshold(t *testing.T) {
	l := NewAdaptiveList[int]()
	for i := 0; i < DefaultListThreshold; i++ {
		l.Add(i)
	}
	if l.Transitioned() {
		t.Fatal("transitioned at the threshold, should be strictly above")
	}
	l.Add(DefaultListThreshold)
	if !l.Transitioned() {
		t.Fatal("did not transition above default threshold")
	}
}

func TestAdaptiveSetTransitionsAtThreshold(t *testing.T) {
	s := NewAdaptiveSetThreshold[int](8)
	for i := 0; i < 8; i++ {
		s.Add(i)
		if s.Transitioned() {
			t.Fatalf("transitioned at size %d, threshold 8", i+1)
		}
	}
	// Duplicate adds must not trigger a transition (size unchanged).
	s.Add(0)
	if s.Transitioned() {
		t.Fatal("duplicate add triggered transition")
	}
	s.Add(8)
	if !s.Transitioned() {
		t.Fatal("did not transition past threshold")
	}
	for i := 0; i <= 8; i++ {
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after transition", i)
		}
	}
	if s.Len() != 9 {
		t.Fatalf("Len = %d, want 9", s.Len())
	}
}

func TestAdaptiveSetFootprintDropsVsHash(t *testing.T) {
	// Below the threshold, the adaptive set must be much smaller than a
	// chained hash set of the same contents — that is its whole point.
	small := NewAdaptiveSet[int]()
	chained := NewHashSet[int]()
	for i := 0; i < 20; i++ {
		small.Add(i)
		chained.Add(i)
	}
	if small.Transitioned() {
		t.Fatal("should not have transitioned at size 20")
	}
	if small.FootprintBytes() >= chained.FootprintBytes() {
		t.Fatalf("adaptive (array) footprint %d >= chained %d",
			small.FootprintBytes(), chained.FootprintBytes())
	}
}

func TestAdaptiveMapTransitionsAtThreshold(t *testing.T) {
	m := NewAdaptiveMapThreshold[int, string](6)
	for i := 0; i < 6; i++ {
		m.Put(i, "v")
		if m.Transitioned() {
			t.Fatalf("transitioned at size %d, threshold 6", i+1)
		}
	}
	// Overwrites must not trigger a transition.
	m.Put(0, "w")
	if m.Transitioned() {
		t.Fatal("overwrite triggered transition")
	}
	m.Put(6, "v")
	if !m.Transitioned() {
		t.Fatal("did not transition past threshold")
	}
	if got, ok := m.Get(0); !ok || got != "w" {
		t.Fatalf("Get(0) = %q, %v after transition", got, ok)
	}
	for i := 1; i <= 6; i++ {
		if got, ok := m.Get(i); !ok || got != "v" {
			t.Fatalf("Get(%d) = %q, %v after transition", i, got, ok)
		}
	}
}

func TestAdaptiveZeroThreshold(t *testing.T) {
	// Threshold 0 means transition on the first element.
	l := NewAdaptiveListThreshold[int](0)
	l.Add(1)
	if !l.Transitioned() {
		t.Fatal("list with threshold 0 did not transition on first Add")
	}
	s := NewAdaptiveSetThreshold[int](0)
	s.Add(1)
	if !s.Transitioned() {
		t.Fatal("set with threshold 0 did not transition on first Add")
	}
	m := NewAdaptiveMapThreshold[int, int](0)
	m.Put(1, 1)
	if !m.Transitioned() {
		t.Fatal("map with threshold 0 did not transition on first Put")
	}
}

func TestAdaptiveNegativeThresholdClamped(t *testing.T) {
	l := NewAdaptiveListThreshold[int](-5)
	l.Add(1)
	if !l.Transitioned() {
		t.Fatal("negative threshold not clamped to 0")
	}
}

func TestAdaptiveImplementsAdaptiveInterface(t *testing.T) {
	var _ Adaptive = NewAdaptiveList[int]()
	var _ Adaptive = NewAdaptiveSet[int]()
	var _ Adaptive = NewAdaptiveMap[int, int]()
	// Non-adaptive variants must not satisfy it.
	var l any = NewArrayList[int]()
	if _, ok := l.(Adaptive); ok {
		t.Fatal("ArrayList should not implement Adaptive")
	}
}

func TestIsAdaptive(t *testing.T) {
	for _, id := range []VariantID{AdaptiveListID, AdaptiveSetID, AdaptiveMapID} {
		if !IsAdaptive(id) {
			t.Errorf("IsAdaptive(%s) = false", id)
		}
	}
	for _, id := range []VariantID{ArrayListID, HashSetID, OpenHashMapFastID} {
		if IsAdaptive(id) {
			t.Errorf("IsAdaptive(%s) = true", id)
		}
	}
}

func TestVariantRegistryComplete(t *testing.T) {
	infos := AllVariantInfos()
	if len(infos) != 20 {
		t.Fatalf("registry has %d variants, want 20", len(infos))
	}
	counts := map[Abstraction]int{}
	seen := map[VariantID]bool{}
	for _, info := range infos {
		if seen[info.ID] {
			t.Errorf("duplicate variant ID %s", info.ID)
		}
		seen[info.ID] = true
		counts[info.Abstraction]++
	}
	if counts[ListAbstraction] != 4 || counts[SetAbstraction] != 8 || counts[MapAbstraction] != 8 {
		t.Fatalf("abstraction counts = %v, want list:4 set:8 map:8", counts)
	}
	// Every registered variant must be constructible through the factory
	// helpers and satisfy Sizer.
	for _, info := range infos {
		switch info.Abstraction {
		case ListAbstraction:
			l := NewListOf[int](info.ID, 16)
			l.Add(1)
			if _, ok := l.(Sizer); !ok {
				t.Errorf("%s does not implement Sizer", info.ID)
			}
			if AbstractionOf(info.ID) != ListAbstraction {
				t.Errorf("AbstractionOf(%s) wrong", info.ID)
			}
		case SetAbstraction:
			s := NewSetOf[int](info.ID, 16)
			s.Add(1)
			if _, ok := s.(Sizer); !ok {
				t.Errorf("%s does not implement Sizer", info.ID)
			}
		case MapAbstraction:
			m := NewMapOf[int, int](info.ID, 16)
			m.Put(1, 1)
			if _, ok := m.(Sizer); !ok {
				t.Errorf("%s does not implement Sizer", info.ID)
			}
		}
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewListOf with unknown ID did not panic")
		}
	}()
	NewListOf[int]("list/bogus", 0)
}
