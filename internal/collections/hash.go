package collections

import "hash/maphash"

// hasher produces 64-bit hashes for comparable values. Each hash-backed
// collection owns one hasher so that different instances probe in different
// orders (the same hardening the JDK and Koloboke apply via per-map seeds).
type hasher[T comparable] struct {
	seed maphash.Seed
}

func newHasher[T comparable]() hasher[T] {
	return hasher[T]{seed: maphash.MakeSeed()}
}

func (h hasher[T]) hash(v T) uint64 {
	return maphash.Comparable(h.seed, v)
}

// nextPow2 returns the smallest power of two >= n (and >= 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
