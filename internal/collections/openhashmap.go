package collections

// OpenHashPreset captures the memory/speed tradeoff of an open-addressing
// hash table through its maximum load factor. The three exported presets
// mirror the third-party Java libraries the paper benchmarks: a half-full
// table probes the least but wastes the most slots (Koloboke's default), a
// nine-tenths-full table is the most memory-efficient but pays longer probe
// chains (fastutil's compact configurations), and three-quarters sits in
// between (Eclipse Collections).
type OpenHashPreset struct {
	// Name distinguishes the preset in variant IDs and reports.
	Name string
	// LoadNum/LoadDen is the maximum fraction of occupied slots before
	// the table doubles.
	LoadNum, LoadDen int
}

// The three open-addressing presets used throughout the evaluation.
var (
	OpenFast     = OpenHashPreset{Name: "fast", LoadNum: 1, LoadDen: 2}
	OpenBalanced = OpenHashPreset{Name: "balanced", LoadNum: 3, LoadDen: 4}
	OpenCompact  = OpenHashPreset{Name: "compact", LoadNum: 9, LoadDen: 10}
)

const (
	slotEmpty uint8 = iota
	slotFull
	slotDeleted
)

const openHashMinCap = 8

// OpenHashMap is an open-addressing (linear probing, tombstone deletion)
// hash map storing keys and values in flat parallel arrays — the analogue of
// the Koloboke / Eclipse / fastutil open-hash maps. Unlike the chained
// HashMap it performs no per-entry allocation, trading empty slots for
// locality.
type OpenHashMap[K comparable, V any] struct {
	h      hasher[K]
	keys   []K
	vals   []V
	state  []uint8
	size   int // live entries
	used   int // live + tombstones
	preset OpenHashPreset
}

// NewOpenHashMap returns an empty map with the balanced preset.
func NewOpenHashMap[K comparable, V any]() *OpenHashMap[K, V] {
	return NewOpenHashMapPreset[K, V](OpenBalanced, 0)
}

// NewOpenHashMapPreset returns an empty map with the given preset, pre-sized
// for capHint entries.
func NewOpenHashMapPreset[K comparable, V any](p OpenHashPreset, capHint int) *OpenHashMap[K, V] {
	c := openHashMinCap
	if capHint > 0 {
		c = nextPow2(capHint*p.LoadDen/p.LoadNum + 1)
		if c < openHashMinCap {
			c = openHashMinCap
		}
	}
	return &OpenHashMap[K, V]{
		h:      newHasher[K](),
		keys:   make([]K, c),
		vals:   make([]V, c),
		state:  make([]uint8, c),
		preset: p,
	}
}

// Preset returns the preset this map was built with.
func (m *OpenHashMap[K, V]) Preset() OpenHashPreset { return m.preset }

// slotOf returns the slot holding k, or -1 and the first insertable slot.
func (m *OpenHashMap[K, V]) slotOf(k K, hash uint64) (found, insert int) {
	mask := uint64(len(m.keys) - 1)
	i := hash & mask
	insert = -1
	for {
		switch m.state[i] {
		case slotEmpty:
			if insert < 0 {
				insert = int(i)
			}
			return -1, insert
		case slotDeleted:
			if insert < 0 {
				insert = int(i)
			}
		case slotFull:
			if m.keys[i] == k {
				return int(i), int(i)
			}
		}
		i = (i + 1) & mask
	}
}

func (m *OpenHashMap[K, V]) rehash(newCap int) {
	oldKeys, oldVals, oldState := m.keys, m.vals, m.state
	m.keys = make([]K, newCap)
	m.vals = make([]V, newCap)
	m.state = make([]uint8, newCap)
	m.used = m.size
	mask := uint64(newCap - 1)
	for i, st := range oldState {
		if st != slotFull {
			continue
		}
		j := m.h.hash(oldKeys[i]) & mask
		for m.state[j] == slotFull {
			j = (j + 1) & mask
		}
		m.keys[j] = oldKeys[i]
		m.vals[j] = oldVals[i]
		m.state[j] = slotFull
	}
}

func (m *OpenHashMap[K, V]) maybeGrow() {
	if (m.used+1)*m.preset.LoadDen <= len(m.keys)*m.preset.LoadNum {
		return
	}
	newCap := len(m.keys)
	if (m.size+1)*m.preset.LoadDen > newCap*m.preset.LoadNum {
		newCap *= 2 // genuinely full: double
	}
	// Otherwise same capacity: the rehash just clears tombstones.
	m.rehash(newCap)
}

// Put associates k with v, returning the previous value if present.
func (m *OpenHashMap[K, V]) Put(k K, v V) (V, bool) {
	hash := m.h.hash(k)
	found, insert := m.slotOf(k, hash)
	if found >= 0 {
		old := m.vals[found]
		m.vals[found] = v
		return old, true
	}
	var zero V
	if (m.used+1)*m.preset.LoadDen > len(m.keys)*m.preset.LoadNum {
		m.maybeGrow()
		_, insert = m.slotOf(k, hash)
	}
	if m.state[insert] == slotEmpty {
		m.used++
	}
	m.keys[insert] = k
	m.vals[insert] = v
	m.state[insert] = slotFull
	m.size++
	return zero, false
}

// Get returns the value for k and whether it was present.
func (m *OpenHashMap[K, V]) Get(k K) (V, bool) {
	if found, _ := m.slotOf(k, m.h.hash(k)); found >= 0 {
		return m.vals[found], true
	}
	var zero V
	return zero, false
}

// Remove deletes the entry for k, leaving a tombstone.
func (m *OpenHashMap[K, V]) Remove(k K) (V, bool) {
	found, _ := m.slotOf(k, m.h.hash(k))
	var zero V
	if found < 0 {
		return zero, false
	}
	old := m.vals[found]
	var zk K
	m.keys[found] = zk
	m.vals[found] = zero
	m.state[found] = slotDeleted
	m.size--
	return old, true
}

// ContainsKey reports whether k has an entry.
func (m *OpenHashMap[K, V]) ContainsKey(k K) bool {
	found, _ := m.slotOf(k, m.h.hash(k))
	return found >= 0
}

// Len returns the number of entries.
func (m *OpenHashMap[K, V]) Len() int { return m.size }

// Clear removes all entries, retaining the table.
func (m *OpenHashMap[K, V]) Clear() {
	clear(m.keys)
	clear(m.vals)
	clear(m.state)
	m.size = 0
	m.used = 0
}

// ForEach calls fn on each entry in slot order until fn returns false.
func (m *OpenHashMap[K, V]) ForEach(fn func(K, V) bool) {
	for i, st := range m.state {
		if st == slotFull && !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// FootprintBytes estimates the flat key, value and state arrays.
func (m *OpenHashMap[K, V]) FootprintBytes() int {
	var zk K
	var zv V
	c := len(m.keys)
	return structBase + 3*sliceHeader + c*(sizeOf(zk)+sizeOf(zv)+1)
}
