package collections

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
)

// This file is the variant catalog: one generic registry entry per variant,
// shared by every layer of the framework. The per-abstraction views
// (ListVariants, SetVariants, MapVariants, SortedSetVariants, ...), the
// benchmark targets of the perfmodel builder, the analytic default models and
// the selection engine's candidate pools are all projections of this single
// table, so registering one Entry — from any package, including outside this
// module's internal tree — makes a variant flow end-to-end: it is
// instantiated by allocation contexts, benchmarked by cmd/perfmodel, modeled
// by perfmodel.Default, and considered by the selection rules.
//
// The catalog is copy-on-write: readers load an immutable snapshot through
// one atomic pointer (the hot selection path calls IsAdaptive per candidate
// per window close), writers rebuild the snapshot under a mutex. Builtin
// variants are registered at package init in Table 2 order, followed by the
// future-work extensions; user registrations append after them.

// Group classifies catalog entries by origin.
type Group string

const (
	// GroupCore marks the paper's Table 2 inventory — the default
	// candidate pool of every allocation context.
	GroupCore Group = "core"
	// GroupSorted and GroupConcurrent mark the future-work extensions
	// (paper Section 7); they are opt-in candidates.
	GroupSorted     Group = "sorted"
	GroupConcurrent Group = "concurrent"
	// GroupCustom marks user-registered variants.
	GroupCustom Group = "custom"
)

// CostFn is an analytic cost function of collection size, the unit of the
// catalog-attached default models.
type CostFn func(s float64) float64

// Critical-operation names, shared with the perfmodel package whose Op
// constants hold exactly these strings (pinned by a perfmodel test).
const (
	OpNamePopulate = "populate"
	OpNameContains = "contains"
	OpNameIterate  = "iterate"
	OpNameMiddle   = "middle"
)

// OpNames lists the critical-operation names in Table 3 order.
func OpNames() []string {
	return []string{OpNamePopulate, OpNameContains, OpNameIterate, OpNameMiddle}
}

// AnalyticModel bundles the hardware-independent cost functions of one
// variant. perfmodel.Default samples these at the Table 3 plan sizes and
// fits the same polynomial curves the empirical builder produces, so a
// variant registered with an analytic model is selectable without a
// benchmarking pass.
type AnalyticModel struct {
	// Time maps critical-operation names (OpNamePopulate, ...) to
	// nanosecond costs. Populate covers a complete population to size s;
	// the others are per call at size s.
	Time map[string]CostFn
	// AllocPopulate is bytes allocated while populating to size s
	// (including growth churn); AllocMiddle is bytes per middle op.
	// Lookup-like operations are modeled as allocation-free.
	AllocPopulate CostFn
	AllocMiddle   CostFn
	// Footprint is retained bytes at size s.
	Footprint CostFn
}

// BenchHandle exposes the critical operations of one populated collection
// instance to the generic benchmark driver (perfmodel.Builder.Build).
type BenchHandle interface {
	// Contains probes membership / lookup of one key.
	Contains(probe int)
	// Iterate performs one full traversal.
	Iterate()
	// Middle performs the abstraction's size-preserving middle mutation
	// (lists: insert+remove at the midpoint; sets/maps: add+remove of a
	// fresh key).
	Middle()
	// Footprint reports retained bytes, ok=false when unmeasurable.
	Footprint() (bytes int, ok bool)
}

// BenchAdapter creates a fresh instance of a variant populated with keys —
// the population itself is the timed populate operation.
type BenchAdapter func(keys []int) BenchHandle

// BenchTarget couples a variant ID with the adapter the model builder
// drives.
type BenchTarget struct {
	ID      VariantID
	Adapter BenchAdapter
}

// Entry is one catalog row: everything the framework knows about a variant.
type Entry struct {
	Info  VariantInfo
	Group Group
	// DefaultCandidate marks membership in the default candidate pool (and
	// the ListVariants/SetVariants/MapVariants views). Core and custom
	// entries default to true; extension entries are opt-in.
	DefaultCandidate bool
	// AdaptiveThreshold > 0 marks an adaptive variant and names its
	// representation-transition size (the breakpoint of its piecewise cost
	// model and the straddle gate of Section 3.2).
	AdaptiveThreshold int64
	// Analytic, when non-nil, supplies the variant's default cost model.
	Analytic *AnalyticModel
	// Constructor is the zero-argument constructor function in this package
	// (or, for custom variants, the name registered via WithConstructor)
	// that instantiates the variant — the hook the source-rewriting pipeline
	// (internal/rewrite) uses to recognize allocation sites. Empty when the
	// variant has no zero-arg constructor.
	Constructor string

	// factory is the typed factory of a registered variant —
	// func(int) List[T] / Set[T] / Map[K,V] for the concrete type
	// parameters it was registered with. Builtin entries leave it nil and
	// instantiate through the generic builtin factory switches.
	factory any
	// bench is the benchmark adapter; derived from the int-element factory
	// when possible, overridable at registration.
	bench BenchAdapter
}

// Benchmarkable reports whether the entry carries a benchmark adapter.
func (e Entry) Benchmarkable() bool { return e.bench != nil }

// catalogSnapshot is the immutable state readers load atomically.
type catalogSnapshot struct {
	entries []Entry
	byID    map[VariantID]int // index into entries
}

var (
	catalogMu    sync.Mutex // serializes writers
	catalogState atomic.Pointer[catalogSnapshot]
)

func init() {
	catalogState.Store(builtinCatalog())
}

// snapshot returns the current immutable catalog state.
func snapshot() *catalogSnapshot { return catalogState.Load() }

// Entries returns the catalog in registration order (builtins first). The
// returned slice is a copy; entries share immutable internals.
func Entries() []Entry {
	s := snapshot()
	out := make([]Entry, len(s.entries))
	copy(out, s.entries)
	return out
}

// EntryOf looks up one catalog entry by variant ID.
func EntryOf(id VariantID) (Entry, bool) {
	s := snapshot()
	if i, ok := s.byID[id]; ok {
		return s.entries[i], true
	}
	return Entry{}, false
}

// AbstractionOf returns the abstraction a variant implements. It panics on
// unknown IDs: abstraction confusion is a programming error.
func AbstractionOf(id VariantID) Abstraction {
	if e, ok := EntryOf(id); ok {
		return e.Info.Abstraction
	}
	panic(fmt.Sprintf("collections: unknown variant %q", id))
}

// IsAdaptive reports whether id names an adaptive variant (one with a
// representation-transition threshold).
func IsAdaptive(id VariantID) bool {
	e, ok := EntryOf(id)
	return ok && e.AdaptiveThreshold > 0
}

// AdaptiveThresholdOf returns the transition threshold of an adaptive
// variant, 0 for non-adaptive or unknown IDs.
func AdaptiveThresholdOf(id VariantID) int64 {
	e, ok := EntryOf(id)
	if !ok {
		return 0
	}
	return e.AdaptiveThreshold
}

// RegisterOption customizes a catalog registration.
type RegisterOption func(*Entry)

// WithAnalytic attaches a default analytic cost model, making the variant
// selectable through perfmodel.Default without a benchmarking pass.
func WithAnalytic(m AnalyticModel) RegisterOption {
	return func(e *Entry) { e.Analytic = &m }
}

// WithBenchAdapter overrides the benchmark adapter (the default is derived
// from the factory when the variant is registered for int elements).
func WithBenchAdapter(a BenchAdapter) RegisterOption {
	return func(e *Entry) { e.bench = a }
}

// WithAdaptiveThreshold marks the variant adaptive with the given
// representation-transition size.
func WithAdaptiveThreshold(n int64) RegisterOption {
	return func(e *Entry) { e.AdaptiveThreshold = n }
}

// AsOptIn removes the variant from the default candidate pools; it remains
// reachable through WithCandidates, the WithVariants constructors and
// BenchTargetFor.
func AsOptIn() RegisterOption {
	return func(e *Entry) { e.DefaultCandidate = false }
}

// register validates and appends one entry under the writer lock.
func register(e Entry) {
	if e.Info.ID == "" {
		panic("collections: registering variant with empty ID")
	}
	catalogMu.Lock()
	defer catalogMu.Unlock()
	old := snapshot()
	if _, dup := old.byID[e.Info.ID]; dup {
		panic(fmt.Sprintf("collections: variant %q already registered", e.Info.ID))
	}
	next := &catalogSnapshot{
		entries: make([]Entry, len(old.entries), len(old.entries)+1),
		byID:    make(map[VariantID]int, len(old.byID)+1),
	}
	copy(next.entries, old.entries)
	next.entries = append(next.entries, e)
	for i, en := range next.entries {
		next.byID[en.Info.ID] = i
	}
	catalogState.Store(next)
}

// resetCatalog restores the builtin-only catalog. Test helper.
func resetCatalog() {
	catalogMu.Lock()
	defer catalogMu.Unlock()
	catalogState.Store(builtinCatalog())
}

// newCustomEntry builds the common part of a user registration.
func newCustomEntry(info VariantInfo, a Abstraction, factory any, opts []RegisterOption) Entry {
	// The factory arrives boxed in an interface, so a typed nil function
	// needs the reflective check.
	if factory == nil || reflect.ValueOf(factory).IsNil() {
		panic(fmt.Sprintf("collections: variant %q registered with nil factory", info.ID))
	}
	info.Abstraction = a
	e := Entry{
		Info:             info,
		Group:            GroupCustom,
		DefaultCandidate: true,
		factory:          factory,
	}
	for _, opt := range opts {
		opt(&e)
	}
	return e
}

// RegisterListVariant adds a user-supplied list variant to the catalog for
// element type T. The variant joins the default candidate pool of every
// ListContext[T] (unless AsOptIn), is benchmarkable by cmd/perfmodel when
// T == int, and — given WithAnalytic — is modeled by perfmodel.Default.
func RegisterListVariant[T comparable](info VariantInfo, factory func(capHint int) List[T], opts ...RegisterOption) {
	e := newCustomEntry(info, ListAbstraction, factory, opts)
	if e.bench == nil {
		if f, ok := any(factory).(func(int) List[int]); ok {
			e.bench = ListBenchAdapter(f)
		}
	}
	register(e)
}

// RegisterSetVariant adds a user-supplied set variant to the catalog; see
// RegisterListVariant.
func RegisterSetVariant[T comparable](info VariantInfo, factory func(capHint int) Set[T], opts ...RegisterOption) {
	e := newCustomEntry(info, SetAbstraction, factory, opts)
	if e.bench == nil {
		if f, ok := any(factory).(func(int) Set[int]); ok {
			e.bench = SetBenchAdapter(f)
		}
	}
	register(e)
}

// RegisterMapVariant adds a user-supplied map variant to the catalog; see
// RegisterListVariant.
func RegisterMapVariant[K comparable, V any](info VariantInfo, factory func(capHint int) Map[K, V], opts ...RegisterOption) {
	e := newCustomEntry(info, MapAbstraction, factory, opts)
	if e.bench == nil {
		if f, ok := any(factory).(func(int) Map[int, int]); ok {
			e.bench = MapBenchAdapter(f)
		}
	}
	register(e)
}

// BenchTargets returns the benchmarkable default-candidate variants of one
// abstraction in catalog order — the set BuildLists/BuildSets/BuildMaps
// measure.
func BenchTargets(a Abstraction) []BenchTarget {
	var out []BenchTarget
	for _, e := range snapshot().entries {
		if e.Info.Abstraction != a || !e.DefaultCandidate || e.bench == nil {
			continue
		}
		out = append(out, BenchTarget{ID: e.Info.ID, Adapter: e.bench})
	}
	return out
}

// BenchTargetFor returns the benchmark target of any catalog entry —
// including opt-in extension and custom variants — ok=false when the entry
// is unknown or has no adapter.
func BenchTargetFor(id VariantID) (BenchTarget, bool) {
	e, ok := EntryOf(id)
	if !ok || e.bench == nil {
		return BenchTarget{}, false
	}
	return BenchTarget{ID: e.Info.ID, Adapter: e.bench}, true
}

// ---- benchmark handles -------------------------------------------------

// ListBenchAdapter derives a benchmark adapter from a list factory.
func ListBenchAdapter(newList func(int) List[int]) BenchAdapter {
	return func(keys []int) BenchHandle {
		l := newList(0)
		for _, k := range keys {
			l.Add(k)
		}
		return listBenchHandle{l}
	}
}

type listBenchHandle struct{ l List[int] }

func (h listBenchHandle) Contains(probe int) { h.l.Contains(probe) }

func (h listBenchHandle) Iterate() {
	sink := 0
	h.l.ForEach(func(v int) bool { sink += v; return true })
	_ = sink
}

// Middle inserts and removes at the midpoint; the size stays constant.
func (h listBenchHandle) Middle() {
	mid := h.l.Len() / 2
	h.l.Insert(mid, -1)
	h.l.RemoveAt(mid)
}

func (h listBenchHandle) Footprint() (int, bool) { return footprintOf(h.l) }

// SetBenchAdapter derives a benchmark adapter from a set factory.
func SetBenchAdapter(newSet func(int) Set[int]) BenchAdapter {
	return func(keys []int) BenchHandle {
		s := newSet(0)
		for _, k := range keys {
			s.Add(k)
		}
		// The middle op exercises a key guaranteed absent: keysFor draws
		// from [0, 2n).
		return setBenchHandle{s: s, fresh: len(keys)*2 + 1}
	}
}

type setBenchHandle struct {
	s     Set[int]
	fresh int
}

func (h setBenchHandle) Contains(probe int) { h.s.Contains(probe) }

func (h setBenchHandle) Iterate() {
	sink := 0
	h.s.ForEach(func(v int) bool { sink += v; return true })
	_ = sink
}

func (h setBenchHandle) Middle() {
	h.s.Add(h.fresh)
	h.s.Remove(h.fresh)
}

func (h setBenchHandle) Footprint() (int, bool) { return footprintOf(h.s) }

// MapBenchAdapter derives a benchmark adapter from a map factory.
func MapBenchAdapter(newMap func(int) Map[int, int]) BenchAdapter {
	return func(keys []int) BenchHandle {
		m := newMap(0)
		for _, k := range keys {
			m.Put(k, k)
		}
		return mapBenchHandle{m: m, fresh: len(keys)*2 + 1}
	}
}

type mapBenchHandle struct {
	m     Map[int, int]
	fresh int
}

func (h mapBenchHandle) Contains(probe int) { h.m.Get(probe) }

func (h mapBenchHandle) Iterate() {
	sink := 0
	h.m.ForEach(func(_, v int) bool { sink += v; return true })
	_ = sink
}

func (h mapBenchHandle) Middle() {
	h.m.Put(h.fresh, h.fresh)
	h.m.Remove(h.fresh)
}

func (h mapBenchHandle) Footprint() (int, bool) { return footprintOf(h.m) }

func footprintOf(c any) (int, bool) {
	if s, ok := c.(Sizer); ok {
		return s.FootprintBytes(), true
	}
	return 0, false
}

// ---- builtin registration ----------------------------------------------

// builtinCatalog assembles the shipped inventory: the Table 2 variants (the
// default candidate pool) followed by the future-work sorted and concurrent
// extensions (opt-in).
func builtinCatalog() *catalogSnapshot {
	models := analyticDefaults()
	var entries []Entry
	add := func(info VariantInfo, group Group, defaultCandidate bool) {
		e := Entry{
			Info:              info,
			Group:             group,
			DefaultCandidate:  defaultCandidate,
			AdaptiveThreshold: builtinAdaptiveThreshold(info.ID),
			Constructor:       builtinConstructor(info.ID),
			bench:             builtinBenchAdapter(info),
		}
		if m, ok := models[info.ID]; ok {
			m := m
			e.Analytic = &m
		}
		entries = append(entries, e)
	}
	for _, info := range AllVariantInfos() {
		add(info, GroupCore, true)
	}
	for _, info := range ExtensionVariantInfos() {
		add(info, extensionGroup(info.ID), false)
	}
	s := &catalogSnapshot{entries: entries, byID: make(map[VariantID]int, len(entries))}
	for i, e := range entries {
		s.byID[e.Info.ID] = i
	}
	return s
}

// builtinAdaptiveThreshold maps the adaptive variants to their transition
// sizes.
func builtinAdaptiveThreshold(id VariantID) int64 {
	switch id {
	case AdaptiveListID:
		return DefaultListThreshold
	case AdaptiveSetID:
		return DefaultSetThreshold
	case AdaptiveMapID:
		return DefaultMapThreshold
	}
	return 0
}

// extensionGroup classifies the future-work variants.
func extensionGroup(id VariantID) Group {
	switch id {
	case SyncSetID, SyncMapID, ShardedMapID:
		return GroupConcurrent
	}
	return GroupSorted
}

// builtinBenchAdapter derives the int-element benchmark adapter of a builtin
// variant.
func builtinBenchAdapter(info VariantInfo) BenchAdapter {
	switch info.Abstraction {
	case ListAbstraction:
		if f := builtinListFactory[int](info.ID); f != nil {
			return ListBenchAdapter(f)
		}
	case SetAbstraction:
		if f := builtinSetFactory[int](info.ID); f != nil {
			return SetBenchAdapter(f)
		}
		if f := builtinSortedSetFactory[int](info.ID); f != nil {
			return SetBenchAdapter(f)
		}
	case MapAbstraction:
		if f := builtinMapFactory[int, int](info.ID); f != nil {
			return MapBenchAdapter(f)
		}
		if f := builtinSortedMapFactory[int, int](info.ID); f != nil {
			return MapBenchAdapter(f)
		}
	}
	return nil
}
