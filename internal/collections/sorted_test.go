package collections

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// forEachSortedSet runs fn for every sorted set variant.
func forEachSortedSet(t *testing.T, fn func(t *testing.T, newSet func() SortedSet[int])) {
	t.Helper()
	impls := map[string]func() SortedSet[int]{
		"avltree":     func() SortedSet[int] { return NewAVLTreeSet[int]() },
		"skiplist":    func() SortedSet[int] { return NewSkipListSet[int]() },
		"sortedarray": func() SortedSet[int] { return NewSortedArraySet[int]() },
	}
	for name, mk := range impls {
		mk := mk
		t.Run(name, func(t *testing.T) { fn(t, mk) })
	}
}

// forEachSortedMap runs fn for every sorted map variant.
func forEachSortedMap(t *testing.T, fn func(t *testing.T, newMap func() SortedMap[int, string])) {
	t.Helper()
	impls := map[string]func() SortedMap[int, string]{
		"avltree":     func() SortedMap[int, string] { return NewAVLTreeMap[int, string]() },
		"skiplist":    func() SortedMap[int, string] { return NewSkipListMap[int, string]() },
		"sortedarray": func() SortedMap[int, string] { return NewSortedArrayMap[int, string]() },
	}
	for name, mk := range impls {
		mk := mk
		t.Run(name, func(t *testing.T) { fn(t, mk) })
	}
}

func TestSortedSetAscendingIteration(t *testing.T) {
	forEachSortedSet(t, func(t *testing.T, newSet func() SortedSet[int]) {
		s := newSet()
		r := rand.New(rand.NewSource(5))
		for _, v := range r.Perm(500) {
			s.Add(v)
		}
		if s.Len() != 500 {
			t.Fatalf("Len = %d", s.Len())
		}
		prev := -1
		count := 0
		s.ForEach(func(v int) bool {
			if v <= prev {
				t.Fatalf("iteration not ascending: %d after %d", v, prev)
			}
			prev = v
			count++
			return true
		})
		if count != 500 {
			t.Fatalf("iterated %d of 500", count)
		}
	})
}

func TestSortedSetMinMax(t *testing.T) {
	forEachSortedSet(t, func(t *testing.T, newSet func() SortedSet[int]) {
		s := newSet()
		if _, ok := s.Min(); ok {
			t.Fatal("Min on empty set reported a value")
		}
		if _, ok := s.Max(); ok {
			t.Fatal("Max on empty set reported a value")
		}
		for _, v := range []int{42, 7, 99, 7, -3, 55} {
			s.Add(v)
		}
		if min, ok := s.Min(); !ok || min != -3 {
			t.Fatalf("Min = %d, %v", min, ok)
		}
		if max, ok := s.Max(); !ok || max != 99 {
			t.Fatalf("Max = %d, %v", max, ok)
		}
		s.Remove(-3)
		s.Remove(99)
		if min, _ := s.Min(); min != 7 {
			t.Fatalf("Min after removals = %d", min)
		}
		if max, _ := s.Max(); max != 55 {
			t.Fatalf("Max after removals = %d", max)
		}
	})
}

func TestSortedSetRange(t *testing.T) {
	forEachSortedSet(t, func(t *testing.T, newSet func() SortedSet[int]) {
		s := newSet()
		for v := 0; v < 100; v += 2 { // evens 0..98
			s.Add(v)
		}
		var got []int
		s.Range(11, 25, func(v int) bool {
			got = append(got, v)
			return true
		})
		want := []int{12, 14, 16, 18, 20, 22, 24}
		if len(got) != len(want) {
			t.Fatalf("Range(11,25) = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range(11,25) = %v, want %v", got, want)
			}
		}
		// Inclusive bounds.
		got = got[:0]
		s.Range(10, 12, func(v int) bool { got = append(got, v); return true })
		if len(got) != 2 || got[0] != 10 || got[1] != 12 {
			t.Fatalf("inclusive Range = %v", got)
		}
		// Early stop.
		count := 0
		s.Range(0, 98, func(int) bool {
			count++
			return count < 3
		})
		if count != 3 {
			t.Fatalf("early-stopped Range visited %d", count)
		}
		// Empty interval.
		s.Range(51, 51, func(v int) bool {
			t.Fatalf("Range(51,51) yielded %d", v)
			return true
		})
	})
}

func TestSortedSetAsPlainSet(t *testing.T) {
	// Sorted sets must satisfy the ordinary Set contract, including
	// oracle-checked random scripts.
	impls := map[string]func() Set[int]{
		"avltree":     func() Set[int] { return NewAVLTreeSet[int]() },
		"skiplist":    func() Set[int] { return NewSkipListSet[int]() },
		"sortedarray": func() Set[int] { return NewSortedArraySet[int]() },
	}
	for name, mk := range impls {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(script opScript) bool {
				runSetScript(t, VariantID(name), mk(), script)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSortedMapAscendingAndRange(t *testing.T) {
	forEachSortedMap(t, func(t *testing.T, newMap func() SortedMap[int, string]) {
		m := newMap()
		r := rand.New(rand.NewSource(9))
		for _, k := range r.Perm(300) {
			m.Put(k, "v")
		}
		prev := -1
		m.ForEach(func(k int, _ string) bool {
			if k <= prev {
				t.Fatalf("keys not ascending: %d after %d", k, prev)
			}
			prev = k
			return true
		})
		if min, ok := m.MinKey(); !ok || min != 0 {
			t.Fatalf("MinKey = %d, %v", min, ok)
		}
		if max, ok := m.MaxKey(); !ok || max != 299 {
			t.Fatalf("MaxKey = %d, %v", max, ok)
		}
		var keys []int
		m.Range(100, 104, func(k int, _ string) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != 5 || keys[0] != 100 || keys[4] != 104 {
			t.Fatalf("Range(100,104) keys = %v", keys)
		}
	})
}

func TestSortedMapAsPlainMap(t *testing.T) {
	impls := map[string]func() Map[int, int]{
		"avltree":     func() Map[int, int] { return NewAVLTreeMap[int, int]() },
		"skiplist":    func() Map[int, int] { return NewSkipListMap[int, int]() },
		"sortedarray": func() Map[int, int] { return NewSortedArrayMap[int, int]() },
	}
	for name, mk := range impls {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(script opScript) bool {
				runMapScript(t, VariantID(name), mk(), script)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAVLBalanceInvariant(t *testing.T) {
	m := NewAVLTreeMap[int, int]()
	// Sequential insertion is the worst case for unbalanced BSTs.
	const n = 1 << 12
	for i := 0; i < n; i++ {
		m.Put(i, i)
	}
	// AVL height bound: 1.44*log2(n+2). For n=4096: ~18.7.
	if h := m.heightOf(); h > 19 {
		t.Fatalf("AVL height %d exceeds bound for %d sequential keys", h, n)
	}
	// Delete half and re-check.
	for i := 0; i < n; i += 2 {
		if _, ok := m.Remove(i); !ok {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	if m.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", m.Len(), n/2)
	}
	if h := m.heightOf(); h > 19 {
		t.Fatalf("AVL height %d after deletions", h)
	}
	checkAVL(t, m.root)
}

// checkAVL verifies order and balance recursively.
func checkAVL(t *testing.T, n *avlNode[int, int]) (min, max, h int) {
	t.Helper()
	if n == nil {
		return 0, 0, 0
	}
	lh, rh := 0, 0
	if n.left != nil {
		lmin, lmax, lhh := checkAVL(t, n.left)
		if lmax >= n.key {
			t.Fatalf("BST order violated at %d (left max %d)", n.key, lmax)
		}
		lh = lhh
		min = lmin
	} else {
		min = n.key
	}
	if n.right != nil {
		rmin, rmax, rhh := checkAVL(t, n.right)
		if rmin <= n.key {
			t.Fatalf("BST order violated at %d (right min %d)", n.key, rmin)
		}
		rh = rhh
		max = rmax
	} else {
		max = n.key
	}
	if d := lh - rh; d < -1 || d > 1 {
		t.Fatalf("AVL balance violated at %d: %d vs %d", n.key, lh, rh)
	}
	h = max2(lh, rh) + 1
	if int(n.height) != h {
		t.Fatalf("cached height wrong at %d: %d vs %d", n.key, n.height, h)
	}
	return min, max, h
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSkipListLevelsShrink(t *testing.T) {
	m := NewSkipListMap[int, int]()
	for i := 0; i < 10000; i++ {
		m.Put(i, i)
	}
	grown := m.level
	if grown < 5 {
		t.Fatalf("level after 10k inserts = %d, expected towers to grow", grown)
	}
	for i := 0; i < 10000; i++ {
		m.Remove(i)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", m.Len())
	}
	if m.level != 1 {
		t.Fatalf("level after emptying = %d, want 1", m.level)
	}
}

func TestSortedVariantRegistries(t *testing.T) {
	if got := len(SortedSetVariants[int]()); got != 3 {
		t.Fatalf("sorted set variants = %d", got)
	}
	if got := len(SortedMapVariants[int, int]()); got != 3 {
		t.Fatalf("sorted map variants = %d", got)
	}
	infos := ExtensionVariantInfos()
	if len(infos) != 9 {
		t.Fatalf("extension infos = %d, want 9", len(infos))
	}
	// Extension variants must construct and satisfy Sizer.
	for _, v := range SortedSetVariants[int]() {
		s := v.New(8)
		s.Add(1)
		if _, ok := s.(Sizer); !ok {
			t.Errorf("%s does not implement Sizer", v.ID)
		}
	}
	for _, v := range SortedMapVariants[int, int]() {
		m := v.New(8)
		m.Put(1, 1)
		if _, ok := m.(Sizer); !ok {
			t.Errorf("%s does not implement Sizer", v.ID)
		}
	}
}

func TestSortedArrayVsHashFootprint(t *testing.T) {
	// The sorted array's selling point: tree-level lookups at array-level
	// footprint.
	sa := NewSortedArraySet[int]()
	avl := NewAVLTreeSet[int]()
	for i := 0; i < 1000; i++ {
		sa.Add(i)
		avl.Add(i)
	}
	if sa.FootprintBytes() >= avl.FootprintBytes() {
		t.Fatalf("sorted array footprint %d >= AVL %d", sa.FootprintBytes(), avl.FootprintBytes())
	}
}
