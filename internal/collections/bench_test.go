package collections

import (
	"math/rand"
	"testing"
)

// Native testing.B form of the Table 3 factorial plan: every variant ×
// critical operation at a representative size. cmd/perfmodel runs the same
// measurements programmatically over the full size sweep.

const benchSize = 500

func benchKeys(n int) ([]int, []int) {
	r := rand.New(rand.NewSource(1))
	keys := r.Perm(n * 2)[:n]
	probes := make([]int, 256)
	for i := range probes {
		probes[i] = r.Intn(n * 2)
	}
	return keys, probes
}

func BenchmarkListPopulate(b *testing.B) {
	keys, _ := benchKeys(benchSize)
	for _, v := range ListVariants[int]() {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := v.New(0)
				for _, k := range keys {
					l.Add(k)
				}
			}
		})
	}
}

func BenchmarkListContains(b *testing.B) {
	keys, probes := benchKeys(benchSize)
	for _, v := range ListVariants[int]() {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			l := v.New(0)
			for _, k := range keys {
				l.Add(k)
			}
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				if l.Contains(probes[i%len(probes)]) {
					sink++
				}
			}
			_ = sink
		})
	}
}

func BenchmarkListIterate(b *testing.B) {
	keys, _ := benchKeys(benchSize)
	for _, v := range ListVariants[int]() {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			l := v.New(0)
			for _, k := range keys {
				l.Add(k)
			}
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				l.ForEach(func(x int) bool { sink += x; return true })
			}
			_ = sink
		})
	}
}

func BenchmarkListMiddle(b *testing.B) {
	keys, _ := benchKeys(benchSize)
	for _, v := range ListVariants[int]() {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			l := v.New(0)
			for _, k := range keys {
				l.Add(k)
			}
			mid := l.Len() / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Insert(mid, -1)
				l.RemoveAt(mid)
			}
		})
	}
}

func BenchmarkSetPopulate(b *testing.B) {
	keys, _ := benchKeys(benchSize)
	variants := append(SetVariants[int](), SortedSetVariants[int]()...)
	variants = append(variants, ConcurrentSetVariants[int]()...)
	for _, v := range variants {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := v.New(0)
				for _, k := range keys {
					s.Add(k)
				}
			}
		})
	}
}

func BenchmarkSetContains(b *testing.B) {
	keys, probes := benchKeys(benchSize)
	variants := append(SetVariants[int](), SortedSetVariants[int]()...)
	variants = append(variants, ConcurrentSetVariants[int]()...)
	for _, v := range variants {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			s := v.New(0)
			for _, k := range keys {
				s.Add(k)
			}
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				if s.Contains(probes[i%len(probes)]) {
					sink++
				}
			}
			_ = sink
		})
	}
}

func BenchmarkMapPut(b *testing.B) {
	keys, _ := benchKeys(benchSize)
	variants := append(MapVariants[int, int](), SortedMapVariants[int, int]()...)
	variants = append(variants, ConcurrentMapVariants[int, int]()...)
	for _, v := range variants {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := v.New(0)
				for _, k := range keys {
					m.Put(k, k)
				}
			}
		})
	}
}

func BenchmarkMapGet(b *testing.B) {
	keys, probes := benchKeys(benchSize)
	variants := append(MapVariants[int, int](), SortedMapVariants[int, int]()...)
	variants = append(variants, ConcurrentMapVariants[int, int]()...)
	for _, v := range variants {
		v := v
		b.Run(string(v.ID), func(b *testing.B) {
			m := v.New(0)
			for _, k := range keys {
				m.Put(k, k)
			}
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				if x, ok := m.Get(probes[i%len(probes)]); ok {
					sink += x
				}
			}
			_ = sink
		})
	}
}

// BenchmarkAdaptiveTransition isolates the instant-transition cost the
// Figure 3 analysis amortizes against lookups.
func BenchmarkAdaptiveTransition(b *testing.B) {
	b.Run("set", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewAdaptiveSet[int]()
			for k := 0; k <= DefaultSetThreshold; k++ {
				s.Add(k)
			}
			if !s.Transitioned() {
				b.Fatal("no transition")
			}
		}
	})
	b.Run("list", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l := NewAdaptiveList[int]()
			for k := 0; k <= DefaultListThreshold; k++ {
				l.Add(k)
			}
			if !l.Transitioned() {
				b.Fatal("no transition")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewAdaptiveMap[int, int]()
			for k := 0; k <= DefaultMapThreshold; k++ {
				m.Put(k, k)
			}
			if !m.Transitioned() {
				b.Fatal("no transition")
			}
		}
	})
}
