package collections

// CompactHashMap is a dense hash map: entries live packed in insertion order
// in flat arrays, and a separate open-addressed table of int32 slots indexes
// them by hash. It is the analogue of the paper's VLSI byte-serialized
// CompactHashMap — the JVM trick there is eliminating per-entry object
// headers; the equivalent saving in Go is that empty table slots cost 4
// bytes instead of a full key/value slot, giving the smallest footprint of
// the indexed maps at the price of one extra indirection per lookup.
type CompactHashMap[K comparable, V any] struct {
	h     hasher[K]
	index []int32 // slot -> dense position; -1 empty, -2 tombstone
	keys  []K     // dense, packed
	vals  []V     // dense, packed
	used  int     // occupied + tombstoned index slots
}

const (
	compactEmpty     int32 = -1
	compactTombstone int32 = -2
)

// NewCompactHashMap returns an empty CompactHashMap.
func NewCompactHashMap[K comparable, V any]() *CompactHashMap[K, V] {
	return NewCompactHashMapCap[K, V](0)
}

// NewCompactHashMapCap returns an empty CompactHashMap pre-sized for capHint
// entries.
func NewCompactHashMapCap[K comparable, V any](capHint int) *CompactHashMap[K, V] {
	c := openHashMinCap
	if capHint > 0 {
		c = nextPow2(capHint*4/3 + 1)
		if c < openHashMinCap {
			c = openHashMinCap
		}
	}
	m := &CompactHashMap[K, V]{h: newHasher[K](), index: make([]int32, c)}
	for i := range m.index {
		m.index[i] = compactEmpty
	}
	if capHint > 0 {
		m.keys = make([]K, 0, capHint)
		m.vals = make([]V, 0, capHint)
	}
	return m
}

// slotOf returns the index slot holding k, or -1 and an insertable slot.
func (m *CompactHashMap[K, V]) slotOf(k K, hash uint64) (found, insert int) {
	mask := uint64(len(m.index) - 1)
	i := hash & mask
	insert = -1
	for {
		switch d := m.index[i]; d {
		case compactEmpty:
			if insert < 0 {
				insert = int(i)
			}
			return -1, insert
		case compactTombstone:
			if insert < 0 {
				insert = int(i)
			}
		default:
			if m.keys[d] == k {
				return int(i), int(i)
			}
		}
		i = (i + 1) & mask
	}
}

func (m *CompactHashMap[K, V]) rehash(newCap int) {
	m.index = make([]int32, newCap)
	for i := range m.index {
		m.index[i] = compactEmpty
	}
	m.used = len(m.keys)
	mask := uint64(newCap - 1)
	for d, k := range m.keys {
		i := m.h.hash(k) & mask
		for m.index[i] != compactEmpty {
			i = (i + 1) & mask
		}
		m.index[i] = int32(d)
	}
}

// Put associates k with v, returning the previous value if present.
func (m *CompactHashMap[K, V]) Put(k K, v V) (V, bool) {
	hash := m.h.hash(k)
	found, insert := m.slotOf(k, hash)
	if found >= 0 {
		d := m.index[found]
		old := m.vals[d]
		m.vals[d] = v
		return old, true
	}
	if (m.used+1)*4 > len(m.index)*3 {
		newCap := len(m.index)
		if (len(m.keys)+1)*4 > newCap*3 {
			newCap *= 2
		}
		m.rehash(newCap)
		_, insert = m.slotOf(k, hash)
	}
	if m.index[insert] == compactEmpty {
		m.used++
	}
	m.index[insert] = int32(len(m.keys))
	m.keys = append(m.keys, k)
	m.vals = append(m.vals, v)
	var zero V
	return zero, false
}

// Get returns the value for k and whether it was present.
func (m *CompactHashMap[K, V]) Get(k K) (V, bool) {
	if found, _ := m.slotOf(k, m.h.hash(k)); found >= 0 {
		return m.vals[m.index[found]], true
	}
	var zero V
	return zero, false
}

// Remove deletes the entry for k. The dense arrays stay packed by moving
// the last entry into the vacated position and repointing its index slot.
func (m *CompactHashMap[K, V]) Remove(k K) (V, bool) {
	found, _ := m.slotOf(k, m.h.hash(k))
	var zero V
	if found < 0 {
		return zero, false
	}
	d := m.index[found]
	old := m.vals[d]
	m.index[found] = compactTombstone
	last := int32(len(m.keys) - 1)
	if d != last {
		movedKey := m.keys[last]
		slot, _ := m.slotOf(movedKey, m.h.hash(movedKey))
		m.keys[d] = movedKey
		m.vals[d] = m.vals[last]
		m.index[slot] = d
	}
	var zk K
	m.keys[last] = zk
	m.vals[last] = zero
	m.keys = m.keys[:last]
	m.vals = m.vals[:last]
	return old, true
}

// ContainsKey reports whether k has an entry.
func (m *CompactHashMap[K, V]) ContainsKey(k K) bool {
	found, _ := m.slotOf(k, m.h.hash(k))
	return found >= 0
}

// Len returns the number of entries.
func (m *CompactHashMap[K, V]) Len() int { return len(m.keys) }

// Clear removes all entries, retaining the index table.
func (m *CompactHashMap[K, V]) Clear() {
	for i := range m.index {
		m.index[i] = compactEmpty
	}
	var zk K
	var zv V
	for i := range m.keys {
		m.keys[i] = zk
		m.vals[i] = zv
	}
	m.keys = m.keys[:0]
	m.vals = m.vals[:0]
	m.used = 0
}

// ForEach calls fn on each entry in insertion-modified dense order until fn
// returns false.
func (m *CompactHashMap[K, V]) ForEach(fn func(K, V) bool) {
	for i, k := range m.keys {
		if !fn(k, m.vals[i]) {
			return
		}
	}
}

// FootprintBytes estimates the int32 index table plus the packed entry
// arrays.
func (m *CompactHashMap[K, V]) FootprintBytes() int {
	var zk K
	var zv V
	return structBase + 3*sliceHeader + len(m.index)*4 +
		cap(m.keys)*sizeOf(zk) + cap(m.vals)*sizeOf(zv)
}
