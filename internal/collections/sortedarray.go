package collections

import (
	"cmp"
	"sort"
)

// SortedArraySet keeps its elements in a sorted flat slice: binary-searched
// O(log n) membership with the footprint of an ArraySet, paid for by O(n)
// insertion (shift) — the ordered cousin of the array-backed variants and
// the memory-minimal way to get fast lookups on mostly-static data.
type SortedArraySet[T cmp.Ordered] struct {
	elems []T
}

// NewSortedArraySet returns an empty SortedArraySet.
func NewSortedArraySet[T cmp.Ordered]() *SortedArraySet[T] { return &SortedArraySet[T]{} }

// NewSortedArraySetCap returns an empty SortedArraySet with capacity for
// capHint elements.
func NewSortedArraySetCap[T cmp.Ordered](capHint int) *SortedArraySet[T] {
	if capHint <= 0 {
		return &SortedArraySet[T]{}
	}
	return &SortedArraySet[T]{elems: make([]T, 0, capHint)}
}

// search returns the insertion index of v and whether it is present.
func (s *SortedArraySet[T]) search(v T) (int, bool) {
	i := sort.Search(len(s.elems), func(i int) bool { return s.elems[i] >= v })
	return i, i < len(s.elems) && s.elems[i] == v
}

// Add inserts v, reporting whether the set changed.
func (s *SortedArraySet[T]) Add(v T) bool {
	i, found := s.search(v)
	if found {
		return false
	}
	var zero T
	s.elems = append(s.elems, zero)
	copy(s.elems[i+1:], s.elems[i:])
	s.elems[i] = v
	return true
}

// Remove deletes v, reporting whether the set changed.
func (s *SortedArraySet[T]) Remove(v T) bool {
	i, found := s.search(v)
	if !found {
		return false
	}
	copy(s.elems[i:], s.elems[i+1:])
	var zero T
	s.elems[len(s.elems)-1] = zero
	s.elems = s.elems[:len(s.elems)-1]
	return true
}

// Contains reports whether v is in the set (binary search).
func (s *SortedArraySet[T]) Contains(v T) bool {
	_, found := s.search(v)
	return found
}

// Len returns the number of elements.
func (s *SortedArraySet[T]) Len() int { return len(s.elems) }

// Clear removes all elements, retaining capacity.
func (s *SortedArraySet[T]) Clear() {
	var zero T
	for i := range s.elems {
		s.elems[i] = zero
	}
	s.elems = s.elems[:0]
}

// ForEach calls fn on each element in ascending order until fn returns
// false.
func (s *SortedArraySet[T]) ForEach(fn func(T) bool) {
	for _, v := range s.elems {
		if !fn(v) {
			return
		}
	}
}

// Min returns the smallest element, if any.
func (s *SortedArraySet[T]) Min() (T, bool) {
	if len(s.elems) == 0 {
		var zero T
		return zero, false
	}
	return s.elems[0], true
}

// Max returns the largest element, if any.
func (s *SortedArraySet[T]) Max() (T, bool) {
	if len(s.elems) == 0 {
		var zero T
		return zero, false
	}
	return s.elems[len(s.elems)-1], true
}

// Range calls fn on each element in [from, to] ascending until fn returns
// false.
func (s *SortedArraySet[T]) Range(from, to T, fn func(T) bool) {
	i, _ := s.search(from)
	for ; i < len(s.elems) && s.elems[i] <= to; i++ {
		if !fn(s.elems[i]) {
			return
		}
	}
}

// FootprintBytes estimates the backing array.
func (s *SortedArraySet[T]) FootprintBytes() int {
	var zero T
	return structBase + sliceHeader + cap(s.elems)*sizeOf(zero)
}

// SortedArrayMap keeps entries in key-sorted parallel slices: O(log n)
// lookups at array-map footprint, O(n) insertion.
type SortedArrayMap[K cmp.Ordered, V any] struct {
	keys []K
	vals []V
}

// NewSortedArrayMap returns an empty SortedArrayMap.
func NewSortedArrayMap[K cmp.Ordered, V any]() *SortedArrayMap[K, V] {
	return &SortedArrayMap[K, V]{}
}

// NewSortedArrayMapCap returns an empty SortedArrayMap with capacity for
// capHint entries.
func NewSortedArrayMapCap[K cmp.Ordered, V any](capHint int) *SortedArrayMap[K, V] {
	if capHint <= 0 {
		return &SortedArrayMap[K, V]{}
	}
	return &SortedArrayMap[K, V]{
		keys: make([]K, 0, capHint),
		vals: make([]V, 0, capHint),
	}
}

func (m *SortedArrayMap[K, V]) search(k K) (int, bool) {
	i := sort.Search(len(m.keys), func(i int) bool { return m.keys[i] >= k })
	return i, i < len(m.keys) && m.keys[i] == k
}

// Put associates k with v, returning the previous value if present.
func (m *SortedArrayMap[K, V]) Put(k K, v V) (V, bool) {
	i, found := m.search(k)
	if found {
		old := m.vals[i]
		m.vals[i] = v
		return old, true
	}
	var zk K
	var zv V
	m.keys = append(m.keys, zk)
	m.vals = append(m.vals, zv)
	copy(m.keys[i+1:], m.keys[i:])
	copy(m.vals[i+1:], m.vals[i:])
	m.keys[i] = k
	m.vals[i] = v
	return zv, false
}

// Get returns the value for k and whether it was present (binary search).
func (m *SortedArrayMap[K, V]) Get(k K) (V, bool) {
	if i, found := m.search(k); found {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// Remove deletes the entry for k.
func (m *SortedArrayMap[K, V]) Remove(k K) (V, bool) {
	i, found := m.search(k)
	var zero V
	if !found {
		return zero, false
	}
	old := m.vals[i]
	last := len(m.keys) - 1
	copy(m.keys[i:], m.keys[i+1:])
	copy(m.vals[i:], m.vals[i+1:])
	var zk K
	m.keys[last] = zk
	m.vals[last] = zero
	m.keys = m.keys[:last]
	m.vals = m.vals[:last]
	return old, true
}

// ContainsKey reports whether k has an entry.
func (m *SortedArrayMap[K, V]) ContainsKey(k K) bool {
	_, found := m.search(k)
	return found
}

// Len returns the number of entries.
func (m *SortedArrayMap[K, V]) Len() int { return len(m.keys) }

// Clear removes all entries, retaining capacity.
func (m *SortedArrayMap[K, V]) Clear() {
	var zk K
	var zv V
	for i := range m.keys {
		m.keys[i] = zk
		m.vals[i] = zv
	}
	m.keys = m.keys[:0]
	m.vals = m.vals[:0]
}

// ForEach calls fn on each entry in ascending key order until fn returns
// false.
func (m *SortedArrayMap[K, V]) ForEach(fn func(K, V) bool) {
	for i, k := range m.keys {
		if !fn(k, m.vals[i]) {
			return
		}
	}
}

// MinKey returns the smallest key, if any.
func (m *SortedArrayMap[K, V]) MinKey() (K, bool) {
	if len(m.keys) == 0 {
		var zero K
		return zero, false
	}
	return m.keys[0], true
}

// MaxKey returns the largest key, if any.
func (m *SortedArrayMap[K, V]) MaxKey() (K, bool) {
	if len(m.keys) == 0 {
		var zero K
		return zero, false
	}
	return m.keys[len(m.keys)-1], true
}

// Range calls fn on each entry with key in [from, to] ascending until fn
// returns false.
func (m *SortedArrayMap[K, V]) Range(from, to K, fn func(K, V) bool) {
	i, _ := m.search(from)
	for ; i < len(m.keys) && m.keys[i] <= to; i++ {
		if !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// FootprintBytes estimates the two backing arrays.
func (m *SortedArrayMap[K, V]) FootprintBytes() int {
	var zk K
	var zv V
	return structBase + 2*sliceHeader + cap(m.keys)*sizeOf(zk) + cap(m.vals)*sizeOf(zv)
}
