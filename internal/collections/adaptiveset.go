package collections

// DefaultSetThreshold is the array→openhash transition size for AdaptiveSet
// (paper Table 1).
const DefaultSetThreshold = 40

// AdaptiveSet is the instance-level adaptive set (paper Table 1,
// array→openhash): a memory-minimal ArraySet below the threshold, an
// OpenHashSet (fast preset, matching the paper's NLP/Google → Koloboke
// transition) above it. The transition is instant: all elements are
// reinserted into the freshly sized hash table.
type AdaptiveSet[T comparable] struct {
	array     *ArraySet[T]    // nil after the transition
	hash      *OpenHashSet[T] // nil before the transition
	threshold int
}

// NewAdaptiveSet returns an AdaptiveSet with the default threshold.
func NewAdaptiveSet[T comparable]() *AdaptiveSet[T] {
	return NewAdaptiveSetThreshold[T](DefaultSetThreshold)
}

// NewAdaptiveSetThreshold returns an AdaptiveSet that transitions when its
// size first exceeds threshold.
func NewAdaptiveSetThreshold[T comparable](threshold int) *AdaptiveSet[T] {
	if threshold < 0 {
		threshold = 0
	}
	return &AdaptiveSet[T]{array: NewArraySet[T](), threshold: threshold}
}

// Transitioned reports whether the instance has switched to its hash form.
func (s *AdaptiveSet[T]) Transitioned() bool { return s.hash != nil }

func (s *AdaptiveSet[T]) maybeTransition() {
	if s.hash != nil || s.array.Len() <= s.threshold {
		return
	}
	h := NewOpenHashSetPreset[T](OpenFast, 2*s.array.Len())
	for _, v := range s.array.Elems() {
		h.Add(v)
	}
	s.hash = h
	s.array = nil
}

// Add inserts v, reporting whether the set changed.
func (s *AdaptiveSet[T]) Add(v T) bool {
	if s.hash != nil {
		return s.hash.Add(v)
	}
	changed := s.array.Add(v)
	s.maybeTransition()
	return changed
}

// Remove deletes v, reporting whether the set changed.
func (s *AdaptiveSet[T]) Remove(v T) bool {
	if s.hash != nil {
		return s.hash.Remove(v)
	}
	return s.array.Remove(v)
}

// Contains reports whether v is in the set.
func (s *AdaptiveSet[T]) Contains(v T) bool {
	if s.hash != nil {
		return s.hash.Contains(v)
	}
	return s.array.Contains(v)
}

// Len returns the number of elements.
func (s *AdaptiveSet[T]) Len() int {
	if s.hash != nil {
		return s.hash.Len()
	}
	return s.array.Len()
}

// Clear removes all elements and reverts to the array representation.
func (s *AdaptiveSet[T]) Clear() {
	s.array = NewArraySet[T]()
	s.hash = nil
}

// ForEach calls fn on each element until fn returns false.
func (s *AdaptiveSet[T]) ForEach(fn func(T) bool) {
	if s.hash != nil {
		s.hash.ForEach(fn)
		return
	}
	s.array.ForEach(fn)
}

// FootprintBytes estimates the active representation.
func (s *AdaptiveSet[T]) FootprintBytes() int {
	if s.hash != nil {
		return structBase + s.hash.FootprintBytes()
	}
	return structBase + s.array.FootprintBytes()
}
