package collections

import (
	"sync"
	"unsafe"
)

// sizeOf returns the in-memory size of a value of type T as stored in a
// slice or struct field (shallow size; referents are not followed). It
// backs the FootprintBytes estimates of every variant.
func sizeOf[T any](v T) int { return int(unsafe.Sizeof(v)) }

// rwMutexBytes is the in-memory size of a sync.RWMutex, charged by the
// concurrent wrappers for each lock they embed. unsafe.Sizeof does not
// evaluate (or copy) its operand, so no lock value is ever copied here.
const rwMutexBytes = int(unsafe.Sizeof(sync.RWMutex{}))
