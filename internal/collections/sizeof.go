package collections

import "unsafe"

// sizeOf returns the in-memory size of a value of type T as stored in a
// slice or struct field (shallow size; referents are not followed). It
// backs the FootprintBytes estimates of every variant.
func sizeOf[T any](v T) int { return int(unsafe.Sizeof(v)) }
