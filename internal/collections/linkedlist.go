package collections

// LinkedList is the doubly-linked list, the analogue of JDK LinkedList:
// O(1) insertion and removal at either end, O(n) positional access and
// search, and a per-element node allocation (three words plus the element)
// that dominates its memory footprint.
type LinkedList[T comparable] struct {
	root llNode[T] // sentinel: root.next is the head, root.prev the tail
	size int
}

type llNode[T comparable] struct {
	val        T
	next, prev *llNode[T]
}

// NewLinkedList returns an empty LinkedList.
func NewLinkedList[T comparable]() *LinkedList[T] {
	l := &LinkedList[T]{}
	l.root.next = &l.root
	l.root.prev = &l.root
	return l
}

// nodeAt returns the node at index i, walking from the nearer end.
func (l *LinkedList[T]) nodeAt(i int) *llNode[T] {
	if i < 0 || i >= l.size {
		panic("collections: LinkedList index out of range")
	}
	if i < l.size/2 {
		n := l.root.next
		for ; i > 0; i-- {
			n = n.next
		}
		return n
	}
	n := l.root.prev
	for i = l.size - 1 - i; i > 0; i-- {
		n = n.prev
	}
	return n
}

func (l *LinkedList[T]) insertBefore(at *llNode[T], v T) {
	n := &llNode[T]{val: v, next: at, prev: at.prev}
	at.prev.next = n
	at.prev = n
	l.size++
}

func (l *LinkedList[T]) unlink(n *llNode[T]) T {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.next, n.prev = nil, nil
	l.size--
	return n.val
}

// Add appends v to the end of the list.
func (l *LinkedList[T]) Add(v T) { l.insertBefore(&l.root, v) }

// Insert places v at index i.
func (l *LinkedList[T]) Insert(i int, v T) {
	if i == l.size {
		l.Add(v)
		return
	}
	l.insertBefore(l.nodeAt(i), v)
}

// Get returns the element at index i.
func (l *LinkedList[T]) Get(i int) T { return l.nodeAt(i).val }

// Set replaces the element at index i, returning the previous value.
func (l *LinkedList[T]) Set(i int, v T) T {
	n := l.nodeAt(i)
	old := n.val
	n.val = v
	return old
}

// RemoveAt removes and returns the element at index i.
func (l *LinkedList[T]) RemoveAt(i int) T { return l.unlink(l.nodeAt(i)) }

// Remove deletes the first occurrence of v.
func (l *LinkedList[T]) Remove(v T) bool {
	for n := l.root.next; n != &l.root; n = n.next {
		if n.val == v {
			l.unlink(n)
			return true
		}
	}
	return false
}

// Contains reports whether v occurs in the list (linear scan).
func (l *LinkedList[T]) Contains(v T) bool { return l.IndexOf(v) >= 0 }

// IndexOf returns the index of the first occurrence of v, or -1.
func (l *LinkedList[T]) IndexOf(v T) int {
	i := 0
	for n := l.root.next; n != &l.root; n = n.next {
		if n.val == v {
			return i
		}
		i++
	}
	return -1
}

// Len returns the number of elements.
func (l *LinkedList[T]) Len() int { return l.size }

// Clear removes all elements.
func (l *LinkedList[T]) Clear() {
	l.root.next = &l.root
	l.root.prev = &l.root
	l.size = 0
}

// ForEach calls fn on each element in order until fn returns false.
func (l *LinkedList[T]) ForEach(fn func(T) bool) {
	for n := l.root.next; n != &l.root; n = n.next {
		if !fn(n.val) {
			return
		}
	}
}

// FootprintBytes estimates the retained heap: one three-field node per
// element plus allocator overhead per node.
func (l *LinkedList[T]) FootprintBytes() int {
	var zero T
	nodeSize := structBase + sizeOf(zero) + 2*wordBytes
	return structBase + l.size*nodeSize
}
