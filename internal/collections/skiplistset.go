package collections

import "cmp"

// SkipListSet is the sorted set over SkipListMap, mirroring how JDK
// ConcurrentSkipListSet wraps ConcurrentSkipListMap.
type SkipListSet[T cmp.Ordered] struct {
	m *SkipListMap[T, struct{}]
}

// NewSkipListSet returns an empty SkipListSet.
func NewSkipListSet[T cmp.Ordered]() *SkipListSet[T] {
	return &SkipListSet[T]{m: NewSkipListMap[T, struct{}]()}
}

// Add inserts v, reporting whether the set changed.
func (s *SkipListSet[T]) Add(v T) bool {
	_, present := s.m.Put(v, struct{}{})
	return !present
}

// Remove deletes v, reporting whether the set changed.
func (s *SkipListSet[T]) Remove(v T) bool {
	_, present := s.m.Remove(v)
	return present
}

// Contains reports whether v is in the set.
func (s *SkipListSet[T]) Contains(v T) bool { return s.m.ContainsKey(v) }

// Len returns the number of elements.
func (s *SkipListSet[T]) Len() int { return s.m.Len() }

// Clear removes all elements.
func (s *SkipListSet[T]) Clear() { s.m.Clear() }

// ForEach calls fn on each element in ascending order until fn returns
// false.
func (s *SkipListSet[T]) ForEach(fn func(T) bool) {
	s.m.ForEach(func(k T, _ struct{}) bool { return fn(k) })
}

// Min returns the smallest element, if any.
func (s *SkipListSet[T]) Min() (T, bool) { return s.m.MinKey() }

// Max returns the largest element, if any.
func (s *SkipListSet[T]) Max() (T, bool) { return s.m.MaxKey() }

// Range calls fn on each element in [from, to] ascending until fn returns
// false.
func (s *SkipListSet[T]) Range(from, to T, fn func(T) bool) {
	s.m.Range(from, to, func(k T, _ struct{}) bool { return fn(k) })
}

// FootprintBytes estimates the backing skip list.
func (s *SkipListSet[T]) FootprintBytes() int { return structBase + s.m.FootprintBytes() }
