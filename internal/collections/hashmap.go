package collections

// HashMap is the chained-bucket hash map, the analogue of JDK HashMap: a
// bucket table of singly-linked entry chains, load factor 0.75, power-of-two
// capacity doubling. Each entry is a separate heap allocation holding the
// cached hash, key, value and chain link — the per-entry overhead that makes
// chained maps the memory-heavy end of the design space.
type HashMap[K comparable, V any] struct {
	h       hasher[K]
	buckets []*hmEntry[K, V]
	size    int
}

type hmEntry[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
	next *hmEntry[K, V]
}

const (
	hashMapLoadNum = 3 // resize when size > cap * 3/4
	hashMapLoadDen = 4
	hashMapMinCap  = 8
)

// NewHashMap returns an empty HashMap.
func NewHashMap[K comparable, V any]() *HashMap[K, V] {
	return NewHashMapCap[K, V](0)
}

// NewHashMapCap returns an empty HashMap pre-sized for capHint entries.
func NewHashMapCap[K comparable, V any](capHint int) *HashMap[K, V] {
	c := hashMapMinCap
	if capHint > 0 {
		c = nextPow2(capHint * hashMapLoadDen / hashMapLoadNum)
		if c < hashMapMinCap {
			c = hashMapMinCap
		}
	}
	return &HashMap[K, V]{
		h:       newHasher[K](),
		buckets: make([]*hmEntry[K, V], c),
	}
}

func (m *HashMap[K, V]) bucketFor(hash uint64) int {
	return int(hash & uint64(len(m.buckets)-1))
}

func (m *HashMap[K, V]) find(k K, hash uint64) *hmEntry[K, V] {
	for e := m.buckets[m.bucketFor(hash)]; e != nil; e = e.next {
		if e.hash == hash && e.key == k {
			return e
		}
	}
	return nil
}

func (m *HashMap[K, V]) grow() {
	old := m.buckets
	m.buckets = make([]*hmEntry[K, V], 2*len(old))
	for _, e := range old {
		for e != nil {
			next := e.next
			b := m.bucketFor(e.hash)
			e.next = m.buckets[b]
			m.buckets[b] = e
			e = next
		}
	}
}

// Put associates k with v, returning the previous value if present.
func (m *HashMap[K, V]) Put(k K, v V) (V, bool) {
	hash := m.h.hash(k)
	if e := m.find(k, hash); e != nil {
		old := e.val
		e.val = v
		return old, true
	}
	if (m.size+1)*hashMapLoadDen > len(m.buckets)*hashMapLoadNum {
		m.grow()
	}
	b := m.bucketFor(hash)
	m.buckets[b] = &hmEntry[K, V]{hash: hash, key: k, val: v, next: m.buckets[b]}
	m.size++
	var zero V
	return zero, false
}

// Get returns the value for k and whether it was present.
func (m *HashMap[K, V]) Get(k K) (V, bool) {
	if e := m.find(k, m.h.hash(k)); e != nil {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Remove deletes the entry for k.
func (m *HashMap[K, V]) Remove(k K) (V, bool) {
	hash := m.h.hash(k)
	b := m.bucketFor(hash)
	var prev *hmEntry[K, V]
	for e := m.buckets[b]; e != nil; prev, e = e, e.next {
		if e.hash == hash && e.key == k {
			if prev == nil {
				m.buckets[b] = e.next
			} else {
				prev.next = e.next
			}
			m.size--
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k has an entry.
func (m *HashMap[K, V]) ContainsKey(k K) bool {
	return m.find(k, m.h.hash(k)) != nil
}

// Len returns the number of entries.
func (m *HashMap[K, V]) Len() int { return m.size }

// Clear removes all entries, retaining the bucket table.
func (m *HashMap[K, V]) Clear() {
	clear(m.buckets)
	m.size = 0
}

// ForEach calls fn on each entry in bucket order until fn returns false.
func (m *HashMap[K, V]) ForEach(fn func(K, V) bool) {
	for _, e := range m.buckets {
		for ; e != nil; e = e.next {
			if !fn(e.key, e.val) {
				return
			}
		}
	}
}

// FootprintBytes estimates bucket table plus one boxed entry per element.
func (m *HashMap[K, V]) FootprintBytes() int {
	var zk K
	var zv V
	entry := structBase + 8 + sizeOf(zk) + sizeOf(zv) + wordBytes
	return structBase + sliceHeader + len(m.buckets)*wordBytes + m.size*entry
}
