package collections

import "cmp"

// AVLTreeSet is the sorted set over AVLTreeMap — the analogue of JDK
// TreeSet (which wraps TreeMap the same way).
type AVLTreeSet[T cmp.Ordered] struct {
	m *AVLTreeMap[T, struct{}]
}

// NewAVLTreeSet returns an empty AVLTreeSet.
func NewAVLTreeSet[T cmp.Ordered]() *AVLTreeSet[T] {
	return &AVLTreeSet[T]{m: NewAVLTreeMap[T, struct{}]()}
}

// Add inserts v, reporting whether the set changed.
func (s *AVLTreeSet[T]) Add(v T) bool {
	_, present := s.m.Put(v, struct{}{})
	return !present
}

// Remove deletes v, reporting whether the set changed.
func (s *AVLTreeSet[T]) Remove(v T) bool {
	_, present := s.m.Remove(v)
	return present
}

// Contains reports whether v is in the set (O(log n)).
func (s *AVLTreeSet[T]) Contains(v T) bool { return s.m.ContainsKey(v) }

// Len returns the number of elements.
func (s *AVLTreeSet[T]) Len() int { return s.m.Len() }

// Clear removes all elements.
func (s *AVLTreeSet[T]) Clear() { s.m.Clear() }

// ForEach calls fn on each element in ascending order until fn returns
// false.
func (s *AVLTreeSet[T]) ForEach(fn func(T) bool) {
	s.m.ForEach(func(k T, _ struct{}) bool { return fn(k) })
}

// Min returns the smallest element, if any.
func (s *AVLTreeSet[T]) Min() (T, bool) { return s.m.MinKey() }

// Max returns the largest element, if any.
func (s *AVLTreeSet[T]) Max() (T, bool) { return s.m.MaxKey() }

// Range calls fn on each element in [from, to] ascending until fn returns
// false.
func (s *AVLTreeSet[T]) Range(from, to T, fn func(T) bool) {
	s.m.Range(from, to, func(k T, _ struct{}) bool { return fn(k) })
}

// FootprintBytes estimates the backing tree.
func (s *AVLTreeSet[T]) FootprintBytes() int { return structBase + s.m.FootprintBytes() }
