package collections

// ArrayMap is a flat parallel-slice map with linear-scan key search — the
// analogue of the ArrayMap variants from Google HTTP Client and Stanford
// NLP. It is the most memory-efficient map variant (no index structure at
// all) with O(n) lookups that nonetheless win below a few tens of entries.
type ArrayMap[K comparable, V any] struct {
	keys []K
	vals []V
}

// NewArrayMap returns an empty ArrayMap.
func NewArrayMap[K comparable, V any]() *ArrayMap[K, V] { return &ArrayMap[K, V]{} }

// NewArrayMapCap returns an empty ArrayMap with capacity for capHint
// entries.
func NewArrayMapCap[K comparable, V any](capHint int) *ArrayMap[K, V] {
	if capHint <= 0 {
		return &ArrayMap[K, V]{}
	}
	return &ArrayMap[K, V]{
		keys: make([]K, 0, capHint),
		vals: make([]V, 0, capHint),
	}
}

func (m *ArrayMap[K, V]) indexOf(k K) int {
	for i, key := range m.keys {
		if key == k {
			return i
		}
	}
	return -1
}

// Put associates k with v, returning the previous value if present.
func (m *ArrayMap[K, V]) Put(k K, v V) (V, bool) {
	if i := m.indexOf(k); i >= 0 {
		old := m.vals[i]
		m.vals[i] = v
		return old, true
	}
	m.keys = append(m.keys, k)
	m.vals = append(m.vals, v)
	var zero V
	return zero, false
}

// Get returns the value for k and whether it was present.
func (m *ArrayMap[K, V]) Get(k K) (V, bool) {
	if i := m.indexOf(k); i >= 0 {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// Remove deletes the entry for k, preserving insertion order.
func (m *ArrayMap[K, V]) Remove(k K) (V, bool) {
	i := m.indexOf(k)
	var zero V
	if i < 0 {
		return zero, false
	}
	old := m.vals[i]
	last := len(m.keys) - 1
	copy(m.keys[i:], m.keys[i+1:])
	copy(m.vals[i:], m.vals[i+1:])
	var zk K
	m.keys[last] = zk
	m.vals[last] = zero
	m.keys = m.keys[:last]
	m.vals = m.vals[:last]
	return old, true
}

// ContainsKey reports whether k has an entry (linear scan).
func (m *ArrayMap[K, V]) ContainsKey(k K) bool { return m.indexOf(k) >= 0 }

// Len returns the number of entries.
func (m *ArrayMap[K, V]) Len() int { return len(m.keys) }

// Clear removes all entries, retaining capacity.
func (m *ArrayMap[K, V]) Clear() {
	var zk K
	var zv V
	for i := range m.keys {
		m.keys[i] = zk
		m.vals[i] = zv
	}
	m.keys = m.keys[:0]
	m.vals = m.vals[:0]
}

// ForEach calls fn on each entry in insertion order until fn returns false.
func (m *ArrayMap[K, V]) ForEach(fn func(K, V) bool) {
	for i, k := range m.keys {
		if !fn(k, m.vals[i]) {
			return
		}
	}
}

// Pairs exposes the backing slices for adaptive transitions; callers must
// not mutate them.
func (m *ArrayMap[K, V]) Pairs() ([]K, []V) { return m.keys, m.vals }

// FootprintBytes estimates the two backing arrays.
func (m *ArrayMap[K, V]) FootprintBytes() int {
	var zk K
	var zv V
	return structBase + 2*sliceHeader + cap(m.keys)*sizeOf(zk) + cap(m.vals)*sizeOf(zv)
}
