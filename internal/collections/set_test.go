package collections

import (
	"sort"
	"testing"
)

// forEachSetVariant runs fn as a subtest for every set variant, plus a
// low-threshold adaptive set so its hash form is always exercised.
func forEachSetVariant(t *testing.T, fn func(t *testing.T, newSet func() Set[int])) {
	t.Helper()
	for _, v := range SetVariants[int]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			fn(t, func() Set[int] { return v.New(0) })
		})
	}
	t.Run("set/adaptive-threshold3", func(t *testing.T) {
		fn(t, func() Set[int] { return NewAdaptiveSetThreshold[int](3) })
	})
}

func TestSetAddContains(t *testing.T) {
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		if s.Len() != 0 {
			t.Fatalf("new set Len = %d, want 0", s.Len())
		}
		for i := 0; i < 500; i++ {
			if !s.Add(i * 7) {
				t.Fatalf("Add(%d) = false on first insert", i*7)
			}
		}
		if s.Len() != 500 {
			t.Fatalf("Len = %d, want 500", s.Len())
		}
		for i := 0; i < 500; i++ {
			if !s.Contains(i * 7) {
				t.Fatalf("Contains(%d) = false", i*7)
			}
		}
		if s.Contains(-3) {
			t.Fatal("Contains(-3) = true for absent element")
		}
	})
}

func TestSetAddDuplicate(t *testing.T) {
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		for i := 0; i < 100; i++ {
			s.Add(i)
		}
		for i := 0; i < 100; i++ {
			if s.Add(i) {
				t.Fatalf("Add(%d) = true on duplicate insert", i)
			}
		}
		if s.Len() != 100 {
			t.Fatalf("Len = %d after duplicate inserts, want 100", s.Len())
		}
	})
}

func TestSetRemove(t *testing.T) {
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		for i := 0; i < 200; i++ {
			s.Add(i)
		}
		// Remove the evens.
		for i := 0; i < 200; i += 2 {
			if !s.Remove(i) {
				t.Fatalf("Remove(%d) = false for present element", i)
			}
		}
		if s.Len() != 100 {
			t.Fatalf("Len = %d, want 100", s.Len())
		}
		for i := 0; i < 200; i++ {
			want := i%2 == 1
			if got := s.Contains(i); got != want {
				t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
			}
		}
		if s.Remove(0) {
			t.Fatal("Remove(0) = true for already-removed element")
		}
		if s.Remove(1000) {
			t.Fatal("Remove(1000) = true for never-present element")
		}
	})
}

func TestSetRemoveThenReAdd(t *testing.T) {
	// Exercises tombstone handling in the open-addressing variants.
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		for round := 0; round < 5; round++ {
			for i := 0; i < 100; i++ {
				s.Add(i)
			}
			for i := 0; i < 100; i++ {
				if !s.Remove(i) {
					t.Fatalf("round %d: Remove(%d) failed", round, i)
				}
			}
			if s.Len() != 0 {
				t.Fatalf("round %d: Len = %d, want 0", round, s.Len())
			}
		}
		s.Add(42)
		if !s.Contains(42) || s.Len() != 1 {
			t.Fatal("set corrupt after add/remove churn")
		}
	})
}

func TestSetChurnKeepsProbing(t *testing.T) {
	// Heavy interleaved add/remove with a fixed live window; detects
	// tombstone-chain breakage where a later lookup misses a live key.
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		const window = 64
		for i := 0; i < 4000; i++ {
			s.Add(i)
			if i >= window {
				if !s.Remove(i - window) {
					t.Fatalf("Remove(%d) failed", i-window)
				}
			}
		}
		if s.Len() != window {
			t.Fatalf("Len = %d, want %d", s.Len(), window)
		}
		for i := 4000 - window; i < 4000; i++ {
			if !s.Contains(i) {
				t.Fatalf("live element %d lost", i)
			}
		}
	})
}

func TestSetClear(t *testing.T) {
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		for i := 0; i < 100; i++ {
			s.Add(i)
		}
		s.Clear()
		if s.Len() != 0 {
			t.Fatalf("Len after Clear = %d, want 0", s.Len())
		}
		for i := 0; i < 100; i++ {
			if s.Contains(i) {
				t.Fatalf("Contains(%d) = true after Clear", i)
			}
		}
		if !s.Add(1) || s.Len() != 1 {
			t.Fatal("set unusable after Clear")
		}
	})
}

func TestSetForEach(t *testing.T) {
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		for i := 0; i < 50; i++ {
			s.Add(i)
		}
		var got []int
		s.ForEach(func(v int) bool {
			got = append(got, v)
			return true
		})
		if len(got) != 50 {
			t.Fatalf("ForEach visited %d elements, want 50", len(got))
		}
		sort.Ints(got)
		for i, v := range got {
			if v != i {
				t.Fatalf("ForEach element set wrong at %d: %d", i, v)
			}
		}
		count := 0
		s.ForEach(func(int) bool {
			count++
			return count < 7
		})
		if count != 7 {
			t.Fatalf("early-terminated ForEach visited %d, want 7", count)
		}
	})
}

func TestSetInsertionOrderVariants(t *testing.T) {
	// LinkedHashSet and ArraySet guarantee insertion-order iteration.
	for _, newSet := range map[string]func() Set[int]{
		"linkedhash": func() Set[int] { return NewLinkedHashSet[int]() },
		"array":      func() Set[int] { return NewArraySet[int]() },
	} {
		s := newSet()
		order := []int{5, 3, 9, 1, 7}
		for _, v := range order {
			s.Add(v)
		}
		var got []int
		s.ForEach(func(v int) bool {
			got = append(got, v)
			return true
		})
		for i, w := range order {
			if got[i] != w {
				t.Fatalf("insertion order broken: got %v, want %v", got, order)
			}
		}
	}
}

func TestLinkedHashSetOrderAfterRemove(t *testing.T) {
	s := NewLinkedHashSet[int]()
	for i := 0; i < 10; i++ {
		s.Add(i)
	}
	s.Remove(0) // head
	s.Remove(9) // tail
	s.Remove(5) // middle
	want := []int{1, 2, 3, 4, 6, 7, 8}
	var got []int
	s.ForEach(func(v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSetGrowthAcrossResizes(t *testing.T) {
	forEachSetVariant(t, func(t *testing.T, newSet func() Set[int]) {
		s := newSet()
		const n = 10000
		for i := 0; i < n; i++ {
			s.Add(i)
		}
		if s.Len() != n {
			t.Fatalf("Len = %d, want %d", s.Len(), n)
		}
		for i := 0; i < n; i += 97 {
			if !s.Contains(i) {
				t.Fatalf("Contains(%d) = false after growth", i)
			}
		}
	})
}

func TestSetFootprintOrdering(t *testing.T) {
	// At a fixed size well above the adaptive threshold, the memory
	// ordering the paper relies on must hold: array < compact < open
	// variants, and chained (boxed entries) the largest. Size 900 is
	// chosen so the power-of-two tables of the presets do not coincide
	// (at e.g. 1000 both 0.5 and 0.9 load factors round up to 2048).
	const n = 900
	build := func(id VariantID) int {
		s := NewSetOf[int](id, 0)
		for i := 0; i < n; i++ {
			s.Add(i)
		}
		return s.(Sizer).FootprintBytes()
	}
	array := build(ArraySetID)
	compact := build(CompactHashSetID)
	openCmp := build(OpenHashSetCmpID)
	openFast := build(OpenHashSetFastID)
	chained := build(HashSetID)
	if !(array < compact) {
		t.Errorf("ArraySet (%d) should be smaller than CompactHashSet (%d)", array, compact)
	}
	if !(compact < chained) {
		t.Errorf("CompactHashSet (%d) should be smaller than chained HashSet (%d)", compact, chained)
	}
	if !(openCmp < openFast) {
		t.Errorf("compact OpenHashSet (%d) should be smaller than fast OpenHashSet (%d)", openCmp, openFast)
	}
	if !(openFast < chained) {
		t.Errorf("fast OpenHashSet (%d) should be smaller than chained HashSet (%d)", openFast, chained)
	}
}

func TestSetStringElements(t *testing.T) {
	for _, v := range SetVariants[string]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			s := v.New(0)
			s.Add("alpha")
			s.Add("beta")
			s.Add("alpha")
			if s.Len() != 2 {
				t.Fatalf("Len = %d, want 2", s.Len())
			}
			if !s.Contains("beta") || s.Contains("gamma") {
				t.Fatal("Contains misbehaves for strings")
			}
			if !s.Remove("alpha") || s.Contains("alpha") {
				t.Fatal("Remove misbehaves for strings")
			}
		})
	}
}
