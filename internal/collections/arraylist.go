package collections

// ArrayList is the array-backed list, the analogue of JDK ArrayList: a
// contiguous slice with amortized O(1) append, O(1) positional access and
// O(n) search and middle insertion/removal.
type ArrayList[T comparable] struct {
	elems []T
}

// NewArrayList returns an empty ArrayList.
func NewArrayList[T comparable]() *ArrayList[T] {
	return &ArrayList[T]{}
}

// NewArrayListCap returns an empty ArrayList with capacity for capHint
// elements. A non-positive hint is ignored.
func NewArrayListCap[T comparable](capHint int) *ArrayList[T] {
	if capHint <= 0 {
		return &ArrayList[T]{}
	}
	return &ArrayList[T]{elems: make([]T, 0, capHint)}
}

// Add appends v to the end of the list.
func (l *ArrayList[T]) Add(v T) { l.elems = append(l.elems, v) }

// Insert places v at index i, shifting subsequent elements right.
func (l *ArrayList[T]) Insert(i int, v T) {
	if i < 0 || i > len(l.elems) {
		panic("collections: ArrayList.Insert index out of range")
	}
	var zero T
	l.elems = append(l.elems, zero)
	copy(l.elems[i+1:], l.elems[i:])
	l.elems[i] = v
}

// Get returns the element at index i.
func (l *ArrayList[T]) Get(i int) T { return l.elems[i] }

// Set replaces the element at index i, returning the previous value.
func (l *ArrayList[T]) Set(i int, v T) T {
	old := l.elems[i]
	l.elems[i] = v
	return old
}

// RemoveAt removes and returns the element at index i.
func (l *ArrayList[T]) RemoveAt(i int) T {
	old := l.elems[i]
	copy(l.elems[i:], l.elems[i+1:])
	var zero T
	l.elems[len(l.elems)-1] = zero
	l.elems = l.elems[:len(l.elems)-1]
	return old
}

// Remove deletes the first occurrence of v.
func (l *ArrayList[T]) Remove(v T) bool {
	i := l.IndexOf(v)
	if i < 0 {
		return false
	}
	l.RemoveAt(i)
	return true
}

// Contains reports whether v occurs in the list (linear scan).
func (l *ArrayList[T]) Contains(v T) bool { return l.IndexOf(v) >= 0 }

// IndexOf returns the index of the first occurrence of v, or -1.
func (l *ArrayList[T]) IndexOf(v T) int {
	for i, e := range l.elems {
		if e == v {
			return i
		}
	}
	return -1
}

// Len returns the number of elements.
func (l *ArrayList[T]) Len() int { return len(l.elems) }

// Clear removes all elements, retaining capacity.
func (l *ArrayList[T]) Clear() {
	var zero T
	for i := range l.elems {
		l.elems[i] = zero
	}
	l.elems = l.elems[:0]
}

// ForEach calls fn on each element in order until fn returns false.
func (l *ArrayList[T]) ForEach(fn func(T) bool) {
	for _, e := range l.elems {
		if !fn(e) {
			return
		}
	}
}

// FootprintBytes estimates the retained heap of the backing array.
func (l *ArrayList[T]) FootprintBytes() int {
	var zero T
	return structBase + sliceHeader + cap(l.elems)*sizeOf(zero)
}
