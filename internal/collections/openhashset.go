package collections

// OpenHashSet is an open-addressing (linear probing, tombstone deletion)
// hash set storing elements in a flat array — the analogue of the Koloboke /
// Eclipse / fastutil open-hash sets. See OpenHashPreset for the three
// memory/speed configurations.
type OpenHashSet[T comparable] struct {
	h      hasher[T]
	elems  []T
	state  []uint8
	size   int
	used   int
	preset OpenHashPreset
}

// NewOpenHashSet returns an empty set with the balanced preset.
func NewOpenHashSet[T comparable]() *OpenHashSet[T] {
	return NewOpenHashSetPreset[T](OpenBalanced, 0)
}

// NewOpenHashSetPreset returns an empty set with the given preset, pre-sized
// for capHint elements.
func NewOpenHashSetPreset[T comparable](p OpenHashPreset, capHint int) *OpenHashSet[T] {
	c := openHashMinCap
	if capHint > 0 {
		c = nextPow2(capHint*p.LoadDen/p.LoadNum + 1)
		if c < openHashMinCap {
			c = openHashMinCap
		}
	}
	return &OpenHashSet[T]{
		h:      newHasher[T](),
		elems:  make([]T, c),
		state:  make([]uint8, c),
		preset: p,
	}
}

// Preset returns the preset this set was built with.
func (s *OpenHashSet[T]) Preset() OpenHashPreset { return s.preset }

func (s *OpenHashSet[T]) slotOf(v T, hash uint64) (found, insert int) {
	mask := uint64(len(s.elems) - 1)
	i := hash & mask
	insert = -1
	for {
		switch s.state[i] {
		case slotEmpty:
			if insert < 0 {
				insert = int(i)
			}
			return -1, insert
		case slotDeleted:
			if insert < 0 {
				insert = int(i)
			}
		case slotFull:
			if s.elems[i] == v {
				return int(i), int(i)
			}
		}
		i = (i + 1) & mask
	}
}

func (s *OpenHashSet[T]) rehash(newCap int) {
	oldElems, oldState := s.elems, s.state
	s.elems = make([]T, newCap)
	s.state = make([]uint8, newCap)
	s.used = s.size
	mask := uint64(newCap - 1)
	for i, st := range oldState {
		if st != slotFull {
			continue
		}
		j := s.h.hash(oldElems[i]) & mask
		for s.state[j] == slotFull {
			j = (j + 1) & mask
		}
		s.elems[j] = oldElems[i]
		s.state[j] = slotFull
	}
}

// Add inserts v, reporting whether the set changed.
func (s *OpenHashSet[T]) Add(v T) bool {
	hash := s.h.hash(v)
	found, insert := s.slotOf(v, hash)
	if found >= 0 {
		return false
	}
	if (s.used+1)*s.preset.LoadDen > len(s.elems)*s.preset.LoadNum {
		newCap := len(s.elems)
		if (s.size+1)*s.preset.LoadDen > newCap*s.preset.LoadNum {
			newCap *= 2
		}
		s.rehash(newCap)
		_, insert = s.slotOf(v, hash)
	}
	if s.state[insert] == slotEmpty {
		s.used++
	}
	s.elems[insert] = v
	s.state[insert] = slotFull
	s.size++
	return true
}

// Remove deletes v, leaving a tombstone.
func (s *OpenHashSet[T]) Remove(v T) bool {
	found, _ := s.slotOf(v, s.h.hash(v))
	if found < 0 {
		return false
	}
	var zero T
	s.elems[found] = zero
	s.state[found] = slotDeleted
	s.size--
	return true
}

// Contains reports whether v is in the set.
func (s *OpenHashSet[T]) Contains(v T) bool {
	found, _ := s.slotOf(v, s.h.hash(v))
	return found >= 0
}

// Len returns the number of elements.
func (s *OpenHashSet[T]) Len() int { return s.size }

// Clear removes all elements, retaining the table.
func (s *OpenHashSet[T]) Clear() {
	clear(s.elems)
	clear(s.state)
	s.size = 0
	s.used = 0
}

// ForEach calls fn on each element in slot order until fn returns false.
func (s *OpenHashSet[T]) ForEach(fn func(T) bool) {
	for i, st := range s.state {
		if st == slotFull && !fn(s.elems[i]) {
			return
		}
	}
}

// FootprintBytes estimates the flat element and state arrays.
func (s *OpenHashSet[T]) FootprintBytes() int {
	var zero T
	c := len(s.elems)
	return structBase + 2*sliceHeader + c*(sizeOf(zero)+1)
}
