package collections

// ArraySet is a flat-slice set with linear-scan membership — the analogue of
// the ArraySet variants shipped by Google HTTP Client and Stanford NLP. It
// has by far the smallest footprint of any set variant and, below a few tens
// of elements, lookups competitive with (often faster than) the hash sets
// thanks to locality; above that its O(n) scan loses badly. This narrow
// best-case is exactly why the paper's adaptive variants start from it.
type ArraySet[T comparable] struct {
	elems []T
}

// NewArraySet returns an empty ArraySet.
func NewArraySet[T comparable]() *ArraySet[T] { return &ArraySet[T]{} }

// NewArraySetCap returns an empty ArraySet with capacity for capHint
// elements.
func NewArraySetCap[T comparable](capHint int) *ArraySet[T] {
	if capHint <= 0 {
		return &ArraySet[T]{}
	}
	return &ArraySet[T]{elems: make([]T, 0, capHint)}
}

// Add inserts v, reporting whether the set changed.
func (s *ArraySet[T]) Add(v T) bool {
	if s.Contains(v) {
		return false
	}
	s.elems = append(s.elems, v)
	return true
}

// Remove deletes v, reporting whether the set changed. Order is preserved
// (matching the reference Java implementations, which shift).
func (s *ArraySet[T]) Remove(v T) bool {
	for i, e := range s.elems {
		if e == v {
			copy(s.elems[i:], s.elems[i+1:])
			var zero T
			s.elems[len(s.elems)-1] = zero
			s.elems = s.elems[:len(s.elems)-1]
			return true
		}
	}
	return false
}

// Contains reports whether v is in the set (linear scan).
func (s *ArraySet[T]) Contains(v T) bool {
	for _, e := range s.elems {
		if e == v {
			return true
		}
	}
	return false
}

// Len returns the number of elements.
func (s *ArraySet[T]) Len() int { return len(s.elems) }

// Clear removes all elements, retaining capacity.
func (s *ArraySet[T]) Clear() {
	var zero T
	for i := range s.elems {
		s.elems[i] = zero
	}
	s.elems = s.elems[:0]
}

// ForEach calls fn on each element in insertion order until fn returns
// false.
func (s *ArraySet[T]) ForEach(fn func(T) bool) {
	for _, e := range s.elems {
		if !fn(e) {
			return
		}
	}
}

// Elems exposes the backing slice for adaptive transitions; callers must not
// mutate it.
func (s *ArraySet[T]) Elems() []T { return s.elems }

// FootprintBytes estimates the backing array.
func (s *ArraySet[T]) FootprintBytes() int {
	var zero T
	return structBase + sliceHeader + cap(s.elems)*sizeOf(zero)
}
