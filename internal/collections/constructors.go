package collections

// This file maps the module's zero-argument constructor functions to the
// catalog variants they instantiate. The rewrite pipeline (internal/rewrite,
// cmd/switchparse, cmd/collopt) recognizes allocation sites through this
// table instead of a hard-coded constructor list, so a variant registered
// with WithConstructor is discovered — and rewritable — exactly like the
// builtins.
//
// Only no-argument constructors appear here: a call that passes a capacity
// hint or a preset (NewArrayListCap, NewOpenHashSetPreset, NewSyncSet, ...)
// is an explicit, parameterized choice the paper's parser leaves alone.

// builtinConstructor returns the zero-argument constructor name of a builtin
// variant, "" when the variant has none (the preset- and capacity-taking
// concurrent constructors).
func builtinConstructor(id VariantID) string {
	switch id {
	case ArrayListID:
		return "NewArrayList"
	case LinkedListID:
		return "NewLinkedList"
	case HashArrayListID:
		return "NewHashArrayList"
	case AdaptiveListID:
		return "NewAdaptiveList"
	case HashSetID:
		return "NewHashSet"
	case OpenHashSetBalID:
		return "NewOpenHashSet" // the no-arg form uses the balanced preset
	case LinkedHashSetID:
		return "NewLinkedHashSet"
	case ArraySetID:
		return "NewArraySet"
	case CompactHashSetID:
		return "NewCompactHashSet"
	case AdaptiveSetID:
		return "NewAdaptiveSet"
	case HashMapID:
		return "NewHashMap"
	case OpenHashMapBalID:
		return "NewOpenHashMap"
	case LinkedHashMapID:
		return "NewLinkedHashMap"
	case ArrayMapID:
		return "NewArrayMap"
	case CompactHashMapID:
		return "NewCompactHashMap"
	case AdaptiveMapID:
		return "NewAdaptiveMap"
	case AVLTreeSetID:
		return "NewAVLTreeSet"
	case SkipListSetID:
		return "NewSkipListSet"
	case SortedArraySetID:
		return "NewSortedArraySet"
	case AVLTreeMapID:
		return "NewAVLTreeMap"
	case SkipListMapID:
		return "NewSkipListMap"
	case SortedArrayMapID:
		return "NewSortedArrayMap"
	}
	return ""
}

// WithConstructor names the zero-argument constructor function a custom
// variant is instantiated through, making its allocation sites recognizable
// to the source-rewriting pipeline.
func WithConstructor(name string) RegisterOption {
	return func(e *Entry) { e.Constructor = name }
}

// ConstructorIndex returns the constructor-name → catalog-entry mapping of
// the current catalog snapshot. The map is rebuilt per call from one atomic
// snapshot read; callers that process many sites (the rewriter) should build
// it once per run and reuse it.
func ConstructorIndex() map[string]Entry {
	s := snapshot()
	out := make(map[string]Entry, len(s.entries))
	for _, e := range s.entries {
		if e.Constructor != "" {
			out[e.Constructor] = e
		}
	}
	return out
}
