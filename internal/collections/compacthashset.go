package collections

// CompactHashSet is the dense hash set counterpart of CompactHashMap:
// packed element storage indexed by an open-addressed int32 table. Empty
// slots cost 4 bytes rather than an element slot, giving the smallest
// footprint of the indexed sets at the price of an extra indirection.
type CompactHashSet[T comparable] struct {
	h     hasher[T]
	index []int32
	elems []T
	used  int
}

// NewCompactHashSet returns an empty CompactHashSet.
func NewCompactHashSet[T comparable]() *CompactHashSet[T] {
	return NewCompactHashSetCap[T](0)
}

// NewCompactHashSetCap returns an empty CompactHashSet pre-sized for capHint
// elements.
func NewCompactHashSetCap[T comparable](capHint int) *CompactHashSet[T] {
	c := openHashMinCap
	if capHint > 0 {
		c = nextPow2(capHint*4/3 + 1)
		if c < openHashMinCap {
			c = openHashMinCap
		}
	}
	s := &CompactHashSet[T]{h: newHasher[T](), index: make([]int32, c)}
	for i := range s.index {
		s.index[i] = compactEmpty
	}
	if capHint > 0 {
		s.elems = make([]T, 0, capHint)
	}
	return s
}

func (s *CompactHashSet[T]) slotOf(v T, hash uint64) (found, insert int) {
	mask := uint64(len(s.index) - 1)
	i := hash & mask
	insert = -1
	for {
		switch d := s.index[i]; d {
		case compactEmpty:
			if insert < 0 {
				insert = int(i)
			}
			return -1, insert
		case compactTombstone:
			if insert < 0 {
				insert = int(i)
			}
		default:
			if s.elems[d] == v {
				return int(i), int(i)
			}
		}
		i = (i + 1) & mask
	}
}

func (s *CompactHashSet[T]) rehash(newCap int) {
	s.index = make([]int32, newCap)
	for i := range s.index {
		s.index[i] = compactEmpty
	}
	s.used = len(s.elems)
	mask := uint64(newCap - 1)
	for d, v := range s.elems {
		i := s.h.hash(v) & mask
		for s.index[i] != compactEmpty {
			i = (i + 1) & mask
		}
		s.index[i] = int32(d)
	}
}

// Add inserts v, reporting whether the set changed.
func (s *CompactHashSet[T]) Add(v T) bool {
	hash := s.h.hash(v)
	found, insert := s.slotOf(v, hash)
	if found >= 0 {
		return false
	}
	if (s.used+1)*4 > len(s.index)*3 {
		newCap := len(s.index)
		if (len(s.elems)+1)*4 > newCap*3 {
			newCap *= 2
		}
		s.rehash(newCap)
		_, insert = s.slotOf(v, hash)
	}
	if s.index[insert] == compactEmpty {
		s.used++
	}
	s.index[insert] = int32(len(s.elems))
	s.elems = append(s.elems, v)
	return true
}

// Remove deletes v, keeping the dense array packed via swap-remove.
func (s *CompactHashSet[T]) Remove(v T) bool {
	found, _ := s.slotOf(v, s.h.hash(v))
	if found < 0 {
		return false
	}
	d := s.index[found]
	s.index[found] = compactTombstone
	last := int32(len(s.elems) - 1)
	if d != last {
		moved := s.elems[last]
		slot, _ := s.slotOf(moved, s.h.hash(moved))
		s.elems[d] = moved
		s.index[slot] = d
	}
	var zero T
	s.elems[last] = zero
	s.elems = s.elems[:last]
	return true
}

// Contains reports whether v is in the set.
func (s *CompactHashSet[T]) Contains(v T) bool {
	found, _ := s.slotOf(v, s.h.hash(v))
	return found >= 0
}

// Len returns the number of elements.
func (s *CompactHashSet[T]) Len() int { return len(s.elems) }

// Clear removes all elements, retaining the index table.
func (s *CompactHashSet[T]) Clear() {
	for i := range s.index {
		s.index[i] = compactEmpty
	}
	var zero T
	for i := range s.elems {
		s.elems[i] = zero
	}
	s.elems = s.elems[:0]
	s.used = 0
}

// ForEach calls fn on each element in dense order until fn returns false.
func (s *CompactHashSet[T]) ForEach(fn func(T) bool) {
	for _, v := range s.elems {
		if !fn(v) {
			return
		}
	}
}

// FootprintBytes estimates the int32 index table plus the packed elements.
func (s *CompactHashSet[T]) FootprintBytes() int {
	var zero T
	return structBase + 2*sliceHeader + len(s.index)*4 + cap(s.elems)*sizeOf(zero)
}
