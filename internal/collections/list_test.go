package collections

import (
	"testing"
)

// forEachListVariant runs fn as a subtest for every list variant.
func forEachListVariant(t *testing.T, fn func(t *testing.T, newList func() List[int])) {
	t.Helper()
	for _, v := range ListVariants[int]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			fn(t, func() List[int] { return v.New(0) })
		})
	}
	// Also exercise a low-threshold adaptive list so the hash form is hit
	// by every conformance test, not only by large inputs.
	t.Run("list/adaptive-threshold2", func(t *testing.T) {
		fn(t, func() List[int] { return NewAdaptiveListThreshold[int](2) })
	})
}

func TestListAddGetLen(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		if l.Len() != 0 {
			t.Fatalf("new list Len = %d, want 0", l.Len())
		}
		for i := 0; i < 100; i++ {
			l.Add(i * 3)
		}
		if l.Len() != 100 {
			t.Fatalf("Len = %d, want 100", l.Len())
		}
		for i := 0; i < 100; i++ {
			if got := l.Get(i); got != i*3 {
				t.Fatalf("Get(%d) = %d, want %d", i, got, i*3)
			}
		}
	})
}

func TestListInsert(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		l.Insert(0, 10) // insert into empty at 0
		l.Insert(1, 30) // insert at end
		l.Insert(1, 20) // insert in middle
		l.Insert(0, 5)  // insert at head
		want := []int{5, 10, 20, 30}
		if l.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", l.Len(), len(want))
		}
		for i, w := range want {
			if got := l.Get(i); got != w {
				t.Errorf("Get(%d) = %d, want %d", i, got, w)
			}
		}
	})
}

func TestListInsertMiddleMany(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for i := 0; i < 50; i++ {
			l.Add(i)
		}
		// Repeated middle insertion, the paper's "middle" critical op.
		for i := 0; i < 50; i++ {
			l.Insert(l.Len()/2, 1000+i)
		}
		if l.Len() != 100 {
			t.Fatalf("Len = %d, want 100", l.Len())
		}
		for i := 0; i < 50; i++ {
			if !l.Contains(1000 + i) {
				t.Fatalf("missing inserted element %d", 1000+i)
			}
		}
	})
}

func TestListSet(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for i := 0; i < 10; i++ {
			l.Add(i)
		}
		if old := l.Set(4, 99); old != 4 {
			t.Fatalf("Set returned %d, want 4", old)
		}
		if got := l.Get(4); got != 99 {
			t.Fatalf("Get(4) = %d, want 99", got)
		}
		if l.Contains(4) {
			t.Fatal("list still contains overwritten value 4")
		}
		if !l.Contains(99) {
			t.Fatal("list missing new value 99")
		}
	})
}

func TestListRemoveAt(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for i := 0; i < 5; i++ {
			l.Add(i)
		}
		if got := l.RemoveAt(2); got != 2 {
			t.Fatalf("RemoveAt(2) = %d, want 2", got)
		}
		want := []int{0, 1, 3, 4}
		for i, w := range want {
			if got := l.Get(i); got != w {
				t.Errorf("Get(%d) = %d, want %d", i, got, w)
			}
		}
		if got := l.RemoveAt(0); got != 0 {
			t.Fatalf("RemoveAt(0) = %d, want 0", got)
		}
		if got := l.RemoveAt(l.Len() - 1); got != 4 {
			t.Fatalf("RemoveAt(last) = %d, want 4", got)
		}
		if l.Len() != 2 {
			t.Fatalf("Len = %d, want 2", l.Len())
		}
	})
}

func TestListRemoveValue(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for _, v := range []int{7, 8, 7, 9} {
			l.Add(v)
		}
		if !l.Remove(7) {
			t.Fatal("Remove(7) = false, want true")
		}
		// Only the first occurrence goes; the second 7 remains.
		if !l.Contains(7) {
			t.Fatal("second occurrence of 7 should remain")
		}
		if got := l.Get(0); got != 8 {
			t.Fatalf("Get(0) = %d, want 8", got)
		}
		if l.Remove(42) {
			t.Fatal("Remove(42) = true for absent element")
		}
		if l.Len() != 3 {
			t.Fatalf("Len = %d, want 3", l.Len())
		}
	})
}

func TestListContainsIndexOf(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for i := 0; i < 200; i++ {
			l.Add(i * 2)
		}
		for i := 0; i < 200; i++ {
			if !l.Contains(i * 2) {
				t.Fatalf("Contains(%d) = false", i*2)
			}
			if l.Contains(i*2 + 1) {
				t.Fatalf("Contains(%d) = true for absent", i*2+1)
			}
			if got := l.IndexOf(i * 2); got != i {
				t.Fatalf("IndexOf(%d) = %d, want %d", i*2, got, i)
			}
		}
		if got := l.IndexOf(-1); got != -1 {
			t.Fatalf("IndexOf(-1) = %d, want -1", got)
		}
	})
}

func TestListIndexOfDuplicates(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for _, v := range []int{5, 1, 5, 2, 5} {
			l.Add(v)
		}
		if got := l.IndexOf(5); got != 0 {
			t.Fatalf("IndexOf(5) = %d, want 0 (first occurrence)", got)
		}
	})
}

func TestListClear(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for i := 0; i < 150; i++ {
			l.Add(i)
		}
		l.Clear()
		if l.Len() != 0 {
			t.Fatalf("Len after Clear = %d, want 0", l.Len())
		}
		if l.Contains(3) {
			t.Fatal("Contains(3) = true after Clear")
		}
		// The list must be reusable after Clear.
		l.Add(42)
		if l.Len() != 1 || !l.Contains(42) {
			t.Fatal("list unusable after Clear")
		}
	})
}

func TestListForEach(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		for i := 0; i < 20; i++ {
			l.Add(i)
		}
		var got []int
		l.ForEach(func(v int) bool {
			got = append(got, v)
			return true
		})
		if len(got) != 20 {
			t.Fatalf("ForEach visited %d elements, want 20", len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("ForEach order: got[%d] = %d, want %d", i, v, i)
			}
		}
		// Early termination.
		count := 0
		l.ForEach(func(int) bool {
			count++
			return count < 5
		})
		if count != 5 {
			t.Fatalf("early-terminated ForEach visited %d, want 5", count)
		}
	})
}

func TestListForEachEmpty(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		l.ForEach(func(int) bool {
			t.Fatal("ForEach callback invoked on empty list")
			return true
		})
	})
}

func TestListInsertPanics(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		l.Add(1)
		for _, bad := range []int{-1, 3} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("Insert(%d) on len-1 list did not panic", bad)
					}
				}()
				l.Insert(bad, 0)
			}()
		}
	})
}

func TestListGetPanics(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		l.Add(1)
		for _, bad := range []int{-1, 1, 100} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("Get(%d) on len-1 list did not panic", bad)
					}
				}()
				l.Get(bad)
			}()
		}
	})
}

func TestListFootprintGrows(t *testing.T) {
	forEachListVariant(t, func(t *testing.T, newList func() List[int]) {
		l := newList()
		sz, ok := l.(Sizer)
		if !ok {
			t.Fatal("list variant does not implement Sizer")
		}
		empty := sz.FootprintBytes()
		if empty <= 0 {
			t.Fatalf("empty footprint = %d, want > 0", empty)
		}
		for i := 0; i < 1000; i++ {
			l.Add(i)
		}
		full := sz.FootprintBytes()
		if full <= empty {
			t.Fatalf("footprint did not grow: empty %d, full %d", empty, full)
		}
	})
}

func TestListStringElements(t *testing.T) {
	// The variants are generic; make sure a non-integer element type works.
	for _, v := range ListVariants[string]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			l := v.New(0)
			l.Add("a")
			l.Add("b")
			l.Insert(1, "c")
			if got := l.Get(1); got != "c" {
				t.Fatalf("Get(1) = %q, want %q", got, "c")
			}
			if !l.Contains("b") || l.Contains("z") {
				t.Fatal("Contains misbehaves for strings")
			}
		})
	}
}
