package collections

import (
	"sort"
	"testing"
)

// forEachMapVariant runs fn as a subtest for every map variant, plus a
// low-threshold adaptive map so its hash form is always exercised.
func forEachMapVariant(t *testing.T, fn func(t *testing.T, newMap func() Map[int, string])) {
	t.Helper()
	for _, v := range MapVariants[int, string]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			fn(t, func() Map[int, string] { return v.New(0) })
		})
	}
	t.Run("map/adaptive-threshold3", func(t *testing.T) {
		fn(t, func() Map[int, string] { return NewAdaptiveMapThreshold[int, string](3) })
	})
}

func TestMapPutGet(t *testing.T) {
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		if m.Len() != 0 {
			t.Fatalf("new map Len = %d, want 0", m.Len())
		}
		words := []string{"zero", "one", "two", "three", "four"}
		for i, w := range words {
			if _, present := m.Put(i, w); present {
				t.Fatalf("Put(%d) reported existing entry on first insert", i)
			}
		}
		if m.Len() != len(words) {
			t.Fatalf("Len = %d, want %d", m.Len(), len(words))
		}
		for i, w := range words {
			got, ok := m.Get(i)
			if !ok || got != w {
				t.Fatalf("Get(%d) = %q, %v; want %q, true", i, got, ok, w)
			}
		}
		if _, ok := m.Get(99); ok {
			t.Fatal("Get(99) = present for absent key")
		}
	})
}

func TestMapPutOverwrite(t *testing.T) {
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		m.Put(1, "first")
		old, present := m.Put(1, "second")
		if !present || old != "first" {
			t.Fatalf("Put overwrite returned %q, %v; want %q, true", old, present, "first")
		}
		if m.Len() != 1 {
			t.Fatalf("Len = %d after overwrite, want 1", m.Len())
		}
		got, _ := m.Get(1)
		if got != "second" {
			t.Fatalf("Get(1) = %q, want %q", got, "second")
		}
	})
}

func TestMapRemove(t *testing.T) {
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		for i := 0; i < 100; i++ {
			m.Put(i, "v")
		}
		for i := 0; i < 100; i += 3 {
			got, ok := m.Remove(i)
			if !ok || got != "v" {
				t.Fatalf("Remove(%d) = %q, %v; want v, true", i, got, ok)
			}
		}
		for i := 0; i < 100; i++ {
			want := i%3 != 0
			if got := m.ContainsKey(i); got != want {
				t.Fatalf("ContainsKey(%d) = %v, want %v", i, got, want)
			}
		}
		if _, ok := m.Remove(0); ok {
			t.Fatal("Remove(0) succeeded twice")
		}
		if _, ok := m.Remove(-5); ok {
			t.Fatal("Remove(-5) succeeded for never-present key")
		}
	})
}

func TestMapChurn(t *testing.T) {
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		const window = 48
		for i := 0; i < 3000; i++ {
			m.Put(i, "x")
			if i >= window {
				if _, ok := m.Remove(i - window); !ok {
					t.Fatalf("Remove(%d) failed", i-window)
				}
			}
		}
		if m.Len() != window {
			t.Fatalf("Len = %d, want %d", m.Len(), window)
		}
		for i := 3000 - window; i < 3000; i++ {
			if !m.ContainsKey(i) {
				t.Fatalf("live key %d lost", i)
			}
		}
	})
}

func TestMapClear(t *testing.T) {
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		for i := 0; i < 80; i++ {
			m.Put(i, "v")
		}
		m.Clear()
		if m.Len() != 0 {
			t.Fatalf("Len after Clear = %d, want 0", m.Len())
		}
		if m.ContainsKey(5) {
			t.Fatal("ContainsKey(5) = true after Clear")
		}
		m.Put(7, "again")
		if got, ok := m.Get(7); !ok || got != "again" {
			t.Fatal("map unusable after Clear")
		}
	})
}

func TestMapForEach(t *testing.T) {
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		for i := 0; i < 30; i++ {
			m.Put(i, "v")
		}
		var keys []int
		m.ForEach(func(k int, v string) bool {
			if v != "v" {
				t.Fatalf("ForEach value for %d = %q", k, v)
			}
			keys = append(keys, k)
			return true
		})
		if len(keys) != 30 {
			t.Fatalf("ForEach visited %d entries, want 30", len(keys))
		}
		sort.Ints(keys)
		for i, k := range keys {
			if k != i {
				t.Fatalf("ForEach key set wrong at %d: %d", i, k)
			}
		}
		count := 0
		m.ForEach(func(int, string) bool {
			count++
			return count < 4
		})
		if count != 4 {
			t.Fatalf("early-terminated ForEach visited %d, want 4", count)
		}
	})
}

func TestMapInsertionOrderVariants(t *testing.T) {
	for name, newMap := range map[string]func() Map[int, string]{
		"linkedhash": func() Map[int, string] { return NewLinkedHashMap[int, string]() },
		"array":      func() Map[int, string] { return NewArrayMap[int, string]() },
	} {
		t.Run(name, func(t *testing.T) {
			m := newMap()
			order := []int{4, 2, 8, 0, 6}
			for _, k := range order {
				m.Put(k, "v")
			}
			var got []int
			m.ForEach(func(k int, _ string) bool {
				got = append(got, k)
				return true
			})
			for i, w := range order {
				if got[i] != w {
					t.Fatalf("insertion order broken: got %v, want %v", got, order)
				}
			}
		})
	}
}

func TestLinkedHashMapOrderAfterRemove(t *testing.T) {
	m := NewLinkedHashMap[int, int]()
	for i := 0; i < 8; i++ {
		m.Put(i, i*i)
	}
	m.Remove(0)
	m.Remove(7)
	m.Remove(3)
	want := []int{1, 2, 4, 5, 6}
	var got []int
	m.ForEach(func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMapGrowthAcrossResizes(t *testing.T) {
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		const n = 8000
		for i := 0; i < n; i++ {
			m.Put(i, "v")
		}
		if m.Len() != n {
			t.Fatalf("Len = %d, want %d", m.Len(), n)
		}
		for i := 0; i < n; i += 61 {
			if !m.ContainsKey(i) {
				t.Fatalf("ContainsKey(%d) = false after growth", i)
			}
		}
	})
}

func TestMapZeroValueValues(t *testing.T) {
	// A stored zero value must be distinguishable from absence.
	forEachMapVariant(t, func(t *testing.T, newMap func() Map[int, string]) {
		m := newMap()
		m.Put(1, "")
		got, ok := m.Get(1)
		if !ok || got != "" {
			t.Fatal("stored zero value not retrievable")
		}
		if _, ok := m.Get(2); ok {
			t.Fatal("absent key reported present")
		}
	})
}

func TestMapFootprintOrdering(t *testing.T) {
	// See TestSetFootprintOrdering for why n=900.
	const n = 900
	build := func(id VariantID) int {
		m := NewMapOf[int, int](id, 0)
		for i := 0; i < n; i++ {
			m.Put(i, i)
		}
		return m.(Sizer).FootprintBytes()
	}
	array := build(ArrayMapID)
	compact := build(CompactHashMapID)
	openCmp := build(OpenHashMapCmpID)
	openFast := build(OpenHashMapFastID)
	chained := build(HashMapID)
	linked := build(LinkedHashMapID)
	if !(array < compact) {
		t.Errorf("ArrayMap (%d) should be smaller than CompactHashMap (%d)", array, compact)
	}
	if !(compact < chained) {
		t.Errorf("CompactHashMap (%d) should be smaller than chained HashMap (%d)", compact, chained)
	}
	if !(openCmp < openFast) {
		t.Errorf("compact OpenHashMap (%d) should be smaller than fast OpenHashMap (%d)", openCmp, openFast)
	}
	if !(openFast < chained) {
		t.Errorf("fast OpenHashMap (%d) should be smaller than chained HashMap (%d)", openFast, chained)
	}
	if !(chained < linked) {
		t.Errorf("chained HashMap (%d) should be smaller than LinkedHashMap (%d)", chained, linked)
	}
}

func TestMapStructKeys(t *testing.T) {
	type key struct {
		A int
		B string
	}
	for _, v := range MapVariants[key, int]() {
		v := v
		t.Run(string(v.ID), func(t *testing.T) {
			m := v.New(0)
			m.Put(key{1, "x"}, 10)
			m.Put(key{2, "y"}, 20)
			if got, ok := m.Get(key{1, "x"}); !ok || got != 10 {
				t.Fatalf("Get(struct) = %d, %v", got, ok)
			}
			if _, ok := m.Get(key{1, "y"}); ok {
				t.Fatal("wrong struct key matched")
			}
		})
	}
}
