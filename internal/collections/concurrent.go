package collections

import "sync"

// Concurrency-safe variants (the second half of the paper's Section 7
// future work). SyncSet and SyncMap guard an open-addressing table with a
// read-write mutex — the analogue of Collections.synchronizedSet/Map.
// ShardedMap stripes the key space over independently locked shards, the
// analogue of ConcurrentHashMap's lock striping; under parallel load it
// trades a little per-op overhead for much lower contention.

// SyncSet is a mutex-guarded set, safe for concurrent use.
type SyncSet[T comparable] struct {
	mu    sync.RWMutex
	inner *OpenHashSet[T]
}

// NewSyncSet returns an empty SyncSet pre-sized for capHint elements.
func NewSyncSet[T comparable](capHint int) *SyncSet[T] {
	return &SyncSet[T]{inner: NewOpenHashSetPreset[T](OpenBalanced, capHint)}
}

// Add inserts v, reporting whether the set changed.
func (s *SyncSet[T]) Add(v T) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Add(v)
}

// Remove deletes v, reporting whether the set changed.
func (s *SyncSet[T]) Remove(v T) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Remove(v)
}

// Contains reports whether v is in the set.
func (s *SyncSet[T]) Contains(v T) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Contains(v)
}

// Len returns the number of elements.
func (s *SyncSet[T]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Len()
}

// Clear removes all elements.
func (s *SyncSet[T]) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Clear()
}

// ForEach calls fn on each element under the read lock until fn returns
// false. fn must not mutate the set.
func (s *SyncSet[T]) ForEach(fn func(T) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.inner.ForEach(fn)
}

// FootprintBytes estimates the wrapper (RWMutex + inner pointer) plus the
// guarded table.
func (s *SyncSet[T]) FootprintBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return structBase + rwMutexBytes + wordBytes + s.inner.FootprintBytes()
}

// SyncMap is a mutex-guarded map, safe for concurrent use.
type SyncMap[K comparable, V any] struct {
	mu    sync.RWMutex
	inner *OpenHashMap[K, V]
}

// NewSyncMap returns an empty SyncMap pre-sized for capHint entries.
func NewSyncMap[K comparable, V any](capHint int) *SyncMap[K, V] {
	return &SyncMap[K, V]{inner: NewOpenHashMapPreset[K, V](OpenBalanced, capHint)}
}

// Put associates k with v, returning the previous value if present.
func (m *SyncMap[K, V]) Put(k K, v V) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Put(k, v)
}

// Get returns the value for k and whether it was present.
func (m *SyncMap[K, V]) Get(k K) (V, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.inner.Get(k)
}

// Remove deletes the entry for k.
func (m *SyncMap[K, V]) Remove(k K) (V, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Remove(k)
}

// ContainsKey reports whether k has an entry.
func (m *SyncMap[K, V]) ContainsKey(k K) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.inner.ContainsKey(k)
}

// Len returns the number of entries.
func (m *SyncMap[K, V]) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.inner.Len()
}

// Clear removes all entries.
func (m *SyncMap[K, V]) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.Clear()
}

// ForEach calls fn on each entry under the read lock until fn returns
// false. fn must not mutate the map.
func (m *SyncMap[K, V]) ForEach(fn func(K, V) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.inner.ForEach(fn)
}

// FootprintBytes estimates the wrapper (RWMutex + inner pointer) plus the
// guarded table.
func (m *SyncMap[K, V]) FootprintBytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return structBase + rwMutexBytes + wordBytes + m.inner.FootprintBytes()
}

// shardedShards is the stripe count; a power of two so shard selection is a
// mask of the key hash.
const shardedShards = 16

// ShardedMap stripes entries over independently locked shards — the
// ConcurrentHashMap analogue. Len sums shard sizes without a global lock,
// so it is only approximate under concurrent mutation (as in the JDK).
type ShardedMap[K comparable, V any] struct {
	h      hasher[K]
	shards [shardedShards]struct {
		mu sync.RWMutex
		m  *OpenHashMap[K, V]
	}
}

// NewShardedMap returns an empty ShardedMap pre-sized for capHint entries.
func NewShardedMap[K comparable, V any](capHint int) *ShardedMap[K, V] {
	sm := &ShardedMap[K, V]{h: newHasher[K]()}
	// Round up so a non-multiple-of-shards hint still pre-sizes every shard
	// for its share (truncation pre-sized 16×6=96 slots for capHint=100 and
	// nothing at all for capHint<16).
	per := (capHint + shardedShards - 1) / shardedShards
	for i := range sm.shards {
		sm.shards[i].m = NewOpenHashMapPreset[K, V](OpenBalanced, per)
	}
	return sm
}

func (m *ShardedMap[K, V]) shardFor(k K) *struct {
	mu sync.RWMutex
	m  *OpenHashMap[K, V]
} {
	return &m.shards[m.h.hash(k)&(shardedShards-1)]
}

// Put associates k with v, returning the previous value if present.
func (m *ShardedMap[K, V]) Put(k K, v V) (V, bool) {
	s := m.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Put(k, v)
}

// Get returns the value for k and whether it was present.
func (m *ShardedMap[K, V]) Get(k K) (V, bool) {
	s := m.shardFor(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Get(k)
}

// Remove deletes the entry for k.
func (m *ShardedMap[K, V]) Remove(k K) (V, bool) {
	s := m.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Remove(k)
}

// ContainsKey reports whether k has an entry.
func (m *ShardedMap[K, V]) ContainsKey(k K) bool {
	s := m.shardFor(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.ContainsKey(k)
}

// Len returns the total entry count (approximate under concurrent writes).
func (m *ShardedMap[K, V]) Len() int {
	total := 0
	for i := range m.shards {
		m.shards[i].mu.RLock()
		total += m.shards[i].m.Len()
		m.shards[i].mu.RUnlock()
	}
	return total
}

// Clear removes all entries.
func (m *ShardedMap[K, V]) Clear() {
	for i := range m.shards {
		m.shards[i].mu.Lock()
		m.shards[i].m.Clear()
		m.shards[i].mu.Unlock()
	}
}

// ForEach calls fn on each entry, locking one shard at a time, until fn
// returns false. Entries inserted or removed concurrently may or may not be
// observed.
func (m *ShardedMap[K, V]) ForEach(fn func(K, V) bool) {
	for i := range m.shards {
		m.shards[i].mu.RLock()
		stop := false
		m.shards[i].m.ForEach(func(k K, v V) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		m.shards[i].mu.RUnlock()
		if stop {
			return
		}
	}
}

// FootprintBytes estimates the header (hasher + the inline shard array of
// RWMutexes and map pointers) plus all shard tables.
func (m *ShardedMap[K, V]) FootprintBytes() int {
	total := structBase + sizeOf(m.h) + shardedShards*(rwMutexBytes+wordBytes)
	for i := range m.shards {
		m.shards[i].mu.RLock()
		total += m.shards[i].m.FootprintBytes()
		m.shards[i].mu.RUnlock()
	}
	return total
}
