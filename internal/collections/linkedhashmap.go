package collections

// LinkedHashMap is the chained-bucket hash map whose entries are
// additionally threaded on an insertion-order doubly-linked list — the
// analogue of JDK LinkedHashMap. Lookups cost the same as HashMap; iteration
// is in insertion order; each entry carries two extra links of overhead.
type LinkedHashMap[K comparable, V any] struct {
	h       hasher[K]
	buckets []*lhmEntry[K, V]
	size    int
	// head/tail of the insertion-order list.
	head, tail *lhmEntry[K, V]
}

type lhmEntry[K comparable, V any] struct {
	hash uint64
	key  K
	val  V
	next *lhmEntry[K, V] // bucket chain
	// insertion-order links
	before, after *lhmEntry[K, V]
}

// NewLinkedHashMap returns an empty LinkedHashMap.
func NewLinkedHashMap[K comparable, V any]() *LinkedHashMap[K, V] {
	return NewLinkedHashMapCap[K, V](0)
}

// NewLinkedHashMapCap returns an empty LinkedHashMap pre-sized for capHint
// entries.
func NewLinkedHashMapCap[K comparable, V any](capHint int) *LinkedHashMap[K, V] {
	c := hashMapMinCap
	if capHint > 0 {
		c = nextPow2(capHint * hashMapLoadDen / hashMapLoadNum)
		if c < hashMapMinCap {
			c = hashMapMinCap
		}
	}
	return &LinkedHashMap[K, V]{
		h:       newHasher[K](),
		buckets: make([]*lhmEntry[K, V], c),
	}
}

func (m *LinkedHashMap[K, V]) bucketFor(hash uint64) int {
	return int(hash & uint64(len(m.buckets)-1))
}

func (m *LinkedHashMap[K, V]) find(k K, hash uint64) *lhmEntry[K, V] {
	for e := m.buckets[m.bucketFor(hash)]; e != nil; e = e.next {
		if e.hash == hash && e.key == k {
			return e
		}
	}
	return nil
}

func (m *LinkedHashMap[K, V]) grow() {
	old := m.buckets
	m.buckets = make([]*lhmEntry[K, V], 2*len(old))
	for _, e := range old {
		for e != nil {
			next := e.next
			b := m.bucketFor(e.hash)
			e.next = m.buckets[b]
			m.buckets[b] = e
			e = next
		}
	}
}

// Put associates k with v, returning the previous value if present.
func (m *LinkedHashMap[K, V]) Put(k K, v V) (V, bool) {
	hash := m.h.hash(k)
	if e := m.find(k, hash); e != nil {
		old := e.val
		e.val = v
		return old, true
	}
	if (m.size+1)*hashMapLoadDen > len(m.buckets)*hashMapLoadNum {
		m.grow()
	}
	b := m.bucketFor(hash)
	e := &lhmEntry[K, V]{hash: hash, key: k, val: v, next: m.buckets[b]}
	m.buckets[b] = e
	if m.tail == nil {
		m.head, m.tail = e, e
	} else {
		e.before = m.tail
		m.tail.after = e
		m.tail = e
	}
	m.size++
	var zero V
	return zero, false
}

// Get returns the value for k and whether it was present.
func (m *LinkedHashMap[K, V]) Get(k K) (V, bool) {
	if e := m.find(k, m.h.hash(k)); e != nil {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Remove deletes the entry for k.
func (m *LinkedHashMap[K, V]) Remove(k K) (V, bool) {
	hash := m.h.hash(k)
	b := m.bucketFor(hash)
	var prev *lhmEntry[K, V]
	for e := m.buckets[b]; e != nil; prev, e = e, e.next {
		if e.hash != hash || e.key != k {
			continue
		}
		if prev == nil {
			m.buckets[b] = e.next
		} else {
			prev.next = e.next
		}
		if e.before == nil {
			m.head = e.after
		} else {
			e.before.after = e.after
		}
		if e.after == nil {
			m.tail = e.before
		} else {
			e.after.before = e.before
		}
		m.size--
		return e.val, true
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k has an entry.
func (m *LinkedHashMap[K, V]) ContainsKey(k K) bool {
	return m.find(k, m.h.hash(k)) != nil
}

// Len returns the number of entries.
func (m *LinkedHashMap[K, V]) Len() int { return m.size }

// Clear removes all entries, retaining the bucket table.
func (m *LinkedHashMap[K, V]) Clear() {
	clear(m.buckets)
	m.head, m.tail = nil, nil
	m.size = 0
}

// ForEach calls fn on each entry in insertion order until fn returns false.
func (m *LinkedHashMap[K, V]) ForEach(fn func(K, V) bool) {
	for e := m.head; e != nil; e = e.after {
		if !fn(e.key, e.val) {
			return
		}
	}
}

// FootprintBytes estimates bucket table plus one five-link boxed entry per
// element.
func (m *LinkedHashMap[K, V]) FootprintBytes() int {
	var zk K
	var zv V
	entry := structBase + 8 + sizeOf(zk) + sizeOf(zv) + 3*wordBytes
	return structBase + sliceHeader + len(m.buckets)*wordBytes + m.size*entry
}
