package collections

import "fmt"

// VariantID names a collection implementation variant. IDs are stable: they
// key the performance models, the selection engine's candidate lists and the
// transition logs, and appear verbatim in experiment output.
type VariantID string

// List variants (paper Table 2, Lists section).
const (
	ArrayListID     VariantID = "list/array"     // JDK ArrayList analogue
	LinkedListID    VariantID = "list/linked"    // JDK LinkedList analogue
	HashArrayListID VariantID = "list/hasharray" // the paper's Switch variant
	AdaptiveListID  VariantID = "list/adaptive"  // array → hash
)

// Set variants (paper Table 2, Sets section).
const (
	HashSetID         VariantID = "set/hash"              // JDK chained HashSet analogue
	OpenHashSetFastID VariantID = "set/openhash-fast"     // Koloboke analogue
	OpenHashSetBalID  VariantID = "set/openhash-balanced" // Eclipse Collections analogue
	OpenHashSetCmpID  VariantID = "set/openhash-compact"  // fastutil analogue
	LinkedHashSetID   VariantID = "set/linkedhash"        // JDK LinkedHashSet analogue
	ArraySetID        VariantID = "set/array"             // Google/NLP ArraySet analogue
	CompactHashSetID  VariantID = "set/compacthash"       // VLSI CompactHashSet analogue
	AdaptiveSetID     VariantID = "set/adaptive"          // array → openhash
)

// Map variants (paper Table 2, Maps section).
const (
	HashMapID         VariantID = "map/hash"
	OpenHashMapFastID VariantID = "map/openhash-fast"
	OpenHashMapBalID  VariantID = "map/openhash-balanced"
	OpenHashMapCmpID  VariantID = "map/openhash-compact"
	LinkedHashMapID   VariantID = "map/linkedhash"
	ArrayMapID        VariantID = "map/array"
	CompactHashMapID  VariantID = "map/compacthash"
	AdaptiveMapID     VariantID = "map/adaptive"
)

// Abstraction names a collection abstraction type.
type Abstraction string

// The three abstractions considered by the paper.
const (
	ListAbstraction Abstraction = "list"
	SetAbstraction  Abstraction = "set"
	MapAbstraction  Abstraction = "map"
)

// VariantInfo describes a variant for reports (paper Table 2).
type VariantInfo struct {
	ID          VariantID
	Abstraction Abstraction
	Analogue    string // the Java library the paper drew this variant from
	Description string
}

// AllVariantInfos returns the full variant inventory in Table 2 order.
func AllVariantInfos() []VariantInfo {
	return []VariantInfo{
		{ArrayListID, ListAbstraction, "JDK", "Array-backed list"},
		{LinkedListID, ListAbstraction, "JDK", "Double-linked list"},
		{HashArrayListID, ListAbstraction, "Switch", "ArrayList + HashBag for faster lookups"},
		{AdaptiveListID, ListAbstraction, "JDK -> Switch", "ArrayList on small sizes, HashArrayList on large sizes"},

		{HashSetID, SetAbstraction, "JDK", "Chained hash-backed set"},
		{OpenHashSetFastID, SetAbstraction, "Koloboke", "Open-address hash set, load 0.50 (speed preset)"},
		{OpenHashSetBalID, SetAbstraction, "Eclipse", "Open-address hash set, load 0.75 (balanced preset)"},
		{OpenHashSetCmpID, SetAbstraction, "FastUtil", "Open-address hash set, load 0.90 (memory preset)"},
		{LinkedHashSetID, SetAbstraction, "JDK", "Chained hash set with double-linked entries"},
		{ArraySetID, SetAbstraction, "Google/NLP", "Array-backed set, linear membership"},
		{CompactHashSetID, SetAbstraction, "VLSI", "Dense hash set for high memory efficiency"},
		{AdaptiveSetID, SetAbstraction, "NLP/Google -> Koloboke", "Array-backed on small sizes, hash-backed on large sizes"},

		{HashMapID, MapAbstraction, "JDK", "Chained hash-backed map"},
		{OpenHashMapFastID, MapAbstraction, "Koloboke", "Open-address hash map, load 0.50 (speed preset)"},
		{OpenHashMapBalID, MapAbstraction, "Eclipse", "Open-address hash map, load 0.75 (balanced preset)"},
		{OpenHashMapCmpID, MapAbstraction, "FastUtil", "Open-address hash map, load 0.90 (memory preset)"},
		{LinkedHashMapID, MapAbstraction, "JDK", "Chained hash map with double-linked entries"},
		{ArrayMapID, MapAbstraction, "Google/NLP", "Array-backed map, linear key search"},
		{CompactHashMapID, MapAbstraction, "VLSI", "Dense hash map for high memory efficiency"},
		{AdaptiveMapID, MapAbstraction, "NLP/Google -> Koloboke", "Array-backed on small sizes, hash-backed on large sizes"},
	}
}

// AbstractionOf returns the abstraction a variant implements.
func AbstractionOf(id VariantID) Abstraction {
	for _, info := range AllVariantInfos() {
		if info.ID == id {
			return info.Abstraction
		}
	}
	panic(fmt.Sprintf("collections: unknown variant %q", id))
}

// IsAdaptive reports whether id names one of the adaptive variants.
func IsAdaptive(id VariantID) bool {
	return id == AdaptiveListID || id == AdaptiveSetID || id == AdaptiveMapID
}

// ListVariant couples a variant ID with its factory for element type T.
type ListVariant[T comparable] struct {
	ID VariantID
	// New returns an empty list; capHint (possibly 0) pre-sizes it.
	New func(capHint int) List[T]
}

// SetVariant couples a variant ID with its factory for element type T.
type SetVariant[T comparable] struct {
	ID  VariantID
	New func(capHint int) Set[T]
}

// MapVariant couples a variant ID with its factory for key/value types K, V.
type MapVariant[K comparable, V any] struct {
	ID  VariantID
	New func(capHint int) Map[K, V]
}

// ListVariants returns factories for every list variant.
func ListVariants[T comparable]() []ListVariant[T] {
	return []ListVariant[T]{
		{ArrayListID, func(c int) List[T] { return NewArrayListCap[T](c) }},
		{LinkedListID, func(int) List[T] { return NewLinkedList[T]() }},
		{HashArrayListID, func(int) List[T] { return NewHashArrayList[T]() }},
		{AdaptiveListID, func(int) List[T] { return NewAdaptiveList[T]() }},
	}
}

// SetVariants returns factories for every set variant.
func SetVariants[T comparable]() []SetVariant[T] {
	return []SetVariant[T]{
		{HashSetID, func(c int) Set[T] { return NewHashSetCap[T](c) }},
		{OpenHashSetFastID, func(c int) Set[T] { return NewOpenHashSetPreset[T](OpenFast, c) }},
		{OpenHashSetBalID, func(c int) Set[T] { return NewOpenHashSetPreset[T](OpenBalanced, c) }},
		{OpenHashSetCmpID, func(c int) Set[T] { return NewOpenHashSetPreset[T](OpenCompact, c) }},
		{LinkedHashSetID, func(c int) Set[T] { return NewLinkedHashSetCap[T](c) }},
		{ArraySetID, func(c int) Set[T] { return NewArraySetCap[T](c) }},
		{CompactHashSetID, func(c int) Set[T] { return NewCompactHashSetCap[T](c) }},
		{AdaptiveSetID, func(int) Set[T] { return NewAdaptiveSet[T]() }},
	}
}

// MapVariants returns factories for every map variant.
func MapVariants[K comparable, V any]() []MapVariant[K, V] {
	return []MapVariant[K, V]{
		{HashMapID, func(c int) Map[K, V] { return NewHashMapCap[K, V](c) }},
		{OpenHashMapFastID, func(c int) Map[K, V] { return NewOpenHashMapPreset[K, V](OpenFast, c) }},
		{OpenHashMapBalID, func(c int) Map[K, V] { return NewOpenHashMapPreset[K, V](OpenBalanced, c) }},
		{OpenHashMapCmpID, func(c int) Map[K, V] { return NewOpenHashMapPreset[K, V](OpenCompact, c) }},
		{LinkedHashMapID, func(c int) Map[K, V] { return NewLinkedHashMapCap[K, V](c) }},
		{ArrayMapID, func(c int) Map[K, V] { return NewArrayMapCap[K, V](c) }},
		{CompactHashMapID, func(c int) Map[K, V] { return NewCompactHashMapCap[K, V](c) }},
		{AdaptiveMapID, func(int) Map[K, V] { return NewAdaptiveMap[K, V]() }},
	}
}

// NewListOf instantiates a list variant by ID.
func NewListOf[T comparable](id VariantID, capHint int) List[T] {
	for _, v := range ListVariants[T]() {
		if v.ID == id {
			return v.New(capHint)
		}
	}
	panic(fmt.Sprintf("collections: unknown list variant %q", id))
}

// NewSetOf instantiates a set variant by ID.
func NewSetOf[T comparable](id VariantID, capHint int) Set[T] {
	for _, v := range SetVariants[T]() {
		if v.ID == id {
			return v.New(capHint)
		}
	}
	panic(fmt.Sprintf("collections: unknown set variant %q", id))
}

// NewMapOf instantiates a map variant by ID.
func NewMapOf[K comparable, V any](id VariantID, capHint int) Map[K, V] {
	for _, v := range MapVariants[K, V]() {
		if v.ID == id {
			return v.New(capHint)
		}
	}
	panic(fmt.Sprintf("collections: unknown map variant %q", id))
}
