package collections

import "fmt"

// VariantID names a collection implementation variant. IDs are stable: they
// key the performance models, the selection engine's candidate lists and the
// transition logs, and appear verbatim in experiment output.
type VariantID string

// List variants (paper Table 2, Lists section).
const (
	ArrayListID     VariantID = "list/array"     // JDK ArrayList analogue
	LinkedListID    VariantID = "list/linked"    // JDK LinkedList analogue
	HashArrayListID VariantID = "list/hasharray" // the paper's Switch variant
	AdaptiveListID  VariantID = "list/adaptive"  // array → hash
)

// Set variants (paper Table 2, Sets section).
const (
	HashSetID         VariantID = "set/hash"              // JDK chained HashSet analogue
	OpenHashSetFastID VariantID = "set/openhash-fast"     // Koloboke analogue
	OpenHashSetBalID  VariantID = "set/openhash-balanced" // Eclipse Collections analogue
	OpenHashSetCmpID  VariantID = "set/openhash-compact"  // fastutil analogue
	LinkedHashSetID   VariantID = "set/linkedhash"        // JDK LinkedHashSet analogue
	ArraySetID        VariantID = "set/array"             // Google/NLP ArraySet analogue
	CompactHashSetID  VariantID = "set/compacthash"       // VLSI CompactHashSet analogue
	AdaptiveSetID     VariantID = "set/adaptive"          // array → openhash
)

// Map variants (paper Table 2, Maps section).
const (
	HashMapID         VariantID = "map/hash"
	OpenHashMapFastID VariantID = "map/openhash-fast"
	OpenHashMapBalID  VariantID = "map/openhash-balanced"
	OpenHashMapCmpID  VariantID = "map/openhash-compact"
	LinkedHashMapID   VariantID = "map/linkedhash"
	ArrayMapID        VariantID = "map/array"
	CompactHashMapID  VariantID = "map/compacthash"
	AdaptiveMapID     VariantID = "map/adaptive"
)

// Abstraction names a collection abstraction type.
type Abstraction string

// The three abstractions considered by the paper.
const (
	ListAbstraction Abstraction = "list"
	SetAbstraction  Abstraction = "set"
	MapAbstraction  Abstraction = "map"
)

// VariantInfo describes a variant for reports (paper Table 2).
type VariantInfo struct {
	ID          VariantID
	Abstraction Abstraction
	Analogue    string // the Java library the paper drew this variant from
	Description string
}

// AllVariantInfos returns the paper's variant inventory in Table 2 order —
// the source table the catalog's core entries are built from. Extension and
// user-registered variants are not included; see ExtensionVariantInfos and
// Entries.
func AllVariantInfos() []VariantInfo {
	return []VariantInfo{
		{ArrayListID, ListAbstraction, "JDK", "Array-backed list"},
		{LinkedListID, ListAbstraction, "JDK", "Double-linked list"},
		{HashArrayListID, ListAbstraction, "Switch", "ArrayList + HashBag for faster lookups"},
		{AdaptiveListID, ListAbstraction, "JDK -> Switch", "ArrayList on small sizes, HashArrayList on large sizes"},

		{HashSetID, SetAbstraction, "JDK", "Chained hash-backed set"},
		{OpenHashSetFastID, SetAbstraction, "Koloboke", "Open-address hash set, load 0.50 (speed preset)"},
		{OpenHashSetBalID, SetAbstraction, "Eclipse", "Open-address hash set, load 0.75 (balanced preset)"},
		{OpenHashSetCmpID, SetAbstraction, "FastUtil", "Open-address hash set, load 0.90 (memory preset)"},
		{LinkedHashSetID, SetAbstraction, "JDK", "Chained hash set with double-linked entries"},
		{ArraySetID, SetAbstraction, "Google/NLP", "Array-backed set, linear membership"},
		{CompactHashSetID, SetAbstraction, "VLSI", "Dense hash set for high memory efficiency"},
		{AdaptiveSetID, SetAbstraction, "NLP/Google -> Koloboke", "Array-backed on small sizes, hash-backed on large sizes"},

		{HashMapID, MapAbstraction, "JDK", "Chained hash-backed map"},
		{OpenHashMapFastID, MapAbstraction, "Koloboke", "Open-address hash map, load 0.50 (speed preset)"},
		{OpenHashMapBalID, MapAbstraction, "Eclipse", "Open-address hash map, load 0.75 (balanced preset)"},
		{OpenHashMapCmpID, MapAbstraction, "FastUtil", "Open-address hash map, load 0.90 (memory preset)"},
		{LinkedHashMapID, MapAbstraction, "JDK", "Chained hash map with double-linked entries"},
		{ArrayMapID, MapAbstraction, "Google/NLP", "Array-backed map, linear key search"},
		{CompactHashMapID, MapAbstraction, "VLSI", "Dense hash map for high memory efficiency"},
		{AdaptiveMapID, MapAbstraction, "NLP/Google -> Koloboke", "Array-backed on small sizes, hash-backed on large sizes"},
	}
}

// ListVariant couples a variant ID with its factory for element type T.
type ListVariant[T comparable] struct {
	ID VariantID
	// New returns an empty list; capHint (possibly 0) pre-sizes it.
	New func(capHint int) List[T]
}

// SetVariant couples a variant ID with its factory for element type T.
type SetVariant[T comparable] struct {
	ID  VariantID
	New func(capHint int) Set[T]
}

// MapVariant couples a variant ID with its factory for key/value types K, V.
type MapVariant[K comparable, V any] struct {
	ID  VariantID
	New func(capHint int) Map[K, V]
}

// builtinListFactory instantiates a builtin list variant for element type T,
// nil when id is not a builtin list. Go cannot store a factory generic over
// T in the catalog, so builtin entries leave Entry.factory nil and
// instantiate through this switch.
func builtinListFactory[T comparable](id VariantID) func(int) List[T] {
	switch id {
	case ArrayListID:
		return func(c int) List[T] { return NewArrayListCap[T](c) }
	case LinkedListID:
		return func(int) List[T] { return NewLinkedList[T]() }
	case HashArrayListID:
		return func(int) List[T] { return NewHashArrayList[T]() }
	case AdaptiveListID:
		return func(int) List[T] { return NewAdaptiveList[T]() }
	}
	return nil
}

// builtinSetFactory covers the builtin set variants available for any
// comparable element type (core + concurrent); the sorted variants need
// cmp.Ordered, see builtinSortedSetFactory.
func builtinSetFactory[T comparable](id VariantID) func(int) Set[T] {
	switch id {
	case HashSetID:
		return func(c int) Set[T] { return NewHashSetCap[T](c) }
	case OpenHashSetFastID:
		return func(c int) Set[T] { return NewOpenHashSetPreset[T](OpenFast, c) }
	case OpenHashSetBalID:
		return func(c int) Set[T] { return NewOpenHashSetPreset[T](OpenBalanced, c) }
	case OpenHashSetCmpID:
		return func(c int) Set[T] { return NewOpenHashSetPreset[T](OpenCompact, c) }
	case LinkedHashSetID:
		return func(c int) Set[T] { return NewLinkedHashSetCap[T](c) }
	case ArraySetID:
		return func(c int) Set[T] { return NewArraySetCap[T](c) }
	case CompactHashSetID:
		return func(c int) Set[T] { return NewCompactHashSetCap[T](c) }
	case AdaptiveSetID:
		return func(int) Set[T] { return NewAdaptiveSet[T]() }
	case SyncSetID:
		return func(c int) Set[T] { return NewSyncSet[T](c) }
	}
	return nil
}

// builtinMapFactory covers the builtin map variants available for any
// comparable key type (core + concurrent).
func builtinMapFactory[K comparable, V any](id VariantID) func(int) Map[K, V] {
	switch id {
	case HashMapID:
		return func(c int) Map[K, V] { return NewHashMapCap[K, V](c) }
	case OpenHashMapFastID:
		return func(c int) Map[K, V] { return NewOpenHashMapPreset[K, V](OpenFast, c) }
	case OpenHashMapBalID:
		return func(c int) Map[K, V] { return NewOpenHashMapPreset[K, V](OpenBalanced, c) }
	case OpenHashMapCmpID:
		return func(c int) Map[K, V] { return NewOpenHashMapPreset[K, V](OpenCompact, c) }
	case LinkedHashMapID:
		return func(c int) Map[K, V] { return NewLinkedHashMapCap[K, V](c) }
	case ArrayMapID:
		return func(c int) Map[K, V] { return NewArrayMapCap[K, V](c) }
	case CompactHashMapID:
		return func(c int) Map[K, V] { return NewCompactHashMapCap[K, V](c) }
	case AdaptiveMapID:
		return func(int) Map[K, V] { return NewAdaptiveMap[K, V]() }
	case SyncMapID:
		return func(c int) Map[K, V] { return NewSyncMap[K, V](c) }
	case ShardedMapID:
		return func(c int) Map[K, V] { return NewShardedMap[K, V](c) }
	}
	return nil
}

// listFactoryOf resolves a catalog entry to a typed list factory: the
// registered factory for custom entries (nil when registered for a
// different element type), the builtin switch otherwise.
func listFactoryOf[T comparable](e Entry) func(int) List[T] {
	if e.factory != nil {
		f, _ := e.factory.(func(int) List[T])
		return f
	}
	return builtinListFactory[T](e.Info.ID)
}

func setFactoryOf[T comparable](e Entry) func(int) Set[T] {
	if e.factory != nil {
		f, _ := e.factory.(func(int) Set[T])
		return f
	}
	return builtinSetFactory[T](e.Info.ID)
}

func mapFactoryOf[K comparable, V any](e Entry) func(int) Map[K, V] {
	if e.factory != nil {
		f, _ := e.factory.(func(int) Map[K, V])
		return f
	}
	return builtinMapFactory[K, V](e.Info.ID)
}

// ListVariants returns factories for the default list candidate pool: the
// Table 2 list variants followed by any custom registrations usable at
// element type T, in catalog order.
func ListVariants[T comparable]() []ListVariant[T] {
	var out []ListVariant[T]
	for _, e := range snapshot().entries {
		if e.Info.Abstraction != ListAbstraction || !e.DefaultCandidate {
			continue
		}
		if f := listFactoryOf[T](e); f != nil {
			out = append(out, ListVariant[T]{e.Info.ID, f})
		}
	}
	return out
}

// SetVariants returns factories for the default set candidate pool; see
// ListVariants.
func SetVariants[T comparable]() []SetVariant[T] {
	var out []SetVariant[T]
	for _, e := range snapshot().entries {
		if e.Info.Abstraction != SetAbstraction || !e.DefaultCandidate {
			continue
		}
		if f := setFactoryOf[T](e); f != nil {
			out = append(out, SetVariant[T]{e.Info.ID, f})
		}
	}
	return out
}

// MapVariants returns factories for the default map candidate pool; see
// ListVariants.
func MapVariants[K comparable, V any]() []MapVariant[K, V] {
	var out []MapVariant[K, V]
	for _, e := range snapshot().entries {
		if e.Info.Abstraction != MapAbstraction || !e.DefaultCandidate {
			continue
		}
		if f := mapFactoryOf[K, V](e); f != nil {
			out = append(out, MapVariant[K, V]{e.Info.ID, f})
		}
	}
	return out
}

// NewListOf instantiates a list variant by ID. It resolves through the full
// catalog, so opt-in and custom variants work too.
func NewListOf[T comparable](id VariantID, capHint int) List[T] {
	if e, ok := EntryOf(id); ok && e.Info.Abstraction == ListAbstraction {
		if f := listFactoryOf[T](e); f != nil {
			return f(capHint)
		}
	}
	panic(fmt.Sprintf("collections: unknown list variant %q", id))
}

// NewSetOf instantiates a set variant by ID.
func NewSetOf[T comparable](id VariantID, capHint int) Set[T] {
	if e, ok := EntryOf(id); ok && e.Info.Abstraction == SetAbstraction {
		if f := setFactoryOf[T](e); f != nil {
			return f(capHint)
		}
	}
	panic(fmt.Sprintf("collections: unknown set variant %q", id))
}

// NewMapOf instantiates a map variant by ID.
func NewMapOf[K comparable, V any](id VariantID, capHint int) Map[K, V] {
	if e, ok := EntryOf(id); ok && e.Info.Abstraction == MapAbstraction {
		if f := mapFactoryOf[K, V](e); f != nil {
			return f(capHint)
		}
	}
	panic(fmt.Sprintf("collections: unknown map variant %q", id))
}

// IntListFactory resolves any catalog list entry — core, adaptive, or custom
// — to an int-element factory, ok=false when the entry is unknown or was
// registered for a different element type. The differential checker
// (internal/check) instantiates every catalog variant through these
// resolvers, which is why they also cover the extension groups NewListOf/
// NewSetOf/NewMapOf cannot reach at a bare comparable type parameter.
func IntListFactory(id VariantID) (func(int) List[int], bool) {
	e, ok := EntryOf(id)
	if !ok || e.Info.Abstraction != ListAbstraction {
		return nil, false
	}
	if f := listFactoryOf[int](e); f != nil {
		return f, true
	}
	return nil, false
}

// IntSetFactory resolves any catalog set entry — including the sorted
// extensions, whose factories need cmp.Ordered — to an int-element factory;
// see IntListFactory.
func IntSetFactory(id VariantID) (func(int) Set[int], bool) {
	e, ok := EntryOf(id)
	if !ok || e.Info.Abstraction != SetAbstraction {
		return nil, false
	}
	if f := setFactoryOf[int](e); f != nil {
		return f, true
	}
	if f := builtinSortedSetFactory[int](e.Info.ID); f != nil {
		return f, true
	}
	return nil, false
}

// IntMapFactory resolves any catalog map entry to an int-keyed, int-valued
// factory; see IntListFactory.
func IntMapFactory(id VariantID) (func(int) Map[int, int], bool) {
	e, ok := EntryOf(id)
	if !ok || e.Info.Abstraction != MapAbstraction {
		return nil, false
	}
	if f := mapFactoryOf[int, int](e); f != nil {
		return f, true
	}
	if f := builtinSortedMapFactory[int, int](e.Info.ID); f != nil {
		return f, true
	}
	return nil, false
}
