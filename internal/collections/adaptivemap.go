package collections

// DefaultMapThreshold is the array→openhash transition size for AdaptiveMap
// (paper Table 1).
const DefaultMapThreshold = 50

// AdaptiveMap is the instance-level adaptive map (paper Table 1,
// array→openhash): a memory-minimal ArrayMap below the threshold, an
// OpenHashMap (fast preset) above it. The transition is instant: all
// entries are reinserted into the freshly sized hash table.
type AdaptiveMap[K comparable, V any] struct {
	array     *ArrayMap[K, V]    // nil after the transition
	hash      *OpenHashMap[K, V] // nil before the transition
	threshold int
}

// NewAdaptiveMap returns an AdaptiveMap with the default threshold.
func NewAdaptiveMap[K comparable, V any]() *AdaptiveMap[K, V] {
	return NewAdaptiveMapThreshold[K, V](DefaultMapThreshold)
}

// NewAdaptiveMapThreshold returns an AdaptiveMap that transitions when its
// size first exceeds threshold.
func NewAdaptiveMapThreshold[K comparable, V any](threshold int) *AdaptiveMap[K, V] {
	if threshold < 0 {
		threshold = 0
	}
	return &AdaptiveMap[K, V]{array: NewArrayMap[K, V](), threshold: threshold}
}

// Transitioned reports whether the instance has switched to its hash form.
func (m *AdaptiveMap[K, V]) Transitioned() bool { return m.hash != nil }

func (m *AdaptiveMap[K, V]) maybeTransition() {
	if m.hash != nil || m.array.Len() <= m.threshold {
		return
	}
	h := NewOpenHashMapPreset[K, V](OpenFast, 2*m.array.Len())
	keys, vals := m.array.Pairs()
	for i, k := range keys {
		h.Put(k, vals[i])
	}
	m.hash = h
	m.array = nil
}

// Put associates k with v, returning the previous value if present.
func (m *AdaptiveMap[K, V]) Put(k K, v V) (V, bool) {
	if m.hash != nil {
		return m.hash.Put(k, v)
	}
	old, present := m.array.Put(k, v)
	m.maybeTransition()
	return old, present
}

// Get returns the value for k and whether it was present.
func (m *AdaptiveMap[K, V]) Get(k K) (V, bool) {
	if m.hash != nil {
		return m.hash.Get(k)
	}
	return m.array.Get(k)
}

// Remove deletes the entry for k.
func (m *AdaptiveMap[K, V]) Remove(k K) (V, bool) {
	if m.hash != nil {
		return m.hash.Remove(k)
	}
	return m.array.Remove(k)
}

// ContainsKey reports whether k has an entry.
func (m *AdaptiveMap[K, V]) ContainsKey(k K) bool {
	if m.hash != nil {
		return m.hash.ContainsKey(k)
	}
	return m.array.ContainsKey(k)
}

// Len returns the number of entries.
func (m *AdaptiveMap[K, V]) Len() int {
	if m.hash != nil {
		return m.hash.Len()
	}
	return m.array.Len()
}

// Clear removes all entries and reverts to the array representation.
func (m *AdaptiveMap[K, V]) Clear() {
	m.array = NewArrayMap[K, V]()
	m.hash = nil
}

// ForEach calls fn on each entry until fn returns false.
func (m *AdaptiveMap[K, V]) ForEach(fn func(K, V) bool) {
	if m.hash != nil {
		m.hash.ForEach(fn)
		return
	}
	m.array.ForEach(fn)
}

// FootprintBytes estimates the active representation.
func (m *AdaptiveMap[K, V]) FootprintBytes() int {
	if m.hash != nil {
		return structBase + m.hash.FootprintBytes()
	}
	return structBase + m.array.FootprintBytes()
}
