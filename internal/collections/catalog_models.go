package collections

import "math"

// This file holds the analytic default cost models of the builtin variants,
// attached to their catalog entries. The paper builds its models by
// benchmarking on the target machine (Section 4.1); this repository supports
// that too (see perfmodel/builder.go and cmd/perfmodel), but also ships
// hardware-independent defaults so the selection engine behaves
// deterministically in tests and examples. perfmodel.Default samples these
// functions at the Table 3 plan sizes and fits the same least-squares cubic
// curves the empirical builder produces, so default and machine-built models
// are interchangeable everywhere.
//
// Each variant's per-operation costs derive from its data-structure
// mechanics:
//
//   - array scans cost a small constant per element (contiguous memory);
//   - linked traversals cost ~3-4x that (pointer chasing);
//   - chained hash operations pay an entry allocation on insert and a
//     near-constant probe on lookup;
//   - open addressing pays no per-entry allocation; its probe cost grows
//     with the load-factor preset, and the high-load preset additionally
//     degrades superlinearly with size (long probe chains interact badly
//     with caches as tables outgrow them) — the effect behind the paper's
//     multi-step Ralloc switching in Figure 5d/e;
//   - adaptive variants follow their array form below the transition
//     threshold and their hash form above it, plus a one-time transition
//     cost (Figure 3);
//   - the future-work extensions (Section 7) use logarithmic point-op costs
//     for the tree-shaped structures, quadratic population for sorted
//     arrays (shift per insert), and fixed lock overhead for the
//     concurrency wrappers.

func lin(a, b float64) CostFn { return func(s float64) float64 { return a + b*s } }

func quad(a, b, c float64) CostFn {
	return func(s float64) float64 { return a + b*s + c*s*s }
}

// piecewise returns below(s) for s <= threshold and above(s) + once for
// larger sizes (once being the amortized transition cost charge).
func piecewise(threshold float64, below, above CostFn, once CostFn) CostFn {
	return func(s float64) float64 {
		if s <= threshold {
			return below(s)
		}
		return above(s) + once(s)
	}
}

func zeroCost(float64) float64 { return 0 }

// logCost returns a + b·log2(s+1), the point-op shape of tree structures.
func logCost(a, b float64) CostFn {
	return func(s float64) float64 { return a + b*math.Log2(s+1) }
}

// nLogCost returns s·(a + b·log2(s+1)), the population shape of trees.
func nLogCost(a, b float64) CostFn {
	return func(s float64) float64 { return s * (a + b*math.Log2(s+1)) }
}

// analyticDefaults returns the shipped analytic models by variant ID.
func analyticDefaults() map[VariantID]AnalyticModel {
	out := make(map[VariantID]AnalyticModel, 30)
	addAnalyticLists(out)
	addAnalyticSets(out)
	addAnalyticMaps(out)
	addAnalyticExtensionSets(out)
	addAnalyticExtensionMaps(out)
	return out
}

// addAnalyticLists models the list variants.
func addAnalyticLists(out map[VariantID]AnalyticModel) {
	out[ArrayListID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: lin(20, 4),
			OpNameContains: lin(4, 0.45),
			OpNameIterate:  lin(5, 0.35),
			OpNameMiddle:   lin(15, 0.2),
		},
		AllocPopulate: lin(48, 16), // append growth churn ~2x final 8B/elem
		AllocMiddle:   zeroCost,
		Footprint:     lin(48, 10),
	}
	out[LinkedListID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: lin(30, 14),
			OpNameContains: lin(8, 1.6),
			OpNameIterate:  lin(8, 1.3),
			OpNameMiddle:   lin(25, 0.9),
		},
		AllocPopulate: lin(32, 40), // one node allocation per element
		AllocMiddle:   lin(40, 0),
		Footprint:     lin(48, 40),
	}
	out[HashArrayListID] = AnalyticModel{
		Time: map[string]CostFn{
			// The bag insert dominates population: a hash-map write per
			// element (~55ns on unboxed ints) against ~4ns for a plain
			// append. Honest constants here are what keeps the framework
			// from switching when the lookup volume cannot amortize the
			// bag (Go scans are far cheaper than JDK Integer scans).
			OpNamePopulate: lin(60, 55), // array append + bag insert
			OpNameContains: lin(9, 0.002),
			OpNameIterate:  lin(5, 0.35),
			// NOTE: modeled identical to ArrayList. This reproduces the
			// limitation the paper documents in the Figure 6 discussion:
			// the model assumes positional removal costs the same on both
			// variants, while the real implementation also updates the
			// hash bag — causing the known wrong pick in the
			// "search and remove" phase.
			OpNameMiddle: lin(15, 0.2),
		},
		AllocPopulate: lin(96, 64), // array churn + bag entries
		AllocMiddle:   zeroCost,
		Footprint:     lin(96, 40),
	}
	thr := float64(DefaultListThreshold)
	out[AdaptiveListID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: piecewise(thr,
				lin(20, 4),
				func(s float64) float64 { return 20 + 4*thr + 55*(s-thr) },
				func(float64) float64 { return 45 * thr }, // bag build at transition
			),
			OpNameContains: piecewise(thr, lin(4, 0.45), lin(9, 0.002), zeroCost),
			OpNameIterate:  lin(5, 0.35),
			OpNameMiddle:   lin(15, 0.2),
		},
		AllocPopulate: piecewise(thr,
			lin(48, 16),
			func(s float64) float64 { return 48 + 16*thr + 64*(s-thr) },
			func(float64) float64 { return 48 * thr },
		),
		AllocMiddle: zeroCost,
		Footprint:   piecewise(thr, lin(48, 10), lin(96, 40), zeroCost),
	}
}

// addAnalyticSets models the set variants. Map models reuse these shapes
// with slightly higher constants (two parallel arrays / larger entries), see
// addAnalyticMaps.
func addAnalyticSets(out map[VariantID]AnalyticModel) {
	out[HashSetID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: lin(60, 32), // entry box allocation dominates
			OpNameContains: lin(11, 0.003),
			OpNameIterate:  lin(10, 1.1),
			OpNameMiddle:   lin(45, 0.004),
		},
		AllocPopulate: lin(128, 64), // 48B boxes + table churn
		AllocMiddle:   lin(48, 0),
		Footprint:     lin(96, 59), // boxes + bucket table
	}
	out[OpenHashSetFastID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: quad(50, 15, 0.004),
			OpNameContains: lin(6, 0.001),
			OpNameIterate:  lin(8, 0.6),
			OpNameMiddle:   lin(26, 0.001),
		},
		// The 160B intercept models the minimum table allocation every
		// open-addressing instance pays even when nearly empty — the
		// fixed cost that makes array-backed (and adaptive) variants the
		// memory choice for very small collections.
		AllocPopulate: lin(160, 36), // table churn at load 0.5
		AllocMiddle:   zeroCost,
		Footprint:     lin(64, 27), // ~3 slots per element x 9B
	}
	out[OpenHashSetBalID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: quad(50, 14, 0.010),
			OpNameContains: lin(7.5, 0.0018),
			OpNameIterate:  lin(8, 0.55),
			OpNameMiddle:   lin(28, 0.002),
		},
		// The balanced preset's population churn grows superlinearly at
		// large sizes (more frequent tombstone-triggered rehashes near its
		// 0.75 load ceiling). This is the calibrated analogue of the
		// paper's Figure 5d/e observation that the Koloboke-like fast
		// preset becomes the best allocation choice once sizes reach ~700,
		// after the Eclipse-like preset dominated the mid range.
		AllocPopulate: quad(160, 24, 0.02),
		AllocMiddle:   zeroCost,
		Footprint:     lin(64, 18),
	}
	out[OpenHashSetCmpID] = AnalyticModel{
		Time: map[string]CostFn{
			// High-load tables degrade superlinearly: long probe chains
			// plus cache misses as the table outgrows cache levels. This
			// is what eventually trips the Ralloc time-penalty criterion
			// at medium sizes (Figure 5d/e).
			OpNamePopulate: quad(50, 13, 0.05),
			OpNameContains: lin(10, 0.02),
			OpNameIterate:  lin(8, 0.5),
			OpNameMiddle:   lin(34, 0.02),
		},
		AllocPopulate: lin(160, 20),
		AllocMiddle:   zeroCost,
		Footprint:     lin(64, 13),
	}
	out[LinkedHashSetID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: lin(70, 38),
			OpNameContains: lin(11, 0.003),
			OpNameIterate:  lin(9, 0.9),
			OpNameMiddle:   lin(52, 0.004),
		},
		AllocPopulate: lin(160, 80),
		AllocMiddle:   lin(64, 0),
		Footprint:     lin(96, 75),
	}
	out[ArraySetID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: quad(20, 2, 0.225), // each Add scans for duplicates
			OpNameContains: lin(2, 0.45),
			OpNameIterate:  lin(5, 0.3),
			OpNameMiddle:   lin(10, 0.45),
		},
		AllocPopulate: lin(48, 16),
		AllocMiddle:   zeroCost,
		Footprint:     lin(48, 10),
	}
	out[CompactHashSetID] = AnalyticModel{
		Time: map[string]CostFn{
			// The dense variant's extra indirection and swap-remove
			// bookkeeping degrade steeply at large sizes, confining its
			// competitiveness to the small range (as the paper's VLSI
			// variant's byte-serialization overhead does).
			OpNamePopulate: quad(55, 14, 0.055),
			OpNameContains: lin(9, 0.004),
			OpNameIterate:  lin(6, 0.35), // dense iteration is the strength
			OpNameMiddle:   lin(40, 0.006),
		},
		AllocPopulate: lin(180, 26),
		AllocMiddle:   zeroCost,
		Footprint:     lin(72, 20),
	}
	thr := float64(DefaultSetThreshold)
	out[AdaptiveSetID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: piecewise(thr,
				quad(20, 2, 0.225),
				func(s float64) float64 { return 20 + 2*thr + 0.225*thr*thr + 16*(s-thr) },
				func(float64) float64 { return 16 * thr }, // reinsertion at transition
			),
			OpNameContains: piecewise(thr, lin(2, 0.45), lin(6, 0.001), zeroCost),
			OpNameIterate:  piecewise(thr, lin(5, 0.3), lin(8, 0.6), zeroCost),
			OpNameMiddle:   piecewise(thr, lin(10, 0.45), lin(26, 0.001), zeroCost),
		},
		AllocPopulate: piecewise(thr,
			lin(48, 16),
			func(s float64) float64 { return 48 + 16*thr + 36*(s-thr) },
			func(float64) float64 { return 160 + 36*thr }, // table + reinsertion
		),
		AllocMiddle: zeroCost,
		Footprint:   piecewise(thr, lin(48, 10), lin(64, 27), zeroCost),
	}
}

// setIDToMapID pairs each set variant with its map counterpart for the
// shape-sharing derivation below.
var setIDToMapID = map[VariantID]VariantID{
	HashSetID:         HashMapID,
	OpenHashSetFastID: OpenHashMapFastID,
	OpenHashSetBalID:  OpenHashMapBalID,
	OpenHashSetCmpID:  OpenHashMapCmpID,
	LinkedHashSetID:   LinkedHashMapID,
	ArraySetID:        ArrayMapID,
	CompactHashSetID:  CompactHashMapID,
	AdaptiveSetID:     AdaptiveMapID,
}

// addAnalyticMaps derives map models from the set shapes: keys plus values
// roughly double the moved bytes and the entry sizes.
func addAnalyticMaps(out map[VariantID]AnalyticModel) {
	sets := make(map[VariantID]AnalyticModel, len(setIDToMapID))
	addAnalyticSets(sets)
	const scaleTime = 1.15 // extra value handling per op
	const scaleSpace = 1.8 // value array roughly doubles space
	for setID, mapID := range setIDToMapID {
		out[mapID] = scaleModel(sets[setID], scaleTime, scaleSpace)
	}
}

// scaleModel multiplies a model's time costs by timeScale and its space
// costs by spaceScale.
func scaleModel(m AnalyticModel, timeScale, spaceScale float64) AnalyticModel {
	scaled := AnalyticModel{Time: make(map[string]CostFn, len(m.Time))}
	for op, fn := range m.Time {
		fn := fn
		scaled.Time[op] = func(s float64) float64 { return timeScale * fn(s) }
	}
	ap, am, fp := m.AllocPopulate, m.AllocMiddle, m.Footprint
	scaled.AllocPopulate = func(s float64) float64 { return spaceScale * ap(s) }
	scaled.AllocMiddle = func(s float64) float64 { return spaceScale * am(s) }
	scaled.Footprint = func(s float64) float64 { return spaceScale * fp(s) }
	return scaled
}

// addAnalyticExtensionSets models the future-work set variants.
func addAnalyticExtensionSets(out map[VariantID]AnalyticModel) {
	out[AVLTreeSetID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: nLogCost(40, 6),
			OpNameContains: logCost(10, 5),
			OpNameIterate:  lin(12, 1.2),
			OpNameMiddle:   logCost(30, 12), // insert + delete with rebalancing
		},
		AllocPopulate: lin(48, 56), // one node per element
		AllocMiddle:   lin(56, 0),
		Footprint:     lin(48, 56),
	}
	out[SkipListSetID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: nLogCost(60, 8),
			OpNameContains: logCost(15, 7),
			OpNameIterate:  lin(12, 1.0),
			OpNameMiddle:   logCost(40, 16),
		},
		AllocPopulate: lin(220, 80), // node + tower per element, sentinel base
		AllocMiddle:   lin(80, 0),
		Footprint:     lin(220, 80),
	}
	out[SortedArraySetID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: quad(20, 3, 0.15), // shift on every insert
			OpNameContains: logCost(8, 4),
			OpNameIterate:  lin(5, 0.3),
			OpNameMiddle:   lin(12, 0.3), // shift-dominated
		},
		AllocPopulate: lin(48, 16),
		AllocMiddle:   zeroCost,
		Footprint:     lin(48, 10),
	}
	out[SyncSetID] = AnalyticModel{
		Time: map[string]CostFn{
			// Open-balanced costs plus ~18ns of uncontended lock per op
			// (populate pays it once per element).
			OpNamePopulate: quad(50, 32, 0.010),
			OpNameContains: lin(25.5, 0.0018),
			OpNameIterate:  lin(26, 0.55),
			OpNameMiddle:   lin(64, 0.002),
		},
		AllocPopulate: quad(200, 24, 0.02),
		AllocMiddle:   zeroCost,
		Footprint:     lin(120, 18),
	}
}

// addAnalyticExtensionMaps models the future-work map variants.
func addAnalyticExtensionMaps(out map[VariantID]AnalyticModel) {
	out[AVLTreeMapID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: nLogCost(46, 7),
			OpNameContains: logCost(11, 5.5),
			OpNameIterate:  lin(14, 1.3),
			OpNameMiddle:   logCost(34, 13),
		},
		AllocPopulate: lin(56, 64),
		AllocMiddle:   lin(64, 0),
		Footprint:     lin(56, 64),
	}
	out[SkipListMapID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: nLogCost(70, 9),
			OpNameContains: logCost(17, 8),
			OpNameIterate:  lin(14, 1.1),
			OpNameMiddle:   logCost(46, 18),
		},
		AllocPopulate: lin(240, 88),
		AllocMiddle:   lin(88, 0),
		Footprint:     lin(240, 88),
	}
	out[SortedArrayMapID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: quad(23, 3.5, 0.17),
			OpNameContains: logCost(9, 4.5),
			OpNameIterate:  lin(6, 0.35),
			OpNameMiddle:   lin(14, 0.35),
		},
		AllocPopulate: lin(96, 30),
		AllocMiddle:   zeroCost,
		Footprint:     lin(96, 19),
	}
	out[SyncMapID] = AnalyticModel{
		Time: map[string]CostFn{
			OpNamePopulate: quad(58, 34, 0.012),
			OpNameContains: lin(27, 0.002),
			OpNameIterate:  lin(28, 0.63),
			OpNameMiddle:   lin(70, 0.002),
		},
		AllocPopulate: quad(320, 46, 0.038),
		AllocMiddle:   zeroCost,
		Footprint:     lin(220, 34),
	}
	out[ShardedMapID] = AnalyticModel{
		Time: map[string]CostFn{
			// Per-op shard pick + lock; 16 small tables grow cheaper per
			// table but the base is bigger.
			OpNamePopulate: quad(900, 38, 0.002),
			OpNameContains: lin(31, 0.001),
			OpNameIterate:  lin(160, 0.7),
			OpNameMiddle:   lin(76, 0.001),
		},
		AllocPopulate: lin(2600, 46), // 16 pre-sized tables
		AllocMiddle:   zeroCost,
		Footprint:     lin(2600, 34),
	}
}
