package collections

// LinkedHashSet is the insertion-ordered chained hash set, the analogue of
// JDK LinkedHashSet: a wrapper over LinkedHashMap exactly as in the JDK.
type LinkedHashSet[T comparable] struct {
	m *LinkedHashMap[T, struct{}]
}

// NewLinkedHashSet returns an empty LinkedHashSet.
func NewLinkedHashSet[T comparable]() *LinkedHashSet[T] {
	return &LinkedHashSet[T]{m: NewLinkedHashMap[T, struct{}]()}
}

// NewLinkedHashSetCap returns an empty LinkedHashSet pre-sized for capHint
// elements.
func NewLinkedHashSetCap[T comparable](capHint int) *LinkedHashSet[T] {
	return &LinkedHashSet[T]{m: NewLinkedHashMapCap[T, struct{}](capHint)}
}

// Add inserts v, reporting whether the set changed.
func (s *LinkedHashSet[T]) Add(v T) bool {
	_, present := s.m.Put(v, struct{}{})
	return !present
}

// Remove deletes v, reporting whether the set changed.
func (s *LinkedHashSet[T]) Remove(v T) bool {
	_, present := s.m.Remove(v)
	return present
}

// Contains reports whether v is in the set.
func (s *LinkedHashSet[T]) Contains(v T) bool { return s.m.ContainsKey(v) }

// Len returns the number of elements.
func (s *LinkedHashSet[T]) Len() int { return s.m.Len() }

// Clear removes all elements.
func (s *LinkedHashSet[T]) Clear() { s.m.Clear() }

// ForEach calls fn on each element in insertion order until fn returns
// false.
func (s *LinkedHashSet[T]) ForEach(fn func(T) bool) {
	s.m.ForEach(func(k T, _ struct{}) bool { return fn(k) })
}

// FootprintBytes estimates the retained heap of the backing map.
func (s *LinkedHashSet[T]) FootprintBytes() int { return structBase + s.m.FootprintBytes() }
